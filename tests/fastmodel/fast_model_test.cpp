// Unit tests for the transfer-level fast model: zero-load timing against
// the analytic pipeline formula, bit-determinism per seed, saturation
// detection, engine dispatch via RunParams::fidelity, and the supported-
// configuration gate. Cross-fidelity accuracy against the cycle core lives
// in accuracy_test.cpp (ctest -L accuracy).
#include "fastmodel/fast_model.hpp"

#include <gtest/gtest.h>

#include "sim/driver.hpp"

namespace hybridnoc {
namespace {

RunParams base_params(TrafficPattern pattern, double rate) {
  RunParams p;
  p.pattern = pattern;
  p.injection_rate = rate;
  p.seed = 11;
  p.fidelity = Fidelity::Fast;
  return p;
}

TEST(FastModel, ZeroLoadFormulaMatchesCyclePipeline) {
  // 5 cycles per hop (3 router pipeline + 2 link), 2 injection + 5
  // destination/ejection overhead cycles minus the head's counted hop, and
  // the tail trails flits-1 cycles: 5h + 6 + F.
  EXPECT_DOUBLE_EQ(fast_zero_load_ps_latency(1, 5), 16.0);
  EXPECT_DOUBLE_EQ(fast_zero_load_ps_latency(2, 5), 21.0);
  EXPECT_DOUBLE_EQ(fast_zero_load_ps_latency(14, 1), 77.0);
}

TEST(FastModel, NearZeroLoadLatencyMatchesAnalyticMean) {
  // At a vanishing injection rate queueing is negligible, so the measured
  // mean must sit on the zero-load formula averaged over the uniform pair
  // distribution (self-pairs excluded, like the generator).
  const NocConfig cfg = NocConfig::hybrid_tdm_vc4(4);
  const Mesh mesh(cfg.k);
  double expect_sum = 0.0;
  int pairs = 0;
  for (NodeId s = 0; s < mesh.num_nodes(); ++s) {
    for (NodeId d = 0; d < mesh.num_nodes(); ++d) {
      if (s == d) continue;
      const Coord a = mesh.coord(s);
      const Coord b = mesh.coord(d);
      const int hops = std::abs(a.x - b.x) + std::abs(a.y - b.y);
      expect_sum += fast_zero_load_ps_latency(hops, cfg.ps_data_flits);
      ++pairs;
    }
  }
  const double expected = expect_sum / pairs;

  RunParams p = base_params(TrafficPattern::UniformRandom, 0.002);
  p.warmup_packets = 200;  // packets are sparse: keep the run short
  p.measure_packets = 2000;
  p.max_cycles = 30'000'000;
  const RunResult r = run_synthetic_fast(cfg, p);
  EXPECT_FALSE(r.saturated);
  EXPECT_NEAR(r.avg_latency, expected, expected * 0.02);
}

TEST(FastModel, DeterministicForSeedAcrossPatterns) {
  const NocConfig cfg = NocConfig::hybrid_tdm_vc4(6);
  for (TrafficPattern pat : {TrafficPattern::UniformRandom,
                             TrafficPattern::Hotspot, TrafficPattern::Tornado}) {
    RunParams p = base_params(pat, 0.15);
    p.measure_packets = 5000;
    const RunResult a = run_synthetic_fast(cfg, p);
    const RunResult b = run_synthetic_fast(cfg, p);
    EXPECT_DOUBLE_EQ(a.avg_latency, b.avg_latency);
    EXPECT_DOUBLE_EQ(a.p99_latency, b.p99_latency);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.measured_packets, b.measured_packets);
    EXPECT_DOUBLE_EQ(a.total_energy_pj(), b.total_energy_pj());

    p.seed = 12;
    const RunResult c = run_synthetic_fast(cfg, p);
    EXPECT_NE(a.avg_latency, c.avg_latency);
  }
}

TEST(FastModel, DetectsSaturationAtOverload) {
  // 0.95 flits/node/cycle of uniform traffic is far beyond an 8x8 mesh's
  // bisection capacity; the run must flag saturation instead of reporting a
  // meaningless equilibrium latency.
  RunParams p = base_params(TrafficPattern::UniformRandom, 0.95);
  p.measure_packets = 20000;
  const RunResult r = run_synthetic_fast(NocConfig::hybrid_tdm_vc4(8), p);
  EXPECT_TRUE(r.saturated);
}

TEST(FastModel, DriverDispatchesOnFidelity) {
  const NocConfig cfg = NocConfig::hybrid_tdm_vc4(4);
  RunParams p = base_params(TrafficPattern::UniformRandom, 0.1);
  p.measure_packets = 3000;
  const RunResult direct = run_synthetic_fast(cfg, p);
  const RunResult via_driver = run_synthetic(cfg, p);
  EXPECT_DOUBLE_EQ(direct.avg_latency, via_driver.avg_latency);
  EXPECT_EQ(direct.cycles, via_driver.cycles);
}

TEST(FastModel, ReportsCircuitSwitchedFlits) {
  // Hotspot traffic at a mid rate repeatedly exercises the same pairs, so
  // the TDM layer must establish circuits and the CS flit fraction must
  // show up on the stats surface, like the cycle core's.
  RunParams p = base_params(TrafficPattern::Hotspot, 0.2);
  p.measure_packets = 10000;
  const RunResult r = run_synthetic_fast(NocConfig::hybrid_tdm_vc4(8), p);
  EXPECT_GT(r.cs_flit_fraction, 0.0);
  EXPECT_LE(r.cs_flit_fraction, 1.0);
}

TEST(FastModel, SupportGateNamesUnsupportedFeatures) {
  std::string why;
  EXPECT_TRUE(fast_model_supports(NocConfig::hybrid_tdm_vc4(4), &why));

  NocConfig sharing = NocConfig::hybrid_tdm_vc4(4);
  sharing.hitchhiker_sharing = true;
  EXPECT_FALSE(fast_model_supports(sharing, &why));
  EXPECT_NE(why.find("sharing"), std::string::npos);

  NocConfig faults = NocConfig::hybrid_tdm_vc4(4);
  faults.link_ber = 1e-9;
  EXPECT_FALSE(fast_model_supports(faults, &why));
  EXPECT_NE(why.find("fault"), std::string::npos);

  EXPECT_DEATH((void)run_synthetic_fast(sharing, base_params(
                   TrafficPattern::UniformRandom, 0.1)),
               "sharing");
}

}  // namespace
}  // namespace hybridnoc
