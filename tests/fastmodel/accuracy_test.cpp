// Two-fidelity accuracy harness (ctest -L accuracy): twin-runs the
// transfer-level fast model against the cycle-accurate core on the same
// seeded scenario and gates the fast model's error per scenario —
//   * mean packet latency within 10%,
//   * total energy per measured packet within 5%.
// Scenarios cover uniform / hotspot / tornado on 6x6 and 8x8 hybrid-TDM
// meshes at low and mid load, the regime the fast model is specified for
// (EXPERIMENTS.md, "Two-fidelity methodology"). Near saturation the model
// is optimistic by design (no head-of-line blocking or VC backpressure), so
// saturated scenarios are a test-setup error here, not a model error.
//
// The harness lives in its own binary under the `accuracy` label so it can
// be run (and timed) on its own: ctest -L accuracy. It runs the cycle core
// once per scenario — seconds, not milliseconds.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "sim/driver.hpp"
#include "workloads/workload.hpp"

namespace hybridnoc {
namespace {

struct Scenario {
  int k;
  TrafficPattern pattern;
  double rate;  // offered flits/node/cycle
};

std::string scenario_name(const ::testing::TestParamInfo<Scenario>& info) {
  const Scenario& s = info.param;
  std::string name = std::to_string(s.k) + "x" + std::to_string(s.k) + "_";
  name += traffic_pattern_name(s.pattern);
  name += "_r" + std::to_string(static_cast<int>(s.rate * 100 + 0.5));
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

class TwoFidelityAccuracy : public ::testing::TestWithParam<Scenario> {};

TEST_P(TwoFidelityAccuracy, FastModelTracksCycleCore) {
  const Scenario& s = GetParam();
  const NocConfig cfg = NocConfig::hybrid_tdm_vc4(s.k);

  RunParams p;
  p.pattern = s.pattern;
  p.injection_rate = s.rate;
  p.measure_packets = 8000;
  p.seed = 1;

  p.fidelity = Fidelity::Cycle;
  const RunResult cycle = run_synthetic(cfg, p);
  p.fidelity = Fidelity::Fast;
  const RunResult fast = run_synthetic(cfg, p);

  ASSERT_FALSE(cycle.saturated) << "scenario is outside the low/mid regime";
  ASSERT_FALSE(fast.saturated);
  ASSERT_GT(cycle.measured_packets, 0u);
  ASSERT_GT(fast.measured_packets, 0u);

  const double lat_err =
      (fast.avg_latency - cycle.avg_latency) / cycle.avg_latency;
  EXPECT_LE(std::abs(lat_err), 0.10)
      << "mean latency: cycle=" << cycle.avg_latency
      << " fast=" << fast.avg_latency;

  // Energy is compared per measured packet: both windows measure the same
  // packet budget, but the finishing-cycle co-count can differ by a few
  // packets, and total energy scales with the window.
  const double cycle_epp =
      cycle.total_energy_pj() / static_cast<double>(cycle.measured_packets);
  const double fast_epp =
      fast.total_energy_pj() / static_cast<double>(fast.measured_packets);
  const double energy_err = (fast_epp - cycle_epp) / cycle_epp;
  EXPECT_LE(std::abs(energy_err), 0.05)
      << "energy/packet: cycle=" << cycle_epp << " fast=" << fast_epp;
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, TwoFidelityAccuracy,
    ::testing::Values(
        // 6x6: low and mid load per pattern.
        Scenario{6, TrafficPattern::UniformRandom, 0.05},
        Scenario{6, TrafficPattern::UniformRandom, 0.15},
        Scenario{6, TrafficPattern::Hotspot, 0.05},
        Scenario{6, TrafficPattern::Hotspot, 0.10},
        Scenario{6, TrafficPattern::Tornado, 0.05},
        Scenario{6, TrafficPattern::Tornado, 0.15},
        // 8x8: the paper's main grid.
        Scenario{8, TrafficPattern::UniformRandom, 0.05},
        Scenario{8, TrafficPattern::UniformRandom, 0.15},
        Scenario{8, TrafficPattern::Hotspot, 0.05},
        Scenario{8, TrafficPattern::Hotspot, 0.10},
        Scenario{8, TrafficPattern::Tornado, 0.10}),
    scenario_name);

// Workload-zoo twin runs: replay the NN-dataflow and coherence generators
// through run_trace at both fidelities. Trace replay mixes message sizes
// (short circuit-ineligible control flits next to CS-compressed bursts), a
// regime the fast model approximates more coarsely than steady synthetic
// load, so each scenario carries its own drift bounds (measured values in
// EXPERIMENTS.md, "Workload zoo").
struct WorkloadScenario {
  const char* spec;
  int k;
  double lat_bound;     // |relative mean-latency error| ceiling
  double energy_bound;  // |relative energy-per-packet error| ceiling
};

std::string workload_scenario_name(
    const ::testing::TestParamInfo<WorkloadScenario>& info) {
  const WorkloadScenario& s = info.param;
  std::string name(s.spec);
  for (char& c : name) {
    if (c == ':') c = '_';
  }
  return name + "_" + std::to_string(s.k) + "x" + std::to_string(s.k);
}

class WorkloadAccuracy : public ::testing::TestWithParam<WorkloadScenario> {};

TEST_P(WorkloadAccuracy, FastModelTracksCycleCore) {
  const WorkloadScenario& s = GetParam();
  const NocConfig cfg = NocConfig::hybrid_tdm_vc4(s.k);

  WorkloadOptions wo;
  wo.k = s.k;
  wo.seed = 1;
  const WorkloadTrace wt = build_workload(s.spec, wo);

  RunParams p;
  p.measure_packets = 6000;
  p.seed = 1;
  p.fidelity = Fidelity::Cycle;
  const RunResult cycle = run_trace(cfg, wt.entries, p);
  p.fidelity = Fidelity::Fast;
  const RunResult fast = run_trace(cfg, wt.entries, p);

  ASSERT_FALSE(cycle.saturated) << "workload saturates the cycle core";
  ASSERT_FALSE(fast.saturated);
  ASSERT_GT(cycle.measured_packets, 0u);
  ASSERT_GT(fast.measured_packets, 0u);

  const double lat_err =
      (fast.avg_latency - cycle.avg_latency) / cycle.avg_latency;
  EXPECT_LE(std::abs(lat_err), s.lat_bound)
      << "mean latency: cycle=" << cycle.avg_latency
      << " fast=" << fast.avg_latency;

  const double cycle_epp =
      cycle.total_energy_pj() / static_cast<double>(cycle.measured_packets);
  const double fast_epp =
      fast.total_energy_pj() / static_cast<double>(fast.measured_packets);
  const double energy_err = (fast_epp - cycle_epp) / cycle_epp;
  EXPECT_LE(std::abs(energy_err), s.energy_bound)
      << "energy/packet: cycle=" << cycle_epp << " fast=" << fast_epp;
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, WorkloadAccuracy,
    ::testing::Values(WorkloadScenario{"nn:resnet50", 6, 0.15, 0.10},
                      WorkloadScenario{"nn:resnet50", 8, 0.15, 0.10},
                      WorkloadScenario{"nn:gnmt", 8, 0.20, 0.10},
                      WorkloadScenario{"coherence", 6, 0.15, 0.10},
                      WorkloadScenario{"coherence", 8, 0.15, 0.10}),
    workload_scenario_name);

}  // namespace
}  // namespace hybridnoc
