#include "sdm/sdm_network.hpp"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace hybridnoc {
namespace {

NocConfig sdm_cfg(int k = 6) {
  NocConfig c = NocConfig::hybrid_sdm_vc4(k);
  c.path_freq_threshold = 4;
  c.policy_epoch_cycles = 512;
  return c;
}

PacketPtr make_data(PacketId id, NodeId src, NodeId dst, int flits = 5) {
  auto p = std::make_shared<Packet>();
  p->id = id;
  p->src = src;
  p->dst = dst;
  p->num_flits = flits;
  return p;
}

TEST(SdmNetwork, PacketSwitchedDeliveryWithSerialization) {
  SdmNetwork net(sdm_cfg(4));
  Cycle delivered_at = 0;
  PacketPtr got;
  net.set_deliver_handler([&](const PacketPtr& p, Cycle at) {
    got = p;
    delivered_at = at;
  });
  const NodeId dst = net.mesh().node({3, 0});
  auto pkt = make_data(1, 0, dst, 5);
  net.send(pkt);
  for (int i = 0; i < 200; ++i) net.tick();
  ASSERT_TRUE(got != nullptr);
  EXPECT_EQ(got->id, 1u);
  // 5 flits become 20 phits on a 4-byte plane: serialization dominates.
  // Zero-load: 5 cycles/hop x 3 hops + 6 + 20 phits = 41.
  EXPECT_EQ(delivered_at - got->created, 41u);
}

TEST(SdmNetwork, SerializationMakesSdmSlowerThanWideLinkZeroLoad) {
  // The packet-switched path of SDM must be slower than a full-width
  // network's 5h+6+F zero-load latency (here 5*3+6+5 = 26 vs 41).
  SdmNetwork net(sdm_cfg(4));
  Cycle latency = 0;
  net.set_deliver_handler(
      [&](const PacketPtr& p, Cycle at) { latency = at - p->created; });
  net.send(make_data(1, 0, net.mesh().node({3, 0}), 5));
  for (int i = 0; i < 200; ++i) net.tick();
  EXPECT_GT(latency, 26u);
}

TEST(SdmNetwork, FrequentPairGetsCircuitWithLowLatency) {
  SdmNetwork net(sdm_cfg(6));
  const NodeId src = 0, dst = net.mesh().node({5, 0});
  std::map<PacketId, Cycle> latency;
  net.set_deliver_handler(
      [&](const PacketPtr& p, Cycle at) { latency[p->id] = at - p->created; });
  PacketId id = 1;
  for (int i = 0; i < 40; ++i) {
    net.send(make_data(id++, src, dst, 4));
    for (int t = 0; t < 60; ++t) net.tick();
  }
  EXPECT_EQ(net.active_circuits(), 1);
  EXPECT_GT(net.circuit_packets(), 0u);
  // Circuit latency: 16 phits + 5 hops + 4 = 25, below the serialized
  // packet-switched 5*5+6+20 = 51 and even below the wide-link 36.
  EXPECT_EQ(latency[id - 1], 25u);
}

TEST(SdmNetwork, CircuitCountLimitedByPlanes) {
  // Only P-1 = 3 circuit planes exist; a 4th circuit sharing the same links
  // cannot be set up (Section I: "the number of planes becomes
  // insufficient").
  SdmNetwork net(sdm_cfg(6));
  net.set_deliver_handler([](const PacketPtr&, Cycle) {});
  PacketId id = 1;
  // Four sources in row 0 all cross the (4,0)->(5,0) link.
  for (int round = 0; round < 30; ++round) {
    for (int x = 0; x < 4; ++x) {
      net.send(make_data(id++, net.mesh().node({x, 0}), net.mesh().node({5, 0}), 4));
    }
    for (int t = 0; t < 50; ++t) net.tick();
  }
  EXPECT_EQ(net.active_circuits(), 3);
}

TEST(SdmNetwork, IdleCircuitsReleaseTheirPlanes) {
  NocConfig cfg = sdm_cfg(6);
  cfg.path_idle_timeout = 2000;
  SdmNetwork net(cfg);
  net.set_deliver_handler([](const PacketPtr&, Cycle) {});
  PacketId id = 1;
  for (int i = 0; i < 10; ++i) {
    net.send(make_data(id++, 0, net.mesh().node({5, 0}), 4));
    for (int t = 0; t < 30; ++t) net.tick();
  }
  ASSERT_EQ(net.active_circuits(), 1);
  ASSERT_GT(net.reserved_links(), 0);
  for (int t = 0; t < 6000; ++t) net.tick();
  EXPECT_EQ(net.active_circuits(), 0);
  EXPECT_EQ(net.reserved_links(), 0);
}

TEST(SdmNetwork, ConservationUnderRandomLoad) {
  SdmNetwork net(sdm_cfg(4));
  std::uint64_t injected = 0, delivered = 0;
  net.set_deliver_handler([&](const PacketPtr&, Cycle) { ++delivered; });
  Rng rng(4);
  PacketId id = 1;
  for (int cycle = 0; cycle < 5000; ++cycle) {
    for (NodeId s = 0; s < net.num_nodes(); ++s) {
      if (!rng.bernoulli(0.01)) continue;
      const NodeId d = static_cast<NodeId>(
          rng.uniform_int(static_cast<std::uint64_t>(net.num_nodes())));
      if (d == s) continue;
      net.send(make_data(id++, s, d, 5));
      ++injected;
    }
    net.tick();
  }
  net.set_policy_frozen(true);
  for (int i = 0; i < 30000 && !net.quiescent(); ++i) net.tick();
  EXPECT_TRUE(net.quiescent());
  EXPECT_EQ(delivered, injected);
}

TEST(SdmNetwork, CircuitPacketsSerializeOnTheirConnection) {
  // Back-to-back packets on one circuit queue behind each other: the k-th
  // packet is delayed by k * phit-serialization.
  SdmNetwork net(sdm_cfg(6));
  std::map<PacketId, Cycle> at;
  net.set_deliver_handler([&](const PacketPtr& p, Cycle c) { at[p->id] = c; });
  PacketId id = 1;
  // Establish the circuit first.
  for (int i = 0; i < 10; ++i) {
    net.send(make_data(id++, 0, net.mesh().node({5, 0}), 4));
    for (int t = 0; t < 60; ++t) net.tick();
  }
  ASSERT_EQ(net.active_circuits(), 1);
  const PacketId burst_start = id;
  for (int i = 0; i < 3; ++i) net.send(make_data(id++, 0, net.mesh().node({5, 0}), 4));
  for (int t = 0; t < 200; ++t) net.tick();
  // 16 phits of serialization between consecutive deliveries.
  EXPECT_EQ(at[burst_start + 1] - at[burst_start], 16u);
  EXPECT_EQ(at[burst_start + 2] - at[burst_start + 1], 16u);
}

TEST(SdmNetwork, ThroughputCollapsesUnderHighLoadVsCircuits) {
  // Qualitative Figure 4 shape: at high injection the serialized packet
  // planes saturate; the circuit path keeps a bounded latency for its pair.
  SdmNetwork net(sdm_cfg(4));
  StatAccumulator ps_lat;
  net.set_deliver_handler([&](const PacketPtr& p, Cycle c) {
    if (p->switching == Switching::Packet) ps_lat.add(static_cast<double>(c - p->created));
  });
  Rng rng(8);
  PacketId id = 1;
  for (int cycle = 0; cycle < 4000; ++cycle) {
    for (NodeId s = 0; s < net.num_nodes(); ++s) {
      if (!rng.bernoulli(0.08)) continue;
      const NodeId d = static_cast<NodeId>(
          rng.uniform_int(static_cast<std::uint64_t>(net.num_nodes())));
      if (d == s) continue;
      auto p = make_data(id++, s, d, 5);
      p->cs_eligible = false;  // force everything packet-switched
      net.send(p);
    }
    net.tick();
  }
  // Far above the zero-load 41 for 3 hops: the planes are saturated.
  EXPECT_GT(ps_lat.mean(), 80.0);
}

}  // namespace
}  // namespace hybridnoc
