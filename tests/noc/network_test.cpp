// End-to-end packet-switched network tests on small meshes.
#include "noc/network.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hpp"

namespace hybridnoc {
namespace {

PacketPtr make_data(PacketId id, NodeId src, NodeId dst, int flits) {
  auto p = std::make_shared<Packet>();
  p->id = id;
  p->src = src;
  p->dst = dst;
  p->num_flits = flits;
  return p;
}

/// Zero-load packet-switched latency: 5 cycles per hop (4-stage router +
/// link) + NI injection/ejection overhead + serialization.
Cycle expected_zero_load(int hops, int flits) {
  return static_cast<Cycle>(5 * hops + 6 + flits);
}

TEST(Network, SingleZeroLoadPacketLatencyMatchesModel) {
  NocConfig cfg = NocConfig::packet_vc4(4);
  Network net(cfg);
  struct Delivery {
    PacketPtr pkt;
    Cycle at;
  };
  std::vector<Delivery> delivered;
  net.set_deliver_handler([&](const PacketPtr& p, Cycle at) {
    delivered.push_back({p, at});
  });

  const NodeId src = 0, dst = net.mesh().node({3, 2});
  auto pkt = make_data(1, src, dst, 5);
  net.ni(src).send(pkt, net.now());
  for (int i = 0; i < 100; ++i) net.tick();

  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].pkt->id, 1u);
  const int hops = net.mesh().hop_distance(src, dst);
  EXPECT_EQ(delivered[0].at - delivered[0].pkt->created,
            expected_zero_load(hops, 5));
}

TEST(Network, ZeroLoadLatencyScalesWithDistance) {
  NocConfig cfg = NocConfig::packet_vc4(6);
  Network net(cfg);
  std::map<PacketId, Cycle> arrival;
  net.set_deliver_handler(
      [&](const PacketPtr& p, Cycle at) { arrival[p->id] = at; });

  // One packet at a time so there is no contention.
  struct Case {
    NodeId src, dst;
    PacketId id;
  };
  std::vector<Case> cases = {{0, 1, 1}, {0, 7, 2}, {0, 35, 3}, {14, 21, 4}};
  for (const auto& c : cases) {
    const Cycle start = net.now();
    auto pkt = make_data(c.id, c.src, c.dst, 5);
    net.ni(c.src).send(pkt, start);
    for (int i = 0; i < 120; ++i) net.tick();
    ASSERT_TRUE(arrival.count(c.id));
    const int hops = net.mesh().hop_distance(c.src, c.dst);
    EXPECT_EQ(arrival[c.id] - start, expected_zero_load(hops, 5))
        << "src=" << c.src << " dst=" << c.dst;
  }
}

TEST(Network, SingleFlitPacketLatency) {
  Network net(NocConfig::packet_vc4(4));
  Cycle delivered_at = 0;
  net.set_deliver_handler([&](const PacketPtr&, Cycle at) { delivered_at = at; });
  const NodeId dst = net.mesh().node({2, 0});
  net.ni(0).send(make_data(1, 0, dst, 1), 0);
  for (int i = 0; i < 60; ++i) net.tick();
  EXPECT_EQ(delivered_at, expected_zero_load(2, 1));
}

TEST(Network, UniformRandomConservation) {
  // Inject Bernoulli uniform-random traffic for a while, then drain: every
  // packet injected must be delivered exactly once, at the right place.
  NocConfig cfg = NocConfig::packet_vc4(4);
  Network net(cfg);
  std::map<PacketId, NodeId> expected_dst;
  std::uint64_t delivered = 0;
  bool misdelivery = false;
  net.set_deliver_handler([&](const PacketPtr& p, Cycle) {
    ++delivered;
    auto it = expected_dst.find(p->id);
    if (it == expected_dst.end() || it->second != p->final_dst) misdelivery = true;
    expected_dst.erase(it);
  });

  Rng rng(123);
  PacketId next_id = 1;
  const int n = net.num_nodes();
  std::uint64_t injected = 0;
  for (int cycle = 0; cycle < 3000; ++cycle) {
    for (NodeId s = 0; s < n; ++s) {
      if (!rng.bernoulli(0.02)) continue;
      NodeId d = static_cast<NodeId>(rng.uniform_int(static_cast<std::uint64_t>(n)));
      if (d == s) continue;
      auto p = make_data(next_id, s, d, 5);
      expected_dst[next_id++] = d;
      net.ni(s).send(p, net.now());
      ++injected;
    }
    net.tick();
  }
  // Drain.
  for (int i = 0; i < 5000 && !net.quiescent(); ++i) net.tick();
  EXPECT_TRUE(net.quiescent());
  EXPECT_EQ(delivered, injected);
  EXPECT_FALSE(misdelivery);
  EXPECT_TRUE(expected_dst.empty());
  EXPECT_EQ(net.total_data_delivered(), injected);
}

TEST(Network, DeterministicAcrossRuns) {
  auto run = [] {
    Network net(NocConfig::packet_vc4(4));
    std::vector<std::pair<PacketId, Cycle>> log;
    net.set_deliver_handler(
        [&](const PacketPtr& p, Cycle at) { log.emplace_back(p->id, at); });
    Rng rng(77);
    PacketId id = 1;
    for (int cycle = 0; cycle < 1000; ++cycle) {
      for (NodeId s = 0; s < net.num_nodes(); ++s) {
        if (rng.bernoulli(0.05)) {
          NodeId d = static_cast<NodeId>(
              rng.uniform_int(static_cast<std::uint64_t>(net.num_nodes())));
          if (d != s) net.ni(s).send(make_data(id++, s, d, 5), net.now());
        }
      }
      net.tick();
    }
    return log;
  };
  EXPECT_EQ(run(), run());
}

TEST(Network, HighLoadDoesNotViolateInvariants) {
  // Saturating load: HN_CHECKs (credit overflow, buffer overflow, crossbar
  // conflicts) must hold, and the network must drain afterwards.
  Network net(NocConfig::packet_vc4(4));
  Rng rng(5);
  PacketId id = 1;
  for (int cycle = 0; cycle < 2000; ++cycle) {
    for (NodeId s = 0; s < net.num_nodes(); ++s) {
      if (net.ni(s).inject_queue_depth() < 8 && rng.bernoulli(0.5)) {
        NodeId d = static_cast<NodeId>(
            rng.uniform_int(static_cast<std::uint64_t>(net.num_nodes())));
        if (d != s) net.ni(s).send(make_data(id++, s, d, 5), net.now());
      }
    }
    net.tick();
  }
  for (int i = 0; i < 20000 && !net.quiescent(); ++i) net.tick();
  EXPECT_TRUE(net.quiescent());
  EXPECT_EQ(net.total_data_delivered(), net.total_data_sent());
}

TEST(Network, EnergyCountersAccumulate) {
  Network net(NocConfig::packet_vc4(4));
  net.ni(0).send(make_data(1, 0, 15, 5), 0);
  for (int i = 0; i < 100; ++i) net.tick();
  const auto e = net.total_energy();
  EXPECT_EQ(e.buffer_writes, e.buffer_reads);
  EXPECT_GT(e.buffer_writes, 0u);
  // 6 hops x 5 flits = 30 link traversals on the minimal path.
  EXPECT_EQ(e.link_flits, 30u);
  EXPECT_GT(e.vc_active_cycles, 0u);
  EXPECT_EQ(e.cycles, 100u * 16u);  // 16 routers
}

TEST(Network, VcGatingConvergesToMinimumWhenIdle) {
  NocConfig cfg = NocConfig::packet_vc4(4);
  cfg.vc_power_gating = true;
  Network net(cfg);
  for (int i = 0; i < 6000; ++i) net.tick();
  for (NodeId n = 0; n < net.num_nodes(); ++n) {
    EXPECT_EQ(net.router(n).announced_active_vcs(), cfg.min_active_vcs);
  }
}

TEST(Network, VcGatingReactivatesUnderLoad) {
  NocConfig cfg = NocConfig::packet_vc4(4);
  cfg.vc_power_gating = true;
  Network net(cfg);
  // Let it gate down first.
  for (int i = 0; i < 6000; ++i) net.tick();
  // Then saturate.
  Rng rng(9);
  PacketId id = 1;
  for (int cycle = 0; cycle < 4000; ++cycle) {
    for (NodeId s = 0; s < net.num_nodes(); ++s) {
      if (net.ni(s).inject_queue_depth() < 4 && rng.bernoulli(0.4)) {
        NodeId d = static_cast<NodeId>(
            rng.uniform_int(static_cast<std::uint64_t>(net.num_nodes())));
        if (d != s) net.ni(s).send(make_data(id++, s, d, 5), net.now());
      }
    }
    net.tick();
  }
  int raised = 0;
  for (NodeId n = 0; n < net.num_nodes(); ++n)
    if (net.router(n).announced_active_vcs() > cfg.min_active_vcs) ++raised;
  EXPECT_GT(raised, net.num_nodes() / 2);
  // Still correct under gating churn: drain completely.
  for (int i = 0; i < 30000 && !net.quiescent(); ++i) net.tick();
  EXPECT_TRUE(net.quiescent());
  EXPECT_EQ(net.total_data_delivered(), net.total_data_sent());
}

TEST(Network, GatedVcLeaksLessBufferEnergy) {
  NocConfig on = NocConfig::packet_vc4(4);
  on.vc_power_gating = true;
  NocConfig off = NocConfig::packet_vc4(4);
  Network gated(on), plain(off);
  for (int i = 0; i < 6000; ++i) {
    gated.tick();
    plain.tick();
  }
  EXPECT_LT(gated.total_energy().vc_active_cycles,
            plain.total_energy().vc_active_cycles);
}

}  // namespace
}  // namespace hybridnoc
