#include "noc/channel.hpp"

#include <gtest/gtest.h>

namespace hybridnoc {
namespace {

TEST(Channel, LatencyTwoDelivery) {
  Channel<int> ch(2);
  ch.send(42, 10);
  EXPECT_FALSE(ch.receive(10).has_value());
  EXPECT_FALSE(ch.receive(11).has_value());
  const auto v = ch.receive(12);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(ch.empty());
}

TEST(Channel, LatencyOneDelivery) {
  Channel<int> ch(1);
  ch.send(7, 5);
  const auto v = ch.receive(6);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
}

TEST(Channel, PreservesOrder) {
  Channel<int> ch(2);
  ch.send(1, 0);
  ch.send(2, 1);
  ch.send(3, 2);
  EXPECT_EQ(*ch.receive(2), 1);
  EXPECT_EQ(*ch.receive(3), 2);
  EXPECT_EQ(*ch.receive(4), 3);
}

TEST(Channel, MultipleSameCycleItems) {
  // Two items written in the same cycle both become readable together.
  Channel<int> ch(2);
  ch.send(1, 0);
  ch.send(2, 0);
  EXPECT_EQ(*ch.receive(2), 1);
  EXPECT_EQ(*ch.receive(2), 2);
  EXPECT_FALSE(ch.receive(2).has_value());
}

TEST(Channel, ArrivalAtModelsAdvanceSignal) {
  // The slot-stealing decision for crossbar cycle C is taken in C-1; an
  // arrival scheduled for C must be visible then, and one for C+1 too.
  // arrival_at/peek_arrival only inspect the cycle-ordered front, so a query
  // past an unconsumed item is a harness bug (see the death test below);
  // consume before moving on.
  Channel<int> ch(2);
  ch.send(9, 4);  // readable at 6
  EXPECT_FALSE(ch.arrival_at(5));
  EXPECT_TRUE(ch.arrival_at(6));
  const int* p = ch.peek_arrival(6);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, 9);
  ASSERT_TRUE(ch.receive(6).has_value());
  EXPECT_FALSE(ch.arrival_at(7));
  EXPECT_EQ(ch.peek_arrival(7), nullptr);
}

TEST(ChannelDeathTest, ArrivalQueryPastUnconsumedItemIsAnError) {
  Channel<int> ch(2);
  ch.send(9, 4);  // readable at 6
  EXPECT_DEATH((void)ch.arrival_at(7), "unconsumed");
}

TEST(Channel, InFlightCount) {
  Channel<int> ch(2);
  ch.send(1, 0);
  ch.send(2, 1);
  EXPECT_EQ(ch.in_flight(), 2u);
  (void)ch.receive(2);
  EXPECT_EQ(ch.in_flight(), 1u);
}

TEST(ChannelDeathTest, MissedItemIsAnError) {
  Channel<int> ch(1);
  ch.send(1, 0);  // readable at 1
  // Asking at cycle 2 with an unconsumed cycle-1 item trips the invariant.
  EXPECT_DEATH((void)ch.receive(2), "unconsumed");
}

}  // namespace
}  // namespace hybridnoc
