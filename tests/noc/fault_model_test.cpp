// The data-plane hardware fault model (src/noc/fault_model.hpp) and the
// end-to-end recovery it forces out of the packet-switched fabric: stateless
// per-traversal corruption, record/replay of fired transients, permanent
// link/router death with reachability and bisection accounting, fault-aware
// detour routing, and the NI-level CRC-squash / ack / retransmit loop.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "noc/fault_model.hpp"
#include "noc/network.hpp"
#include "noc/routing.hpp"

namespace hybridnoc {
namespace {

// ---------------------------------------------------------------------------
// FaultModel unit
// ---------------------------------------------------------------------------

TEST(FaultModel, TransientHashIsDeterministicPerSeed) {
  FaultModel a(4, 0.01, 99);
  FaultModel b(4, 0.01, 99);
  FaultModel c(4, 0.01, 100);
  std::vector<bool> fa, fb, fc;
  for (int i = 0; i < 5000; ++i) {
    fa.push_back(a.on_traverse(5, Port::East, static_cast<Cycle>(i)));
    fb.push_back(b.on_traverse(5, Port::East, static_cast<Cycle>(i)));
    fc.push_back(c.on_traverse(5, Port::East, static_cast<Cycle>(i)));
  }
  EXPECT_EQ(fa, fb);
  EXPECT_NE(fa, fc);  // seed actually feeds the hash
  EXPECT_GT(a.corrupted_traversals(), 0u);
  EXPECT_EQ(a.corrupted_traversals(), b.corrupted_traversals());
  EXPECT_EQ(a.traversals(5, Port::East), 5000u);
}

TEST(FaultModel, RecordedTransientsReplayWithoutTheHash) {
  FaultModel rec(4, 0.02, 7);
  rec.set_recording(true);
  std::vector<bool> fired;
  for (int i = 0; i < 2000; ++i) {
    fired.push_back(rec.on_traverse(1, Port::South, static_cast<Cycle>(i)));
  }
  ASSERT_GT(rec.fired_transients().size(), 0u);
  ASSERT_EQ(rec.fired_transients().size(), rec.corrupted_traversals());
  for (const auto& e : rec.fired_transients()) {
    EXPECT_EQ(e.kind, FaultKind::Transient);
    EXPECT_EQ(e.node, 1);
    EXPECT_EQ(e.out, Port::South);
    EXPECT_GT(e.occurrence, 0u);
  }

  // Replay keys on (link, occurrence): interleaving traversals of an
  // unrelated link must not shift which of this link's traversals corrupt.
  FaultModel rep(4, 0.0, 1);
  rep.set_transient_replay(rec.fired_transients());
  std::vector<bool> replayed;
  for (int i = 0; i < 2000; ++i) {
    (void)rep.on_traverse(9, Port::West, static_cast<Cycle>(i));
    replayed.push_back(rep.on_traverse(1, Port::South, static_cast<Cycle>(i)));
  }
  EXPECT_EQ(replayed, fired);
  EXPECT_EQ(rep.corrupted_traversals(), rec.corrupted_traversals());
}

TEST(FaultModel, StuckWindowCorruptsWithoutFailingTheLink) {
  FaultModel fm(4, 0.0, 1);
  fm.stick_link(0, Port::South, 50, 10);
  EXPECT_FALSE(fm.on_traverse(0, Port::South, 49));
  EXPECT_TRUE(fm.on_traverse(0, Port::South, 50));
  EXPECT_TRUE(fm.on_traverse(0, Port::South, 59));
  EXPECT_FALSE(fm.on_traverse(0, Port::South, 60));
  // Stuck is transient trouble the end-to-end layer rides out, not a
  // permanent failure routing should detour around.
  EXPECT_FALSE(fm.link_failed(0, Port::South, 55));
  EXPECT_FALSE(fm.any_failed(55));
}

TEST(FaultModel, DeadLinkAndDeadRouterActivateOnSchedule) {
  FaultModel fm(4, 0.0, 1);
  fm.kill_link(1, Port::East, 100);
  fm.kill_router(5, 200);
  EXPECT_FALSE(fm.link_failed(1, Port::East, 99));
  EXPECT_FALSE(fm.any_failed(99));
  EXPECT_TRUE(fm.link_failed(1, Port::East, 100));
  EXPECT_TRUE(fm.any_failed(100));
  EXPECT_FALSE(fm.on_traverse(1, Port::East, 99));
  EXPECT_TRUE(fm.on_traverse(1, Port::East, 100));  // fail-dirty: corrupts

  // A dead router takes every incident directed link with it: its own
  // outputs and its neighbours' links toward it.
  EXPECT_FALSE(fm.node_failed(5, 199));
  EXPECT_TRUE(fm.node_failed(5, 200));
  EXPECT_TRUE(fm.link_failed(5, Port::East, 200));
  EXPECT_TRUE(fm.link_failed(4, Port::East, 200));   // 4 -> 5
  EXPECT_TRUE(fm.link_failed(1, Port::South, 200));  // 1 -> 5
  EXPECT_FALSE(fm.link_failed(4, Port::East, 199));
  EXPECT_EQ(fm.scheduled_events().size(), 2u);
}

TEST(FaultModel, ReachabilityAndDegradationMetrics) {
  FaultModel fm(4, 0.0, 1);
  EXPECT_TRUE(fm.reachable(0, 15, 0));
  EXPECT_EQ(fm.failed_links(0), 0);
  EXPECT_EQ(fm.bisection_links_total(), 8);
  EXPECT_EQ(fm.bisection_links_alive(0), 8);

  // Cut corner node 15 (x=3, y=3) out of the mesh entirely: both inbound
  // and both outbound directed links die at cycle 10.
  fm.kill_link(14, Port::East, 10);
  fm.kill_link(11, Port::South, 10);
  fm.kill_link(15, Port::West, 10);
  fm.kill_link(15, Port::North, 10);
  EXPECT_TRUE(fm.reachable(0, 15, 9));
  EXPECT_FALSE(fm.reachable(0, 15, 10));
  EXPECT_FALSE(fm.reachable(15, 0, 10));
  EXPECT_TRUE(fm.reachable(0, 14, 10));  // the rest of the mesh is intact
  EXPECT_EQ(fm.failed_links(10), 4);

  // None of those links cross the vertical mid-cut (x=1 | x=2); killing one
  // that does is what dents the surviving bisection bandwidth.
  EXPECT_EQ(fm.bisection_links_alive(10), 8);
  fm.kill_link(1, Port::East, 20);  // (1,0) -> (2,0)
  EXPECT_EQ(fm.bisection_links_alive(20), 7);
  EXPECT_EQ(fm.bisection_links_total(), 8);
}

TEST(FaultAwareRouting, DetoursAroundDeadLinkAndReportsCutoff) {
  Mesh mesh(4);
  FaultModel fm(4, 0.0, 1);
  // XY route 0 -> 3 goes East along the top row; kill the first hop.
  fm.kill_link(0, Port::East, 0);
  const Port detour = route_fault_aware(mesh, fm, 0, 3, 0);
  EXPECT_NE(detour, Port::East);
  EXPECT_NE(detour, Port::Local);
  // Off the fault, the XY port is kept: fault-free regions are unchanged.
  EXPECT_EQ(route_fault_aware(mesh, fm, 4, 7, 0), Port::East);
  // A fully cut-off router has no healthy port to offer.
  fm.kill_router(5, 0);
  EXPECT_EQ(route_fault_aware(mesh, fm, 5, 7, 0), Port::Local);
}

// ---------------------------------------------------------------------------
// End-to-end recovery on the packet-switched fabric
// ---------------------------------------------------------------------------

/// Seeded uniform-random packet soup; the stream is a pure function of the
/// seed so paired runs see identical workloads.
void inject_uniform(Network& net, Rng& rng, int count, int flits = 5) {
  PacketId id = 1;
  const NodeId nodes = static_cast<NodeId>(net.num_nodes());
  int sent = 0;
  while (sent < count) {
    const NodeId src = static_cast<NodeId>(rng.uniform_int(nodes));
    const NodeId dst = static_cast<NodeId>(rng.uniform_int(nodes));
    if (src == dst) continue;
    auto p = std::make_shared<Packet>();
    p->id = id++;
    p->src = src;
    p->dst = dst;
    p->num_flits = flits;
    net.ni(src).send(std::move(p), net.now());
    ++sent;
    net.tick();
  }
}

void drain(Network& net, int max_cycles = 300000) {
  for (int i = 0; i < max_cycles && !net.quiescent(); ++i) net.tick();
  ASSERT_TRUE(net.quiescent());
}

TEST(E2eRecovery, BerStormDeliversEveryPacketUncorrupted) {
  NocConfig cfg = NocConfig::packet_vc4(4);
  cfg.link_ber = 1e-3;
  cfg.fault_seed = 5;
  cfg.e2e_recovery = true;
  cfg.retx_timeout_cycles = 128;
  cfg.retx_backoff_cap_cycles = 1024;
  Network net(cfg);
  Rng rng(7);
  inject_uniform(net, rng, 3000);
  drain(net);

  const DegradationReport d = net.degradation_report();
  EXPECT_EQ(d.data_sent, 3000u);
  // The acceptance bar: every injected packet eventually delivered, and
  // corrupted copies were squashed rather than delivered dirty.
  EXPECT_EQ(d.data_delivered, d.data_sent);
  EXPECT_GT(d.corrupted_traversals, 0u);  // the storm was real
  EXPECT_GT(d.crc_flagged_flits, 0u);
  EXPECT_GT(d.crc_squashed_packets, 0u);
  EXPECT_GT(d.retransmits, 0u);
  EXPECT_EQ(d.retx_give_ups, 0u);
  EXPECT_EQ(d.unreachable_failed, 0u);
  EXPECT_EQ(d.e2e_outstanding, 0u);
  EXPECT_GE(d.e2e_acks_sent, d.data_sent);
}

TEST(E2eRecovery, PersistentStuckLinkExhaustsRetriesAndGivesUp) {
  NocConfig cfg = NocConfig::packet_vc4(4);
  cfg.e2e_recovery = true;
  cfg.retx_timeout_cycles = 64;
  cfg.retx_backoff_cap_cycles = 256;
  cfg.max_retx_attempts = 2;
  Network net(cfg);
  // Stuck (not dead) for the whole run: routing keeps using the link, every
  // crossing packet corrupts, and the source's retry budget runs out.
  net.ensure_fault_model().stick_link(11, Port::South, 0, 1000000);
  for (int i = 0; i < 20; ++i) {
    auto p = std::make_shared<Packet>();
    p->id = static_cast<PacketId>(i + 1);
    p->src = 3;  // XY route 3 -> 15: straight South through 11 -> 15
    p->dst = 15;
    p->num_flits = 5;
    net.ni(3).send(std::move(p), net.now());
    net.tick();
  }
  drain(net);
  const DegradationReport d = net.degradation_report();
  EXPECT_EQ(d.data_sent, 20u);
  EXPECT_EQ(d.data_delivered, 0u);
  EXPECT_EQ(d.retx_give_ups, 20u);
  EXPECT_EQ(d.retransmits, 40u);  // exactly max_retx_attempts each
  EXPECT_EQ(d.e2e_outstanding, 0u);
}

TEST(E2eRecovery, WatchdogFlagsPacketsStalledOnRecovery) {
  NocConfig cfg = NocConfig::packet_vc4(4);
  cfg.e2e_recovery = true;
  cfg.retx_timeout_cycles = 256;
  cfg.retx_backoff_cap_cycles = 4096;
  cfg.max_retx_attempts = 6;
  cfg.watchdog_stall_cycles = 400;
  Network net(cfg);
  net.ensure_fault_model().stick_link(11, Port::South, 0, 1000000);
  auto p = std::make_shared<Packet>();
  p->id = 1;
  p->src = 3;
  p->dst = 15;
  p->num_flits = 5;
  net.ni(3).send(std::move(p), net.now());
  // Long enough for the packet to sit unacked past the stall threshold and
  // for the (coarse-cadence) watchdog sweep to catch it.
  for (int i = 0; i < 4000; ++i) net.tick();
  EXPECT_GE(net.degradation_report().watchdog_flagged, 1u);
  // Flagging is once per packet, not once per sweep.
  const std::uint64_t flagged = net.degradation_report().watchdog_flagged;
  for (int i = 0; i < 2000; ++i) net.tick();
  EXPECT_EQ(net.degradation_report().watchdog_flagged, flagged);
}

TEST(E2eRecovery, PartitionedDestinationFailsCleanly) {
  NocConfig cfg = NocConfig::packet_vc4(4);
  cfg.e2e_recovery = true;
  cfg.retx_timeout_cycles = 64;
  Network net(cfg);
  FaultModel& fm = net.ensure_fault_model();
  // Cut node 15 off completely (see the reachability unit test above).
  fm.kill_link(14, Port::East, 0);
  fm.kill_link(11, Port::South, 0);
  fm.kill_link(15, Port::West, 0);
  fm.kill_link(15, Port::North, 0);
  for (int i = 0; i < 8; ++i) {
    auto p = std::make_shared<Packet>();
    p->id = static_cast<PacketId>(i + 1);
    p->src = 0;
    p->dst = 15;
    p->num_flits = 5;
    net.ni(0).send(std::move(p), net.now());
    net.tick();
  }
  // A packet to a live node still flows around the carnage.
  auto ok = std::make_shared<Packet>();
  ok->id = 100;
  ok->src = 0;
  ok->dst = 14;
  ok->num_flits = 5;
  net.ni(0).send(std::move(ok), net.now());
  drain(net);

  const DegradationReport d = net.degradation_report();
  // Unreachable packets were refused at admission: they never entered the
  // fabric, never count as workload, and nothing wanders forever.
  EXPECT_EQ(d.unreachable_failed, 8u);
  EXPECT_EQ(d.data_sent, 1u);
  EXPECT_EQ(d.data_delivered, 1u);
  EXPECT_EQ(d.e2e_outstanding, 0u);
  EXPECT_EQ(d.failed_links, 4);
  EXPECT_EQ(d.bisection_links_alive, d.bisection_links_total);
}

}  // namespace
}  // namespace hybridnoc
