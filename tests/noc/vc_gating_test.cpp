// VC power-gating tests beyond the basics in network_test.cpp: the latency
// gating metric (the paper's proposed future-work policy) and gating
// correctness under sustained churn.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "noc/network.hpp"

namespace hybridnoc {
namespace {

PacketPtr make_data(PacketId id, NodeId src, NodeId dst) {
  auto p = std::make_shared<Packet>();
  p->id = id;
  p->src = src;
  p->dst = dst;
  p->num_flits = 5;
  return p;
}

NocConfig latency_gated(int k) {
  NocConfig cfg = NocConfig::packet_vc4(k);
  cfg.vc_power_gating = true;
  cfg.vc_gate_metric = NocConfig::VcGateMetric::Latency;
  return cfg;
}

TEST(VcGatingLatencyMetric, GatesDownWhenResidencyIsLow) {
  Network net(latency_gated(4));
  // Light traffic: flits win the switch almost immediately, so the mean
  // residency stays below the low threshold and VCs gate off.
  Rng rng(1);
  PacketId id = 1;
  for (int cycle = 0; cycle < 8000; ++cycle) {
    for (NodeId s = 0; s < net.num_nodes(); ++s) {
      if (!rng.bernoulli(0.005)) continue;
      const NodeId d = static_cast<NodeId>(
          rng.uniform_int(static_cast<std::uint64_t>(net.num_nodes())));
      if (d != s) net.ni(s).send(make_data(id++, s, d), net.now());
    }
    net.tick();
  }
  int gated = 0;
  for (NodeId n = 0; n < net.num_nodes(); ++n) {
    if (net.router(n).announced_active_vcs() == 2) ++gated;
  }
  EXPECT_GT(gated, net.num_nodes() / 2);
}

TEST(VcGatingLatencyMetric, ReactivatesWhenFlitsQueue) {
  Network net(latency_gated(4));
  for (int i = 0; i < 4000; ++i) net.tick();  // gate down while idle
  Rng rng(2);
  PacketId id = 1;
  for (int cycle = 0; cycle < 6000; ++cycle) {
    for (NodeId s = 0; s < net.num_nodes(); ++s) {
      if (net.ni(s).inject_queue_depth() < 6 && rng.bernoulli(0.35)) {
        const NodeId d = static_cast<NodeId>(
            rng.uniform_int(static_cast<std::uint64_t>(net.num_nodes())));
        if (d != s) net.ni(s).send(make_data(id++, s, d), net.now());
      }
    }
    net.tick();
  }
  int raised = 0;
  for (NodeId n = 0; n < net.num_nodes(); ++n) {
    if (net.router(n).announced_active_vcs() > 2) ++raised;
  }
  EXPECT_GT(raised, net.num_nodes() / 2);
}

TEST(VcGatingLatencyMetric, ConservesUnderChurn) {
  Network net(latency_gated(4));
  Rng rng(3);
  PacketId id = 1;
  std::uint64_t injected = 0, delivered = 0;
  net.set_deliver_handler([&](const PacketPtr&, Cycle) { ++delivered; });
  // Alternate bursts and silence so VCs churn up and down repeatedly.
  for (int phase = 0; phase < 6; ++phase) {
    const double rate = (phase % 2 == 0) ? 0.3 : 0.002;
    for (int cycle = 0; cycle < 2500; ++cycle) {
      for (NodeId s = 0; s < net.num_nodes(); ++s) {
        if (net.ni(s).inject_queue_depth() < 6 && rng.bernoulli(rate)) {
          const NodeId d = static_cast<NodeId>(
              rng.uniform_int(static_cast<std::uint64_t>(net.num_nodes())));
          if (d == s) continue;
          net.ni(s).send(make_data(id++, s, d), net.now());
          ++injected;
        }
      }
      net.tick();
    }
  }
  for (int i = 0; i < 30000 && !net.quiescent(); ++i) net.tick();
  EXPECT_TRUE(net.quiescent());
  EXPECT_EQ(delivered, injected);
}

TEST(VcGating, UtilizationAndLatencyMetricsBothSaveLeakage) {
  NocConfig off = NocConfig::packet_vc4(4);
  NocConfig util = off;
  util.vc_power_gating = true;
  NocConfig lat = latency_gated(4);
  Network n_off(off), n_util(util), n_lat(lat);
  for (int i = 0; i < 6000; ++i) {
    n_off.tick();
    n_util.tick();
    n_lat.tick();
  }
  EXPECT_LT(n_util.total_energy().vc_active_cycles,
            n_off.total_energy().vc_active_cycles);
  EXPECT_LT(n_lat.total_energy().vc_active_cycles,
            n_off.total_energy().vc_active_cycles);
}

}  // namespace
}  // namespace hybridnoc
