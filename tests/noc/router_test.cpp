// Single-router microtests: wire one router's ports to raw channels and
// observe the pipeline cycle by cycle.
#include "noc/router.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace hybridnoc {
namespace {

class NullHolder : public VcHolder {
 public:
  bool holds_vc_allocation(Port, int) const override { return held; }
  bool held = false;
};

PacketPtr make_packet(PacketId id, NodeId src, NodeId dst, int flits) {
  auto p = std::make_shared<Packet>();
  p->id = id;
  p->src = src;
  p->dst = dst;
  p->final_dst = dst;
  p->num_flits = flits;
  return p;
}

Flit make_flit(const PacketPtr& pkt, int seq, int vc) {
  Flit f;
  f.pkt = pkt.get();  // tests keep the PacketPtr alive for the run
  f.seq = seq;
  f.vc = vc;
  if (pkt->num_flits == 1) {
    f.type = FlitType::HeadTail;
  } else if (seq == 0) {
    f.type = FlitType::Head;
  } else if (seq == pkt->num_flits - 1) {
    f.type = FlitType::Tail;
  } else {
    f.type = FlitType::Body;
  }
  return f;
}

/// One router in the middle of a 3x3 mesh (node 4), with all five ports wired
/// to loose channels the test drives directly.
struct RouterBench {
  explicit RouterBench(NocConfig cfg = NocConfig::packet_vc4(3))
      : mesh(cfg.k), router(cfg, mesh.node({1, 1}), mesh) {
    for (int p = 0; p < kNumPorts; ++p) {
      in[p] = std::make_unique<FlitChannel>(kDataChannelLatency);
      in_credit[p] = std::make_unique<CreditChannel>(kCreditChannelLatency);
      out[p] = std::make_unique<FlitChannel>(kDataChannelLatency);
      out_credit[p] = std::make_unique<CreditChannel>(kCreditChannelLatency);
      router.connect_input(static_cast<Port>(p), in[p].get(), in_credit[p].get(),
                           &upstream, opposite(static_cast<Port>(p)));
      router.connect_output(static_cast<Port>(p), out[p].get(), out_credit[p].get());
    }
  }

  void run_to(Cycle target) {
    while (now < target) router.tick(now++);
  }

  Mesh mesh;
  NullHolder upstream;
  Router router;
  std::unique_ptr<FlitChannel> in[kNumPorts], out[kNumPorts];
  std::unique_ptr<CreditChannel> in_credit[kNumPorts], out_credit[kNumPorts];
  Cycle now = 0;
};

TEST(Router, SingleFlitPipelineIsFourCyclesPlusLink) {
  RouterBench b;
  // Packet headed east: inject on the west input, readable at cycle 10.
  const NodeId east = b.mesh.node({2, 1});
  auto pkt = make_packet(1, b.mesh.node({0, 1}), east, 1);
  b.in[static_cast<int>(Port::West)]->send(make_flit(pkt, 0, 0), 8);
  b.run_to(16);
  // BW@10, VA@11, SA@12, ST@13, written end of 13 -> readable 15.
  auto& east_out = *b.out[static_cast<int>(Port::East)];
  EXPECT_TRUE(east_out.arrival_at(15));
}

TEST(Router, XyRouteSelectsOutputPort) {
  RouterBench b;
  auto north = make_packet(1, 0, b.mesh.node({1, 0}), 1);
  auto local = make_packet(2, 0, b.mesh.node({1, 1}), 1);
  b.in[static_cast<int>(Port::South)]->send(make_flit(north, 0, 0), 0);
  b.in[static_cast<int>(Port::West)]->send(make_flit(local, 0, 1), 0);
  b.run_to(10);
  EXPECT_TRUE(b.out[static_cast<int>(Port::North)]->arrival_at(7));
  EXPECT_TRUE(b.out[static_cast<int>(Port::Local)]->arrival_at(7));
}

TEST(Router, CreditReturnedAtSwitchAllocation) {
  RouterBench b;
  auto pkt = make_packet(1, 0, b.mesh.node({2, 1}), 1);
  b.in[static_cast<int>(Port::West)]->send(make_flit(pkt, 0, 2), 8);
  b.run_to(14);
  // SA at 12 sends the credit; latency-1 wire -> readable at 13.
  auto c = b.in_credit[static_cast<int>(Port::West)]->receive(13);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->vc, 2);
}

TEST(Router, WormholeFlitsStayOrderedAndContiguous) {
  RouterBench b;
  auto pkt = make_packet(1, 0, b.mesh.node({2, 1}), 5);
  for (int s = 0; s < 5; ++s)
    b.in[static_cast<int>(Port::West)]->send(make_flit(pkt, s, 0),
                                             static_cast<Cycle>(8 + s));
  b.run_to(30);
  auto& east_out = *b.out[static_cast<int>(Port::East)];
  int expected_seq = 0;
  for (Cycle t = 10; t < 30; ++t) {
    while (auto f = east_out.receive(t)) {
      EXPECT_EQ(f->seq, expected_seq++);
    }
  }
  EXPECT_EQ(expected_seq, 5);
}

TEST(Router, BodyFlitsStreamOnePerCycle) {
  RouterBench b;
  auto pkt = make_packet(1, 0, b.mesh.node({2, 1}), 5);
  for (int s = 0; s < 5; ++s)
    b.in[static_cast<int>(Port::West)]->send(make_flit(pkt, s, 0),
                                             static_cast<Cycle>(8 + s));
  b.run_to(30);
  // Head readable out at 15, then one flit per cycle.
  auto& east_out = *b.out[static_cast<int>(Port::East)];
  for (Cycle t = 15; t < 20; ++t) {
    auto f = east_out.receive(t);
    ASSERT_TRUE(f.has_value()) << t;
    EXPECT_EQ(f->seq, static_cast<int>(t - 15));
  }
}

TEST(Router, TwoInputsSameOutputArbitrated) {
  RouterBench b;
  auto a = make_packet(1, 0, b.mesh.node({2, 1}), 1);
  auto c = make_packet(2, 0, b.mesh.node({2, 1}), 1);
  b.in[static_cast<int>(Port::West)]->send(make_flit(a, 0, 0), 8);
  b.in[static_cast<int>(Port::North)]->send(make_flit(c, 0, 0), 8);
  b.run_to(20);
  // Both must come out of East, on different cycles.
  int got = 0;
  Cycle first = 0, second = 0;
  for (Cycle t = 10; t < 20; ++t) {
    while (b.out[static_cast<int>(Port::East)]->receive(t)) {
      if (++got == 1) first = t;
      else second = t;
    }
  }
  EXPECT_EQ(got, 2);
  EXPECT_NE(first, second);
}

TEST(Router, DistinctVcsForConcurrentPackets) {
  // Two packets from the same input port on different VCs toward different
  // outputs proceed concurrently.
  RouterBench b;
  auto north = make_packet(1, 0, b.mesh.node({1, 0}), 1);
  auto east = make_packet(2, 0, b.mesh.node({2, 1}), 1);
  b.in[static_cast<int>(Port::West)]->send(make_flit(north, 0, 0), 8);
  b.in[static_cast<int>(Port::West)]->send(make_flit(east, 0, 1), 8);
  b.run_to(20);
  bool got_north = false, got_east = false;
  for (Cycle t = 10; t < 20; ++t) {
    while (b.out[static_cast<int>(Port::North)]->receive(t)) got_north = true;
    while (b.out[static_cast<int>(Port::East)]->receive(t)) got_east = true;
  }
  EXPECT_TRUE(got_north);
  EXPECT_TRUE(got_east);
}

TEST(Router, StallsWithoutDownstreamCredits) {
  RouterBench b;
  // Two 5-flit packets to the same output VC pool: with 4 VCs both can be
  // VA'd, but with zero... instead exhaust credits by never returning any:
  // send 5 flits (fills one downstream VC), then a second packet must use
  // another VC; send 4 more packets to occupy all 4 VCs, and a 5th packet
  // must wait until credits return.
  std::vector<PacketPtr> pkts;  // outlive the run: flits hold raw pointers
  for (int i = 0; i < 5; ++i) {
    auto pkt = make_packet(static_cast<PacketId>(i + 1), 0, b.mesh.node({2, 1}), 5);
    for (int s = 0; s < 5; ++s)
      b.in[static_cast<int>(Port::West)]->send(
          make_flit(pkt, s, i % 4), static_cast<Cycle>(8 + i * 5 + s));
    pkts.push_back(std::move(pkt));
  }
  b.run_to(120);
  // Only 4 packets' flits (20) can come out; packet 5 needs vc0 which still
  // holds packet 1's allocation downstream (no credits ever returned).
  int flits_out = 0;
  for (Cycle t = 10; t < 120; ++t)
    while (b.out[static_cast<int>(Port::East)]->receive(t)) ++flits_out;
  EXPECT_EQ(flits_out, 20);
  EXPECT_FALSE(b.router.idle());
}

TEST(Router, EnergyEventsAreCounted) {
  RouterBench b;
  auto pkt = make_packet(1, 0, b.mesh.node({2, 1}), 5);
  for (int s = 0; s < 5; ++s)
    b.in[static_cast<int>(Port::West)]->send(make_flit(pkt, s, 0),
                                             static_cast<Cycle>(8 + s));
  b.run_to(30);
  const auto& e = b.router.energy();
  EXPECT_EQ(e.buffer_writes, 5u);
  EXPECT_EQ(e.buffer_reads, 5u);
  EXPECT_EQ(e.xbar_flits, 5u);
  EXPECT_EQ(e.link_flits, 5u);  // East is a real link
  EXPECT_EQ(e.vc_arbs, 1u);     // one packet, one VC allocation
  EXPECT_EQ(e.sw_arbs, 5u);
  EXPECT_EQ(e.cycles, 30u);
}

TEST(Router, IdleReflectsBufferedFlits) {
  RouterBench b;
  EXPECT_TRUE(b.router.idle());
  auto pkt = make_packet(1, 0, b.mesh.node({2, 1}), 1);
  b.in[static_cast<int>(Port::West)]->send(make_flit(pkt, 0, 0), 8);
  b.run_to(11);
  EXPECT_FALSE(b.router.idle());
  b.run_to(20);
  EXPECT_TRUE(b.router.idle());
}

TEST(Router, AdaptiveRoutePrefersCreditRichPort) {
  RouterBench b;
  // Config packet from (1,1) to (2,2): candidates East and South.
  auto cfgpkt = make_packet(1, 0, b.mesh.node({2, 2}), 1);
  cfgpkt->type = MsgType::AckSuccess;  // any config type routes adaptively
  // Drain credits from East by occupying it: simulate by a long packet.
  auto hog = make_packet(2, 0, b.mesh.node({2, 1}), 5);
  for (int s = 0; s < 5; ++s)
    b.in[static_cast<int>(Port::North)]->send(make_flit(hog, s, 0),
                                              static_cast<Cycle>(4 + s));
  b.in[static_cast<int>(Port::West)]->send(make_flit(cfgpkt, 0, 0), 9);
  b.run_to(25);
  bool south = false;
  for (Cycle t = 10; t < 25; ++t)
    while (b.out[static_cast<int>(Port::South)]->receive(t)) south = true;
  EXPECT_TRUE(south);
}

}  // namespace
}  // namespace hybridnoc
