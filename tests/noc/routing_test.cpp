#include "noc/routing.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace hybridnoc {
namespace {

// Follow route_xy hop by hop; it must reach dst in exactly hop_distance hops.
TEST(RouteXy, MinimalAndCorrectForAllPairs) {
  const Mesh mesh(6);
  for (NodeId src = 0; src < mesh.num_nodes(); ++src) {
    for (NodeId dst = 0; dst < mesh.num_nodes(); ++dst) {
      NodeId here = src;
      int hops = 0;
      while (here != dst) {
        const Port p = route_xy(mesh, here, dst);
        ASSERT_NE(p, Port::Local);
        ASSERT_TRUE(mesh.has_neighbor(here, p));
        here = mesh.neighbor(here, p);
        ++hops;
        ASSERT_LE(hops, mesh.hop_distance(src, dst));
      }
      EXPECT_EQ(hops, mesh.hop_distance(src, dst));
    }
  }
}

TEST(RouteXy, XDimensionFirst) {
  const Mesh mesh(6);
  // From (0,0) to (3,3): east until x matches, then south.
  EXPECT_EQ(route_xy(mesh, mesh.node({0, 0}), mesh.node({3, 3})), Port::East);
  EXPECT_EQ(route_xy(mesh, mesh.node({3, 0}), mesh.node({3, 3})), Port::South);
  EXPECT_EQ(route_xy(mesh, mesh.node({5, 5}), mesh.node({2, 1})), Port::West);
}

TEST(RouteXy, LocalAtDestination) {
  const Mesh mesh(4);
  EXPECT_EQ(route_xy(mesh, 5, 5), Port::Local);
}

TEST(WestFirst, WestwardIsDeterministic) {
  const Mesh mesh(6);
  const auto c = west_first_candidates(mesh, mesh.node({4, 2}), mesh.node({1, 4}));
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0], Port::West);
}

TEST(WestFirst, NonWestIsFullyAdaptive) {
  const Mesh mesh(6);
  const auto c = west_first_candidates(mesh, mesh.node({1, 1}), mesh.node({4, 4}));
  ASSERT_EQ(c.size(), 2u);
  EXPECT_NE(std::find(c.begin(), c.end(), Port::East), c.end());
  EXPECT_NE(std::find(c.begin(), c.end(), Port::South), c.end());
}

TEST(WestFirst, CandidatesAreAlwaysMinimal) {
  const Mesh mesh(5);
  for (NodeId src = 0; src < mesh.num_nodes(); ++src) {
    for (NodeId dst = 0; dst < mesh.num_nodes(); ++dst) {
      if (src == dst) continue;
      for (const Port p : west_first_candidates(mesh, src, dst)) {
        ASSERT_TRUE(mesh.has_neighbor(src, p));
        const NodeId next = mesh.neighbor(src, p);
        EXPECT_EQ(mesh.hop_distance(next, dst), mesh.hop_distance(src, dst) - 1)
            << "non-minimal candidate " << port_name(p);
      }
    }
  }
}

TEST(WestFirst, NoWestwardTurnAfterOtherDirections) {
  // The turn-model property that guarantees deadlock freedom: West is only
  // ever offered alone.
  const Mesh mesh(6);
  for (NodeId src = 0; src < mesh.num_nodes(); ++src) {
    for (NodeId dst = 0; dst < mesh.num_nodes(); ++dst) {
      if (src == dst) continue;
      const auto c = west_first_candidates(mesh, src, dst);
      ASSERT_FALSE(c.empty());
      if (std::find(c.begin(), c.end(), Port::West) != c.end()) {
        EXPECT_EQ(c.size(), 1u);
      }
    }
  }
}

TEST(SelectByCredits, PicksLeastCongested) {
  const std::vector<Port> cands = {Port::East, Port::South};
  EXPECT_EQ(select_by_credits(cands,
                              [](Port p) { return p == Port::South ? 9 : 3; }),
            Port::South);
  EXPECT_EQ(select_by_credits(cands,
                              [](Port p) { return p == Port::East ? 9 : 3; }),
            Port::East);
}

TEST(SelectByCredits, TieBreaksByOrder) {
  const std::vector<Port> cands = {Port::North, Port::East};
  EXPECT_EQ(select_by_credits(cands, [](Port) { return 5; }), Port::North);
}

}  // namespace
}  // namespace hybridnoc
