// Property suite for the NN-dataflow workload generator: descriptor parsing
// (including every HN_CHECK rejection path), seeded twin-run determinism,
// structural trace invariants (in-bounds, never self-directed, sorted), and
// exact per-edge flit conservation against the DAG's declared byte volumes.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "common/geometry.hpp"
#include "workloads/nn_dataflow.hpp"

namespace hybridnoc {
namespace {

const char kTinyDag[] = R"(
# two-stage toy pipeline
mesh 4
layer in   0 0 4 1
layer mid  0 1 4 2
layer out  0 3 4 1
edge in  mid 512
edge mid out 256
)";

TEST(NnDescriptorTest, ParsesLayersEdgesAndDepths) {
  const NnDescriptor d = parse_nn_descriptor_string(kTinyDag, "tiny");
  EXPECT_EQ(d.k, 4);
  ASSERT_EQ(d.layers.size(), 3u);
  ASSERT_EQ(d.edges.size(), 2u);
  EXPECT_EQ(d.layers[0].name, "in");
  EXPECT_EQ(d.layers[1].tiles(), 8);
  EXPECT_EQ(d.layers[0].depth, 0);
  EXPECT_EQ(d.layers[1].depth, 1);
  EXPECT_EQ(d.layers[2].depth, 2);
  EXPECT_EQ(d.max_depth(), 2);
  EXPECT_EQ(d.edges[0].bytes, 512);
  EXPECT_EQ(d.layer_index("mid"), 1);
  EXPECT_EQ(d.layer_index("nope"), -1);
}

TEST(NnDescriptorTest, BuiltinsParseForBothMeshSizes) {
  for (const std::string& name : builtin_nn_names()) {
    for (const int k : {6, 8}) {
      SCOPED_TRACE(name + " k=" + std::to_string(k));
      const NnDescriptor d = builtin_nn_descriptor(name, k);
      EXPECT_EQ(d.k, k);
      EXPECT_GE(d.layers.size(), 4u);
      EXPECT_GE(d.edges.size(), 3u);
      EXPECT_GE(d.max_depth(), 2);
    }
  }
  EXPECT_EQ(builtin_nn_descriptor_text("resnet50", 7), nullptr);
  EXPECT_EQ(builtin_nn_descriptor_text("alexnet", 8), nullptr);
}

TEST(NnDescriptorDeathTest, RejectsMalformedDescriptors) {
  // Satellite requirement: bad layer refs, negative volumes, out-of-grid
  // placement — plus the remaining structural HN_CHECK paths.
  EXPECT_DEATH(parse_nn_descriptor_string(
                   "mesh 4\nlayer a 0 0 4 1\nlayer b 0 1 4 1\n"
                   "edge a nosuch 64\n"),
               "unknown layer");
  EXPECT_DEATH(parse_nn_descriptor_string(
                   "mesh 4\nlayer a 0 0 4 1\nlayer b 0 1 4 1\n"
                   "edge a b -64\n"),
               "positive");
  EXPECT_DEATH(parse_nn_descriptor_string(
                   "mesh 4\nlayer a 0 0 4 1\nlayer b 3 3 2 2\n"
                   "edge a b 64\n"),
               "outside the mesh");
  EXPECT_DEATH(parse_nn_descriptor_string("layer a 0 0 1 1\n"),
               "mesh directive must come first");
  EXPECT_DEATH(parse_nn_descriptor_string("mesh 1\nlayer a 0 0 1 1\n"),
               ">= 2");
  EXPECT_DEATH(parse_nn_descriptor_string(
                   "mesh 4\nlayer a 0 0 4 1\nlayer a 0 1 4 1\n"),
               "duplicate layer");
  EXPECT_DEATH(parse_nn_descriptor_string(
                   "mesh 4\nlayer a 0 0 1 1\nfrobnicate a\n"),
               "unknown directive");
  EXPECT_DEATH(parse_nn_descriptor_string(
                   "mesh 4\nlayer a 0 0 1 1\nlayer b 1 0 1 1\n"
                   "edge a b 64\nedge b a 64\n"),
               "cycle");
  EXPECT_DEATH(parse_nn_descriptor_string(
                   "mesh 4\nlayer a 0 0 1 1\nlayer b 0 0 1 1\n"
                   "edge a b 64\n"),
               "non-self tile pair");
  EXPECT_DEATH(parse_nn_descriptor_string("mesh 4\nlayer a 0 0 1 1\n"),
               "no edges");
  EXPECT_DEATH(parse_nn_descriptor_string("mesh 4\nlayer a 0 0\n"),
               "malformed layer");
}

TEST(NnTraceTest, TwinRunsAreIdenticalAndSeedsDiffer) {
  const NnDescriptor d = builtin_nn_descriptor("transformer", 6);
  NnGenParams p;
  p.seed = 42;
  const auto a = generate_nn_trace(d, p);
  const auto b = generate_nn_trace(d, p);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  p.seed = 43;
  EXPECT_NE(a, generate_nn_trace(d, p));
}

TEST(NnTraceTest, EntriesInBoundsNeverSelfDirectedAndSorted) {
  for (const std::string& name : builtin_nn_names()) {
    for (const int k : {6, 8}) {
      SCOPED_TRACE(name + " k=" + std::to_string(k));
      const NnDescriptor d = builtin_nn_descriptor(name, k);
      const auto trace = generate_nn_trace(d, NnGenParams{});
      ASSERT_FALSE(trace.empty());
      Cycle prev = 0;
      for (const TraceEntry& e : trace) {
        ASSERT_GE(e.src, 0);
        ASSERT_LT(e.src, k * k);
        ASSERT_GE(e.dst, 0);
        ASSERT_LT(e.dst, k * k);
        ASSERT_NE(e.src, e.dst);
        ASSERT_GE(e.flits, 1);
        ASSERT_GE(e.cycle, prev);
        prev = e.cycle;
      }
    }
  }
}

TEST(NnTraceTest, PerEdgeFlitTotalsMatchDeclaredByteVolumes) {
  // kTinyDag's two edges use disjoint tile sets, so every trace entry
  // attributes to exactly one edge by (src, dst) membership.
  const NnDescriptor d = parse_nn_descriptor_string(kTinyDag, "tiny");
  NnGenParams p;
  p.iterations = 3;
  p.intensity = 0.9;  // non-integral scaling exercises the ceil rounding
  const auto trace = generate_nn_trace(d, p);

  std::map<std::pair<NodeId, NodeId>, std::int64_t> by_pair;
  for (const TraceEntry& e : trace) by_pair[{e.src, e.dst}] += e.flits;

  std::int64_t attributed = 0;
  for (const NnEdge& edge : d.edges) {
    std::int64_t edge_total = 0;
    for (const auto& pr : nn_edge_tile_pairs(d, edge)) {
      const auto it = by_pair.find(pr);
      if (it != by_pair.end()) edge_total += it->second;
    }
    EXPECT_EQ(edge_total,
              static_cast<std::int64_t>(p.iterations) *
                  nn_edge_flits(edge, p))
        << "edge " << d.layers[edge.producer].name << " -> "
        << d.layers[edge.consumer].name;
    attributed += edge_total;
  }
  // Nothing outside the declared flows.
  std::int64_t total = 0;
  for (const TraceEntry& e : trace) total += e.flits;
  EXPECT_EQ(total, attributed);
}

TEST(NnTraceTest, EdgePairsArePartitionedNotAllToAll) {
  // The aligned mapping must produce max(P, C) flows, not P*C — that
  // concentration is what lets circuit establishment see recurring pairs.
  const NnDescriptor d = builtin_nn_descriptor("resnet50", 8);
  for (const NnEdge& e : d.edges) {
    const auto pairs = nn_edge_tile_pairs(d, e);
    const int p_tiles = d.layers[e.producer].tiles();
    const int c_tiles = d.layers[e.consumer].tiles();
    EXPECT_LE(static_cast<int>(pairs.size()), std::max(p_tiles, c_tiles));
    std::set<std::pair<NodeId, NodeId>> uniq(pairs.begin(), pairs.end());
    EXPECT_EQ(uniq.size(), pairs.size());
    for (const auto& [s, t] : pairs) EXPECT_NE(s, t);
  }
}

TEST(NnTraceTest, AutoStageSizingBoundsPerTileRate) {
  const NnDescriptor d = builtin_nn_descriptor("gnmt", 6);
  const NnGenParams p;
  const Cycle stage = nn_auto_stage_cycles(d, p);
  EXPECT_GE(stage, 64u);
  // Busiest layer's per-tile outgoing flits must fit the window at <= ~0.5
  // flits/cycle.
  for (size_t l = 0; l < d.layers.size(); ++l) {
    std::int64_t out = 0;
    for (const NnEdge& e : d.edges) {
      if (e.producer == static_cast<int>(l)) out += nn_edge_flits(e, p);
    }
    const std::int64_t per_tile =
        (out + d.layers[l].tiles() - 1) / d.layers[l].tiles();
    EXPECT_LE(static_cast<Cycle>(2 * per_tile), stage);
  }
}

}  // namespace
}  // namespace hybridnoc
