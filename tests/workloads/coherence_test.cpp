// Property suite for the coherence request/reply generator: seeded twin-run
// determinism, structural invariants (in-bounds, never self-directed,
// sorted), bimodal message sizes, and the request/reply pairing contract —
// every reply, forward and data message belongs to a transaction whose
// request appears earlier in the trace.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workloads/coherence.hpp"

namespace hybridnoc {
namespace {

CoherenceParams small_params() {
  CoherenceParams p;
  p.k = 6;
  p.cycles = 600;
  p.request_rate = 0.03;
  p.seed = 7;
  return p;
}

TEST(CoherenceTest, TwinRunsAreIdenticalAndSeedsDiffer) {
  const CoherenceParams p = small_params();
  const CoherenceTrace a = generate_coherence_trace(p);
  const CoherenceTrace b = generate_coherence_trace(p);
  ASSERT_FALSE(a.entries.empty());
  EXPECT_EQ(a.entries, b.entries);
  EXPECT_EQ(a.events, b.events);
  CoherenceParams q = p;
  q.seed = 8;
  EXPECT_NE(a.entries, generate_coherence_trace(q).entries);
}

TEST(CoherenceTest, EntriesInBoundsNeverSelfDirectedAndSorted) {
  const CoherenceParams p = small_params();
  const CoherenceTrace tr = generate_coherence_trace(p);
  ASSERT_EQ(tr.entries.size(), tr.events.size());
  Cycle prev = 0;
  for (const TraceEntry& e : tr.entries) {
    ASSERT_GE(e.src, 0);
    ASSERT_LT(e.src, p.k * p.k);
    ASSERT_GE(e.dst, 0);
    ASSERT_LT(e.dst, p.k * p.k);
    ASSERT_NE(e.src, e.dst);
    ASSERT_GE(e.cycle, prev);
    prev = e.cycle;
  }
}

TEST(CoherenceTest, MessageSizesAreBimodal) {
  const CoherenceTrace tr = generate_coherence_trace(small_params());
  const CoherenceParams p = small_params();
  std::uint64_t ctrl = 0, data = 0;
  for (size_t i = 0; i < tr.entries.size(); ++i) {
    const int flits = tr.entries[i].flits;
    ASSERT_TRUE(flits == p.ctrl_flits || flits == p.data_flits)
        << "entry " << i << " has non-bimodal size " << flits;
    (flits == p.ctrl_flits ? ctrl : data) += 1;
    // Size must match the protocol role.
    const CoherenceMsg m = tr.events[i].msg;
    if (m == CoherenceMsg::Request || m == CoherenceMsg::Forward) {
      EXPECT_EQ(flits, p.ctrl_flits);
    }
    if (m == CoherenceMsg::Data) EXPECT_EQ(flits, p.data_flits);
  }
  // Both modes are exercised: short control dominates by count, data bursts
  // exist.
  EXPECT_GT(ctrl, 0u);
  EXPECT_GT(data, 0u);
  EXPECT_GT(ctrl, data);
}

TEST(CoherenceTest, EveryReplyHasAMatchingEarlierRequest) {
  const CoherenceTrace tr = generate_coherence_trace(small_params());
  // Walk in trace order: a transaction's request must be seen before any of
  // its replies/forwards/data messages, and the reply endpoints must invert
  // the request's (requester, home) endpoints.
  std::map<std::uint64_t, TraceEntry> open_requests;
  std::map<std::uint64_t, int> follow_ups;
  for (size_t i = 0; i < tr.entries.size(); ++i) {
    const TraceEntry& e = tr.entries[i];
    const CoherenceEvent& ev = tr.events[i];
    if (ev.msg == CoherenceMsg::Request) {
      ASSERT_EQ(open_requests.count(ev.txn), 0u) << "duplicate request";
      open_requests[ev.txn] = e;
      continue;
    }
    const auto it = open_requests.find(ev.txn);
    ASSERT_NE(it, open_requests.end())
        << "follow-up before its request, txn " << ev.txn;
    const TraceEntry& req = it->second;
    ASSERT_GE(e.cycle, req.cycle);
    ++follow_ups[ev.txn];
    switch (ev.msg) {
      case CoherenceMsg::Reply:
        EXPECT_EQ(e.src, req.dst);  // home answers
        EXPECT_EQ(e.dst, req.src);  // the requester
        break;
      case CoherenceMsg::Forward:
        EXPECT_EQ(e.src, req.dst);  // home probes the sharer
        EXPECT_NE(e.dst, req.src);
        break;
      case CoherenceMsg::Data:
        EXPECT_EQ(e.dst, req.src);  // sharer feeds the requester
        EXPECT_NE(e.src, req.dst);
        break;
      case CoherenceMsg::Request:
        break;
    }
  }
  // Every transaction resolves: one reply, or a forward + data pair.
  for (const auto& [txn, req] : open_requests) {
    const auto it = follow_ups.find(txn);
    ASSERT_NE(it, follow_ups.end()) << "unanswered request, txn " << txn;
    EXPECT_TRUE(it->second == 1 || it->second == 2);
  }
}

TEST(CoherenceTest, HomeLocalitySkewsDestinationChoice) {
  CoherenceParams p = small_params();
  p.cycles = 2000;
  p.home_locality = 1.0;
  const CoherenceTrace skew = generate_coherence_trace(p);
  // With locality 1.0 nearly every requester talks only to its favourite
  // home (nodes whose favourite is themselves fall back to uniform
  // redraws), so the mean distinct-home count per requester is far below
  // the uniform spread at locality 0.0.
  const auto mean_distinct_homes = [](const CoherenceTrace& tr) {
    std::map<NodeId, std::set<NodeId>> homes_of;
    for (size_t i = 0; i < tr.entries.size(); ++i) {
      if (tr.events[i].msg != CoherenceMsg::Request) continue;
      homes_of[tr.entries[i].src].insert(tr.entries[i].dst);
    }
    EXPECT_FALSE(homes_of.empty());
    std::size_t total = 0;
    for (const auto& [v, hs] : homes_of) total += hs.size();
    return static_cast<double>(total) / static_cast<double>(homes_of.size());
  };
  const double skewed = mean_distinct_homes(skew);
  p.home_locality = 0.0;
  const double flat = mean_distinct_homes(generate_coherence_trace(p));
  EXPECT_LT(skewed * 3.0, flat)
      << "locality 1.0 mean homes " << skewed << " vs uniform " << flat;
}

TEST(CoherenceTest, RestrictedHomeSetIsRespected) {
  CoherenceParams p = small_params();
  p.num_homes = 4;
  const CoherenceTrace tr = generate_coherence_trace(p);
  std::set<NodeId> homes;
  for (size_t i = 0; i < tr.entries.size(); ++i) {
    if (tr.events[i].msg == CoherenceMsg::Request)
      homes.insert(tr.entries[i].dst);
  }
  EXPECT_LE(homes.size(), 4u);
}

TEST(CoherenceDeathTest, RejectsInvalidParams) {
  CoherenceParams p = small_params();
  p.request_rate = 0.0;
  EXPECT_DEATH((void)generate_coherence_trace(p), "request_rate");
  p = small_params();
  p.num_homes = p.k * p.k + 1;
  EXPECT_DEATH((void)generate_coherence_trace(p), "num_homes");
}

}  // namespace
}  // namespace hybridnoc
