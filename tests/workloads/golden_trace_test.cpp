// Golden-trace harness: each workload generator is pinned to a checked-in
// shrunk reference trace (tests/workloads/fixtures/). The tests regenerate
// the trace from the same parameters and demand bit-identical entries, so
// any change to generator arithmetic, rng consumption order or descriptor
// contents shows up as a diff against a reviewable fixture; save/load round
// trips prove the trace format carries the workloads losslessly.
//
// Regenerating a fixture after an intentional generator change:
//   build/tools/hybridnoc trace-gen --workload nn:resnet50 --k 6 \
//     --intensity 0.05 --iterations 1 --seed 9 \
//     --out tests/workloads/fixtures/nn_resnet50_6x6.trace
//   build/tools/hybridnoc trace-gen --workload coherence --k 6 \
//     --cycles 300 --seed 9 \
//     --out tests/workloads/fixtures/coherence_6x6.trace
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "common/fileio.hpp"
#include "sim/driver.hpp"
#include "traffic/trace.hpp"
#include "workloads/workload.hpp"

namespace hybridnoc {
namespace {

std::string fixture_path(const std::string& name) {
  return std::string(HN_WORKLOAD_FIXTURE_DIR) + "/" + name;
}

WorkloadOptions nn_fixture_options() {
  WorkloadOptions o;
  o.k = 6;
  o.seed = 9;
  o.intensity = 0.05;
  o.nn_iterations = 1;
  return o;
}

WorkloadOptions coherence_fixture_options() {
  WorkloadOptions o;
  o.k = 6;
  o.seed = 9;
  o.coherence_cycles = 300;
  return o;
}

std::vector<TraceEntry> load_fixture(const std::string& name) {
  std::ifstream in(fixture_path(name));
  EXPECT_TRUE(in.good()) << "missing fixture " << fixture_path(name)
                         << " — regenerate per the header comment";
  return load_trace(in);
}

TEST(GoldenTraceTest, NnMatchesCheckedInReference) {
  const WorkloadTrace wt = build_workload("nn:resnet50", nn_fixture_options());
  const auto golden = load_fixture("nn_resnet50_6x6.trace");
  ASSERT_FALSE(wt.entries.empty());
  EXPECT_EQ(wt.entries, golden);
}

TEST(GoldenTraceTest, CoherenceMatchesCheckedInReference) {
  const WorkloadTrace wt =
      build_workload("coherence", coherence_fixture_options());
  const auto golden = load_fixture("coherence_6x6.trace");
  ASSERT_FALSE(wt.entries.empty());
  EXPECT_EQ(wt.entries, golden);
}

TEST(GoldenTraceTest, SaveLoadRoundTripIsLossless) {
  for (const char* spec : {"nn:transformer", "coherence"}) {
    SCOPED_TRACE(spec);
    WorkloadOptions o;
    o.k = 6;
    o.seed = 5;
    o.intensity = spec[0] == 'n' ? 0.1 : 1.0;
    o.nn_iterations = 1;
    o.coherence_cycles = 200;
    const WorkloadTrace wt = build_workload(spec, o);
    std::stringstream buf;
    save_trace(buf, wt.entries);
    EXPECT_EQ(load_trace(buf), wt.entries);
  }
}

TEST(GoldenTraceTest, GoldenTracesReplayThroughBothFidelities) {
  // Acceptance: both workloads replay from their golden traces end to end.
  // Tiny windows keep this a smoke check; the accuracy harness owns the
  // drift gates.
  const NocConfig cfg = NocConfig::hybrid_tdm_vc4(6);
  for (const char* name : {"nn_resnet50_6x6.trace", "coherence_6x6.trace"}) {
    SCOPED_TRACE(name);
    const auto entries = load_fixture(name);
    ASSERT_FALSE(entries.empty());
    RunParams p;
    p.warmup_packets = 50;
    p.warmup_min_cycles = 200;
    p.measure_packets = 300;
    p.seed = 1;
    p.fidelity = Fidelity::Cycle;
    const RunResult cycle = run_trace(cfg, entries, p);
    EXPECT_GT(cycle.measured_packets, 0u);
    p.fidelity = Fidelity::Fast;
    const RunResult fast = run_trace(cfg, entries, p);
    EXPECT_GT(fast.measured_packets, 0u);
    // Replays are themselves deterministic.
    p.fidelity = Fidelity::Cycle;
    const RunResult again = run_trace(cfg, entries, p);
    EXPECT_EQ(cycle.measured_packets, again.measured_packets);
    EXPECT_EQ(cycle.cycles, again.cycles);
    EXPECT_DOUBLE_EQ(cycle.avg_latency, again.avg_latency);
    EXPECT_DOUBLE_EQ(cycle.total_energy_pj(), again.total_energy_pj());
  }
}

TEST(GoldenTraceDeathTest, RunTraceRejectsBrokenTraces) {
  const NocConfig cfg = NocConfig::hybrid_tdm_vc4(4);
  RunParams p;
  EXPECT_DEATH((void)run_trace(cfg, {}, p), "empty trace");
  EXPECT_DEATH((void)run_trace(cfg, {TraceEntry{0, 3, 3, 5}}, p),
               "self-directed");
  EXPECT_DEATH((void)run_trace(cfg, {TraceEntry{0, 0, 99, 5}}, p),
               "outside the mesh");
}

TEST(GoldenTraceDeathTest, WorkloadSpecRejectsUnknownAndUnreadable) {
  WorkloadOptions o;
  o.k = 6;
  EXPECT_DEATH((void)build_workload("bogus", o), "unknown workload");
  EXPECT_DEATH((void)build_workload("nn:@/no/such/file", o), "cannot open");
  EXPECT_DEATH((void)build_workload("nn:alexnet", o), "unknown builtin");
}

TEST(GoldenTraceTest, FileDescriptorsLoadLikeBuiltins) {
  // nn:@file must resolve through the same parser: write the bundled
  // resnet50 text to a file and expect an identical trace.
  const std::string path = ::testing::TempDir() + "resnet50_6.nn";
  ASSERT_TRUE(
      write_file_atomic(path, builtin_nn_descriptor_text("resnet50", 6)));
  const WorkloadOptions o = nn_fixture_options();
  const WorkloadTrace from_file = build_workload("nn:@" + path, o);
  const WorkloadTrace builtin = build_workload("nn:resnet50", o);
  EXPECT_EQ(from_file.entries, builtin.entries);
  EXPECT_DOUBLE_EQ(from_file.offered_rate, builtin.offered_rate);
}

}  // namespace
}  // namespace hybridnoc
