#include "traffic/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "noc/network.hpp"

namespace hybridnoc {
namespace {

TEST(Trace, LoadParsesCommentsAndBlanks) {
  std::istringstream in(
      "# header comment\n"
      "\n"
      "0 1 2 5\n"
      "3 4 5 1  # trailing comment\n"
      "3 0 7 4\n");
  const auto t = load_trace(in);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], (TraceEntry{0, 1, 2, 5}));
  EXPECT_EQ(t[1], (TraceEntry{3, 4, 5, 1}));
  EXPECT_EQ(t[2], (TraceEntry{3, 0, 7, 4}));
}

TEST(Trace, SaveLoadRoundTrip) {
  const std::vector<TraceEntry> orig = {{0, 1, 2, 5}, {10, 3, 4, 4}, {10, 5, 6, 1}};
  std::stringstream buf;
  save_trace(buf, orig);
  EXPECT_EQ(load_trace(buf), orig);
}

TEST(Trace, ParseWriteParseEquality) {
  // Starting from text (not a TraceEntry vector): parse, re-serialize, parse
  // again — the two parses must agree even though comments and spacing are
  // normalized away.
  std::istringstream in(
      "# captured from a hetero run\n"
      "0 1 2 5\n"
      "\n"
      "7 3 4 1   # burst start\n"
      "7 3 4 1\n"
      "12 0 15 9\n");
  const auto first = load_trace(in);
  ASSERT_EQ(first.size(), 4u);
  std::stringstream buf;
  save_trace(buf, first);
  const auto second = load_trace(buf);
  EXPECT_EQ(second, first);
  // And the normalized form is a fixed point: writing again changes nothing.
  std::stringstream buf2;
  save_trace(buf2, second);
  EXPECT_EQ(buf2.str(), buf.str());
}

TEST(Trace, RoundTripPreservesBoundaryValues) {
  const std::vector<TraceEntry> orig = {
      {0, 0, 0, 1},  // min flits, self-loop node ids
      {0, 63, 63, 1},
      {1000000000, 5, 6, 1000},  // large cycle and payload
  };
  std::stringstream buf;
  save_trace(buf, orig);
  EXPECT_EQ(load_trace(buf), orig);
}

TEST(TraceDeathTest, RejectsOutOfOrderAndMalformed) {
  std::istringstream bad_order("5 0 1 5\n3 0 1 5\n");
  EXPECT_DEATH((void)load_trace(bad_order), "cycle order");
  std::istringstream malformed("1 2\n");
  EXPECT_DEATH((void)load_trace(malformed), "malformed");
}

TEST(TraceDeathTest, RejectsInvalidFieldValues) {
  std::istringstream zero_flits("0 1 2 0\n");
  EXPECT_DEATH((void)load_trace(zero_flits), "invalid");
  std::istringstream negative_flits("0 1 2 -3\n");
  EXPECT_DEATH((void)load_trace(negative_flits), "invalid");
  std::istringstream negative_src("0 -1 2 5\n");
  EXPECT_DEATH((void)load_trace(negative_src), "invalid");
  std::istringstream negative_dst("0 1 -2 5\n");
  EXPECT_DEATH((void)load_trace(negative_dst), "invalid");
  std::istringstream garbage_tokens("0 one 2 5\n");
  EXPECT_DEATH((void)load_trace(garbage_tokens), "malformed");
  std::istringstream comment_mid_fields("0 1 # 2 5\n");
  EXPECT_DEATH((void)load_trace(comment_mid_fields), "malformed");
}

TEST(TraceTraffic, EmitsAtScheduledCycles) {
  TraceTraffic t({{2, 0, 1, 5}, {2, 3, 4, 4}, {5, 1, 0, 5}});
  std::vector<std::tuple<Cycle, NodeId, NodeId>> got;
  for (Cycle c = 0; c < 8; ++c) {
    t.generate(c, [&](NodeId s, NodeId d, int) { got.emplace_back(c, s, d); });
  }
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], std::make_tuple(Cycle{2}, NodeId{0}, NodeId{1}));
  EXPECT_EQ(got[1], std::make_tuple(Cycle{2}, NodeId{3}, NodeId{4}));
  EXPECT_EQ(got[2], std::make_tuple(Cycle{5}, NodeId{1}, NodeId{0}));
  EXPECT_TRUE(t.exhausted());
}

TEST(TraceTraffic, LoopRepeatsWithPeriodShift) {
  TraceTraffic t({{0, 0, 1, 5}, {3, 2, 3, 5}}, /*loop=*/true);
  int emitted = 0;
  std::vector<Cycle> at;
  for (Cycle c = 0; c < 12; ++c) {
    t.generate(c, [&](NodeId, NodeId, int) {
      ++emitted;
      at.push_back(c);
    });
  }
  // Period = 4: injections at 0,3, 4,7, 8,11.
  EXPECT_EQ(emitted, 6);
  EXPECT_EQ(at, (std::vector<Cycle>{0, 3, 4, 7, 8, 11}));
  EXPECT_FALSE(t.exhausted());
}

TEST(TraceTraffic, ReplayThroughNetworkDeliversEverything) {
  // Drive a real network from a trace; every entry must be delivered.
  std::vector<TraceEntry> entries;
  for (int i = 0; i < 50; ++i) {
    entries.push_back({static_cast<Cycle>(i * 7), static_cast<NodeId>(i % 16),
                       static_cast<NodeId>((i * 5 + 3) % 16), 5});
  }
  for (auto& e : entries) {
    if (e.src == e.dst) e.dst = static_cast<NodeId>((e.dst + 1) % 16);
  }
  Network net(NocConfig::packet_vc4(4));
  std::uint64_t delivered = 0;
  net.set_deliver_handler([&](const PacketPtr&, Cycle) { ++delivered; });
  TraceTraffic t(entries);
  PacketId id = 1;
  for (Cycle c = 0; c < 3000 && !(t.exhausted() && net.quiescent()); ++c) {
    t.generate(c, [&](NodeId s, NodeId d, int flits) {
      auto p = std::make_shared<Packet>();
      p->id = id++;
      p->src = s;
      p->dst = d;
      p->num_flits = flits;
      net.ni(s).send(std::move(p), net.now());
    });
    net.tick();
  }
  EXPECT_EQ(delivered, entries.size());
}

}  // namespace
}  // namespace hybridnoc
