// Seeded property tests for every synthetic traffic pattern. Beyond the
// per-pattern structural checks in synthetic_test.cpp, these sweep each
// pattern across mesh sizes — the standard 4x4/8x8 experiment grids plus
// the small meshes (k = 2, 3) where the paper's formulas degenerate — and
// assert the invariants every generator must uphold regardless of size:
// destinations stay in bounds, a pattern never targets the source, and a
// fixed seed reproduces the exact draw sequence.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "traffic/synthetic.hpp"

namespace hybridnoc {
namespace {

constexpr TrafficPattern kAllPatterns[] = {
    TrafficPattern::UniformRandom, TrafficPattern::Tornado,
    TrafficPattern::Transpose,     TrafficPattern::BitComplement,
    TrafficPattern::Shuffle,       TrafficPattern::Hotspot,
};

TEST(PatternProperties, InBoundsAndNeverSelfOnAllMeshSizes) {
  for (int k : {2, 3, 4, 6, 8}) {
    const Mesh mesh(k);
    for (TrafficPattern p : kAllPatterns) {
      Rng rng(0x9a77e54 + k);
      for (NodeId src = 0; src < mesh.num_nodes(); ++src) {
        for (int draw = 0; draw < 50; ++draw) {
          const auto dst = pattern_destination(p, mesh, src, rng);
          if (!dst) continue;  // self-map: generator skips the injection
          EXPECT_GE(*dst, 0) << traffic_pattern_name(p) << " k=" << k;
          EXPECT_LT(*dst, mesh.num_nodes())
              << traffic_pattern_name(p) << " k=" << k;
          EXPECT_NE(*dst, src) << traffic_pattern_name(p) << " k=" << k;
        }
      }
    }
  }
}

TEST(PatternProperties, DeterministicDrawSequencePerSeed) {
  const Mesh mesh(8);
  for (TrafficPattern p : kAllPatterns) {
    auto collect = [&](std::uint64_t seed) {
      Rng rng(seed);
      std::vector<int> v;
      for (NodeId src = 0; src < mesh.num_nodes(); ++src) {
        for (int draw = 0; draw < 8; ++draw) {
          const auto dst = pattern_destination(p, mesh, src, rng);
          v.push_back(dst ? static_cast<int>(*dst) : -1);
        }
      }
      return v;
    };
    EXPECT_EQ(collect(77), collect(77)) << traffic_pattern_name(p);
  }
}

TEST(PatternProperties, TornadoOffsetExactOnLargeMeshes) {
  // Section IV: (x, y) -> (x + k/2 - 1, y), valid whenever the offset is
  // nonzero (k >= 4).
  for (int k : {4, 8}) {
    const Mesh mesh(k);
    Rng rng(1);
    for (NodeId src = 0; src < mesh.num_nodes(); ++src) {
      const Coord c = mesh.coord(src);
      const auto dst = pattern_destination(TrafficPattern::Tornado, mesh, src, rng);
      ASSERT_TRUE(dst.has_value()) << "k=" << k;
      EXPECT_EQ(mesh.coord(*dst).x, (c.x + k / 2 - 1) % k);
      EXPECT_EQ(mesh.coord(*dst).y, c.y);
    }
  }
}

TEST(PatternProperties, TornadoFallsBackToUniformOnTinyMeshes) {
  // k <= 3 makes the tornado offset zero: the strict formula maps every
  // node to itself and the mesh would offer no load at all. The generator
  // instead falls back to a uniform draw — verify it actually spreads over
  // the whole mesh rather than pinning to any fixed offset.
  for (int k : {2, 3}) {
    const Mesh mesh(k);
    Rng rng(0x70a2);
    std::set<NodeId> seen;
    int delivered = 0;
    for (int i = 0; i < 2000; ++i) {
      const auto dst = pattern_destination(TrafficPattern::Tornado, mesh, 0, rng);
      if (!dst) continue;
      ++delivered;
      seen.insert(*dst);
    }
    EXPECT_GT(delivered, 1000) << "k=" << k;  // tiny mesh still offers load
    EXPECT_EQ(static_cast<int>(seen.size()), mesh.num_nodes() - 1)
        << "k=" << k;  // covers every non-self destination
  }
}

TEST(PatternProperties, ShuffleIsExactBitRotationOnPowerOfTwoMeshes) {
  for (int k : {4, 8}) {
    const Mesh mesh(k);
    const auto n = static_cast<std::uint32_t>(mesh.num_nodes());
    std::uint32_t bits = 0;
    while ((1u << bits) < n) ++bits;
    Rng rng(1);
    for (NodeId src = 0; src < mesh.num_nodes(); ++src) {
      const auto s = static_cast<std::uint32_t>(src);
      const auto rotated = ((s << 1) | (s >> (bits - 1))) & (n - 1);
      const auto dst = pattern_destination(TrafficPattern::Shuffle, mesh, src, rng);
      if (rotated == s) {
        EXPECT_FALSE(dst.has_value()) << "k=" << k << " src=" << src;
      } else {
        ASSERT_TRUE(dst.has_value()) << "k=" << k << " src=" << src;
        EXPECT_EQ(static_cast<std::uint32_t>(*dst), rotated);
      }
    }
  }
}

TEST(PatternProperties, ShuffleWrapsIntoRangeOnNonPowerOfTwoMeshes) {
  // On 3x3 and 6x6 the rotated id space (16 / 64 ids) is larger than the
  // mesh; ids past the last node must wrap back into range instead of being
  // dropped, so (almost) every source still offers load.
  for (int k : {3, 6}) {
    const Mesh mesh(k);
    Rng rng(1);
    int offering = 0;
    for (NodeId src = 0; src < mesh.num_nodes(); ++src) {
      const auto dst = pattern_destination(TrafficPattern::Shuffle, mesh, src, rng);
      if (!dst) continue;
      ++offering;
      EXPECT_GE(*dst, 0);
      EXPECT_LT(*dst, mesh.num_nodes());
      EXPECT_NE(*dst, src);
    }
    // Only rotation fixed points (and wrap collisions onto the source) may
    // skip injection; the bulk of the mesh must offer load.
    EXPECT_GE(offering, mesh.num_nodes() - mesh.num_nodes() / 4) << "k=" << k;
  }
}

TEST(PatternProperties, HotspotMassNearQuarterOn8x8) {
  const Mesh mesh(8);
  Rng rng(0x407a11);
  const std::set<NodeId> hotspots = {mesh.node({4, 4}), mesh.node({3, 4}),
                                     mesh.node({4, 3}), mesh.node({3, 3})};
  int hot = 0;
  int delivered = 0;
  const int draws = 40000;
  for (int i = 0; i < draws; ++i) {
    const auto dst = pattern_destination(TrafficPattern::Hotspot, mesh, 0, rng);
    if (!dst) continue;
    ++delivered;
    if (hotspots.count(*dst)) ++hot;
  }
  // Expected hotspot share among delivered packets: 25% directed mass plus
  // the uniform component's 4/64, ~0.30 after excluding self-draws.
  const double share = static_cast<double>(hot) / delivered;
  EXPECT_GT(share, 0.26);
  EXPECT_LT(share, 0.34);
}

TEST(PatternProperties, HotspotDegenerateOn2x2StaysValid) {
  // k = 2 clamps the lower hotspot coordinate (k/2 - 1 = 0): the four
  // hotspots collapse onto the whole mesh. The draw must stay in bounds and
  // still reach every non-self node.
  const Mesh mesh(2);
  Rng rng(0xbee);
  std::set<NodeId> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto dst = pattern_destination(TrafficPattern::Hotspot, mesh, 0, rng);
    if (dst) seen.insert(*dst);
  }
  EXPECT_EQ(static_cast<int>(seen.size()), mesh.num_nodes() - 1);
}

}  // namespace
}  // namespace hybridnoc
