#include "traffic/synthetic.hpp"

#include <gtest/gtest.h>

#include <map>

namespace hybridnoc {
namespace {

TEST(Patterns, TornadoMatchesPaperFormula) {
  // Section IV: (x, y) -> (x + k/2 - 1, y).
  const Mesh mesh(6);
  Rng rng(1);
  for (NodeId src = 0; src < mesh.num_nodes(); ++src) {
    const Coord c = mesh.coord(src);
    const auto dst = pattern_destination(TrafficPattern::Tornado, mesh, src, rng);
    ASSERT_TRUE(dst.has_value());  // k/2-1 = 2 != 0, never self
    EXPECT_EQ(mesh.coord(*dst).x, (c.x + 2) % 6);
    EXPECT_EQ(mesh.coord(*dst).y, c.y);
  }
}

TEST(Patterns, TransposeMapsXY) {
  const Mesh mesh(6);
  Rng rng(1);
  for (NodeId src = 0; src < mesh.num_nodes(); ++src) {
    const Coord c = mesh.coord(src);
    const auto dst = pattern_destination(TrafficPattern::Transpose, mesh, src, rng);
    if (c.x == c.y) {
      EXPECT_FALSE(dst.has_value());  // diagonal maps to itself: no injection
    } else {
      ASSERT_TRUE(dst.has_value());
      EXPECT_EQ(mesh.coord(*dst), (Coord{c.y, c.x}));
    }
  }
}

TEST(Patterns, BitComplementIsInvolution) {
  const Mesh mesh(6);
  Rng rng(1);
  for (NodeId src = 0; src < mesh.num_nodes(); ++src) {
    const auto dst =
        pattern_destination(TrafficPattern::BitComplement, mesh, src, rng);
    ASSERT_TRUE(dst.has_value());
    const auto back =
        pattern_destination(TrafficPattern::BitComplement, mesh, *dst, rng);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, src);
  }
}

TEST(Patterns, UniformRandomCoversAllDestinations) {
  const Mesh mesh(4);
  Rng rng(5);
  std::map<NodeId, int> seen;
  for (int i = 0; i < 20000; ++i) {
    const auto dst = pattern_destination(TrafficPattern::UniformRandom, mesh, 0, rng);
    if (dst) ++seen[*dst];
  }
  EXPECT_EQ(static_cast<int>(seen.size()), mesh.num_nodes() - 1);
  for (const auto& [node, count] : seen) {
    EXPECT_NE(node, 0);
    EXPECT_GT(count, 20000 / 16 / 3);  // roughly uniform
  }
}

TEST(Patterns, HotspotConcentratesOnCenter) {
  const Mesh mesh(6);
  Rng rng(7);
  std::map<NodeId, int> seen;
  for (int i = 0; i < 40000; ++i) {
    const auto dst = pattern_destination(TrafficPattern::Hotspot, mesh, 0, rng);
    if (dst) ++seen[*dst];
  }
  const NodeId hot = mesh.node({3, 3});
  // A hotspot receives ~25%/4 + uniform share: far above 1/36.
  EXPECT_GT(seen[hot], 40000 / 36 * 2);
}

TEST(Patterns, ShuffleStaysInRange) {
  const Mesh mesh(4);  // 16 nodes: power of two, shuffle is exact
  Rng rng(1);
  for (NodeId src = 0; src < mesh.num_nodes(); ++src) {
    const auto dst = pattern_destination(TrafficPattern::Shuffle, mesh, src, rng);
    if (dst) {
      EXPECT_GE(*dst, 0);
      EXPECT_LT(*dst, mesh.num_nodes());
    }
  }
  // Perfect shuffle of 0b0001 is 0b0010.
  const auto d1 = pattern_destination(TrafficPattern::Shuffle, mesh, 1, rng);
  ASSERT_TRUE(d1.has_value());
  EXPECT_EQ(*d1, 2);
}

TEST(SyntheticTraffic, InjectionRateMatchesRequest) {
  const Mesh mesh(6);
  SyntheticTraffic t(mesh, TrafficPattern::UniformRandom, 0.2, 5, 3);
  EXPECT_DOUBLE_EQ(t.packet_probability(), 0.04);
  std::uint64_t packets = 0;
  const int cycles = 20000;
  for (int c = 0; c < cycles; ++c) {
    t.generate([&](NodeId, NodeId) { ++packets; });
  }
  const double rate = static_cast<double>(packets) * 5.0 /
                      (static_cast<double>(cycles) * mesh.num_nodes());
  EXPECT_NEAR(rate, 0.2, 0.01);
}

TEST(SyntheticTraffic, DeterministicForSeed) {
  const Mesh mesh(4);
  auto collect = [&](std::uint64_t seed) {
    SyntheticTraffic t(mesh, TrafficPattern::UniformRandom, 0.3, 5, seed);
    std::vector<std::pair<NodeId, NodeId>> v;
    for (int c = 0; c < 200; ++c)
      t.generate([&](NodeId s, NodeId d) { v.emplace_back(s, d); });
    return v;
  };
  EXPECT_EQ(collect(9), collect(9));
  EXPECT_NE(collect(9), collect(10));
}

}  // namespace
}  // namespace hybridnoc
