// The path-configuration protocol under adversity: a dynamic slot-table
// resize racing in-flight config messages, a lost acknowledgement, and
// sustained drop/delay/duplicate fault injection — all cross-checked with the
// network-wide reservation consistency audit.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tdm/hybrid_network.hpp"

namespace hybridnoc {
namespace {

PacketPtr make_data(PacketId id, NodeId src, NodeId dst) {
  auto p = std::make_shared<Packet>();
  p->id = id;
  p->src = src;
  p->dst = dst;
  p->num_flits = 5;
  return p;
}

NocConfig cfg_fault() {
  NocConfig c = NocConfig::hybrid_tdm_vc4(6);
  c.slot_table_size = 64;
  c.path_freq_threshold = 4;
  c.policy_epoch_cycles = 256;
  c.path_idle_timeout = 1024;
  c.pending_setup_timeout_cycles = 2000;
  c.reservation_lease_cycles = 4096;
  return c;
}

// The original bug: a resize between a setup's departure and its completion
// changed the active size S, so the source reconstructed src_slot with the
// wrong modulus and aborted on a consistency check (or installed a window
// over reservations the reset had already wiped). With generation fencing
// the straggling messages are simply discarded.
TEST(ConfigFault, ResizeWhileSetupInFlightIsFenced) {
  NocConfig cfg = cfg_fault();
  cfg.dynamic_slot_sizing = true;
  cfg.initial_active_slots = 16;
  HybridNetwork net(cfg);
  const NodeId src = 0;
  const NodeId dst = net.mesh().node({5, 5});  // 10 hops: setup stays in flight
  PacketId id = 1;
  for (int i = 0; i < 5; ++i) net.ni(src).send(make_data(id++, src, dst), net.now());
  for (int i = 0; i < 8; ++i) net.tick();
  ASSERT_GT(net.controller().config_in_flight(), 0u);  // setup mid-path
  net.controller().request_resize();
  for (int i = 0; i < 3000; ++i) net.tick();
  EXPECT_EQ(net.controller().table_generation(), 1u);
  EXPECT_EQ(net.controller().active_slots(), 32);
  // The straggler hit a generation fence instead of reserving under the new
  // tables or tripping the src_slot consistency check.
  EXPECT_GT(net.total_stale_config_drops(), 0u);
  EXPECT_FALSE(net.hybrid_ni(src).has_connection(dst));
  EXPECT_EQ(net.controller().config_in_flight(), 0u);
  EXPECT_EQ(net.total_valid_slot_entries(), 0);
  const auto audit = net.audit_reservations();
  EXPECT_TRUE(audit.clean());
  EXPECT_EQ(audit.windows_walked, 0);
}

// Losing an AckSuccess used to wedge the destination forever: the pending
// entry blocked every future setup to that node while the reserved path sat
// orphaned. The pending-setup timeout now reclaims both.
TEST(ConfigFault, DroppedAckDestinationRecoversAfterTimeout) {
  NocConfig cfg = cfg_fault();
  HybridNetwork net(cfg);
  const NodeId src = 0;
  const NodeId dst = net.mesh().node({3, 0});
  int ack_drops = 0;
  net.hybrid_ni(dst).set_config_fault_hook(
      [&ack_drops](const PacketPtr& p, Cycle) {
        ConfigFaultDecision d;
        if (p->type == MsgType::AckSuccess && ack_drops == 0) {
          ++ack_drops;
          d.action = ConfigFaultDecision::Action::Drop;
        }
        return d;
      });
  PacketId id = 1;
  Cycle connected_at = 0;
  for (int cycle = 0; cycle < 12000; ++cycle) {
    if (cycle % 8 == 0) net.ni(src).send(make_data(id++, src, dst), net.now());
    net.tick();
    if (connected_at == 0 && net.hybrid_ni(src).has_connection(dst)) {
      connected_at = net.now();
    }
  }
  EXPECT_EQ(ack_drops, 1);
  EXPECT_EQ(net.hybrid_ni(src).pending_timeouts(), 1u);
  ASSERT_TRUE(net.hybrid_ni(src).has_connection(dst));
  // Recovery could only start once the pending entry timed out.
  EXPECT_GT(connected_at, Cycle{cfg.pending_setup_timeout_cycles});
  // The timeout teardown released the orphaned first path: the audit sees
  // only the live window (the lease, 4x longer, has not fired for it).
  const auto audit = net.audit_reservations();
  EXPECT_TRUE(audit.clean());
  EXPECT_EQ(audit.windows_walked, 1);
}

// Every config message duplicated: duplicate setups lose the slot race at the
// source router and bounce as failures, duplicate acks and teardowns are
// fenced by owner tags and window bookkeeping. Nothing crashes and no
// reservation survives unaccounted.
TEST(ConfigFault, DuplicatedConfigMessagesAreHarmless) {
  NocConfig cfg = cfg_fault();
  HybridNetwork net(cfg);
  ConfigFaultParams faults;
  faults.dup_prob = 1.0;
  faults.seed = 3;
  net.enable_config_faults(faults);
  PacketId id = 1;
  const NodeId src = 0;
  const NodeId dst = net.mesh().node({4, 1});
  for (int cycle = 0; cycle < 8000; ++cycle) {
    if (cycle % 8 == 0) net.ni(src).send(make_data(id++, src, dst), net.now());
    net.tick();
  }
  EXPECT_GT(net.faults_duplicated(), 0u);
  net.disable_config_faults();
  net.set_policy_frozen(true);
  for (int i = 0; i < 40000 && !net.quiescent(); ++i) net.tick();
  ASSERT_TRUE(net.quiescent());
  // Let idle retirement and the lease reclaim whatever the storm left.
  for (int i = 0; i < 3 * static_cast<int>(cfg.reservation_lease_cycles); ++i) {
    net.tick();
  }
  const auto audit = net.audit_reservations();
  EXPECT_EQ(audit.broken_windows, 0);
  EXPECT_EQ(audit.orphan_entries, 0);
  EXPECT_EQ(net.total_valid_slot_entries(), 0);
  EXPECT_EQ(net.total_active_connections(), 0);
  EXPECT_EQ(net.controller().config_in_flight(), 0u);
}

// The acceptance property: 10k cycles of multi-pair traffic with seeded
// random drops, delays and duplications, then a clean cool-down. The network
// must converge to a state with zero orphaned reservations and balanced
// in-flight accounting.
TEST(ConfigFault, SeededFaultStormConvergesToConsistentState) {
  NocConfig cfg = cfg_fault();
  cfg.dynamic_slot_sizing = true;
  cfg.initial_active_slots = 16;
  HybridNetwork net(cfg);
  ConfigFaultParams faults;
  faults.drop_prob = 0.03;
  faults.delay_prob = 0.05;
  faults.dup_prob = 0.03;
  faults.max_delay_cycles = 96;
  faults.seed = 7;
  net.enable_config_faults(faults);
  Rng traffic(11);
  PacketId id = 1;
  // Hot pairs: concentrated enough that per-pair frequency crosses the setup
  // threshold every epoch, so circuits keep being built and torn down while
  // the faults fire.
  const std::vector<std::pair<NodeId, NodeId>> pairs = {
      {net.mesh().node({0, 0}), net.mesh().node({5, 0})},
      {net.mesh().node({0, 1}), net.mesh().node({4, 4})},
      {net.mesh().node({5, 5}), net.mesh().node({1, 2})},
      {net.mesh().node({2, 5}), net.mesh().node({3, 0})},
      {net.mesh().node({0, 5}), net.mesh().node({5, 2})},
      {net.mesh().node({3, 3}), net.mesh().node({0, 3})},
  };
  // Bursty on/off phases (512 on, 1024 off, staggered per pair): connections
  // idle-retire during the off phase and re-establish in the next burst, so
  // setups, acks and teardowns keep flowing for the faults to hit.
  auto offer = [&](int cycle) {
    for (size_t i = 0; i < pairs.size(); ++i) {
      if (((static_cast<size_t>(cycle) >> 9) + i) % 3 != 0) continue;
      if (traffic.bernoulli(0.25)) {
        net.ni(pairs[i].first)
            .send(make_data(id++, pairs[i].first, pairs[i].second), net.now());
      }
    }
  };
  for (int cycle = 0; cycle < 10000; ++cycle) {
    // Two dynamic resizes land mid-storm, racing whatever is in flight.
    if (cycle == 3000 || cycle == 7000) net.controller().request_resize();
    offer(cycle);
    net.tick();
  }
  EXPECT_GT(net.faults_dropped(), 0u);
  EXPECT_GT(net.faults_delayed(), 0u);
  EXPECT_GT(net.faults_duplicated(), 0u);
  EXPECT_GE(net.controller().table_generation(), 2u);
  net.disable_config_faults();
  // Clean traffic keeps live windows refreshed while timeouts and the lease
  // mop up what the storm orphaned.
  for (int cycle = 0; cycle < 6000; ++cycle) {
    offer(cycle);
    net.tick();
  }
  net.set_policy_frozen(true);
  for (int i = 0; i < 60000 && !net.quiescent(); ++i) net.tick();
  ASSERT_TRUE(net.quiescent());
  for (int i = 0; i < 3 * static_cast<int>(cfg.reservation_lease_cycles); ++i) {
    net.tick();
  }
  const auto audit = net.audit_reservations();
  EXPECT_EQ(audit.broken_windows, 0);
  EXPECT_EQ(audit.orphan_entries, 0);
  EXPECT_EQ(net.total_valid_slot_entries(), 0);
  EXPECT_EQ(net.total_active_connections(), 0);
  EXPECT_EQ(net.controller().cs_in_flight(), 0u);
  EXPECT_EQ(net.controller().config_in_flight(), 0u);
}

}  // namespace
}  // namespace hybridnoc
