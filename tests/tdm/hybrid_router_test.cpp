// Unit tests of the hybrid router's configuration-protocol processing
// (setup reservation, slot increment, nack transform, teardown walk) without
// a full network: compute_route only needs the slot table and routing state.
#include "tdm/hybrid_router.hpp"

#include <gtest/gtest.h>

namespace hybridnoc {
namespace {

struct TestRouter : HybridRouter {
  using HybridRouter::HybridRouter;
  using HybridRouter::compute_route;  // expose for direct protocol tests
};

struct Fixture {
  Fixture()
      : cfg(make_cfg()),
        mesh(cfg.k),
        ctrl(cfg),
        router(cfg, mesh.node({1, 1}), mesh, &ctrl) {}

  static NocConfig make_cfg() {
    NocConfig c = NocConfig::hybrid_tdm_vc4(3);
    c.slot_table_size = 16;
    return c;
  }

  PacketPtr setup(NodeId src, NodeId dst, int slot) {
    auto p = std::make_shared<Packet>();
    p->id = ++next_id;
    p->type = MsgType::SetupRequest;
    p->src = src;
    p->dst = dst;
    p->final_dst = dst;
    p->slot_id = slot;
    p->duration = cfg.reservation_duration();
    p->num_flits = 1;
    return p;
  }

  PacketPtr teardown(NodeId src, NodeId dst, int slot) {
    auto p = setup(src, dst, slot);
    p->type = MsgType::Teardown;
    return p;
  }

  NocConfig cfg;
  Mesh mesh;
  TdmController ctrl;
  TestRouter router;
  PacketId next_id = 0;
};

TEST(HybridRouterProtocol, SetupReservesAndIncrementsSlotByTwo) {
  Fixture f;
  // Setup from the west neighbour heading to the east neighbour.
  auto pkt = f.setup(f.mesh.node({0, 1}), f.mesh.node({2, 1}), 5);
  const auto out = f.router.compute_route(pkt.get(), Port::West, 10);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, Port::East);
  EXPECT_EQ(pkt->type, MsgType::SetupRequest);
  EXPECT_EQ(pkt->slot_id, 7);  // +2: two-stage circuit pipeline per hop
  for (int s = 5; s < 9; ++s) {
    EXPECT_EQ(f.router.slots().lookup_slot(s, Port::West), Port::East) << s;
  }
  EXPECT_EQ(f.router.slots().valid_entries(), 4);
}

TEST(HybridRouterProtocol, SetupAtDestinationReservesEjection) {
  Fixture f;
  auto pkt = f.setup(f.mesh.node({0, 1}), f.mesh.node({1, 1}), 3);
  const auto out = f.router.compute_route(pkt.get(), Port::West, 10);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, Port::Local);
  EXPECT_EQ(f.router.slots().lookup_slot(3, Port::West), Port::Local);
}

TEST(HybridRouterProtocol, InputConflictTransformsToFailureAck) {
  Fixture f;
  auto first = f.setup(f.mesh.node({0, 1}), f.mesh.node({2, 1}), 5);
  ASSERT_TRUE(f.router.compute_route(first.get(), Port::West, 10).has_value());

  // Second setup from the same input overlapping slot 8 (5..8 reserved).
  auto second = f.setup(f.mesh.node({0, 1}), f.mesh.node({1, 0}), 8);
  const auto out = f.router.compute_route(second.get(), Port::West, 20);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(second->type, MsgType::AckFailure);
  EXPECT_EQ(second->dst, f.mesh.node({0, 1}));  // back to the source
  EXPECT_EQ(second->src, f.router.id());
  // Table untouched by the failed attempt.
  EXPECT_EQ(f.router.slots().valid_entries(), 4);
}

TEST(HybridRouterProtocol, OutputConflictTransformsToFailureAck) {
  Fixture f;
  auto first = f.setup(f.mesh.node({0, 1}), f.mesh.node({2, 1}), 5);
  ASSERT_TRUE(f.router.compute_route(first.get(), Port::West, 10).has_value());
  // From the north input toward the same East output, overlapping slots.
  auto second = f.setup(f.mesh.node({1, 0}), f.mesh.node({2, 1}), 6);
  (void)f.router.compute_route(second.get(), Port::North, 20);
  EXPECT_EQ(second->type, MsgType::AckFailure);
}

TEST(HybridRouterProtocol, OccupancyThresholdBlocksNewReservations) {
  Fixture f;
  // Fill >90% of the (16 slots x 5 ports) entries directly.
  auto& slots = f.router.slots();
  int filled = 0;
  for (int p = 0; p < kNumPorts && slots.occupancy() <= 0.9; ++p) {
    for (int s = 0; s < 16 && slots.occupancy() <= 0.9; s += 1) {
      if (slots.reserve(s, 1, static_cast<Port>(p),
                        static_cast<Port>((p + 1) % kNumPorts))) {
        ++filled;
      }
    }
  }
  ASSERT_GT(slots.occupancy(), 0.9);
  const int before = slots.valid_entries();
  auto pkt = f.setup(f.mesh.node({0, 1}), f.mesh.node({2, 1}), 3);
  (void)f.router.compute_route(pkt.get(), Port::West, 10);
  EXPECT_EQ(pkt->type, MsgType::AckFailure);  // starvation guard (Section II-B)
  EXPECT_EQ(slots.valid_entries(), before);
}

TEST(HybridRouterProtocol, TeardownWalksPathAndReleases) {
  Fixture f;
  auto s = f.setup(f.mesh.node({0, 1}), f.mesh.node({2, 1}), 5);
  ASSERT_TRUE(f.router.compute_route(s.get(), Port::West, 10).has_value());
  ASSERT_EQ(f.router.slots().valid_entries(), 4);

  f.ctrl.config_launched();  // the teardown about to be processed
  auto t = f.teardown(f.mesh.node({0, 1}), f.mesh.node({2, 1}), 5);
  const auto out = f.router.compute_route(t.get(), Port::West, 20);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, Port::East);  // follows the reserved path's output
  EXPECT_EQ(t->slot_id, 7);
  EXPECT_EQ(f.router.slots().valid_entries(), 0);
}

TEST(HybridRouterProtocol, TeardownEvaporatesAtFailNode) {
  Fixture f;
  f.ctrl.config_launched();
  auto t = f.teardown(f.mesh.node({0, 1}), f.mesh.node({2, 1}), 5);
  const auto out = f.router.compute_route(t.get(), Port::West, 20);
  EXPECT_FALSE(out.has_value());  // nothing reserved: setup failed here
  EXPECT_EQ(f.ctrl.config_in_flight(), 0u);  // retired by the router
}

TEST(HybridRouterProtocol, ShareEntryOkTracksTable) {
  Fixture f;
  auto s = f.setup(f.mesh.node({0, 1}), f.mesh.node({2, 1}), 4);
  ASSERT_TRUE(f.router.compute_route(s.get(), Port::West, 10).has_value());
  EXPECT_TRUE(f.router.share_entry_ok(4, Port::West, Port::East));
  EXPECT_TRUE(f.router.share_entry_ok(16 + 5, Port::West, Port::East));
  EXPECT_FALSE(f.router.share_entry_ok(9, Port::West, Port::East));
  EXPECT_FALSE(f.router.share_entry_ok(4, Port::West, Port::South));
}

TEST(HybridRouterProtocol, LocalInputFreePrecheck) {
  Fixture f;
  auto s = f.setup(f.router.id(), f.mesh.node({2, 1}), 2);
  ASSERT_TRUE(f.router.compute_route(s.get(), Port::Local, 10).has_value());
  EXPECT_FALSE(f.router.local_input_free(2, 4));
  EXPECT_FALSE(f.router.local_input_free(5, 1));
  EXPECT_TRUE(f.router.local_input_free(6, 4));
}

}  // namespace
}  // namespace hybridnoc
