// Long link-fault storm (ctest label: faultstorm).
//
// The data-plane counterpart of fault_storm_long_test: 30k cycles of bursty
// multi-pair traffic on a 6x6 mesh under a transient bit-error rate, a
// permanent link death, a stuck-link window and a router death — with a
// light config-message storm layered on top so both fault planes recover at
// once. Meant for the sanitizer build (`cmake -B build-asan -S .
// -DHN_SANITIZE=address;undefined` then `ctest -L faultstorm`); it also runs
// in the default suite, sized to stay a few seconds there.
//
// Checks the acceptance bar in one pass: every injected packet is delivered
// uncorrupted despite the storm, the fabric's final reservation state is
// pristine, and the recorded trace (config decisions + hardware faults +
// fired transients) replays bit-identically with no RNG and no BER hash.
#include <gtest/gtest.h>

#include <cstdlib>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "tdm/fault_trace.hpp"

namespace hybridnoc {
namespace {

constexpr NodeId kDeadRouter = 21;  // (3,3) on the 6x6 mesh, interior

FaultScenario make_link_storm(std::uint64_t seed) {
  FaultScenario s;
  s.k = 6;
  s.run_cycles = 30000;
  s.cooldown_cycles = 8000;
  // Light config-message storm so both fault planes are live at once.
  s.fault_params.drop_prob = 0.02;
  s.fault_params.delay_prob = 0.03;
  s.fault_params.max_delay_cycles = 64;
  s.fault_params.seed = seed;
  // Data-plane faults: transient BER for the whole run, one permanent link
  // death, one stuck window, one router death. The killed router is interior
  // and no traffic pair touches it, so nothing becomes unreachable.
  s.link_ber = 5e-4;
  s.link_fault_seed = seed * 7 + 3;
  s.e2e_recovery = true;
  // The retransmission timer runs from launch, so it must cover a loaded
  // round trip (data out + ack back through burst congestion), not just the
  // fault-free flight time — too short and spurious clones feed the very
  // congestion that delayed the ack.
  s.retx_timeout_cycles = 512;
  s.retx_backoff_cap_cycles = 8192;
  s.max_retx_attempts = 10;
  s.cs_fail_threshold = 2;
  s.dead_links = {{14, static_cast<int>(Port::East), 10000, 0}};
  s.stuck_links = {{20, static_cast<int>(Port::North), 16000, 1500}};
  s.dead_routers = {{kDeadRouter, 22000}};
  Rng rng(seed * 1000003 + 11);
  const NodeId nodes = static_cast<NodeId>(s.k * s.k);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  std::vector<bool> used(nodes, false);
  used[kDeadRouter] = true;
  while (pairs.size() < 8) {
    const NodeId a = static_cast<NodeId>(rng.uniform_int(nodes));
    const NodeId b = static_cast<NodeId>(rng.uniform_int(nodes));
    // Endpoints are pairwise distinct across all pairs: every NI injects one
    // flit per cycle at most, so stacking several bursty flows on one node
    // would oversubscribe it by construction and the test would measure its
    // own overload instead of fault recovery.
    if (used[a] || used[b] || a == b) continue;
    const int hops = std::abs(a % s.k - b % s.k) + std::abs(a / s.k - b / s.k);
    if (hops < s.k / 2 + 1) continue;
    used[a] = used[b] = true;
    pairs.emplace_back(a, b);
  }
  for (Cycle cy = 0; cy < s.run_cycles + s.cooldown_cycles; ++cy) {
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if (((cy >> 9) + i) % 3 != 0) continue;
      // Sized against the *surviving* topology: fault-epoch routing follows
      // the up*/down* spanning tree, which funnels flows through far fewer
      // links than the full mesh, so the offered load must leave headroom
      // for detours plus retransmission copies or the test measures its own
      // oversubscription instead of fault recovery.
      if (rng.bernoulli(0.12)) {
        s.traffic.push_back({cy, pairs[i].first, pairs[i].second, 5});
      }
    }
  }
  return s;
}

TEST(LinkFaultStorm, DeliversEverythingRecoversAndReplaysDeterministically) {
  FaultScenario s = make_link_storm(/*seed=*/13);
  const ScenarioOutcome rec =
      run_fault_scenario(s, ScenarioMode::Record, false, &s.faults);

  // The storm actually bit: transients fired per-hop, destinations squashed
  // dirty packets, and the end-to-end layer had to retransmit.
  EXPECT_GT(rec.crc_flagged_flits, 0u);
  EXPECT_GT(rec.crc_squashed_packets, 0u);
  EXPECT_GT(rec.retransmits, 0u);
  EXPECT_GT(rec.faults_dropped + rec.faults_delayed, 0u);
  // 1 directed dead link + 8 directed links incident to the dead router.
  EXPECT_EQ(rec.failed_links, 9);

  // The acceptance bar: with CRC + retransmission, 100% of injected packets
  // eventually delivered uncorrupted; nothing gave up, nothing was cut off.
  EXPECT_TRUE(rec.quiesced);
  EXPECT_GT(rec.data_sent, 1000u);
  EXPECT_EQ(rec.data_delivered, rec.data_sent);
  EXPECT_EQ(rec.retx_give_ups, 0u);
  EXPECT_EQ(rec.unreachable_failed, 0u);
  EXPECT_EQ(rec.broken_windows, 0);
  EXPECT_EQ(rec.orphan_entries, 0);
  EXPECT_EQ(rec.valid_slot_entries, 0);
  EXPECT_EQ(rec.active_connections, 0);
  EXPECT_EQ(rec.config_in_flight, 0u);

  // The trace carries the whole storm: config decisions plus the hardware
  // schedule and every fired transient.
  std::size_t config_records = 0;
  bool has_kill = false, has_stuck = false, has_router = false,
       has_corrupt = false;
  for (const FaultRecord& r : s.faults.records) {
    switch (r.kind) {
      case ConfigKind::Link:
        has_kill = has_kill || r.action == FaultAction::Kill;
        has_stuck = has_stuck || r.action == FaultAction::Stuck;
        has_corrupt = has_corrupt || r.action == FaultAction::Corrupt;
        break;
      case ConfigKind::Router:
        has_router = true;
        break;
      default:
        ++config_records;
    }
  }
  EXPECT_TRUE(has_kill);
  EXPECT_TRUE(has_stuck);
  EXPECT_TRUE(has_router);
  EXPECT_TRUE(has_corrupt);
  EXPECT_GT(config_records, 100u);

  // Determinism: replay re-derives the hardware faults from the trace (no
  // BER hash, no schedule fields, no RNG) and reproduces the storm exactly.
  const ScenarioOutcome rep = run_fault_scenario(s, ScenarioMode::Replay);
  EXPECT_EQ(rep.replay_applied, config_records);
  EXPECT_EQ(rep.data_sent, rec.data_sent);
  EXPECT_EQ(rep.data_delivered, rec.data_delivered);
  EXPECT_EQ(rep.retransmits, rec.retransmits);
  EXPECT_EQ(rep.crc_flagged_flits, rec.crc_flagged_flits);
  EXPECT_EQ(rep.crc_squashed_packets, rec.crc_squashed_packets);
  EXPECT_EQ(rep.cs_fault_teardowns, rec.cs_fault_teardowns);
  EXPECT_EQ(rep.setup_give_ups, rec.setup_give_ups);
  EXPECT_EQ(rep.expired_reservations, rec.expired_reservations);
  EXPECT_EQ(rep.slot_state_digest, rec.slot_state_digest);
  EXPECT_EQ(rep.failed_links, rec.failed_links);
  EXPECT_TRUE(rep.quiesced);
  EXPECT_EQ(rep.retx_give_ups, 0u);
}

}  // namespace
}  // namespace hybridnoc
