// End-to-end tests of the TDM hybrid-switched network: path setup over the
// packet-switched fabric, slot-timed circuit transmission, time-slot
// stealing, teardown, dynamic slot sizing, and conservation under load.
#include "tdm/hybrid_network.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace hybridnoc {
namespace {

NocConfig test_cfg(int k = 6) {
  NocConfig c = NocConfig::hybrid_tdm_vc4(k);
  c.slot_table_size = 16;  // short slot waits keep tests fast & predictable
  c.path_freq_threshold = 4;
  c.policy_epoch_cycles = 512;
  return c;
}

PacketPtr make_data(PacketId id, NodeId src, NodeId dst, int flits = 5) {
  auto p = std::make_shared<Packet>();
  p->id = id;
  p->src = src;
  p->dst = dst;
  p->num_flits = flits;
  return p;
}

/// Drive a hot src->dst pair until a circuit is established.
void establish(HybridNetwork& net, NodeId src, NodeId dst, PacketId& next_id,
               int max_cycles = 4000) {
  for (int i = 0; i < max_cycles; ++i) {
    if (net.now() % 25 == 0) {
      net.ni(src).send(make_data(next_id++, src, dst), net.now());
    }
    net.tick();
    if (net.hybrid_ni(src).has_connection(dst)) return;
  }
  FAIL() << "no connection formed from " << src << " to " << dst;
}

void drain(Network& net, int max_cycles = 30000) {
  net.set_policy_frozen(true);
  for (int i = 0; i < max_cycles && !net.quiescent(); ++i) net.tick();
  ASSERT_TRUE(net.quiescent()) << "network failed to drain";
}

TEST(HybridNetwork, PathSetupEstablishesConnection) {
  HybridNetwork net(test_cfg());
  PacketId id = 1;
  const NodeId src = 0, dst = net.mesh().node({5, 0});
  establish(net, src, dst, id);
  EXPECT_TRUE(net.hybrid_ni(src).has_connection(dst));
  EXPECT_GE(net.hybrid_ni(src).setups_sent(), 1u);
  EXPECT_EQ(net.controller().cs_in_flight(), 0u);
  // Slots are reserved along the whole row-0 path, including endpoints.
  for (int x = 0; x <= 5; ++x) {
    EXPECT_GT(net.hybrid_router(net.mesh().node({x, 0})).slots().valid_entries(), 0)
        << "no reservation at column " << x;
  }
  drain(net);
}

TEST(HybridNetwork, CircuitFlitsAreUsedAfterSetup) {
  HybridNetwork net(test_cfg());
  PacketId id = 1;
  const NodeId src = 0, dst = net.mesh().node({5, 0});
  establish(net, src, dst, id);
  const auto cs_before = net.total_cs_flits();
  std::uint64_t delivered = 0;
  net.set_deliver_handler([&](const PacketPtr& p, Cycle) {
    if (p->switching == Switching::Circuit) ++delivered;
  });
  for (int i = 0; i < 20; ++i) {
    net.ni(src).send(make_data(id++, src, dst), net.now());
    for (int t = 0; t < 40; ++t) net.tick();
  }
  EXPECT_GT(net.total_cs_flits(), cs_before);
  EXPECT_GT(delivered, 10u);  // most packets ride the circuit
  drain(net);
}

TEST(HybridNetwork, CircuitLatencyIsBoundedBySlotWait) {
  HybridNetwork net(test_cfg());
  PacketId id = 1;
  const NodeId src = 0, dst = net.mesh().node({5, 0});
  const int hops = 5;
  establish(net, src, dst, id);
  std::vector<Cycle> latencies;
  net.set_deliver_handler([&](const PacketPtr& p, Cycle at) {
    if (p->switching == Switching::Circuit) latencies.push_back(at - p->created);
  });
  for (int i = 0; i < 30; ++i) {
    net.ni(src).send(make_data(id++, src, dst), net.now());
    for (int t = 0; t < 50; ++t) net.tick();
  }
  ASSERT_GT(latencies.size(), 10u);
  // Circuit latency = slot wait (< S + 3) + 2 per hop + ejection + flits.
  const Cycle bound = 16 + 3 + 2 * hops + 2 + 3;
  for (const Cycle l : latencies) EXPECT_LE(l, bound);
  drain(net);
}

TEST(HybridNetwork, ConservationUnderUniformRandomLoad) {
  NocConfig cfg = test_cfg(4);
  HybridNetwork net(cfg);
  std::map<PacketId, NodeId> outstanding;
  bool misdelivery = false;
  net.set_deliver_handler([&](const PacketPtr& p, Cycle) {
    auto it = outstanding.find(p->id);
    if (it == outstanding.end() || it->second != p->final_dst) {
      misdelivery = true;
      return;
    }
    outstanding.erase(it);
  });
  Rng rng(42);
  PacketId id = 1;
  std::uint64_t injected = 0;
  for (int cycle = 0; cycle < 8000; ++cycle) {
    for (NodeId s = 0; s < net.num_nodes(); ++s) {
      if (!rng.bernoulli(0.03)) continue;
      const NodeId d = static_cast<NodeId>(
          rng.uniform_int(static_cast<std::uint64_t>(net.num_nodes())));
      if (d == s) continue;
      net.ni(s).send(make_data(id++, s, d), net.now());
      outstanding[id - 1] = d;
      ++injected;
    }
    net.tick();
  }
  EXPECT_GT(injected, 100u);
  drain(net);
  EXPECT_FALSE(misdelivery);
  EXPECT_TRUE(outstanding.empty());
  EXPECT_EQ(net.controller().cs_in_flight(), 0u);
  EXPECT_EQ(net.controller().config_in_flight(), 0u);
}

TEST(HybridNetwork, TimeSlotStealingLowersPacketLatencyOnReservedLinks) {
  auto run = [](bool stealing) {
    NocConfig cfg = test_cfg();
    cfg.time_slot_stealing = stealing;
    HybridNetwork net(cfg);
    PacketId id = 1;
    const NodeId src = 0, dst = net.mesh().node({5, 0});
    establish(net, src, dst, id);
    // Keep the circuit alive but idle; run packet-switched traffic along the
    // same row through the reserved outputs.
    StatAccumulator lat;
    net.set_deliver_handler([&](const PacketPtr& p, Cycle at) {
      if (p->switching == Switching::Packet && !p->is_config())
        lat.add(static_cast<double>(at - p->created));
    });
    const NodeId s2 = net.mesh().node({1, 0});
    const NodeId d2 = net.mesh().node({4, 0});
    for (int i = 0; i < 200; ++i) {
      auto p = make_data(id++, s2, d2);
      p->cs_eligible = false;
      net.ni(s2).send(p, net.now());
      for (int t = 0; t < 10; ++t) net.tick();
    }
    return std::pair<double, std::uint64_t>(lat.mean(), net.total_ps_steals());
  };
  const auto [lat_on, steals_on] = run(true);
  const auto [lat_off, steals_off] = run(false);
  EXPECT_GT(steals_on, 0u);
  EXPECT_EQ(steals_off, 0u);
  EXPECT_LE(lat_on, lat_off);
}

TEST(HybridNetwork, IdleConnectionIsTornDownAndSlotsFreed) {
  NocConfig cfg = test_cfg();
  cfg.path_idle_timeout = 2048;
  HybridNetwork net(cfg);
  PacketId id = 1;
  const NodeId src = 0, dst = net.mesh().node({5, 0});
  establish(net, src, dst, id);
  int reserved = 0;
  for (NodeId n = 0; n < net.num_nodes(); ++n)
    reserved += net.hybrid_router(n).slots().valid_entries();
  ASSERT_GT(reserved, 0);
  // Silence: idle timeout then teardown walks the path.
  for (int i = 0; i < 12000; ++i) net.tick();
  EXPECT_FALSE(net.hybrid_ni(src).has_connection(dst));
  int reserved_after = 0;
  for (NodeId n = 0; n < net.num_nodes(); ++n)
    reserved_after += net.hybrid_router(n).slots().valid_entries();
  EXPECT_EQ(reserved_after, 0);
  EXPECT_EQ(net.controller().config_in_flight(), 0u);
}

TEST(HybridNetwork, SetupConflictsRetryWithDifferentSlots) {
  // A tiny active region (8 slots, duration 4) makes collisions between
  // many paths through shared links inevitable: the resend mechanism with a
  // different slot id must still converge to some established circuits.
  NocConfig cfg = test_cfg();
  cfg.slot_table_size = 8;
  cfg.initial_active_slots = 8;
  HybridNetwork net(cfg);
  PacketId id = 1;
  Rng rng(7);
  // All sources converge on one destination: their circuits share the
  // column-5 links, and 8 slots hold at most two 4-slot windows per output,
  // so some setups must fail and re-send with different slot ids.
  const NodeId hot = net.mesh().node({5, 2});
  for (int cycle = 0; cycle < 20000; ++cycle) {
    for (int y = 0; y < 6; ++y) {
      if (!rng.bernoulli(0.05)) continue;
      const NodeId s = net.mesh().node({0, y});
      net.ni(s).send(make_data(id++, s, hot), net.now());
    }
    net.tick();
  }
  EXPECT_GT(net.total_setup_failures(), 0u);
  EXPECT_GT(net.total_setups_sent(), 6u);
  EXPECT_GT(net.total_active_connections(), 0);
  drain(net);
}

TEST(HybridNetwork, DynamicSlotSizingGrowsUnderFailurePressure) {
  NocConfig cfg = test_cfg();
  cfg.dynamic_slot_sizing = true;
  cfg.slot_table_size = 64;
  cfg.initial_active_slots = 8;
  cfg.resize_failure_threshold = 4;
  cfg.max_setup_retries = 1;
  HybridNetwork net(cfg);
  EXPECT_EQ(net.controller().active_slots(), 8);
  PacketId id = 1;
  Rng rng(3);
  // Hot all-to-column-5 traffic: 8 slots cannot hold everything.
  for (int cycle = 0; cycle < 30000; ++cycle) {
    for (int y = 0; y < 6; ++y) {
      if (!rng.bernoulli(0.08)) continue;
      const NodeId s = net.mesh().node({static_cast<int>(rng.uniform_int(3)), y});
      const NodeId d = net.mesh().node({5, static_cast<int>(rng.uniform_int(6))});
      if (s == d) continue;
      net.ni(s).send(make_data(id++, s, d), net.now());
    }
    net.tick();
  }
  EXPECT_GE(net.controller().resizes(), 1);
  EXPECT_GT(net.controller().active_slots(), 8);
  // Router tables follow the controller's size.
  EXPECT_EQ(net.hybrid_router(0).slots().active_size(),
            net.controller().active_slots());
  drain(net);
}

TEST(HybridNetwork, ConfigTrafficIsSmallFraction) {
  // Section II-B: "configuration messages correspond to less than 1% of
  // total traffic" for stable workloads.
  HybridNetwork net(test_cfg());
  PacketId id = 1;
  Rng rng(11);
  // A handful of hot pairs, long-running.
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (int i = 0; i < 6; ++i) {
    pairs.emplace_back(net.mesh().node({i % 3, i}), net.mesh().node({5, (i + 2) % 6}));
  }
  for (int cycle = 0; cycle < 60000; ++cycle) {
    for (const auto& [s, d] : pairs) {
      if (rng.bernoulli(0.08)) net.ni(s).send(make_data(id++, s, d), net.now());
    }
    net.tick();
  }
  const double config = static_cast<double>(net.total_config_flits());
  const double total = config + static_cast<double>(net.total_ps_flits()) +
                       static_cast<double>(net.total_cs_flits());
  EXPECT_LT(config / total, 0.01);
  drain(net);
}

TEST(HybridNetwork, DeterministicAcrossRuns) {
  auto run = [] {
    HybridNetwork net(test_cfg(4));
    std::vector<std::pair<PacketId, Cycle>> log;
    net.set_deliver_handler(
        [&](const PacketPtr& p, Cycle at) { log.emplace_back(p->id, at); });
    Rng rng(99);
    PacketId id = 1;
    for (int cycle = 0; cycle < 4000; ++cycle) {
      for (NodeId s = 0; s < net.num_nodes(); ++s) {
        if (rng.bernoulli(0.04)) {
          const NodeId d = static_cast<NodeId>(
              rng.uniform_int(static_cast<std::uint64_t>(net.num_nodes())));
          if (d != s) net.ni(s).send(make_data(id++, s, d), net.now());
        }
      }
      net.tick();
    }
    return log;
  };
  EXPECT_EQ(run(), run());
}

TEST(HybridNetwork, StealingDisabledStillConserves) {
  NocConfig cfg = test_cfg(4);
  cfg.time_slot_stealing = false;
  HybridNetwork net(cfg);
  Rng rng(21);
  PacketId id = 1;
  std::uint64_t injected = 0, delivered = 0;
  net.set_deliver_handler([&](const PacketPtr&, Cycle) { ++delivered; });
  for (int cycle = 0; cycle < 6000; ++cycle) {
    for (NodeId s = 0; s < net.num_nodes(); ++s) {
      if (!rng.bernoulli(0.02)) continue;
      const NodeId d = static_cast<NodeId>(
          rng.uniform_int(static_cast<std::uint64_t>(net.num_nodes())));
      if (d == s) continue;
      net.ni(s).send(make_data(id++, s, d), net.now());
      ++injected;
    }
    net.tick();
  }
  drain(net);
  EXPECT_EQ(delivered, injected);
}

TEST(HybridNetwork, HybridEnergyIncludesCsComponents) {
  HybridNetwork net(test_cfg());
  PacketId id = 1;
  establish(net, 0, net.mesh().node({5, 0}), id);
  const auto e = net.total_energy();
  EXPECT_GT(e.slot_table_reads, 0u);
  EXPECT_GT(e.slot_table_writes, 0u);
  EXPECT_GT(e.slot_entry_active_cycles, 0u);
  EXPECT_GT(e.cs_misc_active_cycles, 0u);
  drain(net);
}

}  // namespace
}  // namespace hybridnoc
