#include "tdm/dlt.hpp"

#include <gtest/gtest.h>

namespace hybridnoc {
namespace {

TEST(Dlt, ObserveAndFind) {
  DestinationLookupTable dlt(8);
  dlt.observe(7, 12, 4, Port::West, Port::East, 100);
  dlt.activate_route(12, Port::West);
  const auto e = dlt.find(7);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->dest, 7);
  EXPECT_EQ(e->slot, 12);
  EXPECT_EQ(e->duration, 4);
  EXPECT_EQ(e->in, Port::West);
  EXPECT_EQ(e->out, Port::East);
  EXPECT_FALSE(dlt.find(8).has_value());
}

TEST(Dlt, ReobserveReplacesAndResetsCounter) {
  DestinationLookupTable dlt(4);
  dlt.observe(7, 12, 4, Port::West, Port::East, 100);
  dlt.activate_route(12, Port::West);
  EXPECT_FALSE(dlt.record_failure(7));  // counter '01'
  dlt.observe(7, 20, 4, Port::North, Port::East, 200);
  dlt.activate_route(20, Port::North);
  const auto e = dlt.find(7);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->slot, 20);
  EXPECT_EQ(e->fail_count, 0);
  EXPECT_EQ(dlt.size(), 1);
}

TEST(Dlt, LruEvictionWhenFull) {
  DestinationLookupTable dlt(2);
  dlt.observe(1, 0, 4, Port::West, Port::East, 10);
  dlt.activate_route(0, Port::West);
  dlt.observe(2, 1, 4, Port::West, Port::East, 20);
  dlt.activate_route(1, Port::West);
  dlt.touch(1, 30);  // 2 is now least recently used
  dlt.observe(3, 2, 4, Port::West, Port::East, 40);
  dlt.activate_route(2, Port::West);
  EXPECT_TRUE(dlt.find(1).has_value());
  EXPECT_FALSE(dlt.find(2).has_value());
  EXPECT_TRUE(dlt.find(3).has_value());
}

TEST(Dlt, TwoBitCounterSaturatesAtTwo) {
  // Section III-A1: when the counter becomes '10' the entry is removed and
  // a dedicated path setup is generated.
  DestinationLookupTable dlt(4);
  dlt.observe(9, 3, 4, Port::West, Port::East, 0);
  dlt.activate_route(3, Port::West);
  EXPECT_FALSE(dlt.record_failure(9));  // '01'
  EXPECT_TRUE(dlt.record_failure(9));   // '10' -> saturated, removed
  EXPECT_FALSE(dlt.find(9).has_value());
  // Failures on unknown destinations report false.
  EXPECT_FALSE(dlt.record_failure(9));
}

TEST(Dlt, InvalidateRouteRemovesMatchingEntries) {
  DestinationLookupTable dlt(4);
  dlt.observe(5, 7, 4, Port::West, Port::East, 0);
  dlt.activate_route(7, Port::West);
  dlt.observe(6, 7, 4, Port::North, Port::East, 0);
  dlt.activate_route(7, Port::North);
  dlt.invalidate_route(7, Port::West);
  EXPECT_FALSE(dlt.find(5).has_value());
  EXPECT_TRUE(dlt.find(6).has_value());  // different input port survives
}

TEST(Dlt, FindAdjacent) {
  DestinationLookupTable dlt(4);
  dlt.observe(10, 0, 4, Port::West, Port::East, 0);
  dlt.activate_route(0, Port::West);
  const auto e =
      dlt.find_adjacent(11, [](NodeId a, NodeId b) { return a + 1 == b; });
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->dest, 10);
  EXPECT_FALSE(
      dlt.find_adjacent(13, [](NodeId a, NodeId b) { return a + 1 == b; })
          .has_value());
}

TEST(Dlt, ProvisionalEntriesAreNotShared) {
  // A setup passing through is not proof the circuit completed; only after
  // the router forwards circuit traffic does the entry become usable.
  DestinationLookupTable dlt(4);
  dlt.observe(7, 5, 4, Port::West, Port::East, 0);
  EXPECT_FALSE(dlt.find(7).has_value());
  EXPECT_FALSE(dlt.find_adjacent(8, [](NodeId a, NodeId b) { return a + 1 == b; })
                   .has_value());
  dlt.activate_route(5, Port::West);
  EXPECT_TRUE(dlt.find(7).has_value());
  // Re-observation (a new setup on the same route) makes it provisional again.
  dlt.observe(7, 9, 4, Port::West, Port::East, 10);
  EXPECT_FALSE(dlt.find(7).has_value());
}

TEST(Dlt, ActivationRequiresMatchingRoute) {
  DestinationLookupTable dlt(4);
  dlt.observe(7, 5, 4, Port::West, Port::East, 0);
  dlt.activate_route(5, Port::North);  // wrong input port
  EXPECT_FALSE(dlt.find(7).has_value());
  dlt.activate_route(6, Port::West);  // wrong slot
  EXPECT_FALSE(dlt.find(7).has_value());
}

TEST(Dlt, ClearAndSize) {
  DestinationLookupTable dlt(4);
  dlt.observe(1, 0, 4, Port::West, Port::East, 0);
  dlt.activate_route(0, Port::West);
  dlt.observe(2, 0, 4, Port::North, Port::South, 0);
  dlt.activate_route(0, Port::North);
  EXPECT_EQ(dlt.size(), 2);
  dlt.clear();
  EXPECT_EQ(dlt.size(), 0);
  EXPECT_FALSE(dlt.find(1).has_value());
}

}  // namespace
}  // namespace hybridnoc
