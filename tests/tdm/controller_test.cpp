#include "tdm/controller.hpp"

#include <gtest/gtest.h>

namespace hybridnoc {
namespace {

NocConfig dyn_cfg() {
  NocConfig c = NocConfig::hybrid_tdm_vc4();
  c.dynamic_slot_sizing = true;
  c.initial_active_slots = 16;
  c.resize_failure_threshold = 8;
  c.policy_epoch_cycles = 100;
  return c;
}

TEST(TdmController, StaticSizingUsesFullTable) {
  TdmController c(NocConfig::hybrid_tdm_vc4());
  EXPECT_EQ(c.active_slots(), 128);
  for (int i = 0; i < 100; ++i) c.record_setup_failure();
  for (Cycle t = 0; t < 1000; ++t) c.tick(t);
  EXPECT_EQ(c.active_slots(), 128);
  EXPECT_EQ(c.resizes(), 0);
}

TEST(TdmController, DynamicSizingStartsSmallAndDoublesOnFailures) {
  TdmController c(dyn_cfg());
  EXPECT_EQ(c.active_slots(), 16);
  int resets = 0;
  c.set_reset_hook([&](int new_active) {
    ++resets;
    EXPECT_EQ(new_active, 32);
  });
  for (int i = 0; i < 10; ++i) c.record_setup_failure();
  for (Cycle t = 0; t <= 200; ++t) c.tick(t);
  EXPECT_EQ(c.active_slots(), 32);
  EXPECT_EQ(resets, 1);
  EXPECT_EQ(c.resizes(), 1);
}

TEST(TdmController, FewFailuresNoResize) {
  TdmController c(dyn_cfg());
  for (int i = 0; i < 3; ++i) c.record_setup_failure();
  for (Cycle t = 0; t <= 500; ++t) c.tick(t);
  EXPECT_EQ(c.active_slots(), 16);
}

TEST(TdmController, ResetWaitsForCircuitQuiescence) {
  TdmController c(dyn_cfg());
  c.cs_flit_launched();
  for (int i = 0; i < 10; ++i) c.record_setup_failure();
  for (Cycle t = 0; t <= 300; ++t) c.tick(t);
  // Flit still in flight: resize pending, CS disallowed, size unchanged.
  EXPECT_EQ(c.active_slots(), 16);
  EXPECT_FALSE(c.cs_allowed());
  c.cs_flit_retired();
  c.tick(301);
  EXPECT_EQ(c.active_slots(), 32);
  EXPECT_TRUE(c.cs_allowed());
}

TEST(TdmController, ConfigInFlightDoesNotBlockReset) {
  TdmController c(dyn_cfg());
  EXPECT_EQ(c.table_generation(), 0u);
  c.config_launched();
  for (int i = 0; i < 10; ++i) c.record_setup_failure();
  for (Cycle t = 0; t <= 300; ++t) c.tick(t);
  // Config messages are generation-fenced, so the reset proceeds with one
  // still in flight; the straggler is discarded at its next endpoint.
  EXPECT_EQ(c.active_slots(), 32);
  EXPECT_EQ(c.table_generation(), 1u);
  c.config_retired();  // the stale message eventually drains and retires
  EXPECT_EQ(c.config_in_flight(), 0u);
}

TEST(TdmController, RequestResizeBumpsGenerationEachReset) {
  TdmController c(dyn_cfg());
  c.request_resize();
  EXPECT_FALSE(c.cs_allowed());
  c.tick(1);
  EXPECT_EQ(c.table_generation(), 1u);
  EXPECT_EQ(c.active_slots(), 32);
  EXPECT_TRUE(c.cs_allowed());
  c.request_resize();
  c.tick(2);
  EXPECT_EQ(c.table_generation(), 2u);
  EXPECT_EQ(c.active_slots(), 64);
  EXPECT_EQ(c.resizes(), 2);
}

TEST(TdmController, ResetHonoursQuiescedCheck) {
  TdmController c(dyn_cfg());
  bool planned = true;
  c.set_quiesced_check([&] { return !planned; });
  for (int i = 0; i < 10; ++i) c.record_setup_failure();
  for (Cycle t = 0; t <= 300; ++t) c.tick(t);
  EXPECT_EQ(c.active_slots(), 16);
  planned = false;
  c.tick(301);
  EXPECT_EQ(c.active_slots(), 32);
}

TEST(TdmController, StopsAtCapacity) {
  NocConfig cfg = dyn_cfg();
  cfg.initial_active_slots = 64;
  TdmController c(cfg);
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 10; ++i) c.record_setup_failure();
    for (Cycle t = static_cast<Cycle>(round * 300);
         t <= static_cast<Cycle>(round * 300) + 300; ++t) {
      c.tick(t);
    }
  }
  EXPECT_EQ(c.active_slots(), 128);  // capacity, no further doubling
  EXPECT_EQ(c.resizes(), 1);
}

TEST(TdmControllerDeathTest, RetireWithoutLaunchAborts) {
  TdmController c(dyn_cfg());
  EXPECT_DEATH(c.cs_flit_retired(), "HN_CHECK");
}

}  // namespace
}  // namespace hybridnoc
