// Circuit-switched path sharing (Section III-A): hitchhiker-sharing,
// vicinity-sharing, their combination, contention bounces, and the 2-bit
// failure counter escalation to a dedicated path.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "tdm/hybrid_network.hpp"

namespace hybridnoc {
namespace {

NocConfig sharing_cfg(bool hitchhiker, bool vicinity) {
  NocConfig c = NocConfig::hybrid_tdm_vc4(6);
  c.slot_table_size = 16;
  c.path_freq_threshold = 4;
  c.policy_epoch_cycles = 512;
  c.hitchhiker_sharing = hitchhiker;
  c.vicinity_sharing = vicinity;
  return c;
}

PacketPtr make_data(PacketId id, NodeId src, NodeId dst) {
  auto p = std::make_shared<Packet>();
  p->id = id;
  p->src = src;
  p->dst = dst;
  p->num_flits = 5;
  return p;
}

void establish(HybridNetwork& net, NodeId src, NodeId dst, PacketId& next_id,
               int max_cycles = 5000) {
  for (int i = 0; i < max_cycles; ++i) {
    if (net.now() % 25 == 0) {
      net.ni(src).send(make_data(next_id++, src, dst), net.now());
    }
    net.tick();
    if (net.hybrid_ni(src).has_connection(dst)) return;
  }
  FAIL() << "no connection formed";
}

/// Send a few packets over an established circuit so intermediate nodes see
/// circuit traffic and activate their provisional DLT entries.
void warm_circuit(HybridNetwork& net, NodeId src, NodeId dst, PacketId& next_id) {
  for (int i = 0; i < 5; ++i) {
    net.ni(src).send(make_data(next_id++, src, dst), net.now());
    for (int t = 0; t < 40; ++t) net.tick();
  }
}

void drain(Network& net, int max_cycles = 30000) {
  net.set_policy_frozen(true);
  for (int i = 0; i < max_cycles && !net.quiescent(); ++i) net.tick();
  ASSERT_TRUE(net.quiescent());
}

TEST(PathSharing, SetupPopulatesIntermediateDlts) {
  HybridNetwork net(sharing_cfg(true, false));
  PacketId id = 1;
  const NodeId src = 0, dst = net.mesh().node({5, 0});
  establish(net, src, dst, id);
  warm_circuit(net, src, dst, id);
  // Every intermediate node on the row-0 path observed the connection.
  for (int x = 1; x <= 4; ++x) {
    const auto& dlt = net.hybrid_ni(net.mesh().node({x, 0})).dlt();
    const auto e = dlt.find(dst);
    ASSERT_TRUE(e.has_value()) << "no DLT entry at column " << x;
    EXPECT_EQ(e->in, Port::West);
    EXPECT_EQ(e->out, Port::East);
  }
  // Endpoints do not hitchhike their own path.
  EXPECT_FALSE(net.hybrid_ni(src).dlt().find(dst).has_value());
  drain(net);
}

TEST(PathSharing, HitchhikerRidesExistingCircuit) {
  HybridNetwork net(sharing_cfg(true, false));
  PacketId id = 1;
  const NodeId src = 0, dst = net.mesh().node({5, 0});
  const NodeId hiker = net.mesh().node({2, 0});
  establish(net, src, dst, id);
  warm_circuit(net, src, dst, id);

  std::uint64_t delivered_cs = 0;
  net.set_deliver_handler([&](const PacketPtr& p, Cycle) {
    if (p->src == hiker && p->switching == Switching::Circuit) ++delivered_cs;
  });
  // The origin is quiet; the hiker's messages share the idle circuit.
  for (int i = 0; i < 30; ++i) {
    net.ni(hiker).send(make_data(id++, hiker, dst), net.now());
    for (int t = 0; t < 40; ++t) net.tick();
  }
  EXPECT_GT(net.hybrid_ni(hiker).hitchhike_packets(), 0u);
  EXPECT_GT(delivered_cs, 10u);
  // Sharing did not require a new setup from the hiker.
  EXPECT_EQ(net.hybrid_ni(hiker).setups_sent(), 0u);
  drain(net);
}

TEST(PathSharing, ContentionBouncesToPacketSwitched) {
  HybridNetwork net(sharing_cfg(true, false));
  PacketId id = 1;
  const NodeId src = 0, dst = net.mesh().node({5, 0});
  const NodeId hiker = net.mesh().node({2, 0});
  establish(net, src, dst, id);

  std::map<PacketId, bool> outstanding;
  net.set_deliver_handler([&](const PacketPtr& p, Cycle) {
    outstanding.erase(p->payload);
  });
  // The origin saturates its circuit (a packet every few cycles occupies
  // every slot occurrence); the hiker keeps trying and must bounce.
  std::uint64_t key = 1;
  for (int cycle = 0; cycle < 6000; ++cycle) {
    if (cycle % 4 == 0) {
      auto p = make_data(id++, src, dst);
      p->payload = key;
      outstanding[key++] = true;
      net.ni(src).send(p, net.now());
    }
    if (cycle % 16 == 0) {
      auto p = make_data(id++, hiker, dst);
      p->payload = key;
      outstanding[key++] = true;
      net.ni(hiker).send(p, net.now());
    }
    net.tick();
  }
  drain(net);
  // Contention occurred, yet nothing was lost: bounced messages were
  // re-sent packet-switched (Section III-A1).
  EXPECT_GT(net.total_hitchhike_bounces(), 0u);
  EXPECT_TRUE(outstanding.empty());
}

TEST(PathSharing, SaturatedCounterEscalatesToDedicatedPath) {
  HybridNetwork net(sharing_cfg(true, false));
  PacketId id = 1;
  const NodeId src = 0, dst = net.mesh().node({5, 0});
  const NodeId hiker = net.mesh().node({2, 0});
  establish(net, src, dst, id);
  // Saturate the origin's circuit so the hiker's sharing keeps failing.
  for (int cycle = 0; cycle < 20000; ++cycle) {
    if (cycle % 4 == 0) net.ni(src).send(make_data(id++, src, dst), net.now());
    if (cycle % 40 == 0) net.ni(hiker).send(make_data(id++, hiker, dst), net.now());
    net.tick();
    if (net.hybrid_ni(hiker).has_connection(dst)) break;
  }
  // After two consecutive failures ('10') the hiker requested its own path.
  EXPECT_GE(net.total_hitchhike_bounces(), 2u);
  EXPECT_GE(net.hybrid_ni(hiker).setups_sent(), 1u);
  drain(net);
}

TEST(PathSharing, VicinityHopsOffAtNeighbor) {
  HybridNetwork net(sharing_cfg(false, true));
  PacketId id = 1;
  const NodeId src = 0;
  const NodeId conn_dst = net.mesh().node({5, 0});
  const NodeId vic_dst = net.mesh().node({5, 1});  // adjacent to conn_dst
  establish(net, src, conn_dst, id);

  std::uint64_t delivered_at_final = 0;
  net.set_deliver_handler([&](const PacketPtr& p, Cycle) {
    if (p->final_dst == vic_dst && p->dst == vic_dst) ++delivered_at_final;
  });
  for (int i = 0; i < 25; ++i) {
    net.ni(src).send(make_data(id++, src, vic_dst), net.now());
    for (int t = 0; t < 60; ++t) net.tick();
  }
  EXPECT_GT(net.hybrid_ni(src).vicinity_packets(), 0u);
  EXPECT_GT(net.hybrid_ni(conn_dst).vicinity_hopoffs(), 0u);
  EXPECT_GT(delivered_at_final, 10u);
  drain(net);
}

TEST(PathSharing, VicinityReservationsUseFiveSlots) {
  // Table I: a circuit-switched packet takes 5 flits (one extra header slot)
  // when vicinity-sharing is applied.
  NocConfig cfg = sharing_cfg(false, true);
  EXPECT_EQ(cfg.reservation_duration(), 5);
  HybridNetwork net(cfg);
  PacketId id = 1;
  const NodeId src = 0, dst = net.mesh().node({5, 0});
  establish(net, src, dst, id);
  // Source router holds exactly one 5-slot reservation on the local input.
  int local_valid = 0;
  for (int s = 0; s < 16; ++s) {
    if (net.hybrid_router(src).slots().lookup_slot(s, Port::Local)) ++local_valid;
  }
  EXPECT_EQ(local_valid, 5);
  drain(net);
}

TEST(PathSharing, CombinedHitchhikeAndVicinity) {
  HybridNetwork net(sharing_cfg(true, true));
  PacketId id = 1;
  const NodeId src = 0;
  const NodeId conn_dst = net.mesh().node({5, 0});
  const NodeId hiker = net.mesh().node({2, 0});
  const NodeId vic_dst = net.mesh().node({5, 1});
  establish(net, src, conn_dst, id);
  warm_circuit(net, src, conn_dst, id);

  std::uint64_t delivered = 0;
  net.set_deliver_handler([&](const PacketPtr& p, Cycle) {
    if (p->src != src && p->final_dst == vic_dst) ++delivered;
  });
  // The hiker hops on at (2,0) and its messages hop off at (5,0) for (5,1).
  for (int i = 0; i < 25; ++i) {
    net.ni(hiker).send(make_data(id++, hiker, vic_dst), net.now());
    for (int t = 0; t < 60; ++t) net.tick();
  }
  EXPECT_GT(net.hybrid_ni(hiker).hitchhike_packets(), 0u);
  EXPECT_GT(net.hybrid_ni(hiker).vicinity_packets(), 0u);
  EXPECT_GT(delivered, 10u);
  drain(net);
}

TEST(PathSharing, ConservationWithAllSharingUnderRandomLoad) {
  NocConfig cfg = sharing_cfg(true, true);
  HybridNetwork net(cfg);
  Rng rng(17);
  PacketId id = 1;
  std::uint64_t injected = 0, delivered = 0;
  net.set_deliver_handler([&](const PacketPtr&, Cycle) { ++delivered; });
  // Skewed traffic (a few hot columns) to exercise sharing heavily.
  for (int cycle = 0; cycle < 12000; ++cycle) {
    for (NodeId s = 0; s < net.num_nodes(); ++s) {
      if (!rng.bernoulli(0.02)) continue;
      const int dx = rng.bernoulli(0.7) ? 5 : static_cast<int>(rng.uniform_int(6));
      const NodeId d = net.mesh().node({dx, static_cast<int>(rng.uniform_int(6))});
      if (d == s) continue;
      net.ni(s).send(make_data(id++, s, d), net.now());
      ++injected;
    }
    net.tick();
  }
  drain(net, 60000);
  EXPECT_EQ(delivered, injected);
}

TEST(PathSharing, DltEnergyIsAccounted) {
  HybridNetwork net(sharing_cfg(true, true));
  PacketId id = 1;
  establish(net, 0, net.mesh().node({5, 0}), id);
  const auto e = net.total_energy();
  EXPECT_GT(e.dlt_active_cycles, 0u);
  EXPECT_GT(e.dlt_accesses, 0u);
  drain(net);
}

}  // namespace
}  // namespace hybridnoc
