// Long seeded config-fault storm (ctest label: storm).
//
// A deliberately heavier, longer soak than the tier-1 fault tests: 30k
// cycles of bursty multi-pair traffic on a 6x6 mesh with drops, delays and
// duplicates all enabled and three dynamic slot-table resizes racing the
// protocol. Meant to be run under the sanitizer build
// (`cmake -B build-asan -S . -DHN_SANITIZE=address;undefined` then
// `ctest -L storm`) where the extra wall-clock buys real coverage; it also
// runs in the default suite, sized to stay a few seconds there.
//
// Checks the full contract in one pass: the storm recovers (no broken or
// orphaned reservations survive the lease), the recorded fault trace
// replays bit-identically with no RNG, and the network-wide reservation
// audit holds after every replayed config event.
#include <gtest/gtest.h>

#include <cstdlib>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "tdm/fault_trace.hpp"

namespace hybridnoc {
namespace {

FaultScenario make_long_storm(std::uint64_t seed) {
  FaultScenario s;
  s.k = 6;
  s.run_cycles = 30000;
  s.cooldown_cycles = 6000;
  s.resizes = {5000, 14000, 23000};
  s.dynamic_slot_sizing = true;
  s.fault_params.drop_prob = 0.03;
  s.fault_params.delay_prob = 0.05;
  s.fault_params.dup_prob = 0.03;
  s.fault_params.max_delay_cycles = 96;
  s.fault_params.seed = seed;
  Rng rng(seed * 1000003 + 11);
  const NodeId nodes = static_cast<NodeId>(s.k * s.k);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  while (pairs.size() < 8) {
    const NodeId a = static_cast<NodeId>(rng.uniform_int(nodes));
    const NodeId b = static_cast<NodeId>(rng.uniform_int(nodes));
    const int hops = std::abs(a % s.k - b % s.k) + std::abs(a / s.k - b / s.k);
    if (hops < s.k / 2 + 1) continue;
    pairs.emplace_back(a, b);
  }
  for (Cycle cy = 0; cy < s.run_cycles + s.cooldown_cycles; ++cy) {
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if (((cy >> 9) + i) % 3 != 0) continue;
      if (rng.bernoulli(0.25)) {
        s.traffic.push_back({cy, pairs[i].first, pairs[i].second, 5});
      }
    }
  }
  return s;
}

TEST(FaultStormLong, SurvivesRecoversAndReplaysDeterministically) {
  FaultScenario s = make_long_storm(/*seed=*/7);
  const ScenarioOutcome rec =
      run_fault_scenario(s, ScenarioMode::Record, false, &s.faults);

  // The storm actually exercised the harness.
  ASSERT_GT(s.faults.records.size(), 100u);
  ASSERT_GT(s.faults.active_faults(), 10u);
  EXPECT_GT(rec.faults_dropped + rec.faults_delayed + rec.faults_duplicated,
            10u);

  // Recovery: whatever the storm broke, timeouts and the reservation lease
  // cleaned up — the final state is pristine.
  EXPECT_TRUE(rec.quiesced);
  EXPECT_EQ(rec.broken_windows, 0);
  EXPECT_EQ(rec.orphan_entries, 0);
  EXPECT_EQ(rec.valid_slot_entries, 0);
  EXPECT_EQ(rec.active_connections, 0);
  EXPECT_EQ(rec.config_in_flight, 0u);

  // Determinism: the recorded decision sequence replays without RNG to the
  // same counters, recovery path and final slot-table digest, and the
  // per-event reservation audit never sees a broken window.
  const ScenarioOutcome rep =
      run_fault_scenario(s, ScenarioMode::Replay, /*audit_each_event=*/true);
  EXPECT_EQ(rep.replay_applied, s.faults.records.size());
  EXPECT_EQ(rep.faults_dropped, rec.faults_dropped);
  EXPECT_EQ(rep.faults_delayed, rec.faults_delayed);
  EXPECT_EQ(rep.faults_duplicated, rec.faults_duplicated);
  EXPECT_EQ(rep.stale_config_drops, rec.stale_config_drops);
  EXPECT_EQ(rep.pending_timeouts, rec.pending_timeouts);
  EXPECT_EQ(rep.expired_reservations, rec.expired_reservations);
  EXPECT_EQ(rep.setup_failures, rec.setup_failures);
  EXPECT_EQ(rep.slot_state_digest, rec.slot_state_digest);
  EXPECT_TRUE(rep.quiesced);
  EXPECT_EQ(rep.replay_audit_failures, 0u);
}

}  // namespace
}  // namespace hybridnoc
