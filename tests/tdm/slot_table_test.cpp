#include "tdm/slot_table.hpp"

#include <gtest/gtest.h>

namespace hybridnoc {
namespace {

// Figure 1 of the paper, played back literally. The figure's in_1/in_2 map to
// West/North and out_3/out_4 to South/East; the table has 4 slots s0..s3.
TEST(SlotTable, Figure1Scenario) {
  SlotTable t(4, 4);

  // setup1: in_1 -> out_4, starting slot s3, duration 2. Succeeds; with
  // modulo-S reservation both s3 and s0 are taken.
  EXPECT_TRUE(t.reserve(3, 2, Port::West, Port::East));
  EXPECT_EQ(t.lookup_slot(3, Port::West), Port::East);
  EXPECT_EQ(t.lookup_slot(0, Port::West), Port::East);  // wrapped
  EXPECT_EQ(t.lookup_slot(1, Port::West), std::nullopt);
  EXPECT_EQ(t.lookup_slot(2, Port::West), std::nullopt);

  // setup2: in_1 -> out_3 at s3 fails — the slot is already allocated for
  // this input. Tables remain unchanged.
  EXPECT_FALSE(t.reserve(3, 1, Port::West, Port::South));
  EXPECT_EQ(t.lookup_slot(3, Port::West), Port::East);
  EXPECT_EQ(t.valid_entries(), 2);

  // setup3: in_2 -> out_4 at s3 fails — out_4 is reserved for in_1 at s3
  // (conflict at the output port).
  EXPECT_FALSE(t.reserve(3, 1, Port::North, Port::East));
  EXPECT_EQ(t.lookup_slot(3, Port::North), std::nullopt);
  EXPECT_EQ(t.valid_entries(), 2);

  // Teardown resets the valid bits so the slots can be reused.
  EXPECT_TRUE(t.release(3, 2, Port::West).has_value());
  EXPECT_EQ(t.valid_entries(), 0);
  EXPECT_TRUE(t.reserve(3, 1, Port::North, Port::East));
}

TEST(SlotTable, NonConflictingReservationsCoexist) {
  SlotTable t(8, 8);
  EXPECT_TRUE(t.reserve(0, 4, Port::West, Port::East));
  // Same slots, different input AND different output: fine.
  EXPECT_TRUE(t.reserve(0, 4, Port::North, Port::South));
  // Same output at disjoint slots: fine.
  EXPECT_TRUE(t.reserve(4, 4, Port::North, Port::East));
  EXPECT_EQ(t.valid_entries(), 12);
}

TEST(SlotTable, LookupByCycleUsesModuloActive) {
  SlotTable t(8, 8);
  ASSERT_TRUE(t.reserve(3, 1, Port::Local, Port::East));
  EXPECT_EQ(t.lookup(3, Port::Local), Port::East);
  EXPECT_EQ(t.lookup(11, Port::Local), Port::East);
  EXPECT_EQ(t.lookup(8 * 1000 + 3, Port::Local), Port::East);
  EXPECT_EQ(t.lookup(4, Port::Local), std::nullopt);
}

TEST(SlotTable, OutputReservedAtFindsOwner) {
  SlotTable t(8, 8);
  ASSERT_TRUE(t.reserve(2, 2, Port::West, Port::East));
  EXPECT_EQ(t.output_reserved_at(2, Port::East), Port::West);
  EXPECT_EQ(t.output_reserved_at(10, Port::East), Port::West);
  EXPECT_EQ(t.output_reserved_at(4, Port::East), std::nullopt);
  EXPECT_EQ(t.output_reserved_at(2, Port::South), std::nullopt);
}

TEST(SlotTable, OccupancyFraction) {
  SlotTable t(8, 8);
  EXPECT_DOUBLE_EQ(t.occupancy(), 0.0);
  ASSERT_TRUE(t.reserve(0, 4, Port::West, Port::East));
  EXPECT_DOUBLE_EQ(t.occupancy(), 4.0 / (8.0 * kNumPorts));
}

TEST(SlotTable, InputFreePreCheck) {
  SlotTable t(8, 8);
  ASSERT_TRUE(t.reserve(2, 2, Port::Local, Port::East));
  EXPECT_FALSE(t.input_free(2, 1, Port::Local));
  EXPECT_FALSE(t.input_free(1, 2, Port::Local));  // covers slot 2
  EXPECT_TRUE(t.input_free(4, 4, Port::Local));
  EXPECT_TRUE(t.input_free(2, 2, Port::West));  // other input unaffected
}

TEST(SlotTable, ReleaseIsIdempotentAndPartial) {
  SlotTable t(8, 8);
  ASSERT_TRUE(t.reserve(0, 4, Port::West, Port::East));
  EXPECT_EQ(t.release(0, 4, Port::West), Port::East);
  EXPECT_EQ(t.release(0, 4, Port::West), std::nullopt);  // nothing left
  EXPECT_EQ(t.valid_entries(), 0);
}

TEST(SlotTable, ActiveRegionGrowsAndResets) {
  SlotTable t(128, 16);
  EXPECT_EQ(t.active_size(), 16);
  ASSERT_TRUE(t.reserve(5, 4, Port::West, Port::East));
  EXPECT_TRUE(t.grow());
  EXPECT_EQ(t.active_size(), 32);
  EXPECT_EQ(t.valid_entries(), 0);  // reset on resize (Section II-C)
  // Slots beyond the old region are now addressable.
  EXPECT_TRUE(t.reserve(30, 2, Port::West, Port::East));
}

TEST(SlotTable, GrowSaturatesAtCapacity) {
  SlotTable t(32, 16);
  EXPECT_TRUE(t.grow());
  EXPECT_FALSE(t.grow());
  EXPECT_EQ(t.active_size(), 32);
}

TEST(SlotTable, WrapAroundDurationAtActiveBoundary) {
  SlotTable t(128, 16);  // active 16: slot 14 + duration 4 covers 14,15,0,1
  ASSERT_TRUE(t.reserve(14, 4, Port::Local, Port::East));
  EXPECT_EQ(t.lookup_slot(15, Port::Local), Port::East);
  EXPECT_EQ(t.lookup_slot(0, Port::Local), Port::East);
  EXPECT_EQ(t.lookup_slot(1, Port::Local), Port::East);
  EXPECT_EQ(t.lookup_slot(2, Port::Local), std::nullopt);
  // Cycle 16 maps to slot 0 in the active region.
  EXPECT_EQ(t.lookup(16, Port::Local), Port::East);
}

TEST(SlotTable, OwnerFencesRelease) {
  SlotTable t(16, 16);
  ASSERT_TRUE(t.reserve(4, 2, Port::West, Port::East, /*owner=*/7));
  EXPECT_EQ(t.owner_at(4, Port::West), PacketId{7});
  // A teardown tagged with a different setup id must not touch the entries.
  EXPECT_EQ(t.release(4, 2, Port::West, /*owner=*/9), std::nullopt);
  EXPECT_EQ(t.valid_entries(), 2);
  // The owning teardown releases them and reports the output port.
  EXPECT_EQ(t.release(4, 2, Port::West, /*owner=*/7), Port::East);
  EXPECT_EQ(t.valid_entries(), 0);
}

TEST(SlotTable, UntaggedReleaseIgnoresOwners) {
  SlotTable t(16, 16);
  ASSERT_TRUE(t.reserve(0, 2, Port::North, Port::South, /*owner=*/5));
  // owner 0 = untagged release (legacy callers): releases regardless.
  EXPECT_EQ(t.release(0, 2, Port::North), Port::South);
  EXPECT_EQ(t.valid_entries(), 0);
}

TEST(SlotTable, LeaseExpiryReclaimsStaleEntriesOnly) {
  SlotTable t(16, 16);
  ASSERT_TRUE(t.reserve(0, 2, Port::West, Port::East, 1, /*now=*/100));
  ASSERT_TRUE(t.reserve(8, 2, Port::North, Port::South, 2, /*now=*/100));
  // Circuit traffic keeps the second window fresh.
  t.refresh(8, 2, Port::North, /*now=*/900);
  int expired_slots = 0;
  const int n = t.expire_older_than(/*cutoff=*/500,
                                    [&](int, Port) { ++expired_slots; });
  EXPECT_EQ(n, 2);
  EXPECT_EQ(expired_slots, 2);
  EXPECT_EQ(t.lookup_slot(0, Port::West), std::nullopt);
  EXPECT_EQ(t.lookup_slot(8, Port::North), Port::South);
  EXPECT_EQ(t.valid_entries(), 2);
}

TEST(SlotTableDeathTest, DurationBeyondActiveSizeRejected) {
  SlotTable t(8, 8);
  EXPECT_DEATH((void)t.can_reserve(0, 9, Port::West, Port::East), "HN_CHECK");
}

}  // namespace
}  // namespace hybridnoc
