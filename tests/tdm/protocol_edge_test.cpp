// Edge cases of the path-configuration endpoints: retry exhaustion and
// cooldown, supplementary windows (time-division granularity), occupancy
// breadth-over-depth gating, and multi-window teardown accounting.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tdm/hybrid_network.hpp"

namespace hybridnoc {
namespace {

PacketPtr make_data(PacketId id, NodeId src, NodeId dst) {
  auto p = std::make_shared<Packet>();
  p->id = id;
  p->src = src;
  p->dst = dst;
  p->num_flits = 5;
  return p;
}

NocConfig cfg_small() {
  NocConfig c = NocConfig::hybrid_tdm_vc4(6);
  c.slot_table_size = 16;
  c.path_freq_threshold = 4;
  c.policy_epoch_cycles = 512;
  return c;
}

TEST(ProtocolEdge, SupplementaryWindowsGrowWithDemand) {
  NocConfig cfg = cfg_small();
  cfg.slot_table_size = 64;
  cfg.max_windows_per_pair = 6;
  HybridNetwork net(cfg);
  const NodeId src = 0, dst = net.mesh().node({5, 0});
  PacketId id = 1;
  // Demand far beyond one window's bandwidth (4 flits per 64 cycles).
  // Slack-tolerant messages (like GPU data) accept any slot wait, so the
  // windows fill up and the source requests supplements.
  for (int cycle = 0; cycle < 30000; ++cycle) {
    if (cycle % 6 == 0) {
      auto p = make_data(id++, src, dst);
      p->slack = 4096;
      net.ni(src).send(std::move(p), net.now());
    }
    net.tick();
  }
  ASSERT_TRUE(net.hybrid_ni(src).has_connection(dst));
  // Multiple windows == more local-input slot reservations than one
  // duration's worth.
  int local_valid = 0;
  for (int s = 0; s < 64; ++s) {
    if (net.hybrid_router(src).slots().lookup_slot(s, Port::Local)) ++local_valid;
  }
  EXPECT_GT(local_valid, cfg.reservation_duration());
  EXPECT_LE(local_valid, cfg.max_windows_per_pair * cfg.reservation_duration());
  EXPECT_GE(net.hybrid_ni(src).setups_sent(), 2u);
}

TEST(ProtocolEdge, WindowCountRespectsCap) {
  NocConfig cfg = cfg_small();
  cfg.slot_table_size = 128;
  cfg.initial_active_slots = 16;
  cfg.max_windows_per_pair = 2;
  HybridNetwork net(cfg);
  const NodeId src = 0, dst = net.mesh().node({5, 0});
  PacketId id = 1;
  for (int cycle = 0; cycle < 30000; ++cycle) {
    if (cycle % 4 == 0) net.ni(src).send(make_data(id++, src, dst), net.now());
    net.tick();
  }
  int local_valid = 0;
  for (int s = 0; s < 128; ++s) {
    if (net.hybrid_router(src).slots().lookup_slot(s, Port::Local)) ++local_valid;
  }
  EXPECT_LE(local_valid, 2 * cfg.reservation_duration());
}

TEST(ProtocolEdge, RetryExhaustionBacksOffWithCooldown) {
  // An 8-slot table with 4-slot reservations holds two windows per output;
  // a third pair through the same links must fail, retry max_setup_retries
  // times, then go quiet (cooldown) instead of spamming setups forever.
  NocConfig cfg = cfg_small();
  cfg.slot_table_size = 8;
  cfg.initial_active_slots = 8;
  cfg.max_setup_retries = 2;
  cfg.max_windows_per_pair = 1;
  HybridNetwork net(cfg);
  PacketId id = 1;
  const NodeId dst = net.mesh().node({5, 2});
  // Six sources converge on one node; only a couple of circuits fit the
  // final links.
  for (int cycle = 0; cycle < 40000; ++cycle) {
    for (int y = 0; y < 6; ++y) {
      if (cycle % 24 == y) {
        const NodeId s = net.mesh().node({0, y});
        net.ni(s).send(make_data(id++, s, dst), net.now());
      }
    }
    net.tick();
  }
  EXPECT_GT(net.total_setup_failures(), 0u);
  // Setup traffic stays bounded: every failed attempt costs at most
  // (1 + retries) setups per cooldown period per source.
  const double setups_per_kcycle =
      static_cast<double>(net.total_setups_sent()) / 40.0;
  EXPECT_LT(setups_per_kcycle, 10.0);
  net.set_policy_frozen(true);
  for (int i = 0; i < 30000 && !net.quiescent(); ++i) net.tick();
  EXPECT_TRUE(net.quiescent());
}

TEST(ProtocolEdge, MultiWindowTeardownFreesEverySlot) {
  NocConfig cfg = cfg_small();
  cfg.slot_table_size = 64;
  cfg.path_idle_timeout = 2048;
  cfg.max_windows_per_pair = 4;
  HybridNetwork net(cfg);
  const NodeId src = 0, dst = net.mesh().node({5, 0});
  PacketId id = 1;
  for (int cycle = 0; cycle < 15000; ++cycle) {
    if (cycle % 6 == 0) net.ni(src).send(make_data(id++, src, dst), net.now());
    net.tick();
  }
  int reserved = 0;
  for (NodeId n = 0; n < net.num_nodes(); ++n)
    reserved += net.hybrid_router(n).slots().valid_entries();
  ASSERT_GT(reserved, 0);
  // Silence beyond the idle timeout: every window of every connection must
  // be released, across all routers.
  for (int i = 0; i < 15000; ++i) net.tick();
  int after = 0;
  for (NodeId n = 0; n < net.num_nodes(); ++n)
    after += net.hybrid_router(n).slots().valid_entries();
  EXPECT_EQ(after, 0);
  EXPECT_EQ(net.controller().config_in_flight(), 0u);
  EXPECT_EQ(net.total_active_connections(), 0);
}

TEST(ProtocolEdge, FrozenPolicySendsNoSetups) {
  HybridNetwork net(cfg_small());
  net.set_policy_frozen(true);
  PacketId id = 1;
  const NodeId src = 0, dst = net.mesh().node({5, 0});
  for (int cycle = 0; cycle < 5000; ++cycle) {
    if (cycle % 10 == 0) net.ni(src).send(make_data(id++, src, dst), net.now());
    net.tick();
  }
  EXPECT_EQ(net.total_setups_sent(), 0u);
  EXPECT_EQ(net.total_cs_packets(), 0u);
  // Traffic still flows packet-switched.
  EXPECT_GT(net.total_data_delivered(), 400u);
}

TEST(ProtocolEdge, ReservationThresholdLeavesPacketHeadroom) {
  // Even under extreme circuit demand, no router's table exceeds the 90%
  // starvation threshold (Section II-B).
  NocConfig cfg = cfg_small();
  cfg.slot_table_size = 16;
  cfg.max_windows_per_pair = 12;
  HybridNetwork net(cfg);
  Rng rng(3);
  PacketId id = 1;
  for (int cycle = 0; cycle < 30000; ++cycle) {
    for (NodeId s = 0; s < net.num_nodes(); ++s) {
      if (rng.bernoulli(0.04)) {
        const NodeId d = static_cast<NodeId>(
            rng.uniform_int(static_cast<std::uint64_t>(net.num_nodes())));
        if (d != s) net.ni(s).send(make_data(id++, s, d), net.now());
      }
    }
    net.tick();
  }
  for (NodeId n = 0; n < net.num_nodes(); ++n) {
    EXPECT_LE(net.hybrid_router(n).slots().occupancy(), 0.92) << "router " << n;
  }
  net.set_policy_frozen(true);
  for (int i = 0; i < 60000 && !net.quiescent(); ++i) net.tick();
  EXPECT_TRUE(net.quiescent());
}

}  // namespace
}  // namespace hybridnoc
