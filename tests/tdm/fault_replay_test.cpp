// Deterministic replay of shrunk config-fault regression fixtures, plus the
// fault-trace subsystem itself: serialization round-trips, record/replay
// composition on a live network, and the ddmin shrinker.
//
// The two fixtures under tests/tdm/fixtures/ were produced by recording a
// seeded 10k-cycle storm with tools/shrink_fault_trace and delta-debugging
// it down to a single fault decision each:
//  * resize_race.scenario — one setup DELAYED so it straddles the dynamic
//    slot-table resize at cycle 3000 and is discarded by the generation
//    fence (invariant violated: no-stale-config-drops).
//  * lost_teardown.scenario — one teardown DROPPED, orphaning its
//    reservations until the router lease reclaims them (invariant
//    violated: no-expired-reservations).
// Each replay must still reproduce its violation, keep every installed
// window walkable after every config event, and converge to a clean state.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "tdm/fault_trace.hpp"
#include "tdm/hybrid_network.hpp"

namespace hybridnoc {
namespace {

std::string fixture_path(const std::string& name) {
  return std::string(HN_FIXTURE_DIR) + "/" + name;
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

FaultTrace sample_trace() {
  FaultTrace t;
  t.records.push_back({12, 34, ConfigKind::Setup, 0, 23, 0, FaultAction::Drop, 0});
  t.records.push_back({40, 35, ConfigKind::AckSuccess, 23, 0, 1, FaultAction::Delay, 17});
  t.records.push_back({41, 36, ConfigKind::Teardown, 5, 7, 2, FaultAction::Duplicate, 0});
  t.records.push_back({99, 37, ConfigKind::Setup, 1, 2, 0, FaultAction::None, 0});
  return t;
}

TEST(FaultTrace, SaveLoadRoundTrip) {
  const FaultTrace orig = sample_trace();
  std::stringstream buf;
  save_fault_trace(buf, orig);
  EXPECT_EQ(load_fault_trace(buf), orig);
  EXPECT_EQ(orig.active_faults(), 3u);
}

TEST(FaultTrace, ParseWriteParseEquality) {
  std::istringstream in(
      "hybridnoc-fault-trace v1\n"
      "# comment\n"
      "12 34 setup 0 23 0 drop 0\n"
      "\n"
      "40 35 ack+ 23 0 1 delay 17  # trailing comment\n");
  const FaultTrace first = load_fault_trace(in);
  ASSERT_EQ(first.records.size(), 2u);
  std::stringstream buf;
  save_fault_trace(buf, first);
  EXPECT_EQ(load_fault_trace(buf), first);
}

TEST(FaultTraceDeathTest, RejectsMalformedAndUnversioned) {
  std::istringstream bad_header("not-a-trace v1\n");
  EXPECT_DEATH((void)load_fault_trace(bad_header), "header");
  std::istringstream bad_version("hybridnoc-fault-trace v99\n");
  EXPECT_DEATH((void)load_fault_trace(bad_version), "version");
  std::istringstream truncated(
      "hybridnoc-fault-trace v1\n"
      "12 34 setup 0 23\n");
  EXPECT_DEATH((void)load_fault_trace(truncated), "malformed");
  std::istringstream bad_kind(
      "hybridnoc-fault-trace v1\n"
      "12 34 warble 0 23 0 drop 0\n");
  EXPECT_DEATH((void)load_fault_trace(bad_kind), "kind");
  std::istringstream bad_action(
      "hybridnoc-fault-trace v1\n"
      "12 34 setup 0 23 0 explode 0\n");
  EXPECT_DEATH((void)load_fault_trace(bad_action), "action");
}

TEST(FaultScenario, SaveLoadRoundTrip) {
  FaultScenario s;
  s.k = 4;
  s.slot_table_size = 32;
  s.dynamic_slot_sizing = true;
  s.initial_active_slots = 8;
  s.run_cycles = 5000;
  s.cooldown_cycles = 1000;
  s.resizes = {1200, 3400};
  s.fault_params.drop_prob = 0.125;
  s.fault_params.seed = 42;
  s.invariant = "no-pending-timeouts";
  s.traffic = {{0, 1, 14, 5}, {7, 2, 13, 5}, {7, 1, 14, 4}};
  s.faults = sample_trace();

  std::stringstream buf;
  save_fault_scenario(buf, s);
  const FaultScenario r = load_fault_scenario(buf);
  EXPECT_EQ(r.k, s.k);
  EXPECT_EQ(r.slot_table_size, s.slot_table_size);
  EXPECT_EQ(r.dynamic_slot_sizing, s.dynamic_slot_sizing);
  EXPECT_EQ(r.initial_active_slots, s.initial_active_slots);
  EXPECT_EQ(r.run_cycles, s.run_cycles);
  EXPECT_EQ(r.cooldown_cycles, s.cooldown_cycles);
  EXPECT_EQ(r.resizes, s.resizes);
  EXPECT_DOUBLE_EQ(r.fault_params.drop_prob, s.fault_params.drop_prob);
  EXPECT_EQ(r.fault_params.seed, s.fault_params.seed);
  EXPECT_EQ(r.invariant, s.invariant);
  EXPECT_EQ(r.traffic, s.traffic);
  EXPECT_EQ(r.faults, s.faults);
}

TEST(FaultScenarioDeathTest, RejectsUnknownFieldAndMissingEnd) {
  std::istringstream unknown(
      "hybridnoc-fault-scenario v1\n"
      "warp_factor 9\n"
      "end\n");
  EXPECT_DEATH((void)load_fault_scenario(unknown), "unknown scenario field");
  std::istringstream no_end(
      "hybridnoc-fault-scenario v1\n"
      "k 4\n");
  EXPECT_DEATH((void)load_fault_scenario(no_end), "end marker");
}

// ---------------------------------------------------------------------------
// Record/replay on a live network
// ---------------------------------------------------------------------------

// Counter-reset satellite: two enable_config_faults runs on one network must
// not accumulate stale fault counts.
TEST(FaultReplay, EnableConfigFaultsResetsCounters) {
  NocConfig cfg = NocConfig::hybrid_tdm_vc4(4);
  cfg.path_freq_threshold = 2;
  cfg.policy_epoch_cycles = 128;
  HybridNetwork net(cfg);
  ConfigFaultParams faults;
  faults.dup_prob = 1.0;
  net.enable_config_faults(faults);
  PacketId id = 1;
  for (int cycle = 0; cycle < 600; ++cycle) {
    if (cycle % 4 == 0) {
      auto p = std::make_shared<Packet>();
      p->id = id++;
      p->src = 0;
      p->dst = 15;
      p->num_flits = 5;
      net.ni(0).send(std::move(p), net.now());
    }
    net.tick();
  }
  const std::uint64_t first = net.faults_duplicated();
  ASSERT_GT(first, 0u);
  net.enable_config_faults(faults);  // re-arm: counters restart from zero
  EXPECT_EQ(net.faults_duplicated(), 0u);
  EXPECT_EQ(net.faults_dropped(), 0u);
  EXPECT_EQ(net.faults_delayed(), 0u);
}

// Recording with no faults enabled captures the protocol's dispatch
// sequence as all-None records, keyed by per-(kind,src,dst) occurrence.
TEST(FaultReplay, RecordingCapturesDispatchSequence) {
  NocConfig cfg = NocConfig::hybrid_tdm_vc4(4);
  cfg.path_freq_threshold = 2;
  cfg.policy_epoch_cycles = 128;
  HybridNetwork net(cfg);
  net.start_fault_trace_recording();
  PacketId id = 1;
  for (int cycle = 0; cycle < 400; ++cycle) {
    if (cycle % 4 == 0) {
      auto p = std::make_shared<Packet>();
      p->id = id++;
      p->src = 0;
      p->dst = 15;
      p->num_flits = 5;
      net.ni(0).send(std::move(p), net.now());
    }
    net.tick();
  }
  net.stop_fault_trace_recording();
  const FaultTrace& t = net.recorded_fault_trace();
  ASSERT_GE(t.records.size(), 2u);  // at least the setup and its ack
  EXPECT_EQ(t.active_faults(), 0u);
  EXPECT_EQ(t.records[0].kind, ConfigKind::Setup);
  EXPECT_EQ(t.records[0].src, 0);
  EXPECT_EQ(t.records[0].dst, 15);
  EXPECT_EQ(t.records[0].occurrence, 0);
  EXPECT_GT(t.records[0].cycle, 0u);
  // The success ack comes back from the destination.
  const auto ack = std::find_if(
      t.records.begin(), t.records.end(),
      [](const FaultRecord& r) { return r.kind == ConfigKind::AckSuccess; });
  ASSERT_NE(ack, t.records.end());
  EXPECT_EQ(ack->src, 15);
  EXPECT_EQ(ack->dst, 0);
  EXPECT_EQ(ack->occurrence, 0);
}

// ---------------------------------------------------------------------------
// Shrunk regression fixtures
// ---------------------------------------------------------------------------

struct FixtureCase {
  const char* file;
  const char* invariant;
};

class FaultFixture : public testing::TestWithParam<FixtureCase> {};

TEST_P(FaultFixture, ReplayReproducesViolationAndStaysAuditClean) {
  const FixtureCase& fc = GetParam();
  const FaultScenario s = read_fault_scenario_file(fixture_path(fc.file));
  ASSERT_EQ(s.invariant, fc.invariant);
  ASSERT_EQ(s.faults.active_faults(), s.faults.records.size())
      << "fixtures carry only the minimal fault subset";
  const ScenarioOutcome o =
      run_fault_scenario(s, ScenarioMode::Replay, /*audit_each_event=*/true);
  // The shrunk fault subset still lands on its protocol events. Hardware
  // records (Link/Router) are re-derived as physical faults rather than
  // applied to config dispatches, so only the config-plane records count
  // toward replay_applied.
  std::size_t config_faults = 0;
  for (const FaultRecord& r : s.faults.records) {
    if (r.kind != ConfigKind::Link && r.kind != ConfigKind::Router) {
      ++config_faults;
    }
  }
  EXPECT_EQ(o.replay_applied, config_faults);
  // ...and still reproduces the violation it was minimized for.
  EXPECT_TRUE(violates_invariant(s.invariant, o));
  // Every installed window stayed walkable after every config event — the
  // per-event reservation audit saw no broken windows anywhere in the run.
  EXPECT_EQ(o.replay_audit_failures, 0u);
  // The protocol recovered: the network converged to a clean final state.
  EXPECT_TRUE(o.quiesced);
  EXPECT_EQ(o.broken_windows, 0);
  EXPECT_EQ(o.orphan_entries, 0);
  EXPECT_EQ(o.valid_slot_entries, 0);
  EXPECT_EQ(o.active_connections, 0);
  EXPECT_EQ(o.config_in_flight, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ShrunkFixtures, FaultFixture,
    testing::Values(FixtureCase{"resize_race.scenario", "no-stale-config-drops"},
                    FixtureCase{"lost_teardown.scenario",
                                "no-expired-reservations"},
                    FixtureCase{"link_death_lease.scenario",
                                "no-fault-teardowns"}),
    [](const testing::TestParamInfo<FixtureCase>& info) {
      switch (info.index) {
        case 0: return "ResizeRace";
        case 1: return "LostTeardown";
        default: return "LinkDeathLease";
      }
    });

// The resize-race fixture's single fault is a DELAYED setup whose late
// arrival crosses the generation bump; the lost-teardown fixture's is a
// DROPPED teardown. Pin those shapes so a regenerated fixture that shrank
// differently is noticed.
TEST(FaultFixtureShape, MinimalFaultsAreTheExpectedKind) {
  const FaultScenario rr =
      read_fault_scenario_file(fixture_path("resize_race.scenario"));
  ASSERT_EQ(rr.faults.records.size(), 1u);
  EXPECT_EQ(rr.faults.records[0].kind, ConfigKind::Setup);
  EXPECT_EQ(rr.faults.records[0].action, FaultAction::Delay);
  ASSERT_FALSE(rr.resizes.empty());

  const FaultScenario lt =
      read_fault_scenario_file(fixture_path("lost_teardown.scenario"));
  ASSERT_EQ(lt.faults.records.size(), 1u);
  EXPECT_EQ(lt.faults.records[0].kind, ConfigKind::Teardown);
  EXPECT_EQ(lt.faults.records[0].action, FaultAction::Drop);

  // The link-death fixture's single fault is the hardware kill itself: a
  // circuit holding slot leases across link 7->South loses the link mid-lease
  // and must tear down and reclaim every per-hop reservation.
  const FaultScenario ld =
      read_fault_scenario_file(fixture_path("link_death_lease.scenario"));
  ASSERT_EQ(ld.faults.records.size(), 1u);
  EXPECT_EQ(ld.faults.records[0].kind, ConfigKind::Link);
  EXPECT_EQ(ld.faults.records[0].action, FaultAction::Kill);
  EXPECT_EQ(ld.faults.records[0].src, 7);
  EXPECT_EQ(ld.faults.records[0].dst, static_cast<int>(Port::South));
}

// ---------------------------------------------------------------------------
// Shrinker
// ---------------------------------------------------------------------------

// ddmin on a real scenario: pad the lost-teardown fixture with noise fault
// records (keys that never match a dispatch) and check the shrinker strips
// them all, keeping exactly the teardown drop.
TEST(FaultShrink, DdminReducesToTheSingleDecisiveFault) {
  FaultScenario s =
      read_fault_scenario_file(fixture_path("lost_teardown.scenario"));
  // The decisive drop fires at ~cycle 1536; a short storm keeps the search
  // fast while the lease tail still has room to fire.
  s.run_cycles = 2000;
  s.cooldown_cycles = 500;
  for (int i = 0; i < 5; ++i) {
    FaultRecord r;
    r.kind = ConfigKind::Setup;
    r.src = 30;
    r.dst = 1;
    r.occurrence = 50 + i;
    r.action = FaultAction::Drop;
    s.faults.records.push_back(r);
  }
  const ShrinkResult res =
      shrink_fault_scenario(s, "no-expired-reservations");
  EXPECT_EQ(res.original_faults, 6u);
  ASSERT_EQ(res.final_faults, 1u);
  EXPECT_EQ(res.minimized.faults.records[0].kind, ConfigKind::Teardown);
  EXPECT_EQ(res.minimized.faults.records[0].action, FaultAction::Drop);
  EXPECT_EQ(res.minimized.invariant, "no-expired-reservations");
  // The minimized scenario still fails on its own.
  const ScenarioOutcome o =
      run_fault_scenario(res.minimized, ScenarioMode::Replay);
  EXPECT_TRUE(violates_invariant("no-expired-reservations", o));
}

}  // namespace
}  // namespace hybridnoc
