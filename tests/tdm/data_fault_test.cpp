// Data-plane fault tolerance on the TDM hybrid network: circuit liveness
// (dead-link detection, teardown, re-establishment over a fault-aware
// route), lease reclaim of the stale per-hop reservations a dead link
// strands, setup-retry backoff with give-up accounting, the v2 fault-trace
// format carrying hardware faults, and bit-identity of zero-fault runs with
// the fault layer's hooks installed.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>

#include "common/config.hpp"
#include "noc/fault_model.hpp"
#include "tdm/fault_trace.hpp"
#include "tdm/hybrid_network.hpp"

namespace hybridnoc {
namespace {

NocConfig hybrid_fault_cfg() {
  NocConfig cfg = NocConfig::hybrid_tdm_vc4(4);
  cfg.slot_table_size = 32;
  cfg.initial_active_slots = 16;
  cfg.path_freq_threshold = 2;  // circuits form quickly at test scale
  cfg.policy_epoch_cycles = 128;
  // Idle retirement well inside the lease, so sources tear their own idle
  // circuits down (clean audit) before the routers' backstop reclaims them.
  cfg.path_idle_timeout = 1024;
  cfg.reservation_lease_cycles = 2048;
  return cfg;
}

void send_packet(HybridNetwork& net, PacketId id, NodeId src, NodeId dst,
                 int flits = 5) {
  auto p = std::make_shared<Packet>();
  p->id = id;
  p->src = src;
  p->dst = dst;
  p->num_flits = flits;
  net.ni(src).send(std::move(p), net.now());
}

/// Freeze proactive setup, drain every flit/ack, then run three reservation
/// leases so any stranded slot entries expire — the scenario runner's end
/// phase, inlined for direct-drive tests.
void settle(HybridNetwork& net) {
  net.set_policy_frozen(true);
  for (int i = 0; i < 200000 && !net.quiescent(); ++i) net.tick();
  ASSERT_TRUE(net.quiescent());
  const Cycle end = net.now() + 3 * net.cfg().reservation_lease_cycles;
  while (net.now() < end) net.tick();
}

// ---------------------------------------------------------------------------
// Transient storm over live circuits
// ---------------------------------------------------------------------------

TEST(HybridDataFault, BerStormDeliversEverythingAndSettlesClean) {
  NocConfig cfg = hybrid_fault_cfg();
  cfg.link_ber = 1e-3;
  cfg.fault_seed = 9;
  cfg.e2e_recovery = true;
  cfg.retx_timeout_cycles = 256;
  cfg.retx_backoff_cap_cycles = 2048;
  HybridNetwork net(cfg);
  // Three hot pairs so circuits form and keep carrying traffic through the
  // storm; corrupted CS flits exercise the missed-slot/liveness machinery.
  // Load stays light enough that delivery latency never approaches the
  // retransmit timeout: every retransmit below is loss-driven, not spurious.
  const NodeId pairs[][2] = {{0, 15}, {12, 3}, {5, 10}};
  PacketId id = 1;
  while (net.now() < 6000) {
    if (net.now() % 9 == 0) {
      for (const auto& pr : pairs) send_packet(net, id++, pr[0], pr[1]);
    }
    net.tick();
  }
  settle(net);

  const DegradationReport d = net.degradation_report();
  EXPECT_EQ(d.data_sent, static_cast<std::uint64_t>(id - 1));
  EXPECT_EQ(d.data_delivered, d.data_sent);  // the acceptance bar
  EXPECT_GT(d.crc_flagged_flits, 0u);
  EXPECT_GT(d.crc_squashed_packets, 0u);
  EXPECT_GT(d.retransmits, 0u);
  EXPECT_EQ(d.retx_give_ups, 0u);
  EXPECT_EQ(d.e2e_outstanding, 0u);
  EXPECT_GT(net.total_cs_packets(), 0u);  // circuits actually carried load
  const ReservationAudit audit = net.audit_reservations();
  EXPECT_TRUE(audit.clean());
  EXPECT_EQ(net.total_valid_slot_entries(), 0);
  EXPECT_EQ(net.total_active_connections(), 0);
}

// ---------------------------------------------------------------------------
// Dead link under an installed circuit
// ---------------------------------------------------------------------------

TEST(HybridDataFault, DeadLinkTearsDownCircuitReestablishesAndReclaims) {
  NocConfig cfg = hybrid_fault_cfg();
  cfg.e2e_recovery = true;
  cfg.retx_timeout_cycles = 256;
  cfg.retx_backoff_cap_cycles = 2048;
  cfg.cs_fail_threshold = 2;
  HybridNetwork net(cfg);
  // 3 -> 15 runs straight down the east column (3, 7, 11, 15); the circuit
  // has exactly one minimal path, so it must cross the link we will kill.
  net.ensure_fault_model().kill_link(7, Port::South, 2500);

  PacketId id = 1;
  std::uint64_t cs_at_kill = 0;
  std::uint64_t corrupted_settled = 0;
  while (net.now() < 9000) {
    if (net.now() == 2500) {
      // Non-vacuity: the circuit is up before the link dies.
      EXPECT_GE(net.total_active_connections(), 1);
      cs_at_kill = net.total_cs_packets();
      EXPECT_GT(cs_at_kill, 0u);
    }
    if (net.now() == 7000) {
      // Recovery has settled: the re-established circuit and the PS detour
      // both avoid the dead link, so corruption stops accumulating.
      corrupted_settled = net.fault_model()->corrupted_traversals();
      EXPECT_GE(net.total_cs_fault_teardowns(), 1u);
    }
    if (net.now() % 6 == 0) send_packet(net, id++, 3, 15);
    net.tick();
  }
  EXPECT_EQ(net.fault_model()->corrupted_traversals(), corrupted_settled);
  // The re-established circuit carried traffic after the kill.
  EXPECT_GT(net.total_cs_packets(), cs_at_kill);
  settle(net);

  const DegradationReport d = net.degradation_report();
  EXPECT_EQ(d.data_sent, static_cast<std::uint64_t>(id - 1));
  EXPECT_EQ(d.data_delivered, d.data_sent);
  EXPECT_EQ(d.retx_give_ups, 0u);
  EXPECT_EQ(d.failed_links, 1);
  EXPECT_GE(net.hybrid_ni(3).cs_fault_teardowns(), 1u);
  // The teardown died crossing the dead link, so the reservations past it
  // could only have been reclaimed by the routers' lease backstop.
  EXPECT_GT(net.total_expired_reservations(), 0u);
  const ReservationAudit audit = net.audit_reservations();
  EXPECT_TRUE(audit.clean());
  EXPECT_EQ(net.total_valid_slot_entries(), 0);
  EXPECT_EQ(net.total_active_connections(), 0);
}

// ---------------------------------------------------------------------------
// Setup-retry backoff and give-up accounting
// ---------------------------------------------------------------------------

TEST(HybridDataFault, SetupBackoffRetriesThenGivesUpIntoCooldown) {
  NocConfig cfg = hybrid_fault_cfg();
  // An 8-slot table holds very few windows; four sources converging on one
  // destination guarantee setup conflicts (AckFailures), so retries run
  // through the backoff queue and the retry budget must eventually run out.
  cfg.slot_table_size = 8;
  cfg.initial_active_slots = 8;
  cfg.max_windows_per_pair = 1;
  cfg.max_setup_retries = 2;
  cfg.setup_backoff_base_cycles = 16;
  cfg.setup_backoff_cap_cycles = 128;
  HybridNetwork net(cfg);
  const NodeId dst = 14;
  const NodeId sources[] = {0, 1, 2, 3};
  PacketId id = 1;
  while (net.now() < 20000) {
    for (std::size_t i = 0; i < 4; ++i) {
      if (net.now() % 16 == 4 * i) send_packet(net, id++, sources[i], dst);
    }
    net.tick();
  }
  settle(net);

  EXPECT_GT(net.total_setup_failures(), 0u);
  EXPECT_GE(net.total_setup_give_ups(), 1u);
  // The workload was untouched: losers fell back to packet switching.
  EXPECT_EQ(net.total_data_delivered(), static_cast<std::uint64_t>(id - 1));
  EXPECT_EQ(net.total_valid_slot_entries(), 0);
  EXPECT_TRUE(net.audit_reservations().clean());
}

// ---------------------------------------------------------------------------
// v2 trace format: data-plane fault records
// ---------------------------------------------------------------------------

FaultTrace v2_trace() {
  FaultTrace t;
  t.records.push_back({12, 34, ConfigKind::Setup, 0, 23, 0, FaultAction::Drop, 0});
  // Link faults: src = upstream node, dst = output-port index.
  t.records.push_back(
      {2500, 0, ConfigKind::Link, 7, 3, 0, FaultAction::Kill, 0});
  t.records.push_back(
      {100, 0, ConfigKind::Link, 4, 2, 0, FaultAction::Stuck, 600});
  t.records.push_back(
      {731, 0, ConfigKind::Link, 4, 2, 17, FaultAction::Corrupt, 0});
  t.records.push_back(
      {4000, 0, ConfigKind::Router, 9, 0, 0, FaultAction::Kill, 0});
  return t;
}

TEST(FaultTraceV2, DataPlaneRecordsRoundTrip) {
  const FaultTrace orig = v2_trace();
  std::stringstream buf;
  save_fault_trace(buf, orig);
  EXPECT_NE(buf.str().find("v2"), std::string::npos);
  EXPECT_EQ(load_fault_trace(buf), orig);
  EXPECT_EQ(orig.active_faults(), 5u);
}

TEST(FaultTraceV2, ScenarioDataFaultFieldsRoundTrip) {
  FaultScenario s;
  s.k = 4;
  s.link_ber = 1e-3;
  s.link_fault_seed = 77;
  s.e2e_recovery = true;
  s.retx_timeout_cycles = 96;
  s.retx_backoff_cap_cycles = 768;
  s.max_retx_attempts = 5;
  s.cs_fail_threshold = 2;
  s.watchdog_stall_cycles = 3000;
  s.setup_backoff_base_cycles = 16;
  s.setup_backoff_cap_cycles = 256;
  s.dead_links = {{7, 3, 2500, 0}};
  s.stuck_links = {{4, 2, 100, 600}};
  s.dead_routers = {{9, 4000}};
  s.faults = v2_trace();

  std::stringstream buf;
  save_fault_scenario(buf, s);
  const FaultScenario r = load_fault_scenario(buf);
  EXPECT_DOUBLE_EQ(r.link_ber, s.link_ber);
  EXPECT_EQ(r.link_fault_seed, s.link_fault_seed);
  EXPECT_EQ(r.e2e_recovery, s.e2e_recovery);
  EXPECT_EQ(r.retx_timeout_cycles, s.retx_timeout_cycles);
  EXPECT_EQ(r.retx_backoff_cap_cycles, s.retx_backoff_cap_cycles);
  EXPECT_EQ(r.max_retx_attempts, s.max_retx_attempts);
  EXPECT_EQ(r.cs_fail_threshold, s.cs_fail_threshold);
  EXPECT_EQ(r.watchdog_stall_cycles, s.watchdog_stall_cycles);
  EXPECT_EQ(r.setup_backoff_base_cycles, s.setup_backoff_base_cycles);
  EXPECT_EQ(r.setup_backoff_cap_cycles, s.setup_backoff_cap_cycles);
  ASSERT_EQ(r.dead_links.size(), 1u);
  EXPECT_EQ(r.dead_links[0].node, 7);
  EXPECT_EQ(r.dead_links[0].port, 3);
  EXPECT_EQ(r.dead_links[0].start, 2500u);
  ASSERT_EQ(r.stuck_links.size(), 1u);
  EXPECT_EQ(r.stuck_links[0].duration, 600u);
  ASSERT_EQ(r.dead_routers.size(), 1u);
  EXPECT_EQ(r.dead_routers[0].first, 9);
  EXPECT_EQ(r.dead_routers[0].second, 4000u);
  EXPECT_EQ(r.faults, s.faults);

  // The config the scenario hands the network carries the same knobs.
  const NocConfig cfg = r.to_config();
  EXPECT_DOUBLE_EQ(cfg.link_ber, s.link_ber);
  EXPECT_EQ(cfg.fault_seed, s.link_fault_seed);
  EXPECT_TRUE(cfg.e2e_recovery);
  EXPECT_EQ(cfg.cs_fail_threshold, 2);
  EXPECT_EQ(cfg.setup_backoff_base_cycles, 16u);
}

TEST(FaultTraceV2DeathTest, RejectsMalformedDataPlaneRecords) {
  // Port index out of range for a link fault (Local = 0 is not a link).
  std::istringstream bad_port(
      "hybridnoc-fault-trace v2\n"
      "10 0 link 7 0 0 kill 0\n");
  EXPECT_DEATH((void)load_fault_trace(bad_port), "link fault port");
  std::istringstream bad_port_high(
      "hybridnoc-fault-trace v2\n"
      "10 0 link 7 5 0 kill 0\n");
  EXPECT_DEATH((void)load_fault_trace(bad_port_high), "link fault port");
  // Config-message actions on hardware records and vice versa.
  std::istringstream link_drop(
      "hybridnoc-fault-trace v2\n"
      "10 0 link 7 3 0 drop 0\n");
  EXPECT_DEATH((void)load_fault_trace(link_drop), "link fault action");
  std::istringstream router_stuck(
      "hybridnoc-fault-trace v2\n"
      "10 0 router 7 0 0 stuck 4\n");
  EXPECT_DEATH((void)load_fault_trace(router_stuck), "router fault action");
  std::istringstream setup_kill(
      "hybridnoc-fault-trace v2\n"
      "10 0 setup 0 15 0 kill 0\n");
  EXPECT_DEATH((void)load_fault_trace(setup_kill),
               "data-plane action on a config record");
  // A v1 loader rejects nothing new: v1 files still load (covered by the
  // round-trip tests in fault_replay_test), but a future version does not.
  std::istringstream v3(
      "hybridnoc-fault-trace v3\n");
  EXPECT_DEATH((void)load_fault_trace(v3), "version");
}

// ---------------------------------------------------------------------------
// Recorded data-plane storms replay from the trace alone
// ---------------------------------------------------------------------------

TEST(FaultTraceV2, RecordedLinkFaultStormReplaysFromTrace) {
  FaultScenario s;
  s.k = 4;
  s.slot_table_size = 32;
  s.initial_active_slots = 16;
  s.path_freq_threshold = 2;
  s.policy_epoch_cycles = 128;
  s.reservation_lease_cycles = 2048;
  s.run_cycles = 4000;
  s.cooldown_cycles = 2000;
  s.link_ber = 1e-3;
  s.link_fault_seed = 21;
  s.e2e_recovery = true;
  s.retx_timeout_cycles = 256;
  s.retx_backoff_cap_cycles = 2048;
  s.cs_fail_threshold = 2;
  s.dead_links = {{7, static_cast<int>(Port::South), 2000, 0}};
  for (Cycle c = 0; c < s.run_cycles + s.cooldown_cycles; c += 6) {
    s.traffic.push_back({c, 3, 15, 5});
    s.traffic.push_back({c, 12, 0, 5});
  }

  const ScenarioOutcome rec =
      run_fault_scenario(s, ScenarioMode::Record, false, &s.faults);
  EXPECT_TRUE(rec.quiesced);
  EXPECT_EQ(rec.data_delivered, rec.data_sent);
  EXPECT_GE(rec.cs_fault_teardowns, 1u);
  EXPECT_GT(rec.crc_flagged_flits, 0u);
  EXPECT_EQ(rec.failed_links, 1);
  // The trace now carries the kill and every fired transient.
  bool has_kill = false, has_corrupt = false;
  for (const auto& r : s.faults.records) {
    if (r.kind == ConfigKind::Link && r.action == FaultAction::Kill)
      has_kill = true;
    if (r.kind == ConfigKind::Link && r.action == FaultAction::Corrupt)
      has_corrupt = true;
  }
  EXPECT_TRUE(has_kill);
  EXPECT_TRUE(has_corrupt);
  EXPECT_TRUE(violates_invariant("no-fault-teardowns", rec));

  // Replay re-derives the hardware faults from the trace (no BER hash, no
  // schedule fields) and reproduces the storm's outcome.
  const ScenarioOutcome rep = run_fault_scenario(s, ScenarioMode::Replay);
  EXPECT_TRUE(rep.quiesced);
  EXPECT_EQ(rep.data_sent, rec.data_sent);
  EXPECT_EQ(rep.data_delivered, rec.data_delivered);
  EXPECT_EQ(rep.crc_flagged_flits, rec.crc_flagged_flits);
  EXPECT_EQ(rep.crc_squashed_packets, rec.crc_squashed_packets);
  EXPECT_EQ(rep.retransmits, rec.retransmits);
  EXPECT_EQ(rep.cs_fault_teardowns, rec.cs_fault_teardowns);
  EXPECT_EQ(rep.expired_reservations, rec.expired_reservations);
  EXPECT_EQ(rep.slot_state_digest, rec.slot_state_digest);
  EXPECT_EQ(rep.failed_links, rec.failed_links);
}

// ---------------------------------------------------------------------------
// Zero-fault bit-identity
// ---------------------------------------------------------------------------

/// Drive a deterministic workload and fingerprint everything cheap to
/// compare; `install_model` pre-creates the FaultModel (hooks armed on every
/// router and NI) without scheduling any fault.
struct Fingerprint {
  std::uint64_t digest = 0;
  std::uint64_t cs_packets = 0;
  std::uint64_t ps_flits = 0;
  std::uint64_t cs_flits = 0;
  std::uint64_t config_flits = 0;
  std::uint64_t buffer_writes = 0;
  std::uint64_t link_flits = 0;
  std::uint64_t cycles = 0;
  std::map<PacketId, Cycle> deliveries;
};

Fingerprint run_zero_fault(bool install_model) {
  const NocConfig cfg = hybrid_fault_cfg();
  HybridNetwork net(cfg);
  if (install_model) net.ensure_fault_model();
  Fingerprint fp;
  net.set_deliver_handler(
      [&fp](const PacketPtr& p, Cycle at) { fp.deliveries.emplace(p->id, at); });
  PacketId id = 1;
  while (net.now() < 4000) {
    if (net.now() % 3 == 0) {
      send_packet(net, id++, 0, 15);
      send_packet(net, id++, 10, 5);
    }
    net.tick();
  }
  const Cycle end = net.now() + 3000;
  while (net.now() < end) net.tick();
  fp.digest = net.slot_state_digest();
  fp.cs_packets = net.total_cs_packets();
  fp.ps_flits = net.total_ps_flits();
  fp.cs_flits = net.total_cs_flits();
  fp.config_flits = net.total_config_flits();
  const EnergyCounters e = net.total_energy();
  fp.buffer_writes = e.buffer_writes;
  fp.link_flits = e.link_flits;
  fp.cycles = e.cycles;
  return fp;
}

TEST(HybridDataFault, FaultFreeModelIsBitIdenticalToNoModel) {
  const Fingerprint bare = run_zero_fault(false);
  const Fingerprint armed = run_zero_fault(true);
  EXPECT_EQ(bare.digest, armed.digest);
  EXPECT_EQ(bare.cs_packets, armed.cs_packets);
  EXPECT_EQ(bare.ps_flits, armed.ps_flits);
  EXPECT_EQ(bare.cs_flits, armed.cs_flits);
  EXPECT_EQ(bare.config_flits, armed.config_flits);
  EXPECT_EQ(bare.buffer_writes, armed.buffer_writes);
  EXPECT_EQ(bare.link_flits, armed.link_flits);
  EXPECT_EQ(bare.cycles, armed.cycles);
  EXPECT_EQ(bare.deliveries, armed.deliveries);
  EXPECT_GT(bare.cs_packets, 0u);  // the workload exercised circuits
}

}  // namespace
}  // namespace hybridnoc
