// Parameterized property sweeps: invariants that must hold for every
// architecture, traffic pattern, mesh size and feature combination —
// conservation (every injected packet is delivered exactly once, at its
// destination), drainability (no deadlock/livelock), determinism, and
// protocol-quiescence accounting.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "sim/net_adapter.hpp"
#include "tdm/fault_trace.hpp"
#include "tdm/hybrid_network.hpp"
#include "traffic/synthetic.hpp"

namespace hybridnoc {
namespace {

struct PropertyCase {
  RouterArch arch;
  TrafficPattern pattern;
  int k;
  bool sharing;
  bool gating;
  double rate;
};

std::string case_name(const testing::TestParamInfo<PropertyCase>& info) {
  const auto& c = info.param;
  std::string s = router_arch_name(c.arch);
  s += std::string("_") + traffic_pattern_name(c.pattern);
  s += "_k" + std::to_string(c.k);
  if (c.sharing) s += "_sharing";
  if (c.gating) s += "_gating";
  s += "_r" + std::to_string(static_cast<int>(c.rate * 100));
  for (auto& ch : s) {
    if (ch == '-') ch = '_';
  }
  return s;
}

NocConfig make_config(const PropertyCase& c) {
  NocConfig cfg;
  switch (c.arch) {
    case RouterArch::PacketSwitched: cfg = NocConfig::packet_vc4(c.k); break;
    case RouterArch::HybridTdm:
      cfg = c.sharing ? NocConfig::hybrid_tdm_hop_vc4(c.k)
                      : NocConfig::hybrid_tdm_vc4(c.k);
      cfg.slot_table_size = 32;  // short waits keep the sweep fast
      cfg.initial_active_slots = 16;
      cfg.path_freq_threshold = 4;
      break;
    case RouterArch::HybridSdm: cfg = NocConfig::hybrid_sdm_vc4(c.k); break;
  }
  cfg.vc_power_gating = c.gating;
  return cfg;
}

class NetworkProperties : public testing::TestWithParam<PropertyCase> {};

TEST_P(NetworkProperties, ConservationAndDrain) {
  const PropertyCase& c = GetParam();
  auto net = make_network(make_config(c));
  const Mesh& mesh = net->mesh();

  std::map<PacketId, NodeId> outstanding;
  bool misrouted = false;
  std::uint64_t delivered = 0;
  net->set_deliver_handler([&](const PacketPtr& p, Cycle) {
    ++delivered;
    const auto it = outstanding.find(p->id);
    if (it == outstanding.end() || it->second != p->final_dst) {
      misrouted = true;
      return;
    }
    outstanding.erase(it);
  });

  SyntheticTraffic traffic(mesh, c.pattern, c.rate, 5, /*seed=*/99);
  PacketId id = 1;
  std::uint64_t injected = 0;
  for (int cycle = 0; cycle < 4000; ++cycle) {
    traffic.generate([&](NodeId s, NodeId d) {
      auto p = std::make_shared<Packet>();
      p->id = id++;
      p->src = s;
      p->dst = d;
      p->num_flits = 5;
      outstanding[p->id] = d;
      net->send(std::move(p));
      ++injected;
    });
    net->tick();
  }
  ASSERT_GT(injected, 50u);

  net->set_policy_frozen(true);
  for (int i = 0; i < 60000 && !net->quiescent(); ++i) net->tick();
  EXPECT_TRUE(net->quiescent()) << "network failed to drain (deadlock?)";
  EXPECT_FALSE(misrouted);
  EXPECT_EQ(delivered, injected);
  EXPECT_TRUE(outstanding.empty());
}

TEST_P(NetworkProperties, DeterministicReplay) {
  const PropertyCase& c = GetParam();
  auto run = [&] {
    auto net = make_network(make_config(c));
    std::vector<std::pair<PacketId, Cycle>> log;
    net->set_deliver_handler(
        [&](const PacketPtr& p, Cycle at) { log.emplace_back(p->id, at); });
    SyntheticTraffic traffic(net->mesh(), c.pattern, c.rate, 5, 7);
    PacketId id = 1;
    for (int cycle = 0; cycle < 1500; ++cycle) {
      traffic.generate([&](NodeId s, NodeId d) {
        auto p = std::make_shared<Packet>();
        p->id = id++;
        p->src = s;
        p->dst = d;
        p->num_flits = 5;
        net->send(std::move(p));
      });
      net->tick();
    }
    return log;
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, NetworkProperties,
    testing::Values(
        PropertyCase{RouterArch::PacketSwitched, TrafficPattern::UniformRandom,
                     4, false, false, 0.10},
        PropertyCase{RouterArch::PacketSwitched, TrafficPattern::Transpose, 6,
                     false, true, 0.15},
        PropertyCase{RouterArch::PacketSwitched, TrafficPattern::Tornado, 5,
                     false, false, 0.20},
        PropertyCase{RouterArch::HybridTdm, TrafficPattern::UniformRandom, 4,
                     false, false, 0.10},
        PropertyCase{RouterArch::HybridTdm, TrafficPattern::Tornado, 6, false,
                     false, 0.20},
        PropertyCase{RouterArch::HybridTdm, TrafficPattern::Tornado, 6, true,
                     false, 0.20},
        PropertyCase{RouterArch::HybridTdm, TrafficPattern::Transpose, 6, true,
                     true, 0.15},
        PropertyCase{RouterArch::HybridTdm, TrafficPattern::Hotspot, 6, true,
                     false, 0.10},
        PropertyCase{RouterArch::HybridTdm, TrafficPattern::BitComplement, 4,
                     false, true, 0.10},
        PropertyCase{RouterArch::HybridSdm, TrafficPattern::UniformRandom, 4,
                     false, false, 0.08},
        PropertyCase{RouterArch::HybridSdm, TrafficPattern::Tornado, 6, false,
                     false, 0.10}),
    case_name);

// --- zero-load latency property: the analytical pipeline model holds for
// every source/destination pair on every mesh size ---

class ZeroLoadLatency : public testing::TestWithParam<int> {};

TEST_P(ZeroLoadLatency, MatchesPipelineModelForAllPairs) {
  const int k = GetParam();
  Network net(NocConfig::packet_vc4(k));
  Rng rng(5);
  std::map<PacketId, Cycle> delivered_at;
  std::map<PacketId, Cycle> sent_at;
  std::map<PacketId, int> hops;
  net.set_deliver_handler(
      [&](const PacketPtr& p, Cycle at) { delivered_at[p->id] = at; });

  PacketId id = 1;
  // 24 random pairs, one packet in flight at a time.
  for (int trial = 0; trial < 24; ++trial) {
    const NodeId s = static_cast<NodeId>(rng.uniform_int(
        static_cast<std::uint64_t>(net.num_nodes())));
    const NodeId d = static_cast<NodeId>(rng.uniform_int(
        static_cast<std::uint64_t>(net.num_nodes())));
    if (s == d) continue;
    auto p = std::make_shared<Packet>();
    p->id = id;
    p->src = s;
    p->dst = d;
    p->num_flits = 5;
    sent_at[id] = net.now();
    hops[id] = net.mesh().hop_distance(s, d);
    net.ni(s).send(std::move(p), net.now());
    for (int t = 0; t < 5 * 2 * k + 40; ++t) net.tick();
    ++id;
  }
  for (const auto& [pid, at] : delivered_at) {
    EXPECT_EQ(at - sent_at[pid],
              static_cast<Cycle>(5 * hops[pid] + 6 + 5))
        << "packet " << pid << " hops " << hops[pid];
  }
  EXPECT_EQ(delivered_at.size(), sent_at.size());
}

INSTANTIATE_TEST_SUITE_P(MeshSizes, ZeroLoadLatency, testing::Values(2, 3, 4, 6, 8),
                         [](const testing::TestParamInfo<int>& i) {
                           return "k" + std::to_string(i.param);
                         });

// --- slot-table reservation algebra across table geometries ---

class SlotTableGeometry
    : public testing::TestWithParam<std::tuple<int /*capacity*/, int /*active*/,
                                               int /*duration*/>> {};

TEST_P(SlotTableGeometry, ReserveReleaseRoundTrip) {
  const auto [capacity, active, duration] = GetParam();
  SlotTable t(capacity, active);
  Rng rng(static_cast<std::uint64_t>(capacity * 131 + active));
  // Fill with random non-conflicting reservations, then release everything.
  struct R {
    int slot;
    Port in;
  };
  std::vector<R> made;
  for (int attempt = 0; attempt < 200; ++attempt) {
    const int slot = static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(active)));
    const Port in = static_cast<Port>(rng.uniform_int(kNumPorts));
    const Port out = static_cast<Port>(rng.uniform_int(kNumPorts));
    const bool could = t.can_reserve(slot, duration, in, out);
    const bool did = t.reserve(slot, duration, in, out);
    EXPECT_EQ(could, did);
    if (did) made.push_back({slot, in});
  }
  EXPECT_EQ(t.valid_entries(),
            static_cast<int>(made.size()) * duration);
  for (const auto& r : made) {
    EXPECT_TRUE(t.release(r.slot, duration, r.in).has_value());
  }
  EXPECT_EQ(t.valid_entries(), 0);
  EXPECT_DOUBLE_EQ(t.occupancy(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SlotTableGeometry,
    testing::Combine(testing::Values(32, 128, 256),
                     testing::Values(16, 32),
                     testing::Values(1, 4, 5)),
    [](const testing::TestParamInfo<std::tuple<int, int, int>>& i) {
      return "cap" + std::to_string(std::get<0>(i.param)) + "_act" +
             std::to_string(std::get<1>(i.param)) + "_dur" +
             std::to_string(std::get<2>(i.param));
    });

// --- fault-trace replay property: a recorded storm replays bit-identically
// with no RNG, and the reservation audit passes after every config event ---

struct ReplayCase {
  std::uint64_t seed;
  std::vector<Cycle> resizes;
  double drop, delay, dup;
};

FaultScenario make_replay_scenario(const ReplayCase& c) {
  FaultScenario s;
  s.k = 5;
  s.run_cycles = 4000;
  s.cooldown_cycles = 3000;
  s.resizes = c.resizes;
  s.dynamic_slot_sizing = !c.resizes.empty();
  s.fault_params.drop_prob = c.drop;
  s.fault_params.delay_prob = c.delay;
  s.fault_params.dup_prob = c.dup;
  s.fault_params.seed = c.seed;
  // Hot far-apart pairs with staggered bursts keep config traffic flowing.
  Rng rng(c.seed * 1000003 + 17);
  const NodeId nodes = static_cast<NodeId>(s.k * s.k);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  while (pairs.size() < 5) {
    const NodeId a = static_cast<NodeId>(rng.uniform_int(nodes));
    const NodeId b = static_cast<NodeId>(rng.uniform_int(nodes));
    const int hops = std::abs(a % s.k - b % s.k) + std::abs(a / s.k - b / s.k);
    if (hops < s.k / 2 + 1) continue;
    pairs.emplace_back(a, b);
  }
  for (Cycle cy = 0; cy < s.run_cycles + s.cooldown_cycles; ++cy) {
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if (((cy >> 8) + i) % 3 != 0) continue;
      if (rng.bernoulli(0.25)) {
        s.traffic.push_back({cy, pairs[i].first, pairs[i].second, 5});
      }
    }
  }
  return s;
}

class FaultReplayProperty : public testing::TestWithParam<ReplayCase> {};

TEST_P(FaultReplayProperty, ReplayMatchesRecordingAndAuditsClean) {
  FaultScenario s = make_replay_scenario(GetParam());
  const ScenarioOutcome rec =
      run_fault_scenario(s, ScenarioMode::Record, false, &s.faults);
  ASSERT_GE(s.faults.records.size(), 10u) << "storm produced no config traffic";
  ASSERT_GT(s.faults.active_faults(), 0u) << "storm injected no faults";

  const ScenarioOutcome rep =
      run_fault_scenario(s, ScenarioMode::Replay, /*audit_each_event=*/true);
  // Every recorded decision lands on its protocol event again...
  EXPECT_EQ(rep.replay_applied, s.faults.records.size());
  // ...the fault counters come out identical without any RNG involved...
  EXPECT_EQ(rep.faults_dropped, rec.faults_dropped);
  EXPECT_EQ(rep.faults_delayed, rec.faults_delayed);
  EXPECT_EQ(rep.faults_duplicated, rec.faults_duplicated);
  // ...the protocol takes the same recovery path...
  EXPECT_EQ(rep.stale_config_drops, rec.stale_config_drops);
  EXPECT_EQ(rep.pending_timeouts, rec.pending_timeouts);
  EXPECT_EQ(rep.expired_reservations, rec.expired_reservations);
  EXPECT_EQ(rep.setup_failures, rec.setup_failures);
  // ...and both runs converge to the same final slot-table state.
  EXPECT_EQ(rep.quiesced, rec.quiesced);
  EXPECT_EQ(rep.slot_state_digest, rec.slot_state_digest);
  EXPECT_EQ(rep.broken_windows, rec.broken_windows);
  EXPECT_EQ(rep.orphan_entries, rec.orphan_entries);
  // The network-wide reservation audit held after every replayed event.
  EXPECT_EQ(rep.replay_audit_failures, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Storms, FaultReplayProperty,
    testing::Values(ReplayCase{3, {}, 0.08, 0.0, 0.0},
                    ReplayCase{7, {1500}, 0.03, 0.06, 0.03},
                    ReplayCase{11, {1000, 2600}, 0.02, 0.04, 0.05}),
    [](const testing::TestParamInfo<ReplayCase>& i) {
      return "seed" + std::to_string(i.param.seed) + "_resizes" +
             std::to_string(i.param.resizes.size());
    });

}  // namespace
}  // namespace hybridnoc
