// Bit-identity of the active-set tick scheduler against the legacy full
// sweep (NocConfig::active_set_scheduler). The active-set engine skips idle
// components and — via Network::fast_forward — whole idle cycles, folding
// their per-cycle energy constants in closed form; none of that may change
// a single observable bit. Every scenario here runs twice, once per engine,
// and the two runs must agree exactly on:
//  * every delivered packet's id and delivery cycle (hence every latency),
//  * every EnergyCounters field (dynamic events AND closed-form idle
//    integrals: cycles, vc/slot/dlt/link active-cycle time integrals),
//  * flit-class totals and, for hybrid networks, the slot-table state
//    digest, circuit statistics and config-protocol fault accounting.
// The fault-storm and fixture-replay cases drive the protocol edge paths
// (drops, delays, duplicates, dynamic resizes) where a missed wake would
// show up as a diverged digest; the quiescence cases check fast_forward
// never jumps over a controller resize poll or a reservation-lease sweep.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "noc/network.hpp"
#include "tdm/fault_trace.hpp"
#include "tdm/hybrid_network.hpp"
#include "traffic/synthetic.hpp"
#include "workloads/coherence.hpp"
#include "workloads/nn_dataflow.hpp"

namespace hybridnoc {
namespace {

std::string fixture_path(const std::string& name) {
  return std::string(HN_FIXTURE_DIR) + "/" + name;
}

/// Everything one run exposes for exact comparison.
struct RunFingerprint {
  Cycle end_cycle = 0;
  EnergyCounters energy;
  std::uint64_t delivered = 0;
  std::uint64_t ps_flits = 0;
  std::uint64_t cs_flits = 0;
  std::uint64_t config_flits = 0;
  /// Hybrid-only extras (zero for plain packet-switched runs).
  std::uint64_t slot_digest = 0;
  std::uint64_t cs_packets = 0;
  std::uint64_t setups_sent = 0;
  std::uint64_t setup_failures = 0;
  std::uint64_t expired_reservations = 0;
  std::uint64_t stale_config_drops = 0;
  std::uint64_t faults_dropped = 0;
  std::uint64_t faults_delayed = 0;
  std::uint64_t faults_duplicated = 0;
  int resizes = 0;
  std::uint64_t generation = 0;
  /// Data-plane fault-tolerance outcome (all zero with no fault model).
  std::uint64_t retransmits = 0;
  std::uint64_t retx_give_ups = 0;
  std::uint64_t crc_flagged = 0;
  std::uint64_t crc_squashed = 0;
  std::uint64_t e2e_acks = 0;
  std::uint64_t e2e_dup_dropped = 0;
  std::uint64_t cs_fault_teardowns = 0;
  std::uint64_t corrupted_traversals = 0;
  int failed_links = 0;
  /// Packet id -> delivery cycle. Injection schedules are identical across
  /// the twin runs, so equal delivery cycles mean equal latencies.
  std::map<PacketId, Cycle> deliveries;
};

void expect_same_energy(const EnergyCounters& a, const EnergyCounters& b) {
  EXPECT_EQ(a.buffer_writes, b.buffer_writes);
  EXPECT_EQ(a.buffer_reads, b.buffer_reads);
  EXPECT_EQ(a.xbar_flits, b.xbar_flits);
  EXPECT_EQ(a.vc_arbs, b.vc_arbs);
  EXPECT_EQ(a.sw_arbs, b.sw_arbs);
  EXPECT_EQ(a.link_flits, b.link_flits);
  EXPECT_EQ(a.slot_table_reads, b.slot_table_reads);
  EXPECT_EQ(a.slot_table_writes, b.slot_table_writes);
  EXPECT_EQ(a.dlt_accesses, b.dlt_accesses);
  EXPECT_EQ(a.cs_latch_flits, b.cs_latch_flits);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.vc_active_cycles, b.vc_active_cycles);
  EXPECT_EQ(a.slot_entry_active_cycles, b.slot_entry_active_cycles);
  EXPECT_EQ(a.dlt_active_cycles, b.dlt_active_cycles);
  EXPECT_EQ(a.cs_misc_active_cycles, b.cs_misc_active_cycles);
  EXPECT_EQ(a.link_active_cycles, b.link_active_cycles);
}

void expect_same(const RunFingerprint& a, const RunFingerprint& b) {
  EXPECT_EQ(a.end_cycle, b.end_cycle);
  expect_same_energy(a.energy, b.energy);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.ps_flits, b.ps_flits);
  EXPECT_EQ(a.cs_flits, b.cs_flits);
  EXPECT_EQ(a.config_flits, b.config_flits);
  EXPECT_EQ(a.slot_digest, b.slot_digest);
  EXPECT_EQ(a.cs_packets, b.cs_packets);
  EXPECT_EQ(a.setups_sent, b.setups_sent);
  EXPECT_EQ(a.setup_failures, b.setup_failures);
  EXPECT_EQ(a.expired_reservations, b.expired_reservations);
  EXPECT_EQ(a.stale_config_drops, b.stale_config_drops);
  EXPECT_EQ(a.faults_dropped, b.faults_dropped);
  EXPECT_EQ(a.faults_delayed, b.faults_delayed);
  EXPECT_EQ(a.faults_duplicated, b.faults_duplicated);
  EXPECT_EQ(a.resizes, b.resizes);
  EXPECT_EQ(a.generation, b.generation);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.retx_give_ups, b.retx_give_ups);
  EXPECT_EQ(a.crc_flagged, b.crc_flagged);
  EXPECT_EQ(a.crc_squashed, b.crc_squashed);
  EXPECT_EQ(a.e2e_acks, b.e2e_acks);
  EXPECT_EQ(a.e2e_dup_dropped, b.e2e_dup_dropped);
  EXPECT_EQ(a.cs_fault_teardowns, b.cs_fault_teardowns);
  EXPECT_EQ(a.corrupted_traversals, b.corrupted_traversals);
  EXPECT_EQ(a.failed_links, b.failed_links);
  EXPECT_EQ(a.deliveries, b.deliveries);
}

template <typename NetT>
void install_delivery_capture(NetT& net, RunFingerprint& fp) {
  net.set_deliver_handler([&fp](const PacketPtr& p, Cycle at) {
    ++fp.delivered;
    fp.deliveries.emplace(p->id, at);
  });
}

template <typename NetT>
void harvest_common(NetT& net, RunFingerprint& fp) {
  fp.end_cycle = net.now();
  fp.energy = net.total_energy();
  fp.ps_flits = net.total_ps_flits();
  fp.cs_flits = net.total_cs_flits();
  fp.config_flits = net.total_config_flits();
}

void harvest_hybrid(HybridNetwork& net, RunFingerprint& fp) {
  harvest_common(net, fp);
  const DegradationReport d = net.degradation_report();
  fp.retransmits = d.retransmits;
  fp.retx_give_ups = d.retx_give_ups;
  fp.crc_flagged = d.crc_flagged_flits;
  fp.crc_squashed = d.crc_squashed_packets;
  fp.e2e_acks = d.e2e_acks_sent;
  fp.e2e_dup_dropped = d.e2e_duplicates_dropped;
  fp.cs_fault_teardowns = net.total_cs_fault_teardowns();
  fp.corrupted_traversals = d.corrupted_traversals;
  fp.failed_links = d.failed_links;
  fp.slot_digest = net.slot_state_digest();
  fp.cs_packets = net.total_cs_packets();
  fp.setups_sent = net.total_setups_sent();
  fp.setup_failures = net.total_setup_failures();
  fp.expired_reservations = net.total_expired_reservations();
  fp.stale_config_drops = net.total_stale_config_drops();
  fp.faults_dropped = net.faults_dropped();
  fp.faults_delayed = net.faults_delayed();
  fp.faults_duplicated = net.faults_duplicated();
  fp.resizes = net.controller().resizes();
  fp.generation = net.controller().table_generation();
}

/// Inject from a seeded synthetic source every cycle for `cycles` cycles.
/// The traffic stream is a pure function of (pattern, rate, seed), so both
/// twin runs see the identical schedule.
template <typename NetT>
void drive_synthetic(NetT& net, TrafficPattern pattern, double rate,
                     Cycle cycles, std::uint64_t seed) {
  SyntheticTraffic traffic(net.mesh(), pattern, rate, 5, seed);
  PacketId next_id = 1;
  while (net.now() < cycles) {
    traffic.generate([&](NodeId src, NodeId dst) {
      auto p = std::make_shared<Packet>();
      p->id = next_id++;
      p->src = src;
      p->dst = dst;
      p->num_flits = 5;
      net.ni(src).send(std::move(p), net.now());
    });
    net.tick();
  }
}

RunFingerprint run_packet(NocConfig cfg, bool active_set,
                          TrafficPattern pattern, double rate, Cycle cycles,
                          std::uint64_t seed) {
  cfg.active_set_scheduler = active_set;
  RunFingerprint fp;
  Network net(cfg);
  install_delivery_capture(net, fp);
  drive_synthetic(net, pattern, rate, cycles, seed);
  // An idle drain tail exercises component sleep on the active-set side.
  const Cycle end = net.now() + 3000;
  while (net.now() < end) net.tick();
  harvest_common(net, fp);
  return fp;
}

RunFingerprint run_hybrid(NocConfig cfg, bool active_set,
                          TrafficPattern pattern, double rate, Cycle cycles,
                          std::uint64_t seed) {
  cfg.active_set_scheduler = active_set;
  RunFingerprint fp;
  HybridNetwork net(cfg);
  install_delivery_capture(net, fp);
  drive_synthetic(net, pattern, rate, cycles, seed);
  const Cycle end = net.now() + 3000;
  while (net.now() < end) net.tick();
  harvest_hybrid(net, fp);
  return fp;
}

NocConfig small_hybrid_cfg(bool sharing) {
  NocConfig cfg =
      sharing ? NocConfig::hybrid_tdm_hop_vc4(4) : NocConfig::hybrid_tdm_vc4(4);
  cfg.slot_table_size = 32;
  cfg.initial_active_slots = 16;
  cfg.path_freq_threshold = 4;  // circuits form quickly at test scale
  return cfg;
}

// ---------------------------------------------------------------------------
// Seeded traffic, both engines
// ---------------------------------------------------------------------------

TEST(SchedulerEquivalence, PacketSwitchedUniform) {
  const NocConfig cfg = NocConfig::packet_vc4(4);
  expect_same(
      run_packet(cfg, true, TrafficPattern::UniformRandom, 0.12, 5000, 11),
      run_packet(cfg, false, TrafficPattern::UniformRandom, 0.12, 5000, 11));
}

TEST(SchedulerEquivalence, PacketSwitchedHotspotWithGating) {
  NocConfig cfg = NocConfig::packet_vc4(4);
  cfg.vc_power_gating = true;  // epoch catch-up must align exactly
  expect_same(run_packet(cfg, true, TrafficPattern::Hotspot, 0.08, 5000, 7),
              run_packet(cfg, false, TrafficPattern::Hotspot, 0.08, 5000, 7));
}

TEST(SchedulerEquivalence, HybridUniform) {
  const NocConfig cfg = small_hybrid_cfg(/*sharing=*/false);
  const RunFingerprint active =
      run_hybrid(cfg, true, TrafficPattern::UniformRandom, 0.10, 6000, 21);
  // Non-vacuity: the scenario must actually exercise delivery and circuits.
  EXPECT_GT(active.delivered, 100u);
  EXPECT_GT(active.cs_packets, 0u);
  expect_same(
      active,
      run_hybrid(cfg, false, TrafficPattern::UniformRandom, 0.10, 6000, 21));
}

TEST(SchedulerEquivalence, HybridSharingHotspot) {
  const NocConfig cfg = small_hybrid_cfg(/*sharing=*/true);
  expect_same(run_hybrid(cfg, true, TrafficPattern::Hotspot, 0.08, 6000, 31),
              run_hybrid(cfg, false, TrafficPattern::Hotspot, 0.08, 6000, 31));
}

// ---------------------------------------------------------------------------
// Seeded fault storm, both engines
// ---------------------------------------------------------------------------

RunFingerprint run_storm(bool active_set) {
  NocConfig cfg = small_hybrid_cfg(/*sharing=*/false);
  cfg.dynamic_slot_sizing = true;
  cfg.initial_active_slots = 8;
  cfg.active_set_scheduler = active_set;

  RunFingerprint fp;
  HybridNetwork net(cfg);
  install_delivery_capture(net, fp);

  ConfigFaultParams p;
  p.drop_prob = 0.02;
  p.delay_prob = 0.02;
  p.dup_prob = 0.01;
  p.max_delay_cycles = 40;
  p.seed = 1234;
  net.enable_config_faults(p);

  SyntheticTraffic traffic(net.mesh(), TrafficPattern::UniformRandom, 0.10, 5,
                           99);
  PacketId next_id = 1;
  while (net.now() < 8000) {
    if (net.now() == 2500 || net.now() == 5500) {
      net.controller().request_resize();
    }
    traffic.generate([&](NodeId src, NodeId dst) {
      auto p2 = std::make_shared<Packet>();
      p2->id = next_id++;
      p2->src = src;
      p2->dst = dst;
      p2->num_flits = 5;
      net.ni(src).send(std::move(p2), net.now());
    });
    net.tick();
  }
  net.disable_config_faults();
  // Fault-free cooldown: timeouts fire, the lease reclaims orphans, and on
  // the active-set side most of the fabric goes to sleep.
  const Cycle end = net.now() + 6000;
  while (net.now() < end) net.tick();
  harvest_hybrid(net, fp);
  return fp;
}

TEST(SchedulerEquivalence, SeededFaultStorm) {
  const RunFingerprint active = run_storm(true);
  // Non-vacuity: faults and resizes must actually have fired.
  EXPECT_GT(active.faults_dropped + active.faults_delayed +
                active.faults_duplicated,
            0u);
  EXPECT_GE(active.resizes, 1);
  expect_same(active, run_storm(false));
}

// ---------------------------------------------------------------------------
// Seeded link-fault storm, both engines
// ---------------------------------------------------------------------------

RunFingerprint run_link_fault_storm(bool active_set) {
  NocConfig cfg = small_hybrid_cfg(/*sharing=*/false);
  cfg.active_set_scheduler = active_set;
  // Data-plane faults: a transient bit-error rate plus a scheduled permanent
  // link death and a stuck window, recovered by CRC + end-to-end retransmit.
  // Per-hop corruption draws come from a stateless hash of
  // (seed, link, occurrence), so identical traversal orders — which is what
  // this test proves — give identical fault firings on both engines.
  cfg.link_ber = 1e-3;
  cfg.fault_seed = 77;
  cfg.e2e_recovery = true;
  cfg.retx_timeout_cycles = 512;

  RunFingerprint fp;
  HybridNetwork net(cfg);
  install_delivery_capture(net, fp);
  FaultModel& fm = net.ensure_fault_model();
  fm.kill_link(5, Port::East, 2500);
  fm.stick_link(9, Port::North, 4000, 600);

  drive_synthetic(net, TrafficPattern::UniformRandom, 0.08, 6000, 17);
  // Fault-free cooldown long enough for retransmission backoff tails and the
  // circuit-liveness teardowns to finish on both engines.
  const Cycle end = net.now() + 8000;
  while (net.now() < end) net.tick();
  harvest_hybrid(net, fp);
  return fp;
}

TEST(SchedulerEquivalence, SeededLinkFaultStorm) {
  const RunFingerprint active = run_link_fault_storm(true);
  // Non-vacuity: transients fired and were recovered, and the scheduled
  // link death is live in the final report.
  EXPECT_GT(active.corrupted_traversals, 0u);
  EXPECT_GT(active.crc_flagged, 0u);
  EXPECT_GT(active.retransmits, 0u);
  EXPECT_EQ(active.failed_links, 1);
  EXPECT_GT(active.delivered, 100u);
  expect_same(active, run_link_fault_storm(false));
}

// ---------------------------------------------------------------------------
// Workload-zoo storms, both engines
// ---------------------------------------------------------------------------
// The NN-dataflow and coherence generators double as fault-storm substrates:
// their traces mix circuit-forming long-lived flows (NN bursts, coherence
// data) with circuit-ineligible short control messages, so the engines must
// agree while circuits are set up, faulted and torn down under both message
// classes at once.

const char kStormNnDag[] = R"(
# 4x4 storm pipeline: three stages, heavy recurring pairs
mesh 4
layer in   0 0 4 1
layer mid  0 1 4 2
layer out  0 3 4 1
edge in  mid 4096
edge mid out 2048
)";

std::vector<TraceEntry> storm_nn_trace() {
  const NnDescriptor d = parse_nn_descriptor_string(kStormNnDag, "storm-nn");
  NnGenParams p;
  p.iterations = 6;
  p.seed = 3;
  return generate_nn_trace(d, p);
}

std::vector<TraceEntry> storm_coherence_trace() {
  CoherenceParams p;
  p.k = 4;
  p.cycles = 3000;
  p.request_rate = 0.04;
  p.seed = 5;
  return generate_coherence_trace(p).entries;
}

/// Replay a workload trace once through (no looping). Short entries are
/// circuit-ineligible, mirroring run_trace's rule.
void drive_trace(HybridNetwork& net, const std::vector<TraceEntry>& entries,
                 int cs_data_flits) {
  std::size_t pos = 0;
  PacketId next_id = 1;
  const Cycle total = entries.back().cycle + 1;
  while (net.now() < total) {
    while (pos < entries.size() && entries[pos].cycle <= net.now()) {
      const TraceEntry& e = entries[pos++];
      auto p = std::make_shared<Packet>();
      p->id = next_id++;
      p->src = e.src;
      p->dst = e.dst;
      p->num_flits = e.flits;
      p->cs_eligible = e.flits >= cs_data_flits;
      net.ni(e.src).send(std::move(p), net.now());
    }
    net.tick();
  }
}

RunFingerprint run_nn_storm(bool active_set) {
  NocConfig cfg = small_hybrid_cfg(/*sharing=*/false);
  cfg.dynamic_slot_sizing = true;
  cfg.initial_active_slots = 8;
  cfg.active_set_scheduler = active_set;

  RunFingerprint fp;
  HybridNetwork net(cfg);
  install_delivery_capture(net, fp);

  ConfigFaultParams p;
  p.drop_prob = 0.02;
  p.delay_prob = 0.02;
  p.dup_prob = 0.01;
  p.max_delay_cycles = 40;
  p.seed = 4321;
  net.enable_config_faults(p);
  drive_trace(net, storm_nn_trace(), cfg.cs_data_flits);
  net.disable_config_faults();
  const Cycle end = net.now() + 6000;
  while (net.now() < end) net.tick();
  harvest_hybrid(net, fp);
  return fp;
}

TEST(SchedulerEquivalence, NnDataflowFaultStorm) {
  const RunFingerprint active = run_nn_storm(true);
  // Non-vacuity: the pipeline delivered, its recurring pairs formed
  // circuits, and config faults actually fired against the setups.
  EXPECT_GT(active.delivered, 100u);
  EXPECT_GT(active.cs_packets, 0u);
  EXPECT_GT(active.faults_dropped + active.faults_delayed +
                active.faults_duplicated,
            0u);
  expect_same(active, run_nn_storm(false));
}

RunFingerprint run_coherence_storm(bool active_set) {
  NocConfig cfg = small_hybrid_cfg(/*sharing=*/false);
  cfg.active_set_scheduler = active_set;
  cfg.link_ber = 1e-3;
  cfg.fault_seed = 42;
  cfg.e2e_recovery = true;
  cfg.retx_timeout_cycles = 512;

  RunFingerprint fp;
  HybridNetwork net(cfg);
  install_delivery_capture(net, fp);
  net.ensure_fault_model().kill_link(6, Port::East, 1500);

  drive_trace(net, storm_coherence_trace(), cfg.cs_data_flits);
  const Cycle end = net.now() + 8000;
  while (net.now() < end) net.tick();
  harvest_hybrid(net, fp);
  return fp;
}

TEST(SchedulerEquivalence, CoherenceLinkFaultStorm) {
  const RunFingerprint active = run_coherence_storm(true);
  // Non-vacuity: bimodal traffic delivered through BER corruption, CRC
  // recovery fired, and the scheduled link death stuck.
  EXPECT_GT(active.delivered, 100u);
  EXPECT_GT(active.corrupted_traversals, 0u);
  EXPECT_GT(active.crc_flagged, 0u);
  EXPECT_EQ(active.failed_links, 1);
  expect_same(active, run_coherence_storm(false));
}

// ---------------------------------------------------------------------------
// 32x32 scale twin-runs, both engines
// ---------------------------------------------------------------------------
// The run-list scheduler's O(active) sweep only pays off at scale, and its
// stale-entry pruning and mid-sweep activation heap only see real pressure
// when thousands of components wake and sleep each cycle. These runs prove
// bit-identity holds on the large mesh, not just at the 4x4 test scale.

TEST(SchedulerEquivalence, Mesh32Uniform) {
  const NocConfig cfg = NocConfig::packet_vc4(32);
  const RunFingerprint active =
      run_packet(cfg, true, TrafficPattern::UniformRandom, 0.02, 2000, 13);
  // Non-vacuity: sparse but real traffic across the whole mesh.
  EXPECT_GT(active.delivered, 500u);
  expect_same(active, run_packet(cfg, false, TrafficPattern::UniformRandom,
                                 0.02, 2000, 13));
}

const char kMesh32NnDag[] = R"(
# 32x32 pipeline: the top edge row feeds two middle rows, which feed the
# bottom edge row — long recurring flows spanning the whole mesh.
mesh 32
layer in   0 0 32 1
layer mid  0 8 32 2
layer out  0 31 32 1
edge in  mid 8192
edge mid out 4096
)";

RunFingerprint run_mesh32_nn(bool active_set) {
  NocConfig cfg = NocConfig::hybrid_tdm_vc4(32);
  cfg.path_freq_threshold = 2;  // circuits form within the short trace
  cfg.active_set_scheduler = active_set;

  RunFingerprint fp;
  HybridNetwork net(cfg);
  install_delivery_capture(net, fp);
  const NnDescriptor d = parse_nn_descriptor_string(kMesh32NnDag, "mesh32-nn");
  NnGenParams p;
  p.iterations = 4;
  p.seed = 9;
  drive_trace(net, generate_nn_trace(d, p), cfg.cs_data_flits);
  const Cycle end = net.now() + 3000;
  while (net.now() < end) net.tick();
  harvest_hybrid(net, fp);
  return fp;
}

TEST(SchedulerEquivalence, Mesh32NnDataflow) {
  const RunFingerprint active = run_mesh32_nn(true);
  // Non-vacuity: the pipeline delivered and its recurring pairs formed
  // circuits on the large mesh.
  EXPECT_GT(active.delivered, 100u);
  EXPECT_GT(active.cs_packets, 0u);
  expect_same(active, run_mesh32_nn(false));
}

// ---------------------------------------------------------------------------
// Replayed shrunk fixtures, both engines
// ---------------------------------------------------------------------------

RunFingerprint replay_fixture(const FaultScenario& s, bool active_set) {
  NocConfig cfg = s.to_config();
  cfg.active_set_scheduler = active_set;

  RunFingerprint fp;
  HybridNetwork net(cfg);
  install_delivery_capture(net, fp);
  // Mirror run_fault_scenario's replay split: config-plane records feed the
  // dispatch-replay hook, hardware records (Link/Router) are re-derived onto
  // the fault model, fired transients replay by (link, occurrence).
  FaultTrace config_trace;
  std::vector<LinkFaultEvent> transients;
  bool any_data_records = false;
  for (const FaultRecord& r : s.faults.records) {
    if (r.kind != ConfigKind::Link && r.kind != ConfigKind::Router) {
      config_trace.records.push_back(r);
      continue;
    }
    any_data_records = true;
    FaultModel& fm = net.ensure_fault_model();
    if (r.kind == ConfigKind::Router) {
      fm.kill_router(r.src, r.cycle);
    } else if (r.action == FaultAction::Kill) {
      fm.kill_link(r.src, static_cast<Port>(r.dst), r.cycle);
    } else if (r.action == FaultAction::Stuck) {
      fm.stick_link(r.src, static_cast<Port>(r.dst), r.cycle, r.delay);
    } else {
      transients.push_back({FaultKind::Transient, r.src,
                            static_cast<Port>(r.dst), r.cycle, 0,
                            static_cast<std::uint64_t>(r.occurrence)});
    }
  }
  if (any_data_records || s.link_ber > 0.0) {
    net.ensure_fault_model().set_transient_replay(transients);
  }
  net.enable_config_fault_replay(config_trace);

  std::size_t tpos = 0;
  PacketId next_id = 1;
  const Cycle total = s.run_cycles + s.cooldown_cycles;
  while (net.now() < total) {
    const Cycle cycle = net.now();
    for (const Cycle rc : s.resizes) {
      if (rc == cycle) net.controller().request_resize();
    }
    while (tpos < s.traffic.size() && s.traffic[tpos].cycle <= cycle) {
      const TraceEntry& e = s.traffic[tpos++];
      auto p = std::make_shared<Packet>();
      p->id = next_id++;
      p->src = e.src;
      p->dst = e.dst;
      p->num_flits = e.flits;
      net.ni(e.src).send(std::move(p), net.now());
    }
    net.tick();
  }
  // One reservation lease of quiet time so orphaned entries expire (the
  // lost_teardown fixture's whole point) with the fabric mostly asleep.
  const Cycle end = net.now() + 2 * s.reservation_lease_cycles;
  while (net.now() < end) net.tick();
  harvest_hybrid(net, fp);
  return fp;
}

class FixtureEquivalence : public testing::TestWithParam<const char*> {};

TEST_P(FixtureEquivalence, ReplayedStormMatchesAcrossEngines) {
  const FaultScenario s = read_fault_scenario_file(fixture_path(GetParam()));
  expect_same(replay_fixture(s, true), replay_fixture(s, false));
}

INSTANTIATE_TEST_SUITE_P(Fixtures, FixtureEquivalence,
                         testing::Values("resize_race.scenario",
                                         "lost_teardown.scenario",
                                         "link_death_lease.scenario"),
                         [](const testing::TestParamInfo<const char*>& info) {
                           std::string n = info.param;
                           return n.substr(0, n.find('.'));
                         });

// ---------------------------------------------------------------------------
// Quiescence: fast_forward must not skip controller or lease boundaries
// ---------------------------------------------------------------------------

TEST(SchedulerQuiescence, FastForwardExecutesPendingResize) {
  NocConfig cfg = small_hybrid_cfg(/*sharing=*/false);
  cfg.dynamic_slot_sizing = true;
  cfg.initial_active_slots = 8;

  // Twin A ticks cycle by cycle; twin B fast-forwards over the same idle
  // stretch. The resize request lands mid-stretch on both.
  HybridNetwork ticked(cfg);
  HybridNetwork jumped(cfg);
  for (int i = 0; i < 50; ++i) {
    ticked.tick();
    jumped.tick();
  }
  ticked.controller().request_resize();
  jumped.controller().request_resize();
  for (int i = 0; i < 5000; ++i) ticked.tick();
  jumped.fast_forward(ticked.now());

  EXPECT_EQ(jumped.now(), ticked.now());
  EXPECT_EQ(jumped.controller().resizes(), ticked.controller().resizes());
  EXPECT_EQ(jumped.controller().table_generation(),
            ticked.controller().table_generation());
  EXPECT_EQ(jumped.controller().active_slots(),
            ticked.controller().active_slots());
  EXPECT_GE(ticked.controller().resizes(), 1);
  // The closed-form energy folding must account the resize exactly: the
  // slot-table leakage rate changes when the active region doubles.
  expect_same_energy(jumped.total_energy(), ticked.total_energy());
}

TEST(SchedulerQuiescence, FastForwardExecutesLeaseExpiry) {
  NocConfig cfg = small_hybrid_cfg(/*sharing=*/false);
  cfg.reservation_lease_cycles = 2048;

  HybridNetwork ticked(cfg);
  HybridNetwork jumped(cfg);
  // Plant an orphan reservation before the first tick (while everything is
  // still active, as a real config message would find it): with no traffic
  // ever refreshing it, only the routers' lease sweep can reclaim it — at a
  // 1024-aligned cycle past the lease. fast_forward must wake the router
  // for exactly that sweep.
  for (HybridNetwork* net : {&ticked, &jumped}) {
    ASSERT_TRUE(net->hybrid_router(5).slots().reserve(3, 2, Port::West,
                                                      Port::East, 77, 0));
  }
  const Cycle horizon = 3 * cfg.reservation_lease_cycles;
  while (ticked.now() < horizon) ticked.tick();
  jumped.fast_forward(horizon);

  EXPECT_EQ(jumped.now(), ticked.now());
  EXPECT_EQ(ticked.hybrid_router(5).expired_reservations(), 2u);
  EXPECT_EQ(jumped.hybrid_router(5).expired_reservations(), 2u);
  EXPECT_EQ(jumped.slot_state_digest(), ticked.slot_state_digest());
  EXPECT_EQ(jumped.total_valid_slot_entries(), 0);
  expect_same_energy(jumped.total_energy(), ticked.total_energy());
}

TEST(SchedulerQuiescence, FastForwardMatchesTickOnIdleNetwork) {
  // Pure closed-form check: an idle network fast-forwarded 10k cycles must
  // report exactly the energy integrals of 10k live no-op ticks.
  NocConfig cfg = NocConfig::packet_vc4(4);
  cfg.vc_power_gating = true;
  Network ticked(cfg);
  Network jumped(cfg);
  for (int i = 0; i < 10000; ++i) ticked.tick();
  jumped.fast_forward(10000);
  EXPECT_EQ(jumped.now(), ticked.now());
  expect_same_energy(jumped.total_energy(), ticked.total_energy());
}

}  // namespace
}  // namespace hybridnoc
