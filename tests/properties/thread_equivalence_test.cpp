// Bit-identity of the sharded parallel tick engine across thread counts
// (NocConfig::tick_threads). The engine partitions the mesh into contiguous
// spatial shards, ticks them on worker threads against last cycle's channel
// state, and commits cross-shard channel sends after a barrier; none of that
// may change a single observable bit relative to the single-threaded engine.
// Every scenario runs at 1, 2 and max threads and the runs must agree
// exactly on the same fingerprint the scheduler-equivalence suite checks:
// per-packet delivery cycles, every EnergyCounters field, flit-class totals,
// slot-table digests, circuit statistics, config-fault accounting and
// data-plane degradation counters. The config-fault storm and the fixture
// replays additionally cover the serial-fallback path (dispatch hooks whose
// event order is part of the artifact), and the fast-forward cases prove the
// per-shard wake heaps merge into the same quiescence jumps.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "noc/network.hpp"
#include "tdm/fault_trace.hpp"
#include "tdm/hybrid_network.hpp"
#include "traffic/synthetic.hpp"
#include "workloads/coherence.hpp"
#include "workloads/nn_dataflow.hpp"

namespace hybridnoc {
namespace {

std::string fixture_path(const std::string& name) {
  return std::string(HN_FIXTURE_DIR) + "/" + name;
}

/// Highest thread count to prove equivalence at: every core we can get,
/// floored at 3 so the shard count always exceeds 2 even on small CI boxes
/// (an odd count also exercises uneven node ranges on the 4x4 mesh).
int max_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw, 3u, 8u));
}

/// Everything one run exposes for exact comparison (the scheduler
/// equivalence fingerprint, reused verbatim).
struct RunFingerprint {
  Cycle end_cycle = 0;
  EnergyCounters energy;
  std::uint64_t delivered = 0;
  std::uint64_t ps_flits = 0;
  std::uint64_t cs_flits = 0;
  std::uint64_t config_flits = 0;
  std::uint64_t slot_digest = 0;
  std::uint64_t cs_packets = 0;
  std::uint64_t setups_sent = 0;
  std::uint64_t setup_failures = 0;
  std::uint64_t expired_reservations = 0;
  std::uint64_t stale_config_drops = 0;
  std::uint64_t faults_dropped = 0;
  std::uint64_t faults_delayed = 0;
  std::uint64_t faults_duplicated = 0;
  int resizes = 0;
  std::uint64_t generation = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t retx_give_ups = 0;
  std::uint64_t crc_flagged = 0;
  std::uint64_t crc_squashed = 0;
  std::uint64_t e2e_acks = 0;
  std::uint64_t e2e_dup_dropped = 0;
  std::uint64_t cs_fault_teardowns = 0;
  std::uint64_t corrupted_traversals = 0;
  int failed_links = 0;
  /// Packet id -> delivery cycle. Injection schedules are identical across
  /// the twin runs, so equal delivery cycles mean equal latencies.
  std::map<PacketId, Cycle> deliveries;
};

void expect_same_energy(const EnergyCounters& a, const EnergyCounters& b) {
  EXPECT_EQ(a.buffer_writes, b.buffer_writes);
  EXPECT_EQ(a.buffer_reads, b.buffer_reads);
  EXPECT_EQ(a.xbar_flits, b.xbar_flits);
  EXPECT_EQ(a.vc_arbs, b.vc_arbs);
  EXPECT_EQ(a.sw_arbs, b.sw_arbs);
  EXPECT_EQ(a.link_flits, b.link_flits);
  EXPECT_EQ(a.slot_table_reads, b.slot_table_reads);
  EXPECT_EQ(a.slot_table_writes, b.slot_table_writes);
  EXPECT_EQ(a.dlt_accesses, b.dlt_accesses);
  EXPECT_EQ(a.cs_latch_flits, b.cs_latch_flits);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.vc_active_cycles, b.vc_active_cycles);
  EXPECT_EQ(a.slot_entry_active_cycles, b.slot_entry_active_cycles);
  EXPECT_EQ(a.dlt_active_cycles, b.dlt_active_cycles);
  EXPECT_EQ(a.cs_misc_active_cycles, b.cs_misc_active_cycles);
  EXPECT_EQ(a.link_active_cycles, b.link_active_cycles);
}

void expect_same(const RunFingerprint& a, const RunFingerprint& b) {
  EXPECT_EQ(a.end_cycle, b.end_cycle);
  expect_same_energy(a.energy, b.energy);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.ps_flits, b.ps_flits);
  EXPECT_EQ(a.cs_flits, b.cs_flits);
  EXPECT_EQ(a.config_flits, b.config_flits);
  EXPECT_EQ(a.slot_digest, b.slot_digest);
  EXPECT_EQ(a.cs_packets, b.cs_packets);
  EXPECT_EQ(a.setups_sent, b.setups_sent);
  EXPECT_EQ(a.setup_failures, b.setup_failures);
  EXPECT_EQ(a.expired_reservations, b.expired_reservations);
  EXPECT_EQ(a.stale_config_drops, b.stale_config_drops);
  EXPECT_EQ(a.faults_dropped, b.faults_dropped);
  EXPECT_EQ(a.faults_delayed, b.faults_delayed);
  EXPECT_EQ(a.faults_duplicated, b.faults_duplicated);
  EXPECT_EQ(a.resizes, b.resizes);
  EXPECT_EQ(a.generation, b.generation);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.retx_give_ups, b.retx_give_ups);
  EXPECT_EQ(a.crc_flagged, b.crc_flagged);
  EXPECT_EQ(a.crc_squashed, b.crc_squashed);
  EXPECT_EQ(a.e2e_acks, b.e2e_acks);
  EXPECT_EQ(a.e2e_dup_dropped, b.e2e_dup_dropped);
  EXPECT_EQ(a.cs_fault_teardowns, b.cs_fault_teardowns);
  EXPECT_EQ(a.corrupted_traversals, b.corrupted_traversals);
  EXPECT_EQ(a.failed_links, b.failed_links);
  EXPECT_EQ(a.deliveries, b.deliveries);
}

template <typename NetT>
void install_delivery_capture(NetT& net, RunFingerprint& fp) {
  net.set_deliver_handler([&fp](const PacketPtr& p, Cycle at) {
    ++fp.delivered;
    fp.deliveries.emplace(p->id, at);
  });
}

template <typename NetT>
void harvest_common(NetT& net, RunFingerprint& fp) {
  fp.end_cycle = net.now();
  fp.energy = net.total_energy();
  fp.ps_flits = net.total_ps_flits();
  fp.cs_flits = net.total_cs_flits();
  fp.config_flits = net.total_config_flits();
}

void harvest_hybrid(HybridNetwork& net, RunFingerprint& fp) {
  harvest_common(net, fp);
  const DegradationReport d = net.degradation_report();
  fp.retransmits = d.retransmits;
  fp.retx_give_ups = d.retx_give_ups;
  fp.crc_flagged = d.crc_flagged_flits;
  fp.crc_squashed = d.crc_squashed_packets;
  fp.e2e_acks = d.e2e_acks_sent;
  fp.e2e_dup_dropped = d.e2e_duplicates_dropped;
  fp.cs_fault_teardowns = net.total_cs_fault_teardowns();
  fp.corrupted_traversals = d.corrupted_traversals;
  fp.failed_links = d.failed_links;
  fp.slot_digest = net.slot_state_digest();
  fp.cs_packets = net.total_cs_packets();
  fp.setups_sent = net.total_setups_sent();
  fp.setup_failures = net.total_setup_failures();
  fp.expired_reservations = net.total_expired_reservations();
  fp.stale_config_drops = net.total_stale_config_drops();
  fp.faults_dropped = net.faults_dropped();
  fp.faults_delayed = net.faults_delayed();
  fp.faults_duplicated = net.faults_duplicated();
  fp.resizes = net.controller().resizes();
  fp.generation = net.controller().table_generation();
}

/// Inject from a seeded synthetic source every cycle for `cycles` cycles.
/// The traffic stream is a pure function of (pattern, rate, seed), so every
/// twin run sees the identical schedule.
template <typename NetT>
void drive_synthetic(NetT& net, TrafficPattern pattern, double rate,
                     Cycle cycles, std::uint64_t seed) {
  SyntheticTraffic traffic(net.mesh(), pattern, rate, 5, seed);
  PacketId next_id = 1;
  while (net.now() < cycles) {
    traffic.generate([&](NodeId src, NodeId dst) {
      auto p = std::make_shared<Packet>();
      p->id = next_id++;
      p->src = src;
      p->dst = dst;
      p->num_flits = 5;
      net.ni(src).send(std::move(p), net.now());
    });
    net.tick();
  }
}

RunFingerprint run_packet(NocConfig cfg, int threads, TrafficPattern pattern,
                          double rate, Cycle cycles, std::uint64_t seed) {
  cfg.tick_threads = threads;
  RunFingerprint fp;
  Network net(cfg);
  install_delivery_capture(net, fp);
  drive_synthetic(net, pattern, rate, cycles, seed);
  // An idle drain tail exercises shard quiescence and delivery staging.
  const Cycle end = net.now() + 3000;
  while (net.now() < end) net.tick();
  harvest_common(net, fp);
  return fp;
}

RunFingerprint run_hybrid(NocConfig cfg, int threads, TrafficPattern pattern,
                          double rate, Cycle cycles, std::uint64_t seed) {
  cfg.tick_threads = threads;
  RunFingerprint fp;
  HybridNetwork net(cfg);
  install_delivery_capture(net, fp);
  drive_synthetic(net, pattern, rate, cycles, seed);
  const Cycle end = net.now() + 3000;
  while (net.now() < end) net.tick();
  harvest_hybrid(net, fp);
  return fp;
}

NocConfig small_hybrid_cfg(bool sharing) {
  NocConfig cfg =
      sharing ? NocConfig::hybrid_tdm_hop_vc4(4) : NocConfig::hybrid_tdm_vc4(4);
  cfg.slot_table_size = 32;
  cfg.initial_active_slots = 16;
  cfg.path_freq_threshold = 4;  // circuits form quickly at test scale
  return cfg;
}

// ---------------------------------------------------------------------------
// Seeded traffic at 1 / 2 / max threads
// ---------------------------------------------------------------------------

TEST(ThreadEquivalence, PacketSwitchedUniform) {
  const NocConfig cfg = NocConfig::packet_vc4(4);
  const RunFingerprint one =
      run_packet(cfg, 1, TrafficPattern::UniformRandom, 0.12, 5000, 11);
  EXPECT_GT(one.delivered, 100u);  // non-vacuity
  expect_same(one,
              run_packet(cfg, 2, TrafficPattern::UniformRandom, 0.12, 5000, 11));
  expect_same(one, run_packet(cfg, max_threads(), TrafficPattern::UniformRandom,
                              0.12, 5000, 11));
}

TEST(ThreadEquivalence, PacketSwitchedLegacySweep) {
  // The parallel engine must also reproduce the legacy full sweep when the
  // active-set scheduler is configured off (per-shard sweeps, no wake heaps).
  NocConfig cfg = NocConfig::packet_vc4(4);
  cfg.active_set_scheduler = false;
  const RunFingerprint one =
      run_packet(cfg, 1, TrafficPattern::Hotspot, 0.08, 4000, 7);
  expect_same(one, run_packet(cfg, max_threads(), TrafficPattern::Hotspot, 0.08,
                              4000, 7));
}

TEST(ThreadEquivalence, HybridUniform) {
  const NocConfig cfg = small_hybrid_cfg(/*sharing=*/false);
  const RunFingerprint one =
      run_hybrid(cfg, 1, TrafficPattern::UniformRandom, 0.10, 6000, 21);
  // Non-vacuity: the scenario must actually exercise delivery and circuits.
  EXPECT_GT(one.delivered, 100u);
  EXPECT_GT(one.cs_packets, 0u);
  expect_same(one,
              run_hybrid(cfg, 2, TrafficPattern::UniformRandom, 0.10, 6000, 21));
  expect_same(one, run_hybrid(cfg, max_threads(), TrafficPattern::UniformRandom,
                              0.10, 6000, 21));
}

TEST(ThreadEquivalence, HybridSharingHotspot) {
  const NocConfig cfg = small_hybrid_cfg(/*sharing=*/true);
  const RunFingerprint one =
      run_hybrid(cfg, 1, TrafficPattern::Hotspot, 0.08, 6000, 31);
  expect_same(one, run_hybrid(cfg, 2, TrafficPattern::Hotspot, 0.08, 6000, 31));
  expect_same(one, run_hybrid(cfg, max_threads(), TrafficPattern::Hotspot, 0.08,
                              6000, 31));
}

// ---------------------------------------------------------------------------
// Seeded config-fault storm (serial-fallback path) at 1 / 2 / max threads
// ---------------------------------------------------------------------------

RunFingerprint run_storm(int threads) {
  NocConfig cfg = small_hybrid_cfg(/*sharing=*/false);
  cfg.dynamic_slot_sizing = true;
  cfg.initial_active_slots = 8;
  cfg.tick_threads = threads;

  RunFingerprint fp;
  HybridNetwork net(cfg);
  install_delivery_capture(net, fp);

  // Seeded dispatch faults force the engine's serial fallback (the fault RNG
  // stream is order-defined); disabling them mid-run below also proves the
  // fallback hand-off back to parallel cycles is seamless.
  ConfigFaultParams p;
  p.drop_prob = 0.02;
  p.delay_prob = 0.02;
  p.dup_prob = 0.01;
  p.max_delay_cycles = 40;
  p.seed = 1234;
  net.enable_config_faults(p);

  SyntheticTraffic traffic(net.mesh(), TrafficPattern::UniformRandom, 0.10, 5,
                           99);
  PacketId next_id = 1;
  while (net.now() < 8000) {
    if (net.now() == 2500 || net.now() == 5500) {
      net.controller().request_resize();
    }
    traffic.generate([&](NodeId src, NodeId dst) {
      auto p2 = std::make_shared<Packet>();
      p2->id = next_id++;
      p2->src = src;
      p2->dst = dst;
      p2->num_flits = 5;
      net.ni(src).send(std::move(p2), net.now());
    });
    net.tick();
  }
  net.disable_config_faults();
  // Fault-free cooldown runs parallel again: timeouts fire and the lease
  // reclaims orphans with the fabric mostly asleep.
  const Cycle end = net.now() + 6000;
  while (net.now() < end) net.tick();
  harvest_hybrid(net, fp);
  return fp;
}

TEST(ThreadEquivalence, SeededConfigFaultStorm) {
  const RunFingerprint one = run_storm(1);
  // Non-vacuity: faults and resizes must actually have fired.
  EXPECT_GT(one.faults_dropped + one.faults_delayed + one.faults_duplicated,
            0u);
  EXPECT_GE(one.resizes, 1);
  expect_same(one, run_storm(2));
  expect_same(one, run_storm(max_threads()));
}

// ---------------------------------------------------------------------------
// Seeded link-fault storm (parallel data-plane faults) at 1 / 2 / max threads
// ---------------------------------------------------------------------------

RunFingerprint run_link_fault_storm(int threads) {
  NocConfig cfg = small_hybrid_cfg(/*sharing=*/false);
  cfg.tick_threads = threads;
  // Data-plane faults run fully parallel: corruption draws are stateless
  // hashes of (seed, link, traversal count) and each directed link has one
  // upstream writer, so shard interleaving cannot change a decision; the
  // routing detours read topology caches precomputed serially each cycle.
  cfg.link_ber = 1e-3;
  cfg.fault_seed = 77;
  cfg.e2e_recovery = true;
  cfg.retx_timeout_cycles = 512;

  RunFingerprint fp;
  HybridNetwork net(cfg);
  install_delivery_capture(net, fp);
  FaultModel& fm = net.ensure_fault_model();
  fm.kill_link(5, Port::East, 2500);
  fm.stick_link(9, Port::North, 4000, 600);

  drive_synthetic(net, TrafficPattern::UniformRandom, 0.08, 6000, 17);
  const Cycle end = net.now() + 8000;
  while (net.now() < end) net.tick();
  harvest_hybrid(net, fp);
  return fp;
}

TEST(ThreadEquivalence, SeededLinkFaultStorm) {
  const RunFingerprint one = run_link_fault_storm(1);
  // Non-vacuity: transients fired and were recovered, and the scheduled
  // link death is live in the final report.
  EXPECT_GT(one.corrupted_traversals, 0u);
  EXPECT_GT(one.crc_flagged, 0u);
  EXPECT_GT(one.retransmits, 0u);
  EXPECT_EQ(one.failed_links, 1);
  EXPECT_GT(one.delivered, 100u);
  expect_same(one, run_link_fault_storm(2));
  expect_same(one, run_link_fault_storm(max_threads()));
}

// ---------------------------------------------------------------------------
// Workload-zoo storms at 1 / 2 / max threads
// ---------------------------------------------------------------------------
// Application-shaped substrates for the shard barrier: the NN pipeline's
// bursty circuit-forming flows and the coherence mix of short control and
// data messages (with short entries circuit-ineligible, mirroring
// run_trace's rule) must tick identically at every thread count.

const char kStormNnDag[] = R"(
mesh 4
layer in   0 0 4 1
layer mid  0 1 4 2
layer out  0 3 4 1
edge in  mid 4096
edge mid out 2048
)";

/// Replay a workload trace once through (no looping).
void drive_trace(HybridNetwork& net, const std::vector<TraceEntry>& entries,
                 int cs_data_flits) {
  std::size_t pos = 0;
  PacketId next_id = 1;
  const Cycle total = entries.back().cycle + 1;
  while (net.now() < total) {
    while (pos < entries.size() && entries[pos].cycle <= net.now()) {
      const TraceEntry& e = entries[pos++];
      auto p = std::make_shared<Packet>();
      p->id = next_id++;
      p->src = e.src;
      p->dst = e.dst;
      p->num_flits = e.flits;
      p->cs_eligible = e.flits >= cs_data_flits;
      net.ni(e.src).send(std::move(p), net.now());
    }
    net.tick();
  }
}

RunFingerprint run_nn_storm(int threads) {
  NocConfig cfg = small_hybrid_cfg(/*sharing=*/false);
  cfg.tick_threads = threads;
  cfg.link_ber = 1e-3;
  cfg.fault_seed = 57;
  cfg.e2e_recovery = true;
  cfg.retx_timeout_cycles = 512;

  RunFingerprint fp;
  HybridNetwork net(cfg);
  install_delivery_capture(net, fp);
  net.ensure_fault_model().stick_link(9, Port::North, 400, 300);

  const NnDescriptor d = parse_nn_descriptor_string(kStormNnDag, "storm-nn");
  NnGenParams p;
  p.iterations = 6;
  p.seed = 3;
  drive_trace(net, generate_nn_trace(d, p), cfg.cs_data_flits);
  const Cycle end = net.now() + 8000;
  while (net.now() < end) net.tick();
  harvest_hybrid(net, fp);
  return fp;
}

TEST(ThreadEquivalence, NnDataflowStorm) {
  const RunFingerprint one = run_nn_storm(1);
  // Non-vacuity: the pipeline delivered, formed circuits, and the BER storm
  // fired through them.
  EXPECT_GT(one.delivered, 100u);
  EXPECT_GT(one.cs_packets, 0u);
  EXPECT_GT(one.corrupted_traversals, 0u);
  expect_same(one, run_nn_storm(2));
  expect_same(one, run_nn_storm(max_threads()));
}

RunFingerprint run_coherence_storm(int threads) {
  NocConfig cfg = small_hybrid_cfg(/*sharing=*/false);
  cfg.dynamic_slot_sizing = true;
  cfg.initial_active_slots = 8;
  cfg.tick_threads = threads;

  RunFingerprint fp;
  HybridNetwork net(cfg);
  install_delivery_capture(net, fp);

  // Config faults exercise the serial fallback under the bimodal mix.
  ConfigFaultParams p;
  p.drop_prob = 0.02;
  p.delay_prob = 0.02;
  p.dup_prob = 0.01;
  p.max_delay_cycles = 40;
  p.seed = 2468;
  net.enable_config_faults(p);

  CoherenceParams cp;
  cp.k = 4;
  cp.cycles = 3000;
  cp.request_rate = 0.04;
  cp.seed = 5;
  drive_trace(net, generate_coherence_trace(cp).entries, cfg.cs_data_flits);
  net.disable_config_faults();
  const Cycle end = net.now() + 6000;
  while (net.now() < end) net.tick();
  harvest_hybrid(net, fp);
  return fp;
}

TEST(ThreadEquivalence, CoherenceStorm) {
  const RunFingerprint one = run_coherence_storm(1);
  // Non-vacuity: requests and replies delivered, and config faults fired.
  EXPECT_GT(one.delivered, 100u);
  EXPECT_GT(one.faults_dropped + one.faults_delayed + one.faults_duplicated,
            0u);
  expect_same(one, run_coherence_storm(2));
  expect_same(one, run_coherence_storm(max_threads()));
}

// ---------------------------------------------------------------------------
// 32x32 scale twin-runs at 1 / max threads
// ---------------------------------------------------------------------------
// At k=32 with max_threads() <= 8 shards the engine uses its row-aligned
// partitioning (only North/South links stage across seams); these runs prove
// that partitioning and the per-shard run-list sweeps keep bit-identity at
// the scale they were built for.

TEST(ThreadEquivalence, Mesh32Uniform) {
  const NocConfig cfg = NocConfig::packet_vc4(32);
  const RunFingerprint one =
      run_packet(cfg, 1, TrafficPattern::UniformRandom, 0.02, 2000, 13);
  // Non-vacuity: sparse but real traffic across the whole mesh.
  EXPECT_GT(one.delivered, 500u);
  expect_same(one, run_packet(cfg, max_threads(), TrafficPattern::UniformRandom,
                              0.02, 2000, 13));
}

const char kMesh32NnDag[] = R"(
# 32x32 pipeline: the top edge row feeds two middle rows, which feed the
# bottom edge row — long recurring flows spanning the whole mesh.
mesh 32
layer in   0 0 32 1
layer mid  0 8 32 2
layer out  0 31 32 1
edge in  mid 8192
edge mid out 4096
)";

RunFingerprint run_mesh32_nn(int threads) {
  NocConfig cfg = NocConfig::hybrid_tdm_vc4(32);
  cfg.path_freq_threshold = 2;  // circuits form within the short trace
  cfg.tick_threads = threads;

  RunFingerprint fp;
  HybridNetwork net(cfg);
  install_delivery_capture(net, fp);
  const NnDescriptor d = parse_nn_descriptor_string(kMesh32NnDag, "mesh32-nn");
  NnGenParams p;
  p.iterations = 4;
  p.seed = 9;
  drive_trace(net, generate_nn_trace(d, p), cfg.cs_data_flits);
  const Cycle end = net.now() + 3000;
  while (net.now() < end) net.tick();
  harvest_hybrid(net, fp);
  return fp;
}

TEST(ThreadEquivalence, Mesh32NnDataflow) {
  const RunFingerprint one = run_mesh32_nn(1);
  // Non-vacuity: the pipeline delivered and formed circuits on the large
  // mesh across every row seam.
  EXPECT_GT(one.delivered, 100u);
  EXPECT_GT(one.cs_packets, 0u);
  expect_same(one, run_mesh32_nn(max_threads()));
}

// ---------------------------------------------------------------------------
// Golden fixture replays at 1 / 2 / max threads
// ---------------------------------------------------------------------------

RunFingerprint replay_fixture(const FaultScenario& s, int threads) {
  NocConfig cfg = s.to_config();
  cfg.tick_threads = threads;

  RunFingerprint fp;
  HybridNetwork net(cfg);
  install_delivery_capture(net, fp);
  // Mirror run_fault_scenario's replay split: config-plane records feed the
  // dispatch-replay hook, hardware records (Link/Router) are re-derived onto
  // the fault model, fired transients replay by (link, occurrence).
  FaultTrace config_trace;
  std::vector<LinkFaultEvent> transients;
  bool any_data_records = false;
  for (const FaultRecord& r : s.faults.records) {
    if (r.kind != ConfigKind::Link && r.kind != ConfigKind::Router) {
      config_trace.records.push_back(r);
      continue;
    }
    any_data_records = true;
    FaultModel& fm = net.ensure_fault_model();
    if (r.kind == ConfigKind::Router) {
      fm.kill_router(r.src, r.cycle);
    } else if (r.action == FaultAction::Kill) {
      fm.kill_link(r.src, static_cast<Port>(r.dst), r.cycle);
    } else if (r.action == FaultAction::Stuck) {
      fm.stick_link(r.src, static_cast<Port>(r.dst), r.cycle, r.delay);
    } else {
      transients.push_back({FaultKind::Transient, r.src,
                            static_cast<Port>(r.dst), r.cycle, 0,
                            static_cast<std::uint64_t>(r.occurrence)});
    }
  }
  if (any_data_records || s.link_ber > 0.0) {
    net.ensure_fault_model().set_transient_replay(transients);
  }
  net.enable_config_fault_replay(config_trace);

  std::size_t tpos = 0;
  PacketId next_id = 1;
  const Cycle total = s.run_cycles + s.cooldown_cycles;
  while (net.now() < total) {
    const Cycle cycle = net.now();
    for (const Cycle rc : s.resizes) {
      if (rc == cycle) net.controller().request_resize();
    }
    while (tpos < s.traffic.size() && s.traffic[tpos].cycle <= cycle) {
      const TraceEntry& e = s.traffic[tpos++];
      auto p = std::make_shared<Packet>();
      p->id = next_id++;
      p->src = e.src;
      p->dst = e.dst;
      p->num_flits = e.flits;
      net.ni(e.src).send(std::move(p), net.now());
    }
    net.tick();
  }
  const Cycle end = net.now() + 2 * s.reservation_lease_cycles;
  while (net.now() < end) net.tick();
  harvest_hybrid(net, fp);
  return fp;
}

class ThreadFixtureEquivalence : public testing::TestWithParam<const char*> {};

TEST_P(ThreadFixtureEquivalence, ReplayedStormMatchesAcrossThreadCounts) {
  const FaultScenario s = read_fault_scenario_file(fixture_path(GetParam()));
  const RunFingerprint one = replay_fixture(s, 1);
  expect_same(one, replay_fixture(s, 2));
  expect_same(one, replay_fixture(s, max_threads()));
}

INSTANTIATE_TEST_SUITE_P(Fixtures, ThreadFixtureEquivalence,
                         testing::Values("resize_race.scenario",
                                         "lost_teardown.scenario",
                                         "link_death_lease.scenario"),
                         [](const testing::TestParamInfo<const char*>& info) {
                           std::string n = info.param;
                           return n.substr(0, n.find('.'));
                         });

// ---------------------------------------------------------------------------
// Fast-forward: merged per-shard quiescence
// ---------------------------------------------------------------------------

TEST(ThreadQuiescence, FastForwardExecutesPendingResize) {
  NocConfig cfg = small_hybrid_cfg(/*sharing=*/false);
  cfg.dynamic_slot_sizing = true;
  cfg.initial_active_slots = 8;

  // Twin A ticks cycle by cycle single-threaded; twin B fast-forwards the
  // same stretch with sharded wake heaps — the jump target is the minimum
  // over every shard's heap and must not skip the resize poll.
  NocConfig cfg_parallel = cfg;
  cfg_parallel.tick_threads = max_threads();
  HybridNetwork ticked(cfg);
  HybridNetwork jumped(cfg_parallel);
  for (int i = 0; i < 50; ++i) {
    ticked.tick();
    jumped.tick();
  }
  ticked.controller().request_resize();
  jumped.controller().request_resize();
  for (int i = 0; i < 5000; ++i) ticked.tick();
  jumped.fast_forward(ticked.now());

  EXPECT_EQ(jumped.now(), ticked.now());
  EXPECT_EQ(jumped.controller().resizes(), ticked.controller().resizes());
  EXPECT_EQ(jumped.controller().table_generation(),
            ticked.controller().table_generation());
  EXPECT_GE(ticked.controller().resizes(), 1);
  expect_same_energy(jumped.total_energy(), ticked.total_energy());
}

TEST(ThreadQuiescence, FastForwardExecutesLeaseExpiry) {
  NocConfig cfg = small_hybrid_cfg(/*sharing=*/false);
  cfg.reservation_lease_cycles = 2048;
  NocConfig cfg_parallel = cfg;
  cfg_parallel.tick_threads = max_threads();

  HybridNetwork ticked(cfg);
  HybridNetwork jumped(cfg_parallel);
  // Orphan reservation on a router in a middle shard: only that shard's
  // lease sweep can reclaim it, so the merged quiescence must wake exactly
  // that shard at the 1024-aligned sweep past the lease.
  for (HybridNetwork* net : {&ticked, &jumped}) {
    ASSERT_TRUE(net->hybrid_router(5).slots().reserve(3, 2, Port::West,
                                                      Port::East, 77, 0));
  }
  const Cycle horizon = 3 * cfg.reservation_lease_cycles;
  while (ticked.now() < horizon) ticked.tick();
  jumped.fast_forward(horizon);

  EXPECT_EQ(jumped.now(), ticked.now());
  EXPECT_EQ(ticked.hybrid_router(5).expired_reservations(), 2u);
  EXPECT_EQ(jumped.hybrid_router(5).expired_reservations(), 2u);
  EXPECT_EQ(jumped.slot_state_digest(), ticked.slot_state_digest());
  EXPECT_EQ(jumped.total_valid_slot_entries(), 0);
  expect_same_energy(jumped.total_energy(), ticked.total_energy());
}

// ---------------------------------------------------------------------------
// Config guard
// ---------------------------------------------------------------------------

TEST(ThreadEquivalence, ValidateRejectsGatingWithThreads) {
  // vc_power_gating announcements cross router boundaries without a
  // pipelined channel, the one communication path the shard barrier cannot
  // make order-independent; the config must refuse the combination.
  NocConfig cfg = NocConfig::packet_vc4(4);
  cfg.vc_power_gating = true;
  cfg.tick_threads = 4;
  EXPECT_DEATH({ Network net(cfg); }, "vc_power_gating");
}

}  // namespace
}  // namespace hybridnoc
