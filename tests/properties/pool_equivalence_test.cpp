// Pool-on/pool-off twin runs: the block pool is a pure allocation-layer
// optimisation, so switching it off (the shared_ptr-compatible fallback the
// sanitizer builds force) must not perturb a single observable — RunResult
// statistics and every energy counter are bit-identical. This is what lets
// the asan/tsan legs (which compile with HN_POOL_DISABLED) vouch for the
// exact behaviour the pooled production binary exhibits.
#include <gtest/gtest.h>

#include "common/pool.hpp"
#include "sim/driver.hpp"

namespace hybridnoc {
namespace {

RunParams loaded_params() {
  RunParams p;
  p.pattern = TrafficPattern::UniformRandom;
  p.injection_rate = 0.3;
  p.warmup_packets = 200;
  p.warmup_min_cycles = 500;
  p.measure_packets = 3000;
  p.seed = 7;
  return p;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.measured_packets, b.measured_packets);
  EXPECT_EQ(a.saturated, b.saturated);
  EXPECT_EQ(a.offered_rate, b.offered_rate);
  EXPECT_EQ(a.accepted_rate, b.accepted_rate);
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.cs_flit_fraction, b.cs_flit_fraction);
  EXPECT_EQ(a.config_flit_fraction, b.config_flit_fraction);
  EXPECT_EQ(a.energy.buffer_writes, b.energy.buffer_writes);
  EXPECT_EQ(a.energy.buffer_reads, b.energy.buffer_reads);
  EXPECT_EQ(a.energy.xbar_flits, b.energy.xbar_flits);
  EXPECT_EQ(a.energy.vc_arbs, b.energy.vc_arbs);
  EXPECT_EQ(a.energy.sw_arbs, b.energy.sw_arbs);
  EXPECT_EQ(a.energy.link_flits, b.energy.link_flits);
  EXPECT_EQ(a.energy.slot_table_reads, b.energy.slot_table_reads);
  EXPECT_EQ(a.energy.slot_table_writes, b.energy.slot_table_writes);
  EXPECT_EQ(a.energy.dlt_accesses, b.energy.dlt_accesses);
  EXPECT_EQ(a.energy.cs_latch_flits, b.energy.cs_latch_flits);
  EXPECT_EQ(a.energy.cycles, b.energy.cycles);
  EXPECT_EQ(a.energy.vc_active_cycles, b.energy.vc_active_cycles);
  EXPECT_EQ(a.energy.slot_entry_active_cycles, b.energy.slot_entry_active_cycles);
  EXPECT_EQ(a.energy.dlt_active_cycles, b.energy.dlt_active_cycles);
  EXPECT_EQ(a.energy.cs_misc_active_cycles, b.energy.cs_misc_active_cycles);
  EXPECT_EQ(a.energy.link_active_cycles, b.energy.link_active_cycles);
}

class PoolTwinRun : public ::testing::TestWithParam<const char*> {};

TEST_P(PoolTwinRun, PoolOnAndPoolOffRunsAreBitIdentical) {
  const NocConfig cfg = std::string(GetParam()) == "tdm"
                            ? NocConfig::hybrid_tdm_vc4(6)
                            : NocConfig::packet_vc4(6);
  const RunParams params = loaded_params();

  BlockPool::set_enabled(true);
  const RunResult pooled = run_synthetic(cfg, params);

  // trim() drops every cached block so the off run starts from the same
  // cold allocator state as a fresh sanitizer-built process.
  BlockPool::set_enabled(false);
  BlockPool::instance().trim();
  const RunResult fallback = run_synthetic(cfg, params);
  BlockPool::set_enabled(true);

  expect_identical(pooled, fallback);
}

INSTANTIATE_TEST_SUITE_P(Archs, PoolTwinRun,
                         ::testing::Values("packet", "tdm"));

}  // namespace
}  // namespace hybridnoc
