#include "hetero/hetero_system.hpp"

#include <gtest/gtest.h>

#include "tdm/hybrid_network.hpp"

namespace hybridnoc {
namespace {

WorkloadMix mix(const char* cpu, const char* gpu) {
  return {cpu_benchmark(cpu), gpu_benchmark(gpu)};
}

TEST(TileMap, Hetero36Composition) {
  const TileMap t = TileMap::hetero36();
  EXPECT_EQ(t.num_tiles(), 36);
  EXPECT_EQ(t.cpus().size(), 8u);       // 8 CPU tiles (8 CPU benchmarks' threads)
  EXPECT_EQ(t.l2_banks().size(), 12u);  // banked shared L2
  EXPECT_EQ(t.accels().size(), 12u);    // accelerator tiles
  EXPECT_EQ(t.mems().size(), 4u);       // Table II: 4 memory controllers
  // Memory controllers sit at the corners (Figure 7 edges).
  EXPECT_EQ(t.type(0), TileType::Mem);
  EXPECT_EQ(t.type(5), TileType::Mem);
  EXPECT_EQ(t.type(30), TileType::Mem);
  EXPECT_EQ(t.type(35), TileType::Mem);
}

TEST(TileMap, AddressInterleaving) {
  const TileMap t = TileMap::hetero36();
  // Home functions cover every bank/controller.
  std::set<NodeId> banks, mems;
  for (std::uint64_t a = 0; a < 100; ++a) {
    banks.insert(t.l2_home(a));
    mems.insert(t.mem_home(a));
  }
  EXPECT_EQ(banks.size(), 12u);
  EXPECT_EQ(mems.size(), 4u);
}

TEST(Benchmarks, RegistryMatchesPaperLists) {
  EXPECT_EQ(cpu_benchmarks().size(), 8u);
  EXPECT_EQ(gpu_benchmarks().size(), 7u);
  EXPECT_EQ(cpu_benchmark("SWIM").name, "SWIM");
  EXPECT_DOUBLE_EQ(gpu_benchmark("BLACKSCHOLES").paper_injection, 0.18);
  EXPECT_DOUBLE_EQ(gpu_benchmark("STO").paper_cs_percent, 18.5);
  // 8 x 7 = 56 workload mixes, as evaluated in Section V.
  EXPECT_EQ(cpu_benchmarks().size() * gpu_benchmarks().size(), 56u);
}

TEST(ServiceQueueTest, LatencyAndBandwidth) {
  ServiceQueue q(200, 4);
  EXPECT_EQ(q.push(1, 10), 210u);  // 200-cycle latency
  EXPECT_EQ(q.push(2, 10), 214u);  // second request waits for the port
  EXPECT_EQ(q.push(3, 100), 300u);
  int drained = 0;
  q.drain(250, [&](std::uint64_t) { ++drained; });
  EXPECT_EQ(drained, 2);
  q.drain(300, [&](std::uint64_t) { ++drained; });
  EXPECT_EQ(drained, 3);
}

TEST(HeteroSystem, TransactionsFlowAndComplete) {
  HeteroSystem sys(NocConfig::packet_vc4(6), mix("APPLU", "BLACKSCHOLES"), 1);
  const auto m = sys.run(2000, 8000);
  EXPECT_GT(m.cpu_ipc, 0.5);
  EXPECT_LE(m.cpu_ipc, 1.4);  // bounded by APPLU's peak IPC
  EXPECT_GT(m.gpu_throughput, 0.1);
  EXPECT_GT(m.injection_rate, 0.05);
  // Transactions do not leak.
  EXPECT_LT(sys.outstanding_transactions(), 3000u);
}

TEST(HeteroSystem, GpuInjectionTracksTableIII) {
  // The calibration target: measured GPU injection within 25% of the
  // paper's Table III for every benchmark (at modest window sizes).
  for (const auto& g : gpu_benchmarks()) {
    HeteroSystem sys(NocConfig::packet_vc4(6), {cpu_benchmark("APPLU"), g}, 1);
    const auto m = sys.run(4000, 10000);
    EXPECT_NEAR(m.gpu_injection_rate, g.paper_injection, g.paper_injection * 0.25)
        << g.name;
  }
}

TEST(HeteroSystem, CpuTrafficIsModerateAndPacketSwitched) {
  HeteroSystem sys(NocConfig::hybrid_tdm_vc4(6), mix("SWIM", "BLACKSCHOLES"), 1);
  const auto m = sys.run(4000, 10000);
  // CPU packets are a small portion of total on-chip traffic (Section V-B1)...
  EXPECT_LT(m.cpu_injection_rate, 0.5 * m.gpu_injection_rate);
  EXPECT_GT(m.cpu_injection_rate, 0.0);
  // ...and all circuit-switched flits belong to GPU traffic: with CPU-only
  // eligibility disabled there would be none.
  EXPECT_GT(m.cs_flit_fraction, 0.0);
}

TEST(HeteroSystem, HybridCircuitSwitchesGpuTraffic) {
  HeteroSystem sys(NocConfig::hybrid_tdm_vc4(6), mix("APPLU", "BLACKSCHOLES"), 1);
  const auto m = sys.run(6000, 15000);
  // BLACKSCHOLES: Table III reports 55.7% circuit-switched flits.
  EXPECT_GT(m.cs_flit_fraction, 0.35);
  EXPECT_LT(m.cs_flit_fraction, 0.75);
  EXPECT_LT(m.config_flit_fraction, 0.01);  // <1% config traffic (Section II-B)
}

TEST(HeteroSystem, HybridSavesNetworkEnergy) {
  const auto P = EnergyParams::nangate45();
  HeteroSystem base(NocConfig::packet_vc4(6), mix("APPLU", "LPS"), 1);
  HeteroSystem hyb(NocConfig::hybrid_tdm_vc4(6), mix("APPLU", "LPS"), 1);
  const auto mb = base.run(5000, 15000);
  const auto mh = hyb.run(5000, 15000);
  const double eb = compute_breakdown(mb.energy, P).total();
  const double eh = compute_breakdown(mh.energy, P).total();
  EXPECT_LT(eh, eb);  // Figure 8(a): hybrid reduces network energy
  // Performance is not destroyed in the process (Figure 8(b,c)).
  EXPECT_GT(mh.cpu_ipc, 0.95 * mb.cpu_ipc);
  EXPECT_GT(mh.gpu_throughput, 0.90 * mb.gpu_throughput);
}

TEST(HeteroSystem, VcGatingAddsStaticSavings) {
  const auto P = EnergyParams::nangate45();
  HeteroSystem plain(NocConfig::hybrid_tdm_hop_vc4(6), mix("GAFORT", "STO"), 1);
  HeteroSystem gated(NocConfig::hybrid_tdm_hop_vct(6), mix("GAFORT", "STO"), 1);
  const auto mp = plain.run(5000, 15000);
  const auto mg = gated.run(5000, 15000);
  const auto bp = compute_breakdown(mp.energy, P);
  const auto bg = compute_breakdown(mg.energy, P);
  EXPECT_LT(bg.leakage(EnergyComponent::Buffer), bp.leakage(EnergyComponent::Buffer));
  EXPECT_LT(bg.total(), bp.total());
}

TEST(HeteroSystem, Deterministic) {
  auto once = [] {
    HeteroSystem sys(NocConfig::hybrid_tdm_vc4(6), mix("ART", "NN"), 7);
    const auto m = sys.run(2000, 6000);
    return std::make_pair(m.cpu_ipc, m.gpu_throughput);
  };
  EXPECT_EQ(once(), once());
}

TEST(HeteroSystem, BuffersDominateBaselineDynamicEnergy) {
  // Figure 9(a) premise: input buffers are the biggest dynamic consumer in
  // the packet-switched baseline.
  HeteroSystem base(NocConfig::packet_vc4(6), mix("APPLU", "LPS"), 1);
  const auto m = base.run(4000, 10000);
  const auto b = compute_breakdown(m.energy, EnergyParams::nangate45());
  EXPECT_GT(b.dynamic(EnergyComponent::Buffer), b.dynamic(EnergyComponent::Crossbar));
  EXPECT_GT(b.dynamic(EnergyComponent::Buffer), b.dynamic(EnergyComponent::Arbiter));
  EXPECT_DOUBLE_EQ(b.dynamic(EnergyComponent::CsComponent), 0.0);
}

TEST(HeteroSystem, HybridCutsBufferDynamicEnergy) {
  // Figure 9(a): buffer read/write energy drops because circuit flits skip
  // buffering entirely; the CS-component overhead stays small.
  HeteroSystem base(NocConfig::packet_vc4(6), mix("APPLU", "BLACKSCHOLES"), 1);
  HeteroSystem hyb(NocConfig::hybrid_tdm_vc4(6), mix("APPLU", "BLACKSCHOLES"), 1);
  const auto mb = base.run(5000, 15000);
  const auto mh = hyb.run(5000, 15000);
  const auto bb = compute_breakdown(mb.energy, EnergyParams::nangate45());
  const auto bh = compute_breakdown(mh.energy, EnergyParams::nangate45());
  EXPECT_LT(bh.dynamic(EnergyComponent::Buffer),
            0.75 * bb.dynamic(EnergyComponent::Buffer));
  EXPECT_LT(bh.dynamic(EnergyComponent::CsComponent),
            0.05 * bh.total_dynamic());
}

}  // namespace
}  // namespace hybridnoc
