// Standalone unit tests of the heterogeneous system's component models.
#include <gtest/gtest.h>

#include "hetero/cpu_core.hpp"
#include "hetero/gpu_sm.hpp"

namespace hybridnoc {
namespace {

TEST(CpuCore, RetiresAtPeakIpcWithoutMisses) {
  CpuBenchParams p = cpu_benchmark("WUPWISE");
  p.mpki = 0.0001;  // effectively never misses
  p.ipc_peak = 1.5;
  CpuCore core(0, p, Rng(1), [](std::uint64_t) {}, [](std::uint64_t) {});
  for (Cycle c = 0; c < 1000; ++c) core.tick(c);
  EXPECT_NEAR(static_cast<double>(core.instructions_retired()), 1500.0, 10.0);
}

TEST(CpuCore, StallsWhenMissWindowFull) {
  CpuBenchParams p = cpu_benchmark("ART");
  p.mpki = 100.0;  // a miss every ~10 instructions
  p.mlp = 2;
  int issued = 0;
  CpuCore core(0, p, Rng(2), [&](std::uint64_t) { ++issued; },
               [](std::uint64_t) {});
  // No replies ever arrive: the core must stop at mlp outstanding misses.
  for (Cycle c = 0; c < 5000; ++c) core.tick(c);
  EXPECT_EQ(issued, 2);
  EXPECT_TRUE(core.stalled());
  const auto frozen = core.instructions_retired();
  for (Cycle c = 5000; c < 6000; ++c) core.tick(c);
  EXPECT_EQ(core.instructions_retired(), frozen);
  // A reply reopens the window.
  core.on_reply(6000);
  EXPECT_FALSE(core.stalled());
  for (Cycle c = 6000; c < 7000; ++c) core.tick(c);
  EXPECT_GT(core.instructions_retired(), frozen);
}

TEST(CpuCore, MissRateTracksMpki) {
  CpuBenchParams p = cpu_benchmark("APPLU");
  p.mpki = 20.0;
  p.mlp = 64;  // never blocks
  p.writeback_rate = 0.0;
  std::uint64_t misses = 0;
  CpuCore core(0, p, Rng(3), [&](std::uint64_t) { ++misses; },
               [](std::uint64_t) {});
  for (Cycle c = 0; c < 50000; ++c) {
    core.tick(c);
    // Immediately satisfy so the window never binds.
    while (core.outstanding() > 0) core.on_reply(c);
  }
  const double mpki = 1000.0 * static_cast<double>(misses) /
                      static_cast<double>(core.instructions_retired());
  EXPECT_NEAR(mpki, 20.0, 2.5);
}

TEST(GpuSm, IssuesAtMostOneRequestPerCycle) {
  GpuBenchParams p = gpu_benchmark("BLACKSCHOLES");
  p.compute_cycles = 1.0;  // every warp wants to issue constantly
  int issued_this_cycle = 0;
  GpuSm sm(0, p, 0, Rng(4),
           [&](int, std::uint64_t, std::int64_t) { ++issued_this_cycle; });
  for (Cycle c = 0; c < 100; ++c) {
    issued_this_cycle = 0;
    sm.tick(c);
    EXPECT_LE(issued_this_cycle, 1);
  }
}

TEST(GpuSm, BlockingLoadsStallTheirWarp) {
  GpuBenchParams p = gpu_benchmark("STO");
  p.compute_cycles = 2.0;
  p.blocking_fraction = 1.0;  // everything blocks
  std::vector<int> warps;
  GpuSm sm(0, p, 0, Rng(5),
           [&](int w, std::uint64_t, std::int64_t) { warps.push_back(w); });
  for (Cycle c = 0; c < 2000; ++c) sm.tick(c);
  // All 32 warps eventually block; no duplicates while waiting.
  EXPECT_EQ(warps.size(), 32u);
  std::set<int> uniq(warps.begin(), warps.end());
  EXPECT_EQ(uniq.size(), 32u);
  EXPECT_EQ(sm.waiting_warps(), 32);
  // Replies resume and count transactions.
  for (const int w : warps) sm.on_reply(w, 2000);
  EXPECT_EQ(sm.transactions_completed(), 32u);
  EXPECT_EQ(sm.waiting_warps(), 0);
}

TEST(GpuSm, NonBlockingLoadsCarryLargeSlack) {
  GpuBenchParams p = gpu_benchmark("BLACKSCHOLES");
  p.compute_cycles = 3.0;
  p.blocking_fraction = 0.0;  // pure streaming
  std::int64_t min_slack = 1 << 30;
  int nonblocking = 0;
  GpuSm sm(0, p, 0, Rng(6), [&](int w, std::uint64_t, std::int64_t slack) {
    if (w < 0) {
      ++nonblocking;
      min_slack = std::min(min_slack, slack);
    }
  });
  for (Cycle c = 0; c < 500; ++c) sm.tick(c);
  EXPECT_GT(nonblocking, 50);
  EXPECT_GE(min_slack, 1000);  // effectively unbounded tolerance
  EXPECT_EQ(sm.waiting_warps(), 0);
}

TEST(GpuSm, SlackShrinksAsWarpsBlock) {
  GpuBenchParams p = gpu_benchmark("STO");
  p.compute_cycles = 2.0;
  p.blocking_fraction = 1.0;
  std::vector<std::int64_t> slacks;
  GpuSm sm(0, p, 0, Rng(7),
           [&](int, std::uint64_t, std::int64_t s) { slacks.push_back(s); });
  for (Cycle c = 0; c < 3000; ++c) sm.tick(c);
  ASSERT_EQ(slacks.size(), 32u);
  // Each successive blocking issue sees fewer available warps.
  EXPECT_GT(slacks.front(), slacks.back());
  EXPECT_EQ(slacks.back(), 0);  // the last warp to block has no cover left
}

TEST(GpuSm, TransactionRateTracksComputeCycles) {
  GpuBenchParams p = gpu_benchmark("LPS");
  p.compute_cycles = 100.0;
  p.blocking_fraction = 0.0;
  std::uint64_t issued = 0;
  GpuSm sm(0, p, 0, Rng(8),
           [&](int, std::uint64_t, std::int64_t) { ++issued; });
  const int cycles = 50000;
  for (Cycle c = 0; c < static_cast<Cycle>(cycles); ++c) sm.tick(c);
  // 32 warps, one request per ~101 cycles each, capped at 1/cycle issue.
  const double rate = static_cast<double>(issued) / cycles;
  EXPECT_NEAR(rate, 32.0 / 101.0, 0.05);
}

}  // namespace
}  // namespace hybridnoc
