// Steady-state zero-allocation gate for the loaded path (label: perf).
//
// The allocation-free overhaul's claim is structural, not statistical: after
// warmup, a loaded cycle moves flits exclusively through recycled storage —
// ring buffers at their high-water capacity, pooled packet blocks, pooled
// container nodes — so the global allocator is never entered. This binary
// pins that down by interposing the global operator new/delete with a
// counting hook and asserting the count's delta over a measured window of
// warmed saturation traffic is exactly zero.
//
// The hook lives in this dedicated test binary (never in the library) so it
// cannot perturb any other test. Under sanitizer builds (HN_POOL_DISABLED)
// the pool intentionally degrades to plain new/delete for full poisoning
// coverage, so the zero-allocation assertion is skipped there — the same
// configuration's behavioural equivalence is covered by the pool twin-run
// property test, which runs in every build flavour.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#ifdef HN_TRACE_ALLOCS
#include <execinfo.h>
#endif

#include "common/pool.hpp"
#include "common/rng.hpp"
#include "tdm/hybrid_network.hpp"

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<bool> g_trace{false};

void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
#ifdef HN_TRACE_ALLOCS
  if (g_trace.load(std::memory_order_relaxed)) {
    g_trace.store(false);
    void* frames[32];
    const int depth = backtrace(frames, 32);
    backtrace_symbols_fd(frames, depth, 2);
    g_trace.store(true);
  }
#endif
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

}  // namespace

#if !HN_POOL_DISABLED
// Global replacement set: plain, array, aligned and nothrow forms all funnel
// through the counter. Sanitizer builds keep the sanitizer's own interposers
// (and skip the assertion), so the override is compiled out there.
void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
#endif  // !HN_POOL_DISABLED

namespace hybridnoc {
namespace {

/// Drive `net` with seeded uniform-random injection for `cycles` cycles —
/// the same loaded regime as BM_LoadedSaturation's 8x8 row.
template <typename Net>
void drive(Net& net, Rng& rng, PacketId& id, double rate, Cycle cycles) {
  const Cycle until = net.now() + cycles;
  while (net.now() < until) {
    for (NodeId s = 0; s < net.num_nodes(); ++s) {
      if (net.ni(s).inject_queue_depth() < 4 && rng.bernoulli(rate)) {
        auto p = make_packet();
        p->id = id++;
        p->src = s;
        p->dst = static_cast<NodeId>(rng.uniform_int(net.num_nodes()));
        if (p->dst == s) continue;
        p->num_flits = 5;
        net.ni(s).send(std::move(p), net.now());
      }
    }
    net.tick();
  }
}

TEST(ZeroAlloc, WarmedLoadedRunMakesNoHeapAllocations) {
#if HN_POOL_DISABLED
  GTEST_SKIP() << "pool disabled under sanitizers: the shared_ptr-compatible "
                  "fallback allocates by design";
#else
  ASSERT_TRUE(BlockPool::enabled())
      << "pool must be on for the zero-allocation property";
  HybridNetwork net(NocConfig::hybrid_tdm_vc4(8));
  Rng rng(1);
  PacketId id = 1;
  // Warmup: reach every steady-state high-water mark — ring capacities,
  // pooled free lists, container rehash ceilings, scheduler storage. The
  // run is seeded and fully deterministic, so the high-water trajectory is
  // identical on every execution; 40k cycles sits past the last observed
  // growth event (an NI inject-ring doubling during a config-retry burst
  // near cycle 33k) with a wide margin.
  drive(net, rng, id, 0.3, 40000);

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  g_trace.store(true);
  drive(net, rng, id, 0.3, 4000);
  g_trace.store(false);
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u)
      << "warmed loaded cycles entered the global allocator "
      << (after - before) << " times over 4000 cycles";
#endif
}

/// The pool's runtime off-switch is the sanitizer fallback path; prove a
/// loaded run completes on it in every build flavour (under asan this is
/// the leg that exercises the shared_ptr-compatible fallback explicitly).
TEST(ZeroAlloc, PoolOffFallbackCarriesLoadedTraffic) {
  BlockPool::set_enabled(false);
  BlockPool::instance().trim();
  {
    HybridNetwork net(NocConfig::hybrid_tdm_vc4(8));
    Rng rng(1);
    PacketId id = 1;
    drive(net, rng, id, 0.3, 5000);
    EXPECT_GT(net.total_data_delivered(), 0u);
  }
  BlockPool::set_enabled(true);
}

}  // namespace
}  // namespace hybridnoc
