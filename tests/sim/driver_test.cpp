#include "sim/driver.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "sim/parallel.hpp"

namespace hybridnoc {
namespace {

RunParams quick(TrafficPattern p, double rate) {
  RunParams r;
  r.pattern = p;
  r.injection_rate = rate;
  r.warmup_packets = 200;
  r.measure_packets = 2000;
  r.max_cycles = 120000;
  return r;
}

TEST(Driver, LowLoadLatencyNearZeroLoad) {
  const auto r = run_synthetic(NocConfig::packet_vc4(4),
                               quick(TrafficPattern::UniformRandom, 0.05));
  EXPECT_FALSE(r.saturated);
  EXPECT_EQ(r.measured_packets, 2000u);
  // 4x4 UR average hops ~2.7 -> zero-load ~24-25; allow light queueing.
  EXPECT_GT(r.avg_latency, 15.0);
  EXPECT_LT(r.avg_latency, 40.0);
  EXPECT_GT(r.accepted_rate, 0.04);
}

TEST(Driver, LatencyRisesWithLoad) {
  const auto lo = run_synthetic(NocConfig::packet_vc4(4),
                                quick(TrafficPattern::UniformRandom, 0.05));
  const auto hi = run_synthetic(NocConfig::packet_vc4(4),
                                quick(TrafficPattern::UniformRandom, 0.25));
  EXPECT_GT(hi.avg_latency, lo.avg_latency);
  EXPECT_GE(hi.p99_latency, lo.p99_latency);
}

TEST(Driver, OverloadIsDetectedAsSaturation) {
  const auto r = run_synthetic(NocConfig::packet_vc4(4),
                               quick(TrafficPattern::UniformRandom, 0.9));
  EXPECT_TRUE(r.saturated);
}

TEST(Driver, AcceptedTracksOfferedBelowSaturation) {
  for (double rate : {0.05, 0.1, 0.15}) {
    const auto r = run_synthetic(NocConfig::packet_vc4(4),
                                 quick(TrafficPattern::UniformRandom, rate));
    EXPECT_NEAR(r.accepted_rate, rate, rate * 0.25) << "rate " << rate;
  }
}

TEST(Driver, EnergyWindowIsPopulated) {
  const auto r = run_synthetic(NocConfig::packet_vc4(4),
                               quick(TrafficPattern::UniformRandom, 0.1));
  EXPECT_GT(r.energy.cycles, 0u);
  EXPECT_GT(r.energy.buffer_writes, 0u);
  EXPECT_GT(r.total_energy_pj(), 0.0);
}

TEST(Driver, HybridRunReportsCircuitFraction) {
  NocConfig cfg = NocConfig::hybrid_tdm_vc4(4);
  cfg.slot_table_size = 32;
  cfg.path_freq_threshold = 4;
  const auto r = run_synthetic(cfg, quick(TrafficPattern::Tornado, 0.15));
  EXPECT_FALSE(r.saturated);
  EXPECT_GT(r.cs_flit_fraction, 0.0);
  EXPECT_LT(r.config_flit_fraction, 0.02);
}

TEST(Driver, SdmRunCompletes) {
  const auto r = run_synthetic(NocConfig::hybrid_sdm_vc4(4),
                               quick(TrafficPattern::Tornado, 0.1));
  EXPECT_FALSE(r.saturated);
  EXPECT_GT(r.avg_latency, 0.0);
}

TEST(Driver, SweepStopsAfterSaturation) {
  const auto rs =
      sweep_load(NocConfig::packet_vc4(4), quick(TrafficPattern::UniformRandom, 0),
                 {0.05, 0.1, 0.6, 0.8, 0.9, 1.0});
  ASSERT_GE(rs.size(), 3u);
  EXPECT_LT(rs.size(), 6u);  // stopped early
  EXPECT_TRUE(rs.back().saturated);
}

TEST(Driver, SaturationThroughputIsReasonable) {
  RunParams p = quick(TrafficPattern::UniformRandom, 0);
  p.measure_packets = 1500;
  const double sat =
      saturation_throughput(NocConfig::packet_vc4(4), p, 0.1, 0.1, 1.0);
  // 4x4 UR with XY routing saturates somewhere in 0.2..0.8 flits/node/cycle.
  EXPECT_GT(sat, 0.15);
  EXPECT_LT(sat, 0.9);
}

TEST(Driver, DeterministicResults) {
  const auto a = run_synthetic(NocConfig::packet_vc4(4),
                               quick(TrafficPattern::Transpose, 0.1));
  const auto b = run_synthetic(NocConfig::packet_vc4(4),
                               quick(TrafficPattern::Transpose, 0.1));
  EXPECT_DOUBLE_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.measured_packets, b.measured_packets);
}

TEST(Driver, FlitFractionsStayFiniteWithoutTraffic) {
  // Regression: a hybrid run whose measurement window carries no packet- or
  // circuit-switched flits used to report NaN fractions (0/0).
  EXPECT_DOUBLE_EQ(safe_ratio(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(safe_ratio(3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(safe_ratio(1.0, 4.0), 0.25);
  NocConfig cfg = NocConfig::hybrid_tdm_vc4(4);
  cfg.slot_table_size = 32;
  RunParams p = quick(TrafficPattern::UniformRandom, 0.01);
  p.warmup_packets = 10;
  p.measure_packets = 50;
  const auto r = run_synthetic(cfg, p);
  EXPECT_TRUE(std::isfinite(r.cs_flit_fraction));
  EXPECT_TRUE(std::isfinite(r.config_flit_fraction));
  EXPECT_GE(r.cs_flit_fraction, 0.0);
  EXPECT_LE(r.cs_flit_fraction, 1.0);
}

TEST(Parallel, MapPreservesOrderAndValues) {
  std::vector<int> items(100);
  for (int i = 0; i < 100; ++i) items[static_cast<size_t>(i)] = i;
  const auto out = parallel_map(items, [](int v) { return v * v; }, 4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i * i);
}

TEST(Parallel, RunsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; }, 3);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, WorkerExceptionIsRethrownOnJoin) {
  // A throwing worker used to std::terminate the whole process; the first
  // exception must instead surface on the calling thread after joins.
  EXPECT_THROW(parallel_for(
                   64,
                   [](std::size_t i) {
                     if (i == 13) throw std::runtime_error("boom");
                   },
                   4),
               std::runtime_error);
}

TEST(Parallel, FirstExceptionWinsAndWorkAlreadyDoneSticks) {
  std::vector<std::atomic<int>> hits(32);
  try {
    parallel_for(
        hits.size(),
        [&](std::size_t i) {
          if (i % 2 == 1) throw std::runtime_error("odd index");
          ++hits[i];
        },
        2);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "odd index");
  }
  for (std::size_t i = 0; i < hits.size(); i += 2) EXPECT_LE(hits[i].load(), 1);
}

TEST(Parallel, SerialFallbackAlsoPropagates) {
  EXPECT_THROW(
      parallel_for(4, [](std::size_t) { throw std::runtime_error("x"); }, 1),
      std::runtime_error);
}

}  // namespace
}  // namespace hybridnoc
