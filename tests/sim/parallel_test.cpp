#include "sim/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace hybridnoc {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(std::memory_order_relaxed), 1) << "index " << i;
  }
}

TEST(ParallelFor, SerialFallbackRunsInOrder) {
  std::vector<std::size_t> order;
  parallel_for(5, [&](std::size_t i) { order.push_back(i); }, /*threads=*/1);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, PropagatesFirstExceptionUnderContention) {
  // Many workers hammer a large index space while one early iteration
  // throws. The acquire check / acq_rel claim pairing must (a) deliver the
  // exception to the caller and (b) stop workers from claiming fresh work
  // after the failure is published — without fences a worker could pass the
  // `failed` check, have the claim reordered around it, and keep running
  // long after the stop request.
  constexpr std::size_t kN = 200000;
  std::atomic<std::size_t> ran{0};
  std::atomic<std::size_t> after_failure{0};
  std::atomic<bool> thrown{false};
  EXPECT_THROW(
      parallel_for(
          kN,
          [&](std::size_t i) {
            if (thrown.load(std::memory_order_acquire)) {
              after_failure.fetch_add(1, std::memory_order_relaxed);
            }
            ran.fetch_add(1, std::memory_order_relaxed);
            if (i == 17) {
              thrown.store(true, std::memory_order_release);
              throw std::runtime_error("boom at 17");
            }
          },
          /*threads=*/8),
      std::runtime_error);
  // Abandonment, not completion: the failure must cut the sweep short. A
  // handful of in-flight iterations may still finish after the throw, but
  // nowhere near the full range.
  EXPECT_LT(ran.load(), kN);
  EXPECT_LT(after_failure.load(), kN / 2);
}

TEST(ParallelFor, ExceptionMessageIsTheFirstFailure) {
  try {
    parallel_for(
        64, [](std::size_t i) {
          if (i == 3) throw std::runtime_error("first failure");
        },
        /*threads=*/4);
    FAIL() << "expected parallel_for to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first failure");
  }
}

TEST(ParallelMap, PreservesOrder) {
  std::vector<int> in(1000);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = static_cast<int>(i);
  const std::vector<int> out =
      parallel_map(in, [](int v) { return v * v; }, /*threads=*/4);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

}  // namespace
}  // namespace hybridnoc
