// Sweep-spec parsing and expansion: deterministic cartesian order,
// content-addressing, and structured (never-aborting) error reporting.
#include <gtest/gtest.h>

#include "sweep/canonical.hpp"
#include "sweep/sweep_spec.hpp"

namespace hybridnoc::sweep {
namespace {

TEST(SweepSpec, ExpandsCartesianLastAxisFastest) {
  SweepSpec spec;
  SpecError err;
  // `set k` comes after the preset axis: lines apply in file order and a
  // preset resets the config wholesale.
  ASSERT_TRUE(parse_sweep_spec("name = demo\n"
                               "sweep preset = packet_vc4, hybrid_tdm_vc4\n"
                               "set k = 4\n"
                               "sweep rate = 0.02, 0.05, 0.08\n",
                               &spec, &err))
      << err.to_string();
  EXPECT_EQ(spec.name, "demo");
  ASSERT_EQ(spec.points.size(), 6u);
  EXPECT_EQ(spec.axis_keys, (std::vector<std::string>{"preset", "rate"}));
  EXPECT_EQ(spec.points[0].label, "preset=packet_vc4,rate=0.02");
  EXPECT_EQ(spec.points[1].label, "preset=packet_vc4,rate=0.05");
  EXPECT_EQ(spec.points[2].label, "preset=packet_vc4,rate=0.08");
  EXPECT_EQ(spec.points[3].label, "preset=hybrid_tdm_vc4,rate=0.02");
  EXPECT_EQ(spec.points[0].cfg.arch, RouterArch::PacketSwitched);
  EXPECT_EQ(spec.points[3].cfg.arch, RouterArch::HybridTdm);
  EXPECT_EQ(spec.points[0].cfg.k, 4);
  EXPECT_EQ(spec.points[0].params.injection_rate, 0.02);
  EXPECT_EQ(spec.points[1].params.injection_rate, 0.05);
}

TEST(SweepSpec, HashesAreContentAddresses) {
  SweepSpec a, b;
  SpecError err;
  ASSERT_TRUE(parse_sweep_spec("set k = 4\nsweep rate = 0.02, 0.05\n", &a,
                               &err));
  // A differently written spec expanding to the same points shares hashes.
  ASSERT_TRUE(parse_sweep_spec("# same thing\nset k=4\nsweep rate=0.02,0.05\n",
                               &b, &err));
  ASSERT_EQ(a.points.size(), 2u);
  ASSERT_EQ(b.points.size(), 2u);
  EXPECT_EQ(a.points[0].hash, b.points[0].hash);
  EXPECT_EQ(a.points[1].hash, b.points[1].hash);
  EXPECT_NE(a.points[0].hash, a.points[1].hash);
  // ...but the spec digest is over the raw text (the resume guard).
  EXPECT_NE(a.spec_digest, b.spec_digest);
  EXPECT_EQ(a.points[0].hash,
            config_hash(a.points[0].cfg, a.points[0].params));
}

TEST(SweepSpec, SetAppliesInFileOrderOverPreset) {
  SweepSpec spec;
  SpecError err;
  ASSERT_TRUE(parse_sweep_spec("set preset = hybrid_tdm_vc4\n"
                               "set k = 8\n"
                               "set slot_table_size = 64\n",
                               &spec, &err))
      << err.to_string();
  ASSERT_EQ(spec.points.size(), 1u);
  EXPECT_EQ(spec.points[0].label, "point0");
  EXPECT_EQ(spec.points[0].cfg.arch, RouterArch::HybridTdm);
  EXPECT_EQ(spec.points[0].cfg.k, 8);
  EXPECT_EQ(spec.points[0].cfg.slot_table_size, 64);
}

TEST(SweepSpec, CommentsAndBlanksIgnored) {
  SweepSpec spec;
  SpecError err;
  ASSERT_TRUE(parse_sweep_spec("\n# header\n  \nset k = 4  # inline\n",
                               &spec, &err))
      << err.to_string();
  EXPECT_EQ(spec.points[0].cfg.k, 4);
}

TEST(SweepSpecErrors, UnknownKey) {
  SweepSpec spec;
  SpecError err;
  EXPECT_FALSE(parse_sweep_spec("set kk = 4\n", &spec, &err));
  EXPECT_EQ(err.line, 1);
  EXPECT_NE(err.message.find("unknown key 'kk'"), std::string::npos);
}

TEST(SweepSpecErrors, BadValue) {
  SweepSpec spec;
  SpecError err;
  EXPECT_FALSE(parse_sweep_spec("set k = four\n", &spec, &err));
  EXPECT_EQ(err.line, 1);
  EXPECT_FALSE(parse_sweep_spec("sweep rate = 0.1, fast\n", &spec, &err));
  EXPECT_EQ(err.line, 1);
  EXPECT_FALSE(parse_sweep_spec("set preset = nonesuch\n", &spec, &err));
  EXPECT_NE(err.message.find("unknown preset"), std::string::npos);
}

TEST(SweepSpecErrors, MalformedLine) {
  SweepSpec spec;
  SpecError err;
  EXPECT_FALSE(parse_sweep_spec("set k 4\n", &spec, &err));
  EXPECT_FALSE(parse_sweep_spec("frobnicate k = 4\n", &spec, &err));
  EXPECT_FALSE(parse_sweep_spec("sweep rate =\n", &spec, &err));
  EXPECT_FALSE(parse_sweep_spec("", &spec, &err));
}

// Config cross-validation runs per expanded point and reports a structured
// error instead of aborting the process (HN_CHECK under ScopedCheckThrows).
TEST(SweepSpecErrors, InvalidPointIsStructured) {
  SweepSpec spec;
  SpecError err;
  EXPECT_FALSE(parse_sweep_spec("set k = -3\n", &spec, &err));
  EXPECT_NE(err.message.find("invalid"), std::string::npos);
}

TEST(SweepSpecErrors, ExpansionLimit) {
  std::string text;
  // 8 axes x 10 values = 10^8 points: far past the limit.
  for (int i = 0; i < 8; ++i) {
    text += "sweep seed = 1,2,3,4,5,6,7,8,9,10\n";
  }
  SweepSpec spec;
  SpecError err;
  EXPECT_FALSE(parse_sweep_spec(text, &spec, &err));
  EXPECT_NE(err.message.find("limit"), std::string::npos);
}

TEST(SweepSpec, LoadMissingFileIsStructured) {
  SweepSpec spec;
  SpecError err;
  EXPECT_FALSE(load_sweep_spec("/nonexistent/spec.txt", &spec, &err));
  EXPECT_NE(err.message.find("cannot read spec"), std::string::npos);
}

// The canonical form must separate points that differ in any behavioral
// knob, and warmup identity must ignore measure-phase params.
TEST(Canonical, HashSeparatesBehavioralKnobs) {
  NocConfig cfg = NocConfig::hybrid_tdm_vc4(4);
  RunParams params;
  const std::uint64_t base = config_hash(cfg, params);

  NocConfig cfg2 = cfg;
  cfg2.slot_table_size = 64;
  EXPECT_NE(config_hash(cfg2, params), base);

  RunParams p2 = params;
  p2.measure_packets += 1;
  EXPECT_NE(config_hash(cfg, p2), base);
  EXPECT_EQ(warmup_hash(cfg, p2), warmup_hash(cfg, params));

  RunParams p3 = params;
  p3.injection_rate += 0.01;
  EXPECT_NE(warmup_hash(cfg, p3), warmup_hash(cfg, params));

  // Engine knobs proven bit-identical are NOT part of the identity.
  NocConfig cfg3 = cfg;
  cfg3.active_set_scheduler = !cfg3.active_set_scheduler;
  EXPECT_EQ(config_hash(cfg3, params), base);
}

}  // namespace
}  // namespace hybridnoc::sweep
