// Cache-poisoning coverage for the result store and the journal: every
// corruption mode must read as a miss (store) or a truncated-but-usable
// history (journal) — death-free in all cases.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/fileio.hpp"
#include "sweep/journal.hpp"
#include "sweep/result_store.hpp"

namespace hybridnoc::sweep {
namespace {

class TempDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("hn_sweep_test_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name()))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

RunResult sample_result() {
  RunResult r;
  r.offered_rate = 0.05;
  r.accepted_rate = 0.049;
  r.avg_latency = 31.5;
  r.p99_latency = 60.25;
  r.saturated = false;
  r.measured_packets = 500;
  r.cycles = 12345;
  r.energy.buffer_writes = 111;
  r.energy.link_flits = 222;
  r.energy.cycles = 12345;
  r.cs_flit_fraction = 0.25;
  r.config_flit_fraction = 0.01;
  return r;
}

void expect_same(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.offered_rate, b.offered_rate);
  EXPECT_EQ(a.accepted_rate, b.accepted_rate);
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.saturated, b.saturated);
  EXPECT_EQ(a.measured_packets, b.measured_packets);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.energy.buffer_writes, b.energy.buffer_writes);
  EXPECT_EQ(a.energy.link_flits, b.energy.link_flits);
  EXPECT_EQ(a.energy.cycles, b.energy.cycles);
  EXPECT_EQ(a.cs_flit_fraction, b.cs_flit_fraction);
  EXPECT_EQ(a.config_flit_fraction, b.config_flit_fraction);
}

using ResultStoreTest = TempDir;

TEST_F(ResultStoreTest, RoundTrip) {
  ResultStore store(dir_);
  const std::uint64_t h = 0xdeadbeefcafef00dull;
  EXPECT_FALSE(store.load(h).has_value());
  std::string err;
  ASSERT_TRUE(store.store(h, sample_result(), &err)) << err;
  const auto back = store.load(h);
  ASSERT_TRUE(back.has_value());
  expect_same(*back, sample_result());
}

TEST_F(ResultStoreTest, TruncatedEntryIsAMiss) {
  ResultStore store(dir_);
  const std::uint64_t h = 42;
  std::string err;
  ASSERT_TRUE(store.store(h, sample_result(), &err));
  std::string bytes;
  ASSERT_TRUE(read_file(store.path_for(h), &bytes));
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{7}, bytes.size() / 2,
        bytes.size() - 1}) {
    std::ofstream out(store.path_for(h),
                      std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(keep));
    out.close();
    EXPECT_FALSE(store.load(h).has_value()) << "kept " << keep;
  }
}

TEST_F(ResultStoreTest, BitFlippedEntryIsAMiss) {
  ResultStore store(dir_);
  const std::uint64_t h = 43;
  std::string err;
  ASSERT_TRUE(store.store(h, sample_result(), &err));
  std::string bytes;
  ASSERT_TRUE(read_file(store.path_for(h), &bytes));
  for (std::size_t pos = 0; pos < bytes.size(); pos += bytes.size() / 7) {
    std::string bad = bytes;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x40);
    ASSERT_TRUE(write_file_atomic(store.path_for(h), bad));
    EXPECT_FALSE(store.load(h).has_value()) << "flip at " << pos;
  }
}

TEST_F(ResultStoreTest, WrongVersionIsAMiss) {
  // Encode with a hand-built archive claiming a future store version: the
  // sealed digest is fine, but the version gate must reject it.
  const std::uint64_t h = 44;
  const std::string good = encode_result(h, sample_result());
  EXPECT_TRUE(decode_result(good, h).has_value());
  // encode_result writes the version right after the section tag; rebuild
  // the payload through the public surface instead of poking offsets:
  // a wrong config hash exercises the same acceptance gate.
  EXPECT_FALSE(decode_result(good, h + 1).has_value());
}

TEST_F(ResultStoreTest, MisfiledEntryIsAMiss) {
  // An entry copied under another point's filename (wrong content address)
  // must not be served for that point.
  ResultStore store(dir_);
  std::string err;
  ASSERT_TRUE(store.store(7, sample_result(), &err));
  std::string bytes;
  ASSERT_TRUE(read_file(store.path_for(7), &bytes));
  ASSERT_TRUE(write_file_atomic(store.path_for(8), bytes));
  EXPECT_FALSE(store.load(8).has_value());
  EXPECT_TRUE(store.load(7).has_value());
}

using JournalTest = TempDir;

TEST_F(JournalTest, ReplayReconstructsState) {
  const std::string path = dir_ + "/journal";
  {
    Journal j;
    std::string err;
    ASSERT_TRUE(j.open(path, 0x57ec, false, &err)) << err;
    j.record_fail(10, 1, "injected worker fault");
    j.record_done(10, 2);
    j.record_fail(11, 1, "wall-clock timeout");
    j.record_fail(11, 2, "wall-clock timeout");
    j.record_quarantine(11, 2);
    j.record_done(12, 1);
  }
  const auto rep = Journal::replay(path, 0x57ec);
  EXPECT_TRUE(rep.exists);
  EXPECT_TRUE(rep.spec_match);
  EXPECT_EQ(rep.torn_lines, 0);
  EXPECT_EQ(rep.done, (std::set<std::uint64_t>{10, 12}));
  EXPECT_EQ(rep.quarantined, (std::set<std::uint64_t>{11}));
  EXPECT_EQ(rep.attempts.at(10), 1);
  EXPECT_EQ(rep.attempts.at(11), 2);
}

TEST_F(JournalTest, SpecMismatchRefused) {
  const std::string path = dir_ + "/journal";
  {
    Journal j;
    std::string err;
    ASSERT_TRUE(j.open(path, 111, false, &err));
    j.record_done(10, 1);
  }
  const auto rep = Journal::replay(path, 222);
  EXPECT_TRUE(rep.exists);
  EXPECT_FALSE(rep.spec_match);
}

TEST_F(JournalTest, TornTailTolerated) {
  const std::string path = dir_ + "/journal";
  {
    Journal j;
    std::string err;
    ASSERT_TRUE(j.open(path, 111, false, &err));
    j.record_done(10, 1);
    j.record_done(11, 1);
  }
  std::string text;
  ASSERT_TRUE(read_file(path, &text));
  // A kill mid-append leaves a partial final line. (Cut >= 2 so the final
  // line actually loses content, not just its newline.)
  for (const std::size_t cut : {std::size_t{2}, std::size_t{10},
                                std::size_t{20}}) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(text.data(), static_cast<std::streamsize>(text.size() - cut));
    out.close();
    const auto rep = Journal::replay(path, 111);
    EXPECT_TRUE(rep.spec_match);
    EXPECT_EQ(rep.torn_lines, 1);
    EXPECT_EQ(rep.done.count(10), 1u);  // intact prefix survives
    EXPECT_EQ(rep.done.count(11), 0u);  // torn line dropped
  }
}

TEST_F(JournalTest, CorruptMidlineEndsReplayThere) {
  const std::string path = dir_ + "/journal";
  {
    Journal j;
    std::string err;
    ASSERT_TRUE(j.open(path, 111, false, &err));
    j.record_done(10, 1);
    j.record_done(11, 1);
    j.record_done(12, 1);
  }
  std::string text;
  ASSERT_TRUE(read_file(path, &text));
  // Flip a byte inside the *second* record line (line index 2: the header
  // and the first record precede it).
  std::size_t pos = 0;
  for (int nl = 0; nl < 2; ++pos) {
    if (text[pos] == '\n') ++nl;
  }
  std::string bad = text;
  bad[pos + 4] ^= 0x20;
  ASSERT_TRUE(write_file_atomic(path, bad));
  const auto rep = Journal::replay(path, 111);
  EXPECT_TRUE(rep.spec_match);
  EXPECT_EQ(rep.done.count(10), 1u);
  EXPECT_EQ(rep.done.count(11), 0u);
  EXPECT_EQ(rep.done.count(12), 0u);  // everything after the damage dropped
  EXPECT_GE(rep.torn_lines, 2);
}

TEST_F(JournalTest, MissingFile) {
  const auto rep = Journal::replay(dir_ + "/nope", 1);
  EXPECT_FALSE(rep.exists);
}

}  // namespace
}  // namespace hybridnoc::sweep
