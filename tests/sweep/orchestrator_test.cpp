// Orchestrator robustness: the seeded fault harness drives every recovery
// path — worker exceptions, injected hangs (timeout + worker abandonment),
// torn result writes, poisoned caches — and the sweep must always end in
// retried success or quarantine, never in an abort, with a byte-identical
// aggregate across reruns.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "common/fileio.hpp"
#include "sweep/orchestrator.hpp"
#include "sweep/sweep_spec.hpp"
#include "sweep/worker_pool.hpp"

namespace hybridnoc::sweep {
namespace {

class OrchestratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            (std::string("hn_orch_test_") + ::testing::UnitTest::GetInstance()
                                                ->current_test_info()
                                                ->name()))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  SweepSpec small_spec(const char* extra = "") {
    SweepSpec spec;
    SpecError err;
    const std::string text = std::string("name = orch\n"
                                         "set k = 4\n"
                                         "set warmup_packets = 40\n"
                                         "set warmup_min_cycles = 200\n"
                                         "set measure_packets = 120\n"
                                         "set max_cycles = 60000\n"
                                         "sweep rate = 0.03, 0.06\n") +
                             extra;
    EXPECT_TRUE(parse_sweep_spec(text, &spec, &err)) << err.to_string();
    return spec;
  }

  SweepOptions opts() {
    SweepOptions o;
    o.out_dir = dir_;
    o.workers = 2;
    o.backoff_base_ms = 1;
    o.backoff_cap_ms = 8;
    return o;
  }

  std::string dir_;
};

TEST_F(OrchestratorTest, CleanSweepCompletes) {
  const SweepSpec spec = small_spec();
  const SweepReport rep = run_sweep(spec, opts());
  EXPECT_EQ(rep.degradation.points, 2);
  EXPECT_EQ(rep.degradation.completed, 2);
  EXPECT_EQ(rep.degradation.quarantined, 0);
  EXPECT_TRUE(rep.degradation.complete());
  for (const auto& o : rep.outcomes) {
    EXPECT_TRUE(o.ok);
    EXPECT_GT(o.result.measured_packets, 0u);
  }
  std::string aggregate;
  ASSERT_TRUE(read_file(rep.aggregate_path, &aggregate));
  EXPECT_EQ(aggregate, format_aggregate(spec, rep.outcomes));
}

TEST_F(OrchestratorTest, RerunServesFromCacheBitIdentically) {
  const SweepSpec spec = small_spec();
  const SweepReport first = run_sweep(spec, opts());
  std::string agg1;
  ASSERT_TRUE(read_file(first.aggregate_path, &agg1));

  const SweepReport second = run_sweep(spec, opts());
  EXPECT_EQ(second.degradation.cache_hits, 2);
  EXPECT_TRUE(second.degradation.resumed);
  std::string agg2;
  ASSERT_TRUE(read_file(second.aggregate_path, &agg2));
  EXPECT_EQ(agg1, agg2);
}

TEST_F(OrchestratorTest, WorkerExceptionsRetryToSuccess) {
  const SweepSpec spec = small_spec();
  SweepOptions o = opts();
  o.max_attempts = 6;
  o.faults.enabled = true;
  o.faults.seed = 3;
  o.faults.throw_prob = 0.5;  // some attempts throw; 6 tries ~never all do
  const SweepReport rep = run_sweep(spec, o);
  EXPECT_EQ(rep.degradation.completed + rep.degradation.quarantined, 2);
  // Every outcome is terminal: ok or quarantined, nothing dropped.
  for (const auto& out : rep.outcomes) {
    EXPECT_TRUE(out.ok || out.quarantined) << out.label;
  }
}

TEST_F(OrchestratorTest, AlwaysThrowingWorkerQuarantines) {
  const SweepSpec spec = small_spec();
  SweepOptions o = opts();
  o.max_attempts = 3;
  o.faults.enabled = true;
  o.faults.throw_prob = 1.0;
  const SweepReport rep = run_sweep(spec, o);
  EXPECT_EQ(rep.degradation.quarantined, 2);
  EXPECT_EQ(rep.degradation.completed, 0);
  EXPECT_EQ(rep.degradation.retries, 2 * (3 - 1));
  EXPECT_FALSE(rep.degradation.complete());
  for (const auto& out : rep.outcomes) {
    EXPECT_TRUE(out.quarantined);
    EXPECT_EQ(out.attempts, 3);
    EXPECT_NE(out.last_error.find("injected worker fault"),
              std::string::npos);
  }
  // The aggregate still exists, with quarantined rows.
  std::string aggregate;
  ASSERT_TRUE(read_file(rep.aggregate_path, &aggregate));
  EXPECT_NE(aggregate.find("quarantined"), std::string::npos);
}

TEST_F(OrchestratorTest, QuarantineIsStickyAcrossResume) {
  const SweepSpec spec = small_spec();
  SweepOptions o = opts();
  o.max_attempts = 2;
  o.faults.enabled = true;
  o.faults.throw_prob = 1.0;
  const SweepReport first = run_sweep(spec, o);
  EXPECT_EQ(first.degradation.quarantined, 2);
  std::string agg1;
  ASSERT_TRUE(read_file(first.aggregate_path, &agg1));

  // Resume with the harness off: quarantine decisions replay from the
  // journal instead of being re-derived (no new attempts are run).
  SweepOptions o2 = opts();
  o2.max_attempts = 2;
  const SweepReport second = run_sweep(spec, o2);
  EXPECT_TRUE(second.degradation.resumed);
  EXPECT_EQ(second.degradation.quarantined, 2);
  EXPECT_EQ(second.degradation.retries, 0);
  std::string agg2;
  ASSERT_TRUE(read_file(second.aggregate_path, &agg2));
  EXPECT_EQ(agg1, agg2);

  // A --fresh run re-decides and (harness off) completes everything.
  SweepOptions o3 = opts();
  o3.resume = false;
  const SweepReport third = run_sweep(spec, o3);
  EXPECT_EQ(third.degradation.quarantined, 0);
  EXPECT_EQ(third.degradation.completed, 2);
}

TEST_F(OrchestratorTest, TornWritesAreDetectedAndRetried) {
  // Pick a harness seed (via the deterministic plan itself, so the test
  // cannot rot) where the first point's first attempt tears its result
  // write and the second attempt is clean.
  const SweepSpec spec = small_spec();
  SweepFaultPlan plan;
  plan.enabled = true;
  plan.torn_write_prob = 0.5;
  std::uint64_t seed = 1;
  for (; seed < 500; ++seed) {
    plan.seed = seed;
    if (plan.action(spec.points[0].hash, 1) == FaultAction::TornWrite &&
        plan.action(spec.points[0].hash, 2) == FaultAction::None &&
        plan.action(spec.points[1].hash, 1) == FaultAction::None) {
      break;
    }
  }
  ASSERT_LT(seed, 500u) << "no suitable harness seed found";

  SweepOptions o = opts();
  o.max_attempts = 6;
  o.faults = plan;
  const SweepReport rep = run_sweep(spec, o);
  EXPECT_EQ(rep.degradation.completed, 2);
  EXPECT_GE(rep.degradation.retries, 1);
  for (const auto& out : rep.outcomes) {
    EXPECT_TRUE(out.ok) << out.label;
    // Whatever ended up in the store decodes cleanly.
    EXPECT_GT(out.result.cycles, 0u);
  }
  // The torn write surfaced as a failed (retried) attempt, journaled with
  // the read-back-verification reason — never as a poisoned cache entry.
  std::string journal;
  ASSERT_TRUE(read_file(dir_ + "/journal", &journal));
  EXPECT_NE(journal.find("verification failed"), std::string::npos);
}

TEST_F(OrchestratorTest, InjectedHangsTimeOutAndQuarantine) {
  const SweepSpec spec = small_spec();
  SweepOptions o = opts();
  o.workers = 2;
  o.max_attempts = 2;
  o.timeout_ms = 150;
  o.faults.enabled = true;
  o.faults.hang_prob = 1.0;
  const SweepReport rep = run_sweep(spec, o);
  EXPECT_EQ(rep.degradation.quarantined, 2);
  EXPECT_EQ(rep.degradation.timeouts, 2 * 2);
  EXPECT_GE(rep.degradation.workers_abandoned, 1);
  for (const auto& out : rep.outcomes) {
    EXPECT_TRUE(out.quarantined);
    EXPECT_EQ(out.last_error, "wall-clock timeout");
  }
}

TEST_F(OrchestratorTest, HangsRecoverWhenLaterAttemptsClean) {
  // Hang only on the first attempt of each point (probability keyed by
  // attempt): pick a seed where attempt 1 hangs and attempt 2 does not,
  // verified via the plan itself so the test cannot rot.
  SweepFaultPlan plan;
  plan.enabled = true;
  plan.hang_prob = 0.5;
  const SweepSpec spec = small_spec();
  std::uint64_t seed = 1;
  for (; seed < 500; ++seed) {
    plan.seed = seed;
    bool good = true;
    for (const auto& pt : spec.points) {
      if (plan.action(pt.hash, 1) != FaultAction::Hang ||
          plan.action(pt.hash, 2) != FaultAction::None) {
        good = false;
        break;
      }
    }
    if (good) break;
  }
  ASSERT_LT(seed, 500u) << "no suitable harness seed found";

  SweepOptions o = opts();
  o.max_attempts = 3;
  // Generous budget: the clean second attempt must finish inside it even
  // under sanitizers; the injected hang still times out promptly enough.
  o.timeout_ms = 2000;
  o.faults = plan;
  const SweepReport rep = run_sweep(spec, o);
  EXPECT_EQ(rep.degradation.completed, 2);
  EXPECT_EQ(rep.degradation.quarantined, 0);
  EXPECT_EQ(rep.degradation.timeouts, 2);
  EXPECT_EQ(rep.degradation.workers_abandoned, 2);
  for (const auto& out : rep.outcomes) {
    EXPECT_TRUE(out.ok);
    EXPECT_EQ(out.attempts, 2);
  }
}

TEST_F(OrchestratorTest, CorruptResultEntryIsRecomputed) {
  const SweepSpec spec = small_spec();
  const SweepReport first = run_sweep(spec, opts());
  std::string agg1;
  ASSERT_TRUE(read_file(first.aggregate_path, &agg1));

  // Poison one stored result (truncate: digest now fails).
  const std::string victim =
      dir_ + "/results/" + hex64(spec.points[0].hash) + ".result";
  std::string bytes;
  ASSERT_TRUE(read_file(victim, &bytes));
  {
    std::ofstream out(victim, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 3));
  }

  const SweepReport second = run_sweep(spec, opts());
  EXPECT_EQ(second.degradation.corrupt_results_recomputed, 1);
  EXPECT_EQ(second.degradation.completed, 2);
  EXPECT_EQ(second.degradation.cache_hits, 1);
  std::string agg2;
  ASSERT_TRUE(read_file(second.aggregate_path, &agg2));
  EXPECT_EQ(agg1, agg2);  // recomputation is bit-identical
}

TEST_F(OrchestratorTest, CorruptWarmupCheckpointIsRecomputed) {
  const SweepSpec spec = small_spec();
  const SweepReport first = run_sweep(spec, opts());
  std::string agg1;
  ASSERT_TRUE(read_file(first.aggregate_path, &agg1));

  // Wipe the results + journal so the rerun must recompute from the
  // persisted warmup checkpoints, one of which we poison.
  std::filesystem::remove_all(dir_ + "/results");
  std::filesystem::remove(dir_ + "/journal");
  bool poisoned = false;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir_ + "/checkpoints")) {
    std::string bytes;
    ASSERT_TRUE(read_file(entry.path().string(), &bytes));
    for (std::size_t i = 40; i < bytes.size(); i += 1000) {
      bytes[i] = static_cast<char>(bytes[i] ^ 0xff);
    }
    ASSERT_TRUE(write_file_atomic(entry.path().string(), bytes));
    poisoned = true;
    break;
  }
  ASSERT_TRUE(poisoned);

  const SweepReport second = run_sweep(spec, opts());
  EXPECT_GE(second.degradation.corrupt_checkpoints_recomputed, 1);
  EXPECT_EQ(second.degradation.completed, 2);
  std::string agg2;
  ASSERT_TRUE(read_file(second.aggregate_path, &agg2));
  EXPECT_EQ(agg1, agg2);
}

TEST_F(OrchestratorTest, JournalFromDifferentSpecRefused) {
  const SweepSpec spec = small_spec();
  run_sweep(spec, opts());
  const SweepSpec other = small_spec("set seed = 5\n");
  EXPECT_THROW(run_sweep(other, opts()), std::runtime_error);
  // ...but --fresh takes the directory over.
  SweepOptions o = opts();
  o.resume = false;
  const SweepReport rep = run_sweep(other, o);
  EXPECT_EQ(rep.degradation.completed, 2);
}

TEST_F(OrchestratorTest, FaultPlanIsDeterministic) {
  SweepFaultPlan plan;
  plan.enabled = true;
  plan.seed = 9;
  plan.throw_prob = 0.3;
  plan.hang_prob = 0.2;
  plan.torn_write_prob = 0.2;
  int counts[4] = {0, 0, 0, 0};
  for (std::uint64_t h = 0; h < 400; ++h) {
    const FaultAction a = plan.action(h * 0x9e3779b97f4a7c15ull, 1);
    EXPECT_EQ(a, plan.action(h * 0x9e3779b97f4a7c15ull, 1));  // pure
    ++counts[static_cast<int>(a)];
  }
  // Roughly the configured mix (wide tolerances; the draw is hash-based).
  EXPECT_GT(counts[static_cast<int>(FaultAction::Throw)], 60);
  EXPECT_GT(counts[static_cast<int>(FaultAction::Hang)], 30);
  EXPECT_GT(counts[static_cast<int>(FaultAction::TornWrite)], 30);
  EXPECT_GT(counts[static_cast<int>(FaultAction::None)], 60);
}

// Worker-pool stress under concurrency — named *Thread* so the tsan leg
// (ctest --test-dir build-tsan -R Thread) picks it up.
TEST(SweepWorkerPoolThreadStress, SubmitThrowAbandonUnderLoad) {
  WorkerPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::uint64_t> hang_ids;
  constexpr int kJobs = 120;
  for (int i = 0; i < kJobs; ++i) {
    if (i % 10 == 3) {
      // A cooperative hang, abandoned below.
      hang_ids.push_back(pool.submit([&](const CancelToken& t) {
        while (!t.cancelled()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        throw std::runtime_error("hang cancelled");
      }));
    } else if (i % 10 == 7) {
      pool.submit([&](const CancelToken&) {
        ran.fetch_add(1);
        throw std::runtime_error("boom");
      });
    } else {
      pool.submit([&](const CancelToken&) {
        ran.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      });
    }
  }
  for (const std::uint64_t id : hang_ids) pool.abandon(id);

  int completions = 0, failures = 0, abandoned = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (completions < kJobs) {
    const auto d = pool.wait_any(deadline);
    ASSERT_TRUE(d.has_value()) << "pool lost a completion";
    ++completions;
    if (!d->ok) ++failures;
    if (d->abandoned) ++abandoned;
  }
  EXPECT_EQ(ran.load(), kJobs - static_cast<int>(hang_ids.size()));
  // Every hang either failed (cancelled mid-run, abandoned=true) or was
  // dropped while queued (also a failure); every thrower failed.
  EXPECT_EQ(failures, 2 * static_cast<int>(hang_ids.size()));
  EXPECT_EQ(abandoned, pool.workers_abandoned());
  // Only hangs caught *running* retire a worker; queued ones are dropped.
  EXPECT_LE(pool.workers_abandoned(), static_cast<int>(hang_ids.size()));
  EXPECT_EQ(pool.workers_spawned(), 4 + pool.workers_abandoned());
}

TEST(SweepWorkerPoolThreadStress, DestructorJoinsHungWorkers) {
  auto pool = std::make_unique<WorkerPool>(2);
  for (int i = 0; i < 4; ++i) {
    pool->submit([](const CancelToken& t) {
      while (!t.cancelled()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  // Destruction cancels every token and joins all workers without waiting
  // on any external signal.
  pool.reset();
  SUCCEED();
}

}  // namespace
}  // namespace hybridnoc::sweep
