// End-to-end crash-safety: run the real hybridnoc_sweep binary, SIGKILL it
// mid-sweep (after the journal shows progress), rerun the same command, and
// require the resumed aggregate to be byte-identical to an uninterrupted
// run in a clean directory. This is the `kill -9` contract from the tool's
// header, exercised through fork/exec — no in-process shortcuts.
//
// HN_SWEEP_TOOL is injected by CMake as $<TARGET_FILE:hybridnoc_sweep>.
#include <gtest/gtest.h>

#include <csignal>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/fileio.hpp"

namespace hybridnoc::sweep {
namespace {

// Big enough that the process is very unlikely to finish before the journal
// shows first progress plus our kill latency; small enough to finish fast.
constexpr const char* kSpecText =
    "name = killres\n"
    "set k = 4\n"
    "set warmup_packets = 40\n"
    "set warmup_min_cycles = 200\n"
    "set measure_packets = 150\n"
    "set max_cycles = 60000\n"
    "sweep preset = packet_vc4, hybrid_tdm_vc4\n"
    "sweep rate = 0.02, 0.04, 0.06, 0.08\n";

class KillResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            (std::string("hn_killres_") + ::testing::UnitTest::GetInstance()
                                              ->current_test_info()
                                              ->name()))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    spec_path_ = dir_ + "/spec.txt";
    ASSERT_TRUE(write_file_atomic(spec_path_, kSpecText));
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  pid_t spawn_sweep(const std::string& out_dir) {
    const pid_t pid = fork();
    if (pid == 0) {
      // Child: quiet stdout; the test reads state from the out dir.
      ::freopen("/dev/null", "w", stdout);
      execl(HN_SWEEP_TOOL, HN_SWEEP_TOOL, "run", "--spec",
            spec_path_.c_str(), "--out", out_dir.c_str(), "--workers", "2",
            static_cast<char*>(nullptr));
      _exit(127);
    }
    return pid;
  }

  /// Wait for the child and return its exit code (-signal if killed).
  static int join(pid_t pid) {
    int status = 0;
    EXPECT_EQ(waitpid(pid, &status, 0), pid);
    if (WIFEXITED(status)) return WEXITSTATUS(status);
    if (WIFSIGNALED(status)) return -WTERMSIG(status);
    return -1000;
  }

  /// Number of journaled `done` records (0 when the journal is absent).
  static int done_count(const std::string& out_dir) {
    std::string text;
    if (!read_file(out_dir + "/journal", &text)) return 0;
    int n = 0;
    for (std::size_t pos = 0;
         (pos = text.find(" done ", pos)) != std::string::npos; ++pos) {
      ++n;
    }
    return n;
  }

  std::string dir_;
  std::string spec_path_;
};

TEST_F(KillResumeTest, Sigkill9MidSweepResumesBitIdentically) {
  // Reference: an uninterrupted run in its own directory.
  const std::string clean_dir = dir_ + "/clean";
  ASSERT_EQ(join(spawn_sweep(clean_dir)), 0);
  std::string clean_aggregate;
  ASSERT_TRUE(read_file(clean_dir + "/aggregate.tsv", &clean_aggregate));
  EXPECT_NE(clean_aggregate.find("\tok\t"), std::string::npos);

  // Victim: kill -9 once the journal proves real progress (>= 1 done, not
  // yet all 8). If the process wins the race and finishes first, that run
  // simply becomes a (valid) fully-complete first pass — the resume below
  // must then be pure cache replay, which the byte-compare still verifies.
  const std::string victim_dir = dir_ + "/victim";
  const pid_t victim = spawn_sweep(victim_dir);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::minutes(2);
  while (done_count(victim_dir) < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GE(done_count(victim_dir), 1) << "no progress before deadline";
  kill(victim, SIGKILL);
  const int killed_status = join(victim);
  const int first_pass_done = done_count(victim_dir);

  // Resume the identical command in the same directory: it must finish the
  // remaining points and produce the exact bytes of the clean run.
  ASSERT_EQ(join(spawn_sweep(victim_dir)), 0);
  std::string resumed_aggregate;
  ASSERT_TRUE(read_file(victim_dir + "/aggregate.tsv", &resumed_aggregate));
  EXPECT_EQ(resumed_aggregate, clean_aggregate);

  // When the kill landed mid-run (the overwhelmingly common case), check
  // the resume actually had work left to do.
  if (killed_status == -SIGKILL) {
    EXPECT_LT(first_pass_done, 8) << "kill landed after completion";
  }
}

TEST_F(KillResumeTest, ExpandModeListsAllPoints) {
  // Smoke the expand path through the real binary too: 8 points, one line
  // each plus the header.
  const std::string cmd = std::string(HN_SWEEP_TOOL) + " expand --spec " +
                          spec_path_ + " > " + dir_ + "/expand.txt";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  std::string text;
  ASSERT_TRUE(read_file(dir_ + "/expand.txt", &text));
  EXPECT_NE(text.find("8 points"), std::string::npos);
  EXPECT_NE(text.find("preset=hybrid_tdm_vc4,rate=0.08"), std::string::npos);
}

TEST_F(KillResumeTest, MalformedSpecIsAStructuredError) {
  ASSERT_TRUE(write_file_atomic(spec_path_, "set bogus_key = 1\n"));
  const std::string cmd = std::string(HN_SWEEP_TOOL) + " run --spec " +
                          spec_path_ + " --out " + dir_ + "/out 2> " +
                          dir_ + "/err.txt > /dev/null";
  const int rc = std::system(cmd.c_str());
  ASSERT_TRUE(WIFEXITED(rc));
  EXPECT_EQ(WEXITSTATUS(rc), 2);  // structured error, not an abort
  std::string err;
  ASSERT_TRUE(read_file(dir_ + "/err.txt", &err));
  EXPECT_NE(err.find("unknown key 'bogus_key'"), std::string::npos);
}

}  // namespace
}  // namespace hybridnoc::sweep
