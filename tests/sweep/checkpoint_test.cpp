// Twin-run equivalence suite for the warmup checkpoint (driver snapshot
// API): measuring from a restored snapshot must be bit-identical to
// measuring in place, and every corrupt-archive path must fail with
// StateError — never an abort — so the sweep orchestrator can treat a bad
// checkpoint as a cache miss.
#include <gtest/gtest.h>

#include <string>

#include "common/pool.hpp"
#include "common/state_io.hpp"
#include "noc/network.hpp"
#include "sim/driver.hpp"
#include "sim/net_adapter.hpp"

namespace hybridnoc {
namespace {

RunParams small_params(double rate) {
  RunParams p;
  p.injection_rate = rate;
  p.warmup_packets = 60;
  p.warmup_min_cycles = 400;
  p.measure_packets = 250;
  p.max_cycles = 80000;
  p.seed = 7;
  return p;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.offered_rate, b.offered_rate);
  EXPECT_EQ(a.accepted_rate, b.accepted_rate);
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.saturated, b.saturated);
  EXPECT_EQ(a.measured_packets, b.measured_packets);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.cs_flit_fraction, b.cs_flit_fraction);
  EXPECT_EQ(a.config_flit_fraction, b.config_flit_fraction);
  EXPECT_EQ(a.energy.buffer_writes, b.energy.buffer_writes);
  EXPECT_EQ(a.energy.buffer_reads, b.energy.buffer_reads);
  EXPECT_EQ(a.energy.xbar_flits, b.energy.xbar_flits);
  EXPECT_EQ(a.energy.vc_arbs, b.energy.vc_arbs);
  EXPECT_EQ(a.energy.sw_arbs, b.energy.sw_arbs);
  EXPECT_EQ(a.energy.link_flits, b.energy.link_flits);
  EXPECT_EQ(a.energy.slot_table_reads, b.energy.slot_table_reads);
  EXPECT_EQ(a.energy.slot_table_writes, b.energy.slot_table_writes);
  EXPECT_EQ(a.energy.dlt_accesses, b.energy.dlt_accesses);
  EXPECT_EQ(a.energy.cs_latch_flits, b.energy.cs_latch_flits);
  EXPECT_EQ(a.energy.cycles, b.energy.cycles);
  EXPECT_EQ(a.energy.vc_active_cycles, b.energy.vc_active_cycles);
  EXPECT_EQ(a.energy.slot_entry_active_cycles,
            b.energy.slot_entry_active_cycles);
  EXPECT_EQ(a.energy.dlt_active_cycles, b.energy.dlt_active_cycles);
  EXPECT_EQ(a.energy.cs_misc_active_cycles, b.energy.cs_misc_active_cycles);
  EXPECT_EQ(a.energy.link_active_cycles, b.energy.link_active_cycles);
}

void twin_run(const NocConfig& cfg, const RunParams& params) {
  const WarmupSnapshot snap = warmup_snapshot(cfg, params);
  ASSERT_TRUE(snap.ok);
  const RunResult restored = run_synthetic_from_snapshot(cfg, params,
                                                         snap.sealed);
  const RunResult in_place = run_synthetic_drained(cfg, params);
  EXPECT_GT(in_place.measured_packets, 0u);
  expect_identical(in_place, restored);
}

TEST(Checkpoint, RestoreEqualsColdRunPacket) {
  twin_run(NocConfig::packet_vc4(4), small_params(0.08));
}

TEST(Checkpoint, RestoreEqualsColdRunHybridTdm) {
  twin_run(NocConfig::hybrid_tdm_vc4(4), small_params(0.08));
}

// The full-feature TDM config: dynamic slot sizing, hitchhiker + vicinity
// sharing and the DLT all carry checkpointed state.
TEST(Checkpoint, RestoreEqualsColdRunHybridTdmHop) {
  twin_run(NocConfig::hybrid_tdm_hop_vc4(4), small_params(0.1));
}

// VC power gating checkpoints the gating controller state in the routers.
TEST(Checkpoint, RestoreEqualsColdRunHybridTdmGated) {
  twin_run(NocConfig::hybrid_tdm_hop_vct(4), small_params(0.1));
}

TEST(Checkpoint, RestoreEqualsColdRunTornado) {
  RunParams p = small_params(0.1);
  p.pattern = TrafficPattern::Tornado;
  twin_run(NocConfig::hybrid_tdm_vc4(4), p);
}

// Measure-phase params may differ from the snapshotting run: only the
// warmup identity is guarded.
TEST(Checkpoint, MeasureParamsMayDiffer) {
  const NocConfig cfg = NocConfig::hybrid_tdm_vc4(4);
  const RunParams p = small_params(0.08);
  const WarmupSnapshot snap = warmup_snapshot(cfg, p);
  ASSERT_TRUE(snap.ok);
  RunParams longer = p;
  longer.measure_packets = 400;
  const RunResult a = run_synthetic_from_snapshot(cfg, longer, snap.sealed);
  EXPECT_GE(a.measured_packets, 400u);
}

// Network-archive round trip: restore then save must reproduce the archive
// byte for byte (the state is closed under save/restore).
TEST(Checkpoint, NetworkArchiveRoundTripIsByteIdentical) {
  const NocConfig cfg = NocConfig::hybrid_tdm_hop_vc4(4);
  const RunParams p = small_params(0.1);
  const Mesh mesh(cfg.k);

  auto warmed = make_network(cfg);
  Network* net = warmed->mesh_network_mut();
  ASSERT_NE(net, nullptr);
  {
    SyntheticTraffic traffic(mesh, p.pattern, p.injection_rate,
                             cfg.ps_data_flits, p.seed);
    PacketId next_id = 1;
    while (net->now() < 3000) {
      traffic.generate([&](NodeId src, NodeId dst) {
        auto pkt = make_packet();
        pkt->id = next_id++;
        pkt->src = src;
        pkt->dst = dst;
        pkt->num_flits = cfg.ps_data_flits;
        pkt->cs_eligible = true;
        warmed->send(std::move(pkt));
      });
      warmed->tick();
    }
    ASSERT_TRUE(net->drain(100000));
  }
  const std::string archive = net->save_state();

  auto fresh = make_network(cfg);
  Network* twin = fresh->mesh_network_mut();
  ASSERT_NE(twin, nullptr);
  twin->restore_state(archive);
  EXPECT_EQ(twin->save_state(), archive);
}

TEST(Checkpoint, TruncatedSnapshotThrows) {
  const NocConfig cfg = NocConfig::packet_vc4(4);
  const RunParams p = small_params(0.08);
  const WarmupSnapshot snap = warmup_snapshot(cfg, p);
  ASSERT_TRUE(snap.ok);
  const std::string cut = snap.sealed.substr(0, snap.sealed.size() / 2);
  EXPECT_THROW(run_synthetic_from_snapshot(cfg, p, cut), StateError);
}

TEST(Checkpoint, BitFlippedSnapshotThrows) {
  const NocConfig cfg = NocConfig::packet_vc4(4);
  const RunParams p = small_params(0.08);
  const WarmupSnapshot snap = warmup_snapshot(cfg, p);
  ASSERT_TRUE(snap.ok);
  // Flip one bit in every quarter of the archive: header, guards, network
  // payload, digest region.
  for (std::size_t q = 0; q < 4; ++q) {
    std::string bad = snap.sealed;
    bad[q * (bad.size() / 4) + 16] ^= 0x10;
    EXPECT_THROW(run_synthetic_from_snapshot(cfg, p, bad), StateError);
  }
}

TEST(Checkpoint, EmptySnapshotThrows) {
  const NocConfig cfg = NocConfig::packet_vc4(4);
  const RunParams p = small_params(0.08);
  EXPECT_THROW(run_synthetic_from_snapshot(cfg, p, std::string()),
               StateError);
}

TEST(Checkpoint, MismatchedParamsThrow) {
  const NocConfig cfg = NocConfig::packet_vc4(4);
  const RunParams p = small_params(0.08);
  const WarmupSnapshot snap = warmup_snapshot(cfg, p);
  ASSERT_TRUE(snap.ok);

  RunParams other_rate = p;
  other_rate.injection_rate = 0.1;
  EXPECT_THROW(run_synthetic_from_snapshot(cfg, other_rate, snap.sealed),
               StateError);

  RunParams other_seed = p;
  other_seed.seed = 99;
  EXPECT_THROW(run_synthetic_from_snapshot(cfg, other_seed, snap.sealed),
               StateError);
}

TEST(Checkpoint, MismatchedArchThrows) {
  const RunParams p = small_params(0.08);
  const WarmupSnapshot snap = warmup_snapshot(NocConfig::packet_vc4(4), p);
  ASSERT_TRUE(snap.ok);
  EXPECT_THROW(
      run_synthetic_from_snapshot(NocConfig::hybrid_tdm_vc4(4), p,
                                  snap.sealed),
      StateError);
}

}  // namespace
}  // namespace hybridnoc
