#include "power/energy_model.hpp"

#include <gtest/gtest.h>

namespace hybridnoc {
namespace {

TEST(EnergyModel, ZeroCountersZeroEnergy) {
  const auto b = compute_breakdown(EnergyCounters{}, EnergyParams::nangate45());
  EXPECT_DOUBLE_EQ(b.total(), 0.0);
}

TEST(EnergyModel, BufferDynamicEnergy) {
  EnergyCounters c;
  c.buffer_writes = 10;
  c.buffer_reads = 10;
  const auto p = EnergyParams::nangate45();
  const auto b = compute_breakdown(c, p);
  EXPECT_DOUBLE_EQ(b.dynamic(EnergyComponent::Buffer),
                   10 * p.buffer_write + 10 * p.buffer_read);
  EXPECT_DOUBLE_EQ(b.total_static(), 0.0);
}

TEST(EnergyModel, CsComponentCollectsAllCircuitHardware) {
  EnergyCounters c;
  c.slot_table_reads = 3;
  c.slot_table_writes = 2;
  c.dlt_accesses = 5;
  c.cs_latch_flits = 7;
  const auto p = EnergyParams::nangate45();
  const auto b = compute_breakdown(c, p);
  EXPECT_DOUBLE_EQ(b.dynamic(EnergyComponent::CsComponent),
                   3 * p.slot_table_read + 2 * p.slot_table_write +
                       5 * p.dlt_access + 7 * p.cs_latch);
}

TEST(EnergyModel, LeakageScalesWithActivityIntegrals) {
  EnergyCounters c;
  c.cycles = 100;
  c.vc_active_cycles = 100 * 20;  // 20 powered VCs for 100 cycles
  c.slot_entry_active_cycles = 100 * 128;
  c.link_active_cycles = 100 * 4;
  const auto p = EnergyParams::nangate45();
  const auto b = compute_breakdown(c, p);
  EXPECT_DOUBLE_EQ(b.leakage(EnergyComponent::Buffer), 2000 * p.leak_per_vc_buffer);
  EXPECT_DOUBLE_EQ(b.leakage(EnergyComponent::CsComponent),
                   12800 * p.leak_slot_entry);
  EXPECT_DOUBLE_EQ(b.leakage(EnergyComponent::Crossbar), 100 * p.leak_xbar);
  EXPECT_DOUBLE_EQ(b.leakage(EnergyComponent::Link), 400 * p.leak_link);
  EXPECT_DOUBLE_EQ(b.leakage(EnergyComponent::Clock), 0.0);
}

TEST(EnergyModel, GatingVcsReducesBufferLeakage) {
  EnergyCounters full, gated;
  full.cycles = gated.cycles = 1000;
  full.vc_active_cycles = 1000 * 20;  // 4 VCs x 5 ports
  gated.vc_active_cycles = 1000 * 5;  // 1 VC x 5 ports
  const auto p = EnergyParams::nangate45();
  EXPECT_LT(compute_breakdown(gated, p).leakage(EnergyComponent::Buffer),
            compute_breakdown(full, p).leakage(EnergyComponent::Buffer));
}

TEST(EnergyModel, CountersMergeAdditively) {
  EnergyCounters a, b;
  a.buffer_writes = 3;
  a.cycles = 10;
  b.buffer_writes = 4;
  b.cycles = 20;
  b.link_flits = 7;
  a += b;
  EXPECT_EQ(a.buffer_writes, 7u);
  EXPECT_EQ(a.cycles, 30u);
  EXPECT_EQ(a.link_flits, 7u);
}

TEST(EnergyModel, BreakdownMergeMatchesCounterMerge) {
  EnergyCounters a, b;
  a.buffer_writes = 5;
  a.xbar_flits = 9;
  a.cycles = 50;
  b.link_flits = 11;
  b.vc_active_cycles = 60;
  const auto p = EnergyParams::nangate45();
  EnergyBreakdown merged = compute_breakdown(a, p);
  merged += compute_breakdown(b, p);
  EnergyCounters both = a;
  both += b;
  EXPECT_DOUBLE_EQ(merged.total(), compute_breakdown(both, p).total());
}

TEST(EnergyModel, ComponentSharesAreCalibrated) {
  // A representative moderate-load activity mix: buffer energy must dominate
  // router dynamic energy (the premise of the paper's savings — references
  // [3], [4], [21]).
  EnergyCounters c;
  const std::uint64_t flit_hops = 100000;
  c.buffer_writes = flit_hops;
  c.buffer_reads = flit_hops;
  c.xbar_flits = flit_hops;
  c.link_flits = flit_hops;
  c.vc_arbs = flit_hops / 5;
  c.sw_arbs = flit_hops;
  const auto b = compute_breakdown(c, EnergyParams::nangate45());
  EXPECT_GT(b.dynamic(EnergyComponent::Buffer), b.dynamic(EnergyComponent::Crossbar));
  EXPECT_GT(b.dynamic(EnergyComponent::Buffer), b.dynamic(EnergyComponent::Link));
  EXPECT_GT(b.dynamic(EnergyComponent::Buffer), 10.0 * b.dynamic(EnergyComponent::Arbiter));
}

TEST(EnergyModel, SlotTableLeakageIsSmallShareOfRouter) {
  // Fig 9(b): CS static overhead ~2%. One router, 128 active entries,
  // 20 powered VCs.
  EnergyCounters c;
  c.cycles = 10000;
  c.vc_active_cycles = 10000 * 20;
  c.slot_entry_active_cycles = 10000 * 128;
  c.dlt_active_cycles = 10000;
  c.cs_misc_active_cycles = 10000;
  const auto b = compute_breakdown(c, EnergyParams::nangate45());
  const double share = b.leakage(EnergyComponent::CsComponent) / b.total_static();
  EXPECT_GT(share, 0.01);
  EXPECT_LT(share, 0.12);
}

}  // namespace
}  // namespace hybridnoc
