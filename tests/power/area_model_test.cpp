#include "power/area_model.hpp"

#include <gtest/gtest.h>

namespace hybridnoc {
namespace {

TEST(AreaModel, PacketRouterMatchesPaper) {
  const auto a = router_area(NocConfig::packet_vc4());
  EXPECT_NEAR(a.total(), 0.177, 0.002);  // Section IV-A
  EXPECT_DOUBLE_EQ(a.slot_table_mm2, 0.0);
  EXPECT_DOUBLE_EQ(a.cs_latch_mm2, 0.0);
}

TEST(AreaModel, HybridRouterMatchesPaper) {
  const auto a = router_area(NocConfig::hybrid_tdm_vc4());
  EXPECT_NEAR(a.total(), 0.188, 0.002);
  EXPECT_GT(a.slot_table_mm2, 0.0);
  EXPECT_GT(a.cs_latch_mm2, 0.0);
}

TEST(AreaModel, OverheadIsAboutSixPercent) {
  const double ps = router_area(NocConfig::packet_vc4()).total();
  const double hy = router_area(NocConfig::hybrid_tdm_vc4()).total();
  EXPECT_NEAR((hy - ps) / ps, 0.062, 0.01);
}

TEST(AreaModel, BuffersDominatePacketRouterStorage) {
  const auto a = router_area(NocConfig::packet_vc4());
  EXPECT_GT(a.buffers_mm2, a.allocators_mm2);
  EXPECT_GT(a.buffers_mm2, 0.25 * a.total());
}

TEST(AreaModel, SlotTableAreaScalesWithEntries) {
  NocConfig small = NocConfig::hybrid_tdm_vc4();
  NocConfig big = small;
  big.slot_table_size = 256;
  EXPECT_NEAR(router_area(big).slot_table_mm2,
              2.0 * router_area(small).slot_table_mm2, 1e-9);
}

TEST(AreaModel, DltOnlyWithPathSharing) {
  EXPECT_DOUBLE_EQ(router_area(NocConfig::hybrid_tdm_vc4()).dlt_mm2, 0.0);
  EXPECT_GT(router_area(NocConfig::hybrid_tdm_hop_vc4()).dlt_mm2, 0.0);
}

TEST(AreaModel, MoreVcsMoreBufferArea) {
  NocConfig c2 = NocConfig::packet_vc4();
  c2.num_vcs = 2;
  const NocConfig c4 = NocConfig::packet_vc4();
  EXPECT_NEAR(router_area(c4).buffers_mm2, 2.0 * router_area(c2).buffers_mm2, 1e-9);
}

}  // namespace
}  // namespace hybridnoc
