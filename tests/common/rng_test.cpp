#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

namespace hybridnoc {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformIntBoundsAndCoverage) {
  Rng r(9);
  std::array<int, 7> counts{};
  constexpr int kN = 70000;
  for (int i = 0; i < kN; ++i) {
    const auto v = r.uniform_int(7);
    ASSERT_LT(v, 7u);
    ++counts[static_cast<size_t>(v)];
  }
  // Chi-square with 6 dof; 99.9th percentile ~ 22.5.
  double chi2 = 0.0;
  const double expected = kN / 7.0;
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  EXPECT_LT(chi2, 22.5);
}

TEST(Rng, UniformRangeInclusive) {
  Rng r(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform_range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliExtremes) {
  Rng r(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng r(15);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, GeometricMean) {
  Rng r(17);
  // mean failures before success = (1-p)/p = 4 at p = 0.2.
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(r.geometric(0.2));
  EXPECT_NEAR(sum / kN, 4.0, 0.1);
}

TEST(Rng, GeometricPOneIsZero) {
  Rng r(19);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.geometric(1.0), 0u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(23);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, ReseedResets) {
  Rng a(31);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a.next_u64());
  a.reseed(31);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_u64(), first[static_cast<size_t>(i)]);
}

}  // namespace
}  // namespace hybridnoc
