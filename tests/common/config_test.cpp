#include "common/config.hpp"

#include <gtest/gtest.h>

namespace hybridnoc {
namespace {

TEST(NocConfig, TableIDefaults) {
  const NocConfig c;
  EXPECT_EQ(c.k, 6);
  EXPECT_EQ(c.num_nodes(), 36);
  EXPECT_EQ(c.num_vcs, 4);
  EXPECT_EQ(c.vc_buffer_depth, 5);
  EXPECT_EQ(c.channel_bytes, 16);
  EXPECT_EQ(c.ps_data_flits, 5);
  EXPECT_EQ(c.cs_data_flits, 4);
  EXPECT_EQ(c.config_flits, 1);
  EXPECT_EQ(c.slot_table_size, 128);
  EXPECT_DOUBLE_EQ(c.reservation_threshold, 0.9);
  c.validate();
}

TEST(NocConfig, PresetArchitectures) {
  EXPECT_EQ(NocConfig::packet_vc4().arch, RouterArch::PacketSwitched);
  EXPECT_EQ(NocConfig::hybrid_tdm_vc4().arch, RouterArch::HybridTdm);
  EXPECT_EQ(NocConfig::hybrid_sdm_vc4().arch, RouterArch::HybridSdm);
  EXPECT_FALSE(NocConfig::hybrid_tdm_vc4().vc_power_gating);
  EXPECT_TRUE(NocConfig::hybrid_tdm_vct().vc_power_gating);
  const auto hop = NocConfig::hybrid_tdm_hop_vc4();
  EXPECT_TRUE(hop.hitchhiker_sharing);
  EXPECT_TRUE(hop.vicinity_sharing);
  EXPECT_FALSE(hop.vc_power_gating);
  EXPECT_TRUE(NocConfig::hybrid_tdm_hop_vct().vc_power_gating);
}

TEST(NocConfig, SlotTableScalesWithNetworkSize) {
  // Section IV-D: 256-entry tables for the 8x8 and 16x16 networks.
  EXPECT_EQ(NocConfig::hybrid_tdm_vc4(6).slot_table_size, 128);
  EXPECT_EQ(NocConfig::hybrid_tdm_vc4(8).slot_table_size, 256);
  EXPECT_EQ(NocConfig::hybrid_tdm_vc4(16).slot_table_size, 256);
}

TEST(NocConfig, ReservationDuration) {
  NocConfig c = NocConfig::hybrid_tdm_vc4();
  // 64-byte line / 16-byte flits = 4 slots (Section II-B).
  EXPECT_EQ(c.reservation_duration(), 4);
  // Vicinity-sharing needs one extra header slot (Section III-A2).
  c.vicinity_sharing = true;
  EXPECT_EQ(c.reservation_duration(), 5);
}

TEST(NocConfig, ValidateAcceptsAllPresets) {
  for (int k : {4, 6, 8, 16}) {
    NocConfig::packet_vc4(k).validate();
    NocConfig::hybrid_tdm_vc4(k).validate();
    NocConfig::hybrid_tdm_vct(k).validate();
    NocConfig::hybrid_sdm_vc4(k).validate();
    NocConfig::hybrid_tdm_hop_vc4(k).validate();
    NocConfig::hybrid_tdm_hop_vct(k).validate();
  }
}

TEST(NocConfigDeathTest, RejectsNonPowerOfTwoSlotTable) {
  NocConfig c = NocConfig::hybrid_tdm_vc4();
  c.slot_table_size = 100;
  EXPECT_DEATH(c.validate(), "power of two");
}

TEST(NocConfigDeathTest, RejectsInvertedVcThresholds) {
  NocConfig c = NocConfig::hybrid_tdm_vct();
  c.vc_threshold_high = 0.1;
  c.vc_threshold_low = 0.5;
  EXPECT_DEATH(c.validate(), "HN_CHECK");
}

TEST(NocConfig, SummaryNamesArchitecture) {
  EXPECT_NE(NocConfig::hybrid_tdm_vc4().summary().find("Hybrid-TDM"),
            std::string::npos);
  EXPECT_NE(NocConfig::packet_vc4().summary().find("Packet"), std::string::npos);
  EXPECT_NE(NocConfig::hybrid_tdm_hop_vct().summary().find("vc-gating"),
            std::string::npos);
}

}  // namespace
}  // namespace hybridnoc
