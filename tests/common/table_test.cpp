#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace hybridnoc {
namespace {

TEST(TextTable, AlignedOutputContainsAllCells) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1.00"});
  t.add_row({"b", "22.50"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22.50"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTable, CsvOutput) {
  TextTable t({"a", "b", "c"});
  t.add_row({"1", "2", "3"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b,c\n1,2,3\n");
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
  EXPECT_EQ(TextTable::pct(0.123, 1), "12.3%");
  EXPECT_EQ(TextTable::pct(-0.05, 1), "-5.0%");
}

TEST(TextTableDeathTest, RowWidthMismatchAborts) {
  TextTable t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "row width");
}

TEST(Banner, ContainsTitleAndSubtitle) {
  std::ostringstream os;
  print_banner(os, "Figure 4", "load-latency");
  EXPECT_NE(os.str().find("== Figure 4 =="), std::string::npos);
  EXPECT_NE(os.str().find("load-latency"), std::string::npos);
}

}  // namespace
}  // namespace hybridnoc
