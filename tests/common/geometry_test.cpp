#include "common/geometry.hpp"

#include <gtest/gtest.h>

namespace hybridnoc {
namespace {

TEST(Mesh, CoordNodeRoundTrip) {
  Mesh m(6);
  for (NodeId n = 0; n < m.num_nodes(); ++n) {
    EXPECT_EQ(m.node(m.coord(n)), n);
  }
}

TEST(Mesh, RowMajorLayout) {
  Mesh m(6);
  EXPECT_EQ(m.coord(0), (Coord{0, 0}));
  EXPECT_EQ(m.coord(5), (Coord{5, 0}));
  EXPECT_EQ(m.coord(6), (Coord{0, 1}));
  EXPECT_EQ(m.coord(35), (Coord{5, 5}));
}

TEST(Mesh, HopDistance) {
  Mesh m(6);
  EXPECT_EQ(m.hop_distance(0, 0), 0);
  EXPECT_EQ(m.hop_distance(0, 5), 5);
  EXPECT_EQ(m.hop_distance(0, 35), 10);
  EXPECT_EQ(m.hop_distance(m.node({2, 3}), m.node({4, 1})), 4);
}

TEST(Mesh, AdjacencyIsDistanceOne) {
  Mesh m(4);
  for (NodeId a = 0; a < m.num_nodes(); ++a) {
    for (NodeId b = 0; b < m.num_nodes(); ++b) {
      EXPECT_EQ(m.adjacent(a, b), m.hop_distance(a, b) == 1);
    }
  }
}

TEST(Mesh, CornerHasTwoNeighbors) {
  Mesh m(6);
  int neighbors = 0;
  for (int p = 1; p < kNumPorts; ++p)
    if (m.has_neighbor(0, static_cast<Port>(p))) ++neighbors;
  EXPECT_EQ(neighbors, 2);
  EXPECT_TRUE(m.has_neighbor(0, Port::East));
  EXPECT_TRUE(m.has_neighbor(0, Port::South));
  EXPECT_FALSE(m.has_neighbor(0, Port::North));
  EXPECT_FALSE(m.has_neighbor(0, Port::West));
}

TEST(Mesh, InteriorHasFourNeighbors) {
  Mesh m(6);
  const NodeId n = m.node({3, 3});
  for (int p = 1; p < kNumPorts; ++p)
    EXPECT_TRUE(m.has_neighbor(n, static_cast<Port>(p)));
  EXPECT_EQ(m.neighbor(n, Port::North), m.node({3, 2}));
  EXPECT_EQ(m.neighbor(n, Port::South), m.node({3, 4}));
  EXPECT_EQ(m.neighbor(n, Port::East), m.node({4, 3}));
  EXPECT_EQ(m.neighbor(n, Port::West), m.node({2, 3}));
}

TEST(Mesh, NeighborIsSymmetric) {
  Mesh m(5);
  for (NodeId n = 0; n < m.num_nodes(); ++n) {
    for (int p = 1; p < kNumPorts; ++p) {
      const Port port = static_cast<Port>(p);
      if (!m.has_neighbor(n, port)) continue;
      const NodeId nb = m.neighbor(n, port);
      EXPECT_EQ(m.neighbor(nb, opposite(port)), n);
    }
  }
}

TEST(Port, OppositeIsInvolution) {
  for (int p = 0; p < kNumPorts; ++p) {
    const Port port = static_cast<Port>(p);
    EXPECT_EQ(opposite(opposite(port)), port);
  }
}

}  // namespace
}  // namespace hybridnoc
