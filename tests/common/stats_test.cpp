#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace hybridnoc {
namespace {

TEST(StatAccumulator, Empty) {
  StatAccumulator s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StatAccumulator, Basics) {
  StatAccumulator s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  // Sample variance of that classic data set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(StatAccumulator, MergeMatchesSequential) {
  StatAccumulator all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double v = std::sin(i * 0.7) * 10.0 + i * 0.1;
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StatAccumulator, MergeWithEmpty) {
  StatAccumulator a, b;
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(10.0, 5);
  h.add(0.0);
  h.add(9.999);
  h.add(10.0);
  h.add(49.0);
  h.add(50.0);   // overflow
  h.add(999.0);  // overflow
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
  EXPECT_EQ(h.overflow(), 2u);
}

TEST(Histogram, NegativeClampsToZeroBucket) {
  Histogram h(1.0, 4);
  h.add(-5.0);
  EXPECT_EQ(h.bucket(0), 1u);
}

TEST(Histogram, QuantileMedian) {
  Histogram h(1.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.5);
}

TEST(Histogram, QuantileExtremes) {
  Histogram h(1.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);  // right edge of last bucket
}

TEST(Histogram, QuantileInOverflowReturnsRecordedMax) {
  Histogram h(1.0, 4);
  h.add(0.5);
  h.add(1.5);
  h.add(750.0);
  h.add(900.0);
  // Half the mass sits past the finite range; tail quantiles must report the
  // recorded maximum rather than clamping to the top bucket edge (4.0).
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 900.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 900.0);
  EXPECT_DOUBLE_EQ(h.max_seen(), 900.0);
  h.reset();
  EXPECT_DOUBLE_EQ(h.max_seen(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(EpochRate, RollsOverEpochBoundary) {
  EpochRate r(100);
  for (std::uint64_t c = 0; c < 100; ++c) {
    if (c % 2 == 0) r.record();
    r.tick(c);
  }
  r.tick(100);  // boundary: 50 events / 100 cycles
  EXPECT_DOUBLE_EQ(r.rate(), 0.5);
  // Next epoch with no events.
  r.tick(200);
  EXPECT_DOUBLE_EQ(r.rate(), 0.0);
}

}  // namespace
}  // namespace hybridnoc
