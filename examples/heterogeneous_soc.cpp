// A CPU+GPU system-on-chip session: run one of the paper's workload mixes
// on the 36-tile heterogeneous system (Figure 7) under the baseline and the
// fully optimized hybrid NoC, and compare energy and performance.
//
//   ./build/examples/heterogeneous_soc [CPU_BENCH] [GPU_BENCH]
//   e.g. ./build/examples/heterogeneous_soc SWIM BLACKSCHOLES
#include <iostream>

#include "common/table.hpp"
#include "hetero/hetero_system.hpp"

using namespace hybridnoc;

int main(int argc, char** argv) {
  const std::string cpu = argc > 1 ? argv[1] : "APPLU";
  const std::string gpu = argc > 2 ? argv[2] : "BLACKSCHOLES";
  const WorkloadMix mix{cpu_benchmark(cpu), gpu_benchmark(gpu)};

  print_banner(std::cout, "heterogeneous SoC: " + mix.name(),
               "8 CPUs + 12 accelerators + 12 L2 banks + 4 memory controllers "
               "on a 6x6 mesh");

  // Show the floorplan.
  const TileMap tiles = TileMap::hetero36();
  for (int y = 0; y < 6; ++y) {
    for (int x = 0; x < 6; ++x) {
      std::cout << tile_type_name(tiles.type(static_cast<NodeId>(y * 6 + x)))
                << "\t";
    }
    std::cout << "\n";
  }

  const auto P = EnergyParams::nangate45();
  struct Config {
    std::string name;
    NocConfig cfg;
  };
  const std::vector<Config> configs = {
      {"Packet-VC4 (baseline)", NocConfig::packet_vc4(6)},
      {"Hybrid-TDM-VC4", NocConfig::hybrid_tdm_vc4(6)},
      {"Hybrid-TDM-hop-VCt", NocConfig::hybrid_tdm_hop_vct(6)},
  };

  TextTable t({"NoC", "CPU IPC", "GPU txn/cyc", "GPU inj", "cs flits",
               "energy (uJ)", "saving"});
  double base_energy = 0.0;
  for (const auto& c : configs) {
    HeteroSystem sys(c.cfg, mix, /*seed=*/1);
    const auto m = sys.run(/*warmup=*/6000, /*measure=*/24000);
    const double energy_uj = compute_breakdown(m.energy, P).total() * 1e-6;
    if (base_energy == 0.0) base_energy = energy_uj;
    t.add_row({c.name, TextTable::num(m.cpu_ipc, 3),
               TextTable::num(m.gpu_throughput, 3),
               TextTable::num(m.gpu_injection_rate, 3),
               TextTable::pct(m.cs_flit_fraction, 1),
               TextTable::num(energy_uj, 2),
               TextTable::pct(1.0 - energy_uj / base_energy, 1)});
  }
  t.print(std::cout);

  std::cout << "\nGPU data replies ride circuits when their warp slack "
               "tolerates the slot wait;\nCPU traffic stays packet-switched "
               "(Section V-A2).\n";
  return 0;
}
