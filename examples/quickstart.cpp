// Quickstart: build a TDM hybrid-switched mesh, drive a hot traffic pair
// until a circuit forms, and watch packets move from the packet-switched to
// the circuit-switched network.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "common/table.hpp"
#include "tdm/hybrid_network.hpp"

using namespace hybridnoc;

int main() {
  // Table-I configuration, shrunk slot tables so slot waits stay short for
  // this tiny demo.
  NocConfig cfg = NocConfig::hybrid_tdm_vc4(6);
  cfg.slot_table_size = 32;
  cfg.path_freq_threshold = 4;

  HybridNetwork net(cfg);

  // Observe deliveries.
  std::uint64_t ps_delivered = 0, cs_delivered = 0;
  StatAccumulator ps_latency, cs_latency;
  net.set_deliver_handler([&](const PacketPtr& pkt, Cycle at) {
    const double latency = static_cast<double>(at - pkt->created);
    if (pkt->switching == Switching::Circuit) {
      ++cs_delivered;
      cs_latency.add(latency);
    } else {
      ++ps_delivered;
      ps_latency.add(latency);
    }
  });

  // A node in one corner talks continuously to the far corner.
  const NodeId src = net.mesh().node({0, 0});
  const NodeId dst = net.mesh().node({5, 5});
  PacketId next_id = 1;

  std::cout << "driving a hot pair " << src << " -> " << dst << " ...\n";
  bool announced = false;
  for (int cycle = 0; cycle < 20000; ++cycle) {
    if (cycle % 20 == 0) {
      auto pkt = std::make_shared<Packet>();
      pkt->id = next_id++;
      pkt->src = src;
      pkt->dst = dst;
      pkt->num_flits = cfg.ps_data_flits;
      net.ni(src).send(std::move(pkt), net.now());
    }
    net.tick();
    if (!announced && net.hybrid_ni(src).has_connection(dst)) {
      announced = true;
      std::cout << "cycle " << net.now()
                << ": circuit established (setup -> ack handshake done); "
                   "subsequent packets ride reserved time slots\n";
    }
  }

  print_banner(std::cout, "quickstart results");
  TextTable t({"switching", "packets", "avg latency (cycles)"});
  t.add_row({"packet-switched", std::to_string(ps_delivered),
             TextTable::num(ps_latency.mean(), 1)});
  t.add_row({"circuit-switched", std::to_string(cs_delivered),
             TextTable::num(cs_latency.mean(), 1)});
  t.print(std::cout);

  const auto e = net.total_energy();
  std::cout << "\ncircuit flits traversed routers in 1 cycle each, skipping "
               "buffers:\n  buffer writes = "
            << e.buffer_writes << ", circuit latch uses = " << e.cs_latch_flits
            << ", slot-table writes = " << e.slot_table_writes << "\n";
  std::cout << "setups sent: " << net.total_setups_sent()
            << ", active circuits now: " << net.total_active_connections()
            << "\n";
  return 0;
}
