// A guided tour of circuit-switched path sharing (Section III-A):
//  1. a hot pair establishes a circuit along a row;
//  2. an intermediate node hitchhikes the idle circuit (DLT hop-on);
//  3. a message for a neighbour of the circuit's destination rides it and
//     hops off into the packet-switched network (vicinity sharing);
//  4. contention with the circuit's owner bounces the hitchhiker back to
//     packet switching, and the 2-bit failure counter escalates to a
//     dedicated setup.
#include <iostream>

#include "common/table.hpp"
#include "tdm/hybrid_network.hpp"

using namespace hybridnoc;

namespace {

PacketPtr data_packet(PacketId id, NodeId src, NodeId dst) {
  auto p = std::make_shared<Packet>();
  p->id = id;
  p->src = src;
  p->dst = dst;
  p->num_flits = 5;
  return p;
}

void drive(HybridNetwork& net, NodeId src, NodeId dst, PacketId& id, int packets,
           int gap) {
  for (int i = 0; i < packets; ++i) {
    net.ni(src).send(data_packet(id++, src, dst), net.now());
    for (int t = 0; t < gap; ++t) net.tick();
  }
}

}  // namespace

int main() {
  NocConfig cfg = NocConfig::hybrid_tdm_hop_vc4(6);  // both sharing schemes
  cfg.slot_table_size = 16;
  cfg.path_freq_threshold = 4;
  HybridNetwork net(cfg);

  const NodeId owner = net.mesh().node({0, 0});
  const NodeId dest = net.mesh().node({5, 0});
  const NodeId hiker = net.mesh().node({2, 0});
  const NodeId vicinity_dest = net.mesh().node({5, 1});
  PacketId id = 1;

  // 1. The owner's hot traffic sets the circuit up.
  std::cout << "1) owner " << owner << " sends hot traffic to " << dest << "...\n";
  drive(net, owner, dest, id, 40, 25);
  std::cout << "   circuit established: "
            << (net.hybrid_ni(owner).has_connection(dest) ? "yes" : "no")
            << "; slot-table entries at the source router: "
            << net.hybrid_router(owner).slots().valid_entries() << "\n";

  // 2. The hiker at (2,0) discovers the path in its DLT and hops on.
  std::cout << "\n2) " << hiker << " (on the path) sends to the same "
            << "destination — no setup of its own needed:\n";
  drive(net, hiker, dest, id, 20, 40);
  std::cout << "   hitchhiked packets: " << net.hybrid_ni(hiker).hitchhike_packets()
            << ", setups sent by the hiker: " << net.hybrid_ni(hiker).setups_sent()
            << "\n";

  // 3. Vicinity: the owner sends to a neighbour of the circuit destination.
  std::cout << "\n3) owner sends to " << vicinity_dest
            << " (adjacent to the circuit destination):\n";
  drive(net, owner, vicinity_dest, id, 20, 40);
  std::cout << "   vicinity rides: " << net.hybrid_ni(owner).vicinity_packets()
            << ", hop-offs executed at " << dest << ": "
            << net.hybrid_ni(dest).vicinity_hopoffs() << "\n";

  // 4. Contention: the owner floods its circuit; the hiker keeps trying.
  std::cout << "\n4) owner floods the circuit; hiker contends:\n";
  for (int cycle = 0; cycle < 8000; ++cycle) {
    if (cycle % 4 == 0) net.ni(owner).send(data_packet(id++, owner, dest), net.now());
    if (cycle % 32 == 0) net.ni(hiker).send(data_packet(id++, hiker, dest), net.now());
    net.tick();
  }
  std::cout << "   hitchhike bounces (re-sent packet-switched): "
            << net.total_hitchhike_bounces()
            << "\n   hiker escalated to its own circuit: "
            << (net.hybrid_ni(hiker).has_connection(dest) ? "yes" : "no")
            << " (setups sent: " << net.hybrid_ni(hiker).setups_sent() << ")\n";

  std::cout << "\nnetwork totals: cs packets " << net.total_cs_packets()
            << ", hitchhiked " << net.total_hitchhike_packets() << ", vicinity "
            << net.total_vicinity_packets() << ", steals " << net.total_ps_steals()
            << "\n";
  return 0;
}
