// Using the experiment driver as a library: sweep a synthetic pattern across
// architectures and print a compact latency/energy study — the same API the
// bench/ harnesses use, for your own design-space exploration.
//
//   ./build/examples/custom_traffic_study [pattern] [max_rate]
//   patterns: uniform, tornado, transpose, bitcomp, shuffle, hotspot
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "sim/driver.hpp"
#include "sim/parallel.hpp"

using namespace hybridnoc;

namespace {

TrafficPattern parse_pattern(const std::string& s) {
  if (s == "tornado") return TrafficPattern::Tornado;
  if (s == "transpose") return TrafficPattern::Transpose;
  if (s == "bitcomp") return TrafficPattern::BitComplement;
  if (s == "shuffle") return TrafficPattern::Shuffle;
  if (s == "hotspot") return TrafficPattern::Hotspot;
  return TrafficPattern::UniformRandom;
}

}  // namespace

int main(int argc, char** argv) {
  const TrafficPattern pattern = parse_pattern(argc > 1 ? argv[1] : "hotspot");
  const double max_rate = argc > 2 ? std::stod(argv[2]) : 0.35;

  print_banner(std::cout,
               std::string("custom traffic study: ") + traffic_pattern_name(pattern));

  std::vector<double> rates;
  for (double r = 0.05; r <= max_rate + 1e-9; r += 0.05) rates.push_back(r);

  struct Arch {
    std::string name;
    NocConfig cfg;
  };
  const std::vector<Arch> archs = {
      {"Packet-VC4", NocConfig::packet_vc4()},
      {"Hybrid-TDM-VC4", NocConfig::hybrid_tdm_vc4()},
      {"Hybrid-TDM-hop-VCt", NocConfig::hybrid_tdm_hop_vct()},
  };

  struct Job {
    size_t arch;
    double rate;
  };
  std::vector<Job> jobs;
  for (size_t a = 0; a < archs.size(); ++a)
    for (const double r : rates) jobs.push_back({a, r});
  const auto results = parallel_map(jobs, [&](const Job& j) {
    RunParams p;
    p.pattern = pattern;
    p.injection_rate = j.rate;
    p.warmup_packets = 500;
    p.measure_packets = 8000;
    return run_synthetic(archs[j.arch].cfg, p);
  });

  for (size_t a = 0; a < archs.size(); ++a) {
    print_banner(std::cout, archs[a].name);
    TextTable t({"rate", "avg latency", "p99", "accepted", "cs flits",
                 "energy (nJ/packet)"});
    for (size_t ri = 0; ri < rates.size(); ++ri) {
      const auto& r = results[a * rates.size() + ri];
      const double npj = r.measured_packets
                             ? r.total_energy_pj() / 1e3 /
                                   static_cast<double>(r.measured_packets)
                             : 0.0;
      t.add_row({TextTable::num(rates[ri], 2),
                 TextTable::num(r.avg_latency, 1) + (r.saturated ? "*" : ""),
                 TextTable::num(r.p99_latency, 1), TextTable::num(r.accepted_rate, 3),
                 TextTable::pct(r.cs_flit_fraction, 1), TextTable::num(npj, 2)});
    }
    t.print(std::cout);
  }
  std::cout << "(*: saturated)\n";
  return 0;
}
