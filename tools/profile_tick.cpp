// profile_tick — per-subsystem cycle-cost profile of the cycle core.
//
//   profile_tick [--k 32] [--arch packet|tdm] [--inject 0.05] [--cycles 20000]
//                [--threads 1] [--no-active-set] [--watchdog 1024]
//                [--fast-forward]
//
// Runs seeded uniform-random injection against a k x k mesh and prints the
// Network::tick_profile() counters — tick dispatches per subsystem, watchdog
// sweeps, fast-forward jumps — alongside wall-clock cycles/sec. Use it to
// answer "where do the cycles go at this config?" before and after a
// scheduler or engine change:
//
//   tools/profile_tick --k 64 --inject 0            # idle floor
//   tools/profile_tick --k 64 --inject 0.005        # sparse regime
//   tools/profile_tick --k 64 --inject 0.1 --threads 4
//   tools/profile_tick --k 64 --inject 0 --no-active-set   # legacy sweep
//
// Dispatches/cycle is the headline number: at --inject 0 the active-set
// engine should show ~0 while the legacy sweep shows 2*k*k — the O(nodes)
// per-cycle cost the run-list scheduler eliminates.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "common/config.hpp"
#include "common/pool.hpp"
#include "common/rng.hpp"
#include "noc/network.hpp"
#include "tdm/hybrid_network.hpp"

using namespace hybridnoc;

namespace {

struct Options {
  int k = 32;
  std::string arch = "packet";
  double inject = 0.05;
  std::uint64_t cycles = 20000;
  int threads = 1;
  bool active_set = true;
  std::uint64_t watchdog = 0;
  bool fast_forward = false;
};

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: profile_tick [--k N] [--arch packet|tdm] [--inject RATE]\n"
      "                    [--cycles N] [--threads N] [--no-active-set]\n"
      "                    [--watchdog STALL_CYCLES] [--fast-forward]\n");
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (a == "--k") {
      o.k = std::atoi(next());
    } else if (a == "--arch") {
      o.arch = next();
    } else if (a == "--inject") {
      o.inject = std::atof(next());
    } else if (a == "--cycles") {
      o.cycles = std::strtoull(next(), nullptr, 10);
    } else if (a == "--threads") {
      o.threads = std::atoi(next());
    } else if (a == "--no-active-set") {
      o.active_set = false;
    } else if (a == "--watchdog") {
      o.watchdog = std::strtoull(next(), nullptr, 10);
    } else if (a == "--fast-forward") {
      o.fast_forward = true;
    } else {
      usage();
    }
  }
  if (o.k < 2 || o.cycles == 0 || o.threads < 1) usage();
  if (o.arch != "packet" && o.arch != "tdm") usage();
  return o;
}

template <typename Net>
void run(Net& net, const Options& o) {
  Rng rng(1);
  PacketId id = 1;
  const auto t0 = std::chrono::steady_clock::now();
  if (o.inject <= 0.0 && o.fast_forward) {
    net.fast_forward(o.cycles);
  } else {
    while (net.now() < static_cast<Cycle>(o.cycles)) {
      if (o.inject > 0.0) {
        for (NodeId s = 0; s < net.num_nodes(); ++s) {
          if (net.ni(s).inject_queue_depth() < 4 && rng.bernoulli(o.inject)) {
            auto p = make_packet();
            p->id = id++;
            p->src = s;
            p->dst = static_cast<NodeId>(rng.uniform_int(net.num_nodes()));
            if (p->dst == s) continue;
            p->num_flits = 5;
            net.ni(s).send(std::move(p), net.now());
          }
        }
      }
      net.tick();
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();

  const TickProfile p = net.tick_profile();
  const std::uint64_t nodes =
      static_cast<std::uint64_t>(net.num_nodes());
  const std::uint64_t dispatches = p.ni_ticks + p.router_ticks;
  const std::uint64_t wall_cycles = p.cycles + p.ff_skipped_cycles;
  std::printf("mesh                 %dx%d (%llu nodes)\n", o.k, o.k,
              static_cast<unsigned long long>(nodes));
  std::printf("simulated cycles     %llu (%llu ticked, %llu fast-forwarded)\n",
              static_cast<unsigned long long>(wall_cycles),
              static_cast<unsigned long long>(p.cycles),
              static_cast<unsigned long long>(p.ff_skipped_cycles));
  std::printf("wall time            %.3f s  (%.0f cycles/s)\n", secs,
              secs > 0 ? static_cast<double>(wall_cycles) / secs : 0.0);
  std::printf("ni ticks             %llu\n",
              static_cast<unsigned long long>(p.ni_ticks));
  std::printf("router ticks         %llu\n",
              static_cast<unsigned long long>(p.router_ticks));
  std::printf("dispatches/cycle     %.2f  (legacy full sweep would be %llu)\n",
              p.cycles ? static_cast<double>(dispatches) /
                             static_cast<double>(p.cycles)
                       : 0.0,
              static_cast<unsigned long long>(2 * nodes));
  std::printf("watchdog sweeps      %llu\n",
              static_cast<unsigned long long>(p.watchdog_sweeps));
  std::printf("fast-forward jumps   %llu\n",
              static_cast<unsigned long long>(p.ff_jumps));
  // Allocation / refcount telemetry: what the loaded path still pays the
  // allocator and the packet anchor per simulated cycle.
  const auto per_cycle = [&](std::uint64_t n) {
    return p.cycles ? static_cast<double>(n) / static_cast<double>(p.cycles)
                    : 0.0;
  };
  std::printf("packets minted       %llu  (%.3f /cycle)\n",
              static_cast<unsigned long long>(p.packets_minted),
              per_cycle(p.packets_minted));
  std::printf("pool hits            %llu  (%.3f /cycle)\n",
              static_cast<unsigned long long>(p.pool_hits),
              per_cycle(p.pool_hits));
  std::printf("pool misses          %llu  (%.3f /cycle)\n",
              static_cast<unsigned long long>(p.pool_misses),
              per_cycle(p.pool_misses));
  std::printf("flight acquires      %llu  (%.3f /cycle)\n",
              static_cast<unsigned long long>(p.flight_acquires),
              per_cycle(p.flight_acquires));
  std::printf("flight releases      %llu  (%.3f /cycle)\n",
              static_cast<unsigned long long>(p.flight_releases),
              per_cycle(p.flight_releases));
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  NocConfig cfg = o.arch == "tdm" ? NocConfig::hybrid_tdm_vc4(o.k)
                                  : NocConfig::packet_vc4(o.k);
  cfg.active_set_scheduler = o.active_set;
  cfg.tick_threads = o.threads;
  cfg.watchdog_stall_cycles = o.watchdog;
  if (o.arch == "tdm") {
    HybridNetwork net(cfg);
    run(net, o);
  } else {
    Network net(cfg);
    run(net, o);
  }
  return 0;
}
