// Crash-safe sweep front end.
//
//   hybridnoc_sweep expand --spec FILE
//       Print the expanded points (label + content hash) without running.
//
//   hybridnoc_sweep run --spec FILE --out DIR [options]
//       Run (or resume) the sweep. Results land in DIR/results/, warmup
//       checkpoints in DIR/checkpoints/, progress in DIR/journal, and the
//       deterministic aggregate in DIR/aggregate.tsv. Rerunning after any
//       interruption — kill -9 included — resumes from the journal and
//       produces a byte-identical aggregate.
//
// Exit codes: 0 = every point completed, 3 = completed with quarantined
// points (see the degradation report on stdout), 2 = usage/spec/
// environment error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "sweep/orchestrator.hpp"
#include "sweep/sweep_spec.hpp"

namespace {

using hybridnoc::sweep::SpecError;
using hybridnoc::sweep::SweepOptions;
using hybridnoc::sweep::SweepReport;
using hybridnoc::sweep::SweepSpec;

void usage() {
  std::fprintf(
      stderr,
      "usage: hybridnoc_sweep expand --spec FILE\n"
      "       hybridnoc_sweep run --spec FILE --out DIR [options]\n"
      "options:\n"
      "  --workers N        worker threads (default 4)\n"
      "  --max-attempts N   attempts before quarantine (default 3)\n"
      "  --timeout-ms T     per-point wall clock; 0 = none (default)\n"
      "  --backoff-base-ms B --backoff-cap-ms C   retry backoff envelope\n"
      "  --no-share-warmup  disable warmup-checkpoint sharing\n"
      "  --fresh            ignore + truncate an existing journal\n"
      "  --fault-seed S --fault-throw P --fault-hang P --fault-torn P\n"
      "                     deterministic fault-injection harness (tests)\n"
      "known spec keys: %s\n",
      hybridnoc::sweep::known_spec_keys().c_str());
}

bool parse_u64_arg(const char* s, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_double_arg(const char* s, double* out) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string mode = argv[1];
  std::string spec_path, out_dir;
  SweepOptions opt;

  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--spec") {
      spec_path = need_value("--spec");
    } else if (a == "--out") {
      out_dir = need_value("--out");
    } else if (a == "--workers") {
      opt.workers = std::atoi(need_value("--workers"));
    } else if (a == "--max-attempts") {
      opt.max_attempts = std::atoi(need_value("--max-attempts"));
    } else if (a == "--timeout-ms") {
      if (!parse_u64_arg(need_value("--timeout-ms"), &opt.timeout_ms)) {
        std::fprintf(stderr, "error: bad --timeout-ms\n");
        return 2;
      }
    } else if (a == "--backoff-base-ms") {
      if (!parse_u64_arg(need_value("--backoff-base-ms"),
                         &opt.backoff_base_ms)) {
        std::fprintf(stderr, "error: bad --backoff-base-ms\n");
        return 2;
      }
    } else if (a == "--backoff-cap-ms") {
      if (!parse_u64_arg(need_value("--backoff-cap-ms"),
                         &opt.backoff_cap_ms)) {
        std::fprintf(stderr, "error: bad --backoff-cap-ms\n");
        return 2;
      }
    } else if (a == "--no-share-warmup") {
      opt.share_warmup = false;
    } else if (a == "--fresh") {
      opt.resume = false;
    } else if (a == "--fault-seed") {
      opt.faults.enabled = true;
      if (!parse_u64_arg(need_value("--fault-seed"), &opt.faults.seed)) {
        std::fprintf(stderr, "error: bad --fault-seed\n");
        return 2;
      }
    } else if (a == "--fault-throw") {
      opt.faults.enabled = true;
      if (!parse_double_arg(need_value("--fault-throw"),
                            &opt.faults.throw_prob)) {
        std::fprintf(stderr, "error: bad --fault-throw\n");
        return 2;
      }
    } else if (a == "--fault-hang") {
      opt.faults.enabled = true;
      if (!parse_double_arg(need_value("--fault-hang"),
                            &opt.faults.hang_prob)) {
        std::fprintf(stderr, "error: bad --fault-hang\n");
        return 2;
      }
    } else if (a == "--fault-torn") {
      opt.faults.enabled = true;
      if (!parse_double_arg(need_value("--fault-torn"),
                            &opt.faults.torn_write_prob)) {
        std::fprintf(stderr, "error: bad --fault-torn\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", a.c_str());
      usage();
      return 2;
    }
  }

  if (spec_path.empty()) {
    std::fprintf(stderr, "error: --spec is required\n");
    usage();
    return 2;
  }

  SweepSpec spec;
  SpecError serr;
  if (!hybridnoc::sweep::load_sweep_spec(spec_path, &spec, &serr)) {
    std::fprintf(stderr, "error: %s\n", serr.to_string().c_str());
    return 2;
  }

  if (mode == "expand") {
    std::printf("# sweep %s: %zu points\n", spec.name.c_str(),
                spec.points.size());
    for (const auto& pt : spec.points) {
      std::printf("%016llx  %s\n",
                  static_cast<unsigned long long>(pt.hash),
                  pt.label.c_str());
    }
    return 0;
  }
  if (mode != "run") {
    std::fprintf(stderr, "error: unknown mode '%s'\n", mode.c_str());
    usage();
    return 2;
  }
  if (out_dir.empty()) {
    std::fprintf(stderr, "error: run needs --out DIR\n");
    return 2;
  }
  if (opt.workers < 1 || opt.max_attempts < 1) {
    std::fprintf(stderr,
                 "error: --workers and --max-attempts must be >= 1\n");
    return 2;
  }
  opt.out_dir = out_dir;

  try {
    const SweepReport report = hybridnoc::sweep::run_sweep(spec, opt);
    std::printf("%s\n", report.degradation.to_string().c_str());
    std::printf("aggregate: %s\n", report.aggregate_path.c_str());
    return report.degradation.complete() ? 0 : 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
