// hybridnoc — command-line front end for the simulator.
//
//   hybridnoc synth  --arch tdm --pattern tornado --rate 0.2 [--k 6] [--csv]
//   hybridnoc synth  --workload nn:resnet50 --fidelity fast --k 8
//   hybridnoc sweep  --arch tdm --pattern uniform --from 0.05 --to 0.4 --step 0.05
//   hybridnoc hetero --cpu APPLU --gpu BLACKSCHOLES --arch hop-vct
//   hybridnoc trace-gen --pattern tornado --rate 0.2 --cycles 5000 --out t.trace
//   hybridnoc trace-gen --workload coherence --k 8 --out c.trace
//   hybridnoc trace-run --arch tdm --in t.trace
//
// `hybridnoc --workload ...` with no command is shorthand for `synth`.
// Workloads: nn:resnet50 | nn:transformer | nn:gnmt | nn:@file | coherence
// Architectures: packet | sdm | tdm | tdm-vct | hop | hop-vct
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "common/assert.hpp"
#include "common/fileio.hpp"
#include "common/table.hpp"
#include "hetero/hetero_system.hpp"
#include "sim/driver.hpp"
#include "traffic/trace.hpp"
#include "workloads/workload.hpp"

using namespace hybridnoc;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> kv;
  bool flag(const std::string& k) const { return kv.count(k) > 0; }
  std::string get(const std::string& k, const std::string& dflt) const {
    const auto it = kv.find(k);
    return it == kv.end() ? dflt : it->second;
  }
  double num(const std::string& k, double dflt) const {
    const auto it = kv.find(k);
    return it == kv.end() ? dflt : std::stod(it->second);
  }
};

Args parse(int argc, char** argv) {
  Args a;
  int first_flag = 2;
  if (argc > 1) {
    // A leading flag (`hybridnoc --workload ...`) means "synth" — the
    // acceptance-criteria shorthand for running a workload end to end.
    if (std::string(argv[1]).rfind("--", 0) == 0) {
      a.command = "synth";
      first_flag = 1;
    } else {
      a.command = argv[1];
    }
  }
  for (int i = first_flag; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    key = key.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      a.kv[key] = argv[++i];
    } else {
      a.kv[key] = "1";
    }
  }
  return a;
}

NocConfig arch_preset(const std::string& name, int k) {
  if (name == "packet") return NocConfig::packet_vc4(k);
  if (name == "sdm") return NocConfig::hybrid_sdm_vc4(k);
  if (name == "tdm") return NocConfig::hybrid_tdm_vc4(k);
  if (name == "tdm-vct") return NocConfig::hybrid_tdm_vct(k);
  if (name == "hop") return NocConfig::hybrid_tdm_hop_vc4(k);
  if (name == "hop-vct") return NocConfig::hybrid_tdm_hop_vct(k);
  std::cerr << "unknown --arch '" << name
            << "' (packet|sdm|tdm|tdm-vct|hop|hop-vct)\n";
  std::exit(2);
}

NocConfig arch_config(const Args& a, const std::string& dflt_arch, int k) {
  NocConfig cfg = arch_preset(a.get("arch", dflt_arch), k);
  // --threads N runs the sharded parallel tick engine; results are
  // bit-identical to --threads 1 (the default single-threaded engine).
  cfg.tick_threads = static_cast<int>(a.num("threads", 1));
  return cfg;
}

TrafficPattern pattern_arg(const std::string& name) {
  if (name == "uniform") return TrafficPattern::UniformRandom;
  if (name == "tornado") return TrafficPattern::Tornado;
  if (name == "transpose") return TrafficPattern::Transpose;
  if (name == "bitcomp") return TrafficPattern::BitComplement;
  if (name == "shuffle") return TrafficPattern::Shuffle;
  if (name == "hotspot") return TrafficPattern::Hotspot;
  std::cerr << "unknown --pattern '" << name << "'\n";
  std::exit(2);
}

Fidelity fidelity_arg(const std::string& name) {
  if (name == "cycle") return Fidelity::Cycle;
  if (name == "fast") return Fidelity::Fast;
  std::cerr << "unknown --fidelity '" << name << "' (cycle|fast)\n";
  std::exit(2);
}

RunParams run_params(const Args& a, TrafficPattern pattern, double rate) {
  RunParams p;
  p.pattern = pattern;
  p.injection_rate = rate;
  p.warmup_packets = static_cast<std::uint64_t>(a.num("warmup", 1000));
  p.measure_packets = static_cast<std::uint64_t>(a.num("packets", 20000));
  p.seed = static_cast<std::uint64_t>(a.num("seed", 1));
  p.fidelity = fidelity_arg(a.get("fidelity", "cycle"));
  return p;
}

void emit(const Args& a, TextTable& t) {
  if (a.flag("csv")) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }
}

/// Builds the named workload with validation armed to throw: an unknown
/// spec, an unreadable nn:@file descriptor, or a mismatched descriptor
/// becomes a structured error on stderr and `false`, never an abort.
bool build_workload_checked(const std::string& spec,
                            const WorkloadOptions& opts, WorkloadTrace* out) {
  try {
    ScopedCheckThrows guard;
    *out = build_workload(spec, opts);
    return true;
  } catch (const CheckFailure& e) {
    std::cerr << "error: bad --workload '" << spec << "': " << e.what()
              << "\n";
    return false;
  }
}

/// Loads a trace file with validation armed to throw, so a malformed entry
/// or out-of-order cycle reports the offending file instead of aborting.
bool load_trace_checked(const std::string& path,
                        std::vector<TraceEntry>* out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot open trace file '" << path << "'\n";
    return false;
  }
  try {
    ScopedCheckThrows guard;
    *out = load_trace(in);
    return true;
  } catch (const CheckFailure& e) {
    std::cerr << "error: malformed trace file '" << path << "': " << e.what()
              << "\n";
    return false;
  }
}

WorkloadOptions workload_options(const Args& a, int k) {
  WorkloadOptions w;
  w.k = k;
  w.seed = static_cast<std::uint64_t>(a.num("seed", 1));
  w.intensity = a.num("intensity", 1.0);
  w.nn_iterations = static_cast<int>(a.num("iterations", 4));
  w.coherence_cycles = static_cast<Cycle>(a.num("cycles", 4000));
  return w;
}

int cmd_synth(const Args& a) {
  const int k = static_cast<int>(a.num("k", 6));
  const NocConfig cfg = arch_config(a, "tdm", k);
  const bool workload = a.flag("workload");
  std::string source;
  RunResult r;
  RunParams params;
  if (workload) {
    WorkloadTrace wt;
    if (!build_workload_checked(a.get("workload", ""), workload_options(a, k),
                                &wt)) {
      return 2;
    }
    params = run_params(a, TrafficPattern::UniformRandom, wt.offered_rate);
    r = run_trace(cfg, wt.entries, params);
    source = wt.name;
  } else {
    const TrafficPattern pattern = pattern_arg(a.get("pattern", "uniform"));
    params = run_params(a, pattern, a.num("rate", 0.1));
    r = run_synthetic(cfg, params);
    source = traffic_pattern_name(pattern);
  }
  TextTable t({"metric", "value"});
  t.add_row({"config", cfg.summary()});
  t.add_row({"fidelity", fidelity_name(params.fidelity)});
  t.add_row({workload ? "workload" : "pattern", source});
  t.add_row({"offered (flits/node/cyc)", TextTable::num(r.offered_rate, 3)});
  t.add_row({"accepted", TextTable::num(r.accepted_rate, 3)});
  t.add_row({"avg latency (cycles)", TextTable::num(r.avg_latency, 2)});
  t.add_row({"p99 latency", TextTable::num(r.p99_latency, 2)});
  t.add_row({"saturated", r.saturated ? "yes" : "no"});
  t.add_row({"cs flits", TextTable::pct(r.cs_flit_fraction, 1)});
  t.add_row({"config flits", TextTable::pct(r.config_flit_fraction, 2)});
  t.add_row({"energy (uJ)", TextTable::num(r.total_energy_pj() * 1e-6, 3)});
  emit(a, t);
  return 0;
}

int cmd_sweep(const Args& a) {
  const int k = static_cast<int>(a.num("k", 6));
  const NocConfig cfg = arch_config(a, "tdm", k);
  const TrafficPattern pattern = pattern_arg(a.get("pattern", "uniform"));
  std::vector<double> rates;
  for (double r = a.num("from", 0.05); r <= a.num("to", 0.4) + 1e-9;
       r += a.num("step", 0.05)) {
    rates.push_back(r);
  }
  const auto results = sweep_load(cfg, run_params(a, pattern, 0.0), rates);
  TextTable t({"rate", "latency", "p99", "accepted", "cs", "saturated"});
  for (size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    t.add_row({TextTable::num(rates[i], 3), TextTable::num(r.avg_latency, 2),
               TextTable::num(r.p99_latency, 2), TextTable::num(r.accepted_rate, 3),
               TextTable::pct(r.cs_flit_fraction, 1), r.saturated ? "y" : "n"});
  }
  emit(a, t);
  return 0;
}

int cmd_hetero(const Args& a) {
  const NocConfig cfg = arch_config(a, "hop-vct", 6);
  const WorkloadMix mix{cpu_benchmark(a.get("cpu", "APPLU")),
                        gpu_benchmark(a.get("gpu", "BLACKSCHOLES"))};
  HeteroSystem sys(cfg, mix, static_cast<std::uint64_t>(a.num("seed", 1)));
  const auto m = sys.run(static_cast<std::uint64_t>(a.num("warmup", 6000)),
                         static_cast<std::uint64_t>(a.num("cycles", 24000)));
  TextTable t({"metric", "value"});
  t.add_row({"mix", mix.name()});
  t.add_row({"config", cfg.summary()});
  t.add_row({"cpu ipc", TextTable::num(m.cpu_ipc, 3)});
  t.add_row({"gpu txn/cyc", TextTable::num(m.gpu_throughput, 3)});
  t.add_row({"gpu injection", TextTable::num(m.gpu_injection_rate, 3)});
  t.add_row({"cpu injection", TextTable::num(m.cpu_injection_rate, 3)});
  t.add_row({"cs flits", TextTable::pct(m.cs_flit_fraction, 1)});
  t.add_row({"energy (uJ)",
             TextTable::num(compute_breakdown(m.energy, EnergyParams::nangate45())
                                    .total() *
                                1e-6,
                            3)});
  emit(a, t);
  return 0;
}

int cmd_trace_gen(const Args& a) {
  const int k = static_cast<int>(a.num("k", 6));
  std::vector<TraceEntry> entries;
  if (a.flag("workload")) {
    WorkloadTrace wt;
    if (!build_workload_checked(a.get("workload", ""), workload_options(a, k),
                                &wt)) {
      return 2;
    }
    entries = std::move(wt.entries);
  } else {
    const Mesh mesh(k);
    SyntheticTraffic traffic(mesh, pattern_arg(a.get("pattern", "uniform")),
                             a.num("rate", 0.1), 5,
                             static_cast<std::uint64_t>(a.num("seed", 1)));
    const auto cycles = static_cast<Cycle>(a.num("cycles", 5000));
    for (Cycle c = 0; c < cycles; ++c) {
      traffic.generate(
          [&](NodeId s, NodeId d) { entries.push_back({c, s, d, 5}); });
    }
  }
  const std::string path = a.get("out", "traffic.trace");
  // Atomic write-temp-then-rename: an interrupted trace-gen never leaves a
  // half-written trace behind for trace-run to choke on.
  std::ostringstream out;
  save_trace(out, entries);
  std::string werr;
  if (!write_file_atomic(path, out.str(), &werr)) {
    std::cerr << "error: cannot write trace '" << path << "': " << werr
              << "\n";
    return 2;
  }
  std::cout << "wrote " << entries.size() << " injections to " << path << "\n";
  return 0;
}

int cmd_trace_run(const Args& a) {
  const int k = static_cast<int>(a.num("k", 6));
  auto net = make_network(arch_config(a, "tdm", k));
  std::vector<TraceEntry> entries;
  if (!load_trace_checked(a.get("in", "traffic.trace"), &entries)) return 2;
  TraceTraffic traffic(std::move(entries));
  StatAccumulator lat;
  net->set_deliver_handler([&](const PacketPtr& p, Cycle at) {
    lat.add(static_cast<double>(at - p->created));
  });
  PacketId id = 1;
  std::uint64_t injected = 0;
  while (!(traffic.exhausted() && net->quiescent())) {
    traffic.generate(net->now(), [&](NodeId s, NodeId d, int flits) {
      auto p = std::make_shared<Packet>();
      p->id = id++;
      p->src = s;
      p->dst = d;
      p->num_flits = flits;
      net->send(std::move(p));
      ++injected;
    });
    net->tick();
    if (net->now() > 10000000) {
      std::cerr << "giving up: network did not drain\n";
      return 1;
    }
  }
  TextTable t({"metric", "value"});
  t.add_row({"injections", std::to_string(injected)});
  t.add_row({"delivered", std::to_string(static_cast<std::uint64_t>(lat.count()))});
  t.add_row({"avg latency", TextTable::num(lat.mean(), 2)});
  t.add_row({"max latency", TextTable::num(lat.max(), 0)});
  t.add_row({"cycles", std::to_string(net->now())});
  t.add_row({"cs flits", std::to_string(net->cs_flits())});
  emit(a, t);
  return 0;
}

int usage() {
  std::cerr <<
      "usage: hybridnoc <command> [--key value ...]\n"
      "  synth      one synthetic run   (--arch --pattern --rate --k --threads\n"
      "                                  --fidelity cycle|fast --csv)\n"
      "             or workload run     (--workload nn:resnet50|nn:transformer\n"
      "                                  |nn:gnmt|nn:@file|coherence\n"
      "                                  --intensity --iterations --cycles)\n"
      "  sweep      load sweep          (--arch --pattern --from --to --step\n"
      "                                  --fidelity cycle|fast)\n"
      "  hetero     CPU+GPU workload    (--arch --cpu --gpu --cycles)\n"
      "  trace-gen  record a trace      (--pattern --rate --cycles --out,\n"
      "                                  or --workload ...)\n"
      "  trace-run  replay a trace      (--arch --in)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  if (a.command == "synth") return cmd_synth(a);
  if (a.command == "sweep") return cmd_sweep(a);
  if (a.command == "hetero") return cmd_hetero(a);
  if (a.command == "trace-gen") return cmd_trace_gen(a);
  if (a.command == "trace-run") return cmd_trace_run(a);
  return usage();
}
