// Record, replay and shrink config-fault storms (src/tdm/fault_trace.hpp).
//
//   shrink_fault_trace record --out storm.scenario [--seed N] [--cycles N]
//       [--drop P] [--delay P] [--dup P] [--max-delay N] [--resize C]...
//       [--pairs N] [--k N]
//       [--link-ber P] [--link-seed N] [--e2e]
//       [--kill-link NODE PORT CYCLE]... [--stick-link NODE PORT CYCLE DUR]...
//       [--kill-router NODE CYCLE]...
//     Generate a bursty multi-pair storm, run it under seeded faults with
//     recording on, and save the self-contained scenario (traffic + every
//     fault decision). The --link-*/--kill-*/--stick-* flags add v2
//     data-plane hardware faults (and --e2e arms end-to-end recovery so
//     corrupted packets are retransmitted); every transient that fires is
//     recorded too, so replay is RNG-free and the shrinker can drop
//     hardware faults like any other record. Prints which invariants the
//     run violates.
//
//   shrink_fault_trace replay --in storm.scenario [--audit]
//       [--invariant NAME] [--expect-violation]
//     Re-drive the recorded decision sequence (no RNG) and print the
//     outcome. --audit runs the reservation audit after every replayed
//     event. With --expect-violation the exit code is 0 only if the named
//     invariant (or the one stamped in the file) is still violated.
//
//   shrink_fault_trace shrink --in storm.scenario --invariant NAME
//       --out fixture.scenario [--audit]
//     Delta-debug (ddmin) the fault set down to a 1-minimal subset that
//     still violates NAME and write it back as a regression fixture.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "tdm/fault_trace.hpp"

namespace hybridnoc {
namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: shrink_fault_trace record --out FILE [options]\n"
               "         data-plane options: --link-ber P --link-seed N"
               " --e2e\n"
               "           --kill-link NODE PORT CYCLE"
               " --stick-link NODE PORT CYCLE DUR\n"
               "           --kill-router NODE CYCLE\n"
               "       shrink_fault_trace replay --in FILE [--audit]"
               " [--invariant NAME] [--expect-violation]\n"
               "       shrink_fault_trace shrink --in FILE --invariant NAME"
               " --out FILE [--audit]\n");
  std::exit(2);
}

/// Bursty multi-pair traffic mirroring the seeded-storm test: hot pairs with
/// staggered on/off phases so setups, acks and teardowns keep flowing.
std::vector<TraceEntry> make_storm_traffic(int k, int npairs, Cycle cycles,
                                           std::uint64_t seed) {
  Rng rng(seed);
  const NodeId nodes = static_cast<NodeId>(k) * k;
  std::vector<std::pair<NodeId, NodeId>> pairs;
  while (static_cast<int>(pairs.size()) < npairs) {
    const NodeId s = static_cast<NodeId>(rng.uniform_int(nodes));
    const NodeId d = static_cast<NodeId>(rng.uniform_int(nodes));
    // Far-apart pairs keep config messages in flight long enough for faults
    // and resizes to race them.
    const int hops = std::abs(s % k - d % k) + std::abs(s / k - d / k);
    if (hops < k / 2 + 1) continue;
    pairs.emplace_back(s, d);
  }
  std::vector<TraceEntry> traffic;
  for (Cycle c = 0; c < cycles; ++c) {
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if (((c >> 9) + i) % 3 != 0) continue;
      if (rng.bernoulli(0.25)) {
        traffic.push_back({c, pairs[i].first, pairs[i].second, 5});
      }
    }
  }
  return traffic;
}

void print_outcome(const ScenarioOutcome& o, bool replayed) {
  std::printf("quiesced                %s\n", o.quiesced ? "yes" : "NO");
  std::printf("broken_windows          %d\n", o.broken_windows);
  std::printf("orphan_entries          %d\n", o.orphan_entries);
  std::printf("valid_slot_entries      %d\n", o.valid_slot_entries);
  std::printf("active_connections      %d\n", o.active_connections);
  std::printf("config_in_flight        %llu\n",
              static_cast<unsigned long long>(o.config_in_flight));
  std::printf("slot_state_digest       %016llx\n",
              static_cast<unsigned long long>(o.slot_state_digest));
  std::printf("faults drop/delay/dup   %llu/%llu/%llu\n",
              static_cast<unsigned long long>(o.faults_dropped),
              static_cast<unsigned long long>(o.faults_delayed),
              static_cast<unsigned long long>(o.faults_duplicated));
  std::printf("stale_config_drops      %llu\n",
              static_cast<unsigned long long>(o.stale_config_drops));
  std::printf("pending_timeouts        %llu\n",
              static_cast<unsigned long long>(o.pending_timeouts));
  std::printf("expired_reservations    %llu\n",
              static_cast<unsigned long long>(o.expired_reservations));
  std::printf("orphan_ack_teardowns    %llu\n",
              static_cast<unsigned long long>(o.orphan_ack_teardowns));
  std::printf("setup_failures          %llu\n",
              static_cast<unsigned long long>(o.setup_failures));
  std::printf("data sent/delivered     %llu/%llu\n",
              static_cast<unsigned long long>(o.data_sent),
              static_cast<unsigned long long>(o.data_delivered));
  std::printf("retx/give-ups/unreach   %llu/%llu/%llu\n",
              static_cast<unsigned long long>(o.retransmits),
              static_cast<unsigned long long>(o.retx_give_ups),
              static_cast<unsigned long long>(o.unreachable_failed));
  std::printf("crc flagged/squashed    %llu/%llu\n",
              static_cast<unsigned long long>(o.crc_flagged_flits),
              static_cast<unsigned long long>(o.crc_squashed_packets));
  std::printf("cs_fault_teardowns      %llu\n",
              static_cast<unsigned long long>(o.cs_fault_teardowns));
  std::printf("setup_give_ups          %llu\n",
              static_cast<unsigned long long>(o.setup_give_ups));
  std::printf("failed_links            %d\n", o.failed_links);
  if (replayed) {
    std::printf("replay events/applied   %llu/%llu\n",
                static_cast<unsigned long long>(o.replay_events),
                static_cast<unsigned long long>(o.replay_applied));
    std::printf("replay_audit_failures   %llu\n",
                static_cast<unsigned long long>(o.replay_audit_failures));
  }
}

void print_violations(const ScenarioOutcome& o) {
  std::printf("violated invariants    ");
  bool any = false;
  for (const auto& name : known_invariants()) {
    if (violates_invariant(name, o)) {
      std::printf(" %s", name.c_str());
      any = true;
    }
  }
  std::printf("%s\n", any ? "" : " (none)");
}

struct Args {
  std::string mode;
  std::string in;
  std::string out;
  std::string invariant;
  bool audit = false;
  bool expect_violation = false;
  std::uint64_t seed = 7;
  Cycle cycles = 10000;
  double drop = 0.03, delay = 0.05, dup = 0.03;
  Cycle max_delay = 96;
  std::vector<Cycle> resizes;
  int pairs = 6;
  int k = 6;
  double link_ber = 0.0;
  std::uint64_t link_seed = 1;
  bool e2e = false;
  std::vector<FaultScenario::LinkFaultSpec> kill_links;
  std::vector<FaultScenario::LinkFaultSpec> stick_links;
  std::vector<std::pair<NodeId, Cycle>> kill_routers;
};

Args parse_args(int argc, char** argv) {
  if (argc < 2) usage();
  Args a;
  a.mode = argv[1];
  if (a.mode != "record" && a.mode != "replay" && a.mode != "shrink") usage();
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--in") a.in = value();
    else if (arg == "--out") a.out = value();
    else if (arg == "--invariant") a.invariant = value();
    else if (arg == "--audit") a.audit = true;
    else if (arg == "--expect-violation") a.expect_violation = true;
    else if (arg == "--seed") a.seed = std::strtoull(value().c_str(), nullptr, 10);
    else if (arg == "--cycles") a.cycles = std::strtoull(value().c_str(), nullptr, 10);
    else if (arg == "--drop") a.drop = std::strtod(value().c_str(), nullptr);
    else if (arg == "--delay") a.delay = std::strtod(value().c_str(), nullptr);
    else if (arg == "--dup") a.dup = std::strtod(value().c_str(), nullptr);
    else if (arg == "--max-delay") a.max_delay = std::strtoull(value().c_str(), nullptr, 10);
    else if (arg == "--resize") a.resizes.push_back(std::strtoull(value().c_str(), nullptr, 10));
    else if (arg == "--pairs") a.pairs = std::atoi(value().c_str());
    else if (arg == "--k") a.k = std::atoi(value().c_str());
    else if (arg == "--link-ber") a.link_ber = std::strtod(value().c_str(), nullptr);
    else if (arg == "--link-seed") a.link_seed = std::strtoull(value().c_str(), nullptr, 10);
    else if (arg == "--e2e") a.e2e = true;
    else if (arg == "--kill-link" || arg == "--stick-link") {
      FaultScenario::LinkFaultSpec f;
      f.node = static_cast<NodeId>(std::strtoul(value().c_str(), nullptr, 10));
      f.port = std::atoi(value().c_str());
      f.start = std::strtoull(value().c_str(), nullptr, 10);
      if (arg == "--stick-link") {
        f.duration = std::strtoull(value().c_str(), nullptr, 10);
        a.stick_links.push_back(f);
      } else {
        a.kill_links.push_back(f);
      }
    } else if (arg == "--kill-router") {
      const NodeId n = static_cast<NodeId>(std::strtoul(value().c_str(), nullptr, 10));
      const Cycle at = std::strtoull(value().c_str(), nullptr, 10);
      a.kill_routers.emplace_back(n, at);
    } else usage();
  }
  return a;
}

int run_record(const Args& a) {
  if (a.out.empty()) usage();
  FaultScenario s;
  s.k = a.k;
  s.run_cycles = a.cycles;
  s.resizes = a.resizes;
  s.dynamic_slot_sizing = !a.resizes.empty();
  s.fault_params.drop_prob = a.drop;
  s.fault_params.delay_prob = a.delay;
  s.fault_params.dup_prob = a.dup;
  s.fault_params.max_delay_cycles = a.max_delay;
  s.fault_params.seed = a.seed;
  s.link_ber = a.link_ber;
  s.link_fault_seed = a.link_seed;
  s.dead_links = a.kill_links;
  s.stuck_links = a.stick_links;
  s.dead_routers = a.kill_routers;
  // Data-plane faults corrupt payloads; without end-to-end recovery the
  // destination just squashes them, so arm it whenever faults are in play
  // (or on explicit request).
  s.e2e_recovery = a.e2e || a.link_ber > 0.0 || !a.kill_links.empty() ||
                   !a.stick_links.empty() || !a.kill_routers.empty();
  s.traffic = make_storm_traffic(a.k, a.pairs, a.cycles + s.cooldown_cycles,
                                 a.seed * 1000003 + 11);
  const ScenarioOutcome o =
      run_fault_scenario(s, ScenarioMode::Record, false, &s.faults);
  if (!a.invariant.empty()) s.invariant = a.invariant;
  write_fault_scenario_file(a.out, s);
  std::printf("recorded %zu config events (%zu faulted) over %llu cycles\n",
              s.faults.records.size(), s.faults.active_faults(),
              static_cast<unsigned long long>(a.cycles));
  print_outcome(o, /*replayed=*/false);
  print_violations(o);
  std::printf("wrote %s\n", a.out.c_str());
  return 0;
}

int run_replay(const Args& a) {
  if (a.in.empty()) usage();
  const FaultScenario s = read_fault_scenario_file(a.in);
  const std::string invariant =
      a.invariant.empty() ? s.invariant : a.invariant;
  const ScenarioOutcome o =
      run_fault_scenario(s, ScenarioMode::Replay, a.audit);
  std::printf("replayed %zu trace records (%zu faulted): applied %llu of "
              "%llu events\n",
              s.faults.records.size(), s.faults.active_faults(),
              static_cast<unsigned long long>(o.replay_applied),
              static_cast<unsigned long long>(o.replay_events));
  print_outcome(o, /*replayed=*/true);
  print_violations(o);
  if (a.expect_violation) {
    if (invariant.empty()) {
      std::fprintf(stderr, "no invariant named (file or --invariant)\n");
      return 2;
    }
    const bool violated = violates_invariant(invariant, o);
    std::printf("invariant '%s' %s\n", invariant.c_str(),
                violated ? "still violated (reproduced)" : "HOLDS");
    return violated ? 0 : 1;
  }
  return 0;
}

int run_shrink(const Args& a) {
  if (a.in.empty() || a.out.empty()) usage();
  const FaultScenario s = read_fault_scenario_file(a.in);
  const std::string invariant =
      a.invariant.empty() ? s.invariant : a.invariant;
  if (invariant.empty()) {
    std::fprintf(stderr, "shrink needs --invariant (or one in the file)\n");
    return 2;
  }
  const ShrinkResult r = shrink_fault_scenario(
      s, invariant, a.audit,
      [](const std::string& msg) { std::printf("  %s\n", msg.c_str()); });
  write_fault_scenario_file(a.out, r.minimized);
  std::printf("shrunk %zu recorded events (%zu faults) -> %zu faults in %d "
              "runs; wrote %s\n",
              r.original_records, r.original_faults, r.final_faults, r.runs,
              a.out.c_str());
  return 0;
}

}  // namespace
}  // namespace hybridnoc

int main(int argc, char** argv) {
  const hybridnoc::Args args = hybridnoc::parse_args(argc, argv);
  if (args.mode == "record") return hybridnoc::run_record(args);
  if (args.mode == "replay") return hybridnoc::run_replay(args);
  return hybridnoc::run_shrink(args);
}
