# Compare a fresh BENCH_simspeed.json against the checked-in baseline and
# fail on a cycle-throughput regression. Run as a ctest step:
#   cmake -DBASELINE=<repo>/BENCH_simspeed.json \
#         -DCURRENT=<build>/BENCH_simspeed.json \
#         [-DTOLERANCE=0.20] -P check_simspeed_regression.cmake
#
# Only benchmarks present in BOTH files are compared (new benchmarks don't
# fail until a baseline containing them is recorded), and only on
# items_per_second (node-cycles per wall second). The baseline is
# machine-specific: re-record it on your machine with the `bench_baseline`
# target before trusting absolute numbers.
if(NOT DEFINED TOLERANCE)
  set(TOLERANCE 0.20)
endif()

foreach(var BASELINE CURRENT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_simspeed_regression: -D${var}=<file> is required")
  endif()
  if(NOT EXISTS "${${var}}")
    message(FATAL_ERROR "check_simspeed_regression: ${var} file not found: ${${var}}")
  endif()
endforeach()

file(READ "${BASELINE}" baseline_json)
file(READ "${CURRENT}" current_json)

# name -> items_per_second for the current run.
string(JSON n_cur LENGTH "${current_json}" benchmarks)
math(EXPR n_cur_last "${n_cur} - 1")
set(cur_names "")
foreach(i RANGE ${n_cur_last})
  string(JSON name GET "${current_json}" benchmarks ${i} name)
  string(JSON ips ERROR_VARIABLE err GET "${current_json}" benchmarks ${i} items_per_second)
  if(err)
    continue()  # aggregate rows / benchmarks without a rate counter
  endif()
  string(MAKE_C_IDENTIFIER "${name}" key)
  set(cur_${key} "${ips}")
  list(APPEND cur_names "${name}")
endforeach()

set(failures "")
set(compared 0)
string(JSON n_base LENGTH "${baseline_json}" benchmarks)
math(EXPR n_base_last "${n_base} - 1")
foreach(i RANGE ${n_base_last})
  string(JSON name GET "${baseline_json}" benchmarks ${i} name)
  string(JSON base_ips ERROR_VARIABLE err GET "${baseline_json}" benchmarks ${i} items_per_second)
  if(err)
    continue()
  endif()
  string(MAKE_C_IDENTIFIER "${name}" key)
  if(NOT DEFINED cur_${key})
    message(STATUS "skipped (not in current run): ${name}")
    continue()
  endif()
  math(EXPR compared "${compared} + 1")
  set(cur_ips "${cur_${key}}")
  # floor = baseline * (1 - TOLERANCE). CMake's math() is integer-only, so
  # truncate the rates and express the tolerance as an integer percentage;
  # throughputs are well above 1k items/sec, so truncation noise is
  # irrelevant.
  string(REGEX MATCH "^[0-9]+" base_int "${base_ips}")
  string(REGEX MATCH "^[0-9]+" cur_int "${cur_ips}")
  set(keep_pct 100)
  string(REGEX MATCH "^0\\.([0-9][0-9]?)" tol_match "${TOLERANCE}")
  if(tol_match)
    set(tol_digits "${CMAKE_MATCH_1}")
    string(LENGTH "${tol_digits}" tl)
    if(tl EQUAL 1)
      math(EXPR keep_pct "100 - ${tol_digits} * 10")
    else()
      math(EXPR keep_pct "100 - ${tol_digits}")
    endif()
  endif()
  math(EXPR floor_int "${base_int} * ${keep_pct} / 100")
  if(cur_int LESS floor_int)
    list(APPEND failures
         "${name}: ${cur_int} items/s < floor ${floor_int} (baseline ${base_int}, keep ${keep_pct}%)")
  else()
    message(STATUS "ok: ${name}  current=${cur_int}  baseline=${base_int}  floor=${floor_int}")
  endif()
endforeach()

if(compared EQUAL 0)
  message(FATAL_ERROR "check_simspeed_regression: no comparable benchmarks between ${BASELINE} and ${CURRENT}")
endif()
if(failures)
  string(REPLACE ";" "\n  " failure_text "${failures}")
  message(FATAL_ERROR "cycle-throughput regression (> allowed tolerance):\n  ${failure_text}")
endif()
message(STATUS "simspeed regression check passed: ${compared} benchmarks within tolerance")
