# Compare a fresh BENCH_simspeed.json against the checked-in baseline and
# fail on a cycle-throughput regression. Run as a ctest step:
#   cmake -DBASELINE=<repo>/BENCH_simspeed.json \
#         -DCURRENT=<build>/BENCH_simspeed.json \
#         [-DTOLERANCE=0.20] -P check_simspeed_regression.cmake
#
# Only benchmarks present in BOTH files are compared (new benchmarks don't
# fail until a baseline containing them is recorded), and only on
# items_per_second (node-cycles per wall second). When a run carries
# repetitions, the best (max) repetition per benchmark is used on both
# sides — single-shot sub-10ns microbenchmarks swing ~20% run to run on a
# shared machine, which is exactly the tolerance; best-of-N is stable.
# Aggregate rows (mean/median/stddev) are skipped. The baseline is
# machine-specific: re-record it on your machine with the `bench_baseline`
# target before trusting absolute numbers.
if(NOT DEFINED TOLERANCE)
  set(TOLERANCE 0.20)
endif()

foreach(var BASELINE CURRENT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_simspeed_regression: -D${var}=<file> is required")
  endif()
  if(NOT EXISTS "${${var}}")
    message(FATAL_ERROR "check_simspeed_regression: ${var} file not found: ${${var}}")
  endif()
endforeach()

file(READ "${BASELINE}" baseline_json)
file(READ "${CURRENT}" current_json)

# Parse one JSON document into <prefix>_<key> = max items_per_second per
# benchmark name (integer-truncated; throughputs are well above 1k items/s,
# so truncation noise is irrelevant) plus <prefix>_names.
function(parse_benchmarks json prefix)
  string(JSON n LENGTH "${json}" benchmarks)
  math(EXPR n_last "${n} - 1")
  set(names "")
  foreach(i RANGE ${n_last})
    string(JSON agg ERROR_VARIABLE agg_err GET "${json}" benchmarks ${i} aggregate_name)
    if(NOT agg_err)
      continue()  # mean/median/stddev rows of a repetition set
    endif()
    string(JSON name GET "${json}" benchmarks ${i} name)
    string(JSON ips ERROR_VARIABLE err GET "${json}" benchmarks ${i} items_per_second)
    if(err)
      continue()  # benchmarks without a rate counter
    endif()
    string(REGEX MATCH "^[0-9]+" ips_int "${ips}")
    string(MAKE_C_IDENTIFIER "${name}" key)
    # Track the max in function-local variables; PARENT_SCOPE writes are not
    # visible to later iterations of this loop.
    if(DEFINED local_${key})
      if(ips_int GREATER ${local_${key}})
        set(local_${key} "${ips_int}")
      endif()
    else()
      set(local_${key} "${ips_int}")
      list(APPEND names "${name}")
    endif()
  endforeach()
  foreach(name IN LISTS names)
    string(MAKE_C_IDENTIFIER "${name}" key)
    set(${prefix}_${key} "${local_${key}}" PARENT_SCOPE)
  endforeach()
  set(${prefix}_names "${names}" PARENT_SCOPE)
endfunction()

parse_benchmarks("${current_json}" cur)
parse_benchmarks("${baseline_json}" base)

# floor = baseline * (1 - TOLERANCE). CMake's math() is integer-only, so
# express the tolerance as an integer keep-percentage.
set(keep_pct 100)
string(REGEX MATCH "^0\\.([0-9][0-9]?)" tol_match "${TOLERANCE}")
if(tol_match)
  set(tol_digits "${CMAKE_MATCH_1}")
  string(LENGTH "${tol_digits}" tl)
  if(tl EQUAL 1)
    math(EXPR keep_pct "100 - ${tol_digits} * 10")
  else()
    math(EXPR keep_pct "100 - ${tol_digits}")
  endif()
endif()

set(failures "")
set(compared 0)
foreach(name IN LISTS base_names)
  string(MAKE_C_IDENTIFIER "${name}" key)
  if(NOT DEFINED cur_${key})
    message(STATUS "skipped (not in current run): ${name}")
    continue()
  endif()
  math(EXPR compared "${compared} + 1")
  set(base_int "${base_${key}}")
  set(cur_int "${cur_${key}}")
  math(EXPR floor_int "${base_int} * ${keep_pct} / 100")
  if(cur_int LESS floor_int)
    list(APPEND failures
         "${name}: ${cur_int} items/s < floor ${floor_int} (baseline ${base_int}, keep ${keep_pct}%)")
  else()
    message(STATUS "ok: ${name}  current=${cur_int}  baseline=${base_int}  floor=${floor_int}")
  endif()
endforeach()

if(compared EQUAL 0)
  message(FATAL_ERROR "check_simspeed_regression: no comparable benchmarks between ${BASELINE} and ${CURRENT}")
endif()
if(failures)
  string(REPLACE ";" "\n  " failure_text "${failures}")
  message(FATAL_ERROR "cycle-throughput regression (> allowed tolerance):\n  ${failure_text}")
endif()
message(STATUS "simspeed regression check passed: ${compared} benchmarks within tolerance")
