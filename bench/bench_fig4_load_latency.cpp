// Figure 4: load-latency curves on a 36-node mesh under uniform-random,
// tornado and transpose traffic for Packet-VC4, Hybrid-SDM-VC4,
// Hybrid-TDM-VC4 and Hybrid-TDM-VCt, plus the saturation-throughput
// improvements the paper reports (TDM vs Packet: +14.7% UR, +9.3% TOR,
// +27.0% TR).
#include <iostream>

#include "bench_util.hpp"

using namespace hybridnoc;
using namespace hybridnoc::bench;

namespace {

struct Cell {
  double rate;
  RunResult result;
};

}  // namespace

int main() {
  print_banner(std::cout, "Figure 4: load-latency, 36-node mesh",
               "paper: TDM throughput +14.7% (UR), +9.3% (TOR), +27.0% (TR) "
               "over Packet-VC4; SDM wins at low load, collapses at high load");

  const std::vector<TrafficPattern> patterns = {TrafficPattern::UniformRandom,
                                                TrafficPattern::Tornado,
                                                TrafficPattern::Transpose};
  const std::vector<double> rates = {0.05, 0.10, 0.15, 0.20, 0.25,
                                     0.30, 0.35, 0.40, 0.50, 0.60};
  const std::vector<double> paper_improvement = {14.7, 9.3, 27.0};
  const auto configs = fig4_configs();

  TextTable sat_table({"pattern", "config", "saturation thr (flits/node/cyc)",
                       "vs Packet-VC4"});

  for (size_t pi = 0; pi < patterns.size(); ++pi) {
    const TrafficPattern pattern = patterns[pi];
    print_banner(std::cout, std::string("pattern: ") + traffic_pattern_name(pattern));

    // All (config, rate) points run concurrently.
    struct Job {
      size_t config;
      double rate;
    };
    std::vector<Job> jobs;
    for (size_t c = 0; c < configs.size(); ++c) {
      for (const double r : rates) jobs.push_back({c, r});
    }
    const auto results = parallel_map(jobs, [&](const Job& j) {
      return run_synthetic(configs[j.config].cfg, synth_params(pattern, j.rate));
    });

    TextTable t({"rate", "Packet-VC4", "Hybrid-SDM-VC4", "Hybrid-TDM-VC4",
                 "Hybrid-TDM-VCt"});
    for (size_t ri = 0; ri < rates.size(); ++ri) {
      std::vector<std::string> row = {TextTable::num(rates[ri], 2)};
      for (size_t c = 0; c < configs.size(); ++c) {
        const auto& r = results[c * rates.size() + ri];
        row.push_back(r.saturated && r.avg_latency == 0.0
                          ? "sat"
                          : TextTable::num(r.avg_latency, 1) +
                                (r.saturated ? "*" : ""));
      }
      t.add_row(std::move(row));
    }
    t.print(std::cout);
    std::cout << "(*: saturated — accepted < offered or latency diverging)\n";

    // Saturation throughput: the best accepted rate seen across the sweep.
    std::vector<double> sat(configs.size(), 0.0);
    for (size_t c = 0; c < configs.size(); ++c) {
      for (size_t ri = 0; ri < rates.size(); ++ri) {
        sat[c] = std::max(sat[c], results[c * rates.size() + ri].accepted_rate);
      }
    }
    for (size_t c = 0; c < configs.size(); ++c) {
      const double vs = (sat[c] / sat[0] - 1.0) * 100.0;
      sat_table.add_row({traffic_pattern_name(pattern), configs[c].name,
                         TextTable::num(sat[c], 3),
                         (c == 0 ? std::string("-")
                                 : TextTable::num(vs, 1) + "%")});
    }
    std::cout << "paper TDM-vs-Packet improvement for this pattern: +"
              << paper_improvement[pi] << "%\n";
  }

  print_banner(std::cout, "saturation throughput summary");
  sat_table.print(std::cout);
  return 0;
}
