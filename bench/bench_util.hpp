// Shared plumbing for the reproduction benches: run-scale selection, the
// standard configuration set, and energy helpers. Every bench prints the
// paper's rows/series next to our measurements so paper-vs-measured is
// visible in the raw output (EXPERIMENTS.md records the comparison).
//
// Scale: benches default to windows sized for a laptop-class CI run.
// Set HN_BENCH_SCALE=paper for the paper's 1000-packet warmup /
// 100000-packet measurement windows.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/table.hpp"
#include "power/energy_model.hpp"
#include "sim/driver.hpp"
#include "sim/parallel.hpp"

namespace hybridnoc::bench {

inline bool paper_scale() {
  const char* s = std::getenv("HN_BENCH_SCALE");
  return s != nullptr && std::string(s) == "paper";
}

/// Synthetic-run parameters at the selected scale.
inline RunParams synth_params(TrafficPattern pattern, double rate,
                              std::uint64_t seed = 1) {
  RunParams p;
  p.pattern = pattern;
  p.injection_rate = rate;
  p.seed = seed;
  if (paper_scale()) {
    p.warmup_packets = 1000;  // Section IV-A
    p.measure_packets = 100000;
    p.max_cycles = 2000000;
  } else {
    p.warmup_packets = 600;
    p.measure_packets = 12000;
    p.max_cycles = 250000;
  }
  return p;
}

/// Heterogeneous-run windows (cycles) at the selected scale.
inline std::pair<std::uint64_t, std::uint64_t> hetero_windows() {
  if (paper_scale()) return {20000, 120000};
  return {5000, 18000};
}

struct NamedConfig {
  std::string name;
  NocConfig cfg;
};

/// The four synthetic-evaluation configurations of Figure 4.
inline std::vector<NamedConfig> fig4_configs(int k = 6) {
  return {
      {"Packet-VC4", NocConfig::packet_vc4(k)},
      {"Hybrid-SDM-VC4", NocConfig::hybrid_sdm_vc4(k)},
      {"Hybrid-TDM-VC4", NocConfig::hybrid_tdm_vc4(k)},
      {"Hybrid-TDM-VCt", NocConfig::hybrid_tdm_vct(k)},
  };
}

/// The heterogeneous-evaluation configurations of Figure 8.
inline std::vector<NamedConfig> fig8_configs() {
  return {
      {"Packet-VC4", NocConfig::packet_vc4(6)},
      {"Hybrid-TDM-VC4", NocConfig::hybrid_tdm_vc4(6)},
      {"Hybrid-TDM-hop-VC4", NocConfig::hybrid_tdm_hop_vc4(6)},
      {"Hybrid-TDM-hop-VCt", NocConfig::hybrid_tdm_hop_vct(6)},
  };
}

inline double total_energy_pj(const EnergyCounters& c) {
  return compute_breakdown(c, EnergyParams::nangate45()).total();
}

/// "Energy saving" in the paper's sense: 1 - E_config / E_baseline over the
/// same measurement window and offered workload.
inline double energy_saving(const EnergyCounters& baseline,
                            const EnergyCounters& config) {
  const double eb = total_energy_pj(baseline);
  if (eb <= 0.0) return 0.0;
  return 1.0 - total_energy_pj(config) / eb;
}

inline double geomean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double x : v) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(v.size()));
}

}  // namespace hybridnoc::bench
