// Ablation (Section III-A): path sharing variants on a heterogeneous mix —
// none / hitchhiker / vicinity / both — energy saving and sharing activity.
#include <iostream>

#include "bench_util.hpp"
#include "hetero/hetero_system.hpp"
#include "tdm/hybrid_network.hpp"

using namespace hybridnoc;
using namespace hybridnoc::bench;

int main() {
  print_banner(std::cout, "Ablation: circuit-switched path sharing",
               "APPLU+BLACKSCHOLES mix; savings vs Packet-VC4");

  const auto [warmup, measure] = hetero_windows();
  const WorkloadMix mix{cpu_benchmark("APPLU"), gpu_benchmark("BLACKSCHOLES")};

  HeteroSystem base(NocConfig::packet_vc4(6), mix, 1);
  const auto mb = base.run(warmup, measure);

  struct Variant {
    std::string name;
    bool hh, vic;
  };
  const std::vector<Variant> variants = {{"no sharing", false, false},
                                         {"hitchhiker only", true, false},
                                         {"vicinity only", false, true},
                                         {"both (hop)", true, true}};

  TextTable t({"variant", "energy saving", "cs flits", "hitchhike pkts",
               "vicinity pkts", "bounces"});
  for (const auto& v : variants) {
    NocConfig cfg = NocConfig::hybrid_tdm_vc4(6);
    cfg.hitchhiker_sharing = v.hh;
    cfg.vicinity_sharing = v.vic;
    if (v.hh || v.vic) cfg.slot_table_size = 64;  // sharing enables smaller tables
    HeteroSystem sys(cfg, mix, 1);
    const auto m = sys.run(warmup, measure);
    const auto* net =
        dynamic_cast<const HybridNetwork*>(sys.network().mesh_network());
    t.add_row({v.name, TextTable::pct(energy_saving(mb.energy, m.energy), 1),
               TextTable::pct(m.cs_flit_fraction, 1),
               std::to_string(net->total_hitchhike_packets()),
               std::to_string(net->total_vicinity_packets()),
               std::to_string(net->total_hitchhike_bounces())});
  }
  t.print(std::cout);
  std::cout << "\npaper: sharing adds ~2.8% energy saving over the basic "
               "hybrid scheme with negligible performance impact.\n";
  return 0;
}
