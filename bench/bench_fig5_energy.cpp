// Figure 5: network energy saving as a function of injection rate under
// synthetic traffic, Hybrid-TDM-VC4 and Hybrid-TDM-VCt vs the Packet-VC4
// baseline. The paper's headline shapes: small/negative saving for uniform
// random at low load (big slot tables, little captured traffic); VCt adds
// 2.4-10.9% (UR), 2.6-10.0% (TOR), 4.1-9.7% (TR) over VC4.
#include <iostream>

#include "bench_util.hpp"

using namespace hybridnoc;
using namespace hybridnoc::bench;

int main() {
  print_banner(std::cout, "Figure 5: energy saving vs injection rate",
               "saving = 1 - E(config)/E(Packet-VC4), same offered workload");

  const std::vector<TrafficPattern> patterns = {TrafficPattern::UniformRandom,
                                                TrafficPattern::Tornado,
                                                TrafficPattern::Transpose};
  const std::vector<double> rates = {0.05, 0.10, 0.15, 0.20, 0.25, 0.30};
  const std::vector<NamedConfig> configs = {
      {"Packet-VC4", NocConfig::packet_vc4()},
      {"Hybrid-TDM-VC4", NocConfig::hybrid_tdm_vc4()},
      {"Hybrid-TDM-VCt", NocConfig::hybrid_tdm_vct()},
  };

  for (const TrafficPattern pattern : patterns) {
    print_banner(std::cout, std::string("pattern: ") + traffic_pattern_name(pattern));
    struct Job {
      size_t config;
      double rate;
    };
    std::vector<Job> jobs;
    for (size_t c = 0; c < configs.size(); ++c) {
      for (const double r : rates) jobs.push_back({c, r});
    }
    const auto results = parallel_map(jobs, [&](const Job& j) {
      return run_synthetic(configs[j.config].cfg, synth_params(pattern, j.rate));
    });

    TextTable t({"rate", "TDM-VC4 saving", "TDM-VCt saving", "VCt-over-VC4",
                 "cs flits (VC4)"});
    for (size_t ri = 0; ri < rates.size(); ++ri) {
      const auto& base = results[0 * rates.size() + ri];
      const auto& vc4 = results[1 * rates.size() + ri];
      const auto& vct = results[2 * rates.size() + ri];
      if (base.saturated) {
        t.add_row({TextTable::num(rates[ri], 2), "sat", "sat", "-", "-"});
        continue;
      }
      const double s4 = energy_saving(base.energy, vc4.energy);
      const double st = energy_saving(base.energy, vct.energy);
      t.add_row({TextTable::num(rates[ri], 2), TextTable::pct(s4, 1),
                 TextTable::pct(st, 1), TextTable::pct(st - s4, 1),
                 TextTable::pct(vc4.cs_flit_fraction, 1)});
    }
    t.print(std::cout);
  }
  std::cout << "\npaper: UR saving small/negative at low rates; VCt adds "
               "2.4-10.9% (UR), 2.6-10.0% (TOR), 4.1-9.7% (TR) over VC4,\n"
               "with the gap narrowing as injection grows.\n";
  return 0;
}
