// Figure 8: the heterogeneous evaluation over all 56 CPUxGPU workload mixes.
//   (a) network energy saving vs Packet-VC4 for Hybrid-TDM-VC4,
//       Hybrid-TDM-hop-VC4 and Hybrid-TDM-hop-VCt
//       (paper averages: 6.3%, 9.0%, 17.1%; up to 23.8% for BLACKSCHOLES;
//        STO negative for the basic scheme),
//   (b) CPU speedup (paper: ~ -1.6% for the full scheme),
//   (c) GPU speedup (paper: +2.6% average).
// Rows are grouped by GPU benchmark; AVG is the geometric mean, as in the
// paper. Pass a GPU benchmark name as argv[1] to restrict the mix set.
#include <iostream>

#include "bench_util.hpp"
#include "hetero/hetero_system.hpp"

using namespace hybridnoc;
using namespace hybridnoc::bench;

namespace {

struct MixResult {
  WorkloadMix mix;
  // [0]=baseline, then the three hybrid schemes.
  std::array<HeteroMetrics, 4> m;
};

}  // namespace

int main(int argc, char** argv) {
  print_banner(std::cout, "Figure 8: heterogeneous workload mixes (Table II system)",
               "paper: energy saving avg 6.3% / 9.0% / 17.1%; CPU -1.6%; "
               "GPU +2.6% avg");

  const std::string only_gpu = argc > 1 ? argv[1] : "";
  const auto [warmup, measure] = hetero_windows();
  const auto configs = fig8_configs();

  std::vector<WorkloadMix> mixes;
  for (const auto& g : gpu_benchmarks()) {
    if (!only_gpu.empty() && g.name != only_gpu) continue;
    for (const auto& c : cpu_benchmarks()) mixes.push_back({c, g});
  }

  const auto results = parallel_map(mixes, [&](const WorkloadMix& mix) {
    MixResult r;
    r.mix = mix;
    for (size_t i = 0; i < configs.size(); ++i) {
      HeteroSystem sys(configs[i].cfg, mix, 1);
      r.m[i] = sys.run(warmup, measure);
    }
    return r;
  });

  TextTable t({"mix", "save VC4", "save hop-VC4", "save hop-VCt", "CPU spd",
               "GPU spd", "cs flits"});
  std::array<std::vector<double>, 3> savings;
  std::vector<double> cpu_spd, gpu_spd;
  std::string group;
  for (const auto& r : results) {
    if (r.mix.gpu.name != group) {
      group = r.mix.gpu.name;
      t.add_row({"-- " + group + " --", "", "", "", "", "", ""});
    }
    std::array<double, 3> s{};
    for (int i = 0; i < 3; ++i) {
      s[static_cast<size_t>(i)] =
          energy_saving(r.m[0].energy, r.m[static_cast<size_t>(i) + 1].energy);
      savings[static_cast<size_t>(i)].push_back(
          1.0 + s[static_cast<size_t>(i)]);  // shifted for geomean
    }
    const double cspd = r.m[3].cpu_ipc / r.m[0].cpu_ipc;
    const double gspd = r.m[3].gpu_throughput / r.m[0].gpu_throughput;
    cpu_spd.push_back(cspd);
    gpu_spd.push_back(gspd);
    t.add_row({r.mix.name(), TextTable::pct(s[0], 1), TextTable::pct(s[1], 1),
               TextTable::pct(s[2], 1), TextTable::num(cspd, 3),
               TextTable::num(gspd, 3), TextTable::pct(r.m[1].cs_flit_fraction, 1)});
  }
  t.add_row({"AVG (geomean)", TextTable::pct(geomean(savings[0]) - 1.0, 1),
             TextTable::pct(geomean(savings[1]) - 1.0, 1),
             TextTable::pct(geomean(savings[2]) - 1.0, 1),
             TextTable::num(geomean(cpu_spd), 3), TextTable::num(geomean(gpu_spd), 3),
             ""});
  t.print(std::cout);
  std::cout << "\n(speedups are Hybrid-TDM-hop-VCt vs Packet-VC4; cs flits "
               "column is Hybrid-TDM-VC4, cf. Table III)\n";
  return 0;
}
