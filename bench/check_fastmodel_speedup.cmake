# Gate the fast model's speedup over the cycle-accurate core. Run as a ctest
# step after bench_micro_simspeed has written a JSON containing repeated
# BM_CycleCoreRun / BM_FastModelRun rows:
#   cmake -DCURRENT=<build>/BENCH_fastmodel_gate.json \
#         [-DMIN_SPEEDUP=100] [-DNOISE_MARGIN_PCT=75] \
#         -P check_fastmodel_speedup.cmake
#
# Method. Both benchmarks report items_per_second as *simulated cycles per
# wall second* (the harness zeroes warmup so RunResult.cycles counts every
# cycle), so fast/cycle is directly the speedup the paper-methodology claims.
# The two sides are CO-MEASURED — same binary invocation, same machine state,
# back to back — so the baseline the ratio divides by is never a stale
# constant from another machine or another build. A single run of either
# side still jitters +/-20% with machine load, which would make a
# point-estimate gate flaky; instead the benchmark is run with
# --benchmark_repetitions and this script takes the MAX items_per_second per
# side across repetitions — best-observed throughput under identical
# conditions, which filters scheduler noise without biasing the ratio.
#
# Even best-of-N leaves residual noise, and it COMPOUNDS across the ratio:
# on a loaded CI host the cycle core can catch a quiet window (raising the
# denominator) in the same run where every fast-model rep is descheduled
# (lowering the numerator) — observed as an 89x measurement of a nominal
# >=130x machine. The acceptance number stays MIN_SPEEDUP (the documented
# claim), but the hard failure threshold applies NOISE_MARGIN_PCT to absorb
# that two-sided jitter: fail only below
#   MIN_SPEEDUP * NOISE_MARGIN_PCT / 100   (default 100x * 75% = 75x).
# A genuine fast-model regression shows up as an order-of-magnitude drop,
# not a tens-of-percent one, so the margin costs no detection power. A
# measurement in the margin band passes with a warning so logs still flag
# marginal runs.
if(NOT DEFINED MIN_SPEEDUP)
  set(MIN_SPEEDUP 100)
endif()
if(NOT DEFINED NOISE_MARGIN_PCT)
  set(NOISE_MARGIN_PCT 75)
endif()
if(NOT DEFINED CURRENT)
  message(FATAL_ERROR "check_fastmodel_speedup: -DCURRENT=<file> is required")
endif()
if(NOT EXISTS "${CURRENT}")
  message(FATAL_ERROR "check_fastmodel_speedup: file not found: ${CURRENT}")
endif()

# google-benchmark serializes rates like 1.6420049322076477e+06 and CMake's
# math() is integer-only, so truncate mantissa*10^exp to an integer by string
# surgery. Rates here are >= 1e3, so truncation noise is irrelevant.
function(ips_to_int out val)
  if(val MATCHES "^([0-9]+)(\\.[0-9]*)?$")
    set(${out} "${CMAKE_MATCH_1}" PARENT_SCOPE)
    return()
  endif()
  if(val MATCHES "^([0-9]+)\\.?([0-9]*)[eE]\\+?0*([0-9]+)$")
    set(ipart "${CMAKE_MATCH_1}")
    set(fpart "${CMAKE_MATCH_2}")
    set(exp "${CMAKE_MATCH_3}")
    string(LENGTH "${fpart}" flen)
    if(exp GREATER flen)
      math(EXPR zeros "${exp} - ${flen}")
      foreach(i RANGE 1 ${zeros})
        string(APPEND fpart "0")
      endforeach()
    else()
      string(SUBSTRING "${fpart}" 0 ${exp} fpart)
    endif()
    set(${out} "${ipart}${fpart}" PARENT_SCOPE)
    return()
  endif()
  message(FATAL_ERROR "check_fastmodel_speedup: cannot parse rate: ${val}")
endfunction()

file(READ "${CURRENT}" json)

set(max_cycle 0)
set(max_fast 0)
set(rows_cycle 0)
set(rows_fast 0)
string(JSON n LENGTH "${json}" benchmarks)
math(EXPR n_last "${n} - 1")
foreach(i RANGE ${n_last})
  string(JSON name GET "${json}" benchmarks ${i} name)
  string(JSON rt GET "${json}" benchmarks ${i} run_type)
  if(NOT rt STREQUAL "iteration")
    continue()  # mean/median/stddev aggregate rows
  endif()
  string(JSON ips ERROR_VARIABLE err GET "${json}" benchmarks ${i} items_per_second)
  if(err)
    continue()
  endif()
  ips_to_int(ips_int "${ips}")
  if(name STREQUAL "BM_CycleCoreRun")
    math(EXPR rows_cycle "${rows_cycle} + 1")
    if(ips_int GREATER max_cycle)
      set(max_cycle "${ips_int}")
    endif()
  elseif(name STREQUAL "BM_FastModelRun")
    math(EXPR rows_fast "${rows_fast} + 1")
    if(ips_int GREATER max_fast)
      set(max_fast "${ips_int}")
    endif()
  endif()
endforeach()

if(rows_cycle EQUAL 0 OR rows_fast EQUAL 0)
  message(FATAL_ERROR "check_fastmodel_speedup: missing benchmark rows in "
          "${CURRENT} (BM_CycleCoreRun: ${rows_cycle}, BM_FastModelRun: "
          "${rows_fast}) — was bench_micro_simspeed run with "
          "--benchmark_filter=BM_CycleCoreRun|BM_FastModelRun?")
endif()

math(EXPR floor_fast "${max_cycle} * ${MIN_SPEEDUP} * ${NOISE_MARGIN_PCT} / 100")
math(EXPR nominal_fast "${max_cycle} * ${MIN_SPEEDUP}")
math(EXPR speedup "${max_fast} / ${max_cycle}")
if(max_fast LESS floor_fast)
  math(EXPR hard_floor "${MIN_SPEEDUP} * ${NOISE_MARGIN_PCT} / 100")
  message(FATAL_ERROR "fast-model speedup gate FAILED: ${speedup}x < "
          "${hard_floor}x hard floor (${MIN_SPEEDUP}x nominal * "
          "${NOISE_MARGIN_PCT}% noise margin; cycle core ${max_cycle} "
          "cycles/s, fast model ${max_fast} cycles/s, over "
          "${rows_cycle}/${rows_fast} repetitions)")
endif()
if(max_fast LESS nominal_fast)
  message(WARNING "fast-model speedup in noise-margin band: ${speedup}x is "
          "below the ${MIN_SPEEDUP}x nominal but within the "
          "${NOISE_MARGIN_PCT}% margin — likely co-tenant load; rerun on a "
          "quiet machine if this persists")
endif()
message(STATUS "fast-model speedup gate passed: ${speedup}x (nominal "
        "${MIN_SPEEDUP}x, hard floor ${MIN_SPEEDUP}x*${NOISE_MARGIN_PCT}%; "
        "cycle core ${max_cycle} cycles/s, fast model ${max_fast} cycles/s)")
