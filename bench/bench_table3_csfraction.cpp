// Table III: GPU traffic injection ratio (flits/node/cycle) and the
// percentage of flits that are circuit-switched under Hybrid-TDM-VC4,
// per GPU benchmark, paper-vs-measured.
#include <iostream>

#include "bench_util.hpp"
#include "hetero/hetero_system.hpp"

using namespace hybridnoc;
using namespace hybridnoc::bench;

int main() {
  print_banner(std::cout, "Table III: GPU injection ratio and CS flit share",
               "Hybrid-TDM-VC4, averaged over a CPU-benchmark sample");

  const auto [warmup, measure] = hetero_windows();
  std::vector<CpuBenchParams> cpus = {cpu_benchmark("APPLU"),
                                      cpu_benchmark("SWIM")};
  if (paper_scale()) cpus = cpu_benchmarks();

  std::vector<GpuBenchParams> gpus = gpu_benchmarks();
  struct Row {
    std::string name;
    double inj = 0, cs = 0, paper_inj = 0, paper_cs = 0;
  };
  const auto rows = parallel_map(gpus, [&](const GpuBenchParams& g) {
    Row r{g.name, 0, 0, g.paper_injection, g.paper_cs_percent};
    for (const auto& c : cpus) {
      HeteroSystem sys(NocConfig::hybrid_tdm_vc4(6), {c, g}, 1);
      const auto m = sys.run(warmup, measure);
      r.inj += m.gpu_injection_rate / static_cast<double>(cpus.size());
      r.cs += 100.0 * m.cs_flit_fraction / static_cast<double>(cpus.size());
    }
    return r;
  });

  TextTable t({"GPU benchmark", "inj (flits/node/cyc)", "paper inj",
               "cs flits %", "paper cs %"});
  for (const auto& r : rows) {
    t.add_row({r.name, TextTable::num(r.inj, 3), TextTable::num(r.paper_inj, 2),
               TextTable::num(r.cs, 1), TextTable::num(r.paper_cs, 1)});
  }
  t.print(std::cout);
  return 0;
}
