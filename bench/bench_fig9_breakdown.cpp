// Figure 9: detailed network energy breakdown per GPU benchmark (averaged
// over CPU applications), Hybrid-TDM-VC4 vs Packet-VC4.
//   (a) dynamic energy: paper reports buffer energy -51.3% on average,
//       CS-component overhead 0.6%, total dynamic -20.8%;
//   (b) static energy: -17.3% average with 2.1% CS overhead (with the full
//       optimization set), all savings from input buffers.
#include <iostream>

#include "bench_util.hpp"
#include "hetero/hetero_system.hpp"

using namespace hybridnoc;
using namespace hybridnoc::bench;

int main() {
  print_banner(std::cout, "Figure 9: energy breakdown by GPU benchmark",
               "each row averages over the CPU applications");

  const auto [warmup, measure] = hetero_windows();
  // Average over a CPU-benchmark subset at default scale (all 8 at paper
  // scale) to bound runtime.
  std::vector<CpuBenchParams> cpus = cpu_benchmarks();
  if (!paper_scale()) cpus = {cpu_benchmark("APPLU"), cpu_benchmark("SWIM"),
                              cpu_benchmark("WUPWISE")};

  struct Row {
    std::string gpu;
    EnergyBreakdown base, vc4, vct;
  };
  std::vector<GpuBenchParams> gpus = gpu_benchmarks();
  const auto rows = parallel_map(gpus, [&](const GpuBenchParams& g) {
    Row r;
    r.gpu = g.name;
    const auto P = EnergyParams::nangate45();
    for (const auto& c : cpus) {
      const WorkloadMix mix{c, g};
      HeteroSystem base(NocConfig::packet_vc4(6), mix, 1);
      HeteroSystem vc4(NocConfig::hybrid_tdm_vc4(6), mix, 1);
      HeteroSystem vct(NocConfig::hybrid_tdm_hop_vct(6), mix, 1);
      r.base += compute_breakdown(base.run(warmup, measure).energy, P);
      r.vc4 += compute_breakdown(vc4.run(warmup, measure).energy, P);
      r.vct += compute_breakdown(vct.run(warmup, measure).energy, P);
    }
    return r;
  });

  print_banner(std::cout, "(a) dynamic energy, Hybrid-TDM-VC4 vs Packet-VC4");
  TextTable dyn({"gpu bench", "buffer saving", "cs overhead", "xbar", "arb",
                 "clock", "link", "total dynamic saving"});
  double buf_sum = 0, cs_sum = 0, tot_sum = 0;
  for (const auto& r : rows) {
    const auto share = [&](EnergyComponent comp) {
      return 1.0 - r.vc4.dynamic(comp) / std::max(1.0, r.base.dynamic(comp));
    };
    const double cs_over =
        r.vc4.dynamic(EnergyComponent::CsComponent) / r.vc4.total_dynamic();
    const double tot = 1.0 - r.vc4.total_dynamic() / r.base.total_dynamic();
    buf_sum += share(EnergyComponent::Buffer);
    cs_sum += cs_over;
    tot_sum += tot;
    dyn.add_row({r.gpu, TextTable::pct(share(EnergyComponent::Buffer), 1),
                 TextTable::pct(cs_over, 2),
                 TextTable::pct(share(EnergyComponent::Crossbar), 1),
                 TextTable::pct(share(EnergyComponent::Arbiter), 1),
                 TextTable::pct(share(EnergyComponent::Clock), 1),
                 TextTable::pct(share(EnergyComponent::Link), 1),
                 TextTable::pct(tot, 1)});
  }
  const double n = static_cast<double>(rows.size());
  dyn.add_row({"AVG", TextTable::pct(buf_sum / n, 1), TextTable::pct(cs_sum / n, 2),
               "", "", "", "", TextTable::pct(tot_sum / n, 1)});
  dyn.print(std::cout);
  std::cout << "paper: buffer -51.3% avg, CS overhead 0.6%, total dynamic "
               "-20.8%; crossbar/link/arbiter savings negligible\n";

  print_banner(std::cout,
               "(b) static energy, Hybrid-TDM-hop-VCt vs Packet-VC4");
  TextTable st({"gpu bench", "buffer leak saving", "cs leak overhead",
                "total static saving"});
  double sbuf = 0, scs = 0, stot = 0;
  for (const auto& r : rows) {
    const double buf = 1.0 - r.vct.leakage(EnergyComponent::Buffer) /
                                 r.base.leakage(EnergyComponent::Buffer);
    const double cs =
        r.vct.leakage(EnergyComponent::CsComponent) / r.vct.total_static();
    const double tot = 1.0 - r.vct.total_static() / r.base.total_static();
    sbuf += buf;
    scs += cs;
    stot += tot;
    st.add_row({r.gpu, TextTable::pct(buf, 1), TextTable::pct(cs, 2),
                TextTable::pct(tot, 1)});
  }
  st.add_row({"AVG", TextTable::pct(sbuf / n, 1), TextTable::pct(scs / n, 2),
              TextTable::pct(stot / n, 1)});
  st.print(std::cout);
  std::cout << "paper: static saving 17.3% avg, CS overhead 2.1%, all savings "
               "from input buffers\n";
  return 0;
}
