// Simulator micro-benchmarks (google-benchmark): raw component speeds that
// bound every experiment's wall-clock time.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "noc/network.hpp"
#include "tdm/hybrid_network.hpp"
#include "tdm/slot_table.hpp"

namespace hybridnoc {
namespace {

void BM_SlotTableLookup(benchmark::State& state) {
  SlotTable t(128, 128);
  t.reserve(5, 4, Port::West, Port::East);
  Cycle c = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.lookup(c++, Port::West));
  }
}
BENCHMARK(BM_SlotTableLookup);

void BM_SlotTableReserveRelease(benchmark::State& state) {
  SlotTable t(128, 128);
  int slot = 0;
  for (auto _ : state) {
    t.reserve(slot, 4, Port::West, Port::East);
    t.release(slot, 4, Port::West);
    slot = (slot + 8) & 127;
  }
}
BENCHMARK(BM_SlotTableReserveRelease);

void BM_IdleNetworkCycle(benchmark::State& state) {
  Network net(NocConfig::packet_vc4(6));
  for (auto _ : state) net.tick();
  state.SetItemsProcessed(state.iterations() * 36);
}
BENCHMARK(BM_IdleNetworkCycle);

void BM_LoadedNetworkCycle(benchmark::State& state) {
  Network net(NocConfig::packet_vc4(6));
  Rng rng(1);
  PacketId id = 1;
  for (auto _ : state) {
    for (NodeId s = 0; s < net.num_nodes(); ++s) {
      if (net.ni(s).inject_queue_depth() < 4 && rng.bernoulli(0.04)) {
        auto p = std::make_shared<Packet>();
        p->id = id++;
        p->src = s;
        p->dst = static_cast<NodeId>(rng.uniform_int(36));
        if (p->dst == s) continue;
        p->num_flits = 5;
        net.ni(s).send(std::move(p), net.now());
      }
    }
    net.tick();
  }
  state.SetItemsProcessed(state.iterations() * 36);
}
BENCHMARK(BM_LoadedNetworkCycle);

void BM_HybridNetworkCycle(benchmark::State& state) {
  HybridNetwork net(NocConfig::hybrid_tdm_vc4(6));
  Rng rng(1);
  PacketId id = 1;
  for (auto _ : state) {
    for (NodeId s = 0; s < net.num_nodes(); ++s) {
      if (net.ni(s).inject_queue_depth() < 4 && rng.bernoulli(0.04)) {
        auto p = std::make_shared<Packet>();
        p->id = id++;
        p->src = s;
        p->dst = static_cast<NodeId>(rng.uniform_int(36));
        if (p->dst == s) continue;
        p->num_flits = 5;
        net.ni(s).send(std::move(p), net.now());
      }
    }
    net.tick();
  }
  state.SetItemsProcessed(state.iterations() * 36);
}
BENCHMARK(BM_HybridNetworkCycle);

}  // namespace
}  // namespace hybridnoc

BENCHMARK_MAIN();
