// Simulator micro-benchmarks (google-benchmark): raw component speeds that
// bound every experiment's wall-clock time.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "common/pool.hpp"
#include "common/rng.hpp"
#include "noc/network.hpp"
#include "sim/driver.hpp"
#include "sweep/orchestrator.hpp"
#include "sweep/sweep_spec.hpp"
#include "tdm/hybrid_network.hpp"
#include "tdm/slot_table.hpp"
#include "workloads/workload.hpp"

namespace hybridnoc {
namespace {

void BM_SlotTableLookup(benchmark::State& state) {
  SlotTable t(128, 128);
  t.reserve(5, 4, Port::West, Port::East);
  Cycle c = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.lookup(c++, Port::West));
  }
}
BENCHMARK(BM_SlotTableLookup);

void BM_SlotTableReserveRelease(benchmark::State& state) {
  SlotTable t(128, 128);
  int slot = 0;
  for (auto _ : state) {
    t.reserve(slot, 4, Port::West, Port::East);
    t.release(slot, 4, Port::West);
    slot = (slot + 8) & 127;
  }
}
BENCHMARK(BM_SlotTableReserveRelease);

/// state.range(0) selects the engine: 1 = active-set scheduler (default),
/// 0 = legacy full sweep — kept benchmarkable so regressions in either
/// engine (or in their gap) show up in BENCH_simspeed.json diffs.
NocConfig engine_cfg(NocConfig cfg, benchmark::State& state) {
  cfg.active_set_scheduler = state.range(0) != 0;
  return cfg;
}

/// Drive `net` for the benchmark loop at a fixed per-node injection
/// probability per cycle. items_per_second is node-cycles per wall second.
template <typename Net>
void run_injected_cycles_at(Net& net, benchmark::State& state, double rate) {
  Rng rng(1);
  PacketId id = 1;
  for (auto _ : state) {
    if (rate > 0.0) {
      for (NodeId s = 0; s < net.num_nodes(); ++s) {
        if (net.ni(s).inject_queue_depth() < 4 && rng.bernoulli(rate)) {
          auto p = make_packet();
          p->id = id++;
          p->src = s;
          p->dst = static_cast<NodeId>(rng.uniform_int(net.num_nodes()));
          if (p->dst == s) continue;
          p->num_flits = 5;
          net.ni(s).send(std::move(p), net.now());
        }
      }
    }
    net.tick();
  }
  state.SetItemsProcessed(state.iterations() * net.num_nodes());
}

/// state.range(1), where present, is the per-node injection probability in
/// permille. 40 is the historical near-saturation point; 5 is the sparse
/// regime (most components idle most cycles) the active-set engine targets.
template <typename Net>
void run_injected_cycles(Net& net, benchmark::State& state) {
  run_injected_cycles_at(net, state,
                         static_cast<double>(state.range(1)) / 1000.0);
}

void BM_IdleNetworkCycle(benchmark::State& state) {
  Network net(engine_cfg(NocConfig::packet_vc4(6), state));
  for (auto _ : state) net.tick();
  state.SetItemsProcessed(state.iterations() * 36);
}
BENCHMARK(BM_IdleNetworkCycle)->Arg(1)->Arg(0);

void BM_LoadedNetworkCycle(benchmark::State& state) {
  Network net(engine_cfg(NocConfig::packet_vc4(6), state));
  run_injected_cycles(net, state);
}
BENCHMARK(BM_LoadedNetworkCycle)
    ->Args({1, 40})
    ->Args({0, 40})
    ->Args({1, 5})
    ->Args({0, 5});

void BM_HybridNetworkCycle(benchmark::State& state) {
  HybridNetwork net(engine_cfg(NocConfig::hybrid_tdm_vc4(6), state));
  run_injected_cycles(net, state);
}
BENCHMARK(BM_HybridNetworkCycle)
    ->Args({1, 40})
    ->Args({0, 40})
    ->Args({1, 5})
    ->Args({0, 5});

/// Thread scaling of the sharded parallel tick engine: 8x8 mesh near
/// saturation (0.30 injection probability per node per cycle), cycle
/// throughput at 1 / 2 / 4 tick threads. items_per_second here is
/// node-cycles per wall second; divide by 64 for cycles/sec. The 1-thread
/// row runs the plain single-threaded engine (tick_threads=1 constructs no
/// engine at all), so the 4-vs-1 ratio is the paper's speedup figure —
/// meaningful only on a machine with at least that many free cores.
void BM_ParallelLoadedCycle(benchmark::State& state) {
  NocConfig cfg = NocConfig::packet_vc4(8);
  cfg.tick_threads = static_cast<int>(state.range(0));
  Network net(cfg);
  run_injected_cycles(net, state);
}
BENCHMARK(BM_ParallelLoadedCycle)
    ->Args({1, 300})
    ->Args({2, 300})
    ->Args({4, 300})
    ->UseRealTime();

void BM_ParallelHybridLoadedCycle(benchmark::State& state) {
  NocConfig cfg = NocConfig::hybrid_tdm_vc4(8);
  cfg.tick_threads = static_cast<int>(state.range(0));
  HybridNetwork net(cfg);
  run_injected_cycles(net, state);
}
BENCHMARK(BM_ParallelHybridLoadedCycle)
    ->Args({1, 300})
    ->Args({4, 300})
    ->UseRealTime();

/// Both fidelities of the full synthetic driver on the same workload:
/// hybrid-TDM 8x8 at 0.3 injection, uniform traffic. Warmup is zeroed so
/// RunResult.cycles counts every simulated cycle — items_per_second is then
/// directly "simulated cycles per wall second" for each engine, and the
/// BM_FastModelRun : BM_CycleCoreRun ratio is the fast model's speedup.
/// check_fastmodel_speedup.cmake gates that ratio (>= 60x) from the JSON
/// this harness writes. The fast side runs a longer window so its fixed
/// construction cost doesn't flatter the cycle side.
RunParams speedgate_params(std::uint64_t measure_packets) {
  RunParams p;
  p.pattern = TrafficPattern::UniformRandom;
  p.injection_rate = 0.3;
  p.warmup_packets = 0;
  p.warmup_min_cycles = 0;
  p.measure_packets = measure_packets;
  p.seed = 1;
  return p;
}

void BM_CycleCoreRun(benchmark::State& state) {
  const NocConfig cfg = NocConfig::hybrid_tdm_vc4(8);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    const RunResult r = run_synthetic(cfg, speedgate_params(10000));
    benchmark::DoNotOptimize(r.avg_latency);
    cycles += r.cycles;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
}
BENCHMARK(BM_CycleCoreRun)->Unit(benchmark::kMillisecond);

void BM_FastModelRun(benchmark::State& state) {
  const NocConfig cfg = NocConfig::hybrid_tdm_vc4(8);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    RunParams p = speedgate_params(400000);
    p.fidelity = Fidelity::Fast;
    const RunResult r = run_synthetic(cfg, p);
    benchmark::DoNotOptimize(r.avg_latency);
    cycles += r.cycles;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
}
BENCHMARK(BM_FastModelRun)->Unit(benchmark::kMillisecond);

/// Workload-zoo replay speed: the cycle core running the generated traces
/// end to end (trace build cost included once, outside the timed loop).
/// items_per_second is simulated cycles per wall second, comparable to
/// BM_CycleCoreRun — the gap between them is what trace replay (mixed
/// message sizes, looped injection schedule) costs over synthetic injection.
void BM_NNDataflowRun(benchmark::State& state) {
  const NocConfig cfg = NocConfig::hybrid_tdm_vc4(8);
  WorkloadOptions wo;
  wo.k = 8;
  const WorkloadTrace wt = build_workload("nn:resnet50", wo);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    RunParams p = speedgate_params(6000);
    const RunResult r = run_trace(cfg, wt.entries, p);
    benchmark::DoNotOptimize(r.avg_latency);
    cycles += r.cycles;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
}
BENCHMARK(BM_NNDataflowRun)->Unit(benchmark::kMillisecond);

void BM_CoherenceRun(benchmark::State& state) {
  const NocConfig cfg = NocConfig::hybrid_tdm_vc4(8);
  WorkloadOptions wo;
  wo.k = 8;
  const WorkloadTrace wt = build_workload("coherence", wo);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    RunParams p = speedgate_params(6000);
    const RunResult r = run_trace(cfg, wt.entries, p);
    benchmark::DoNotOptimize(r.avg_latency);
    cycles += r.cycles;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
}
BENCHMARK(BM_CoherenceRun)->Unit(benchmark::kMillisecond);

/// Large-mesh scaling: the ISSUE's tentpole deliverable. Args are
/// {k, tick_threads, injection permille}; items_per_second is node-cycles
/// per wall second, so equal values across mesh sizes mean perfectly linear
/// scaling and HIGHER values at larger k mean the per-cycle cost grows
/// sublinearly in node count (idle rows should: the run-list scheduler makes
/// an idle cycle O(active), not O(nodes)). The 8x8 idle row is the
/// reference point for the "64x64 idle within 4x of 8x8" acceptance bound —
/// compare their per-CYCLE costs, i.e. items_per_second scaled by nodes.
/// Rows: idle (0), sparse (5 permille), loaded (100 permille), the loaded
/// pair serial vs 4 tick threads.
void BM_LargeMeshCycle(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  NocConfig cfg = NocConfig::packet_vc4(k);
  cfg.tick_threads = static_cast<int>(state.range(1));
  Network net(cfg);
  run_injected_cycles_at(net, state,
                         static_cast<double>(state.range(2)) / 1000.0);
}
BENCHMARK(BM_LargeMeshCycle)
    ->Args({8, 1, 0})
    ->Args({8, 1, 100})
    ->Args({32, 1, 0})
    ->Args({32, 1, 5})
    ->Args({32, 1, 100})
    ->Args({32, 4, 100})
    ->Args({64, 1, 0})
    ->Args({64, 1, 5})
    ->Args({64, 1, 100})
    ->Args({64, 4, 100})
    ->UseRealTime();

/// Loaded-path saturation throughput: the allocation-free flit-movement
/// overhaul's acceptance scenarios, on the hybrid-TDM fabric the paper
/// models. Args are {k, tick_threads, injection permille}: an 8x8 mesh at
/// 0.30 injection probability per node per cycle (past saturation — every
/// pipeline stage busy, CS setup churn, e2e bookkeeping live) and a 64x64
/// mesh at 0.10, each serial and with 4 tick threads. items_per_second is
/// node-cycles per wall second; divide by k*k for cycles/sec. These rows are
/// what the >=1.5x loaded-path acceptance target is measured on, and the
/// 20% regression gate keeps them from backsliding.
void BM_LoadedSaturation(benchmark::State& state) {
  NocConfig cfg = NocConfig::hybrid_tdm_vc4(static_cast<int>(state.range(0)));
  cfg.tick_threads = static_cast<int>(state.range(1));
  HybridNetwork net(cfg);
  run_injected_cycles_at(net, state,
                         static_cast<double>(state.range(2)) / 1000.0);
}
BENCHMARK(BM_LoadedSaturation)
    ->Args({8, 1, 300})
    ->Args({8, 4, 300})
    ->Args({64, 1, 100})
    ->Args({64, 4, 100})
    ->UseRealTime();

/// Sweep-orchestrator overhead on the all-cache-hits path: a resumed sweep
/// whose every point is already in the result store. Times spec expansion +
/// journal replay + integrity-checked (digest-verified) cache loads +
/// aggregate formatting — everything the orchestrator adds around the
/// simulator — with zero simulation in the loop. items_per_second is sweep
/// points resolved per wall second. The first run (which simulates) happens
/// once, outside the timed loop.
void BM_SweepCachedResume(benchmark::State& state) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "hn_bench_sweep").string();
  fs::remove_all(dir);
  sweep::SweepSpec spec;
  sweep::SpecError serr;
  const bool parsed = sweep::parse_sweep_spec(
      "name = bench\n"
      "set k = 4\n"
      "set warmup_packets = 30\n"
      "set warmup_min_cycles = 100\n"
      "set measure_packets = 60\n"
      "set max_cycles = 40000\n"
      "sweep preset = packet_vc4, hybrid_tdm_vc4\n"
      "sweep rate = 0.02, 0.04, 0.06, 0.08\n",
      &spec, &serr);
  if (!parsed) {
    state.SkipWithError(serr.to_string().c_str());
    return;
  }
  sweep::SweepOptions opt;
  opt.out_dir = dir;
  opt.workers = 2;
  sweep::run_sweep(spec, opt);  // populate the store once, untimed
  std::uint64_t points = 0;
  for (auto _ : state) {
    const sweep::SweepReport rep = sweep::run_sweep(spec, opt);
    benchmark::DoNotOptimize(rep.degradation.cache_hits);
    points += static_cast<std::uint64_t>(rep.degradation.points);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(points));
  fs::remove_all(dir);
}
BENCHMARK(BM_SweepCachedResume)->Unit(benchmark::kMillisecond);

void BM_IdleFastForward(benchmark::State& state) {
  // Whole-window skip: what an idle stretch costs when the driver may jump
  // instead of ticking cycle by cycle.
  Network net(engine_cfg(NocConfig::packet_vc4(6), state));
  for (auto _ : state) net.fast_forward(net.now() + 4096);
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_IdleFastForward)->Arg(1)->Arg(0);

}  // namespace
}  // namespace hybridnoc

BENCHMARK_MAIN();
