// Ablation (Section II-D): time-slot stealing on/off. Reserved-but-idle
// slots released to packet-switched flits lower PS latency with zero effect
// on circuit traffic.
#include <iostream>

#include "bench_util.hpp"

using namespace hybridnoc;
using namespace hybridnoc::bench;

int main() {
  print_banner(std::cout, "Ablation: time-slot stealing (tornado)");

  TextTable t({"rate", "latency w/ stealing", "latency w/o", "delta",
               "cs% w/", "cs% w/o"});
  const std::vector<double> rates = {0.10, 0.20, 0.30, 0.40};
  struct Job {
    double rate;
    bool stealing;
  };
  std::vector<Job> jobs;
  for (const double r : rates) {
    jobs.push_back({r, true});
    jobs.push_back({r, false});
  }
  const auto results = parallel_map(jobs, [&](const Job& j) {
    NocConfig cfg = NocConfig::hybrid_tdm_vc4();
    cfg.time_slot_stealing = j.stealing;
    return run_synthetic(cfg, synth_params(TrafficPattern::Tornado, j.rate));
  });
  for (size_t i = 0; i < rates.size(); ++i) {
    const auto& on = results[2 * i];
    const auto& off = results[2 * i + 1];
    t.add_row({TextTable::num(rates[i], 2),
               TextTable::num(on.avg_latency, 1) + (on.saturated ? "*" : ""),
               TextTable::num(off.avg_latency, 1) + (off.saturated ? "*" : ""),
               TextTable::num(off.avg_latency - on.avg_latency, 1),
               TextTable::pct(on.cs_flit_fraction, 1),
               TextTable::pct(off.cs_flit_fraction, 1)});
  }
  t.print(std::cout);
  return 0;
}
