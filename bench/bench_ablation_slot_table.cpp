// Ablation (Section II-C, time-division granularity): slot-table size sweep
// under tornado traffic. Small tables = short slot waits but few circuits;
// large tables = more reservations but longer waits and more leakage.
#include <iostream>

#include "bench_util.hpp"

using namespace hybridnoc;
using namespace hybridnoc::bench;

int main() {
  print_banner(std::cout, "Ablation: slot-table size (tornado, 0.2 flits/node/cyc)");

  const auto base = run_synthetic(NocConfig::packet_vc4(),
                                  synth_params(TrafficPattern::Tornado, 0.2));

  std::vector<int> sizes = {16, 32, 64, 128, 256};
  const auto results = parallel_map(sizes, [&](int s) {
    NocConfig cfg = NocConfig::hybrid_tdm_vc4();
    cfg.slot_table_size = s;
    cfg.initial_active_slots = std::min(16, s);
    return run_synthetic(cfg, synth_params(TrafficPattern::Tornado, 0.2));
  });

  TextTable t({"slots", "avg latency", "p99", "cs flits", "energy saving"});
  t.add_row({"Packet-VC4", TextTable::num(base.avg_latency, 1),
             TextTable::num(base.p99_latency, 1), "-", "-"});
  for (size_t i = 0; i < sizes.size(); ++i) {
    const auto& r = results[i];
    t.add_row({std::to_string(sizes[i]), TextTable::num(r.avg_latency, 1),
               TextTable::num(r.p99_latency, 1),
               TextTable::pct(r.cs_flit_fraction, 1),
               TextTable::pct(energy_saving(base.energy, r.energy), 1)});
  }
  t.print(std::cout);
  std::cout << "\nexpected: latency falls then rises with table size (wait vs\n"
               "capacity trade-off); leakage grows with powered entries.\n";
  return 0;
}
