// Ablation (Section II-C): dynamic time-division granularity. Start with a
// small powered slot-table region and double it when setup failures pile
// up, versus statically powering the whole table.
#include <iostream>

#include "bench_util.hpp"
#include "hetero/hetero_system.hpp"
#include "tdm/hybrid_network.hpp"

using namespace hybridnoc;
using namespace hybridnoc::bench;

int main() {
  print_banner(std::cout, "Ablation: dynamic slot-table sizing",
               "APPLU+LPS mix (many communication pairs)");

  const auto [warmup, measure] = hetero_windows();
  const WorkloadMix mix{cpu_benchmark("APPLU"), gpu_benchmark("LPS")};

  HeteroSystem base(NocConfig::packet_vc4(6), mix, 1);
  const auto mb = base.run(warmup, measure);

  TextTable t({"sizing", "final active slots", "resizes", "cs flits",
               "energy saving"});
  for (const bool dynamic : {false, true}) {
    NocConfig cfg = NocConfig::hybrid_tdm_vc4(6);
    cfg.dynamic_slot_sizing = dynamic;
    cfg.initial_active_slots = 16;
    cfg.resize_failure_threshold = 8;
    HeteroSystem sys(cfg, mix, 1);
    const auto m = sys.run(warmup, measure);
    const auto* net =
        dynamic_cast<const HybridNetwork*>(sys.network().mesh_network());
    t.add_row({dynamic ? "dynamic (start 16)" : "static (128)",
               std::to_string(net->controller().active_slots()),
               std::to_string(net->controller().resizes()),
               TextTable::pct(m.cs_flit_fraction, 1),
               TextTable::pct(energy_saving(mb.energy, m.energy), 1)});
  }
  t.print(std::cout);
  std::cout << "\nexpected: the dynamic table grows only as far as the "
               "workload's path population demands, saving slot-table "
               "leakage when few circuits are needed.\n";
  return 0;
}
