// Figure 6: scalability of Hybrid-TDM-VCt vs Packet-VC4 at 64 (8x8) and
// 256 (16x16) nodes with 256-entry slot tables: maximum throughput
// improvement and network energy saving sampled at 75% of the baseline's
// saturation load. The paper's shape: tornado/transpose benefits persist
// with size; uniform-random benefits shrink toward zero because the number
// of communication pairs grows quadratically while slot tables do not.
#include <iostream>

#include "bench_util.hpp"

using namespace hybridnoc;
using namespace hybridnoc::bench;

int main() {
  print_banner(std::cout, "Figure 6: scalability (8x8 and 16x16 meshes)",
               "Hybrid-TDM-VCt vs Packet-VC4; energy sampled at 75% of the "
               "baseline saturation load");

  const std::vector<int> sizes = {8, 16};
  const std::vector<TrafficPattern> patterns = {TrafficPattern::UniformRandom,
                                                TrafficPattern::Tornado,
                                                TrafficPattern::Transpose};

  TextTable t({"mesh", "pattern", "sat thr Packet", "sat thr Hybrid",
               "thr improvement", "energy saving @75%"});

  for (const int k : sizes) {
    for (const TrafficPattern pattern : patterns) {
      RunParams p = synth_params(pattern, 0.0);
      if (!paper_scale()) {
        // Larger meshes deliver packets faster at the same per-node rate;
        // keep the per-point cost bounded.
        p.measure_packets = k == 16 ? 6000 : 9000;
      }

      // Saturation scans for both configurations in parallel.
      std::vector<NocConfig> cfgs = {NocConfig::packet_vc4(k),
                                     NocConfig::hybrid_tdm_vct(k)};
      const auto sats = parallel_map(cfgs, [&](const NocConfig& cfg) {
        return saturation_throughput(cfg, p, 0.05, 0.05, 0.9);
      });
      const double sat_base = sats[0];
      const double sat_hyb = sats[1];

      // Energy at 75% of baseline saturation.
      p.injection_rate = 0.75 * sat_base;
      const auto runs = parallel_map(cfgs, [&](const NocConfig& cfg) {
        return run_synthetic(cfg, p);
      });
      const double saving = energy_saving(runs[0].energy, runs[1].energy);

      t.add_row({std::to_string(k) + "x" + std::to_string(k),
                 traffic_pattern_name(pattern), TextTable::num(sat_base, 3),
                 TextTable::num(sat_hyb, 3),
                 TextTable::num((sat_hyb / sat_base - 1.0) * 100.0, 1) + "%",
                 TextTable::pct(saving, 1)});
    }
  }
  t.print(std::cout);
  std::cout << "\npaper: benefits hold with size for tornado/transpose; the\n"
               "uniform-random benefit is small at 8x8 and nearly vanishes at\n"
               "16x16 (communication pairs grow quadratically, slot tables "
               "do not).\n";
  return 0;
}
