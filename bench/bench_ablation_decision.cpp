// Ablation (Section II-A): the switching decision. How aggressively should
// a source circuit-switch when the packet-switched network is congested?
// cs_latency_advantage scales the acceptable circuit latency relative to
// the estimated packet-switched latency; congestion_gain controls how much
// observed injection backpressure inflates that estimate.
//
// The sweep exposes the paper's central policy tension: an eager policy
// maximizes circuit usage and wins on structured traffic (tornado), while
// uniform-random traffic — whose thousands of low-rate pairs each hold
// rarely-used reservations — prefers a conservative policy.
#include <iostream>

#include "bench_util.hpp"

using namespace hybridnoc;
using namespace hybridnoc::bench;

int main() {
  print_banner(std::cout, "Ablation: switching-decision aggressiveness",
               "36-node mesh near saturation");

  struct Policy {
    std::string name;
    double advantage, gain;
  };
  const std::vector<Policy> policies = {
      {"conservative (1.0/1.0)", 1.0, 1.0},
      {"zero-load-only (1.2/0)", 1.2, 0.0},
      {"default (1.2/3.0)", 1.2, 3.0},
      {"eager (1.5/6.0)", 1.5, 6.0},
  };
  struct Point {
    TrafficPattern pattern;
    double rate;
  };
  const std::vector<Point> points = {{TrafficPattern::UniformRandom, 0.40},
                                     {TrafficPattern::UniformRandom, 0.45},
                                     {TrafficPattern::Tornado, 0.30},
                                     {TrafficPattern::Tornado, 0.40}};

  struct Job {
    Policy policy;
    Point point;
  };
  std::vector<Job> jobs;
  for (const auto& pol : policies)
    for (const auto& pt : points) jobs.push_back({pol, pt});
  const auto results = parallel_map(jobs, [&](const Job& j) {
    NocConfig cfg = NocConfig::hybrid_tdm_vc4();
    cfg.cs_latency_advantage = j.policy.advantage;
    cfg.congestion_gain = j.policy.gain;
    return run_synthetic(cfg, synth_params(j.point.pattern, j.point.rate));
  });

  TextTable t({"policy", "pattern", "rate", "latency", "accepted", "cs flits"});
  for (size_t i = 0; i < jobs.size(); ++i) {
    const auto& r = results[i];
    t.add_row({jobs[i].policy.name, traffic_pattern_name(jobs[i].point.pattern),
               TextTable::num(jobs[i].point.rate, 2),
               TextTable::num(r.avg_latency, 1) + (r.saturated ? "*" : ""),
               TextTable::num(r.accepted_rate, 3),
               TextTable::pct(r.cs_flit_fraction, 1)});
  }
  t.print(std::cout);
  return 0;
}
