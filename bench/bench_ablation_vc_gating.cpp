// Ablation (Section III-B): aggressive VC power-gating thresholds. Sweeps
// Threshold_Low (the gate-off trigger) and reports the energy/performance
// trade-off; also compares packet-switched-with-gating against the hybrid,
// reproducing the paper's "6.8% further static saving over Packet+gating"
// observation qualitatively.
#include <iostream>

#include "bench_util.hpp"
#include "hetero/hetero_system.hpp"

using namespace hybridnoc;
using namespace hybridnoc::bench;

int main() {
  print_banner(std::cout, "Ablation: VC power-gating thresholds",
               "APPLU+BLACKSCHOLES mix; savings vs plain Packet-VC4");

  const auto [warmup, measure] = hetero_windows();
  const WorkloadMix mix{cpu_benchmark("APPLU"), gpu_benchmark("BLACKSCHOLES")};

  HeteroSystem plain(NocConfig::packet_vc4(6), mix, 1);
  const auto mb = plain.run(warmup, measure);

  TextTable t({"config", "th_low", "energy saving", "cpu speedup", "gpu speedup"});
  for (const double th_low : {0.02, 0.06, 0.12}) {
    for (const bool hybrid : {false, true}) {
      NocConfig cfg = hybrid ? NocConfig::hybrid_tdm_vct(6) : NocConfig::packet_vc4(6);
      cfg.vc_power_gating = true;
      cfg.vc_threshold_low = th_low;
      HeteroSystem sys(cfg, mix, 1);
      const auto m = sys.run(warmup, measure);
      t.add_row({hybrid ? "Hybrid-TDM-VCt" : "Packet-VC4+gating",
                 TextTable::num(th_low, 2),
                 TextTable::pct(energy_saving(mb.energy, m.energy), 1),
                 TextTable::num(m.cpu_ipc / mb.cpu_ipc, 3),
                 TextTable::num(m.gpu_throughput / mb.gpu_throughput, 3)});
    }
  }
  // The paper's proposed future-work metric: gate on observed packet
  // latency (mean buffered-flit residency) instead of VC utilisation.
  for (const bool hybrid : {false, true}) {
    NocConfig cfg = hybrid ? NocConfig::hybrid_tdm_vct(6) : NocConfig::packet_vc4(6);
    cfg.vc_power_gating = true;
    cfg.vc_gate_metric = NocConfig::VcGateMetric::Latency;
    HeteroSystem sys(cfg, mix, 1);
    const auto m = sys.run(warmup, measure);
    t.add_row({std::string(hybrid ? "Hybrid-TDM-VCt" : "Packet-VC4+gating") +
                   " (latency metric)",
               "-", TextTable::pct(energy_saving(mb.energy, m.energy), 1),
               TextTable::num(m.cpu_ipc / mb.cpu_ipc, 3),
               TextTable::num(m.gpu_throughput / mb.gpu_throughput, 3)});
  }
  t.print(std::cout);
  std::cout << "\npaper: the hybrid NoC enables deeper gating than the "
               "packet-switched NoC with gating (circuits relieve buffer "
               "pressure); the latency metric is the paper's Section V-B4 "
               "future-work proposal.\n";
  return 0;
}
