// Section IV-A router area (Nangate 45 nm synthesis in the paper, analytic
// model here): packet-switched 0.177 mm^2, hybrid 0.188 mm^2, 6.2% overhead.
#include <iostream>

#include "bench_util.hpp"
#include "power/area_model.hpp"

using namespace hybridnoc;

int main() {
  print_banner(std::cout, "Router area (Section IV-A)",
               "paper: packet 0.177 mm^2, hybrid 0.188 mm^2 (6.2% overhead)");

  TextTable t({"router", "buffers", "crossbar", "alloc", "misc", "slot-table",
               "cs-latch", "dlt", "total mm^2"});
  auto row = [&](const std::string& name, const NocConfig& cfg) {
    const auto a = router_area(cfg);
    t.add_row({name, TextTable::num(a.buffers_mm2, 4),
               TextTable::num(a.crossbar_mm2, 4),
               TextTable::num(a.allocators_mm2, 4), TextTable::num(a.misc_mm2, 4),
               TextTable::num(a.slot_table_mm2, 4),
               TextTable::num(a.cs_latch_mm2, 4), TextTable::num(a.dlt_mm2, 4),
               TextTable::num(a.total(), 4)});
    return a.total();
  };
  const double ps = row("Packet-VC4", NocConfig::packet_vc4());
  const double hy = row("Hybrid-TDM-VC4", NocConfig::hybrid_tdm_vc4());
  row("Hybrid-TDM-hop", NocConfig::hybrid_tdm_hop_vc4());
  t.print(std::cout);

  std::cout << "\nhybrid overhead: " << TextTable::pct((hy - ps) / ps, 1)
            << "  (paper: 6.2%)\n";
  return 0;
}
