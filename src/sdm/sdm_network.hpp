// SDM-based hybrid-switched NoC baseline (Jerger et al., "Circuit-switched
// coherence", NOCS'08), the comparison point of Section IV.
//
// Links are physically partitioned into P planes of channel_bytes/P each.
// A circuit-switched connection claims one plane on every link along its
// (X-Y) path; packet-switched traffic runs on the remaining planes, each a
// full VC-wormhole network of narrow links. Because a packet is forced
// through a single plane, every 16-byte flit becomes P narrow phits —
// the packet serialization the paper identifies as the SDM throughput
// bottleneck (flits per packet x P, congestion and intra-router contention
// rise accordingly).
//
// Modelling notes (documented in DESIGN.md):
//  * The P packet-switched planes are real cycle-level networks (instances
//    of the same Router/NI fabric, 1 VC x 4x-deep buffers per plane, so
//    aggregate buffering equals the 4-VC baseline).
//  * Plane selection consults a global link-reservation registry — standing
//    in for Jerger's prediction-based reservation protocol; this errs in
//    SDM's favour (perfect knowledge, zero mis-predictions).
//  * Circuit transmission is a contention-free pipeline on the reserved
//    plane: serialization (flits x P phits at 1 phit/cycle) + 1 cycle per
//    hop + fixed setup/ejection overhead; connections serialize their own
//    packets. This is the best case for SDM circuits: no slot waiting.
//  * The paper omits SDM energy ("it increases the network energy
//    consumption"), so this model reports packet-plane energy only and is
//    excluded from the energy figures, exactly as in the paper.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/config.hpp"
#include "noc/network.hpp"

namespace hybridnoc {

class SdmNetwork {
 public:
  explicit SdmNetwork(const NocConfig& cfg);

  void tick();
  Cycle now() const { return now_; }
  const Mesh& mesh() const { return mesh_; }
  const NocConfig& cfg() const { return cfg_; }
  int num_nodes() const { return mesh_.num_nodes(); }

  /// Queue a packet (same producer contract as Network: src/dst/num_flits).
  void send(PacketPtr pkt);

  void set_deliver_handler(DeliverFn fn);
  void set_policy_frozen(bool frozen) { frozen_ = frozen; }
  bool quiescent() const;

  std::uint64_t total_data_sent() const { return sent_; }
  std::uint64_t total_data_delivered() const { return delivered_; }
  std::uint64_t circuit_packets() const { return circuit_packets_; }
  int reserved_links() const;
  int active_circuits() const { return static_cast<int>(circuits_.size()); }

 private:
  struct Circuit {
    int plane = 0;
    Cycle usable_at = 0;   ///< setup handshake completes
    Cycle busy_until = 0;  ///< serialization of the previous packet
    Cycle last_used = 0;
  };
  struct InFlight {
    Cycle deliver_at;
    PacketPtr pkt;
    bool operator>(const InFlight& o) const { return deliver_at > o.deliver_at; }
  };
  using LinkId = std::uint32_t;  ///< directed edge (node, port)

  LinkId link_id(NodeId n, Port p) const {
    return static_cast<LinkId>(n) * kNumPorts + static_cast<LinkId>(p);
  }
  /// Directed links of the X-Y path src -> dst.
  std::vector<LinkId> path_links(NodeId src, NodeId dst) const;
  bool plane_free_on_path(int plane, const std::vector<LinkId>& links) const;

  void maybe_setup_circuit(NodeId src, NodeId dst);
  void teardown_idle_circuits();
  void send_packet_switched(const PacketPtr& pkt);
  void send_circuit(Circuit& c, const PacketPtr& pkt);

  const NocConfig cfg_;
  Mesh mesh_;
  Cycle now_ = 0;
  bool frozen_ = false;

  /// One narrow packet-switched network per plane.
  std::vector<std::unique_ptr<Network>> planes_;
  /// plane -> set of reserved directed links.
  std::vector<std::set<LinkId>> reserved_;
  std::map<std::pair<NodeId, NodeId>, Circuit> circuits_;
  std::map<std::pair<NodeId, NodeId>, int> freq_;
  Cycle epoch_start_ = 0;

  /// Original packets in flight on packet planes, keyed by packet id.
  std::unordered_map<PacketId, PacketPtr> ps_outstanding_;
  /// Circuit-switched deliveries, time-ordered.
  std::priority_queue<InFlight, std::vector<InFlight>, std::greater<>> cs_in_flight_;

  DeliverFn deliver_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t circuit_packets_ = 0;
  int next_plane_rr_ = 0;
};

}  // namespace hybridnoc
