#include "sdm/sdm_network.hpp"

#include "common/pool.hpp"

namespace hybridnoc {

namespace {
NocConfig plane_config(const NocConfig& cfg) {
  NocConfig p = cfg;
  p.arch = RouterArch::PacketSwitched;
  // One VC per plane; aggregate buffer storage matches the 4-VC baseline:
  // 4 VCs x 5 flits x 16 B = 1 VC x 20 phits x (16/P) B per plane x P planes.
  p.num_vcs = 1;
  p.vc_buffer_depth = cfg.vc_buffer_depth * cfg.num_vcs;
  p.channel_bytes = cfg.channel_bytes / cfg.sdm_planes;
  p.vc_power_gating = false;
  p.min_active_vcs = 1;
  return p;
}
}  // namespace

SdmNetwork::SdmNetwork(const NocConfig& cfg) : cfg_(cfg), mesh_(cfg.k) {
  HN_CHECK(cfg.arch == RouterArch::HybridSdm);
  cfg_.validate();
  reserved_.resize(static_cast<size_t>(cfg_.sdm_planes));
  for (int p = 0; p < cfg_.sdm_planes; ++p) {
    planes_.push_back(std::make_unique<Network>(plane_config(cfg_)));
    planes_.back()->set_deliver_handler([this](const PacketPtr& pp, Cycle at) {
      const auto it = ps_outstanding_.find(pp->id);
      HN_CHECK(it != ps_outstanding_.end());
      PacketPtr orig = it->second;
      ps_outstanding_.erase(it);
      ++delivered_;
      if (deliver_) deliver_(orig, at);
    });
  }
}

void SdmNetwork::set_deliver_handler(DeliverFn fn) { deliver_ = std::move(fn); }

std::vector<SdmNetwork::LinkId> SdmNetwork::path_links(NodeId src,
                                                       NodeId dst) const {
  std::vector<LinkId> links;
  NodeId here = src;
  while (here != dst) {
    const Port p = route_xy(mesh_, here, dst);
    links.push_back(link_id(here, p));
    here = mesh_.neighbor(here, p);
  }
  return links;
}

bool SdmNetwork::plane_free_on_path(int plane,
                                    const std::vector<LinkId>& links) const {
  const auto& taken = reserved_[static_cast<size_t>(plane)];
  for (const LinkId l : links) {
    if (taken.count(l)) return false;
  }
  return true;
}

void SdmNetwork::send(PacketPtr pkt) {
  HN_CHECK(pkt && mesh_.valid(pkt->src) && mesh_.valid(pkt->dst));
  if (pkt->created == 0) pkt->created = now_;
  if (pkt->final_dst == kInvalidNode) pkt->final_dst = pkt->dst;
  ++sent_;

  if (!frozen_ && pkt->cs_eligible) {
    ++freq_[{pkt->src, pkt->dst}];
    auto it = circuits_.find({pkt->src, pkt->dst});
    if (it != circuits_.end() && now_ >= it->second.usable_at) {
      send_circuit(it->second, pkt);
      return;
    }
    if (it == circuits_.end() &&
        freq_[{pkt->src, pkt->dst}] >= cfg_.path_freq_threshold) {
      maybe_setup_circuit(pkt->src, pkt->dst);
    }
  }
  send_packet_switched(pkt);
}

void SdmNetwork::send_circuit(Circuit& c, const PacketPtr& pkt) {
  // Serialization: the whole packet crosses the narrow plane at one phit
  // per cycle; hops are pipelined at one cycle each; +4 covers injection /
  // ejection latching at the endpoints.
  const int phits = cfg_.cs_data_flits * cfg_.sdm_planes;
  const int hops = mesh_.hop_distance(pkt->src, pkt->dst);
  const Cycle start = std::max(now_, c.busy_until);
  const Cycle deliver_at =
      start + static_cast<Cycle>(phits + hops + 4);
  c.busy_until = start + static_cast<Cycle>(phits);
  c.last_used = now_;
  pkt->switching = Switching::Circuit;
  pkt->injected = start;
  ++circuit_packets_;
  cs_in_flight_.push({deliver_at, pkt});
}

void SdmNetwork::send_packet_switched(const PacketPtr& pkt) {
  const auto links = path_links(pkt->src, pkt->dst);
  // Pick the least-recently-used plane whose path is unreserved; plane 0 is
  // never reserved and is the guaranteed fallback.
  int plane = 0;
  for (int i = 0; i < cfg_.sdm_planes; ++i) {
    const int cand = (next_plane_rr_ + i) % cfg_.sdm_planes;
    if (plane_free_on_path(cand, links)) {
      plane = cand;
      break;
    }
  }
  next_plane_rr_ = (plane + 1) % cfg_.sdm_planes;

  auto pp = make_packet();
  pp->id = pkt->id;
  pp->src = pkt->src;
  pp->dst = pkt->dst;
  pp->type = pkt->type;
  pp->traffic_class = pkt->traffic_class;
  pp->created = pkt->created;
  // Serialization over the narrow plane: every flit becomes P phits.
  pp->num_flits = pkt->num_flits * cfg_.sdm_planes;
  const auto [it, inserted] = ps_outstanding_.emplace(pkt->id, pkt);
  HN_CHECK_MSG(inserted, "duplicate packet id in SDM network");
  (void)it;
  planes_[static_cast<size_t>(plane)]->ni(pkt->src).send(std::move(pp), now_);
}

void SdmNetwork::maybe_setup_circuit(NodeId src, NodeId dst) {
  const auto links = path_links(src, dst);
  // Planes 1..P-1 can hold circuits; plane 0 always remains packet-switched.
  for (int plane = 1; plane < cfg_.sdm_planes; ++plane) {
    if (!plane_free_on_path(plane, links)) continue;
    for (const LinkId l : links) reserved_[static_cast<size_t>(plane)].insert(l);
    Circuit c;
    c.plane = plane;
    // Setup handshake over the packet-switched network (request + ack).
    c.usable_at = now_ + static_cast<Cycle>(
                             2 * (5 * mesh_.hop_distance(src, dst) + 12));
    c.last_used = now_;
    circuits_[{src, dst}] = c;
    return;
  }
  // No plane available on this path: the number of circuit-switched paths
  // in SDM is fundamentally limited by the plane count (Section I).
}

void SdmNetwork::teardown_idle_circuits() {
  for (auto it = circuits_.begin(); it != circuits_.end();) {
    if (now_ - it->second.last_used > cfg_.path_idle_timeout) {
      const auto links = path_links(it->first.first, it->first.second);
      for (const LinkId l : links)
        reserved_[static_cast<size_t>(it->second.plane)].erase(l);
      it = circuits_.erase(it);
    } else {
      ++it;
    }
  }
}

void SdmNetwork::tick() {
  for (auto& p : planes_) p->tick();
  while (!cs_in_flight_.empty() && cs_in_flight_.top().deliver_at <= now_) {
    const PacketPtr pkt = cs_in_flight_.top().pkt;
    cs_in_flight_.pop();
    ++delivered_;
    if (deliver_) deliver_(pkt, now_);
  }
  if (now_ >= epoch_start_ + static_cast<Cycle>(cfg_.policy_epoch_cycles)) {
    epoch_start_ = now_;
    freq_.clear();
    teardown_idle_circuits();
  }
  ++now_;
}

bool SdmNetwork::quiescent() const {
  if (!cs_in_flight_.empty() || !ps_outstanding_.empty()) return false;
  for (const auto& p : planes_) {
    if (!p->quiescent()) return false;
  }
  return true;
}

int SdmNetwork::reserved_links() const {
  int n = 0;
  for (const auto& s : reserved_) n += static_cast<int>(s.size());
  return n;
}

}  // namespace hybridnoc
