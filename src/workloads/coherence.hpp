// Coherence request/reply workload generator: directory-protocol-shaped
// traffic with the bimodal message-size mix real multicores put on the NoC.
//
// Each transaction starts as a short control request (requester -> home
// node). The reply is injected a configurable service latency after the
// request is estimated to deliver (zero-load flight time of the modeled
// pipeline), and is either a data burst straight from the home
// (`data_fraction`) or a three-hop forwarded intervention
// (`forward_fraction`): home -> sharer control probe, then sharer ->
// requester data. Home-node choice is seeded and skewed — each requester
// favours one home with probability `home_locality` — so the trace exhibits
// the recurring requester/home pairs a directory's address interleaving
// produces.
//
// The generator returns the trace plus a parallel event log (one
// CoherenceEvent per trace entry, same index) recording each entry's role
// and its owning transaction, which the property suite uses to check that
// every reply pairs with an earlier matching request.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "traffic/trace.hpp"

namespace hybridnoc {

struct CoherenceParams {
  int k = 8;                   ///< mesh radix
  Cycle cycles = 4000;         ///< request-generation horizon
  double request_rate = 0.02;  ///< per-node per-cycle request probability
  int ctrl_flits = 1;          ///< short control message size
  int data_flits = 5;          ///< data burst size (cache line + header)
  double data_fraction = 0.7;  ///< replies that carry data (vs control ack)
  double forward_fraction = 0.2;  ///< of data replies: 3-hop interventions
  Cycle service_latency = 20;  ///< home/sharer lookup latency before reply
  int num_homes = 0;           ///< directory nodes (0 = every node is a home)
  double home_locality = 0.5;  ///< probability a requester uses its favourite
                               ///< home instead of a uniform one
  std::uint64_t seed = 1;
};

enum class CoherenceMsg : std::uint8_t {
  Request,  ///< requester -> home, ctrl_flits
  Reply,    ///< home -> requester, ctrl or data flits
  Forward,  ///< home -> sharer probe, ctrl_flits
  Data,     ///< sharer -> requester, data_flits
};

struct CoherenceEvent {
  CoherenceMsg msg = CoherenceMsg::Request;
  /// Transaction id shared by a request and every message it triggers;
  /// transaction n's request always precedes its other messages in time.
  std::uint64_t txn = 0;
  friend bool operator==(const CoherenceEvent&, const CoherenceEvent&) = default;
};

struct CoherenceTrace {
  std::vector<TraceEntry> entries;     ///< sorted by cycle
  std::vector<CoherenceEvent> events;  ///< events[i] describes entries[i]
};

/// Deterministic generation: same params => identical trace and event log.
CoherenceTrace generate_coherence_trace(const CoherenceParams& p);

}  // namespace hybridnoc
