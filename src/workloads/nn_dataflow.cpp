#include "workloads/nn_dataflow.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "common/assert.hpp"
#include "common/geometry.hpp"
#include "common/rng.hpp"

namespace hybridnoc {

int NnDescriptor::layer_index(const std::string& layer_name) const {
  for (size_t i = 0; i < layers.size(); ++i) {
    if (layers[i].name == layer_name) return static_cast<int>(i);
  }
  return -1;
}

int NnDescriptor::max_depth() const {
  int d = 0;
  for (const NnLayer& l : layers) d = std::max(d, l.depth);
  return d;
}

namespace {

// Longest-path stage index per layer via Kahn's algorithm; doubles as the
// cycle check (a node left unprocessed sits on a cycle).
void compute_depths(NnDescriptor& d) {
  std::vector<int> indegree(d.layers.size(), 0);
  for (const NnEdge& e : d.edges) ++indegree[e.consumer];
  std::vector<int> ready;
  for (size_t i = 0; i < d.layers.size(); ++i) {
    if (indegree[i] == 0) ready.push_back(static_cast<int>(i));
  }
  size_t processed = 0;
  while (!ready.empty()) {
    const int l = ready.back();
    ready.pop_back();
    ++processed;
    for (const NnEdge& e : d.edges) {
      if (e.producer != l) continue;
      d.layers[e.consumer].depth =
          std::max(d.layers[e.consumer].depth, d.layers[l].depth + 1);
      if (--indegree[e.consumer] == 0) ready.push_back(e.consumer);
    }
  }
  HN_CHECK_MSG(processed == d.layers.size(),
               "nn descriptor: layer graph has a cycle");
}

/// Row-major tile ids of a layer's placement rectangle.
std::vector<NodeId> layer_tiles(const NnLayer& l, const Mesh& mesh) {
  std::vector<NodeId> tiles;
  tiles.reserve(static_cast<size_t>(l.tiles()));
  for (int y = l.y; y < l.y + l.h; ++y) {
    for (int x = l.x; x < l.x + l.w; ++x) {
      tiles.push_back(mesh.node({x, y}));
    }
  }
  return tiles;
}

}  // namespace

NnDescriptor parse_nn_descriptor(std::istream& in, const std::string& name) {
  NnDescriptor d;
  d.name = name;
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string directive;
    if (!(ls >> directive)) continue;  // blank / comment-only line
    if (directive == "mesh") {
      HN_CHECK_MSG(d.k == 0, "nn descriptor: duplicate mesh directive");
      HN_CHECK_MSG(static_cast<bool>(ls >> d.k) && d.k >= 2,
                   "nn descriptor: mesh radix must be an integer >= 2");
      continue;
    }
    HN_CHECK_MSG(d.k != 0, "nn descriptor: mesh directive must come first");
    if (directive == "layer") {
      NnLayer l;
      HN_CHECK_MSG(static_cast<bool>(ls >> l.name >> l.x >> l.y >> l.w >> l.h),
                   "nn descriptor: malformed layer line");
      HN_CHECK_MSG(d.layer_index(l.name) < 0,
                   "nn descriptor: duplicate layer name");
      HN_CHECK_MSG(l.w >= 1 && l.h >= 1 && l.x >= 0 && l.y >= 0 &&
                       l.x + l.w <= d.k && l.y + l.h <= d.k,
                   "nn descriptor: layer placement outside the mesh grid");
      d.layers.push_back(std::move(l));
    } else if (directive == "edge") {
      std::string prod, cons;
      std::int64_t bytes = 0;
      HN_CHECK_MSG(static_cast<bool>(ls >> prod >> cons >> bytes),
                   "nn descriptor: malformed edge line");
      NnEdge e;
      e.producer = d.layer_index(prod);
      e.consumer = d.layer_index(cons);
      HN_CHECK_MSG(e.producer >= 0 && e.consumer >= 0,
                   "nn descriptor: edge references unknown layer");
      HN_CHECK_MSG(bytes > 0,
                   "nn descriptor: edge byte volume must be positive");
      e.bytes = bytes;
      d.edges.push_back(e);
    } else {
      HN_CHECK_MSG(false, "nn descriptor: unknown directive");
    }
  }
  HN_CHECK_MSG(!d.layers.empty(), "nn descriptor: no layers");
  HN_CHECK_MSG(!d.edges.empty(), "nn descriptor: no edges");
  compute_depths(d);

  // Every edge must map onto at least one tile pair that actually crosses
  // the network; a single-tile layer feeding itself would generate nothing.
  // nn_edge_tile_pairs aborts on the degenerate case.
  for (const NnEdge& e : d.edges) nn_edge_tile_pairs(d, e);
  return d;
}

NnDescriptor parse_nn_descriptor_string(const std::string& text,
                                        const std::string& name) {
  std::istringstream in(text);
  return parse_nn_descriptor(in, name);
}

// ---------------------------------------------------------------------------
// Bundled descriptors. Byte volumes are inter-stage activation footprints of
// the eponymous networks, coarsened to one edge per pipeline stage and scaled
// down (~1/16 of fp16 activations) so default-intensity runs sit in the
// low/mid-load regime the accuracy harness covers. Placements tile the model
// as a left-to-right pipeline: early stages (large activations, few weights)
// get wide bands, late stages narrow ones.

namespace {

const char kResnet50_6[] = R"(# resnet50-like pipeline, 6x6 mesh
mesh 6
layer stem   0 0 6 1
layer stage1 0 1 6 1
layer stage2 0 2 6 1
layer stage3 0 3 6 1
layer stage4 0 4 6 1
layer fc     0 5 6 1
edge stem   stage1 12544
edge stage1 stage2 6272
edge stage2 stage3 3136
edge stage3 stage4 1568
edge stage4 fc     784
)";

const char kResnet50_8[] = R"(# resnet50-like pipeline, 8x8 mesh
mesh 8
layer stem   0 0 8 1
layer stage1 0 1 8 2
layer stage2 0 3 8 2
layer stage3 0 5 8 2
layer fc     0 7 8 1
edge stem   stage1 25088
edge stage1 stage2 12544
edge stage2 stage3 6272
edge stage3 fc     1568
)";

const char kTransformer_6[] = R"(# transformer-block-like DAG, 6x6 mesh
mesh 6
layer embed 0 0 6 1
layer qproj 0 1 2 2
layer kproj 2 1 2 2
layer vproj 4 1 2 2
layer attn  0 3 6 1
layer ffn   0 4 6 1
layer out   0 5 6 1
edge embed qproj 4096
edge embed kproj 4096
edge embed vproj 4096
edge qproj attn  4096
edge kproj attn  4096
edge vproj attn  4096
edge attn  ffn   8192
edge ffn   out   4096
)";

const char kTransformer_8[] = R"(# transformer-block-like DAG, 8x8 mesh
mesh 8
layer embed 0 0 8 1
layer qproj 0 1 2 3
layer kproj 3 1 2 3
layer vproj 6 1 2 3
layer attn  0 4 8 1
layer ffn   0 5 8 2
layer out   0 7 8 1
edge embed qproj 8192
edge embed kproj 8192
edge embed vproj 8192
edge qproj attn  8192
edge kproj attn  8192
edge vproj attn  8192
edge attn  ffn   16384
edge ffn   out   8192
)";

const char kGnmt_6[] = R"(# gnmt-like encoder/decoder with attention, 6x6 mesh
mesh 6
layer enc1 0 0 6 1
layer enc2 0 1 6 1
layer enc3 0 2 6 1
layer dec1 0 3 6 1
layer dec2 0 4 6 1
layer dec3 0 5 6 1
edge enc1 enc2 4096
edge enc2 enc3 4096
edge enc3 dec1 4096
edge dec1 dec2 4096
edge dec2 dec3 4096
edge enc3 dec2 2048
edge enc3 dec3 2048
)";

const char kGnmt_8[] = R"(# gnmt-like encoder/decoder with attention, 8x8 mesh
mesh 8
layer enc1 0 0 8 1
layer enc2 0 1 8 1
layer enc3 0 2 8 2
layer dec1 0 4 8 2
layer dec2 0 6 8 1
layer dec3 0 7 8 1
edge enc1 enc2 8192
edge enc2 enc3 8192
edge enc3 dec1 8192
edge dec1 dec2 8192
edge dec2 dec3 8192
edge enc3 dec2 4096
edge enc3 dec3 4096
)";

}  // namespace

const char* builtin_nn_descriptor_text(const std::string& name, int k) {
  if (name == "resnet50") {
    if (k == 6) return kResnet50_6;
    if (k == 8) return kResnet50_8;
  } else if (name == "transformer") {
    if (k == 6) return kTransformer_6;
    if (k == 8) return kTransformer_8;
  } else if (name == "gnmt") {
    if (k == 6) return kGnmt_6;
    if (k == 8) return kGnmt_8;
  }
  return nullptr;
}

NnDescriptor builtin_nn_descriptor(const std::string& name, int k) {
  const char* text = builtin_nn_descriptor_text(name, k);
  HN_CHECK_MSG(text != nullptr,
               "unknown builtin nn descriptor (names: resnet50, transformer, "
               "gnmt; meshes: 6, 8)");
  return parse_nn_descriptor_string(text, name);
}

std::vector<std::string> builtin_nn_names() {
  return {"resnet50", "transformer", "gnmt"};
}

std::vector<std::pair<NodeId, NodeId>> nn_edge_tile_pairs(
    const NnDescriptor& d, const NnEdge& e) {
  const Mesh mesh(d.k);
  const auto prod = layer_tiles(d.layers[e.producer], mesh);
  const auto cons = layer_tiles(d.layers[e.consumer], mesh);
  const size_t np = prod.size(), nc = cons.size();
  // Aligned partitioned mapping: the larger side's tile i talks to the
  // smaller side's tile i mod size, the way dataflow mappers partition a
  // tensor across PEs. When overlapping placements make every aligned pair
  // self-directed, rotate the consumer side until a crossing pair appears
  // (the parser guarantees one exists for some rotation).
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (size_t shift = 0; shift < std::max(np, nc); ++shift) {
    pairs.clear();
    if (nc >= np) {
      for (size_t j = 0; j < nc; ++j) {
        const NodeId s = prod[j % np], t = cons[(j + shift) % nc];
        if (s != t) pairs.emplace_back(s, t);
      }
    } else {
      for (size_t i = 0; i < np; ++i) {
        const NodeId s = prod[i], t = cons[(i + shift) % nc];
        if (s != t) pairs.emplace_back(s, t);
      }
    }
    if (!pairs.empty()) return pairs;
  }
  HN_CHECK_MSG(false, "nn descriptor: edge has no non-self tile pair");
  return pairs;
}

std::int64_t nn_edge_flits(const NnEdge& e, const NnGenParams& p) {
  const double scaled = static_cast<double>(e.bytes) * p.intensity;
  return std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(scaled / static_cast<double>(p.channel_bytes))));
}

Cycle nn_auto_stage_cycles(const NnDescriptor& d, const NnGenParams& p) {
  // Size the stage window so no producer tile offers more than ~0.5
  // flits/cycle during its burst: window = 2 * (outgoing flits per tile),
  // taken over the busiest layer, floored at 64 cycles so tiny descriptors
  // still produce a resolvable burst structure.
  Cycle window = 64;
  for (size_t l = 0; l < d.layers.size(); ++l) {
    std::int64_t out_flits = 0;
    for (const NnEdge& e : d.edges) {
      if (e.producer == static_cast<int>(l)) out_flits += nn_edge_flits(e, p);
    }
    const std::int64_t per_tile =
        (out_flits + d.layers[l].tiles() - 1) / d.layers[l].tiles();
    window = std::max(window, static_cast<Cycle>(2 * per_tile));
  }
  return window;
}

std::vector<TraceEntry> generate_nn_trace(const NnDescriptor& d,
                                          const NnGenParams& p) {
  HN_CHECK(p.iterations >= 1);
  HN_CHECK(p.flits_per_packet >= 1);
  HN_CHECK(p.channel_bytes >= 1);
  HN_CHECK(p.intensity > 0.0);

  const Cycle stage =
      p.stage_cycles > 0 ? p.stage_cycles : nn_auto_stage_cycles(d, p);
  const Cycle interval =
      p.iteration_interval > 0
          ? p.iteration_interval
          : stage * static_cast<Cycle>(d.max_depth() + 1);
  Rng rng(p.seed);

  // Tile pairs per edge are enumerated once, in aligned-mapping order, so
  // the per-pair flit split is stable across runs.
  std::vector<std::vector<std::pair<NodeId, NodeId>>> edge_pairs;
  edge_pairs.reserve(d.edges.size());
  for (const NnEdge& e : d.edges) edge_pairs.push_back(nn_edge_tile_pairs(d, e));

  std::vector<TraceEntry> entries;
  for (int it = 0; it < p.iterations; ++it) {
    for (size_t ei = 0; ei < d.edges.size(); ++ei) {
      const NnEdge& e = d.edges[ei];
      const auto& pairs = edge_pairs[ei];
      const std::int64_t total = nn_edge_flits(e, p);
      const std::int64_t np = static_cast<std::int64_t>(pairs.size());
      const std::int64_t base = total / np;
      const std::int64_t rem = total % np;
      const Cycle start = static_cast<Cycle>(it) * interval +
                          static_cast<Cycle>(d.layers[e.producer].depth) * stage;
      for (std::int64_t pi = 0; pi < np; ++pi) {
        std::int64_t flits = base + (pi < rem ? 1 : 0);
        if (flits == 0) continue;
        const std::int64_t packets =
            (flits + p.flits_per_packet - 1) / p.flits_per_packet;
        for (std::int64_t j = 0; j < packets; ++j) {
          const int f = static_cast<int>(
              std::min<std::int64_t>(flits, p.flits_per_packet));
          flits -= f;
          // Spread the pair's packets evenly across the stage window with a
          // small seeded jitter so packets from different pairs interleave
          // instead of arriving in lock-step.
          const Cycle slot =
              start + static_cast<Cycle>(j) * stage / static_cast<Cycle>(packets);
          const Cycle jspan = std::max<Cycle>(
              1, stage / (2 * static_cast<Cycle>(packets)));
          const Cycle cycle = slot + rng.uniform_int(jspan);
          entries.push_back(TraceEntry{cycle, pairs[pi].first,
                                       pairs[pi].second, f});
        }
      }
    }
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const TraceEntry& a, const TraceEntry& b) {
                     return a.cycle < b.cycle;
                   });
  return entries;
}

}  // namespace hybridnoc
