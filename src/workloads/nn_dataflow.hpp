// NN-dataflow workload generator: application-shaped traffic for the hybrid
// NoC, replacing the synthetic uniform/hotspot strawman with the long-lived
// producer-consumer flows circuit switching was designed for.
//
// A workload is a small DAG descriptor (checked-in text format): layers are
// placed as tile rectangles on the k x k mesh, edges carry a per-iteration
// byte volume split across an aligned partitioned tile mapping — producer
// tile i feeds the consumer tiles congruent to i (mod the smaller side), the
// way dataflow mappers partition an output tensor across PEs, giving
// max(producer_tiles, consumer_tiles) heavy recurring pairs rather than a
// diluted all-to-all. The generator pipelines iterations: layer `L` of
// iteration `i` bursts during stage window `i * interval + depth(L) *
// stage_cycles`, so once the pipeline fills, every stage is active
// simultaneously and each tile pair is a long-lived point-to-point flow —
// exactly the traffic profiled hybrid switching pre-establishes circuits
// for.
//
// Descriptor grammar (one directive per line, `#` comments, blank lines
// ignored):
//   mesh <k>                      required, first non-comment line
//   layer <name> <x> <y> <w> <h>  tile rectangle [x, x+w) x [y, y+h)
//   edge <producer> <consumer> <bytes>
// Parsing aborts (HN_CHECK) on malformed lines, unknown layer references,
// non-positive byte volumes, out-of-grid placements, duplicate layers and
// cyclic edge sets — the golden-trace suite exercises each path.
//
// Byte-volume accounting is exact and testable: per edge and iteration the
// generator emits exactly nn_edge_flits(edge, params) payload flits (bytes
// scaled by `intensity`, divided by `channel_bytes`, rounded up), split
// across the edge's tile pairs with the remainder given to the lowest pair
// indices, and packed into packets of at most `flits_per_packet` flits.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "traffic/trace.hpp"

namespace hybridnoc {

struct NnLayer {
  std::string name;
  int x = 0, y = 0;  ///< top-left tile of the placement rectangle
  int w = 1, h = 1;  ///< rectangle extent (tiles)
  int depth = 0;     ///< longest-path stage index, computed by the parser
  int tiles() const { return w * h; }
};

struct NnEdge {
  int producer = -1;  ///< index into NnDescriptor::layers
  int consumer = -1;
  std::int64_t bytes = 0;  ///< payload bytes per iteration
};

struct NnDescriptor {
  std::string name;
  int k = 0;  ///< mesh radix the placements were written for
  std::vector<NnLayer> layers;
  std::vector<NnEdge> edges;

  int layer_index(const std::string& layer_name) const;  ///< -1 when absent
  int max_depth() const;
};

/// Parse a descriptor stream. Aborts (HN_CHECK) on any malformed input;
/// `name` labels the workload in summaries.
NnDescriptor parse_nn_descriptor(std::istream& in,
                                 const std::string& name = "nn");
NnDescriptor parse_nn_descriptor_string(const std::string& text,
                                        const std::string& name = "nn");

/// Bundled descriptors: "resnet50", "transformer", "gnmt", each scaled for
/// k = 6 and k = 8 meshes. Returns nullptr for unknown (name, k).
const char* builtin_nn_descriptor_text(const std::string& name, int k);
/// Parse a bundled descriptor; aborts (HN_CHECK) on unknown (name, k).
NnDescriptor builtin_nn_descriptor(const std::string& name, int k);
std::vector<std::string> builtin_nn_names();

struct NnGenParams {
  int iterations = 4;        ///< pipeline passes to schedule
  Cycle stage_cycles = 0;    ///< burst window per stage; 0 = auto-size so no
                             ///< producer tile exceeds ~0.5 flits/cycle
  Cycle iteration_interval = 0;  ///< 0 = auto: stage_cycles * (max_depth + 1),
                                 ///< a full pipeline (every stage live)
  int flits_per_packet = 5;  ///< packet granularity (ps_data_flits)
  int channel_bytes = 16;    ///< bytes per flit (Table I channel width)
  double intensity = 1.0;    ///< scales every edge's byte volume
  std::uint64_t seed = 1;    ///< jitter stream; same seed => identical trace
};

/// Payload flits one edge carries per iteration under `p` (what
/// generate_nn_trace guarantees to emit for it, exactly).
std::int64_t nn_edge_flits(const NnEdge& e, const NnGenParams& p);

/// The edge's aligned partitioned tile pairs (src, dst), self pairs
/// excluded; the exact flow set generate_nn_trace schedules. Exposed for
/// the flit-conservation property suite.
std::vector<std::pair<NodeId, NodeId>> nn_edge_tile_pairs(
    const NnDescriptor& d, const NnEdge& e);

/// Auto-sized stage window for `d` under `p` (the value used when
/// p.stage_cycles == 0), exposed for tests and load accounting.
Cycle nn_auto_stage_cycles(const NnDescriptor& d, const NnGenParams& p);

/// Deterministic trace: sorted by cycle, every entry in-mesh and never
/// self-directed, per-edge flit totals exactly iterations * nn_edge_flits.
std::vector<TraceEntry> generate_nn_trace(const NnDescriptor& d,
                                          const NnGenParams& p);

}  // namespace hybridnoc
