// Workload zoo front-end: maps a `--workload` spec string onto a generated
// trace so the CLI, the benches and the test harnesses all resolve specs
// identically.
//
// Spec grammar:
//   nn:<name>    bundled NN-dataflow descriptor (resnet50, transformer, gnmt)
//   nn:@<path>   NN-dataflow descriptor loaded from a file
//   coherence    coherence request/reply traffic
// Scaling knobs (mesh radix, load intensity, horizon, seed) come from
// WorkloadOptions, not the spec, so the same spec runs on any mesh.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "traffic/trace.hpp"
#include "workloads/coherence.hpp"
#include "workloads/nn_dataflow.hpp"

namespace hybridnoc {

struct WorkloadOptions {
  int k = 8;                ///< mesh radix the trace is generated for
  std::uint64_t seed = 1;
  double intensity = 1.0;   ///< scales NN byte volumes / coherence rate
  int nn_iterations = 4;
  Cycle coherence_cycles = 4000;
  double coherence_request_rate = 0.02;  ///< before intensity scaling
};

struct WorkloadTrace {
  std::string name;  ///< resolved label, e.g. "nn:resnet50", "coherence"
  std::vector<TraceEntry> entries;
  /// Offered load the trace represents when looped: total payload flits
  /// divided by (span * nodes), comparable to RunParams::injection_rate.
  double offered_rate = 0.0;
};

/// True when `spec` names a workload this module can build.
bool is_workload_spec(const std::string& spec);

/// Resolve `spec` and generate its trace. Aborts (HN_CHECK) on an unknown
/// spec, an unknown builtin descriptor name, or an unreadable/malformed
/// descriptor file.
WorkloadTrace build_workload(const std::string& spec,
                             const WorkloadOptions& opts);

/// Offered load of a looped trace: total flits / (span * nodes); 0 for an
/// empty trace.
double trace_offered_rate(const std::vector<TraceEntry>& entries, int nodes);

}  // namespace hybridnoc
