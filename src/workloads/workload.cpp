#include "workloads/workload.hpp"

#include <fstream>

#include "common/assert.hpp"

namespace hybridnoc {

bool is_workload_spec(const std::string& spec) {
  return spec == "coherence" || spec.rfind("nn:", 0) == 0;
}

double trace_offered_rate(const std::vector<TraceEntry>& entries, int nodes) {
  if (entries.empty()) return 0.0;
  std::int64_t flits = 0;
  for (const TraceEntry& e : entries) flits += e.flits;
  const Cycle span = entries.back().cycle + 1;  // TraceTraffic's loop period
  return static_cast<double>(flits) /
         (static_cast<double>(span) * static_cast<double>(nodes));
}

WorkloadTrace build_workload(const std::string& spec,
                             const WorkloadOptions& opts) {
  HN_CHECK_MSG(is_workload_spec(spec),
               "unknown workload spec (expected nn:<name>, nn:@<file> or "
               "coherence)");
  WorkloadTrace out;
  out.name = spec;
  if (spec == "coherence") {
    CoherenceParams cp;
    cp.k = opts.k;
    cp.cycles = opts.coherence_cycles;
    cp.request_rate = opts.coherence_request_rate * opts.intensity;
    cp.seed = opts.seed;
    out.entries = generate_coherence_trace(cp).entries;
  } else {
    const std::string arg = spec.substr(3);
    NnDescriptor desc;
    if (!arg.empty() && arg[0] == '@') {
      const std::string path = arg.substr(1);
      std::ifstream in(path);
      HN_CHECK_MSG(in.good(), "cannot open nn descriptor file");
      desc = parse_nn_descriptor(in, path);
      HN_CHECK_MSG(desc.k == opts.k,
                   "nn descriptor mesh radix does not match the run's mesh");
    } else {
      desc = builtin_nn_descriptor(arg, opts.k);
    }
    NnGenParams np;
    np.iterations = opts.nn_iterations;
    np.intensity = opts.intensity;
    np.seed = opts.seed;
    out.entries = generate_nn_trace(desc, np);
  }
  out.offered_rate = trace_offered_rate(out.entries, opts.k * opts.k);
  return out;
}

}  // namespace hybridnoc
