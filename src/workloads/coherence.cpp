#include "workloads/coherence.hpp"

#include <algorithm>
#include <numeric>

#include "common/assert.hpp"
#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "fastmodel/fast_model.hpp"

namespace hybridnoc {

namespace {

/// When a message injected at `cycle` is estimated to finish delivering:
/// the zero-load flight time of the modeled router pipeline, rounded up.
Cycle estimated_delivery(const Mesh& mesh, Cycle cycle, NodeId src, NodeId dst,
                         int flits) {
  const double flight =
      fast_zero_load_ps_latency(mesh.hop_distance(src, dst), flits);
  return cycle + static_cast<Cycle>(flight) + 1;
}

}  // namespace

CoherenceTrace generate_coherence_trace(const CoherenceParams& p) {
  HN_CHECK(p.k >= 2);
  HN_CHECK(p.cycles >= 1);
  HN_CHECK(p.request_rate > 0.0 && p.request_rate <= 1.0);
  HN_CHECK(p.ctrl_flits >= 1);
  HN_CHECK(p.data_flits >= 1);
  HN_CHECK(p.data_fraction >= 0.0 && p.data_fraction <= 1.0);
  HN_CHECK(p.forward_fraction >= 0.0 && p.forward_fraction <= 1.0);
  HN_CHECK(p.num_homes >= 0 && p.num_homes <= p.k * p.k);

  const Mesh mesh(p.k);
  const int n = mesh.num_nodes();
  const int homes = p.num_homes > 0 ? p.num_homes : n;

  Rng master(p.seed);
  // Independent streams per concern keep the trace stable under parameter
  // tweaks that only touch one of them.
  Rng inj_rng = master.split();
  Rng home_rng = master.split();
  Rng kind_rng = master.split();

  // Seeded per-requester favourite home: the recurring requester/home pair
  // an address-interleaved directory produces for a hot data structure.
  std::vector<int> favourite(n);
  for (int v = 0; v < n; ++v) {
    favourite[v] = static_cast<int>(home_rng.uniform_int(homes));
  }

  // Home slot h lives on node h * n / homes: spreads directories across the
  // mesh for any home count.
  auto home_node = [&](int h) {
    return static_cast<NodeId>(static_cast<std::int64_t>(h) * n / homes);
  };

  struct Pending {
    Cycle cycle;
    TraceEntry entry;
    CoherenceEvent event;
  };
  std::vector<Pending> all;
  std::uint64_t txn = 0;
  for (Cycle t = 0; t < p.cycles; ++t) {
    for (NodeId v = 0; v < n; ++v) {
      if (!inj_rng.bernoulli(p.request_rate)) continue;

      // Pick a home: favourite with probability home_locality, uniform
      // otherwise; redraw uniformly while it lands on the requester itself.
      int h = home_rng.bernoulli(p.home_locality)
                  ? favourite[v]
                  : static_cast<int>(home_rng.uniform_int(homes));
      while (home_node(h) == v) {
        h = static_cast<int>(home_rng.uniform_int(homes));
      }
      const NodeId home = home_node(h);

      const std::uint64_t id = txn++;
      all.push_back({t, TraceEntry{t, v, home, p.ctrl_flits},
                     CoherenceEvent{CoherenceMsg::Request, id}});
      const Cycle served = estimated_delivery(mesh, t, v, home, p.ctrl_flits) +
                           p.service_latency;

      const bool data = kind_rng.bernoulli(p.data_fraction);
      if (data && kind_rng.bernoulli(p.forward_fraction)) {
        // Intervention: home probes the sharer, sharer sends the line.
        NodeId sharer = v;
        while (sharer == v || sharer == home) {
          sharer = static_cast<NodeId>(kind_rng.uniform_int(n));
        }
        all.push_back({served, TraceEntry{served, home, sharer, p.ctrl_flits},
                       CoherenceEvent{CoherenceMsg::Forward, id}});
        const Cycle fwd_served =
            estimated_delivery(mesh, served, home, sharer, p.ctrl_flits) +
            p.service_latency;
        all.push_back(
            {fwd_served, TraceEntry{fwd_served, sharer, v, p.data_flits},
             CoherenceEvent{CoherenceMsg::Data, id}});
      } else {
        const int flits = data ? p.data_flits : p.ctrl_flits;
        all.push_back({served, TraceEntry{served, home, v, flits},
                       CoherenceEvent{CoherenceMsg::Reply, id}});
      }
    }
  }

  // Entries were appended request-first per transaction; a stable sort by
  // cycle therefore keeps every reply/forward/data after its request even
  // when cycles tie.
  std::vector<size_t> order(all.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return all[a].cycle < all[b].cycle;
  });

  CoherenceTrace out;
  out.entries.reserve(all.size());
  out.events.reserve(all.size());
  for (size_t i : order) {
    out.entries.push_back(all[i].entry);
    out.events.push_back(all[i].event);
  }
  return out;
}

}  // namespace hybridnoc
