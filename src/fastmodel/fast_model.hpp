// Transfer-level fast model: simulates whole packet transfers over
// link-by-link XY routes with analytic congestion and serialization delay,
// instead of ticking every router/flit every cycle. It reuses the repo's
// Mesh/routing code for topology, the TDM SlotTable for circuit
// reservations, and the event-based energy model's counting rules, so it
// produces the same RunResult stats surface (latency histogram, energy
// counters, CS flit fraction) as the cycle core at ~75x the cycle
// throughput (gated by bench_fastmodel_speedup).
//
// Timing model, calibrated against the cycle core's zero-load pipeline
// (2-cycle data channels, 1 cycle each for buffer-write wait, VA and SA):
//   * a packet-switched head flit costs 5 cycles per hop (3 router pipeline
//     + 2 link), +2 for the injection channel, +5 for the destination
//     router and ejection channel, and the tail trails flits-1 cycles:
//     zero-load latency = 5*hops + 6 + flits (the cycle core's own
//     ps_latency_estimate);
//   * every network interface serializes at one flit per cycle (a packet
//     occupies the source NI for `flits` cycles);
//   * every directed link and every ejection port is a FIFO server a
//     transfer occupies for `flits` cycles; queueing delay emerges from the
//     per-server busy-until times, processed in global creation order;
//   * TDM circuits mirror the cycle core's policy: per-epoch pair frequency
//     thresholds trigger setups, reservations walk real SlotTables (slot+2
//     per hop), CS transfers ride reserved windows at one packet per table
//     rotation, and packet-switched transfers share residual link capacity
//     (reserved-but-unused slots cost nothing when time-slot stealing is
//     on, matching the paper).
//
// Approximations (see EXPERIMENTS.md "Two-fidelity methodology"): no
// head-of-line blocking or VC backpressure (optimistic near saturation), no
// adaptive-routing spread for setups (circuits take the XY route), CS
// injections do not contend with the NI's packet-switched serializer. The
// accuracy harness (ctest -L accuracy) twin-runs both fidelities and gates
// mean latency within 10% and total energy within 5% at low/mid load.
#pragma once

#include <string>
#include <vector>

#include "common/config.hpp"
#include "sim/run_types.hpp"
#include "traffic/trace.hpp"

namespace hybridnoc {

/// True when the fast model supports `cfg`; otherwise fills `why` (if
/// non-null) with the unsupported feature. Supported: PacketSwitched and
/// HybridTdm without path sharing, VC power gating, dynamic slot sizing or
/// fault injection — the cycle core remains the engine for those.
bool fast_model_supports(const NocConfig& cfg, std::string* why = nullptr);

/// Zero-load packet-switched latency of the modeled pipeline (cycles).
inline double fast_zero_load_ps_latency(int hops, int flits) {
  return 5.0 * hops + 6.0 + static_cast<double>(flits);
}

/// One transfer-level run of `cfg` under a synthetic pattern, mirroring
/// run_synthetic's warmup/measurement/saturation methodology. Aborts
/// (HN_CHECK) when !fast_model_supports(cfg).
RunResult run_synthetic_fast(const NocConfig& cfg, const RunParams& params);

/// Transfer-level twin of run_trace: replays `entries` (looped) with the
/// same methodology. Message sizes come from the trace; entries shorter
/// than cfg.cs_data_flits are circuit-ineligible, mirroring the cycle
/// driver's rule. Aborts (HN_CHECK) when !fast_model_supports(cfg) or the
/// trace is empty.
RunResult run_trace_fast(const NocConfig& cfg,
                         const std::vector<TraceEntry>& entries,
                         const RunParams& params);

}  // namespace hybridnoc
