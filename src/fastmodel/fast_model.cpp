// Transfer-level fast engine. One event per packet *transfer* instead of one
// event per flit per cycle: injections are drawn per node with geometric
// skip-sampling (statistically identical to the cycle core's per-cycle
// Bernoulli process), each transfer is walked analytically over its XY route
// against per-server busy-until clocks (source NI serializer, every directed
// link, destination ejection port), and TDM circuits replay the cycle core's
// policy state machine (per-epoch pair frequencies, real SlotTable
// reservations with the slot+2-per-hop walk, window alignment, the
// cs_latency_advantage switching decision and the EWMA congestion signal)
// without simulating the flits that carry it.
//
// Everything observable — latency constants, energy event counts, per-cycle
// leakage integrals, the warmup/measurement-window methodology — mirrors the
// cycle core's definitions; see fast_model.hpp for the calibration contract
// and the list of accepted approximations.
#include "fastmodel/fast_model.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <map>
#include <queue>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "noc/routing.hpp"
#include "tdm/slot_table.hpp"

namespace hybridnoc {
namespace {

/// XY route unrolled once and cached: per-router input/output ports (the
/// exact arguments the cycle core's setup walk passes to SlotTable::reserve)
/// plus directed-link ids for the congestion servers.
struct Route {
  int hops = -1;  ///< -1 = not built yet
  std::vector<NodeId> routers;  ///< hops+1 routers, src..dst
  std::vector<Port> in;         ///< input port at each router (Local at src)
  std::vector<Port> out;        ///< output port at each router (Local at dst)
  std::vector<int> links;       ///< hops directed links, links[i] leaves routers[i]
};

/// One reservation window of a source-destination pair, mirroring
/// HybridNi::Connection::slots plus the fast model's usage clock.
struct Window {
  int slot = 0;        ///< slot at the source router's Local input
  Cycle ready = 0;     ///< ack arrival: the window exists from here on
  Cycle next_free = 0; ///< earliest next start (one packet per table rotation)
  PacketId owner = 0;  ///< setup id tagging the SlotTable entries
};

struct Conn {
  std::vector<Window> windows;
  Cycle last_used = 0;
};

/// Per-node NI policy state (the fast-model shadow of HybridNi). The
/// per-destination policy fields are dense vectors indexed by destination —
/// every injection reads several of them, and hash maps were a measurable
/// fraction of the event loop.
struct NiState {
  std::map<NodeId, Conn> conns;  ///< ordered: deterministic idle sweeps
  std::vector<int> freq;
  std::vector<Cycle> cooldown_until;
  std::vector<Cycle> pending_until;
  Cycle epoch_start = 0;
  Cycle cs_busy_until = 0;  ///< shadow of cs_plan_: next admissible CS start
  double ewma = 0.0;        ///< ewma_inject_delay of the base NI
};

/// Hot per-pair route metadata: everything ps_launch needs per packet in one
/// 8-byte load (the full Route record stays cold, used only by the TDM setup
/// walk). hops < 0 marks a pair whose route has not been built yet.
struct RouteRef {
  std::uint32_t off = 0;  ///< first link, index into links_flat_
  std::int32_t hops = -1;
};

/// A data packet's head arriving at a router input — the next link claim
/// happens at this event's time, so every link serves heads in true arrival
/// order (a single-pass whole-route walk would claim capacity in injection
/// order and systematically overstate queueing on long routes). The route's
/// remaining links are addressed through the flat link-id array (one load
/// per hop) rather than the full Route record.
struct HopEvent {
  std::uint32_t link_idx = 0;  ///< current link, index into links_flat_
  std::uint16_t remaining = 0; ///< links left to cross, including this one
  std::uint16_t dst = 0;       ///< destination node (ejection server)
  std::uint32_t created = 0;   ///< creation cycle; 32 bits keeps the event
                               ///< small (~6M live copies per run, the
                               ///< model checks max_cycles fits at startup)
  std::uint16_t flits = 0;     ///< packet length (trace-driven runs vary it)
};

/// A finished transfer awaiting delivery bookkeeping: when it was created
/// (latency) and the payload flits it carried (accepted-rate accounting —
/// the flits the workload injected, not the possibly CS-compressed wire
/// flits, so both fidelities and both switching modes count identically).
struct Delivery {
  std::uint32_t created = 0;
  std::uint32_t flits = 0;
};

/// Bucket-ring ("calendar") event queue for the simulation's two hot event
/// streams (hop arrivals and deliveries). Event times cluster within a few
/// hundred cycles of the present, so a ring of per-cycle buckets makes
/// push/pop O(1) where a binary heap pays log(n) pointer-chasing per event —
/// the heaps dominated the fast model's profile. Times beyond the ring's
/// horizon (deep-backlog schedules) spill into a small overflow heap.
///
/// The cursor only moves forward: push times must be strictly greater than
/// the last time handed out by next_at(), which the simulation guarantees
/// (every event schedules strictly-future successors). Events at one cycle
/// are handed back in push order; overflow spills are appended after ring
/// entries of the same cycle. That tie order differs from a global FIFO only
/// under multi-thousand-cycle backlogs, and is equally deterministic.
template <typename T>
class Calendar {
 public:
  Calendar() : buckets_(kSize) {}

  bool empty() const { return size_ == 0; }

  void push(Cycle at, const T& v) {
    ++size_;
    if (at - cursor_ >= kSize) {
      over_.push(Far{at, over_seq_++, v});
    } else {
      buckets_[at & kMask].push_back(v);
    }
  }

  /// Earliest event time in [cursor, limit], or kCycleNever when there is
  /// none (the cursor then rests at limit). Amortized O(1) per simulated
  /// cycle: the cursor never revisits a bucket.
  Cycle next_at(Cycle limit) {
    if (size_ == 0) {
      cursor_ = std::max(cursor_, limit);
      return kCycleNever;
    }
    const Cycle oat = over_.empty() ? kCycleNever : over_.top().at;
    while (cursor_ <= limit) {
      if (!buckets_[cursor_ & kMask].empty() || oat == cursor_) return cursor_;
      ++cursor_;
    }
    return kCycleNever;
  }

  /// Earliest event time in the queue, unbounded; kCycleNever when empty.
  /// Live streams keep the ring dense, so the scan is short; when every
  /// pending time sits in the overflow heap the answer is its top.
  Cycle next_any() {
    const Cycle oat = over_.empty() ? kCycleNever : over_.top().at;
    if (size_ - over_.size() > 0) {
      while (cursor_ < oat && buckets_[cursor_ & kMask].empty()) ++cursor_;
      return cursor_;
    }
    if (oat != kCycleNever) cursor_ = oat;
    return oat;
  }

  /// Move every event at time `t` (== the cursor, as returned by next_at /
  /// next_any) into `out`, ring entries first, then overflow spills.
  void take(Cycle t, std::vector<T>& out) {
    auto& b = buckets_[t & kMask];
    size_ -= b.size();
    for (auto& v : b) out.push_back(v);
    b.clear();
    while (!over_.empty() && over_.top().at == t) {
      out.push_back(over_.top().v);
      over_.pop();
      --size_;
    }
  }

  /// Visit every event at time `t` in place (ring first, then overflow).
  /// The visitor may push into this calendar: pushed times are strictly
  /// future, so they land in other buckets and never grow the one being
  /// walked.
  template <typename F>
  void consume(Cycle t, F&& f) {
    auto& b = buckets_[t & kMask];
    size_ -= b.size();
    for (size_t i = 0; i < b.size(); ++i) f(b[i]);
    b.clear();
    while (!over_.empty() && over_.top().at == t) {
      const T v = over_.top().v;
      over_.pop();
      --size_;
      f(v);
    }
  }

 private:
  static constexpr Cycle kSize = 4096;  ///< ring horizon, cycles
  static constexpr Cycle kMask = kSize - 1;
  struct Far {
    Cycle at;
    std::uint64_t seq;
    T v;
    bool operator<(const Far& o) const {  // inverted: min-heap under std::pq
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };
  std::vector<std::vector<T>> buckets_;
  std::priority_queue<Far> over_;
  std::uint64_t over_seq_ = 0;
  Cycle cursor_ = 0;
  std::uint64_t size_ = 0;
};

class FastModel {
 public:
  FastModel(const NocConfig& cfg, const RunParams& params)
      : cfg_(cfg),
        params_(params),
        mesh_(cfg.k),
        n_(mesh_.num_nodes()),
        tdm_(cfg.arch == RouterArch::HybridTdm),
        fps_(cfg.ps_data_flits),
        fcs_(cfg.cs_data_flits),
        dur_(cfg.reservation_duration()),
        slots_(cfg.slot_table_size),
        p_(params.injection_rate / static_cast<double>(cfg.ps_data_flits)) {
    HN_CHECK_MSG(p_ <= 1.0,
                 "injection rate must be <= flits_per_packet (one packet "
                 "per node per cycle at most)");
    HN_CHECK_MSG(params.max_cycles <= 0xffffffffULL,
                 "fast model packs creation cycles into 32 bits");
    routes_.resize(static_cast<size_t>(n_) * static_cast<size_t>(n_));
    route_ref_.assign(static_cast<size_t>(n_) * static_cast<size_t>(n_),
                      RouteRef{0, -1});
    links_flat_.reserve(1024);
    ni_free_.assign(static_cast<size_t>(n_), 0);
    eject_free_.assign(static_cast<size_t>(n_), 0);
    link_free_.assign(static_cast<size_t>(n_) * 4, 0);
    reserved_on_link_.assign(static_cast<size_t>(n_) * 4, 0);
    Rng master(params.seed);
    inj_rng_.reserve(static_cast<size_t>(n_));
    dst_rng_.reserve(static_cast<size_t>(n_));
    slot_rng_.reserve(static_cast<size_t>(n_));
    for (int v = 0; v < n_; ++v) {
      inj_rng_.push_back(master.split());
      dst_rng_.push_back(master.split());
      slot_rng_.push_back(master.split());
    }
    if (tdm_) {
      ni_.resize(static_cast<size_t>(n_));
      for (NiState& st : ni_) {
        st.freq.assign(static_cast<size_t>(n_), 0);
        st.cooldown_until.assign(static_cast<size_t>(n_), 0);
        st.pending_until.assign(static_cast<size_t>(n_), 0);
      }
      tables_.reserve(static_cast<size_t>(n_));
      for (int v = 0; v < n_; ++v)
        tables_.emplace_back(cfg.slot_table_size, cfg.slot_table_size);
    }
    if (p_ > 0.0 && p_ < 1.0) inv_log1m_p_ = 1.0 / std::log1p(-p_);
    nodes_u64_ = static_cast<std::uint64_t>(n_);
    nodes_threshold_ = (0 - nodes_u64_) % nodes_u64_;
    nodes_pow2_ = (nodes_u64_ & (nodes_u64_ - 1)) == 0;
    switch (params.pattern) {
      case TrafficPattern::UniformRandom:
        dst_mode_ = DstMode::Uniform;
        break;
      case TrafficPattern::Tornado:
        // Degenerate tornado (k <= 3) falls back to uniform draws, exactly
        // like pattern_destination.
        dst_mode_ = cfg.k / 2 - 1 <= 0 ? DstMode::Uniform : DstMode::Table;
        break;
      case TrafficPattern::Hotspot: {
        dst_mode_ = DstMode::Hotspot;
        const int lo = cfg.k / 2 - 1 > 0 ? cfg.k / 2 - 1 : 0;
        const Coord hot[4] = {{cfg.k / 2, cfg.k / 2},
                              {lo, cfg.k / 2},
                              {cfg.k / 2, lo},
                              {lo, lo}};
        for (int h = 0; h < 4; ++h) hotspots_[h] = mesh_.node(hot[h]);
        break;
      }
      default:
        dst_mode_ = DstMode::Table;
        break;
    }
    if (dst_mode_ == DstMode::Table) {
      // Deterministic patterns never consume random numbers, so the whole
      // map can be precomputed; -1 marks self-destinations (no packet).
      dst_table_.resize(static_cast<size_t>(n_));
      Rng scratch(0x5eed);
      for (NodeId v = 0; v < n_; ++v) {
        const auto d = pattern_destination(params.pattern, mesh_, v, scratch);
        dst_table_[static_cast<size_t>(v)] = d ? *d : -1;
      }
    }
    if (params.warmup_packets == 0) {
      armed_ = true;
      measure_start_ = params.warmup_min_cycles;
    }
  }

  /// Trace-driven run: replay `trace` (looped) instead of drawing a
  /// synthetic injection process. The synthetic ctor still runs so the
  /// policy shadow and rng streams are set up identically; the injection
  /// calendar is simply never armed.
  FastModel(const NocConfig& cfg, const RunParams& params,
            const std::vector<TraceEntry>& trace)
      : FastModel(cfg, params) {
    HN_CHECK_MSG(!trace.empty(), "fast model: empty trace");
    trace_ = &trace;
  }

  RunResult run() {
    if (trace_) return run_trace_mode();
    if (p_ > 0.0) {
      for (NodeId v = 0; v < n_; ++v) inj_.push(inject_gap(v), v);
    }
    while (!done_ && !inj_.empty()) {
      const Cycle t_inj = inj_.next_any();
      // Move every in-flight head that precedes (or ties with) the next
      // injection, mirroring the cycle core's router-before-NI update order
      // within a tick. Heads only touch link/ejection clocks and push
      // strictly-future events, so the whole stretch runs as one batch;
      // delivery bookkeeping is time-ordered by its own calendar and can
      // drain afterwards.
      const Cycle hop_bound = std::min(t_inj, params_.max_cycles - 1);
      Cycle t_hop;
      while ((t_hop = hops_.next_at(hop_bound)) != kCycleNever) {
        hops_.consume(t_hop, [this, t_hop](const HopEvent& h) {
          process_hop(t_hop, h);
        });
      }
      if (t_inj >= params_.max_cycles) {
        drain_deliveries(params_.max_cycles);
        if (!done_) end_cycle_ = params_.max_cycles;
        break;
      }
      drain_deliveries(t_inj);
      if (done_) break;
      if (armed_ && !measuring_ && t_inj >= measure_start_) begin_window();
      inj_.consume(t_inj, [this, t_inj](NodeId v) {
        process_injection(v, t_inj);
        inj_.push(t_inj + 1 + inject_gap(v), v);
      });
    }
    return finalize();
  }

 private:
  /// The trace twin of run(): the next event time is the next trace entry
  /// (shifted by the loop offset) instead of the injection calendar. Entry
  /// cycles strictly increase across loop passes (offset advances by the
  /// span), which is what the calendars' forward-only cursors require.
  RunResult run_trace_mode() {
    const std::vector<TraceEntry>& tr = *trace_;
    const Cycle span = tr.back().cycle + 1;  // TraceTraffic's loop period
    size_t pos = 0;
    Cycle offset = 0;
    while (!done_) {
      const Cycle t_inj = tr[pos].cycle + offset;
      const Cycle hop_bound = std::min(t_inj, params_.max_cycles - 1);
      Cycle t_hop;
      while ((t_hop = hops_.next_at(hop_bound)) != kCycleNever) {
        hops_.consume(t_hop, [this, t_hop](const HopEvent& h) {
          process_hop(t_hop, h);
        });
      }
      if (t_inj >= params_.max_cycles) {
        drain_deliveries(params_.max_cycles);
        if (!done_) end_cycle_ = params_.max_cycles;
        break;
      }
      drain_deliveries(t_inj);
      if (done_) break;
      if (armed_ && !measuring_ && t_inj >= measure_start_) begin_window();
      while (pos < tr.size() && tr[pos].cycle + offset == t_inj) {
        const TraceEntry& e = tr[pos];
        process_trace_injection(e.src, e.dst, e.flits, t_inj);
        if (++pos == tr.size()) {
          pos = 0;
          offset += span;
        }
      }
    }
    return finalize();
  }

  // --- topology helpers ---------------------------------------------------

  static int link_id(NodeId node, Port out) {
    return static_cast<int>(node) * 4 + (static_cast<int>(out) - 1);
  }

  const Route& route(NodeId src, NodeId dst) {
    Route& r = routes_[static_cast<size_t>(src) * static_cast<size_t>(n_) +
                       static_cast<size_t>(dst)];
    if (r.hops >= 0) return r;
    r.hops = mesh_.hop_distance(src, dst);
    r.routers.reserve(static_cast<size_t>(r.hops) + 1);
    r.in.reserve(static_cast<size_t>(r.hops) + 1);
    r.out.reserve(static_cast<size_t>(r.hops) + 1);
    r.links.reserve(static_cast<size_t>(r.hops));
    NodeId here = src;
    Port in = Port::Local;
    while (true) {
      const Port out = route_xy(mesh_, here, dst);
      r.routers.push_back(here);
      r.in.push_back(in);
      r.out.push_back(out);
      if (out == Port::Local) break;
      r.links.push_back(link_id(here, out));
      in = opposite(out);
      here = mesh_.neighbor(here, out);
    }
    // Flat copy of the link ids plus an 8-byte {offset, hops} record for the
    // hot path: ps_launch then reads one small array entry per packet instead
    // of dereferencing the full Route (a ~100-byte struct of vectors whose
    // random access was a guaranteed cache miss per injection).
    route_ref_[static_cast<size_t>(src) * static_cast<size_t>(n_) +
               static_cast<size_t>(dst)] = {
        static_cast<std::uint32_t>(links_flat_.size()), r.hops};
    links_flat_.insert(links_flat_.end(), r.links.begin(), r.links.end());
    return r;
  }

  /// Rng::geometric with the 1/log1p(-p) factor hoisted out of the loop —
  /// p is constant for the whole run and the log per draw was hot.
  Cycle inject_gap(NodeId v) {
    if (p_ >= 1.0) return 0;
    const double u = inj_rng_[static_cast<size_t>(v)].uniform();
    return static_cast<Cycle>(std::log1p(-u) * inv_log1m_p_);
  }

  // --- measurement window -------------------------------------------------

  void begin_window() {
    measuring_ = true;
    dyn_snap_ = dyn_;
    ps_snap_ = ps_flits_;
    cs_snap_ = cs_flits_;
    cfg_snap_ = config_flits_;
  }

  void drain_deliveries(Cycle upto) {
    while (upto > 0) {
      const Cycle t = deliveries_.next_at(upto - 1);
      if (t == kCycleNever) return;
      // Once the measurement target is hit, the rest of the finishing
      // cycle's deliveries still co-count (the cycle core tallies every
      // delivery of that cycle before its loop breaks) — they fall through
      // the same bookkeeping with only the gate check disabled.
      deliveries_.consume(t, [this, t](const Delivery& d) {
        ++delivered_total_;
        if (!armed_ && delivered_total_ >= params_.warmup_packets) {
          armed_ = true;
          measure_start_ = std::max(t + 1, params_.warmup_min_cycles);
        }
        if (!armed_ || t < measure_start_) return;
        window_delivered_flits_ += d.flits;
        if (d.created < measure_start_) return;
        record_latency(t - d.created);
        ++measured_;
        if (!done_ &&
            (measured_ >= params_.measure_packets ||
             (lat_count_ > 500 &&
              lat_sum_ >
                  params_.latency_cap * static_cast<double>(lat_count_)))) {
          if (measured_ < params_.measure_packets) saturated_ = true;
          end_cycle_ = t + 1;
          done_ = true;
        }
      });
      if (done_) return;
    }
  }

  void push_delivery(Cycle at, Cycle created, int payload_flits) {
    deliveries_.push(at, Delivery{static_cast<std::uint32_t>(created),
                                  static_cast<std::uint32_t>(payload_flits)});
  }

  // Latency statistics, kept as flat local state instead of the shared
  // StatAccumulator/Histogram classes: this runs once per measured packet in
  // the hottest loop, and the integer-latency specialisation (integer bucket
  // index, sum instead of streaming mean) is measurably cheaper while
  // reporting the same mean/p99 the cycle driver's Histogram(5.0, 400) does.
  void record_latency(Cycle d) {
    ++lat_count_;
    lat_sum_ += static_cast<double>(d);
    if (d > lat_max_) lat_max_ = d;
    const size_t idx = static_cast<size_t>(d) / kHistWidth;
    if (idx < kHistBuckets) {
      ++hist_buckets_[idx];
    } else {
      ++hist_overflow_;
    }
  }

  double latency_quantile(double q) const {
    // Mirrors Histogram::quantile: linear interpolation within the bucket,
    // overflow mass reported as the largest sample seen.
    if (lat_count_ == 0) return 0.0;
    const double target = q * static_cast<double>(lat_count_);
    double cum = 0.0;
    for (size_t i = 0; i < kHistBuckets; ++i) {
      const double next = cum + static_cast<double>(hist_buckets_[i]);
      if (next >= target && hist_buckets_[i] > 0) {
        const double frac = (target - cum) / static_cast<double>(hist_buckets_[i]);
        return (static_cast<double>(i) + frac) * static_cast<double>(kHistWidth);
      }
      cum = next;
    }
    return static_cast<double>(lat_max_);
  }

  // --- packet-switched transfers ------------------------------------------

  Cycle link_service(int link, int flits) const {
    if (!tdm_ || cfg_.time_slot_stealing) return static_cast<Cycle>(flits);
    // Without time-slot stealing, reserved slots are lost to packet-switched
    // traffic even when idle: the link serves PS flits at (S - reserved)/S
    // of its bandwidth.
    const int res =
        std::min(reserved_on_link_[static_cast<size_t>(link)], slots_ - 1);
    const double scale =
        static_cast<double>(slots_) / static_cast<double>(slots_ - res);
    return static_cast<Cycle>(
        static_cast<double>(flits) * scale + 0.9999);
  }

  /// Charge the cycle core's per-flit packet-switched energy events for one
  /// packet of `flits` over a route of `hops` links.
  void ps_energy(int hops, int flits, bool is_data) {
    const auto f = static_cast<std::uint64_t>(flits);
    const auto r = static_cast<std::uint64_t>(hops + 1);
    dyn_.buffer_writes += r * f;
    dyn_.buffer_reads += r * f;
    dyn_.sw_arbs += r * f;
    dyn_.xbar_flits += r * f;
    dyn_.vc_arbs += r;  // one VC allocation per packet per router
    dyn_.link_flits += static_cast<std::uint64_t>(hops) * f;
    if (is_data) {
      ps_flits_ += f;
    } else {
      config_flits_ += f;
    }
  }

  /// Synchronous whole-route walk for config messages (setups, acks,
  /// teardowns): returns the delivery cycle. Config traffic is a fraction
  /// of a percent of flits, so the injection-order capacity claims are a
  /// harmless simplification here; data packets go hop by hop instead.
  Cycle ps_transfer(const Route& rt, Cycle t, int flits, bool is_data) {
    const NodeId src = rt.routers.front();
    const NodeId dst = rt.routers.back();
    const Cycle head = std::max(t, ni_free_[static_cast<size_t>(src)]);
    ni_free_[static_cast<size_t>(src)] = head + static_cast<Cycle>(flits);
    Cycle arr = head + 2;  // injection channel
    for (int i = 0; i < rt.hops; ++i) {
      const int l = rt.links[static_cast<size_t>(i)];
      const Cycle depart =
          std::max(arr + 3, link_free_[static_cast<size_t>(l)]);
      link_free_[static_cast<size_t>(l)] = depart + link_service(l, flits);
      arr = depart + 2;
    }
    const Cycle ej = std::max(arr + 3, eject_free_[static_cast<size_t>(dst)]);
    eject_free_[static_cast<size_t>(dst)] = ej + static_cast<Cycle>(flits);
    ps_energy(rt.hops, flits, is_data);
    return ej + 2 + static_cast<Cycle>(flits - 1);
  }

  /// Launch one data packet: serialize at the source NI, then walk the route
  /// hop by hop via HopEvents so links serve heads in arrival order.
  void ps_launch(NodeId src, NodeId dst, Cycle t, int flits) {
    const size_t key =
        static_cast<size_t>(src) * static_cast<size_t>(n_) +
        static_cast<size_t>(dst);
    RouteRef rr = route_ref_[key];
    if (rr.hops < 0) {
      route(src, dst);
      rr = route_ref_[key];
    }
    const Cycle head = std::max(t, ni_free_[static_cast<size_t>(src)]);
    ni_free_[static_cast<size_t>(src)] = head + static_cast<Cycle>(flits);
    if (tdm_) {
      // ewma_inject_delay: the base NI smooths (injection - creation) of
      // every non-config head flit with a 0.9/0.1 EWMA.
      NiState& st = ni_[static_cast<size_t>(src)];
      st.ewma = 0.9 * st.ewma + 0.1 * static_cast<double>(head - t);
    }
    ps_energy(rr.hops, flits, /*is_data=*/true);
    const HopEvent ev{rr.off, static_cast<std::uint16_t>(rr.hops),
                      static_cast<std::uint16_t>(dst),
                      static_cast<std::uint32_t>(t),
                      static_cast<std::uint16_t>(flits)};
    if (head == t) {
      // NI idle: the head reaches its first router two cycles from now with
      // nothing able to overtake it in between — claim in place and save the
      // event. A backlogged NI goes through the queue so that heads from
      // other sources arriving during the serialization delay keep their
      // true arrival order on shared links.
      process_hop(t + 2, ev);
    } else {
      hops_.push(head + 2, ev);
    }
  }

  void process_hop(Cycle at, const HopEvent& h) {
    const int l = links_flat_[h.link_idx];
    const Cycle ready = at + 3;
    const Cycle free = link_free_[static_cast<size_t>(l)];
    const Cycle depart = ready < free ? free : ready;
    // The +1 is a switch-turnaround bubble: the cycle core's allocator
    // leaves at least one idle cycle between consecutive packets on a link
    // (the next head re-arbitrates after the previous tail). It only delays
    // followers, so zero-load latency is untouched, and it supplies the
    // congestion spread a pure serialisation model otherwise understates.
    link_free_[static_cast<size_t>(l)] =
        depart + link_service(l, h.flits) + 1;
    if (h.remaining > 1) {
      hops_.push(depart + 2,
                 HopEvent{h.link_idx + 1,
                          static_cast<std::uint16_t>(h.remaining - 1), h.dst,
                          h.created, h.flits});
      return;
    }
    // Arrived at the destination router: pipeline, ejection channel, tail.
    const Cycle ej =
        std::max(depart + 2 + 3, eject_free_[static_cast<size_t>(h.dst)]);
    eject_free_[static_cast<size_t>(h.dst)] =
        ej + static_cast<Cycle>(h.flits);
    push_delivery(ej + 2 + static_cast<Cycle>(h.flits - 1), h.created,
                  h.flits);
  }

  // --- TDM policy shadow --------------------------------------------------

  void epoch_tick(NodeId v, Cycle t) {
    NiState& st = ni_[static_cast<size_t>(v)];
    if (t < st.epoch_start + static_cast<Cycle>(cfg_.policy_epoch_cycles))
      return;
    st.epoch_start = t;
    std::fill(st.freq.begin(), st.freq.end(), 0);
    // Retire connections idle beyond the timeout (HybridNi::epoch_tick).
    std::vector<NodeId> idle;
    for (const auto& [dst, conn] : st.conns) {
      if (t > conn.last_used && t - conn.last_used > cfg_.path_idle_timeout)
        idle.push_back(dst);
    }
    for (const NodeId dst : idle) teardown_connection(v, dst, t);
  }

  void release_window(NodeId src, NodeId dst, const Window& w) {
    const Route& rt = route(src, dst);
    const int mask = slots_ - 1;
    for (int i = 0; i <= rt.hops; ++i) {
      tables_[static_cast<size_t>(rt.routers[static_cast<size_t>(i)])].release(
          (w.slot + 2 * i) & mask, dur_, rt.in[static_cast<size_t>(i)],
          w.owner);
      dyn_.slot_table_writes += static_cast<std::uint64_t>(dur_);
    }
    if (!cfg_.time_slot_stealing) {
      for (const int l : rt.links)
        reserved_on_link_[static_cast<size_t>(l)] -= dur_;
    }
  }

  void teardown_connection(NodeId src, NodeId dst, Cycle t) {
    NiState& st = ni_[static_cast<size_t>(src)];
    const auto it = st.conns.find(dst);
    if (it == st.conns.end()) return;
    for (const Window& w : it->second.windows) {
      release_window(src, dst, w);
      ps_transfer(route(src, dst), t, cfg_.config_flits, /*is_data=*/false);
    }
    st.conns.erase(it);
  }

  /// HybridNi::choose_setup_slot: a fallback draw, then up to 8 candidates
  /// preferring a free Local-input slot; a retry must avoid the failed slot.
  int choose_slot(NodeId src, int avoid) {
    Rng& rng = slot_rng_[static_cast<size_t>(src)];
    const auto S = static_cast<std::uint64_t>(slots_);
    int slot = static_cast<int>(rng.uniform_int(S));
    if (slot == avoid) slot = -1;
    for (int attempt = 0; attempt < 8; ++attempt) {
      const int cand = static_cast<int>(rng.uniform_int(S));
      if (cand == avoid) continue;
      if (slot < 0) slot = cand;
      if (tables_[static_cast<size_t>(src)].input_free(cand, dur_, Port::Local))
        return cand;
    }
    if (slot < 0)
      slot = (avoid + 1 +
              static_cast<int>(rng.uniform_int(S - 1))) % slots_;
    return slot;
  }

  /// The path-setup protocol, retried synchronously: walk the route's real
  /// SlotTables with the slot+2-per-hop increment; on the first conflicting
  /// (or occupancy-capped) router, release the reserved prefix, charge the
  /// setup/nack/teardown config messages, and retry with a different slot.
  void do_setup(NodeId src, NodeId dst, Cycle t) {
    NiState& st = ni_[static_cast<size_t>(src)];
    const Route& rt = route(src, dst);
    const int mask = slots_ - 1;
    int avoid = -1;
    for (int retry = 0; retry <= cfg_.max_setup_retries; ++retry) {
      const int slot0 = choose_slot(src, avoid);
      const PacketId owner = next_owner_id_++;
      int fail_at = -1;
      for (int i = 0; i <= rt.hops; ++i) {
        SlotTable& tab =
            tables_[static_cast<size_t>(rt.routers[static_cast<size_t>(i)])];
        const int s = (slot0 + 2 * i) & mask;
        if (tab.occupancy() >= cfg_.reservation_threshold ||
            !tab.reserve(s, dur_, rt.in[static_cast<size_t>(i)],
                         rt.out[static_cast<size_t>(i)], owner, t)) {
          fail_at = i;
          break;
        }
        dyn_.slot_table_writes += static_cast<std::uint64_t>(dur_);
      }
      if (fail_at < 0) {
        if (!cfg_.time_slot_stealing) {
          for (const int l : rt.links)
            reserved_on_link_[static_cast<size_t>(l)] += dur_;
        }
        // Setup rides to the destination, the ack rides back; the window
        // exists once the ack arrives.
        const Cycle d1 =
            ps_transfer(rt, t, cfg_.config_flits, /*is_data=*/false);
        const Cycle d2 = ps_transfer(route(dst, src), d1, cfg_.config_flits,
                                     /*is_data=*/false);
        Conn& conn = st.conns[dst];
        conn.windows.push_back(Window{slot0, d2, 0, owner});
        if (conn.last_used < d2) conn.last_used = d2;
        st.pending_until[dst] = d2;
        return;
      }
      // Release the reserved prefix and account the partial setup, the
      // failure ack, and the prefix teardown (three config messages).
      for (int i = 0; i < fail_at; ++i) {
        tables_[static_cast<size_t>(rt.routers[static_cast<size_t>(i)])]
            .release((slot0 + 2 * i) & mask, dur_,
                     rt.in[static_cast<size_t>(i)], owner);
        dyn_.slot_table_writes += static_cast<std::uint64_t>(dur_);
      }
      const NodeId fail_node = rt.routers[static_cast<size_t>(fail_at)];
      if (fail_node != src) {
        ps_transfer(route(src, fail_node), t, cfg_.config_flits, false);
        ps_transfer(route(fail_node, src), t, cfg_.config_flits, false);
        if (fail_at > 0)
          ps_transfer(route(src, fail_node), t, cfg_.config_flits, false);
      }
      avoid = slot0;
    }
    st.cooldown_until[dst] =
        t + 4 * static_cast<Cycle>(cfg_.policy_epoch_cycles);
  }

  void maybe_setup(NodeId src, NodeId dst, Cycle t, bool force,
                   bool supplement) {
    NiState& st = ni_[static_cast<size_t>(src)];
    if (dst == src) return;
    // Guards are a pure conjunction, so order by cost: the freq counter was
    // incremented by the caller a moment ago (cache-hot) and fails for
    // almost every packet, while pending/cooldown are scattered loads.
    if (!force && st.freq[static_cast<size_t>(dst)] < cfg_.path_freq_threshold)
      return;
    if (t < st.pending_until[static_cast<size_t>(dst)]) return;
    const auto cit = st.conns.find(dst);
    if (supplement) {
      if (cit == st.conns.end() ||
          static_cast<int>(cit->second.windows.size()) >=
              cfg_.max_windows_per_pair)
        return;
      // Breadth before depth: a crowded local table serves new pairs first.
      if (tables_[static_cast<size_t>(src)].occupancy() > 0.5) return;
    } else if (cit != st.conns.end()) {
      return;
    }
    if (t < st.cooldown_until[static_cast<size_t>(dst)]) return;
    // Retire the idlest connection when the local table is crowded.
    if (tables_[static_cast<size_t>(src)].occupancy() > 0.5 &&
        !st.conns.empty()) {
      auto idlest = st.conns.begin();
      for (auto it = st.conns.begin(); it != st.conns.end(); ++it)
        if (it->second.last_used < idlest->second.last_used) idlest = it;
      if (t > idlest->second.last_used &&
          t - idlest->second.last_used >
              static_cast<Cycle>(cfg_.policy_epoch_cycles))
        teardown_connection(src, idlest->first, t);
    }
    do_setup(src, dst, t);
  }

  enum class CsAttempt { Scheduled, NoWindow, NotWorth };

  CsAttempt try_circuit(NodeId src, NodeId dst, Cycle t, int payload_flits) {
    NiState& st = ni_[static_cast<size_t>(src)];
    Conn& conn = st.conns[dst];
    const Route& rt = route(src, dst);
    const int h = rt.hops;
    const auto S = static_cast<Cycle>(slots_);
    Cycle best = kCycleNever;
    size_t best_w = 0;
    bool any_ready = false;
    for (size_t i = 0; i < conn.windows.size(); ++i) {
      const Window& w = conn.windows[i];
      if (w.ready > t) continue;
      any_ready = true;
      const Cycle base = std::max({t + 3, st.cs_busy_until, w.next_free});
      const Cycle cand =
          base + ((static_cast<Cycle>(w.slot) - base) & (S - 1));
      // find_start probes two table rotations from now+3 and gives up.
      if (cand - (t + 3) >= 2 * S) continue;
      if (cand < best) {
        best = cand;
        best_w = i;
      }
    }
    if (!any_ready || best == kCycleNever) return CsAttempt::NoWindow;
    const double cs_latency = static_cast<double>(best - t) + 2.0 * h + 2.0 +
                              static_cast<double>(fcs_ - 1);
    const double ps_estimate = 5.0 * h + 6.0 + cfg_.ps_data_flits +
                               cfg_.congestion_gain * st.ewma;
    if (cs_latency > cfg_.cs_latency_advantage * ps_estimate)
      return CsAttempt::NotWorth;

    Window& w = conn.windows[best_w];
    w.next_free = best + 1;  // alignment makes the next start >= best + S
    st.cs_busy_until = best + static_cast<Cycle>(fcs_);
    conn.last_used = t;

    const auto f = static_cast<std::uint64_t>(fcs_);
    const auto r = static_cast<std::uint64_t>(h + 1);
    dyn_.cs_latch_flits += r * f;
    dyn_.xbar_flits += r * f;
    dyn_.link_flits += static_cast<std::uint64_t>(h) * f;
    cs_flits_ += f;
    // Circuit flits occupy their reserved link cycles; packet-switched
    // backlogs behind them slip by the circuit's footprint.
    for (const int l : rt.links) {
      if (link_free_[static_cast<size_t>(l)] > t)
        link_free_[static_cast<size_t>(l)] += static_cast<Cycle>(fcs_);
    }
    push_delivery(best + 2 * static_cast<Cycle>(h) + 2 +
                      static_cast<Cycle>(fcs_ - 1),
                  t, payload_flits);
    return CsAttempt::Scheduled;
  }

  // --- injection ----------------------------------------------------------

  void process_injection(NodeId v, Cycle t) {
    // Source queues diverging: the cycle core drops the packet and flags
    // deep saturation. The serializer backlog is our queue depth.
    if (ni_free_[static_cast<size_t>(v)] > t &&
        (ni_free_[static_cast<size_t>(v)] - t) / static_cast<Cycle>(fps_) >
            2000) {
      saturated_ = true;
      return;
    }
    if (tdm_) epoch_tick(v, t);
    const NodeId dst = draw_destination(v);
    if (dst < 0) return;
    if (measuring_) window_generated_flits_ += static_cast<std::uint64_t>(fps_);

    if (tdm_) {
      NiState& st = ni_[static_cast<size_t>(v)];
      ++st.freq[static_cast<size_t>(dst)];
      if (!st.conns.empty() && st.conns.find(dst) != st.conns.end()) {
        const CsAttempt r = try_circuit(v, dst, t, fps_);
        if (r == CsAttempt::Scheduled) return;
        if (r == CsAttempt::NoWindow)
          maybe_setup(v, dst, t, /*force=*/true, /*supplement=*/true);
      }
      maybe_setup(v, dst, t, /*force=*/false, /*supplement=*/false);
    }
    ps_launch(v, dst, t, fps_);
  }

  /// Trace-entry twin of process_injection: source/destination/length come
  /// from the trace. Messages shorter than the fixed CS transfer size are
  /// circuit-ineligible (they would be padded out by it), mirroring
  /// run_trace's rule and HybridNi's cs_eligible gate — they skip the whole
  /// policy block, including the pair-frequency count.
  void process_trace_injection(NodeId v, NodeId dst, int flits, Cycle t) {
    const int unit = flits > 0 ? flits : 1;
    if (ni_free_[static_cast<size_t>(v)] > t &&
        (ni_free_[static_cast<size_t>(v)] - t) / static_cast<Cycle>(unit) >
            2000) {
      saturated_ = true;
      return;
    }
    if (tdm_) epoch_tick(v, t);
    if (measuring_)
      window_generated_flits_ += static_cast<std::uint64_t>(flits);

    if (tdm_ && flits >= fcs_) {
      NiState& st = ni_[static_cast<size_t>(v)];
      ++st.freq[static_cast<size_t>(dst)];
      if (!st.conns.empty() && st.conns.find(dst) != st.conns.end()) {
        const CsAttempt r = try_circuit(v, dst, t, flits);
        if (r == CsAttempt::Scheduled) return;
        if (r == CsAttempt::NoWindow)
          maybe_setup(v, dst, t, /*force=*/true, /*supplement=*/true);
      }
      maybe_setup(v, dst, t, /*force=*/false, /*supplement=*/false);
    }
    ps_launch(v, dst, t, flits);
  }

  /// pattern_destination, specialised at construction time: deterministic
  /// patterns collapse to a table lookup (they never touch the rng, so the
  /// draw sequence is unchanged), and the stochastic ones issue the exact
  /// same rng calls in the same order — results stay bit-identical to
  /// calling pattern_destination per packet, minus the per-call switch,
  /// coordinate math, and cross-library call. Returns -1 for "no packet"
  /// (the self-destination case pattern_destination reports as nullopt).
  NodeId draw_destination(NodeId src) {
    Rng& rng = dst_rng_[static_cast<size_t>(src)];
    NodeId dst;
    switch (dst_mode_) {
      case DstMode::Table:
        return dst_table_[static_cast<size_t>(src)];
      case DstMode::Uniform:
        dst = draw_uniform_node(rng);
        break;
      case DstMode::Hotspot:
        dst = rng.bernoulli(0.25) ? hotspots_[rng.uniform_int(4)]
                                  : draw_uniform_node(rng);
        break;
    }
    return dst == src ? -1 : dst;
  }

  /// Rng::uniform_int(num_nodes) with the rejection threshold hoisted to a
  /// member and the modulo strength-reduced to a mask on power-of-two
  /// meshes; draw-for-draw identical to the generic version (for such
  /// meshes the threshold is zero and r % n == r & (n-1)).
  NodeId draw_uniform_node(Rng& rng) const {
    for (;;) {
      const std::uint64_t r = rng.next_u64();
      if (r < nodes_threshold_) continue;
      return static_cast<NodeId>(nodes_pow2_ ? (r & (nodes_u64_ - 1))
                                             : (r % nodes_u64_));
    }
  }

  // --- results ------------------------------------------------------------

  RunResult finalize() {
    RunResult r;
    r.offered_rate = params_.injection_rate;
    r.measured_packets = measured_;
    r.avg_latency =
        lat_count_ > 0 ? lat_sum_ / static_cast<double>(lat_count_) : 0.0;
    r.p99_latency = latency_quantile(0.99);
    r.cycles = measuring_ ? end_cycle_ - measure_start_ : 0;
    r.saturated = saturated_ || measured_ < params_.measure_packets;
    if (r.cycles > 0) {
      const auto window = static_cast<double>(r.cycles);
      r.accepted_rate = static_cast<double>(window_delivered_flits_) /
                        (static_cast<double>(n_) * window);
      const double offered_actual =
          static_cast<double>(window_generated_flits_) /
          (static_cast<double>(n_) * window);
      if (r.accepted_rate < 0.85 * offered_actual) r.saturated = true;

      EnergyCounters e = dyn_ - dyn_snap_;
      // Per-cycle constants the cycle core accrues in accounting_tick /
      // leakage_tick, integrated over the window analytically.
      const auto W = static_cast<std::uint64_t>(r.cycles);
      const auto R = static_cast<std::uint64_t>(n_);
      e.cycles += R * W;
      e.vc_active_cycles += R * W *
                            static_cast<std::uint64_t>(cfg_.num_vcs) *
                            static_cast<std::uint64_t>(kNumPorts);
      // Sum of router out-degrees of a k x k mesh: 4k(k-1) directed links.
      e.link_active_cycles +=
          W * static_cast<std::uint64_t>(4 * cfg_.k * (cfg_.k - 1));
      if (tdm_) {
        e.slot_table_reads += R * W;
        e.slot_entry_active_cycles +=
            R * W * static_cast<std::uint64_t>(slots_);
        e.cs_misc_active_cycles += R * W;
      }
      r.energy = e;

      const double ps = static_cast<double>(ps_flits_ - ps_snap_);
      const double cs = static_cast<double>(cs_flits_ - cs_snap_);
      const double cf = static_cast<double>(config_flits_ - cfg_snap_);
      r.cs_flit_fraction = safe_ratio(cs, ps + cs);
      r.config_flit_fraction = safe_ratio(cf, ps + cs + cf);
    }
    return r;
  }

  // --- state --------------------------------------------------------------

  const NocConfig cfg_;
  const RunParams params_;
  const Mesh mesh_;
  const int n_;
  const bool tdm_;
  const int fps_, fcs_, dur_, slots_;
  const double p_;  ///< packet probability per node per cycle

  std::vector<Route> routes_;
  std::vector<Cycle> ni_free_, eject_free_, link_free_;
  std::vector<int> reserved_on_link_;
  std::vector<Rng> inj_rng_, dst_rng_, slot_rng_;
  enum class DstMode { Table, Uniform, Hotspot };
  DstMode dst_mode_ = DstMode::Uniform;
  std::vector<NodeId> dst_table_;  ///< Table mode; -1 = self, no packet
  NodeId hotspots_[4] = {0, 0, 0, 0};
  std::uint64_t nodes_u64_ = 1;       ///< num_nodes, for the uniform draw
  std::uint64_t nodes_threshold_ = 0; ///< 2^64 mod num_nodes (rejection)
  bool nodes_pow2_ = false;
  std::vector<NiState> ni_;
  std::vector<SlotTable> tables_;
  PacketId next_owner_id_ = 1;

  double inv_log1m_p_ = 0.0;  ///< 1 / log1p(-p), hoisted for inject_gap

  Calendar<NodeId> inj_;           ///< next injection time per node
  Calendar<Delivery> deliveries_;  ///< finished transfers awaiting tallying
  Calendar<HopEvent> hops_;
  const std::vector<TraceEntry>* trace_ = nullptr;  ///< non-null: trace mode
  std::vector<int> links_flat_;        ///< per-route link ids, concatenated
  std::vector<RouteRef> route_ref_;    ///< route -> {links_flat_ offset, hops}

  // measurement
  bool armed_ = false, measuring_ = false, saturated_ = false, done_ = false;
  Cycle measure_start_ = 0, end_cycle_ = 0;
  std::uint64_t delivered_total_ = 0, window_delivered_flits_ = 0;
  std::uint64_t window_generated_flits_ = 0, measured_ = 0;
  static constexpr size_t kHistBuckets = 400;  ///< Histogram(5.0, 400) twin
  static constexpr size_t kHistWidth = 5;
  std::uint64_t lat_count_ = 0;
  double lat_sum_ = 0.0;
  Cycle lat_max_ = 0;
  std::array<std::uint64_t, kHistBuckets> hist_buckets_{};
  std::uint64_t hist_overflow_ = 0;

  // cumulative event counters, snapshotted at window start
  EnergyCounters dyn_, dyn_snap_;
  std::uint64_t ps_flits_ = 0, cs_flits_ = 0, config_flits_ = 0;
  std::uint64_t ps_snap_ = 0, cs_snap_ = 0, cfg_snap_ = 0;
};

}  // namespace

bool fast_model_supports(const NocConfig& cfg, std::string* why) {
  const auto fail = [why](const char* reason) {
    if (why) *why = reason;
    return false;
  };
  if (cfg.arch == RouterArch::HybridSdm)
    return fail("the SDM baseline has no transfer-level model");
  if (cfg.vc_power_gating)
    return fail("VC power gating needs per-cycle utilization integrals");
  if (cfg.hitchhiker_sharing || cfg.vicinity_sharing)
    return fail("path sharing (hitchhiker/vicinity) is cycle-core only");
  if (cfg.dynamic_slot_sizing)
    return fail("dynamic slot sizing is cycle-core only");
  if (cfg.link_ber > 0.0 || cfg.e2e_recovery)
    return fail("fault injection / e2e recovery are cycle-core only");
  return true;
}

RunResult run_synthetic_fast(const NocConfig& cfg, const RunParams& params) {
  cfg.validate();
  std::string why;
  HN_CHECK_MSG(fast_model_supports(cfg, &why), why.c_str());
  return FastModel(cfg, params).run();
}

RunResult run_trace_fast(const NocConfig& cfg,
                         const std::vector<TraceEntry>& entries,
                         const RunParams& params) {
  cfg.validate();
  std::string why;
  HN_CHECK_MSG(fast_model_supports(cfg, &why), why.c_str());
  return FastModel(cfg, params, entries).run();
}

}  // namespace hybridnoc
