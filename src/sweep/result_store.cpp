#include "sweep/result_store.hpp"

#include <filesystem>

#include "common/assert.hpp"
#include "common/fileio.hpp"
#include "common/state_io.hpp"
#include "power/energy_model.hpp"

namespace hybridnoc::sweep {

std::string encode_result(std::uint64_t config_hash, const RunResult& r) {
  StateWriter w;
  w.section("sweep_result");
  w.u32(kResultStoreVersion);
  w.u64(config_hash);
  w.f64(r.offered_rate);
  w.f64(r.accepted_rate);
  w.f64(r.avg_latency);
  w.f64(r.p99_latency);
  w.b(r.saturated);
  w.u64(r.measured_packets);
  w.u64(r.cycles);
  save_state(w, r.energy);
  w.f64(r.cs_flit_fraction);
  w.f64(r.config_flit_fraction);
  return w.seal();
}

std::optional<RunResult> decode_result(const std::string& bytes,
                                       std::uint64_t config_hash) {
  try {
    StateReader rd(bytes);
    rd.section("sweep_result");
    if (rd.u32() != kResultStoreVersion) return std::nullopt;
    if (rd.u64() != config_hash) return std::nullopt;
    RunResult r;
    r.offered_rate = rd.f64();
    r.accepted_rate = rd.f64();
    r.avg_latency = rd.f64();
    r.p99_latency = rd.f64();
    r.saturated = rd.b();
    r.measured_packets = rd.u64();
    r.cycles = rd.u64();
    restore_state(rd, r.energy);
    r.cs_flit_fraction = rd.f64();
    r.config_flit_fraction = rd.f64();
    rd.finish();
    return r;
  } catch (const StateError&) {
    return std::nullopt;
  }
}

ResultStore::ResultStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  HN_CHECK_MSG(!ec, "result store: cannot create directory");
}

std::string ResultStore::path_for(std::uint64_t config_hash) const {
  return dir_ + "/" + hex64(config_hash) + ".result";
}

std::optional<RunResult> ResultStore::load(std::uint64_t config_hash) const {
  std::string bytes;
  if (!read_file(path_for(config_hash), &bytes)) return std::nullopt;
  return decode_result(bytes, config_hash);
}

bool ResultStore::store(std::uint64_t config_hash, const RunResult& r,
                        std::string* error) {
  return write_file_atomic(path_for(config_hash),
                           encode_result(config_hash, r), error);
}

}  // namespace hybridnoc::sweep
