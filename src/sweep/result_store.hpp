// Durable, integrity-checked cache of sweep-point results.
//
// One file per point, named by its content address
// (<dir>/<hex16-config-hash>.result). Entries are sealed StateWriter
// archives (magic + version + digest) that additionally embed the owning
// config hash and a store format version — so a truncated, bit-flipped,
// wrong-version or mis-filed entry is detected on load and reported as a
// plain cache miss, never as bad data and never as a crash. Writes are
// atomic (write-temp-then-rename), so a reader can never observe a torn
// entry produced by a well-behaved writer; torn entries produced by crashes
// or harness-injected corruption fall out through the digest check.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "sim/run_types.hpp"

namespace hybridnoc::sweep {

/// Bump on any entry-layout change; other versions read as misses.
inline constexpr std::uint32_t kResultStoreVersion = 1;

/// Entry serialization, exposed for the cache-poisoning tests.
std::string encode_result(std::uint64_t config_hash, const RunResult& r);
/// nullopt on any corruption, version skew, or config-hash mismatch.
std::optional<RunResult> decode_result(const std::string& bytes,
                                       std::uint64_t config_hash);

class ResultStore {
 public:
  /// Creates `dir` (and parents) if needed; HN_CHECKs on failure — callers
  /// validate the directory up front.
  explicit ResultStore(std::string dir);

  std::string path_for(std::uint64_t config_hash) const;

  /// Cache lookup. Missing, unreadable, corrupt or mismatched entries all
  /// return nullopt (the death-free "recompute" path).
  std::optional<RunResult> load(std::uint64_t config_hash) const;

  /// Atomic durable write. Returns false and fills *error on I/O failure.
  bool store(std::uint64_t config_hash, const RunResult& r,
             std::string* error);

 private:
  std::string dir_;
};

}  // namespace hybridnoc::sweep
