#include "sweep/journal.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "common/fileio.hpp"

namespace hybridnoc::sweep {

namespace {

std::string checksummed_line(const std::string& payload) {
  return hex64(fnv1a64(payload)) + " " + payload + "\n";
}

/// Splits a journal line into its verified payload; false on any damage.
bool verify_line(const std::string& line, std::string* payload) {
  if (line.size() < 18 || line[16] != ' ') return false;
  std::uint64_t sum;
  if (!parse_hex64(line.substr(0, 16), &sum)) return false;
  const std::string body = line.substr(17);
  if (fnv1a64(body) != sum) return false;
  *payload = body;
  return true;
}

}  // namespace

Journal::Replay Journal::replay(const std::string& path,
                                std::uint64_t spec_digest) {
  Replay rep;
  std::string text;
  if (!read_file(path, &text)) return rep;
  rep.exists = true;

  std::istringstream in(text);
  std::string line;
  bool first = true;
  // Track whether the file ends in '\n': a kill mid-append leaves a
  // partial final line that getline still yields.
  while (std::getline(in, line)) {
    std::string payload;
    if (!verify_line(line, &payload)) {
      // Damaged line: everything from here on is untrusted. Count the
      // remainder as torn and stop (under-reading is safe; see header).
      ++rep.torn_lines;
      while (std::getline(in, line)) ++rep.torn_lines;
      break;
    }
    std::istringstream ps(payload);
    std::string verb, hash_hex;
    ps >> verb;
    if (first) {
      first = false;
      std::uint64_t digest = 0;
      ps >> hash_hex;
      if (verb != "spec" || !parse_hex64(hash_hex, &digest) ||
          digest != spec_digest) {
        return rep;  // spec_match stays false; caller refuses to resume
      }
      rep.spec_match = true;
      continue;
    }
    std::uint64_t hash = 0;
    ps >> hash_hex;
    if (!parse_hex64(hash_hex, &hash)) continue;
    if (verb == "done") {
      rep.done.insert(hash);
    } else if (verb == "fail") {
      int attempt = 0;
      ps >> attempt;
      if (attempt > rep.attempts[hash]) rep.attempts[hash] = attempt;
    } else if (verb == "quarantine") {
      rep.quarantined.insert(hash);
    }
    // Unknown verbs are skipped: forward compatibility.
  }
  return rep;
}

Journal::~Journal() {
  if (f_ != nullptr) std::fclose(f_);
}

bool Journal::open(const std::string& path, std::uint64_t spec_digest,
                   bool truncate, std::string* error) {
  bool need_header = truncate;
  if (!truncate) {
    std::string existing;
    need_header = !read_file(path, &existing) || existing.empty();
  }
  f_ = std::fopen(path.c_str(), truncate ? "wb" : "ab");
  if (f_ == nullptr) {
    if (error) *error = "cannot open journal '" + path + "': " +
                        std::strerror(errno);
    return false;
  }
  if (need_header) append("spec " + hex64(spec_digest));
  return true;
}

void Journal::record_done(std::uint64_t hash, int attempts) {
  append("done " + hex64(hash) + " " + std::to_string(attempts));
}

void Journal::record_fail(std::uint64_t hash, int attempt,
                          const std::string& why) {
  append("fail " + hex64(hash) + " " + std::to_string(attempt) + " " + why);
}

void Journal::record_quarantine(std::uint64_t hash, int attempts) {
  append("quarantine " + hex64(hash) + " " + std::to_string(attempts));
}

void Journal::append(const std::string& payload) {
  if (f_ == nullptr) return;
  const std::string line = checksummed_line(payload);
  std::fwrite(line.data(), 1, line.size(), f_);
  std::fflush(f_);
  // Durability: a kill immediately after a journaled decision must not
  // un-make it on resume.
  ::fsync(fileno(f_));
}

}  // namespace hybridnoc::sweep
