// Canonical serialization of a sweep point's identity.
//
// The result store and the warmup-checkpoint cache are content-addressed:
// a sweep point is *named* by the digest of every field that can influence
// its simulated behavior (NocConfig + RunParams), serialized in a fixed,
// versioned binary layout. Two spec files that expand to the same point
// share one cache entry; changing any behavioral knob — or bumping
// kCanonicalVersion after a simulator-behavior change — changes the name
// and naturally invalidates stale entries.
#pragma once

#include <cstdint>
#include <string>

#include "common/config.hpp"
#include "sim/run_types.hpp"

namespace hybridnoc::sweep {

/// Bump on any layout change here, and on simulator changes that alter
/// results for unchanged configs (cached results would otherwise be
/// silently wrong).
inline constexpr std::uint32_t kCanonicalVersion = 1;

/// Fixed-layout little-endian serialization of every behavioral field of
/// (cfg, params), prefixed with kCanonicalVersion.
std::string canonical_bytes(const NocConfig& cfg, const RunParams& params);

/// FNV-1a-64 over canonical_bytes: the sweep point's content address.
std::uint64_t config_hash(const NocConfig& cfg, const RunParams& params);

/// Identity of the warmup phase alone: cfg plus the warmup-relevant params
/// (pattern, rate, warmup windows, seed) — the key under which sweep points
/// share one warmup checkpoint. Points differing only in measure-phase
/// params (measure_packets, max_cycles, latency_cap) share a key.
std::uint64_t warmup_hash(const NocConfig& cfg, const RunParams& params);

}  // namespace hybridnoc::sweep
