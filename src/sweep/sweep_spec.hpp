// Declarative sweep specification.
//
// A spec is a small line-oriented text file expanded into the cartesian
// product of its axes:
//
//   # comment                        (blank lines and #-comments ignored)
//   name = load_sweep                (optional; defaults to "sweep")
//   set preset = hybrid_tdm_vc4      (fixed assignment)
//   set k = 4
//   sweep rate = 0.02, 0.05, 0.08    (axis: one point per value)
//   sweep pattern = uniform, tornado
//
// Assignments apply in file order on top of the defaults (so `set preset`
// first, field overrides after it); axes expand with the last `sweep` line
// varying fastest. Every parse or validation problem is reported as a
// structured SpecError with a line number — specs are external input and
// must never abort the process.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "sim/run_types.hpp"

namespace hybridnoc::sweep {

struct SpecError {
  int line = 0;  ///< 1-based line in the spec text; 0 = not line-specific
  std::string message;
  std::string to_string() const;
};

/// One expanded sweep point: a fully resolved configuration, its
/// content-address, and a human label built from its axis values.
struct SweepPoint {
  NocConfig cfg;
  RunParams params;
  std::string label;       ///< "rate=0.05,pattern=tornado" (axis keys only)
  std::uint64_t hash = 0;  ///< config_hash(cfg, params)
};

struct SweepSpec {
  std::string name = "sweep";
  std::vector<std::string> axis_keys;  ///< file order
  std::vector<SweepPoint> points;      ///< deterministic expansion order
  /// FNV-1a over the raw spec text: the journal's resume guard — a sweep
  /// directory can only be resumed with the byte-identical spec.
  std::uint64_t spec_digest = 0;
};

/// The keys accepted by `set`/`sweep`, for error messages and docs.
std::string known_spec_keys();

/// Parse and expand. Returns false and fills *err on any problem; *out is
/// only valid on success.
bool parse_sweep_spec(const std::string& text, SweepSpec* out, SpecError* err);

/// load + parse_sweep_spec; unreadable file reported through *err.
bool load_sweep_spec(const std::string& path, SweepSpec* out, SpecError* err);

}  // namespace hybridnoc::sweep
