// Crash-safe sweep orchestrator.
//
// run_sweep expands nothing itself — it takes an already-expanded SweepSpec
// and drives every point to one of three terminal states:
//
//   * served from the integrity-checked result cache (corrupt entries are
//     detected by digest and silently recomputed),
//   * computed on the persistent worker pool — with per-point wall-clock
//     timeouts, capped-exponential-backoff retries and read-back-verified
//     atomic result writes — and journaled `done`, or
//   * quarantined after the retry budget, journaled so the decision
//     survives restarts.
//
// The sweep itself never aborts for a per-point failure: whatever could not
// be computed is accounted for in the DegradationReport. A `kill -9` at any
// moment is recoverable: rerunning the same spec against the same output
// directory replays the journal (torn tail tolerated), reuses every stored
// result, keeps quarantine decisions sticky, and produces a byte-identical
// aggregate.tsv.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/run_types.hpp"
#include "sweep/sweep_spec.hpp"

namespace hybridnoc::sweep {

enum class FaultAction : std::uint8_t { None, Throw, Hang, TornWrite };

/// Deterministic orchestrator-fault harness (tests only): the action for a
/// given attempt is a pure function of (seed, config hash, attempt), so
/// every recovery path — worker exceptions, hung workers, torn result
/// writes — replays identically under a fixed seed. Probabilities are
/// cumulative thresholds into one uniform hash draw.
struct SweepFaultPlan {
  bool enabled = false;
  std::uint64_t seed = 1;
  double throw_prob = 0.0;
  double hang_prob = 0.0;        ///< requires a timeout to recover from
  double torn_write_prob = 0.0;  ///< result file corrupted after the write
  FaultAction action(std::uint64_t config_hash, int attempt) const;
};

struct SweepOptions {
  std::string out_dir;  ///< holds results/, checkpoints/, journal, aggregate
  int workers = 4;
  /// Attempts per point before quarantine (>= 1).
  int max_attempts = 3;
  /// Per-point wall-clock budget; 0 disables timeouts. A timed-out worker
  /// is abandoned and replaced (see worker_pool.hpp).
  std::uint64_t timeout_ms = 0;
  /// Retry backoff: min(cap, base << (attempt-1)) plus deterministic
  /// jitter keyed by (point hash, attempt).
  std::uint64_t backoff_base_ms = 10;
  std::uint64_t backoff_cap_ms = 2000;
  /// Share one drained warmup checkpoint across the sweep points that have
  /// identical warmup identity (see warmup_hash); persisted under
  /// checkpoints/ so later runs skip the warmup too. Applies to eligible
  /// points only (cycle fidelity, mesh arch, fault-free, serial).
  bool share_warmup = true;
  /// Replay an existing journal (the default). false truncates the journal
  /// and re-decides everything; content-addressed results remain valid and
  /// are still reused.
  bool resume = true;
  SweepFaultPlan faults;
};

struct ConfigOutcome {
  std::string label;
  std::uint64_t hash = 0;
  RunResult result;        ///< valid when ok
  bool ok = false;
  bool from_cache = false;
  bool quarantined = false;
  int attempts = 0;  ///< failed attempts charged against this point
  std::string last_error;
};

/// What the sweep could not deliver, and what the recovery machinery did.
struct DegradationReport {
  int points = 0;
  int completed = 0;
  int cache_hits = 0;
  int quarantined = 0;
  int retries = 0;   ///< failed attempts that were retried
  int timeouts = 0;  ///< attempts abandoned on the wall clock
  int corrupt_results_recomputed = 0;
  int corrupt_checkpoints_recomputed = 0;
  int workers_abandoned = 0;
  int torn_journal_lines = 0;
  bool resumed = false;
  bool complete() const { return quarantined == 0; }
  std::string to_string() const;
};

struct SweepReport {
  std::vector<ConfigOutcome> outcomes;  ///< spec order
  DegradationReport degradation;
  std::string aggregate_path;  ///< the aggregate.tsv that was written
};

/// Run (or resume) `spec` into opt.out_dir. Per-point failures never throw
/// — they quarantine. Throws std::runtime_error only for environment-level
/// problems: an uncreatable output directory, or a journal written by a
/// different spec.
SweepReport run_sweep(const SweepSpec& spec, const SweepOptions& opt);

/// Deterministic aggregate serialization (no timestamps, %.17g doubles):
/// byte-identical across kill/resume for the same spec + results. Exposed
/// for the bit-identity tests.
std::string format_aggregate(const SweepSpec& spec,
                             const std::vector<ConfigOutcome>& outcomes);

}  // namespace hybridnoc::sweep
