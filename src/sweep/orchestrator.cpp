#include "sweep/orchestrator.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/fileio.hpp"
#include "common/state_io.hpp"
#include "sim/driver.hpp"
#include "sweep/canonical.hpp"
#include "sweep/journal.hpp"
#include "sweep/result_store.hpp"
#include "sweep/worker_pool.hpp"

namespace hybridnoc::sweep {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t mix(std::uint64_t seed, std::uint64_t hash, int attempt) {
  StateWriter w;
  w.u64(seed);
  w.u64(hash);
  w.i32(attempt);
  return fnv1a64(w.seal());
}

/// Eligible for the warmup-checkpoint methodology: cycle core, mesh-backed
/// architecture, fault-free, serial engine (Network::save_state's gates).
bool snapshot_eligible(const NocConfig& cfg, const RunParams& params) {
  return params.fidelity == Fidelity::Cycle &&
         cfg.arch != RouterArch::HybridSdm && cfg.link_ber == 0.0 &&
         cfg.tick_threads == 1;
}

/// Cross-worker cache of drained warmup checkpoints, backed by
/// checkpoints/<warmup-hash>.ckpt. The first worker to need a key computes
/// (or disk-loads) it; concurrent requesters block on the entry.
class WarmupCache {
 public:
  explicit WarmupCache(std::string dir) : dir_(std::move(dir)) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
  }

  std::string path_for(std::uint64_t key) const {
    return dir_ + "/" + hex64(key) + ".ckpt";
  }

  /// The sealed checkpoint for `key`, computing and persisting it on first
  /// use. Empty string when the warmup cannot be checkpointed (drain never
  /// converged — deeply saturated point).
  std::string get(std::uint64_t key, const NocConfig& cfg,
                  const RunParams& params) {
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      Entry& e = map_[key];
      if (e.ready) return e.sealed;
      if (e.computing) {
        cv_.wait(lk);
        continue;
      }
      e.computing = true;
      break;
    }
    lk.unlock();

    std::string sealed;
    if (!read_file(path_for(key), &sealed)) {
      sealed = compute_and_persist(key, cfg, params);
    }

    lk.lock();
    Entry& e = map_[key];
    e.sealed = sealed;
    e.ready = true;
    e.computing = false;
    cv_.notify_all();
    return sealed;
  }

  /// Drop a corrupt entry (memory + disk) and recompute it. Called when a
  /// restore from the cached bytes threw StateError.
  std::string recompute(std::uint64_t key, const NocConfig& cfg,
                        const RunParams& params) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      map_.erase(key);
      std::error_code ec;
      std::filesystem::remove(path_for(key), ec);
    }
    return get(key, cfg, params);
  }

 private:
  struct Entry {
    bool ready = false;
    bool computing = false;
    std::string sealed;
  };

  std::string compute_and_persist(std::uint64_t key, const NocConfig& cfg,
                                  const RunParams& params) {
    const WarmupSnapshot snap = warmup_snapshot(cfg, params);
    if (!snap.ok) return std::string();
    write_file_atomic(path_for(key), snap.sealed);  // best effort: cache
    return snap.sealed;
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::uint64_t, Entry> map_;
  std::string dir_;
};

/// Simulate a torn write: truncate the (atomically written) result file to
/// half its size, bypassing the atomic path on purpose.
void tear_file(const std::string& path) {
  std::string bytes;
  if (!read_file(path, &bytes)) return;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(),
            static_cast<std::streamsize>(bytes.size() / 2));
}

struct SharedCounters {
  std::atomic<int> corrupt_checkpoints{0};
};

/// One attempt at one sweep point, run on a pool worker. Computes the
/// result, writes it to the store atomically, and verifies the write by
/// reading it back — so a torn or unwritable result surfaces here as a
/// failed attempt instead of as a poisoned cache entry.
void compute_attempt(const SweepPoint& pt, int attempt,
                     const SweepOptions& opt, ResultStore& store,
                     WarmupCache& warmups, SharedCounters& counters,
                     const CancelToken& token) {
  const FaultAction action =
      opt.faults.enabled ? opt.faults.action(pt.hash, attempt)
                         : FaultAction::None;
  if (action == FaultAction::Throw) {
    throw std::runtime_error("injected worker fault");
  }
  if (action == FaultAction::Hang) {
    // An injected hang is cooperative: it parks until the orchestrator
    // times the attempt out and cancels the token.
    while (!token.cancelled()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    throw std::runtime_error("injected hang cancelled");
  }

  RunResult result;
  if (opt.share_warmup && snapshot_eligible(pt.cfg, pt.params)) {
    const std::uint64_t key = warmup_hash(pt.cfg, pt.params);
    std::string sealed = warmups.get(key, pt.cfg, pt.params);
    bool measured = false;
    if (!sealed.empty()) {
      try {
        result = run_synthetic_from_snapshot(pt.cfg, pt.params, sealed);
        measured = true;
      } catch (const StateError&) {
        // Poisoned checkpoint file: recompute it once, then fall through
        // to the non-checkpoint path if even the fresh one fails.
        counters.corrupt_checkpoints.fetch_add(1,
                                               std::memory_order_relaxed);
        sealed = warmups.recompute(key, pt.cfg, pt.params);
        if (!sealed.empty()) {
          result = run_synthetic_from_snapshot(pt.cfg, pt.params, sealed);
          measured = true;
        }
      }
    }
    // No checkpoint (undrainable warmup): same methodology, in place.
    if (!measured) result = run_synthetic_drained(pt.cfg, pt.params);
  } else {
    result = run_synthetic(pt.cfg, pt.params);
  }

  std::string err;
  if (!store.store(pt.hash, result, &err)) {
    throw std::runtime_error("result write failed: " + err);
  }
  if (action == FaultAction::TornWrite) tear_file(store.path_for(pt.hash));
  if (!store.load(pt.hash)) {
    throw std::runtime_error("result read-back verification failed");
  }
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

FaultAction SweepFaultPlan::action(std::uint64_t config_hash,
                                   int attempt) const {
  if (!enabled) return FaultAction::None;
  const double u =
      static_cast<double>(mix(seed, config_hash, attempt) >> 11) *
      (1.0 / 9007199254740992.0);  // 53-bit mantissa in [0, 1)
  double edge = throw_prob;
  if (u < edge) return FaultAction::Throw;
  edge += hang_prob;
  if (u < edge) return FaultAction::Hang;
  edge += torn_write_prob;
  if (u < edge) return FaultAction::TornWrite;
  return FaultAction::None;
}

std::string DegradationReport::to_string() const {
  std::ostringstream os;
  os << "sweep degradation report: " << completed << "/" << points
     << " points completed (" << cache_hits << " from cache), "
     << quarantined << " quarantined\n"
     << "  retries=" << retries << " timeouts=" << timeouts
     << " workers_abandoned=" << workers_abandoned << "\n"
     << "  corrupt_results_recomputed=" << corrupt_results_recomputed
     << " corrupt_checkpoints_recomputed=" << corrupt_checkpoints_recomputed
     << " torn_journal_lines=" << torn_journal_lines
     << (resumed ? " (resumed)" : "");
  return os.str();
}

std::string format_aggregate(const SweepSpec& spec,
                             const std::vector<ConfigOutcome>& outcomes) {
  std::ostringstream os;
  os << "# sweep " << spec.name << " spec " << hex64(spec.spec_digest)
     << "\n";
  os << "label\thash\tstatus\toffered_rate\taccepted_rate\tavg_latency\t"
        "p99_latency\tsaturated\tmeasured_packets\tcycles\tenergy_pj\t"
        "cs_flit_fraction\tconfig_flit_fraction\n";
  for (const ConfigOutcome& o : outcomes) {
    os << o.label << "\t" << hex64(o.hash) << "\t";
    if (!o.ok) {
      os << "quarantined\t-\t-\t-\t-\t-\t-\t-\t-\t-\t-\n";
      continue;
    }
    const RunResult& r = o.result;
    os << "ok\t" << format_double(r.offered_rate) << "\t"
       << format_double(r.accepted_rate) << "\t"
       << format_double(r.avg_latency) << "\t"
       << format_double(r.p99_latency) << "\t" << (r.saturated ? 1 : 0)
       << "\t" << r.measured_packets << "\t" << r.cycles << "\t"
       << format_double(r.total_energy_pj()) << "\t"
       << format_double(r.cs_flit_fraction) << "\t"
       << format_double(r.config_flit_fraction) << "\n";
  }
  return os.str();
}

SweepReport run_sweep(const SweepSpec& spec, const SweepOptions& opt) {
  std::error_code ec;
  std::filesystem::create_directories(opt.out_dir, ec);
  if (ec) {
    throw std::runtime_error("sweep: cannot create output directory '" +
                             opt.out_dir + "'");
  }

  SweepReport report;
  DegradationReport& deg = report.degradation;
  deg.points = static_cast<int>(spec.points.size());

  const std::string journal_path = opt.out_dir + "/journal";
  Journal::Replay rep;
  if (opt.resume) {
    rep = Journal::replay(journal_path, spec.spec_digest);
    if (rep.exists && !rep.spec_match) {
      throw std::runtime_error(
          "sweep: journal in '" + opt.out_dir +
          "' belongs to a different spec; use a fresh directory or "
          "disable resume");
    }
  }
  deg.resumed = rep.exists && rep.spec_match;
  deg.torn_journal_lines = rep.torn_lines;

  Journal journal;
  std::string jerr;
  if (!journal.open(journal_path, spec.spec_digest, /*truncate=*/!opt.resume,
                    &jerr)) {
    throw std::runtime_error("sweep: " + jerr);
  }

  ResultStore store(opt.out_dir + "/results");
  WarmupCache warmups(opt.out_dir + "/checkpoints");
  SharedCounters counters;

  report.outcomes.resize(spec.points.size());
  for (std::size_t i = 0; i < spec.points.size(); ++i) {
    report.outcomes[i].label = spec.points[i].label;
    report.outcomes[i].hash = spec.points[i].hash;
  }

  // Phase 1: resolve what still needs computing. Cache lookups verify the
  // entry digest; a journaled-done point whose result file is corrupt is
  // simply recomputed.
  struct Pending {
    std::size_t idx;
    int attempt;  ///< failed attempts so far (resumes the journal's count)
    Clock::time_point eligible;
  };
  std::vector<Pending> pending;
  for (std::size_t i = 0; i < spec.points.size(); ++i) {
    const SweepPoint& pt = spec.points[i];
    ConfigOutcome& out = report.outcomes[i];
    if (rep.quarantined.count(pt.hash) != 0) {
      out.quarantined = true;
      out.attempts = opt.max_attempts;
      out.last_error = "quarantined by a previous run";
      ++deg.quarantined;
      continue;
    }
    if (auto cached = store.load(pt.hash)) {
      out.ok = true;
      out.from_cache = true;
      out.result = *cached;
      ++deg.cache_hits;
      ++deg.completed;
      continue;
    }
    if (rep.done.count(pt.hash) != 0) ++deg.corrupt_results_recomputed;
    int prior = 0;
    if (const auto it = rep.attempts.find(pt.hash);
        it != rep.attempts.end()) {
      prior = it->second;
    }
    pending.push_back({i, prior, Clock::now()});
  }

  // Phase 2: fan the misses across the pool with timeout / retry /
  // quarantine handling.
  if (!pending.empty()) {
    WorkerPool pool(opt.workers);

    struct Flight {
      std::size_t idx;
      int attempt;  ///< 1-based attempt number being run
      Clock::time_point deadline;
      bool has_deadline;
    };
    std::map<std::uint64_t, Flight> in_flight;
    std::set<std::uint64_t> timed_out;  ///< already charged; drop completion

    const auto fail_attempt = [&](std::size_t idx, int attempt,
                                  const std::string& why) {
      const SweepPoint& pt = spec.points[idx];
      ConfigOutcome& out = report.outcomes[idx];
      out.attempts = attempt;
      out.last_error = why;
      journal.record_fail(pt.hash, attempt, why);
      if (attempt >= opt.max_attempts) {
        out.quarantined = true;
        ++deg.quarantined;
        journal.record_quarantine(pt.hash, attempt);
        return;
      }
      ++deg.retries;
      // Capped exponential backoff with deterministic jitter.
      const int shift = attempt - 1;
      std::uint64_t wait = opt.backoff_base_ms;
      if (shift < 63) {
        wait = opt.backoff_base_ms << (shift < 20 ? shift : 20);
      }
      if (wait > opt.backoff_cap_ms) wait = opt.backoff_cap_ms;
      wait += mix(pt.hash, 0xb0ff, attempt) % (opt.backoff_base_ms + 1);
      pending.push_back(
          {idx, attempt, Clock::now() + std::chrono::milliseconds(wait)});
    };

    while (!pending.empty() || !in_flight.empty()) {
      // Launch every eligible pending attempt while capacity remains.
      const Clock::time_point now = Clock::now();
      for (std::size_t p = 0; p < pending.size();) {
        if (static_cast<int>(in_flight.size()) >= opt.workers) break;
        if (pending[p].eligible > now) {
          ++p;
          continue;
        }
        const Pending job = pending[p];
        pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(p));
        const SweepPoint& pt = spec.points[job.idx];
        const int attempt = job.attempt + 1;
        const std::uint64_t id = pool.submit(
            [&, pt, attempt](const CancelToken& token) {
              compute_attempt(pt, attempt, opt, store, warmups, counters,
                              token);
            });
        Flight fl;
        fl.idx = job.idx;
        fl.attempt = attempt;
        fl.has_deadline = opt.timeout_ms > 0;
        fl.deadline =
            now + std::chrono::milliseconds(
                      opt.timeout_ms > 0 ? opt.timeout_ms : 3600000);
        in_flight.emplace(id, fl);
      }

      // Next wake-up: earliest flight deadline or pending backoff expiry.
      Clock::time_point wake = Clock::now() + std::chrono::seconds(3600);
      for (const auto& [id, fl] : in_flight) {
        if (fl.has_deadline && fl.deadline < wake) wake = fl.deadline;
      }
      for (const Pending& p : pending) {
        if (p.eligible < wake) wake = p.eligible;
      }

      const auto done = pool.wait_any(wake);
      if (done) {
        const auto it = in_flight.find(done->task_id);
        if (timed_out.erase(done->task_id) > 0 || done->abandoned) {
          // Attempt already charged when its timeout fired.
        } else if (it != in_flight.end()) {
          const std::size_t idx = it->second.idx;
          const int attempt = it->second.attempt;
          in_flight.erase(it);
          const SweepPoint& pt = spec.points[idx];
          ConfigOutcome& out = report.outcomes[idx];
          if (done->ok) {
            if (auto stored = store.load(pt.hash)) {
              out.ok = true;
              out.result = *stored;
              out.attempts = attempt;
              ++deg.completed;
              journal.record_done(pt.hash, attempt);
            } else {
              fail_attempt(idx, attempt,
                           "stored result failed verification");
            }
          } else {
            fail_attempt(idx, attempt, done->error);
          }
        }
        continue;
      }

      // Timeout wake-up: charge every expired flight and abandon it.
      const Clock::time_point t = Clock::now();
      for (auto it = in_flight.begin(); it != in_flight.end();) {
        if (it->second.has_deadline && it->second.deadline <= t) {
          ++deg.timeouts;
          timed_out.insert(it->first);
          pool.abandon(it->first);
          fail_attempt(it->second.idx, it->second.attempt,
                       "wall-clock timeout");
          it = in_flight.erase(it);
        } else {
          ++it;
        }
      }
    }

    deg.workers_abandoned = pool.workers_abandoned();
  }

  deg.corrupt_checkpoints_recomputed =
      counters.corrupt_checkpoints.load(std::memory_order_relaxed);

  // Phase 3: the aggregate, in spec order, written atomically. Identical
  // bytes for identical spec + results regardless of kill/resume history.
  report.aggregate_path = opt.out_dir + "/aggregate.tsv";
  const std::string aggregate = format_aggregate(spec, report.outcomes);
  std::string werr;
  if (!write_file_atomic(report.aggregate_path, aggregate, &werr)) {
    throw std::runtime_error("sweep: cannot write aggregate: " + werr);
  }
  return report;
}

}  // namespace hybridnoc::sweep
