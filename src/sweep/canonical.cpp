#include "sweep/canonical.hpp"

#include "common/fileio.hpp"
#include "common/state_io.hpp"

namespace hybridnoc::sweep {

namespace {

// Every NocConfig field, declaration order. A new config knob MUST be added
// here (and kCanonicalVersion bumped): a knob missing from the canonical
// form would let two behaviorally different points collide on one cache
// entry.
void put_config(StateWriter& w, const NocConfig& cfg) {
  w.i32(cfg.k);
  w.i32(cfg.num_vcs);
  w.i32(cfg.vc_buffer_depth);
  w.i32(cfg.channel_bytes);
  w.u8(static_cast<std::uint8_t>(cfg.arch));
  w.i32(cfg.ps_data_flits);
  w.i32(cfg.cs_data_flits);
  w.i32(cfg.config_flits);
  w.i32(cfg.ctrl_packet_flits);
  w.i32(cfg.slot_table_size);
  w.b(cfg.time_slot_stealing);
  w.f64(cfg.reservation_threshold);
  w.b(cfg.dynamic_slot_sizing);
  w.i32(cfg.initial_active_slots);
  w.i32(cfg.resize_failure_threshold);
  w.i32(cfg.path_freq_threshold);
  w.i32(cfg.policy_epoch_cycles);
  w.i32(cfg.max_setup_retries);
  w.i32(cfg.max_windows_per_pair);
  w.u64(cfg.path_idle_timeout);
  w.u64(cfg.pending_setup_timeout_cycles);
  w.u64(cfg.reservation_lease_cycles);
  w.f64(cfg.cs_latency_advantage);
  w.f64(cfg.congestion_gain);
  w.b(cfg.hitchhiker_sharing);
  w.b(cfg.vicinity_sharing);
  w.i32(cfg.dlt_entries);
  w.b(cfg.vc_power_gating);
  w.u8(static_cast<std::uint8_t>(cfg.vc_gate_metric));
  w.f64(cfg.vc_threshold_high);
  w.f64(cfg.vc_threshold_low);
  w.f64(cfg.vc_latency_high);
  w.f64(cfg.vc_latency_low);
  w.i32(cfg.vc_gate_epoch_cycles);
  w.i32(cfg.min_active_vcs);
  w.i32(cfg.sdm_planes);
  w.f64(cfg.link_ber);
  w.u64(cfg.fault_seed);
  w.b(cfg.e2e_recovery);
  w.u64(cfg.retx_timeout_cycles);
  w.u64(cfg.retx_backoff_cap_cycles);
  w.i32(cfg.max_retx_attempts);
  w.i32(cfg.cs_fail_threshold);
  w.u64(cfg.watchdog_stall_cycles);
  w.u64(cfg.setup_backoff_base_cycles);
  w.u64(cfg.setup_backoff_cap_cycles);
  // active_set_scheduler and tick_threads are proven bit-identical to the
  // legacy engine (scheduler/thread equivalence suites), so they are
  // deliberately NOT part of a point's identity: a cache filled on one
  // engine is valid on another.
  w.u64(cfg.seed);
}

void put_warmup_params(StateWriter& w, const RunParams& p) {
  w.u8(static_cast<std::uint8_t>(p.pattern));
  w.f64(p.injection_rate);
  w.u64(p.warmup_packets);
  w.u64(p.warmup_min_cycles);
  w.u64(p.seed);
}

void put_params(StateWriter& w, const RunParams& p) {
  put_warmup_params(w, p);
  w.u64(p.measure_packets);
  w.u64(p.max_cycles);
  w.f64(p.latency_cap);
  w.u8(static_cast<std::uint8_t>(p.fidelity));
}

}  // namespace

std::string canonical_bytes(const NocConfig& cfg, const RunParams& params) {
  StateWriter w;
  w.u32(kCanonicalVersion);
  put_config(w, cfg);
  put_params(w, params);
  return w.seal();
}

std::uint64_t config_hash(const NocConfig& cfg, const RunParams& params) {
  return fnv1a64(canonical_bytes(cfg, params));
}

std::uint64_t warmup_hash(const NocConfig& cfg, const RunParams& params) {
  StateWriter w;
  w.u32(kCanonicalVersion);
  put_config(w, cfg);
  put_warmup_params(w, params);
  return fnv1a64(w.seal());
}

}  // namespace hybridnoc::sweep
