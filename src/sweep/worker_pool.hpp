// Persistent in-process worker pool with cooperative cancellation and
// worker abandonment.
//
// The sweep orchestrator submits one job per (sweep point, attempt) and
// waits for completions. A job that exceeds its wall-clock budget is
// *abandoned*: its cancel token is set, the worker running it is retired
// (it exits as soon as the job returns — injected hangs poll the token and
// return promptly) and a replacement worker is spawned so pool capacity is
// unaffected. Abandoned jobs that do eventually complete surface with
// `abandoned = true` so their results are discarded, not double-counted.
//
// Worker exceptions are captured and returned as failed completions; a
// throwing job never takes the pool down.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace hybridnoc::sweep {

/// Shared cancellation flag. Jobs with unbounded waits must poll
/// cancelled() and return; the simulator itself does not poll (a genuine
/// runaway simulation delays pool teardown until it finishes).
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }
  void cancel() const { flag_->store(true, std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

struct TaskDone {
  std::uint64_t task_id = 0;
  bool ok = false;         ///< job returned without throwing
  bool abandoned = false;  ///< completion of an abandoned job: discard
  std::string error;       ///< exception message when !ok
};

class WorkerPool {
 public:
  using Job = std::function<void(const CancelToken&)>;

  explicit WorkerPool(int num_workers);
  /// Cancels everything and joins every worker, retired ones included.
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueue a job; returns its task id.
  std::uint64_t submit(Job job);

  /// Block until any completion is available or `deadline` passes
  /// (nullopt). Completions are delivered in finish order.
  std::optional<TaskDone> wait_any(
      std::chrono::steady_clock::time_point deadline);

  /// Abandon `task_id`: cancel its token; if running, retire the worker and
  /// spawn a replacement; if still queued, drop it (its completion arrives
  /// as ok=false). Completed/unknown ids are a no-op.
  void abandon(std::uint64_t task_id);

  int workers_abandoned() const;
  int workers_spawned() const;

 private:
  struct Worker {
    std::thread thread;
    bool retired = false;  ///< exit after the current job
  };
  struct Task {
    std::uint64_t id = 0;
    Job job;
    CancelToken token;
  };

  void spawn_worker_locked();
  void worker_main(Worker* self);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers wait for tasks
  std::condition_variable done_cv_;  ///< wait_any waits for completions
  std::deque<Task> queue_;
  std::deque<TaskDone> completions_;
  /// Live tokens for queued + running tasks, so abandon() can cancel.
  std::map<std::uint64_t, CancelToken> tokens_;
  /// task id -> worker currently running it.
  std::map<std::uint64_t, Worker*> running_;
  std::vector<std::unique_ptr<Worker>> workers_;  ///< incl. retired
  std::uint64_t next_task_id_ = 1;
  int abandoned_count_ = 0;
  bool stop_ = false;
};

}  // namespace hybridnoc::sweep
