#include "sweep/sweep_spec.hpp"

#include <cerrno>
#include <cstdlib>
#include <map>
#include <sstream>

#include "common/assert.hpp"
#include "common/fileio.hpp"
#include "sweep/canonical.hpp"

namespace hybridnoc::sweep {

namespace {

constexpr std::size_t kMaxPoints = 100000;

std::string trim(const std::string& s) {
  std::size_t a = s.find_first_not_of(" \t\r");
  if (a == std::string::npos) return "";
  std::size_t b = s.find_last_not_of(" \t\r");
  return s.substr(a, b - a + 1);
}

bool parse_double(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool parse_i64(const std::string& s, long long* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool parse_bool(const std::string& s, bool* out) {
  if (s == "true" || s == "1" || s == "on") {
    *out = true;
    return true;
  }
  if (s == "false" || s == "0" || s == "off") {
    *out = false;
    return true;
  }
  return false;
}

struct Point {
  NocConfig cfg;
  RunParams params;
};

/// Applies one "key = value"; returns false with *msg on a bad value.
using Setter = bool (*)(Point&, const std::string&, std::string* msg);

// Resets cfg wholesale, so `set preset` belongs before field overrides (the
// file-order application rule in the header makes this predictable).
bool set_preset(Point& p, const std::string& v, std::string* msg) {
  if (v == "packet_vc4") {
    p.cfg = NocConfig::packet_vc4();
  } else if (v == "hybrid_tdm_vc4") {
    p.cfg = NocConfig::hybrid_tdm_vc4();
  } else if (v == "hybrid_tdm_vct") {
    p.cfg = NocConfig::hybrid_tdm_vct();
  } else if (v == "hybrid_sdm_vc4") {
    p.cfg = NocConfig::hybrid_sdm_vc4();
  } else if (v == "hybrid_tdm_hop_vc4") {
    p.cfg = NocConfig::hybrid_tdm_hop_vc4();
  } else if (v == "hybrid_tdm_hop_vct") {
    p.cfg = NocConfig::hybrid_tdm_hop_vct();
  } else {
    *msg = "unknown preset '" + v +
           "' (packet_vc4, hybrid_tdm_vc4, hybrid_tdm_vct, hybrid_sdm_vc4, "
           "hybrid_tdm_hop_vc4, hybrid_tdm_hop_vct)";
    return false;
  }
  return true;
}

bool set_pattern(Point& p, const std::string& v, std::string* msg) {
  if (v == "uniform") {
    p.params.pattern = TrafficPattern::UniformRandom;
  } else if (v == "tornado") {
    p.params.pattern = TrafficPattern::Tornado;
  } else if (v == "transpose") {
    p.params.pattern = TrafficPattern::Transpose;
  } else if (v == "bitcomp") {
    p.params.pattern = TrafficPattern::BitComplement;
  } else if (v == "shuffle") {
    p.params.pattern = TrafficPattern::Shuffle;
  } else if (v == "hotspot") {
    p.params.pattern = TrafficPattern::Hotspot;
  } else {
    *msg = "unknown pattern '" + v +
           "' (uniform, tornado, transpose, bitcomp, shuffle, hotspot)";
    return false;
  }
  return true;
}

bool set_fidelity(Point& p, const std::string& v, std::string* msg) {
  if (v == "cycle") {
    p.params.fidelity = Fidelity::Cycle;
  } else if (v == "fast") {
    p.params.fidelity = Fidelity::Fast;
  } else {
    *msg = "unknown fidelity '" + v + "' (cycle, fast)";
    return false;
  }
  return true;
}

#define HN_INT_SETTER(field)                                          \
  [](Point& p, const std::string& v, std::string* msg) {              \
    long long x;                                                      \
    if (!parse_i64(v, &x)) {                                          \
      *msg = "expected an integer, got '" + v + "'";                  \
      return false;                                                   \
    }                                                                 \
    p.field = static_cast<decltype(p.field)>(x);                      \
    return true;                                                      \
  }

#define HN_F64_SETTER(field)                                          \
  [](Point& p, const std::string& v, std::string* msg) {              \
    double x;                                                         \
    if (!parse_double(v, &x)) {                                       \
      *msg = "expected a number, got '" + v + "'";                    \
      return false;                                                   \
    }                                                                 \
    p.field = x;                                                      \
    return true;                                                      \
  }

#define HN_BOOL_SETTER(field)                                         \
  [](Point& p, const std::string& v, std::string* msg) {              \
    bool x;                                                           \
    if (!parse_bool(v, &x)) {                                         \
      *msg = "expected true/false, got '" + v + "'";                  \
      return false;                                                   \
    }                                                                 \
    p.field = x;                                                      \
    return true;                                                      \
  }

const std::map<std::string, Setter>& setters() {
  static const std::map<std::string, Setter> s = {
      {"preset", set_preset},
      {"pattern", set_pattern},
      {"fidelity", set_fidelity},
      // topology / router
      {"k", HN_INT_SETTER(cfg.k)},
      {"num_vcs", HN_INT_SETTER(cfg.num_vcs)},
      {"vc_buffer_depth", HN_INT_SETTER(cfg.vc_buffer_depth)},
      {"slot_table_size", HN_INT_SETTER(cfg.slot_table_size)},
      {"dlt_entries", HN_INT_SETTER(cfg.dlt_entries)},
      {"sdm_planes", HN_INT_SETTER(cfg.sdm_planes)},
      {"tick_threads", HN_INT_SETTER(cfg.tick_threads)},
      // policy
      {"dynamic_slot_sizing", HN_BOOL_SETTER(cfg.dynamic_slot_sizing)},
      {"initial_active_slots", HN_INT_SETTER(cfg.initial_active_slots)},
      {"hitchhiker_sharing", HN_BOOL_SETTER(cfg.hitchhiker_sharing)},
      {"vicinity_sharing", HN_BOOL_SETTER(cfg.vicinity_sharing)},
      {"vc_power_gating", HN_BOOL_SETTER(cfg.vc_power_gating)},
      {"time_slot_stealing", HN_BOOL_SETTER(cfg.time_slot_stealing)},
      {"max_windows_per_pair", HN_INT_SETTER(cfg.max_windows_per_pair)},
      {"path_freq_threshold", HN_INT_SETTER(cfg.path_freq_threshold)},
      {"cs_latency_advantage", HN_F64_SETTER(cfg.cs_latency_advantage)},
      {"reservation_threshold", HN_F64_SETTER(cfg.reservation_threshold)},
      // faults
      {"link_ber", HN_F64_SETTER(cfg.link_ber)},
      {"fault_seed", HN_INT_SETTER(cfg.fault_seed)},
      {"e2e_recovery", HN_BOOL_SETTER(cfg.e2e_recovery)},
      {"cfg_seed", HN_INT_SETTER(cfg.seed)},
      // run params
      {"rate", HN_F64_SETTER(params.injection_rate)},
      {"seed", HN_INT_SETTER(params.seed)},
      {"warmup_packets", HN_INT_SETTER(params.warmup_packets)},
      {"warmup_min_cycles", HN_INT_SETTER(params.warmup_min_cycles)},
      {"measure_packets", HN_INT_SETTER(params.measure_packets)},
      {"max_cycles", HN_INT_SETTER(params.max_cycles)},
      {"latency_cap", HN_F64_SETTER(params.latency_cap)},
  };
  return s;
}

#undef HN_INT_SETTER
#undef HN_F64_SETTER
#undef HN_BOOL_SETTER

struct Op {
  int line = 0;
  std::string key;
  std::vector<std::string> values;  ///< 1 for `set`, >= 1 for `sweep`
  bool is_axis = false;
};

bool fail(SpecError* err, int line, std::string msg) {
  if (err) {
    err->line = line;
    err->message = std::move(msg);
  }
  return false;
}

}  // namespace

std::string SpecError::to_string() const {
  std::ostringstream os;
  os << "sweep spec error";
  if (line > 0) os << " (line " << line << ")";
  os << ": " << message;
  return os.str();
}

std::string known_spec_keys() {
  std::string out;
  for (const auto& [key, fn] : setters()) {
    (void)fn;
    if (!out.empty()) out += ", ";
    out += key;
  }
  return out;
}

bool parse_sweep_spec(const std::string& text, SweepSpec* out,
                      SpecError* err) {
  SweepSpec spec;
  spec.spec_digest = fnv1a64(text);

  std::vector<Op> ops;
  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    std::string line = raw;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return fail(err, lineno, "expected '<directive> <key> = <value>'");
    }
    std::string lhs = trim(line.substr(0, eq));
    const std::string rhs = trim(line.substr(eq + 1));

    if (lhs == "name") {
      if (rhs.empty()) return fail(err, lineno, "empty sweep name");
      spec.name = rhs;
      continue;
    }

    Op op;
    op.line = lineno;
    if (lhs.rfind("set ", 0) == 0) {
      op.key = trim(lhs.substr(4));
      op.is_axis = false;
      op.values.push_back(rhs);
    } else if (lhs.rfind("sweep ", 0) == 0) {
      op.key = trim(lhs.substr(6));
      op.is_axis = true;
      std::istringstream vs(rhs);
      std::string v;
      while (std::getline(vs, v, ',')) {
        v = trim(v);
        if (!v.empty()) op.values.push_back(v);
      }
      if (op.values.empty()) {
        return fail(err, lineno, "axis '" + op.key + "' has no values");
      }
    } else {
      return fail(err, lineno,
                  "unknown directive '" + lhs +
                      "' (use 'name', 'set <key>' or 'sweep <key>')");
    }
    if (setters().find(op.key) == setters().end()) {
      return fail(err, lineno,
                  "unknown key '" + op.key + "' (known: " +
                      known_spec_keys() + ")");
    }
    if (op.is_axis) spec.axis_keys.push_back(op.key);
    ops.push_back(std::move(op));
  }

  // Cartesian size, overflow-safely.
  std::size_t n_points = 1;
  for (const Op& op : ops) {
    if (!op.is_axis) continue;
    if (n_points > kMaxPoints / op.values.size()) {
      return fail(err, op.line, "sweep expands past the " +
                                    std::to_string(kMaxPoints) +
                                    "-point limit");
    }
    n_points *= op.values.size();
  }
  if (ops.empty()) return fail(err, 0, "spec defines no assignments");

  // Expand: odometer over the axes, last axis fastest.
  std::vector<const Op*> axes;
  for (const Op& op : ops) {
    if (op.is_axis) axes.push_back(&op);
  }
  std::vector<std::size_t> idx(axes.size(), 0);
  for (std::size_t pt = 0; pt < n_points; ++pt) {
    Point p;
    std::string label;
    std::size_t axis_i = 0;
    for (const Op& op : ops) {
      const std::string& value =
          op.is_axis ? op.values[idx[axis_i]] : op.values[0];
      if (op.is_axis) {
        if (!label.empty()) label += ",";
        label += op.key + "=" + value;
        ++axis_i;
      }
      std::string msg;
      if (!setters().at(op.key)(p, value, &msg)) {
        return fail(err, op.line, op.key + ": " + msg);
      }
    }
    if (label.empty()) label = "point" + std::to_string(pt);

    // Cross-field validation is HN_CHECK-based; specs are external input,
    // so run it under the throw mode and surface a structured error.
    try {
      ScopedCheckThrows guard;
      p.cfg.validate();
    } catch (const CheckFailure& e) {
      return fail(err, 0, "point '" + label + "' is invalid: " + e.what());
    }

    SweepPoint sp;
    sp.cfg = p.cfg;
    sp.params = p.params;
    sp.label = std::move(label);
    sp.hash = config_hash(sp.cfg, sp.params);
    spec.points.push_back(std::move(sp));

    // Advance the odometer (last axis fastest).
    for (std::size_t i = axes.size(); i-- > 0;) {
      if (++idx[i] < axes[i]->values.size()) break;
      idx[i] = 0;
    }
  }

  *out = std::move(spec);
  return true;
}

bool load_sweep_spec(const std::string& path, SweepSpec* out,
                     SpecError* err) {
  std::string text, ferr;
  if (!read_file(path, &text, &ferr)) {
    return fail(err, 0, "cannot read spec '" + path + "': " + ferr);
  }
  return parse_sweep_spec(text, out, err);
}

}  // namespace hybridnoc::sweep
