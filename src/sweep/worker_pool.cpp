#include "sweep/worker_pool.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace hybridnoc::sweep {

WorkerPool::WorkerPool(int num_workers) {
  HN_CHECK_MSG(num_workers >= 1, "worker pool needs at least one worker");
  std::lock_guard<std::mutex> lk(mu_);
  for (int i = 0; i < num_workers; ++i) spawn_worker_locked();
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
    for (auto& [id, token] : tokens_) token.cancel();
    queue_.clear();
  }
  work_cv_.notify_all();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

std::uint64_t WorkerPool::submit(Job job) {
  std::uint64_t id;
  {
    std::lock_guard<std::mutex> lk(mu_);
    id = next_task_id_++;
    Task t;
    t.id = id;
    t.job = std::move(job);
    tokens_.emplace(id, t.token);
    queue_.push_back(std::move(t));
  }
  work_cv_.notify_one();
  return id;
}

std::optional<TaskDone> WorkerPool::wait_any(
    std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lk(mu_);
  if (!done_cv_.wait_until(lk, deadline,
                           [&] { return !completions_.empty(); })) {
    return std::nullopt;
  }
  TaskDone d = std::move(completions_.front());
  completions_.pop_front();
  return d;
}

void WorkerPool::abandon(std::uint64_t task_id) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto tok = tokens_.find(task_id);
    if (tok == tokens_.end()) return;  // already completed
    tok->second.cancel();

    const auto run = running_.find(task_id);
    if (run != running_.end()) {
      // Retire the stuck worker and restore capacity immediately. The
      // worker's eventual completion is flagged `abandoned`.
      run->second->retired = true;
      ++abandoned_count_;
      spawn_worker_locked();
    } else {
      // Still queued: drop it and synthesize the failed completion.
      const auto it = std::find_if(queue_.begin(), queue_.end(),
                                   [&](const Task& t) { return t.id == task_id; });
      if (it != queue_.end()) {
        queue_.erase(it);
        tokens_.erase(tok);
        TaskDone d;
        d.task_id = task_id;
        d.ok = false;
        d.error = "cancelled before start";
        completions_.push_back(std::move(d));
      }
    }
  }
  done_cv_.notify_all();
}

int WorkerPool::workers_abandoned() const {
  std::lock_guard<std::mutex> lk(mu_);
  return abandoned_count_;
}

int WorkerPool::workers_spawned() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int>(workers_.size());
}

void WorkerPool::spawn_worker_locked() {
  auto w = std::make_unique<Worker>();
  Worker* self = w.get();
  workers_.push_back(std::move(w));
  self->thread = std::thread([this, self] { worker_main(self); });
}

void WorkerPool::worker_main(Worker* self) {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] {
        return stop_ || self->retired || !queue_.empty();
      });
      if (stop_ || self->retired) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      running_[task.id] = self;
    }

    TaskDone d;
    d.task_id = task.id;
    try {
      task.job(task.token);
      d.ok = true;
    } catch (const std::exception& e) {
      d.ok = false;
      d.error = e.what();
    } catch (...) {
      d.ok = false;
      d.error = "unknown worker exception";
    }

    bool retired;
    {
      std::lock_guard<std::mutex> lk(mu_);
      running_.erase(task.id);
      tokens_.erase(task.id);
      // `retired` can only have been set while we were running this task
      // (abandon marks the worker, then spawns the replacement).
      retired = self->retired;
      d.abandoned = retired;
      completions_.push_back(std::move(d));
    }
    done_cv_.notify_all();
    if (retired) return;
  }
}

}  // namespace hybridnoc::sweep
