// Append-only, checksummed sweep journal — the machinery that makes a
// sweep killable (kill -9 included) and resumable to bit-identical output.
//
// Every line is `<fnv-hex16> <payload>\n`, checksum over the payload. The
// first line binds the journal to the spec (`spec <digest>`); later lines
// record per-point progress:
//
//   done <hash> <attempts>          result computed and stored
//   fail <hash> <attempt> <reason>  one attempt failed (reason is free text)
//   quarantine <hash> <attempts>    retry budget exhausted
//
// Replay is torn-tail tolerant: a kill mid-append leaves at most one
// truncated or checksum-failing final line, which replay drops (counting
// it) before returning the reconstructed per-point state. Any corrupt line
// *before* the tail also just ends replay there — the journal is an
// optimization over the (self-verifying) result store, so under-reading it
// is always safe: the worst case is recomputation.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <set>
#include <string>

namespace hybridnoc::sweep {

class Journal {
 public:
  /// Reconstructed progress from an existing journal.
  struct Replay {
    bool exists = false;      ///< a journal file was present
    bool spec_match = false;  ///< ...and its header matches `spec_digest`
    std::set<std::uint64_t> done;
    std::set<std::uint64_t> quarantined;
    /// Failed attempts per point (for resuming the retry budget and the
    /// deterministic fault/backoff sequences at the right position).
    std::map<std::uint64_t, int> attempts;
    int torn_lines = 0;  ///< trailing lines dropped by the checksum
  };

  /// Parse `path` (missing file -> Replay{exists=false}). Never throws.
  static Replay replay(const std::string& path, std::uint64_t spec_digest);

  Journal() = default;
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Open for appending, writing the `spec` header when the file is new or
  /// being truncated. Returns false with *error on I/O failure.
  bool open(const std::string& path, std::uint64_t spec_digest,
            bool truncate, std::string* error);

  void record_done(std::uint64_t hash, int attempts);
  void record_fail(std::uint64_t hash, int attempt, const std::string& why);
  void record_quarantine(std::uint64_t hash, int attempts);

 private:
  void append(const std::string& payload);

  std::FILE* f_ = nullptr;
};

}  // namespace hybridnoc::sweep
