#include "noc/parallel_engine.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "noc/network.hpp"

namespace hybridnoc {

namespace {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

/// Spins before a worker parks on the condvar between cycles. Back-to-back
/// cycles resume in the spin window; fast-forwarded idle stretches park.
constexpr int kSpinLimit = 1 << 14;

/// Spins inside the cycle barrier before falling back to sched_yield. The
/// barrier is crossed twice per cycle, so parking there would dominate; but
/// on an oversubscribed machine (more shards than free cores) a pure spin
/// burns a whole scheduler timeslice waiting for a thread that cannot run —
/// yielding hands the core over immediately and keeps the engine merely
/// slower, not pathological, when cores are scarce.
constexpr int kBarrierSpinLimit = 1 << 10;

}  // namespace

ParallelTickEngine::ParallelTickEngine(Network& net, int threads)
    : net_(net),
      num_nodes_(net.num_nodes()),
      num_shards_(std::min(threads, net.num_nodes())),
      use_sched_(net.cfg().active_set_scheduler) {
  HN_CHECK(threads >= 2);
  shards_.resize(static_cast<size_t>(num_shards_));
  node_shard_.resize(static_cast<size_t>(num_nodes_));
  // Row-aligned partitioning: with row-major node ids, cutting only on row
  // boundaries means the sole cross-shard channels are the North/South links
  // of one row seam per shard pair — a mid-row cut would additionally stage
  // every East/West link it severs. At 64x64 that roughly halves the staged
  // channel count per seam and keeps each shard's working set a contiguous
  // block of whole rows. Partitioning only affects which channels stage, so
  // this is bit-identical by construction (thread-equivalence suite covers
  // it). Falls back to the plain node split when shards outnumber rows.
  const int k = net.mesh().k();
  const bool row_aligned = num_shards_ <= k;
  for (int s = 0; s < num_shards_; ++s) {
    Shard& sh = shards_[static_cast<size_t>(s)];
    if (row_aligned) {
      sh.node_lo = (s * k / num_shards_) * k;
      sh.node_hi = ((s + 1) * k / num_shards_) * k;
    } else {
      sh.node_lo = s * num_nodes_ / num_shards_;
      sh.node_hi = (s + 1) * num_nodes_ / num_shards_;
    }
    for (int n = sh.node_lo; n < sh.node_hi; ++n) {
      node_shard_[static_cast<size_t>(n)] = s;
    }
    if (use_sched_) sh.sched.reset_ranges(sh.node_lo, sh.node_hi, num_nodes_);
  }
}

ParallelTickEngine::~ParallelTickEngine() {
  if (!workers_spawned_) return;
  {
    std::lock_guard<std::mutex> lk(park_mu_);
    shutdown_.store(true, std::memory_order_release);
  }
  park_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ParallelTickEngine::register_link_channel(ChannelBase* ch,
                                               int producer_id,
                                               int consumer_id) {
  const int ps = shard_of(producer_id);
  const int cs = shard_of(consumer_id);
  if (ps == cs) return;
  ch->set_staged(true);
  shards_[static_cast<size_t>(cs)].commit_list.push_back(ch);
}

void ParallelTickEngine::ensure_workers() {
  if (workers_spawned_) return;
  workers_spawned_ = true;
  workers_.reserve(static_cast<size_t>(num_shards_ - 1));
  for (int s = 1; s < num_shards_; ++s) {
    workers_.emplace_back([this, s] { worker_loop(s); });
  }
}

void ParallelTickEngine::worker_loop(int s) {
  std::uint64_t last = 0;
  for (;;) {
    std::uint64_t g;
    int spins = 0;
    while ((g = go_seq_.load(std::memory_order_acquire)) == last &&
           !shutdown_.load(std::memory_order_acquire)) {
      if (++spins < kSpinLimit) {
        cpu_relax();
        continue;
      }
      // seq_cst on the parked_ increment and the predicate's go_seq_ read
      // pairs with the seq_cst publish in run_cycle: the classic
      // store-buffer interleaving (worker parks reading a stale go_seq_
      // while the main thread reads a stale parked_ == 0 and skips the
      // notify) is forbidden in the single total order.
      std::unique_lock<std::mutex> lk(park_mu_);
      parked_.fetch_add(1, std::memory_order_seq_cst);
      park_cv_.wait(lk, [&] {
        return go_seq_.load(std::memory_order_seq_cst) != last ||
               shutdown_.load(std::memory_order_acquire);
      });
      parked_.fetch_sub(1, std::memory_order_relaxed);
    }
    if (shutdown_.load(std::memory_order_acquire)) return;
    last = g;
    const Cycle now = cycle_now_;
    compute_phase(s, now);
    barrier_arrive();
    commit_compact_phase(s, now);
    barrier_arrive();
  }
}

void ParallelTickEngine::barrier_arrive() {
  const std::uint64_t seq = barrier_seq_.load(std::memory_order_relaxed);
  if (barrier_arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
      num_shards_) {
    barrier_arrived_.store(0, std::memory_order_relaxed);
    barrier_seq_.store(seq + 1, std::memory_order_release);
  } else {
    int spins = 0;
    while (barrier_seq_.load(std::memory_order_acquire) == seq) {
      if (++spins < kBarrierSpinLimit) {
        cpu_relax();
      } else {
        spins = 0;
        std::this_thread::yield();
      }
    }
  }
}

void ParallelTickEngine::compute_phase(int s, Cycle now) {
  Shard& sh = shards_[static_cast<size_t>(s)];
  if (!use_sched_) {
    for (int n = sh.node_lo; n < sh.node_hi; ++n) {
      net_.ni_ptrs_[static_cast<size_t>(n)]->tick(now);
    }
    for (int n = sh.node_lo; n < sh.node_hi; ++n) {
      net_.router_ptrs_[static_cast<size_t>(n)]->tick(now);
    }
    const auto span = static_cast<std::uint64_t>(sh.node_hi - sh.node_lo);
    sh.ni_ticks += span;
    sh.router_ticks += span;
    return;
  }
  // Drain the shard scheduler's run list directly — O(active in shard), not
  // O(shard size). Ascending slot order within the shard is its NIs then its
  // routers, matching the slice of the legacy global sweep this shard owns.
  sh.sched.begin_cycle(now);
  sh.sched.sweep([&](int id) {
    if (id < num_nodes_) {
      net_.ni_ptrs_[static_cast<size_t>(id)]->tick(now);
      ++sh.ni_ticks;
    } else {
      net_.router_ptrs_[static_cast<size_t>(id - num_nodes_)]->tick(now);
      ++sh.router_ticks;
    }
  });
}

void ParallelTickEngine::commit_compact_phase(int s, Cycle now) {
  Shard& sh = shards_[static_cast<size_t>(s)];
  // Commit before compact: compaction's next-event derivation reads the
  // consumer-side channel fronts, which must include this cycle's sends —
  // exactly what the serial engine's eager sends would have left behind.
  for (ChannelBase* ch : sh.commit_list) ch->commit_staged();
  if (!use_sched_) return;
  sh.sched.compact(
      [&](int id) {
        return id < num_nodes_
                   ? net_.ni_ptrs_[static_cast<size_t>(id)]->sched_busy()
                   : net_.router_ptrs_[static_cast<size_t>(id - num_nodes_)]
                         ->sched_busy();
      },
      [&](int id) {
        return id < num_nodes_
                   ? net_.ni_ptrs_[static_cast<size_t>(id)]->sched_next_event(now)
                   : net_.router_ptrs_[static_cast<size_t>(id - num_nodes_)]
                         ->sched_next_event(now);
      });
}

void ParallelTickEngine::serial_cycle(Cycle now) {
  // Exact global sweep order (every NI ascending, then every router): the
  // modes that force this path observe the dispatch sequence itself, so it
  // must match the single-threaded engine event for event.
  if (use_sched_) {
    for (Shard& sh : shards_) sh.sched.begin_cycle(now);
    for (int n = 0; n < num_nodes_; ++n) {
      if (shards_[static_cast<size_t>(node_shard_[static_cast<size_t>(n)])]
              .sched.component_active(n)) {
        net_.ni_ptrs_[static_cast<size_t>(n)]->tick(now);
      }
    }
    for (int n = 0; n < num_nodes_; ++n) {
      if (shards_[static_cast<size_t>(node_shard_[static_cast<size_t>(n)])]
              .sched.component_active(num_nodes_ + n)) {
        net_.router_ptrs_[static_cast<size_t>(n)]->tick(now);
      }
    }
  } else {
    for (NetworkInterface* ni : net_.ni_ptrs_) ni->tick(now);
    for (Router* r : net_.router_ptrs_) r->tick(now);
  }
  // Staged channels stay staged; their outboxes just drain on one thread.
  // Cross-channel commit order is irrelevant (one producer per channel,
  // wake-ups dedup), so shard order is as good as any.
  for (int s = 0; s < num_shards_; ++s) commit_compact_phase(s, now);
}

void ParallelTickEngine::run_cycle(Cycle now) {
  const bool serial =
      force_serial_ || (net_.faults_ && net_.faults_->recording());
  if (serial) {
    serial_cycle(now);
    drain_deliveries();
    return;
  }
  // Make the fault model's lazy topology caches warm before shard threads
  // issue concurrent health queries.
  if (net_.faults_) net_.faults_->prepare(now);
  ensure_workers();
  cycle_now_ = now;
  go_seq_.fetch_add(1, std::memory_order_seq_cst);
  if (parked_.load(std::memory_order_seq_cst) > 0) {
    // Empty critical section before the notify: a worker between its
    // predicate check and the actual block holds park_mu_, so acquiring it
    // here guarantees the worker is either fully registered on the condvar
    // (the notify wakes it) or will re-check the predicate and see the new
    // go_seq_ (it never blocks).
    { std::lock_guard<std::mutex> lk(park_mu_); }
    park_cv_.notify_all();
  }
  compute_phase(0, now);
  barrier_arrive();
  commit_compact_phase(0, now);
  barrier_arrive();
  drain_deliveries();
}

void ParallelTickEngine::drain_deliveries() {
  for (NetworkInterface* ni : net_.ni_ptrs_) ni->flush_staged_deliveries();
}

void ParallelTickEngine::accumulate_profile(TickProfile& p) const {
  // Shard counters are written only by the owning worker inside a cycle;
  // reading them here (between cycles, after the closing barrier) is
  // ordered by that barrier's release/acquire pair.
  for (const Shard& sh : shards_) {
    p.ni_ticks += sh.ni_ticks;
    p.router_ticks += sh.router_ticks;
  }
}

void ParallelTickEngine::begin_cycle(Cycle now) {
  if (!use_sched_) return;
  for (Shard& sh : shards_) sh.sched.begin_cycle(now);
}

bool ParallelTickEngine::anything_active() const {
  if (!use_sched_) return true;
  for (const Shard& sh : shards_) {
    if (sh.sched.anything_active()) return true;
  }
  return false;
}

Cycle ParallelTickEngine::next_wake_cycle() {
  Cycle earliest = kCycleNever;
  if (!use_sched_) return earliest;
  for (Shard& sh : shards_) {
    earliest = std::min(earliest, sh.sched.next_wake_cycle());
  }
  return earliest;
}

}  // namespace hybridnoc
