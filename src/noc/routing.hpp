// Routing functions (Table I): dimension-ordered X-Y for data packets, and a
// deadlock-free minimal-adaptive algorithm (west-first turn model) for path
// configuration packets, which selects among productive ports by downstream
// credit availability so setup messages spread load across routers
// ("path selection", Section II-B).
#pragma once

#include <vector>

#include "common/geometry.hpp"
#include "common/types.hpp"

namespace hybridnoc {

/// Output port for dimension-ordered X-then-Y routing from `here` to `dst`.
/// Returns Port::Local when here == dst.
Port route_xy(const Mesh& mesh, NodeId here, NodeId dst);

/// Productive (minimal) output ports from `here` to `dst` under the
/// west-first turn model: if the destination lies to the west, the packet
/// must finish all westward hops first (only West is productive); otherwise
/// every minimal direction is offered. Never contains Local unless here==dst.
std::vector<Port> west_first_candidates(const Mesh& mesh, NodeId here, NodeId dst);

class FaultModel;

/// Fault-aware routing for when the fabric has permanently failed links:
/// up*/down* over a BFS spanning forest of the surviving topology
/// (FaultModel::updown_next). Every route climbs toward the lowest common
/// ancestor and then descends, so the channel dependency graph stays acyclic
/// and fault-epoch routing is deadlock-free for any pattern of link/router
/// deaths that leaves the endpoints connected; up moves strictly decrease
/// tree depth, so routes also cannot livelock. Returns Port::Local when
/// here == dst or `dst` is partitioned off (caller fails the packet via the
/// reachability check).
Port route_fault_aware(const Mesh& mesh, const FaultModel& faults, NodeId here,
                       NodeId dst, Cycle now);

/// Credit-based selection among `candidates`: the port with the most free
/// downstream buffer slots wins; ties break deterministically by port order.
/// `free_credits(port)` is supplied by the router.
template <typename FreeCreditsFn>
Port select_by_credits(const std::vector<Port>& candidates, FreeCreditsFn free_credits) {
  HN_CHECK(!candidates.empty());
  Port best = candidates.front();
  int best_credits = free_credits(best);
  for (size_t i = 1; i < candidates.size(); ++i) {
    const int c = free_credits(candidates[i]);
    if (c > best_credits) {
      best = candidates[i];
      best_credits = c;
    }
  }
  return best;
}

}  // namespace hybridnoc
