// Data-plane hardware fault model: transient flit bit-errors on links,
// intermittently stuck links, and permanently dead links/routers, all on a
// deterministic schedule.
//
// Fail-dirty semantics: a fault corrupts a flit's payload but the flit still
// traverses the link (control fields — routing, VC id, slot arithmetic — are
// assumed separately protected in hardware). This keeps every wormhole, VC
// and credit invariant intact in-network; the per-hop CRC merely *flags* the
// corruption and the destination NI squashes the packet at assembly, leaving
// recovery to the end-to-end layer.
//
// Transient corruption is a stateless hash of (fault_seed, link, n-th
// traversal of that link): whether a given traversal corrupts depends on
// nothing but the traversal count of that one link, so the decision is
// independent of global event ordering and identical under the active-set
// and legacy tick engines. In Record mode every fired corruption is logged
// as a (link, occurrence) pair; Replay mode applies exactly the recorded
// occurrences and never evaluates the hash, so replays are RNG-free and
// survive trace shrinking.
#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/geometry.hpp"
#include "common/types.hpp"

namespace hybridnoc {

/// Data-plane fault kinds (distinct from the control-plane config faults of
/// fault_trace's FaultAction).
enum class FaultKind : std::uint8_t {
  Transient,   ///< one flit's payload corrupted on one link traversal
  StuckLink,   ///< link corrupts every flit for a window of cycles
  DeadLink,    ///< directed link permanently corrupts everything from `start`
  DeadRouter,  ///< router dead: all its incident links behave as dead
};

inline const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::Transient: return "transient";
    case FaultKind::StuckLink: return "stuck";
    case FaultKind::DeadLink: return "dead-link";
    case FaultKind::DeadRouter: return "dead-router";
  }
  return "?";
}

/// One scheduled (or recorded) data-plane fault. For link faults `node` is
/// the upstream router and `out` the directed link's output port; DeadRouter
/// uses `node` only (out = Port::Local).
struct LinkFaultEvent {
  FaultKind kind = FaultKind::Transient;
  NodeId node = kInvalidNode;
  Port out = Port::Local;
  Cycle start = 0;     ///< activation cycle (Transient: cycle it fired)
  Cycle duration = 0;  ///< StuckLink window length; 0 elsewhere
  /// Transient only: which traversal of the link corrupted (1-based count).
  /// This — not `start` — is the replay key.
  std::uint64_t occurrence = 0;
};

class FaultModel {
 public:
  FaultModel(int k, double ber, std::uint64_t seed);

  // --- schedule (call before or during a run; activation is by cycle) ---
  void kill_link(NodeId node, Port out, Cycle at);
  void kill_router(NodeId node, Cycle at);
  void stick_link(NodeId node, Port out, Cycle at, Cycle duration);
  void add_event(const LinkFaultEvent& e);

  // --- record / replay ---
  /// Record every fired transient corruption into fired_transients().
  void set_recording(bool on) { recording_ = on; }
  bool recording() const { return recording_; }
  /// Replay exactly these transient (link, occurrence) corruptions and stop
  /// evaluating the BER hash. State faults (stuck/dead) are still applied
  /// from the schedule, which the caller re-installs from the trace.
  void set_transient_replay(const std::vector<LinkFaultEvent>& transients);
  const std::vector<LinkFaultEvent>& fired_transients() const {
    return fired_;
  }
  /// Scheduled state faults (stuck/dead), in insertion order.
  const std::vector<LinkFaultEvent>& scheduled_events() const {
    return events_;
  }

  // --- hot path ---
  /// Count one traversal of the directed link (node, out) and decide whether
  /// this flit's payload corrupts. `out` must be a cardinal port.
  bool on_traverse(NodeId node, Port out, Cycle now);

  /// Serial pre-pass for the parallel tick engine, called once per cycle
  /// before the compute phase: refresh the topology caches and, while any
  /// permanent fault is active, materialise the spanning forest and the
  /// distance map of *every* destination — so the health queries below are
  /// pure reads for the rest of the cycle and safe from any shard thread.
  /// O(N^2) only on the cycle a fault epoch changes; a cached epoch check
  /// otherwise. Harmless (and unnecessary) under the serial engine.
  void prepare(Cycle now);

  // --- health queries (permanent faults only; stuck links are transient
  // trouble the end-to-end layer rides out, not a routing concern) ---
  bool link_failed(NodeId node, Port out, Cycle now) const;
  bool node_failed(NodeId node, Cycle now) const;
  /// Any permanent fault active at `now`? Cheap gate for routing detours.
  bool any_failed(Cycle now) const { return now >= first_perm_fault_at_; }
  /// Can a packet-switched flit still walk from `src` to `dst` over healthy
  /// links? BFS over the directed surviving topology.
  bool reachable(NodeId src, NodeId dst, Cycle now) const;
  /// Hop distance from every node to `dst` over healthy directed links
  /// (BFS on the surviving topology), cached per activated-fault epoch; -1
  /// marks nodes with no healthy path. Diagnostic companion to the routing
  /// queries below.
  const std::vector<int>& distances_to(NodeId dst, Cycle now) const;
  /// Next hop of the up*/down* route from `here` to `dst` over a BFS
  /// spanning forest of the surviving topology: up toward the lowest common
  /// ancestor, then down. Tree routes are longer than greedy
  /// shortest-surviving-path detours, but the up-then-down channel ordering
  /// is acyclic, so fault-epoch routing stays deadlock-free — greedy
  /// distance-descent routing to mixed destinations can close wormhole
  /// buffer cycles that XY's missing turns otherwise rule out. Port::Local
  /// when here == dst, when either endpoint is dead, or when the two sit in
  /// different surviving components.
  Port updown_next(NodeId here, NodeId dst, Cycle now) const;

  // --- degradation metrics ---
  /// Directed links dead at `now` (links incident to dead routers included).
  int failed_links(Cycle now) const;
  /// Directed links crossing the mesh's vertical mid-cut (the canonical
  /// bisection): total and still-healthy at `now`.
  int bisection_links_total() const { return 2 * mesh_.k(); }
  int bisection_links_alive(Cycle now) const;

  std::uint64_t traversals(NodeId node, Port out) const;
  std::uint64_t corrupted_traversals() const {
    return corrupted_.load(std::memory_order_relaxed);
  }

  const Mesh& mesh() const { return mesh_; }
  double ber() const { return ber_; }
  std::uint64_t seed() const { return seed_; }

 private:
  int link_index(NodeId node, Port out) const;
  bool link_dead_raw(NodeId node, Port out, Cycle now) const;
  /// Stuck or dead at `now` — the "does this traversal corrupt for sure"
  /// state check, broader than link_failed.
  bool link_corrupting(NodeId node, Port out, Cycle now) const;

  Mesh mesh_;
  double ber_;
  std::uint64_t seed_;
  std::uint64_t threshold_;  ///< corrupt iff hash < threshold (ber * 2^64)

  struct LinkState {
    Cycle dead_at = kCycleNever;
    std::uint64_t traversals = 0;
    /// Stuck windows [start, end); end == kCycleNever means forever.
    std::vector<std::pair<Cycle, Cycle>> stuck;
  };
  std::vector<LinkState> links_;           // node * 4 + (port - 1)
  std::vector<Cycle> router_dead_at_;      // per node
  Cycle first_perm_fault_at_ = kCycleNever;

  std::vector<LinkFaultEvent> events_;  // scheduled stuck/dead faults
  std::vector<LinkFaultEvent> fired_;   // recorded transient corruptions
  bool recording_ = false;

  bool replay_ = false;
  /// Replay keys: link_index << 44 | occurrence.
  std::unordered_set<std::uint64_t> replay_keys_;

  /// Corruptions are decided per-link by the stateless hash, so concurrent
  /// shard threads may fire them in any interleaving; a relaxed atomic sum
  /// is exact because addition commutes.
  std::atomic<std::uint64_t> corrupted_{0};

  // reachable()/distances_to() caches, invalidated whenever the set of
  // *activated* permanent faults changes (activations are monotone in time,
  // so the epoch is just a count of schedule entries with start <= now).
  // reachable(src, dst) is answered from distances_to(dst): the BFS over
  // reversed healthy links marks exactly the nodes with a healthy forward
  // path to dst, so a separate pair cache would be redundant state.
  std::uint64_t fault_epoch(Cycle now) const;
  void refresh_topology_caches(Cycle now) const;
  mutable std::uint64_t reach_epoch_ = ~std::uint64_t{0};
  mutable std::unordered_map<NodeId, std::vector<int>> dist_cache_;
  std::vector<Cycle> perm_starts_;  // sorted activation cycles

  /// BFS spanning forest of the surviving topology (one tree per connected
  /// component; an edge counts only when healthy in both directions).
  struct SpanningForest {
    std::vector<int> level;         ///< depth in its tree; -1 = dead node
    std::vector<NodeId> parent;     ///< kInvalidNode at roots / dead nodes
    std::vector<Port> to_parent;    ///< port toward parent; Local at roots
    std::vector<int> component;     ///< tree id; -1 = dead node
  };
  const SpanningForest& forest(Cycle now) const;
  mutable SpanningForest forest_;
  mutable bool forest_valid_ = false;
};

}  // namespace hybridnoc
