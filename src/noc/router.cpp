#include "noc/router.hpp"

#include <algorithm>
#include <bit>

#include "common/state_io.hpp"
#include "noc/fault_model.hpp"
#include "noc/routing.hpp"

namespace hybridnoc {

Router::Router(const NocConfig& cfg, NodeId id, const Mesh& mesh)
    : cfg_(cfg), id_(id), mesh_(mesh), announced_active_vcs_(cfg.num_vcs) {
  HN_CHECK_MSG(cfg_.num_vcs <= 32, "VC-state bitmasks hold at most 32 VCs");
  for (auto& ip : in_) {
    ip.vcs.resize(static_cast<size_t>(cfg_.num_vcs));
  }
  for (auto& op : out_) {
    op.credits.assign(static_cast<size_t>(cfg_.num_vcs), cfg_.vc_buffer_depth);
    op.vc_busy.assign(static_cast<size_t>(cfg_.num_vcs), false);
    op.tail_sent.assign(static_cast<size_t>(cfg_.num_vcs), false);
    op.grantable_mask =
        cfg_.num_vcs >= 32 ? ~0u : ((1u << static_cast<unsigned>(cfg_.num_vcs)) - 1u);
  }
}

void Router::connect_input(Port p, FlitChannel* data_in, CreditChannel* credit_out,
                           VcHolder* upstream, Port upstream_out) {
  auto& ip = in_[static_cast<size_t>(p)];
  HN_CHECK(ip.data == nullptr);
  ip.data = data_in;
  ip.credit_out = credit_out;
  ip.upstream = upstream;
  ip.upstream_out = upstream_out;
  ++ports_present_;
}

void Router::connect_output(Port p, FlitChannel* data_out, CreditChannel* credit_in) {
  auto& op = out_[static_cast<size_t>(p)];
  HN_CHECK(op.data == nullptr);
  op.data = data_out;
  op.credit_in = credit_in;
}

void Router::set_downstream_active_vcs(Port p, const int* active_vcs) {
  out_[static_cast<size_t>(p)].downstream_active_vcs = active_vcs;
}

bool Router::holds_vc_allocation(Port out_port, int vc) const {
  const auto& op = out_[static_cast<size_t>(out_port)];
  return op.vc_busy[static_cast<size_t>(vc)];
}

int Router::free_credits(Port out) const {
  const auto& op = out_[static_cast<size_t>(out)];
  const int active = op.downstream_active_vcs ? *op.downstream_active_vcs : cfg_.num_vcs;
  if (op.cached_active != active) {
    // Downstream VC-gating moved the active boundary (or first call):
    // rebuild the prefix sum; afterwards receive/spend keep it incremental.
    int total = 0;
    for (int v = 0; v < active; ++v) total += op.credits[static_cast<size_t>(v)];
    op.cached_free_credits = total;
    op.cached_active = active;
  }
  return op.cached_free_credits;
}

void Router::tick(Cycle now) {
  if (now > accounted_until_) {
    // Slept through [accounted_until_, now): fold the idle-cycle energy
    // constants in closed form and re-anchor the gating epoch.
    accumulate_idle_energy(energy_, now - accounted_until_);
    align_epochs(now);
  }
  accounted_until_ = now + 1;
  receive_credits(now);
  receive_flits(now);
  vc_allocate(now);
  switch_allocate(now);
  switch_traverse(now);
  vc_gating_tick(now);
  accounting_tick(now);
  leakage_tick(now);
}

void Router::receive_credits(Cycle now) {
  for (auto& op : out_) {
    if (!op.credit_in) continue;
    while (auto c = op.credit_in->receive(now)) {
      const auto v = static_cast<size_t>(c->vc);
      HN_CHECK(v < op.credits.size());
      ++op.credits[v];
      if (c->vc < op.cached_active) ++op.cached_free_credits;
      HN_CHECK_MSG(op.credits[v] <= cfg_.vc_buffer_depth, "credit overflow");
      if (op.tail_sent[v] && op.credits[v] == cfg_.vc_buffer_depth) {
        op.vc_busy[v] = false;
        op.tail_sent[v] = false;
        op.grantable_mask |= 1u << v;
      }
    }
  }
}

void Router::receive_flits(Cycle now) {
  for (int p = 0; p < kNumPorts; ++p) {
    auto& ip = in_[static_cast<size_t>(p)];
    if (!ip.data) continue;
    while (auto f = ip.data->receive(now)) {
      // Per-hop CRC: detection only for data (the fail-dirty flit keeps
      // flowing and the destination NI squashes the packet) — but a damaged
      // config message is evaporated right here, with the same buffer and
      // credit accounting as a protocol-consumed flit, before any router
      // can act on its fields.
      if (f->corrupted) {
        ++crc_flagged_flits_;
        if (f->pkt->is_config()) {
          HN_CHECK(f->is_tail());
          ++energy_.buffer_writes;
          ++energy_.buffer_reads;
          if (ip.credit_out) ip.credit_out->send({f->vc}, now);
          // Terminal consumption: config packets are single-flit, so this
          // returns the flight anchor, which keeps the packet alive through
          // the corrupt-config hook and then lets it die.
          PacketPtr gone = consume_flit(f->pkt);
          HN_CHECK_MSG(gone != nullptr, "corrupt config flit was not its packet's last");
          on_config_corrupt(gone.get());
          continue;
        }
      }
      if (handle_arrival(*f, static_cast<Port>(p), now)) continue;
      HN_CHECK_MSG(f->switching == Switching::Packet,
                   "circuit flit reached the packet pipeline");
      const auto v = static_cast<size_t>(f->vc);
      HN_CHECK(v < ip.vcs.size());
      VcState& st = ip.vcs[v];
      ++energy_.buffer_writes;
      if (f->is_head()) {
        HN_CHECK_MSG(st.state == VcState::S::Idle && st.fifo.empty(),
                     "head flit into a busy VC (atomic reallocation violated)");
        const auto route = compute_route(f->pkt, static_cast<Port>(p), now);
        if (!route) {
          // Consumed by the protocol (e.g. a teardown that reached the node
          // where its setup failed). Single-flit packets only; the buffer
          // slot is freed immediately and the flight anchor drops here.
          HN_CHECK(f->is_tail());
          ++energy_.buffer_reads;
          if (ip.credit_out) ip.credit_out->send({f->vc}, now);
          PacketPtr gone = consume_flit(f->pkt);
          HN_CHECK_MSG(gone != nullptr, "protocol-consumed flit was not its packet's last");
          continue;
        }
        st.pkt = f->pkt;
        st.out_port = *route;
        st.out_vc = -1;
        st.state = VcState::S::WaitVc;
        ip.wait_mask |= 1u << v;
        st.va_eligible = now + 1;
      } else {
        HN_CHECK_MSG(st.state != VcState::S::Idle, "body flit into an idle VC");
      }
      st.fifo.push_back({*f, now});
      HN_CHECK_MSG(static_cast<int>(st.fifo.size()) <= cfg_.vc_buffer_depth,
                   "VC buffer overflow (credit protocol broken)");
    }
  }
}

void Router::vc_allocate(Cycle now) {
  for (auto& ip : in_) {
    // Only VCs whose head flit is waiting for a downstream VC compete; the
    // mask walk visits them in ascending VC order, exactly like the dense
    // scan it replaces (non-waiting VCs failed its first check anyway).
    std::uint32_t pending = ip.wait_mask;
    while (pending) {
      const auto vi = static_cast<unsigned>(std::countr_zero(pending));
      pending &= pending - 1;
      VcState& st = ip.vcs[vi];
      if (now < st.va_eligible) continue;
      auto& op = out_[static_cast<size_t>(st.out_port)];
      const int active = op.downstream_active_vcs ? *op.downstream_active_vcs
                                                  : cfg_.num_vcs;
      // Conservative atomic reallocation: a downstream VC is granted only
      // when unallocated and with a full credit pile — i.e. a grantable_mask
      // bit below the downstream active-VC boundary. The round-robin scan
      // starts at va_rr % active (what the dense (va_rr + i) % active walk
      // visits first) and wraps to the lowest eligible lane.
      const std::uint32_t lanes =
          active >= 32 ? ~0u : ((1u << static_cast<unsigned>(active)) - 1u);
      const std::uint32_t eligible = op.grantable_mask & lanes;
      if (eligible == 0) continue;
      const int start = op.va_rr % active;
      const std::uint32_t at_or_after = eligible >> static_cast<unsigned>(start);
      const int grant = at_or_after != 0 ? start + std::countr_zero(at_or_after)
                                         : std::countr_zero(eligible);
      op.vc_busy[static_cast<size_t>(grant)] = true;
      op.grantable_mask &= ~(1u << static_cast<unsigned>(grant));
      op.va_rr = (grant + 1) % active;
      st.out_vc = grant;
      st.state = VcState::S::Active;
      ip.wait_mask &= ~(1u << vi);
      ip.active_mask |= 1u << vi;
      st.sa_eligible = now + 1;
      ++energy_.vc_arbs;
    }
  }
}

int Router::pick_sa_candidate(InputPort& ip, Port p, Cycle now) {
  // Round-robin over the *active* VCs only: bits at or above sa_rr in
  // ascending order, then the wrapped-around low bits — the same visit
  // order as the dense (sa_rr + i) % n scan restricted to Active VCs.
  std::uint32_t cur = ip.active_mask;
  if (cur == 0) return -1;
  const std::uint32_t low = cur & ((1u << static_cast<unsigned>(ip.sa_rr)) - 1u);
  cur ^= low;  // bits >= sa_rr
  for (int pass = 0; pass < 2; ++pass, cur = low) {
    while (cur) {
      const auto v = static_cast<unsigned>(std::countr_zero(cur));
      cur &= cur - 1;
      VcState& st = ip.vcs[v];
      if (st.fifo.empty() || now < st.sa_eligible) continue;
      if (st.fifo.front().bw_cycle >= now) continue;  // min 1 cycle in buffer
      auto& op = out_[static_cast<size_t>(st.out_port)];
      if (op.credits[static_cast<size_t>(st.out_vc)] <= 0) continue;
      if (!st_ok(p, st.out_port, now + 1)) continue;
      return static_cast<int>(v);
    }
  }
  return -1;
}

void Router::switch_allocate(Cycle now) {
  // Separable allocation: one candidate VC per input port, then one input
  // port per output port; both arbiters are round-robin.
  std::array<int, kNumPorts> candidate{};
  candidate.fill(-1);
  bool any_candidate = false;
  for (int p = 0; p < kNumPorts; ++p) {
    auto& ip = in_[static_cast<size_t>(p)];
    if (!ip.active_mask) continue;  // no Active VC, no candidate
    const int c = pick_sa_candidate(ip, static_cast<Port>(p), now);
    candidate[static_cast<size_t>(p)] = c;
    any_candidate = any_candidate || c >= 0;
  }
  if (!any_candidate) return;
  for (int o = 0; o < kNumPorts; ++o) {
    auto& op = out_[static_cast<size_t>(o)];
    if (!op.data) continue;
    int winner = -1;
    for (int i = 0; i < kNumPorts; ++i) {
      const int p = (op.sa_rr + i) % kNumPorts;
      const int v = candidate[static_cast<size_t>(p)];
      if (v < 0) continue;
      const VcState& st = in_[static_cast<size_t>(p)].vcs[static_cast<size_t>(v)];
      if (static_cast<int>(st.out_port) != o) continue;
      winner = p;
      break;
    }
    if (winner < 0) continue;
    op.sa_rr = (winner + 1) % kNumPorts;

    auto& ip = in_[static_cast<size_t>(winner)];
    const int v = candidate[static_cast<size_t>(winner)];
    candidate[static_cast<size_t>(winner)] = -1;  // one grant per input
    VcState& st = ip.vcs[static_cast<size_t>(v)];
    ip.sa_rr = (v + 1) % cfg_.num_vcs;

    BufferedFlit bf = st.fifo.pop_front();
    residency_sum_ += static_cast<std::uint64_t>(now - bf.bw_cycle);
    ++residency_count_;
    ++energy_.buffer_reads;
    ++energy_.sw_arbs;
    if (ip.credit_out) ip.credit_out->send({bf.flit.vc}, now);

    Flit flit = bf.flit;
    flit.vc = st.out_vc;
    --op.credits[static_cast<size_t>(st.out_vc)];
    if (st.out_vc < op.cached_active) --op.cached_free_credits;
    if (flit.is_tail()) {
      HN_CHECK_MSG(st.fifo.empty(), "flits behind a tail in a wormhole VC");
      op.tail_sent[static_cast<size_t>(st.out_vc)] = true;
      st.state = VcState::S::Idle;
      ip.active_mask &= ~(1u << static_cast<unsigned>(v));
      st.pkt = nullptr;
      st.out_vc = -1;
    }
    st_regs_.push_back({flit, static_cast<Port>(o), now + 1});
  }
}

void Router::switch_traverse(Cycle now) {
  xbar_out_used_.fill(false);
  auto it = st_regs_.begin();
  while (it != st_regs_.end()) {
    if (it->st_cycle != now) {
      ++it;
      continue;
    }
    claim_xbar_output(it->out);
    send_flit(it->out, it->flit, now);
    it = st_regs_.erase(it);
  }
  traverse_circuit(now);
}

void Router::claim_xbar_output(Port out) {
  HN_CHECK_MSG(!xbar_out_used_[static_cast<size_t>(out)], "crossbar output conflict");
  xbar_out_used_[static_cast<size_t>(out)] = true;
}

void Router::send_flit(Port out, Flit flit, Cycle now) {
  auto& op = out_[static_cast<size_t>(out)];
  HN_CHECK_MSG(op.data != nullptr, "flit sent to an unconnected port");
  ++energy_.xbar_flits;
  if (out != Port::Local) {
    ++energy_.link_flits;
    // Link-traversal fault hook: a fault corrupts the payload but the flit
    // still crosses (fail-dirty), so flow-control invariants are untouched.
    if (faults_ && faults_->on_traverse(id_, out, now)) flit.corrupted = true;
  }
  ++flits_traversed_;
  op.data->send(std::move(flit), now);
}

Port Router::route_adaptive(NodeId dst, Cycle now) {
  auto candidates = west_first_candidates(mesh_, id_, dst);
  if (faults_ && faults_->any_failed(now)) {
    // During a fault epoch config follows the same up*/down* tree as data:
    // the whole fabric then shares one acyclic channel ordering, whereas
    // mixing west-first config turns with tree-routed data could close a
    // dependency cycle neither ordering allows on its own. When the tree
    // offers nothing (destination partitioned off), fall back to the
    // original pick — the dead link corrupts the flit and lease/timeout
    // recovery cleans up, rather than the flit self-delivering at the wrong
    // node.
    const Port p = route_fault_aware(mesh_, *faults_, id_, dst, now);
    return p == Port::Local ? candidates.front() : p;
  }
  return select_by_credits(candidates,
                           [this](Port p) { return free_credits(p); });
}

bool Router::handle_arrival(Flit& flit, Port in, Cycle now) {
  (void)flit;
  (void)in;
  (void)now;
  return false;
}

bool Router::st_ok(Port in, Port out, Cycle st_cycle) {
  (void)in;
  (void)out;
  (void)st_cycle;
  return true;
}

std::optional<Port> Router::compute_route(Packet* pkt, Port in, Cycle now) {
  (void)in;
  if (pkt->dst == id_) return Port::Local;
  if (pkt->is_config()) return route_adaptive(pkt->dst, now);
  // Table I: X-Y for data — until the fabric has dead links, after which
  // every data packet follows the deadlock-free up*/down* detour routing
  // (fault-free runs never take this branch, so they stay bit-identical).
  if (faults_ && faults_->any_failed(now)) {
    const Port p = route_fault_aware(mesh_, *faults_, id_, pkt->dst, now);
    // Local = this router is fully cut off; fall back to XY (the dead link
    // corrupts the flit and end-to-end recovery takes over).
    return p == Port::Local ? route_data(pkt->dst) : p;
  }
  return route_data(pkt->dst);
}

void Router::collect_in_flight(std::vector<Packet*>& out) const {
  for (const auto& ip : in_) {
    if (!ip.data) continue;
    for (const auto& st : ip.vcs)
      for (const auto& bf : st.fifo)
        if (bf.flit.pkt) out.push_back(bf.flit.pkt);
  }
  for (const auto& sr : st_regs_)
    if (sr.flit.pkt) out.push_back(sr.flit.pkt);
}

bool Router::idle() const {
  if (!st_regs_.empty()) return false;
  // A non-Idle VC is exactly a set mask bit, and a buffered flit implies a
  // non-Idle VC (head flits flip Idle -> WaitVc before entering the FIFO,
  // and the tail leaves an empty FIFO behind when the VC goes Idle).
  for (const auto& ip : in_) {
    if (ip.wait_mask | ip.active_mask) return false;
  }
  return true;
}

int Router::powered_vcs() const {
  return announced_active_vcs_ + (draining_vc_ >= 0 ? 1 : 0);
}

void Router::vc_gating_tick(Cycle now) {
  if (!cfg_.vc_power_gating) return;

  // Complete an in-progress drain once the VC is empty everywhere and no
  // upstream allocator still owns it.
  if (draining_vc_ >= 0) {
    bool clear = true;
    for (auto& ip : in_) {
      if (!ip.data) continue;
      const VcState& st = ip.vcs[static_cast<size_t>(draining_vc_)];
      if (st.state != VcState::S::Idle || !st.fifo.empty()) {
        clear = false;
        break;
      }
      if (ip.upstream && ip.upstream->holds_vc_allocation(ip.upstream_out, draining_vc_)) {
        clear = false;
        break;
      }
    }
    if (clear) draining_vc_ = -1;
  }

  int busy = 0;
  for (const auto& ip : in_)
    busy += std::popcount(ip.wait_mask | ip.active_mask);
  busy_vc_integral_ += static_cast<std::uint64_t>(busy);

  if (now < epoch_start_ + static_cast<Cycle>(cfg_.vc_gate_epoch_cycles)) return;

  // Epoch metric: either the busy-VC fraction (the paper's utilisation
  // scheme) or the mean cycles a flit sat buffered before winning the
  // switch (the latency metric proposed as future work). Both map onto the
  // same activate/drain decision against their respective thresholds.
  double metric, high, low;
  if (cfg_.vc_gate_metric == NocConfig::VcGateMetric::Latency) {
    metric = residency_count_
                 ? static_cast<double>(residency_sum_) /
                       static_cast<double>(residency_count_)
                 : 0.0;
    high = cfg_.vc_latency_high;
    low = cfg_.vc_latency_low;
  } else {
    const double denom = static_cast<double>(cfg_.vc_gate_epoch_cycles) *
                         static_cast<double>(ports_present_) *
                         static_cast<double>(std::max(1, announced_active_vcs_));
    metric = static_cast<double>(busy_vc_integral_) / denom;
    high = cfg_.vc_threshold_high;
    low = cfg_.vc_threshold_low;
  }
  busy_vc_integral_ = 0;
  residency_sum_ = 0;
  residency_count_ = 0;
  epoch_start_ = now;

  if (metric > high) {
    if (draining_vc_ >= 0) {
      // Demand came back before the drain finished: return the VC to service.
      ++announced_active_vcs_;
      draining_vc_ = -1;
    } else if (announced_active_vcs_ < cfg_.num_vcs) {
      ++announced_active_vcs_;  // power-on is immediate
    }
  } else if (metric < low && draining_vc_ < 0 &&
             announced_active_vcs_ > cfg_.min_active_vcs) {
    draining_vc_ = announced_active_vcs_ - 1;
    --announced_active_vcs_;  // upstream allocators stop using it now
  }
}

void Router::accounting_tick(Cycle now) {
  (void)now;
  ++energy_.cycles;
  energy_.vc_active_cycles +=
      static_cast<std::uint64_t>(powered_vcs()) * static_cast<std::uint64_t>(kNumPorts);
  int links_out = 0;
  for (int o = 1; o < kNumPorts; ++o)  // skip Local
    if (out_[static_cast<size_t>(o)].data) ++links_out;
  energy_.link_active_cycles += static_cast<std::uint64_t>(links_out);
}

void Router::accumulate_idle_energy(EnergyCounters& e, std::uint64_t ncycles) const {
  // Exactly what accounting_tick adds per cycle for an idle router. The
  // gating state (powered_vcs) cannot change while asleep: activation and
  // drain both require an epoch boundary, and sched_next_event keeps the
  // router awake across every boundary where they could fire.
  e.cycles += ncycles;
  e.vc_active_cycles += ncycles * static_cast<std::uint64_t>(powered_vcs()) *
                        static_cast<std::uint64_t>(kNumPorts);
  int links_out = 0;
  for (int o = 1; o < kNumPorts; ++o)  // skip Local
    if (out_[static_cast<size_t>(o)].data) ++links_out;
  e.link_active_cycles += ncycles * static_cast<std::uint64_t>(links_out);
}

void Router::align_epochs(Cycle now) {
  if (!cfg_.vc_power_gating) return;
  const auto epoch = static_cast<Cycle>(cfg_.vc_gate_epoch_cycles);
  // Advance epoch_start_ past the boundaries that fell inside the sleep;
  // those fired as no-ops (zero integrals, no drain, announced == resting
  // level) under the full sweep. The `now - 1` keeps a boundary landing
  // exactly on the wake cycle for the live vc_gating_tick to process.
  if (now > epoch_start_)
    epoch_start_ += epoch * ((now - 1 - epoch_start_) / epoch);
}

bool Router::sched_busy() const { return draining_vc_ >= 0 || !idle(); }

Cycle Router::sched_next_event(Cycle now) const {
  Cycle next = kCycleNever;
  for (const auto& ip : in_)
    if (ip.data) next = std::min(next, ip.data->next_ready());
  for (const auto& op : out_)
    if (op.credit_in) next = std::min(next, op.credit_in->next_ready());
  if (cfg_.vc_power_gating) {
    // Wake for the next gating-epoch boundary whenever it is not provably a
    // no-op: pending integrals to fold, a drain in flight, a VC that could
    // be gated off, or thresholds degenerate enough that an all-idle epoch
    // still powers VCs on.
    const bool high_fires_idle =
        (cfg_.vc_gate_metric == NocConfig::VcGateMetric::Latency
             ? cfg_.vc_latency_high
             : cfg_.vc_threshold_high) < 0.0;
    if (busy_vc_integral_ > 0 || residency_count_ > 0 || residency_sum_ > 0 ||
        draining_vc_ >= 0 || announced_active_vcs_ > cfg_.min_active_vcs ||
        (high_fires_idle && announced_active_vcs_ < cfg_.num_vcs)) {
      const auto epoch = static_cast<Cycle>(cfg_.vc_gate_epoch_cycles);
      next = std::min(next, epoch_start_ + epoch * ((now - epoch_start_) / epoch + 1));
    }
  }
  return next;
}

EnergyCounters Router::settled_energy(Cycle now) const {
  EnergyCounters e = energy_;
  if (now > accounted_until_) accumulate_idle_energy(e, now - accounted_until_);
  return e;
}

void Router::settle_energy(Cycle through) {
  if (through + 1 > accounted_until_) {
    accumulate_idle_energy(energy_, through + 1 - accounted_until_);
    accounted_until_ = through + 1;
  }
}

void Router::save_state(StateWriter& w) const {
  HN_CHECK_MSG(idle(), "router checkpoint requires an idle router");
  w.section("router");
  for (const auto& ip : in_) {
    if (!ip.data) continue;
    // Idle VCs carry no observable state beyond the arbiter pointer: a head
    // arrival rewrites route/eligibility fields from scratch.
    w.i32(ip.sa_rr);
  }
  for (size_t p = 0; p < kNumPorts; ++p) {
    const auto& op = out_[p];
    if (!op.data) continue;
    for (const int c : op.credits) w.i32(c);
    for (size_t v = 0; v < op.vc_busy.size(); ++v) {
      w.b(op.vc_busy[v]);
      w.b(op.tail_sent[v]);
    }
    w.i32(op.sa_rr);
    w.i32(op.va_rr);
  }
  w.u64(flits_traversed_);
  w.u64(crc_flagged_flits_);
  w.i32(announced_active_vcs_);
  w.i32(draining_vc_);
  w.u64(busy_vc_integral_);
  w.u64(residency_sum_);
  w.u64(residency_count_);
  w.u64(epoch_start_);
  hybridnoc::save_state(w, energy_);
  w.u64(accounted_until_);
}

void Router::restore_state(StateReader& r) {
  r.section("router");
  for (auto& ip : in_) {
    if (!ip.data) continue;
    ip.sa_rr = r.i32();
  }
  for (size_t p = 0; p < kNumPorts; ++p) {
    auto& op = out_[p];
    if (!op.data) continue;
    for (int& c : op.credits) c = r.i32();
    for (size_t v = 0; v < op.vc_busy.size(); ++v) {
      op.vc_busy[v] = r.b();
      op.tail_sent[v] = r.b();
    }
    op.sa_rr = r.i32();
    op.va_rr = r.i32();
    // The congestion-metric cache keys off downstream gating state that may
    // have changed: recompute on first use.
    op.cached_active = -1;
    op.grantable_mask = 0;
    for (size_t v = 0; v < op.vc_busy.size(); ++v) {
      if (!op.vc_busy[v] && !op.tail_sent[v] &&
          op.credits[v] == cfg_.vc_buffer_depth) {
        op.grantable_mask |= 1u << v;
      }
    }
  }
  flits_traversed_ = r.u64();
  crc_flagged_flits_ = r.u64();
  announced_active_vcs_ = r.i32();
  if (announced_active_vcs_ < 1 || announced_active_vcs_ > cfg_.num_vcs) {
    throw StateError("router active-VC count out of range");
  }
  draining_vc_ = r.i32();
  busy_vc_integral_ = r.u64();
  residency_sum_ = r.u64();
  residency_count_ = r.u64();
  epoch_start_ = r.u64();
  hybridnoc::restore_state(r, energy_);
  accounted_until_ = r.u64();
}

}  // namespace hybridnoc
