// Active-set tick scheduler: tracks which components (NIs, routers) need
// their tick() called this cycle, so the network can skip idle ones and
// fast-forward over cycles where nothing at all happens.
//
// Correctness contract (what keeps the active-set path bit-identical to the
// legacy full sweep):
//  * A spurious wake is harmless: ticking an idle component is a
//    deterministic no-op — the per-cycle energy constants it would accrue
//    are folded in closed form when it sleeps (see accumulate_idle_energy).
//  * A missed wake is a bug. Every Channel::send registers a wake for the
//    channel's consumer at the item's ready cycle, and a component is only
//    deactivated when it reports itself not busy, together with a
//    recomputed next-event cycle covering everything not channel-driven
//    (epoch boundaries, lease expiry, scheduled circuit injections).
//  * Wakes later than a component's recorded next wake are dropped: the
//    next wake is always a lower bound on the first cycle where the
//    component can have observable work, and on *every* wake the component
//    either stays active or re-derives a fresh next-event from scratch.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace hybridnoc {

class TickScheduler {
 public:
  /// (Re)initialize for `num_components` components, all active. Starting
  /// everyone active means the first tick behaves exactly like a full sweep
  /// and components earn their way out of the active set.
  void reset(int num_components) {
    num_ = num_components;
    active_count_ = num_components;
    active_.assign(static_cast<size_t>(num_components), 1);
    next_wake_.assign(static_cast<size_t>(num_components), kCycleNever);
    heap_ = {};
    now_ = 0;
  }

  /// Start cycle `now`: promote every component whose wake is due.
  void begin_cycle(Cycle now) {
    now_ = now;
    while (!heap_.empty() && heap_.top().first <= now) {
      const auto [cycle, id] = heap_.top();
      heap_.pop();
      // Stale entries (superseded by an earlier wake, or the component was
      // activated through another path meanwhile) are simply dropped.
      if (!active_[static_cast<size_t>(id)] &&
          next_wake_[static_cast<size_t>(id)] == cycle) {
        activate(id);
      }
    }
  }

  /// Component `id` has (or may have) observable work at cycle `at`.
  /// Conservative: spurious wakes are harmless, missed wakes are not.
  void wake_at(int id, Cycle at) {
    const auto i = static_cast<size_t>(id);
    if (active_[i]) return;
    if (at <= now_) {
      activate(id);
      return;
    }
    if (at < next_wake_[i]) {
      next_wake_[i] = at;
      heap_.emplace(at, id);
    }
  }

  /// Should the network tick component `id` when its turn in the fixed
  /// sweep order comes around? The network walks ids ascending (NIs then
  /// routers, matching the legacy sweep) and skips unset flags. A component
  /// activated mid-sweep behaves exactly as under the full sweep: if its
  /// position is still ahead it ticks this cycle (and, like the legacy
  /// sweep, sees the same-cycle work), if already passed it ticks next
  /// cycle (like the legacy sweep, which had already ticked it).
  bool component_active(int id) const {
    return active_[static_cast<size_t>(id)] != 0;
  }

  /// Post-tick compaction: keep `busy(id)` components active; put the rest
  /// to sleep until `next_event(id)` (kCycleNever = wait for a channel wake).
  ///
  /// Each component is only *considered* for sleep on its sampling slot —
  /// once every kSamplePeriod cycles, staggered by id. Deactivating on an
  /// instantaneous not-busy reading is always safe (next_event re-derives
  /// the wake from scratch, channel fronts included), so sampling changes
  /// nothing about correctness; it just bounds the busy-polling cost to
  /// 1/kSamplePeriod of the active set per cycle, and doubles as
  /// hysteresis: components flickering between busy and idle (the common
  /// case under load) skip the sleep/wake round-trip — a next-event
  /// recomputation plus heap traffic that dwarfs the spurious no-op ticks
  /// sampling admits (harmless by the contract above). A fully idle network
  /// still quiesces within kSamplePeriod cycles of its last event.
  template <typename BusyFn, typename NextEventFn>
  void compact(BusyFn&& busy, NextEventFn&& next_event) {
    for (int id = 0; id < num_; ++id) {
      const auto i = static_cast<size_t>(id);
      if (!active_[i]) continue;
      if ((static_cast<Cycle>(id) & (kSamplePeriod - 1)) !=
          (now_ & (kSamplePeriod - 1))) {
        continue;
      }
      if (busy(id)) continue;
      active_[i] = 0;
      --active_count_;
      next_wake_[i] = kCycleNever;
      const Cycle at = next_event(id);
      if (at != kCycleNever) {
        HN_CHECK_MSG(at > now_, "next-event cycle must lie in the future");
        next_wake_[i] = at;
        heap_.emplace(at, id);
      }
    }
  }

  /// Earliest pending wake, or kCycleNever. Discards stale heap entries.
  Cycle next_wake_cycle() {
    while (!heap_.empty()) {
      const auto [cycle, id] = heap_.top();
      if (!active_[static_cast<size_t>(id)] &&
          next_wake_[static_cast<size_t>(id)] == cycle) {
        return cycle;
      }
      heap_.pop();
    }
    return kCycleNever;
  }

  bool anything_active() const { return active_count_ > 0; }

 private:
  /// Cycles between sleep-eligibility checks per component (power of two).
  static constexpr Cycle kSamplePeriod = 8;

  void activate(int id) {
    active_[static_cast<size_t>(id)] = 1;
    next_wake_[static_cast<size_t>(id)] = kCycleNever;
    ++active_count_;
  }

  using HeapEntry = std::pair<Cycle, int>;
  std::vector<std::uint8_t> active_;
  std::vector<Cycle> next_wake_;  ///< valid pending wake, kCycleNever if none
  int num_ = 0;
  int active_count_ = 0;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<HeapEntry>>
      heap_;
  Cycle now_ = 0;
};

}  // namespace hybridnoc
