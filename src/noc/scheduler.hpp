// Active-set tick scheduler: tracks which components (NIs, routers) need
// their tick() called this cycle, so the network can skip idle ones and
// fast-forward over cycles where nothing at all happens.
//
// Correctness contract (what keeps the active-set path bit-identical to the
// legacy full sweep):
//  * A spurious wake is harmless: ticking an idle component is a
//    deterministic no-op — the per-cycle energy constants it would accrue
//    are folded in closed form when it sleeps (see accumulate_idle_energy).
//  * A missed wake is a bug. Every Channel::send registers a wake for the
//    channel's consumer at the item's ready cycle, and a component is only
//    deactivated when it reports itself not busy, together with a
//    recomputed next-event cycle covering everything not channel-driven
//    (epoch boundaries, lease expiry, scheduled circuit injections).
//  * Wakes later than a component's recorded next wake are dropped: the
//    next wake is always a lower bound on the first cycle where the
//    component can have observable work, and on *every* wake the component
//    either stays active or re-derives a fresh next-event from scratch.
//
// The scheduler can serve either the whole network (reset: one flat id
// range) or one shard of the parallel tick engine (reset_ranges: the shard's
// NI ids plus its router ids, two disjoint global ranges mapped onto one
// dense internal slot space). All public methods take global component ids
// either way; with the flat range the mapping is the identity, so the
// single-scheduler path compiles to exactly the pre-shard arithmetic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace hybridnoc {

class TickScheduler {
 public:
  /// (Re)initialize for `num_components` components, all active. Starting
  /// everyone active means the first tick behaves exactly like a full sweep
  /// and components earn their way out of the active set.
  void reset(int num_components) {
    lo1_ = 0;
    lo2_ = num_components;  // degenerate split: slot(id) == id everywhere
    count1_ = num_components;
    init(num_components);
  }

  /// Per-shard form (parallel tick engine): this scheduler owns the global
  /// NI ids [ni_lo, ni_hi) and the global router ids
  /// [num_nodes + ni_lo, num_nodes + ni_hi). Ascending internal slot order
  /// is the shard's NIs then its routers — the same relative order the
  /// global sweep visits them in.
  void reset_ranges(int ni_lo, int ni_hi, int num_nodes) {
    HN_CHECK(0 <= ni_lo && ni_lo < ni_hi && ni_hi <= num_nodes);
    lo1_ = ni_lo;
    lo2_ = num_nodes + ni_lo;
    count1_ = ni_hi - ni_lo;
    init(2 * count1_);
  }

  /// Start cycle `now`: promote every component whose wake is due.
  void begin_cycle(Cycle now) {
    now_ = now;
    while (!heap_.empty() && heap_.top().first <= now) {
      const auto [cycle, slot] = heap_.top();
      heap_.pop();
      // Stale entries (superseded by an earlier wake, or the component was
      // activated through another path meanwhile) are simply dropped.
      if (!active_[static_cast<size_t>(slot)] &&
          next_wake_[static_cast<size_t>(slot)] == cycle) {
        activate(slot);
      }
    }
  }

  /// Component `id` has (or may have) observable work at cycle `at`.
  /// Conservative: spurious wakes are harmless, missed wakes are not.
  void wake_at(int id, Cycle at) {
    const auto i = static_cast<size_t>(slot_of(id));
    if (active_[i]) return;
    if (at <= now_) {
      activate(static_cast<int>(i));
      return;
    }
    if (at < next_wake_[i]) {
      next_wake_[i] = at;
      heap_.emplace(at, static_cast<int>(i));
    }
  }

  /// Should the network tick component `id` when its turn in the fixed
  /// sweep order comes around? The network walks ids ascending (NIs then
  /// routers, matching the legacy sweep) and skips unset flags. A component
  /// activated mid-sweep behaves exactly as under the full sweep: if its
  /// position is still ahead it ticks this cycle (and, like the legacy
  /// sweep, sees the same-cycle work), if already passed it ticks next
  /// cycle (like the legacy sweep, which had already ticked it).
  bool component_active(int id) const {
    return active_[static_cast<size_t>(slot_of(id))] != 0;
  }

  /// Post-tick compaction: keep `busy(id)` components active; put the rest
  /// to sleep until `next_event(id)` (kCycleNever = wait for a channel wake).
  ///
  /// Each component is only *considered* for sleep on its sampling slot —
  /// once every kSamplePeriod cycles, staggered by global id. Deactivating
  /// on an instantaneous not-busy reading is always safe (next_event
  /// re-derives the wake from scratch, channel fronts included), so sampling
  /// changes nothing about correctness; it just bounds the busy-polling cost
  /// to 1/kSamplePeriod of the active set per cycle, and doubles as
  /// hysteresis: components flickering between busy and idle (the common
  /// case under load) skip the sleep/wake round-trip — a next-event
  /// recomputation plus heap traffic that dwarfs the spurious no-op ticks
  /// sampling admits (harmless by the contract above). A fully idle network
  /// still quiesces within kSamplePeriod cycles of its last event.
  template <typename BusyFn, typename NextEventFn>
  void compact(BusyFn&& busy, NextEventFn&& next_event) {
    for (int slot = 0; slot < num_; ++slot) {
      const auto i = static_cast<size_t>(slot);
      if (!active_[i]) continue;
      const int id = id_of(slot);
      if ((static_cast<Cycle>(id) & (kSamplePeriod - 1)) !=
          (now_ & (kSamplePeriod - 1))) {
        continue;
      }
      if (busy(id)) continue;
      active_[i] = 0;
      --active_count_;
      next_wake_[i] = kCycleNever;
      const Cycle at = next_event(id);
      if (at != kCycleNever) {
        HN_CHECK_MSG(at > now_, "next-event cycle must lie in the future");
        next_wake_[i] = at;
        heap_.emplace(at, slot);
      }
    }
  }

  /// Earliest pending wake, or kCycleNever. Discards stale heap entries.
  Cycle next_wake_cycle() {
    while (!heap_.empty()) {
      const auto [cycle, slot] = heap_.top();
      if (!active_[static_cast<size_t>(slot)] &&
          next_wake_[static_cast<size_t>(slot)] == cycle) {
        return cycle;
      }
      heap_.pop();
    }
    return kCycleNever;
  }

  bool anything_active() const { return active_count_ > 0; }

 private:
  /// Cycles between sleep-eligibility checks per component (power of two).
  static constexpr Cycle kSamplePeriod = 8;

  void init(int num_slots) {
    num_ = num_slots;
    active_count_ = num_slots;
    active_.assign(static_cast<size_t>(num_slots), 1);
    next_wake_.assign(static_cast<size_t>(num_slots), kCycleNever);
    heap_ = {};
    now_ = 0;
  }

  /// Global component id -> dense internal slot. With the flat mapping
  /// (lo1_ = 0, lo2_ = count1_ = n) both branches are the identity.
  int slot_of(int id) const {
    return id < lo2_ ? id - lo1_ : count1_ + (id - lo2_);
  }
  int id_of(int slot) const {
    return slot < count1_ ? lo1_ + slot : lo2_ + (slot - count1_);
  }

  void activate(int slot) {
    active_[static_cast<size_t>(slot)] = 1;
    next_wake_[static_cast<size_t>(slot)] = kCycleNever;
    ++active_count_;
  }

  using HeapEntry = std::pair<Cycle, int>;  ///< (wake cycle, internal slot)
  std::vector<std::uint8_t> active_;
  std::vector<Cycle> next_wake_;  ///< valid pending wake, kCycleNever if none
  int num_ = 0;
  int active_count_ = 0;
  int lo1_ = 0;     ///< first global id of range 1 (the NIs)
  int lo2_ = 0;     ///< first global id of range 2 (the routers)
  int count1_ = 0;  ///< size of range 1
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<HeapEntry>>
      heap_;
  Cycle now_ = 0;
};

}  // namespace hybridnoc
