// Active-set tick scheduler: tracks which components (NIs, routers) need
// their tick() called this cycle, so the network can skip idle ones and
// fast-forward over cycles where nothing at all happens.
//
// Correctness contract (what keeps the active-set path bit-identical to the
// legacy full sweep):
//  * A spurious wake is harmless: ticking an idle component is a
//    deterministic no-op — the per-cycle energy constants it would accrue
//    are folded in closed form when it sleeps (see accumulate_idle_energy).
//  * A missed wake is a bug. Every Channel::send registers a wake for the
//    channel's consumer at the item's ready cycle, and a component is only
//    deactivated when it reports itself not busy, together with a
//    recomputed next-event cycle covering everything not channel-driven
//    (epoch boundaries, lease expiry, scheduled circuit injections).
//  * Wakes later than a component's recorded next wake are dropped: the
//    next wake is always a lower bound on the first cycle where the
//    component can have observable work, and on *every* wake the component
//    either stays active or re-derives a fresh next-event from scratch.
//
// Cost model: the scheduler maintains a sorted run list of the active slots
// so a cycle's dispatch is O(active) — not O(components) — which is what
// lets a 64x64 mesh tick at 8x8 cost when only a handful of nodes are busy.
// sweep() walks the run list in ascending slot order (identical to the
// legacy full sweep's visit order); components that activate mid-sweep at a
// position the cursor has not reached yet are spliced in through a small
// side-heap, so they tick this cycle exactly as the flag-scan would have
// ticked them, and components that activate at an already-passed position
// wait for the next cycle, again exactly like the flag-scan.
//
// The scheduler can serve either the whole network (reset: one flat id
// range) or one shard of the parallel tick engine (reset_ranges: the shard's
// NI ids plus its router ids, two disjoint global ranges mapped onto one
// dense internal slot space). All public methods take global component ids
// either way; with the flat range the mapping is the identity, so the
// single-scheduler path compiles to exactly the pre-shard arithmetic.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace hybridnoc {

class TickScheduler {
 public:
  /// (Re)initialize for `num_components` components, all active. Starting
  /// everyone active means the first tick behaves exactly like a full sweep
  /// and components earn their way out of the active set.
  void reset(int num_components) {
    lo1_ = 0;
    lo2_ = num_components;  // degenerate split: slot(id) == id everywhere
    count1_ = num_components;
    init(num_components);
  }

  /// Per-shard form (parallel tick engine): this scheduler owns the global
  /// NI ids [ni_lo, ni_hi) and the global router ids
  /// [num_nodes + ni_lo, num_nodes + ni_hi). Ascending internal slot order
  /// is the shard's NIs then its routers — the same relative order the
  /// global sweep visits them in.
  void reset_ranges(int ni_lo, int ni_hi, int num_nodes) {
    HN_CHECK(0 <= ni_lo && ni_lo < ni_hi && ni_hi <= num_nodes);
    lo1_ = ni_lo;
    lo2_ = num_nodes + ni_lo;
    count1_ = ni_hi - ni_lo;
    init(2 * count1_);
  }

  /// Start cycle `now`: promote every component whose wake is due.
  void begin_cycle(Cycle now) {
    now_ = now;
    while (!heap_.empty() && heap_.top().first <= now) {
      const auto [cycle, slot] = heap_.top();
      heap_.pop();
      // Stale entries (superseded by an earlier wake, or the component was
      // activated through another path meanwhile) are simply dropped.
      if (!active_[static_cast<size_t>(slot)] &&
          next_wake_[static_cast<size_t>(slot)] == cycle) {
        activate(slot);
      }
    }
  }

  /// Component `id` has (or may have) observable work at cycle `at`.
  /// Conservative: spurious wakes are harmless, missed wakes are not.
  void wake_at(int id, Cycle at) {
    const auto i = static_cast<size_t>(slot_of(id));
    if (active_[i]) return;
    if (at <= now_) {
      activate(static_cast<int>(i));
      return;
    }
    if (at < next_wake_[i]) {
      next_wake_[i] = at;
      heap_.emplace(at, static_cast<int>(i));
    }
  }

  /// Is component `id` marked active right now? Only the parallel engine's
  /// serial fallback still polls this per position (its dispatch *order* is
  /// the observable artifact there); the hot paths drain the run list via
  /// sweep() instead.
  bool component_active(int id) const {
    return active_[static_cast<size_t>(slot_of(id))] != 0;
  }

  /// Dispatch the cycle: call `tick(id)` for every active component in
  /// ascending slot order (NIs then routers — the legacy sweep order),
  /// touching only the run list, never the full slot range. Components
  /// activated from inside a tick behave exactly as under the legacy
  /// flag-scan: a position still ahead of the cursor ticks this cycle (the
  /// side-heap splices it in in order), an already-passed position ticks
  /// next cycle.
  template <typename TickFn>
  void sweep(TickFn&& tick) {
    merge_incoming();
    in_sweep_ = true;
    size_t w = 0;
    const size_t n = run_list_.size();
    for (size_t r = 0; r < n; ++r) {
      const int slot = run_list_[r];
      // Mid-sweep activations at positions before `slot` run first so the
      // overall dispatch order stays ascending.
      while (!sweep_extra_.empty() && sweep_extra_.top() < slot) {
        cursor_ = sweep_extra_.top();
        sweep_extra_.pop();
        tick(id_of(cursor_));
      }
      cursor_ = slot;
      if (!active_[static_cast<size_t>(slot)]) {
        // Stale entry (slept since it was listed): drop it. The membership
        // flag clears with it, so a later re-activation re-lists the slot.
        in_list_[static_cast<size_t>(slot)] = 0;
        continue;
      }
      run_list_[w++] = slot;
      tick(id_of(slot));
    }
    while (!sweep_extra_.empty()) {
      cursor_ = sweep_extra_.top();
      sweep_extra_.pop();
      tick(id_of(cursor_));
    }
    run_list_.resize(w);
    in_sweep_ = false;
  }

  /// Post-tick compaction: keep `busy(id)` components active; put the rest
  /// to sleep until `next_event(id)` (kCycleNever = wait for a channel wake).
  /// Walks only the run list (plus anything that activated since the sweep),
  /// so its cost tracks the active set, not the component count.
  ///
  /// Each component is only *considered* for sleep on its sampling slot —
  /// once every kSamplePeriod cycles, staggered by global id. Deactivating
  /// on an instantaneous not-busy reading is always safe (next_event
  /// re-derives the wake from scratch, channel fronts included), so sampling
  /// changes nothing about correctness; it just bounds the busy-polling cost
  /// to 1/kSamplePeriod of the active set per cycle, and doubles as
  /// hysteresis: components flickering between busy and idle (the common
  /// case under load) skip the sleep/wake round-trip — a next-event
  /// recomputation plus heap traffic that dwarfs the spurious no-op ticks
  /// sampling admits (harmless by the contract above). A fully idle network
  /// still quiesces within kSamplePeriod cycles of its last event.
  template <typename BusyFn, typename NextEventFn>
  void compact(BusyFn&& busy, NextEventFn&& next_event) {
    merge_incoming();
    size_t w = 0;
    const size_t n = run_list_.size();
    for (size_t r = 0; r < n; ++r) {
      const int slot = run_list_[r];
      const auto i = static_cast<size_t>(slot);
      if (!active_[i]) {
        in_list_[i] = 0;  // stale entry left behind by an earlier pass
        continue;
      }
      const int id = id_of(slot);
      if ((static_cast<Cycle>(id) & (kSamplePeriod - 1)) ==
              (now_ & (kSamplePeriod - 1)) &&
          !busy(id)) {
        active_[i] = 0;
        --active_count_;
        in_list_[i] = 0;
        next_wake_[i] = kCycleNever;
        const Cycle at = next_event(id);
        if (at != kCycleNever) {
          HN_CHECK_MSG(at > now_, "next-event cycle must lie in the future");
          next_wake_[i] = at;
          heap_.emplace(at, slot);
        }
        continue;  // removed from the run list
      }
      run_list_[w++] = slot;
    }
    run_list_.resize(w);
  }

  /// Earliest pending wake, or kCycleNever. Discards stale heap entries.
  Cycle next_wake_cycle() {
    while (!heap_.empty()) {
      const auto [cycle, slot] = heap_.top();
      if (!active_[static_cast<size_t>(slot)] &&
          next_wake_[static_cast<size_t>(slot)] == cycle) {
        return cycle;
      }
      heap_.pop();
    }
    return kCycleNever;
  }

  bool anything_active() const { return active_count_ > 0; }
  int active_count() const { return active_count_; }

 private:
  /// Cycles between sleep-eligibility checks per component (power of two).
  static constexpr Cycle kSamplePeriod = 8;

  void init(int num_slots) {
    num_ = num_slots;
    active_count_ = num_slots;
    active_.assign(static_cast<size_t>(num_slots), 1);
    next_wake_.assign(static_cast<size_t>(num_slots), kCycleNever);
    // Everyone starts active, so the run list starts as the full slot range.
    run_list_.resize(static_cast<size_t>(num_slots));
    for (int s = 0; s < num_slots; ++s) run_list_[static_cast<size_t>(s)] = s;
    in_list_.assign(static_cast<size_t>(num_slots), 1);
    incoming_.clear();
    sweep_extra_ = {};
    in_sweep_ = false;
    cursor_ = 0;
    heap_ = {};
    now_ = 0;
  }

  /// Fold newly-listed slots into the sorted run list. Incoming batches are
  /// tiny relative to the run list (a slot enters at most once between
  /// merges), so sort-small + inplace_merge is the cheap path.
  void merge_incoming() {
    if (incoming_.empty()) return;
    std::sort(incoming_.begin(), incoming_.end());
    const auto mid = static_cast<std::ptrdiff_t>(run_list_.size());
    run_list_.insert(run_list_.end(), incoming_.begin(), incoming_.end());
    std::inplace_merge(run_list_.begin(), run_list_.begin() + mid,
                       run_list_.end());
    incoming_.clear();
  }

  /// Global component id -> dense internal slot. With the flat mapping
  /// (lo1_ = 0, lo2_ = count1_ = n) both branches are the identity.
  int slot_of(int id) const {
    return id < lo2_ ? id - lo1_ : count1_ + (id - lo2_);
  }
  int id_of(int slot) const {
    return slot < count1_ ? lo1_ + slot : lo2_ + (slot - count1_);
  }

  void activate(int slot) {
    const auto i = static_cast<size_t>(slot);
    active_[i] = 1;
    next_wake_[i] = kCycleNever;
    ++active_count_;
    if (!in_list_[i]) {
      in_list_[i] = 1;
      incoming_.push_back(slot);
      // Activated from inside a tick at a position the cursor has not
      // reached: splice it into this sweep so it runs this cycle, exactly
      // where the legacy flag-scan would have found its flag set. (If the
      // slot is already listed ahead of the cursor, the run-list entry
      // itself will dispatch it — entries behind the cursor were either
      // dispatched or dropped with their membership flag cleared.)
      if (in_sweep_ && slot > cursor_) sweep_extra_.push(slot);
    }
  }

  using HeapEntry = std::pair<Cycle, int>;  ///< (wake cycle, internal slot)
  std::vector<std::uint8_t> active_;
  std::vector<Cycle> next_wake_;  ///< valid pending wake, kCycleNever if none
  /// Sorted slots the next sweep/compact must visit: every active slot plus
  /// stale leftovers (pruned lazily on the next walk).
  std::vector<int> run_list_;
  std::vector<int> incoming_;  ///< newly-listed slots awaiting merge
  std::vector<std::uint8_t> in_list_;  ///< slot is in run_list_ or incoming_
  /// Mid-sweep activations ahead of the cursor, dispatched in slot order.
  std::priority_queue<int, std::vector<int>, std::greater<int>> sweep_extra_;
  bool in_sweep_ = false;
  int cursor_ = 0;
  int num_ = 0;
  int active_count_ = 0;
  int lo1_ = 0;     ///< first global id of range 1 (the NIs)
  int lo2_ = 0;     ///< first global id of range 2 (the routers)
  int count1_ = 0;  ///< size of range 1
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<HeapEntry>>
      heap_;
  Cycle now_ = 0;
};

}  // namespace hybridnoc
