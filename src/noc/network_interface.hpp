// Network interface (NI): packetization, injection VC management, ejection
// re-assembly and delivery. One NI per tile, attached to its router's Local
// port. The NI is the upstream VC allocator for the router's local input
// port and the downstream credit source for the router's ejection port.
//
// The hybrid NI in src/tdm extends this class with the circuit-switched
// machinery: connection table, setup/teardown protocol, slot-timed CS
// injection, the switching decision, and path sharing.
#pragma once

#include <array>
#include <functional>
#include <vector>

#include "common/config.hpp"
#include "common/geometry.hpp"
#include "common/pool.hpp"
#include "common/ring.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "noc/channel.hpp"
#include "noc/router.hpp"
#include "power/energy_model.hpp"

namespace hybridnoc {

class StateWriter;
class StateReader;

/// Called when a data packet fully arrives at its (final) destination NI.
using DeliverFn = std::function<void(const PacketPtr&, Cycle)>;

class NetworkInterface : public VcHolder {
 public:
  NetworkInterface(const NocConfig& cfg, NodeId id, const Mesh& mesh);
  ~NetworkInterface() override = default;

  NetworkInterface(const NetworkInterface&) = delete;
  NetworkInterface& operator=(const NetworkInterface&) = delete;

  void connect(FlitChannel* inject, CreditChannel* inject_credits_in,
               FlitChannel* eject, CreditChannel* eject_credits_out,
               Router* router);

  /// Hardware fault model (owned by the Network; nullptr = perfect fabric).
  /// Enables the injection-side reachability check and unreachable give-ups.
  void set_fault_model(const FaultModel* fm) { faults_ = fm; }

  /// Queue a packet for transmission. The NI owns switching-mode selection;
  /// the caller only sets src/dst/type/class (and num_flits for data).
  virtual void send(PacketPtr pkt, Cycle now);

  virtual void tick(Cycle now);

  void set_deliver_handler(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Parallel tick engine: the deliver handler is the one external callback
  /// a compute-phase tick would invoke, and handlers are shared across NIs
  /// (stats maps, latency histograms). Staging defers the call — counters
  /// still update in place — and the engine drains all NIs in ascending id
  /// order after the cycle barrier, on one thread. Handlers that inject
  /// traffic synchronously are not supported in staged mode; all in-tree
  /// handlers are passive observers.
  void set_stage_deliveries(bool on) { stage_deliveries_ = on; }
  void flush_staged_deliveries() {
    for (auto& [pkt, cycle] : staged_deliveries_) deliver_(pkt, cycle);
    staged_deliveries_.clear();
  }

  NodeId id() const { return id_; }
  int inject_queue_depth() const { return static_cast<int>(queue_.size()); }

  /// No queued, in-flight or partially assembled traffic at this NI.
  virtual bool idle() const;

  /// Checkpoint this NI's state. Requires idle() — containers holding live
  /// packets (queue, assembly, e2e outstanding) must be empty; everything
  /// else (counters, RNG, arbiter pointers, the e2e dedup set) serializes.
  virtual void save_state(StateWriter& w) const;
  /// Restore into a freshly constructed NI of the same configuration.
  /// Throws StateError on malformed archives; never aborts.
  virtual void restore_state(StateReader& r);

  /// Freeze proactive protocol activity (circuit setup initiation) so a
  /// simulation can drain; data in flight still completes. Base NI: no-op.
  virtual void set_policy_frozen(bool frozen) { (void)frozen; }

  // VcHolder: allocation state of the router's local input VCs.
  bool holds_vc_allocation(Port out_port, int vc) const override;

  /// Append every packet this NI still pins through a flight anchor
  /// (partial assemblies; the hybrid NI adds its CS injection plan) to
  /// `out`. Teardown support — see Router::collect_in_flight.
  virtual void collect_in_flight(std::vector<Packet*>& out) const;

  const int* eject_active_vcs_ptr() const { return &eject_active_vcs_; }

  // --- active-set scheduling (see noc/scheduler.hpp for the contract) ---
  /// The scheduler the NI wakes itself through when work is handed to it
  /// from outside the tick loop (send / send_priority).
  void set_scheduler(TickScheduler* sched, int self_id) {
    sched_ = sched;
    sched_id_ = self_id;
  }
  /// Must this NI be ticked next cycle regardless of channel activity?
  virtual bool sched_busy() const;
  /// Next cycle > now with observable work no Channel::send wake covers.
  virtual Cycle sched_next_event(Cycle now) const;
  /// energy() plus lazily folded idle-cycle constants as of cycle `now`.
  EnergyCounters settled_energy(Cycle now) const;
  /// Fold idle-cycle constants through cycle `through` inclusive (call
  /// before a per-cycle energy rate changes under a sleeping NI).
  void settle_energy(Cycle through);

  /// Starvation watchdog sweep: flag (once) every non-config packet that has
  /// been queued or unacknowledged for `max_age`+ cycles. Returns the number
  /// newly flagged; the running total is watchdog_flagged().
  int watchdog_scan(Cycle now, Cycle max_age);

  // --- statistics ---
  std::uint64_t data_packets_sent() const { return data_packets_sent_; }
  std::uint64_t data_packets_delivered() const { return data_packets_delivered_; }
  // end-to-end recovery (all zero when cfg.e2e_recovery is off)
  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t retx_give_ups() const { return retx_give_ups_; }
  std::uint64_t crc_squashed_packets() const { return crc_squashed_packets_; }
  std::uint64_t e2e_acks_sent() const { return e2e_acks_sent_; }
  std::uint64_t e2e_duplicates_dropped() const { return e2e_duplicates_dropped_; }
  std::uint64_t unreachable_failed() const { return unreachable_failed_; }
  std::uint64_t watchdog_flagged() const { return watchdog_flagged_; }
  /// Packets sent but not yet end-to-end acknowledged.
  std::size_t e2e_outstanding() const { return outstanding_.size(); }
  std::uint64_t ps_data_flits_injected() const { return ps_data_flits_; }
  std::uint64_t cs_data_flits_injected() const { return cs_data_flits_; }
  std::uint64_t config_flits_injected() const { return config_flits_; }
  /// Data flits injected on behalf of one producer class (PS + CS).
  std::uint64_t flits_of_class(TrafficClass c) const {
    return flits_by_class_[static_cast<size_t>(c)];
  }
  const EnergyCounters& energy() const { return energy_; }

 protected:
  /// Injection-side state of one local-input VC at the router.
  struct OutVc {
    bool busy = false;
    bool tail_sent = false;
    int credits = 0;
    PacketPtr pkt;
    int next_seq = 0;
  };

  // --- hooks for the hybrid NI ---
  /// Every flit popped off the ejection channel passes through here before
  /// assembly (the hybrid NI tracks in-flight circuit-switched flits).
  virtual void on_eject_flit(const Flit& flit, Cycle now) {
    (void)flit;
    (void)now;
  }
  /// Claim this cycle's injection-channel write before packet-switched
  /// traffic gets it (CS flits are slot-timed and take priority). Returns
  /// true if the cycle was used.
  virtual bool circuit_inject(Cycle now) { (void)now; return false; }
  /// A config packet (setup/ack) was delivered to this NI.
  virtual void handle_config(const PacketPtr& pkt, Cycle now);
  /// A data packet fully reassembled here. Default delivers; the hybrid NI
  /// intercepts vicinity-shared packets for their hop-off re-injection.
  virtual void handle_delivery(const PacketPtr& pkt, Cycle now);
  virtual void leakage_tick(Cycle now) { (void)now; }
  /// Per-idle-cycle energy constants for `ncycles` slept cycles. The base
  /// NI accrues none (its counters are all event counts); the hybrid NI
  /// adds its DLT leakage integral.
  virtual void accumulate_idle_energy(EnergyCounters& e, std::uint64_t ncycles) const {
    (void)e;
    (void)ncycles;
  }
  /// Re-anchor epoch state after a sleep (hybrid NI: the policy epoch).
  virtual void align_epochs(Cycle now) { (void)now; }
  /// Patch derived counters at query time (hybrid NI: dlt_accesses, which
  /// the full sweep refreshes from the DLT every cycle).
  virtual void finalize_energy(EnergyCounters& e) const { (void)e; }
  /// The end-to-end layer retransmitted a packet toward `dst` (hybrid NI:
  /// bump the circuit's missed-slot streak) / saw an ack from `dst` come
  /// back (hybrid NI: clear the streak).
  virtual void on_e2e_retx(const PacketPtr& clone, Cycle now) {
    (void)clone;
    (void)now;
  }
  virtual void on_e2e_acked(NodeId dst, Cycle now) {
    (void)dst;
    (void)now;
  }
  /// A fully assembled packet was squashed because a flit arrived CRC-dirty
  /// (the hybrid NI retires squashed config messages with the controller).
  virtual void on_packet_squashed(const PacketPtr& pkt, Cycle now) {
    (void)pkt;
    (void)now;
  }
  /// Wake this NI at `at` (no-op under the legacy full sweep).
  void sched_wake(Cycle at) {
    if (sched_) sched_->wake_at(sched_id_, at);
  }

  /// Injection-side admission for the fault layer: fails the packet cleanly
  /// (returns false) when its destination is partitioned off, otherwise
  /// registers it with the end-to-end recovery table. Idempotent, so the
  /// hybrid NI can admit before its circuit try and the packet-switched
  /// fallback can admit again harmlessly.
  bool e2e_admit(const PacketPtr& pkt, Cycle now);
  /// A copy of a tracked packet just entered the fabric (packet-switched
  /// head flit launched, or a circuit transmission was slotted): arm its
  /// retransmission timer. Queue residency does not count as transmission.
  void e2e_launched(const PacketPtr& pkt, Cycle now);

  void deliver(const PacketPtr& pkt, Cycle now);
  /// Enqueue at the front (used for hop-off / bounced packets).
  void send_priority(PacketPtr pkt, Cycle now);
  /// Fresh packet id from this NI's private id space (bit 44 and up encode
  /// the node, so NI-generated ids never collide with workload-chosen ids).
  PacketId fresh_packet_id() {
    return (static_cast<PacketId>(id_) + 1) << 44 | local_ids_++;
  }
  /// EWMA of (injection cycle - creation cycle) over recent packet-switched
  /// head flits: a cheap, locally observable congestion signal the switching
  /// decision uses to estimate packet-switched latency inflation.
  double ewma_inject_delay() const { return ewma_inject_delay_; }

  const NocConfig cfg_;
  const NodeId id_;
  const Mesh& mesh_;
  Router* router_ = nullptr;
  const FaultModel* faults_ = nullptr;

  FlitChannel* inject_ = nullptr;
  CreditChannel* inject_credits_in_ = nullptr;
  FlitChannel* eject_ = nullptr;
  CreditChannel* eject_credits_out_ = nullptr;

  RingDeque<PacketPtr> queue_;
  std::vector<OutVc> out_vcs_;
  int inject_rr_ = 0;
  /// See Router::accounted_until_: cycles with energy constants folded in.
  Cycle accounted_until_ = 0;
  TickScheduler* sched_ = nullptr;
  int sched_id_ = -1;

  EnergyCounters energy_;
  std::array<std::uint64_t, 4> flits_by_class_{};
  std::uint64_t data_packets_sent_ = 0;
  std::uint64_t data_packets_delivered_ = 0;
  std::uint64_t ps_data_flits_ = 0;
  std::uint64_t cs_data_flits_ = 0;
  std::uint64_t config_flits_ = 0;

 private:
  void receive_credits(Cycle now);
  void eject_tick(Cycle now);
  void inject_tick(Cycle now);
  bool try_start_packet(Cycle now);

  // --- end-to-end recovery (cfg.e2e_recovery) ---
  /// One unacknowledged transmission at its origin NI.
  struct Outstanding {
    PacketPtr pkt;       ///< the original packet (retransmits clone it)
    Cycle next_retx = 0;
    Cycle backoff = 0;   ///< current wait; doubles per attempt up to the cap
    int attempts = 0;    ///< retransmissions already sent
  };
  void e2e_track(const PacketPtr& pkt, Cycle now);
  void e2e_tick(Cycle now);
  void e2e_acked(PacketId key, Cycle now);
  void send_e2e_ack(const PacketPtr& pkt, PacketId key, Cycle now);

  /// One partially reassembled packet. The raw pointer stays valid because
  /// the packet's flight anchor is released only when its last flit ejects —
  /// the same event that completes the assembly.
  struct Assembly {
    int got = 0;
    Packet* pkt = nullptr;
  };
  PooledUMap<PacketId, Assembly> assembly_;
  DeliverFn deliver_;
  bool stage_deliveries_ = false;
  std::vector<std::pair<PacketPtr, Cycle>> staged_deliveries_;
  int eject_active_vcs_;
  PacketId local_ids_ = 0;
  double ewma_inject_delay_ = 0.0;

  /// Keyed by original packet id (the end-to-end sequence number).
  PooledUMap<PacketId, Outstanding> outstanding_;
  /// Packet ids that arrived with at least one CRC-flagged flit; the whole
  /// packet is squashed at assembly.
  PooledUSet<PacketId> poisoned_;
  /// Destination-side dedup: end-to-end keys already delivered here.
  PooledUSet<PacketId> e2e_seen_;
  /// Keys with an ack built but not yet launched (ack coalescing): a burst
  /// of duplicate copies yields one queued ack, not one per copy.
  PooledUSet<PacketId> acks_pending_;
  /// Scratch for e2e_tick's deterministic due-entry sweep (member so the
  /// steady-state loop reuses its capacity instead of reallocating).
  std::vector<PacketId> e2e_due_;
  Rng e2e_rng_;  ///< retransmission jitter (only drawn when e2e is on)

  std::uint64_t retransmits_ = 0;
  std::uint64_t retx_give_ups_ = 0;
  std::uint64_t crc_squashed_packets_ = 0;
  std::uint64_t e2e_acks_sent_ = 0;
  std::uint64_t e2e_duplicates_dropped_ = 0;
  std::uint64_t unreachable_failed_ = 0;
  std::uint64_t watchdog_flagged_ = 0;
};

}  // namespace hybridnoc
