#include "noc/network_interface.hpp"

#include <algorithm>

#include "common/pool.hpp"
#include "common/state_io.hpp"
#include "noc/fault_model.hpp"

namespace hybridnoc {

NetworkInterface::NetworkInterface(const NocConfig& cfg, NodeId id, const Mesh& mesh)
    : cfg_(cfg), id_(id), mesh_(mesh), eject_active_vcs_(cfg.num_vcs),
      e2e_rng_(cfg.fault_seed * 0x9e3779b97f4a7c15ULL +
               static_cast<std::uint64_t>(id) + 0x5151) {
  out_vcs_.resize(static_cast<size_t>(cfg_.num_vcs));
  for (auto& v : out_vcs_) v.credits = cfg_.vc_buffer_depth;
}

void NetworkInterface::connect(FlitChannel* inject, CreditChannel* inject_credits_in,
                               FlitChannel* eject, CreditChannel* eject_credits_out,
                               Router* router) {
  inject_ = inject;
  inject_credits_in_ = inject_credits_in;
  eject_ = eject;
  eject_credits_out_ = eject_credits_out;
  router_ = router;
}

void NetworkInterface::send(PacketPtr pkt, Cycle now) {
  HN_CHECK(pkt && mesh_.valid(pkt->dst) && pkt->src == id_);
  pkt->created = (pkt->created == 0) ? now : pkt->created;
  if (pkt->final_dst == kInvalidNode) pkt->final_dst = pkt->dst;
  if (!e2e_admit(pkt, now)) return;
  queue_.push_back(std::move(pkt));
  sched_wake(now);  // new work: make sure this NI ticks at `now`
}

void NetworkInterface::send_priority(PacketPtr pkt, Cycle now) {
  HN_CHECK(pkt && mesh_.valid(pkt->dst));
  if (pkt->final_dst == kInvalidNode) pkt->final_dst = pkt->dst;
  queue_.push_front(std::move(pkt));
  sched_wake(now);
}

bool NetworkInterface::idle() const {
  // Outstanding unacked packets keep the NI non-quiescent: a drain must wait
  // for every ack, retransmission or give-up to resolve.
  if (!queue_.empty() || !assembly_.empty() || !outstanding_.empty()) {
    return false;
  }
  for (const auto& v : out_vcs_)
    if (v.pkt) return false;
  return true;
}

bool NetworkInterface::holds_vc_allocation(Port out_port, int vc) const {
  HN_CHECK(out_port == Port::Local);
  return out_vcs_[static_cast<size_t>(vc)].busy;
}

void NetworkInterface::collect_in_flight(std::vector<Packet*>& out) const {
  for (const auto& [id, partial] : assembly_)
    if (partial.pkt) out.push_back(partial.pkt);
}

void NetworkInterface::tick(Cycle now) {
  if (now > accounted_until_) {
    accumulate_idle_energy(energy_, now - accounted_until_);
    align_epochs(now);
  }
  accounted_until_ = now + 1;
  receive_credits(now);
  eject_tick(now);
  // Retransmission timers run after ejection so an ack arriving this cycle
  // cancels a retransmit due this cycle, and before injection so a fresh
  // retransmit can still leave this cycle.
  if (cfg_.e2e_recovery) e2e_tick(now);
  inject_tick(now);
  // NI energy counters carry event counts and CS-hardware activity only;
  // `cycles` stays zero so per-cycle router costs (clock, crossbar leakage)
  // are not double-counted when NI counters merge into the network total.
  leakage_tick(now);
}

void NetworkInterface::receive_credits(Cycle now) {
  if (!inject_credits_in_) return;
  while (auto c = inject_credits_in_->receive(now)) {
    auto& v = out_vcs_[static_cast<size_t>(c->vc)];
    ++v.credits;
    HN_CHECK_MSG(v.credits <= cfg_.vc_buffer_depth, "NI credit overflow");
    if (v.tail_sent && v.credits == cfg_.vc_buffer_depth) {
      v.busy = false;
      v.tail_sent = false;
    }
  }
}

void NetworkInterface::eject_tick(Cycle now) {
  if (!eject_) return;
  while (auto f = eject_->receive(now)) {
    on_eject_flit(*f, now);
    // Circuit-switched flits bypass buffers and flow control; only
    // packet-switched flits occupied an ejection-buffer slot.
    if (f->switching == Switching::Packet && eject_credits_out_) {
      eject_credits_out_->send({f->vc}, now);
    }
    Packet* pkt = f->pkt;
    HN_CHECK(pkt != nullptr);
    // End-of-path CRC: one dirty flit poisons the whole packet.
    if (f->corrupted) poisoned_.insert(pkt->id);
    // Terminal consumption: `whole` holds the packet's flight anchor iff
    // this flit completed it (every flit of a delivered packet ejects here,
    // so the tail's consumption and assembly completion coincide).
    PacketPtr whole = consume_flit(pkt);
    if (pkt->num_flits > 1) {
      Assembly& partial = assembly_[pkt->id];
      partial.pkt = pkt;
      if (++partial.got < pkt->num_flits) {
        HN_CHECK_MSG(whole == nullptr, "flight anchor released mid-assembly");
        continue;
      }
      assembly_.erase(pkt->id);
    }
    HN_CHECK_MSG(whole != nullptr, "assembled packet's anchor held elsewhere");
    if (poisoned_.erase(pkt->id) > 0) {
      // Squash instead of delivering garbage; the origin's retransmission
      // timer (or, for config, the protocol's own timeouts) recovers.
      ++crc_squashed_packets_;
      on_packet_squashed(whole, now);
      continue;
    }
    if (pkt->is_config()) {
      handle_config(whole, now);
    } else {
      handle_delivery(whole, now);
    }
  }
}

void NetworkInterface::handle_config(const PacketPtr& pkt, Cycle now) {
  (void)pkt;
  (void)now;
  HN_CHECK_MSG(false, "config packet delivered to a packet-switched-only NI");
}

void NetworkInterface::handle_delivery(const PacketPtr& pkt, Cycle now) {
  deliver(pkt, now);
}

void NetworkInterface::deliver(const PacketPtr& pkt, Cycle now) {
  if (cfg_.e2e_recovery && pkt->e2e_ack) {
    // End-to-end ack: retire the outstanding entry; not a workload delivery.
    e2e_acked(static_cast<PacketId>(pkt->payload), now);
    return;
  }
  if (cfg_.e2e_recovery && !pkt->is_config() && pkt->origin != kInvalidNode) {
    const PacketId key = pkt->retx_of != 0 ? pkt->retx_of : pkt->id;
    const bool first = e2e_seen_.insert(key).second;
    send_e2e_ack(pkt, key, now);
    if (!first) {
      // A retransmission raced the ack; exactly-once delivery upstream.
      ++e2e_duplicates_dropped_;
      return;
    }
  }
  ++data_packets_delivered_;
  if (!deliver_) return;
  if (stage_deliveries_) {
    staged_deliveries_.emplace_back(pkt, now);
    return;
  }
  deliver_(pkt, now);
}

void NetworkInterface::send_e2e_ack(const PacketPtr& pkt, PacketId key, Cycle now) {
  if (pkt->origin == id_) {  // self-send: ack short-circuits
    e2e_acked(key, now);
    return;
  }
  // Ack coalescing: at most one queued ack per end-to-end key. Under a
  // retransmission burst every duplicate copy would otherwise enqueue its
  // own ack, and acks drain one small packet at a time — the destination's
  // queue grows without bound and the inflated round trip feeds further
  // retransmissions. A duplicate arriving after the previous ack launched
  // still acks (that ack may have been corrupted en route).
  if (!acks_pending_.insert(key).second) return;
  auto ack = make_packet();
  ack->id = fresh_packet_id();
  ack->src = id_;
  ack->dst = pkt->origin;
  ack->type = MsgType::Data;  // plain 1-flit data so controller config
                              // accounting never sees it
  ack->traffic_class = TrafficClass::Config;
  ack->num_flits = 1;
  ack->payload = key;
  ack->e2e_ack = true;
  ack->cs_eligible = false;   // not worth a circuit
  ack->reinjected = true;     // not new workload
  ++e2e_acks_sent_;
  send(std::move(ack), now);
}

void NetworkInterface::e2e_acked(PacketId key, Cycle now) {
  auto it = outstanding_.find(key);
  if (it == outstanding_.end()) return;  // duplicate ack
  const NodeId dst = it->second.pkt->final_dst;
  outstanding_.erase(it);
  on_e2e_acked(dst, now);
}

bool NetworkInterface::e2e_admit(const PacketPtr& pkt, Cycle now) {
  if (pkt->is_config()) return true;
  if (faults_ && faults_->any_failed(now)) {
    const NodeId target = pkt->final_dst != kInvalidNode ? pkt->final_dst : pkt->dst;
    if (!faults_->reachable(id_, target, now)) {
      // Destination partitioned off: fail cleanly instead of letting the
      // packet wander the fabric forever.
      ++unreachable_failed_;
      return false;
    }
  }
  if (cfg_.e2e_recovery) e2e_track(pkt, now);
  return true;
}

void NetworkInterface::e2e_track(const PacketPtr& pkt, Cycle now) {
  // Only first transmissions of workload data are tracked: acks and
  // retransmission clones resolve against the original entry, and reinjected
  // copies (vicinity hop-off, hitchhiker bounce) are already tracked at
  // their origin.
  if (pkt->e2e_ack || pkt->retx_of != 0 || pkt->reinjected) return;
  if (pkt->origin == kInvalidNode) pkt->origin = id_;
  auto [it, fresh] = outstanding_.try_emplace(pkt->id);
  if (!fresh) return;
  it->second.pkt = pkt;
  it->second.backoff = cfg_.retx_timeout_cycles;
  // The timer stays dormant until a copy actually enters the fabric
  // (e2e_launched): a packet waiting in its own source queue has not been
  // transmitted yet, and timing it out there would inject clones behind it
  // into the same queue — a self-amplifying storm under burst congestion.
  it->second.next_retx = kCycleNever;
}

void NetworkInterface::e2e_launched(const PacketPtr& pkt, Cycle now) {
  if (!cfg_.e2e_recovery || pkt->e2e_ack || pkt->is_config()) return;
  if (pkt->origin != id_) return;  // forwarded copy; its origin keeps time
  const auto it =
      outstanding_.find(pkt->retx_of != 0 ? pkt->retx_of : pkt->id);
  if (it == outstanding_.end()) return;
  Outstanding& o = it->second;
  // Arm (or re-arm) from the moment of transmission, with seeded jitter so
  // sources whose copies launched the same cycle don't retry in lockstep.
  o.next_retx = now + o.backoff + e2e_rng_.uniform_int(o.backoff / 4 + 1);
}

void NetworkInterface::e2e_tick(Cycle now) {
  if (outstanding_.empty()) return;
  // Collect due entries and process in id order so behaviour never depends
  // on hash-map iteration order.
  std::vector<PacketId>& due = e2e_due_;
  due.clear();
  for (const auto& [key, o] : outstanding_) {
    if (now >= o.next_retx) due.push_back(key);
  }
  if (due.empty()) return;
  std::sort(due.begin(), due.end());
  for (PacketId key : due) {
    Outstanding& o = outstanding_.at(key);
    const NodeId dst = o.pkt->final_dst;
    if (faults_ && !faults_->reachable(id_, dst, now)) {
      ++unreachable_failed_;
      outstanding_.erase(key);
      continue;
    }
    if (o.attempts >= cfg_.max_retx_attempts) {
      ++retx_give_ups_;
      outstanding_.erase(key);
      continue;
    }
    ++o.attempts;
    ++retransmits_;
    auto clone = make_packet(*o.pkt);
    clone->id = fresh_packet_id();
    clone->retx_of = key;
    clone->src = id_;
    clone->dst = dst;  // route straight to the true destination, whatever
                       // sharing rewrote on the original
    clone->final_dst = dst;
    clone->switching = Switching::Packet;
    // The first transmission just failed to produce an ack — do not hand the
    // retry back to the circuit layer, whose shared rides (vicinity,
    // hitchhiking) can cross the same failed link without ever accruing a
    // liveness streak on a connection this NI could doom. Packet switching
    // detours around failed links, so a reachable destination is always
    // eventually reached.
    clone->cs_eligible = false;
    clone->created = now;
    clone->injected = 0;
    clone->reinjected = true;  // not new workload
    clone->stall_flagged = false;
    clone->share_in_port = -1;
    clone->share_out_port = -1;
    // Capped exponential backoff: doubling spreads repeated collisions out.
    // The timer goes dormant until the clone's head flit launches
    // (e2e_launched) — a clone stuck behind a long source queue must not
    // itself time out and spawn further clones.
    o.backoff = std::min(o.backoff * 2, cfg_.retx_backoff_cap_cycles);
    o.next_retx = kCycleNever;
    on_e2e_retx(clone, now);
    send(std::move(clone), now);
  }
}

int NetworkInterface::watchdog_scan(Cycle now, Cycle max_age) {
  int flagged = 0;
  auto check = [&](const PacketPtr& p) {
    if (p && !p->is_config() && !p->stall_flagged && now >= p->created &&
        now - p->created >= max_age) {
      p->stall_flagged = true;
      ++flagged;
    }
  };
  for (const auto& p : queue_) check(p);
  for (const auto& v : out_vcs_) check(v.pkt);
  for (const auto& [key, o] : outstanding_) check(o.pkt);
  watchdog_flagged_ += static_cast<std::uint64_t>(flagged);
  return flagged;
}

void NetworkInterface::inject_tick(Cycle now) {
  if (!inject_) return;
  // Slot-timed circuit-switched flits own the injection channel on their
  // scheduled cycles; packet-switched traffic fills the remaining cycles.
  if (circuit_inject(now)) return;

  // Start a new packet on a free VC if one is available.
  if (!queue_.empty()) try_start_packet(now);

  // Round-robin over VCs with an in-flight packet; send one flit.
  const int n = cfg_.num_vcs;
  for (int i = 0; i < n; ++i) {
    const int v = (inject_rr_ + i) % n;
    auto& vc = out_vcs_[static_cast<size_t>(v)];
    if (!vc.busy || !vc.pkt || vc.credits <= 0) continue;
    const PacketPtr& pkt = vc.pkt;
    Flit f;
    f.pkt = pkt.get();
    f.seq = vc.next_seq;
    f.vc = v;
    f.switching = Switching::Packet;
    if (pkt->num_flits == 1) {
      f.type = FlitType::HeadTail;
    } else if (vc.next_seq == 0) {
      f.type = FlitType::Head;
    } else if (vc.next_seq == pkt->num_flits - 1) {
      f.type = FlitType::Tail;
    } else {
      f.type = FlitType::Body;
    }
    if (vc.next_seq == 0) {
      // Head flit: anchor the packet for its whole flight. This is the one
      // refcount operation of the packet-switched path; every flit below
      // carries the raw pointer.
      begin_flight(pkt);
      pkt->injected = now;
      if (cfg_.e2e_recovery) e2e_launched(pkt, now);
      if (pkt->e2e_ack) acks_pending_.erase(static_cast<PacketId>(pkt->payload));
      if (!pkt->is_config() && now >= pkt->created) {
        ewma_inject_delay_ = 0.9 * ewma_inject_delay_ +
                             0.1 * static_cast<double>(now - pkt->created);
      }
    }
    ++vc.next_seq;
    --vc.credits;
    if (pkt->is_config()) {
      ++config_flits_;
    } else {
      ++ps_data_flits_;
      ++flits_by_class_[static_cast<size_t>(pkt->traffic_class)];
    }
    if (f.is_tail()) {
      vc.tail_sent = true;
      vc.pkt.reset();
      vc.next_seq = 0;
    }
    inject_->send(std::move(f), now);
    inject_rr_ = (v + 1) % n;
    return;
  }
}

bool NetworkInterface::sched_busy() const {
  // Anything queued or mid-injection needs a tick every cycle. The ejection
  // side is purely reactive: assembly only advances on channel arrivals,
  // which carry their own wakes.
  if (!queue_.empty()) return true;
  for (const auto& v : out_vcs_)
    if (v.pkt) return true;
  return false;
}

Cycle NetworkInterface::sched_next_event(Cycle now) const {
  Cycle next = kCycleNever;
  if (inject_credits_in_) next = std::min(next, inject_credits_in_->next_ready());
  if (eject_) next = std::min(next, eject_->next_ready());
  // Retransmission timers must fire on time even while the NI is otherwise
  // asleep, or recovery under fast_forward diverges from the full sweep.
  for (const auto& [key, o] : outstanding_) {
    next = std::min(next, std::max(o.next_retx, now + 1));
  }
  return next;
}

EnergyCounters NetworkInterface::settled_energy(Cycle now) const {
  EnergyCounters e = energy_;
  if (now > accounted_until_) accumulate_idle_energy(e, now - accounted_until_);
  finalize_energy(e);
  return e;
}

void NetworkInterface::settle_energy(Cycle through) {
  if (through + 1 > accounted_until_) {
    accumulate_idle_energy(energy_, through + 1 - accounted_until_);
    accounted_until_ = through + 1;
  }
}

bool NetworkInterface::try_start_packet(Cycle now) {
  (void)now;
  const int router_active = router_ ? router_->announced_active_vcs() : cfg_.num_vcs;
  for (int v = 0; v < router_active; ++v) {
    auto& vc = out_vcs_[static_cast<size_t>(v)];
    if (vc.busy || vc.tail_sent || vc.credits != cfg_.vc_buffer_depth) continue;
    vc.busy = true;
    vc.pkt = queue_.pop_front();
    vc.next_seq = 0;
    if (!vc.pkt->is_config() && !vc.pkt->reinjected) ++data_packets_sent_;
    return true;
  }
  return false;
}

void NetworkInterface::save_state(StateWriter& w) const {
  HN_CHECK_MSG(idle(), "NI checkpoint requires an idle NI");
  HN_CHECK_MSG(poisoned_.empty() && acks_pending_.empty() &&
                   staged_deliveries_.empty(),
               "NI checkpoint requires drained recovery state");
  w.section("ni");
  w.u32(static_cast<std::uint32_t>(out_vcs_.size()));
  for (const auto& v : out_vcs_) {
    HN_CHECK(!v.pkt);
    w.b(v.busy);
    w.b(v.tail_sent);
    w.i32(v.credits);
    w.i32(v.next_seq);
  }
  w.i32(inject_rr_);
  w.u64(accounted_until_);
  hybridnoc::save_state(w, energy_);
  for (const std::uint64_t f : flits_by_class_) w.u64(f);
  w.u64(data_packets_sent_);
  w.u64(data_packets_delivered_);
  w.u64(ps_data_flits_);
  w.u64(cs_data_flits_);
  w.u64(config_flits_);
  w.i32(eject_active_vcs_);
  w.u64(local_ids_);
  w.f64(ewma_inject_delay_);
  // Destination-side dedup keys, sorted so the archive bytes (and thus the
  // checkpoint digest) do not depend on hash-table layout.
  std::vector<PacketId> seen(e2e_seen_.begin(), e2e_seen_.end());
  std::sort(seen.begin(), seen.end());
  w.u64(seen.size());
  for (const PacketId k : seen) w.u64(k);
  for (const std::uint64_t s : e2e_rng_.state()) w.u64(s);
  w.u64(retransmits_);
  w.u64(retx_give_ups_);
  w.u64(crc_squashed_packets_);
  w.u64(e2e_acks_sent_);
  w.u64(e2e_duplicates_dropped_);
  w.u64(unreachable_failed_);
  w.u64(watchdog_flagged_);
}

void NetworkInterface::restore_state(StateReader& r) {
  r.section("ni");
  if (r.u32() != out_vcs_.size()) throw StateError("NI VC count mismatch");
  for (auto& v : out_vcs_) {
    v.busy = r.b();
    v.tail_sent = r.b();
    v.credits = r.i32();
    v.next_seq = r.i32();
  }
  inject_rr_ = r.i32();
  accounted_until_ = r.u64();
  hybridnoc::restore_state(r, energy_);
  for (std::uint64_t& f : flits_by_class_) f = r.u64();
  data_packets_sent_ = r.u64();
  data_packets_delivered_ = r.u64();
  ps_data_flits_ = r.u64();
  cs_data_flits_ = r.u64();
  config_flits_ = r.u64();
  eject_active_vcs_ = r.i32();
  local_ids_ = r.u64();
  ewma_inject_delay_ = r.f64();
  e2e_seen_.clear();
  const std::uint64_t nseen = r.u64();
  for (std::uint64_t i = 0; i < nseen; ++i) e2e_seen_.insert(r.u64());
  std::array<std::uint64_t, 4> rng_state;
  for (std::uint64_t& s : rng_state) s = r.u64();
  if (!(rng_state[0] | rng_state[1] | rng_state[2] | rng_state[3])) {
    throw StateError("all-zero NI rng state");
  }
  e2e_rng_.set_state(rng_state);
  retransmits_ = r.u64();
  retx_give_ups_ = r.u64();
  crc_squashed_packets_ = r.u64();
  e2e_acks_sent_ = r.u64();
  e2e_duplicates_dropped_ = r.u64();
  unreachable_failed_ = r.u64();
  watchdog_flagged_ = r.u64();
}

}  // namespace hybridnoc
