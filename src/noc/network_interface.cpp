#include "noc/network_interface.hpp"

namespace hybridnoc {

NetworkInterface::NetworkInterface(const NocConfig& cfg, NodeId id, const Mesh& mesh)
    : cfg_(cfg), id_(id), mesh_(mesh), eject_active_vcs_(cfg.num_vcs) {
  out_vcs_.resize(static_cast<size_t>(cfg_.num_vcs));
  for (auto& v : out_vcs_) v.credits = cfg_.vc_buffer_depth;
}

void NetworkInterface::connect(FlitChannel* inject, CreditChannel* inject_credits_in,
                               FlitChannel* eject, CreditChannel* eject_credits_out,
                               Router* router) {
  inject_ = inject;
  inject_credits_in_ = inject_credits_in;
  eject_ = eject;
  eject_credits_out_ = eject_credits_out;
  router_ = router;
}

void NetworkInterface::send(PacketPtr pkt, Cycle now) {
  HN_CHECK(pkt && mesh_.valid(pkt->dst) && pkt->src == id_);
  pkt->created = (pkt->created == 0) ? now : pkt->created;
  if (pkt->final_dst == kInvalidNode) pkt->final_dst = pkt->dst;
  queue_.push_back(std::move(pkt));
  sched_wake(now);  // new work: make sure this NI ticks at `now`
}

void NetworkInterface::send_priority(PacketPtr pkt, Cycle now) {
  HN_CHECK(pkt && mesh_.valid(pkt->dst));
  if (pkt->final_dst == kInvalidNode) pkt->final_dst = pkt->dst;
  queue_.push_front(std::move(pkt));
  sched_wake(now);
}

bool NetworkInterface::idle() const {
  if (!queue_.empty() || !assembly_.empty()) return false;
  for (const auto& v : out_vcs_)
    if (v.pkt) return false;
  return true;
}

bool NetworkInterface::holds_vc_allocation(Port out_port, int vc) const {
  HN_CHECK(out_port == Port::Local);
  return out_vcs_[static_cast<size_t>(vc)].busy;
}

void NetworkInterface::tick(Cycle now) {
  if (now > accounted_until_) {
    accumulate_idle_energy(energy_, now - accounted_until_);
    align_epochs(now);
  }
  accounted_until_ = now + 1;
  receive_credits(now);
  eject_tick(now);
  inject_tick(now);
  // NI energy counters carry event counts and CS-hardware activity only;
  // `cycles` stays zero so per-cycle router costs (clock, crossbar leakage)
  // are not double-counted when NI counters merge into the network total.
  leakage_tick(now);
}

void NetworkInterface::receive_credits(Cycle now) {
  if (!inject_credits_in_) return;
  while (auto c = inject_credits_in_->receive(now)) {
    auto& v = out_vcs_[static_cast<size_t>(c->vc)];
    ++v.credits;
    HN_CHECK_MSG(v.credits <= cfg_.vc_buffer_depth, "NI credit overflow");
    if (v.tail_sent && v.credits == cfg_.vc_buffer_depth) {
      v.busy = false;
      v.tail_sent = false;
    }
  }
}

void NetworkInterface::eject_tick(Cycle now) {
  if (!eject_) return;
  while (auto f = eject_->receive(now)) {
    on_eject_flit(*f, now);
    // Circuit-switched flits bypass buffers and flow control; only
    // packet-switched flits occupied an ejection-buffer slot.
    if (f->switching == Switching::Packet && eject_credits_out_) {
      eject_credits_out_->send({f->vc}, now);
    }
    const PacketPtr& pkt = f->pkt;
    HN_CHECK(pkt != nullptr);
    int& got = assembly_[pkt->id];
    ++got;
    if (got < pkt->num_flits) continue;
    assembly_.erase(pkt->id);
    if (pkt->is_config()) {
      handle_config(pkt, now);
    } else {
      handle_delivery(pkt, now);
    }
  }
}

void NetworkInterface::handle_config(const PacketPtr& pkt, Cycle now) {
  (void)pkt;
  (void)now;
  HN_CHECK_MSG(false, "config packet delivered to a packet-switched-only NI");
}

void NetworkInterface::handle_delivery(const PacketPtr& pkt, Cycle now) {
  deliver(pkt, now);
}

void NetworkInterface::deliver(const PacketPtr& pkt, Cycle now) {
  ++data_packets_delivered_;
  if (deliver_) deliver_(pkt, now);
}

void NetworkInterface::inject_tick(Cycle now) {
  if (!inject_) return;
  // Slot-timed circuit-switched flits own the injection channel on their
  // scheduled cycles; packet-switched traffic fills the remaining cycles.
  if (circuit_inject(now)) return;

  // Start a new packet on a free VC if one is available.
  if (!queue_.empty()) try_start_packet(now);

  // Round-robin over VCs with an in-flight packet; send one flit.
  const int n = cfg_.num_vcs;
  for (int i = 0; i < n; ++i) {
    const int v = (inject_rr_ + i) % n;
    auto& vc = out_vcs_[static_cast<size_t>(v)];
    if (!vc.busy || !vc.pkt || vc.credits <= 0) continue;
    const PacketPtr& pkt = vc.pkt;
    Flit f;
    f.pkt = pkt;
    f.seq = vc.next_seq;
    f.vc = v;
    f.switching = Switching::Packet;
    if (pkt->num_flits == 1) {
      f.type = FlitType::HeadTail;
    } else if (vc.next_seq == 0) {
      f.type = FlitType::Head;
    } else if (vc.next_seq == pkt->num_flits - 1) {
      f.type = FlitType::Tail;
    } else {
      f.type = FlitType::Body;
    }
    if (vc.next_seq == 0) {
      pkt->injected = now;
      if (!pkt->is_config() && now >= pkt->created) {
        ewma_inject_delay_ = 0.9 * ewma_inject_delay_ +
                             0.1 * static_cast<double>(now - pkt->created);
      }
    }
    ++vc.next_seq;
    --vc.credits;
    if (pkt->is_config()) {
      ++config_flits_;
    } else {
      ++ps_data_flits_;
      ++flits_by_class_[static_cast<size_t>(pkt->traffic_class)];
    }
    if (f.is_tail()) {
      vc.tail_sent = true;
      vc.pkt.reset();
      vc.next_seq = 0;
    }
    inject_->send(std::move(f), now);
    inject_rr_ = (v + 1) % n;
    return;
  }
}

bool NetworkInterface::sched_busy() const {
  // Anything queued or mid-injection needs a tick every cycle. The ejection
  // side is purely reactive: assembly only advances on channel arrivals,
  // which carry their own wakes.
  if (!queue_.empty()) return true;
  for (const auto& v : out_vcs_)
    if (v.pkt) return true;
  return false;
}

Cycle NetworkInterface::sched_next_event(Cycle now) const {
  (void)now;
  Cycle next = kCycleNever;
  if (inject_credits_in_) next = std::min(next, inject_credits_in_->next_ready());
  if (eject_) next = std::min(next, eject_->next_ready());
  return next;
}

EnergyCounters NetworkInterface::settled_energy(Cycle now) const {
  EnergyCounters e = energy_;
  if (now > accounted_until_) accumulate_idle_energy(e, now - accounted_until_);
  finalize_energy(e);
  return e;
}

void NetworkInterface::settle_energy(Cycle through) {
  if (through + 1 > accounted_until_) {
    accumulate_idle_energy(energy_, through + 1 - accounted_until_);
    accounted_until_ = through + 1;
  }
}

bool NetworkInterface::try_start_packet(Cycle now) {
  (void)now;
  const int router_active = router_ ? router_->announced_active_vcs() : cfg_.num_vcs;
  for (int v = 0; v < router_active; ++v) {
    auto& vc = out_vcs_[static_cast<size_t>(v)];
    if (vc.busy || vc.tail_sent || vc.credits != cfg_.vc_buffer_depth) continue;
    vc.busy = true;
    vc.pkt = queue_.front();
    vc.next_seq = 0;
    queue_.pop_front();
    if (!vc.pkt->is_config() && !vc.pkt->reinjected) ++data_packets_sent_;
    return true;
  }
  return false;
}

}  // namespace hybridnoc
