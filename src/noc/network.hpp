// The k x k mesh network: owns routers, NIs and every channel between them,
// and drives the global cycle loop. Router/NI types are injected through
// factories so the TDM hybrid network (src/tdm) reuses the same fabric
// wiring with extended components.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/alloc_stats.hpp"
#include "common/config.hpp"
#include "common/geometry.hpp"
#include "noc/channel.hpp"
#include "noc/fault_model.hpp"
#include "noc/network_interface.hpp"
#include "noc/router.hpp"
#include "noc/scheduler.hpp"

namespace hybridnoc {

class ParallelTickEngine;
class StateWriter;
class StateReader;

/// Per-subsystem cycle-cost counters, maintained on the tick hot paths at
/// the cost of a few local increments. tools/profile_tick dumps them for any
/// config; dividing by `cycles` gives the per-cycle dispatch cost the
/// large-mesh scaling work optimizes (EXPERIMENTS.md, scaling methodology).
struct TickProfile {
  std::uint64_t cycles = 0;           ///< tick() invocations
  std::uint64_t ni_ticks = 0;         ///< NI tick dispatches
  std::uint64_t router_ticks = 0;     ///< router tick dispatches
  std::uint64_t watchdog_sweeps = 0;  ///< full watchdog scans (1024-cycle)
  std::uint64_t ff_jumps = 0;         ///< fast-forward quiescent jumps
  std::uint64_t ff_skipped_cycles = 0;  ///< cycles skipped by those jumps
  // Allocation / packet-lifetime telemetry (deltas of the process-wide
  // AllocStats counters since this network was constructed). Divided by
  // `cycles` these give the loaded path's residual allocator and refcount
  // traffic — the quantities the allocation-free overhaul drives to zero.
  std::uint64_t packets_minted = 0;   ///< make_packet calls (pool-backed)
  std::uint64_t pool_hits = 0;        ///< pooled allocs served from a free list
  std::uint64_t pool_misses = 0;      ///< pooled allocs that hit operator new
  std::uint64_t flight_acquires = 0;  ///< packet flight anchors taken
  std::uint64_t flight_releases = 0;  ///< anchors dropped (all flits consumed)
};

/// Per-run fault-tolerance outcome: how much workload survived, what the
/// recovery machinery did, and how much of the fabric is left.
struct DegradationReport {
  std::uint64_t data_sent = 0;
  std::uint64_t data_delivered = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t retx_give_ups = 0;
  std::uint64_t unreachable_failed = 0;
  std::uint64_t crc_flagged_flits = 0;     ///< per-hop detections (routers)
  std::uint64_t crc_squashed_packets = 0;  ///< destination-side squashes
  std::uint64_t e2e_acks_sent = 0;
  std::uint64_t e2e_duplicates_dropped = 0;
  std::uint64_t e2e_outstanding = 0;  ///< still unacked at report time
  std::uint64_t watchdog_flagged = 0;
  std::uint64_t corrupted_traversals = 0;  ///< fault-model ground truth
  int failed_links = 0;
  int bisection_links_total = 0;
  int bisection_links_alive = 0;  ///< surviving bisection bandwidth
};

class Network {
 public:
  using RouterFactory =
      std::function<std::unique_ptr<Router>(const NocConfig&, NodeId, const Mesh&)>;
  using NiFactory = std::function<std::unique_ptr<NetworkInterface>(
      const NocConfig&, NodeId, const Mesh&)>;

  /// Packet-switched-only network (the Packet-VC4 baseline).
  explicit Network(const NocConfig& cfg);
  Network(const NocConfig& cfg, RouterFactory make_router, NiFactory make_ni);
  virtual ~Network();  // out of line: engine_ is incomplete here

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Advance one cycle: NIs first, then routers (all communication is
  /// channel-pipelined, so intra-cycle order is not observable). With
  /// cfg.active_set_scheduler, only components with pending work are
  /// ticked — bit-identical to the full sweep, since idle ticks are
  /// deterministic no-ops whose energy constants are folded lazily. With
  /// cfg.tick_threads > 1 the cycle is executed by the sharded parallel
  /// engine (noc/parallel_engine.hpp) — bit-identical again, for any
  /// thread count.
  virtual void tick();

  /// Advance until now() == target, skipping fully idle stretches in one
  /// step when the active-set scheduler is on (falls back to per-cycle
  /// ticking otherwise). Never skips a cycle where any component, or the
  /// subclass's external machinery (controller timers), has work.
  void fast_forward(Cycle target);

  Cycle now() const { return now_; }
  const Mesh& mesh() const { return mesh_; }
  const NocConfig& cfg() const { return cfg_; }
  int num_nodes() const { return mesh_.num_nodes(); }

  Router& router(NodeId n) { return *routers_[static_cast<size_t>(n)]; }
  NetworkInterface& ni(NodeId n) { return *nis_[static_cast<size_t>(n)]; }
  const Router& router(NodeId n) const { return *routers_[static_cast<size_t>(n)]; }
  const NetworkInterface& ni(NodeId n) const { return *nis_[static_cast<size_t>(n)]; }

  /// Install `fn` as the delivery handler on every NI.
  void set_deliver_handler(const DeliverFn& fn);
  /// Freeze/unfreeze proactive circuit setup on every NI (drain phases).
  void set_policy_frozen(bool frozen);

  /// The hardware fault model, created on first use (or at construction when
  /// cfg.link_ber > 0) and wired into every router and NI. Schedule faults
  /// on it directly (kill_link / stick_link / kill_router).
  FaultModel& ensure_fault_model();
  /// nullptr until ensure_fault_model() has run.
  FaultModel* fault_model() { return faults_.get(); }
  const FaultModel* fault_model() const { return faults_.get(); }

  /// Aggregate fault-tolerance outcome as of now().
  DegradationReport degradation_report() const;

  /// True when no flit exists anywhere: NI queues, router buffers, channels.
  bool quiescent() const;

  /// Freeze proactive policy and tick until quiescent (or `max_cycles` have
  /// elapsed). Returns true once quiescent. Policy stays frozen — callers
  /// resume with set_policy_frozen(false) after the checkpoint.
  bool drain(Cycle max_cycles);

  /// Serialize the full simulation state (NIs, routers, slot tables,
  /// scheduler-visible counters, RNGs, energy) into a sealed, digest-
  /// protected archive. Preconditions (HN_CHECK): the network is quiescent
  /// (use drain()), no fault model is installed, and tick_threads == 1.
  /// Resuming a restored network is bit-identical to continuing this one.
  std::string save_state() const;
  /// Restore a save_state() archive into this freshly constructed network
  /// (same NocConfig, now() == 0). Throws StateError on a truncated,
  /// corrupted or mismatched archive — never aborts, so callers can treat
  /// a bad checkpoint as "recompute from scratch".
  void restore_state(const std::string& sealed);

  /// Dispatch-cost counters since construction (see TickProfile). Sums the
  /// parallel engine's per-shard counters when one is running.
  TickProfile tick_profile() const;

  /// Settled energy of every component as of now(). O(components) on the
  /// first query at a given cycle, O(1) when re-queried before the clock
  /// advances — callers sampling energy between ticks (the driver reads it
  /// at measure start and end) never pay the sweep twice.
  EnergyCounters total_energy() const;

  std::uint64_t total_data_sent() const;
  std::uint64_t total_data_delivered() const;
  std::uint64_t total_ps_flits() const;
  std::uint64_t total_cs_flits() const;
  std::uint64_t total_config_flits() const;
  std::uint64_t total_flits_of_class(TrafficClass c) const;

 protected:
  /// Earliest cycle > now at which machinery outside the NIs/routers (e.g.
  /// the TDM controller's epoch/resize timers) has observable work; bounds
  /// how far fast_forward may jump. Base network: none.
  virtual Cycle external_next_event(Cycle now) const {
    (void)now;
    return kCycleNever;
  }

  /// Subclass switch for the parallel engine's serial fallback: modes whose
  /// event *order* is observable (config-fault hooks, trace recording) must
  /// run cycles in the exact global component order. No-op when the engine
  /// is off.
  void set_engine_force_serial(bool on);

  /// Checkpoint hooks for machinery outside the NIs/routers (the TDM
  /// controller). Called between the network header and the components.
  virtual void save_external_state(StateWriter& w) const { (void)w; }
  virtual void restore_external_state(StateReader& r) { (void)r; }

 private:
  friend class ParallelTickEngine;

  void build();
  void watchdog_tick();
  /// Component ids for the scheduler: NIs are [0, N), routers [N, 2N), so
  /// ascending-id order reproduces the legacy NIs-then-routers sweep.
  int ni_sched_id(NodeId n) const { return n; }
  int router_sched_id(NodeId n) const { return num_nodes() + n; }

  const NocConfig cfg_;
  Mesh mesh_;
  Cycle now_ = 0;

  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<NetworkInterface>> nis_;
  /// Raw dispatch tables mirroring routers_/nis_: the tick hot loops index
  /// these flat pointer arrays instead of chasing unique_ptr storage, so a
  /// sweep touches one contiguous cache line per 8 components.
  std::vector<Router*> router_ptrs_;
  std::vector<NetworkInterface*> ni_ptrs_;
  std::vector<std::unique_ptr<FlitChannel>> flit_channels_;
  std::vector<std::unique_ptr<CreditChannel>> credit_channels_;
  std::unique_ptr<FaultModel> faults_;

  TickScheduler sched_;
  bool use_sched_ = false;
  /// cfg_.watchdog_stall_cycles > 0, hoisted so the per-tick check is one
  /// branch on a bool instead of a 64-bit compare.
  bool watchdog_enabled_ = false;
  mutable TickProfile profile_;
  /// AllocStats baseline at construction; tick_profile() reports deltas.
  AllocStats::Snapshot alloc_base_ = AllocStats::instance().snapshot();
  /// total_energy memo: valid while the clock stays at energy_memo_at_.
  /// Energy only mutates inside component ticks (and settle_energy, which
  /// by construction does not change the settled total at a fixed cycle),
  /// so a repeated query at one cycle is provably the same sum.
  mutable Cycle energy_memo_at_ = kCycleNever;
  mutable EnergyCounters energy_memo_;
  /// Sharded parallel tick engine, created when cfg.tick_threads > 1. When
  /// null the tick path is byte-for-byte the single-threaded engine.
  std::unique_ptr<ParallelTickEngine> engine_;
};

}  // namespace hybridnoc
