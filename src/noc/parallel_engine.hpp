// Deterministic sharded parallel tick engine.
//
// The mesh is partitioned into contiguous spatial shards — whole rows per
// shard when shards <= k (so only North/South links cross a seam), the plain
// node-range split [s*N/S, (s+1)*N/S) otherwise; NI n and router n always
// land together — with one worker thread per shard (the caller's thread
// doubles as shard 0). A cycle runs in two phases:
//
//   compute: every shard ticks its own components against last cycle's
//            channel state. Sends into a channel whose consumer lives in
//            another shard are *staged* into a producer-private outbox
//            (ChannelBase::set_staged); everything else is eager exactly as
//            under the serial engine.
//   barrier
//   commit:  every shard applies the staged outboxes of the channels it
//            consumes, in the fixed channel-construction order, then runs
//            its TickScheduler compaction.
//   barrier
//
// Bit-identity with the serial engine for ANY thread count rests on:
//  * every cross-component write goes through a Channel with latency >= 1,
//    so nothing written in cycle T is readable before T+1 — the intra-cycle
//    tick order is unobservable (the simulator's founding invariant);
//  * each channel has exactly one producer and one consumer, so its queue
//    contents are independent of the order channels commit in; consumer
//    wake-ups dedup in the scheduler heap, so wake order is irrelevant too;
//  * shared counters crossed by shard threads (TDM controller in-flight
//    gauges, fault-model corruption count) are relaxed atomics — addition
//    commutes, the sums are exact;
//  * data-plane fault decisions are stateless hashes of (seed, link,
//    traversal count), and each directed link is traversed by exactly one
//    upstream router, so decisions don't depend on interleaving;
//  * the FaultModel's lazy topology caches are precomputed serially each
//    cycle (FaultModel::prepare), making health queries pure reads;
//  * the NI deliver callback — the one externally shared handler — is
//    staged per-NI and drained in ascending NI order after the barrier.
//
// Modes whose *event order* is observable (config-fault injection hooks,
// fault-trace recording) force the engine into a serial fallback that walks
// the exact global component order of the single-threaded engine, so
// recorded traces and seeded fault streams stay byte-identical.
//
// Workers synchronise on a go-sequence (spin-then-park between cycles, so an
// idle or fast-forwarding simulation doesn't burn cores) and two
// sense-reversing spin barriers inside the cycle.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"
#include "noc/channel.hpp"
#include "noc/scheduler.hpp"

namespace hybridnoc {

class Network;
struct TickProfile;

class ParallelTickEngine {
 public:
  /// Shards = min(threads, nodes). The engine must be constructed before the
  /// network wires its channels (they register consumers against the shard
  /// schedulers) and destroyed before the components it ticks.
  ParallelTickEngine(Network& net, int threads);
  ~ParallelTickEngine();

  ParallelTickEngine(const ParallelTickEngine&) = delete;
  ParallelTickEngine& operator=(const ParallelTickEngine&) = delete;

  int num_shards() const { return num_shards_; }

  /// Scheduler that owns component `id` (NIs are [0, N), routers [N, 2N)).
  /// nullptr when the active-set scheduler is configured off.
  TickScheduler* sched_for(int id) {
    return use_sched_ ? &shards_[static_cast<size_t>(shard_of(id))].sched
                      : nullptr;
  }

  /// Called during network wiring for every mesh-link channel: marks the
  /// channel staged when producer and consumer components live in different
  /// shards and adds it to the consumer shard's commit list. Same-shard
  /// channels stay eager.
  void register_link_channel(ChannelBase* ch, int producer_id,
                             int consumer_id);

  /// Execute component cycle `now` (the network still owns watchdog sweeps,
  /// clock advance, and any controller machinery around it).
  void run_cycle(Cycle now);

  // --- fast-forward support (mirrors the single-scheduler calls) ---
  void begin_cycle(Cycle now);
  bool anything_active() const;
  Cycle next_wake_cycle();

  /// Serial-fallback switch for order-observing modes (see file comment).
  void set_force_serial(bool on) { force_serial_ = on; }

  /// Fold the per-shard dispatch counters into `p` (Network::tick_profile).
  void accumulate_profile(TickProfile& p) const;

 private:
  struct Shard {
    int node_lo = 0;
    int node_hi = 0;
    TickScheduler sched;
    /// Staged channels this shard consumes, in construction order.
    std::vector<ChannelBase*> commit_list;
    /// Dispatch counters, written only by the owning worker thread.
    std::uint64_t ni_ticks = 0;
    std::uint64_t router_ticks = 0;
  };

  int shard_of(int id) const {
    return node_shard_[static_cast<size_t>(id < num_nodes_ ? id
                                                           : id - num_nodes_)];
  }

  void compute_phase(int s, Cycle now);
  void commit_compact_phase(int s, Cycle now);
  void serial_cycle(Cycle now);
  void drain_deliveries();

  void ensure_workers();
  void worker_loop(int s);
  void barrier_arrive();

  Network& net_;
  const int num_nodes_;
  const int num_shards_;
  const bool use_sched_;
  bool force_serial_ = false;
  std::vector<Shard> shards_;
  std::vector<int> node_shard_;

  // --- worker synchronisation ---
  Cycle cycle_now_ = 0;  ///< published before go_seq_ (release) each cycle
  std::atomic<std::uint64_t> go_seq_{0};
  std::atomic<bool> shutdown_{false};
  std::atomic<int> barrier_arrived_{0};
  std::atomic<std::uint64_t> barrier_seq_{0};
  std::atomic<int> parked_{0};
  std::mutex park_mu_;
  std::condition_variable park_cv_;
  std::vector<std::thread> workers_;
  bool workers_spawned_ = false;
};

}  // namespace hybridnoc
