#include "noc/fault_model.hpp"

#include <algorithm>
#include <deque>

#include "common/assert.hpp"

namespace hybridnoc {

namespace {

/// SplitMix64 finalizer: a full-avalanche 64-bit mix, so consecutive
/// traversal counts decorrelate completely.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

std::uint64_t replay_key(int link, std::uint64_t occurrence) {
  HN_CHECK(occurrence < (std::uint64_t{1} << 44));
  return (static_cast<std::uint64_t>(link) << 44) | occurrence;
}

}  // namespace

FaultModel::FaultModel(int k, double ber, std::uint64_t seed)
    : mesh_(k), ber_(ber), seed_(seed) {
  HN_CHECK(ber >= 0.0 && ber < 1.0);
  // ber * 2^64, saturating; 2^64 is exactly representable as a double.
  const double scaled = ber * 18446744073709551616.0;
  threshold_ = scaled >= 18446744073709551615.0
                   ? ~std::uint64_t{0}
                   : static_cast<std::uint64_t>(scaled);
  links_.resize(static_cast<std::size_t>(mesh_.num_nodes()) * 4);
  router_dead_at_.assign(mesh_.num_nodes(), kCycleNever);
}

int FaultModel::link_index(NodeId node, Port out) const {
  HN_CHECK(mesh_.valid(node) && out != Port::Local);
  return static_cast<int>(node) * 4 + (static_cast<int>(out) - 1);
}

void FaultModel::kill_link(NodeId node, Port out, Cycle at) {
  HN_CHECK(mesh_.has_neighbor(node, out));
  LinkFaultEvent e;
  e.kind = FaultKind::DeadLink;
  e.node = node;
  e.out = out;
  e.start = at;
  add_event(e);
}

void FaultModel::kill_router(NodeId node, Cycle at) {
  HN_CHECK(mesh_.valid(node));
  LinkFaultEvent e;
  e.kind = FaultKind::DeadRouter;
  e.node = node;
  e.start = at;
  add_event(e);
}

void FaultModel::stick_link(NodeId node, Port out, Cycle at, Cycle duration) {
  HN_CHECK(mesh_.has_neighbor(node, out));
  HN_CHECK(duration >= 1);
  LinkFaultEvent e;
  e.kind = FaultKind::StuckLink;
  e.node = node;
  e.out = out;
  e.start = at;
  e.duration = duration;
  add_event(e);
}

void FaultModel::add_event(const LinkFaultEvent& e) {
  switch (e.kind) {
    case FaultKind::DeadLink: {
      LinkState& s = links_[link_index(e.node, e.out)];
      s.dead_at = std::min(s.dead_at, e.start);
      first_perm_fault_at_ = std::min(first_perm_fault_at_, e.start);
      perm_starts_.push_back(e.start);
      break;
    }
    case FaultKind::DeadRouter: {
      HN_CHECK(mesh_.valid(e.node));
      Cycle& dead = router_dead_at_[e.node];
      dead = std::min(dead, e.start);
      first_perm_fault_at_ = std::min(first_perm_fault_at_, e.start);
      perm_starts_.push_back(e.start);
      break;
    }
    case FaultKind::StuckLink: {
      LinkState& s = links_[link_index(e.node, e.out)];
      s.stuck.emplace_back(e.start, e.start + e.duration);
      break;
    }
    case FaultKind::Transient:
      HN_CHECK_MSG(false,
                   "transient faults come from the BER hash or replay, not "
                   "the schedule");
  }
  std::sort(perm_starts_.begin(), perm_starts_.end());
  events_.push_back(e);
}

void FaultModel::set_transient_replay(
    const std::vector<LinkFaultEvent>& transients) {
  replay_ = true;
  replay_keys_.clear();
  for (const LinkFaultEvent& e : transients) {
    HN_CHECK(e.kind == FaultKind::Transient && e.occurrence >= 1);
    replay_keys_.insert(replay_key(link_index(e.node, e.out), e.occurrence));
  }
}

bool FaultModel::link_dead_raw(NodeId node, Port out, Cycle now) const {
  return now >= links_[link_index(node, out)].dead_at;
}

bool FaultModel::node_failed(NodeId node, Cycle now) const {
  return now >= router_dead_at_[node];
}

bool FaultModel::link_failed(NodeId node, Port out, Cycle now) const {
  if (!any_failed(now)) return false;
  if (link_dead_raw(node, out, now)) return true;
  // A dead router takes all its incident links with it, in both directions.
  if (node_failed(node, now)) return true;
  return mesh_.has_neighbor(node, out) &&
         node_failed(mesh_.neighbor(node, out), now);
}

bool FaultModel::link_corrupting(NodeId node, Port out, Cycle now) const {
  if (link_failed(node, out, now)) return true;
  const LinkState& s = links_[link_index(node, out)];
  for (const auto& [start, end] : s.stuck) {
    if (now >= start && now < end) return true;
  }
  return false;
}

bool FaultModel::on_traverse(NodeId node, Port out, Cycle now) {
  const int link = link_index(node, out);
  const std::uint64_t n = ++links_[link].traversals;
  bool corrupt = false;
  if (replay_) {
    corrupt = replay_keys_.count(replay_key(link, n)) != 0;
  } else if (threshold_ != 0) {
    // Stateless per-traversal draw: depends only on (seed, link, n), never
    // on the order the engine visits components in.
    const std::uint64_t h =
        mix64(seed_ ^ (0x9e3779b97f4a7c15ULL * (std::uint64_t{1} + link)) ^
              (0xff51afd7ed558ccdULL * n));
    corrupt = h < threshold_;
    if (corrupt && recording_) {
      LinkFaultEvent e;
      e.kind = FaultKind::Transient;
      e.node = node;
      e.out = out;
      e.start = now;
      e.occurrence = n;
      fired_.push_back(e);
    }
  }
  // Stuck/dead state corrupts deterministically from the schedule; it is the
  // schedule, not a firing log, that replays these.
  if (!corrupt && link_corrupting(node, out, now)) corrupt = true;
  if (corrupt) corrupted_.fetch_add(1, std::memory_order_relaxed);
  return corrupt;
}

std::uint64_t FaultModel::fault_epoch(Cycle now) const {
  // Activations are monotone in time: the topology is fully described by how
  // many scheduled permanent faults have started.
  return static_cast<std::uint64_t>(
      std::upper_bound(perm_starts_.begin(), perm_starts_.end(), now) -
      perm_starts_.begin());
}

void FaultModel::refresh_topology_caches(Cycle now) const {
  const std::uint64_t epoch = fault_epoch(now);
  if (epoch != reach_epoch_) {
    dist_cache_.clear();
    forest_valid_ = false;
    reach_epoch_ = epoch;
  }
}

void FaultModel::prepare(Cycle now) {
  refresh_topology_caches(now);
  if (!any_failed(now)) return;
  // Materialise everything the health queries can lazily build, so the
  // const methods below never mutate under concurrent shard threads. All
  // of it is served from cache until the next epoch change.
  (void)forest(now);
  for (NodeId dst = 0; dst < mesh_.num_nodes(); ++dst) {
    (void)distances_to(dst, now);
  }
}

const FaultModel::SpanningForest& FaultModel::forest(Cycle now) const {
  refresh_topology_caches(now);
  if (forest_valid_) return forest_;
  SpanningForest& f = forest_;
  const int n = mesh_.num_nodes();
  f.level.assign(n, -1);
  f.parent.assign(n, kInvalidNode);
  f.to_parent.assign(n, Port::Local);
  f.component.assign(n, -1);
  int comp = 0;
  for (NodeId root = 0; root < n; ++root) {
    if (f.level[root] >= 0 || node_failed(root, now)) continue;
    f.level[root] = 0;
    f.component[root] = comp;
    std::deque<NodeId> frontier{root};
    while (!frontier.empty()) {
      const NodeId at = frontier.front();
      frontier.pop_front();
      for (Port p : {Port::North, Port::East, Port::South, Port::West}) {
        if (!mesh_.has_neighbor(at, p)) continue;
        const NodeId next = mesh_.neighbor(at, p);
        if (f.level[next] >= 0) continue;
        // Tree edges must carry traffic both up and down, so the edge only
        // counts when healthy in both directions.
        if (link_failed(at, p, now) || link_failed(next, opposite(p), now)) {
          continue;
        }
        f.level[next] = f.level[at] + 1;
        f.parent[next] = at;
        f.to_parent[next] = opposite(p);
        f.component[next] = comp;
        frontier.push_back(next);
      }
    }
    ++comp;
  }
  forest_valid_ = true;
  return f;
}

Port FaultModel::updown_next(NodeId here, NodeId dst, Cycle now) const {
  HN_CHECK(mesh_.valid(here) && mesh_.valid(dst));
  if (here == dst) return Port::Local;
  const SpanningForest& f = forest(now);
  if (f.level[here] < 0 || f.level[dst] < 0 ||
      f.component[here] != f.component[dst]) {
    return Port::Local;
  }
  // Descend iff `here` is an ancestor of `dst`: climb dst's ancestor chain
  // to the level just below `here` and check whose child it is. Otherwise
  // one hop up — every up move strictly decreases the level, and once the
  // walk reaches an ancestor it descends monotonically, so routes terminate.
  NodeId x = dst;
  while (f.level[x] > f.level[here] + 1) x = f.parent[x];
  if (f.level[x] == f.level[here] + 1 && f.parent[x] == here) {
    return opposite(f.to_parent[x]);  // the link to that child, from our side
  }
  return f.to_parent[here];
}

bool FaultModel::reachable(NodeId src, NodeId dst, Cycle now) const {
  if (src == dst) return true;
  if (!any_failed(now)) return true;
  if (node_failed(src, now) || node_failed(dst, now)) return false;
  // distances_to BFSes from dst over reversed healthy links, so it marks
  // exactly the nodes with a healthy forward walk to dst.
  return distances_to(dst, now)[src] >= 0;
}

const std::vector<int>& FaultModel::distances_to(NodeId dst, Cycle now) const {
  HN_CHECK(mesh_.valid(dst));
  refresh_topology_caches(now);
  // Explicit find-before-insert: on a cache hit this method is a pure read,
  // which is what lets prepare() make it shard-thread-safe by precomputing
  // every destination once per fault epoch.
  if (auto it = dist_cache_.find(dst); it != dist_cache_.end()) {
    return it->second;
  }
  // BFS from the destination along *reversed* healthy links: the hop count
  // of the forward walk node -> ... -> dst.
  std::vector<int>& dist = dist_cache_[dst];
  dist.assign(mesh_.num_nodes(), -1);
  dist[dst] = 0;
  std::deque<NodeId> frontier{dst};
  while (!frontier.empty()) {
    const NodeId at = frontier.front();
    frontier.pop_front();
    for (Port p : {Port::North, Port::East, Port::South, Port::West}) {
      if (!mesh_.has_neighbor(at, p)) continue;
      const NodeId pred = mesh_.neighbor(at, p);
      // The forward link pred -> at leaves pred on the opposite port.
      if (dist[pred] >= 0 || link_failed(pred, opposite(p), now)) continue;
      dist[pred] = dist[at] + 1;
      frontier.push_back(pred);
    }
  }
  return dist;
}

int FaultModel::failed_links(Cycle now) const {
  if (!any_failed(now)) return 0;
  int n = 0;
  for (NodeId node = 0; node < mesh_.num_nodes(); ++node) {
    for (Port p : {Port::North, Port::East, Port::South, Port::West}) {
      if (mesh_.has_neighbor(node, p) && link_failed(node, p, now)) ++n;
    }
  }
  return n;
}

int FaultModel::bisection_links_alive(Cycle now) const {
  // Vertical mid-cut: the k eastward links out of column k/2 - 1 and the k
  // westward links out of column k/2.
  const int k = mesh_.k();
  int alive = 0;
  for (int y = 0; y < k; ++y) {
    const NodeId west_side = mesh_.node({k / 2 - 1, y});
    const NodeId east_side = mesh_.node({k / 2, y});
    if (!link_failed(west_side, Port::East, now)) ++alive;
    if (!link_failed(east_side, Port::West, now)) ++alive;
  }
  return alive;
}

std::uint64_t FaultModel::traversals(NodeId node, Port out) const {
  return links_[link_index(node, out)].traversals;
}

}  // namespace hybridnoc
