#include "noc/network.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/state_io.hpp"
#include "noc/parallel_engine.hpp"

namespace hybridnoc {

Network::Network(const NocConfig& cfg)
    : Network(
          cfg,
          [](const NocConfig& c, NodeId n, const Mesh& m) {
            return std::make_unique<Router>(c, n, m);
          },
          [](const NocConfig& c, NodeId n, const Mesh& m) {
            return std::make_unique<NetworkInterface>(c, n, m);
          }) {}

Network::Network(const NocConfig& cfg, RouterFactory make_router, NiFactory make_ni)
    : cfg_(cfg), mesh_(cfg.k), use_sched_(cfg.active_set_scheduler) {
  cfg_.validate();
  routers_.reserve(static_cast<size_t>(num_nodes()));
  nis_.reserve(static_cast<size_t>(num_nodes()));
  for (NodeId n = 0; n < num_nodes(); ++n) {
    routers_.push_back(make_router(cfg_, n, mesh_));
    nis_.push_back(make_ni(cfg_, n, mesh_));
  }
  router_ptrs_.reserve(routers_.size());
  ni_ptrs_.reserve(nis_.size());
  for (auto& r : routers_) router_ptrs_.push_back(r.get());
  for (auto& ni : nis_) ni_ptrs_.push_back(ni.get());
  watchdog_enabled_ = cfg_.watchdog_stall_cycles > 0;
  if (cfg_.tick_threads > 1) {
    engine_ = std::make_unique<ParallelTickEngine>(*this, cfg_.tick_threads);
  } else if (use_sched_) {
    sched_.reset(2 * num_nodes());
  }
  build();
  if (engine_) {
    for (auto& ni : nis_) ni->set_stage_deliveries(true);
  }
  if (cfg_.link_ber > 0.0) ensure_fault_model();
}

Network::~Network() {
  // Teardown drain: flits reference their packet through a raw pointer and
  // the packet keeps itself alive via its flight anchor until every flit is
  // terminally consumed. A network destroyed mid-run still holds unconsumed
  // flits (channels, router buffers, NI plans); release each distinct
  // packet's anchor exactly once so nothing leaks. Dedup before releasing —
  // a packet's flits are usually spread across several containers, and the
  // first release may destroy the Packet object.
  std::vector<Packet*> in_flight;
  for (auto& ch : flit_channels_) {
    ch->visit_in_flight([&](const Flit& f) {
      if (f.pkt) in_flight.push_back(f.pkt);
    });
  }
  for (const auto& r : routers_) r->collect_in_flight(in_flight);
  for (const auto& ni : nis_) ni->collect_in_flight(in_flight);
  std::unordered_set<Packet*> seen;
  for (Packet* p : in_flight) {
    if (!seen.insert(p).second) continue;
    p->live_flits = 0;
    PacketPtr anchor = std::move(p->flight);  // dropped at scope exit
  }
}

void Network::set_engine_force_serial(bool on) {
  if (engine_) engine_->set_force_serial(on);
}

FaultModel& Network::ensure_fault_model() {
  if (!faults_) {
    faults_ = std::make_unique<FaultModel>(cfg_.k, cfg_.link_ber, cfg_.fault_seed);
    for (auto& r : routers_) r->set_fault_model(faults_.get());
    for (auto& ni : nis_) ni->set_fault_model(faults_.get());
  }
  return *faults_;
}

void Network::build() {
  auto new_flit_ch = [&](int latency) {
    flit_channels_.push_back(std::make_unique<FlitChannel>(latency));
    return flit_channels_.back().get();
  };
  auto new_credit_ch = [&]() {
    credit_channels_.push_back(std::make_unique<CreditChannel>(kCreditChannelLatency));
    return credit_channels_.back().get();
  };

  // Per-consumer scheduler: the single global one, or — under the parallel
  // engine — the scheduler of the shard that owns the consuming component.
  auto sched_for = [&](int id) -> TickScheduler* {
    if (engine_) return engine_->sched_for(id);
    return use_sched_ ? &sched_ : nullptr;
  };
  for (NodeId n = 0; n < num_nodes(); ++n) {
    Router& r = *routers_[static_cast<size_t>(n)];
    NetworkInterface& ni = *nis_[static_cast<size_t>(n)];
    ni.set_scheduler(sched_for(ni_sched_id(n)), ni_sched_id(n));

    // NI <-> router local port. Every channel registers its consumer so
    // sends wake the right component at the item's ready cycle. NI n and
    // router n always share a shard, so these four never cross shards.
    FlitChannel* inj = new_flit_ch(kDataChannelLatency);
    CreditChannel* inj_cr = new_credit_ch();
    FlitChannel* ej = new_flit_ch(kDataChannelLatency);
    CreditChannel* ej_cr = new_credit_ch();
    inj->set_consumer(sched_for(router_sched_id(n)), router_sched_id(n));
    inj_cr->set_consumer(sched_for(ni_sched_id(n)), ni_sched_id(n));
    ej->set_consumer(sched_for(ni_sched_id(n)), ni_sched_id(n));
    ej_cr->set_consumer(sched_for(router_sched_id(n)), router_sched_id(n));
    r.connect_input(Port::Local, inj, inj_cr, &ni, Port::Local);
    r.connect_output(Port::Local, ej, ej_cr);
    r.set_downstream_active_vcs(Port::Local, ni.eject_active_vcs_ptr());
    ni.connect(inj, inj_cr, ej, ej_cr, &r);

    // Directed mesh links: create the outgoing side here; the matching input
    // side of the neighbour is wired in the same pass when we visit it from
    // this direction, so do both ends for each outgoing port now.
    for (int pi = 1; pi < kNumPorts; ++pi) {
      const Port p = static_cast<Port>(pi);
      if (!mesh_.has_neighbor(n, p)) continue;
      const NodeId m = mesh_.neighbor(n, p);
      Router& nb = *routers_[static_cast<size_t>(m)];
      FlitChannel* data = new_flit_ch(kDataChannelLatency);
      CreditChannel* cr = new_credit_ch();
      data->set_consumer(sched_for(router_sched_id(m)), router_sched_id(m));
      cr->set_consumer(sched_for(router_sched_id(n)), router_sched_id(n));
      if (engine_) {
        // Mesh links are the only channels that can cross a shard boundary
        // (data flows n -> m, the matching credits m -> n).
        engine_->register_link_channel(data, router_sched_id(n),
                                       router_sched_id(m));
        engine_->register_link_channel(cr, router_sched_id(m),
                                       router_sched_id(n));
      }
      r.connect_output(p, data, cr);
      nb.connect_input(opposite(p), data, cr, &r, p);
      r.set_downstream_active_vcs(p, nb.announced_active_vcs_ptr());
    }
  }
}

void Network::watchdog_tick() {
  // Sweep cadence matches the reservation-lease sweep so the two scans share
  // wake cycles. Flagging is stat-only (stall_flagged + counters), so where
  // the sweep lands inside the cycle is unobservable. The caller has already
  // checked watchdog_enabled_ and the 1024-cycle boundary, so every call
  // here is a real sweep, never a per-cycle no-op.
  ++profile_.watchdog_sweeps;
  for (NetworkInterface* ni : ni_ptrs_) {
    ni->watchdog_scan(now_, cfg_.watchdog_stall_cycles);
  }
}

void Network::tick() {
  ++profile_.cycles;
  if (watchdog_enabled_ && now_ != 0 && (now_ & 1023) == 0) watchdog_tick();
  if (engine_) {
    engine_->run_cycle(now_);
    ++now_;
    return;
  }
  if (!use_sched_) {
    for (NetworkInterface* ni : ni_ptrs_) ni->tick(now_);
    for (Router* r : router_ptrs_) r->tick(now_);
    profile_.ni_ticks += static_cast<std::uint64_t>(ni_ptrs_.size());
    profile_.router_ticks += static_cast<std::uint64_t>(router_ptrs_.size());
    ++now_;
    return;
  }
  sched_.begin_cycle(now_);
  if (sched_.anything_active()) {
    // Drain the scheduler's sorted active run list (NIs then routers —
    // scheduler ids are assigned so ascending id == legacy order). The cost
    // is O(active components), not O(nodes): an idle 64x64 mesh pays the
    // same per-cycle dispatch cost as an idle 8x8. Components activated
    // mid-sweep are handled exactly as under the full flag-scan: still
    // ahead -> spliced in and ticked this cycle, already passed -> ticks
    // next cycle (see TickScheduler::sweep).
    const int nn = num_nodes();
    sched_.sweep([&](int id) {
      if (id < nn) {
        ni_ptrs_[static_cast<size_t>(id)]->tick(now_);
        ++profile_.ni_ticks;
      } else {
        router_ptrs_[static_cast<size_t>(id - nn)]->tick(now_);
        ++profile_.router_ticks;
      }
    });
    sched_.compact(
        [&](int id) {
          return id < nn ? ni_ptrs_[static_cast<size_t>(id)]->sched_busy()
                         : router_ptrs_[static_cast<size_t>(id - nn)]->sched_busy();
        },
        [&](int id) {
          return id < nn
                     ? ni_ptrs_[static_cast<size_t>(id)]->sched_next_event(now_)
                     : router_ptrs_[static_cast<size_t>(id - nn)]->sched_next_event(now_);
        });
  }
  ++now_;
}

void Network::fast_forward(Cycle target) {
  while (now_ < target) {
    if (use_sched_) {
      // With the parallel engine the wake state lives in per-shard
      // schedulers; quiescence is the conjunction over shards and the jump
      // target the minimum of their wake heaps. begin_cycle is idempotent
      // at a fixed cycle, so the compute phase re-running it is harmless.
      if (engine_) {
        engine_->begin_cycle(now_);
      } else {
        sched_.begin_cycle(now_);
      }
      const bool active =
          engine_ ? engine_->anything_active() : sched_.anything_active();
      if (!active) {
        // Nothing can happen until the earliest component wake or external
        // (controller) event: jump there in one step. Skipped cycles are
        // provably no-ops, and their energy constants fold in lazily.
        Cycle jump = std::min({target,
                               engine_ ? engine_->next_wake_cycle()
                                       : sched_.next_wake_cycle(),
                               external_next_event(now_)});
        // The starvation watchdog must observe every sweep boundary, or its
        // flags would differ between the engines.
        if (watchdog_enabled_) {
          jump = std::min(jump, (now_ | 1023) + 1);
        }
        if (jump > now_) {
          ++profile_.ff_jumps;
          profile_.ff_skipped_cycles += jump - now_;
          now_ = jump;
        }
        if (now_ >= target) break;
      }
    }
    tick();
  }
}

void Network::set_deliver_handler(const DeliverFn& fn) {
  for (auto& ni : nis_) ni->set_deliver_handler(fn);
}

void Network::set_policy_frozen(bool frozen) {
  for (auto& ni : nis_) ni->set_policy_frozen(frozen);
}

bool Network::quiescent() const {
  for (const auto& ni : nis_)
    if (!ni->idle()) return false;
  for (const auto& r : routers_)
    if (!r->idle()) return false;
  for (const auto& ch : flit_channels_)
    if (!ch->empty()) return false;
  return true;
}

EnergyCounters Network::total_energy() const {
  // Incrementally settled query: the component sweep runs at most once per
  // cycle value. Energy only changes inside ticks (which advance now_
  // afterwards), so a repeat query at an unchanged clock returns the memo.
  if (energy_memo_at_ == now_) return energy_memo_;
  EnergyCounters total;
  for (const Router* r : router_ptrs_) total += r->settled_energy(now_);
  for (const NetworkInterface* ni : ni_ptrs_) total += ni->settled_energy(now_);
  energy_memo_ = total;
  energy_memo_at_ = now_;
  return total;
}

TickProfile Network::tick_profile() const {
  TickProfile p = profile_;
  if (engine_) engine_->accumulate_profile(p);
  const AllocStats::Snapshot now = AllocStats::instance().snapshot();
  p.packets_minted = now.packets_minted - alloc_base_.packets_minted;
  p.pool_hits = now.pool_hits - alloc_base_.pool_hits;
  p.pool_misses = now.pool_misses - alloc_base_.pool_misses;
  p.flight_acquires = now.flight_acquires - alloc_base_.flight_acquires;
  p.flight_releases = now.flight_releases - alloc_base_.flight_releases;
  return p;
}

std::uint64_t Network::total_data_sent() const {
  std::uint64_t t = 0;
  for (const auto& ni : nis_) t += ni->data_packets_sent();
  return t;
}

std::uint64_t Network::total_data_delivered() const {
  std::uint64_t t = 0;
  for (const auto& ni : nis_) t += ni->data_packets_delivered();
  return t;
}

std::uint64_t Network::total_ps_flits() const {
  std::uint64_t t = 0;
  for (const auto& ni : nis_) t += ni->ps_data_flits_injected();
  return t;
}

std::uint64_t Network::total_cs_flits() const {
  std::uint64_t t = 0;
  for (const auto& ni : nis_) t += ni->cs_data_flits_injected();
  return t;
}

std::uint64_t Network::total_flits_of_class(TrafficClass c) const {
  std::uint64_t t = 0;
  for (const auto& ni : nis_) t += ni->flits_of_class(c);
  return t;
}

std::uint64_t Network::total_config_flits() const {
  std::uint64_t t = 0;
  for (const auto& ni : nis_) t += ni->config_flits_injected();
  return t;
}

DegradationReport Network::degradation_report() const {
  DegradationReport r;
  for (const auto& ni : nis_) {
    r.data_sent += ni->data_packets_sent();
    r.data_delivered += ni->data_packets_delivered();
    r.retransmits += ni->retransmits();
    r.retx_give_ups += ni->retx_give_ups();
    r.unreachable_failed += ni->unreachable_failed();
    r.crc_squashed_packets += ni->crc_squashed_packets();
    r.e2e_acks_sent += ni->e2e_acks_sent();
    r.e2e_duplicates_dropped += ni->e2e_duplicates_dropped();
    r.e2e_outstanding += ni->e2e_outstanding();
    r.watchdog_flagged += ni->watchdog_flagged();
  }
  for (const auto& rt : routers_) r.crc_flagged_flits += rt->crc_flagged_flits();
  if (faults_) {
    r.corrupted_traversals = faults_->corrupted_traversals();
    r.failed_links = faults_->failed_links(now_);
    r.bisection_links_total = faults_->bisection_links_total();
    r.bisection_links_alive = faults_->bisection_links_alive(now_);
  }
  return r;
}

bool Network::drain(Cycle max_cycles) {
  set_policy_frozen(true);
  const Cycle deadline = now_ + max_cycles;
  while (!quiescent()) {
    if (now_ >= deadline) return false;
    tick();
  }
  return true;
}

std::string Network::save_state() const {
  HN_CHECK_MSG(quiescent(), "checkpoint requires a drained network");
  HN_CHECK_MSG(!faults_, "checkpoint does not cover the fault model");
  HN_CHECK_MSG(!engine_, "checkpoint requires tick_threads == 1");
  StateWriter w;
  w.section("network");
  w.u64(now_);
  w.i32(cfg_.k);
  w.i32(cfg_.num_vcs);
  w.i32(cfg_.vc_buffer_depth);
  save_external_state(w);
  for (const auto& ni : nis_) ni->save_state(w);
  for (const auto& r : routers_) r->save_state(w);
  return w.seal();
}

void Network::restore_state(const std::string& sealed) {
  HN_CHECK_MSG(now_ == 0 && quiescent(),
               "restore requires a freshly constructed network");
  HN_CHECK_MSG(!faults_, "restore does not cover the fault model");
  HN_CHECK_MSG(!engine_, "restore requires tick_threads == 1");
  StateReader r(sealed);  // verifies magic/version/digest, throws StateError
  r.section("network");
  const Cycle now = r.u64();
  if (r.i32() != cfg_.k || r.i32() != cfg_.num_vcs ||
      r.i32() != cfg_.vc_buffer_depth) {
    throw StateError("checkpoint topology/config mismatch");
  }
  restore_external_state(r);
  for (const auto& ni : nis_) ni->restore_state(r);
  for (const auto& router : routers_) router->restore_state(r);
  r.finish();
  now_ = now;
  energy_memo_at_ = kCycleNever;
  // The scheduler keeps its fresh all-active state: the first tick then
  // behaves exactly like a full sweep (spurious ticks of idle components
  // are deterministic no-ops), after which components earn their way back
  // to sleep — identical observable behaviour to the saved network.
}

}  // namespace hybridnoc
