#include "noc/network.hpp"

namespace hybridnoc {

Network::Network(const NocConfig& cfg)
    : Network(
          cfg,
          [](const NocConfig& c, NodeId n, const Mesh& m) {
            return std::make_unique<Router>(c, n, m);
          },
          [](const NocConfig& c, NodeId n, const Mesh& m) {
            return std::make_unique<NetworkInterface>(c, n, m);
          }) {}

Network::Network(const NocConfig& cfg, RouterFactory make_router, NiFactory make_ni)
    : cfg_(cfg), mesh_(cfg.k) {
  cfg_.validate();
  routers_.reserve(static_cast<size_t>(num_nodes()));
  nis_.reserve(static_cast<size_t>(num_nodes()));
  for (NodeId n = 0; n < num_nodes(); ++n) {
    routers_.push_back(make_router(cfg_, n, mesh_));
    nis_.push_back(make_ni(cfg_, n, mesh_));
  }
  build();
}

void Network::build() {
  auto new_flit_ch = [&](int latency) {
    flit_channels_.push_back(std::make_unique<FlitChannel>(latency));
    return flit_channels_.back().get();
  };
  auto new_credit_ch = [&]() {
    credit_channels_.push_back(std::make_unique<CreditChannel>(kCreditChannelLatency));
    return credit_channels_.back().get();
  };

  for (NodeId n = 0; n < num_nodes(); ++n) {
    Router& r = *routers_[static_cast<size_t>(n)];
    NetworkInterface& ni = *nis_[static_cast<size_t>(n)];

    // NI <-> router local port.
    FlitChannel* inj = new_flit_ch(kDataChannelLatency);
    CreditChannel* inj_cr = new_credit_ch();
    FlitChannel* ej = new_flit_ch(kDataChannelLatency);
    CreditChannel* ej_cr = new_credit_ch();
    r.connect_input(Port::Local, inj, inj_cr, &ni, Port::Local);
    r.connect_output(Port::Local, ej, ej_cr);
    r.set_downstream_active_vcs(Port::Local, ni.eject_active_vcs_ptr());
    ni.connect(inj, inj_cr, ej, ej_cr, &r);

    // Directed mesh links: create the outgoing side here; the matching input
    // side of the neighbour is wired in the same pass when we visit it from
    // this direction, so do both ends for each outgoing port now.
    for (int pi = 1; pi < kNumPorts; ++pi) {
      const Port p = static_cast<Port>(pi);
      if (!mesh_.has_neighbor(n, p)) continue;
      const NodeId m = mesh_.neighbor(n, p);
      Router& nb = *routers_[static_cast<size_t>(m)];
      FlitChannel* data = new_flit_ch(kDataChannelLatency);
      CreditChannel* cr = new_credit_ch();
      r.connect_output(p, data, cr);
      nb.connect_input(opposite(p), data, cr, &r, p);
      r.set_downstream_active_vcs(p, nb.announced_active_vcs_ptr());
    }
  }
}

void Network::tick() {
  for (auto& ni : nis_) ni->tick(now_);
  for (auto& r : routers_) r->tick(now_);
  ++now_;
}

void Network::set_deliver_handler(const DeliverFn& fn) {
  for (auto& ni : nis_) ni->set_deliver_handler(fn);
}

void Network::set_policy_frozen(bool frozen) {
  for (auto& ni : nis_) ni->set_policy_frozen(frozen);
}

bool Network::quiescent() const {
  for (const auto& ni : nis_)
    if (!ni->idle()) return false;
  for (const auto& r : routers_)
    if (!r->idle()) return false;
  for (const auto& ch : flit_channels_)
    if (!ch->empty()) return false;
  return true;
}

EnergyCounters Network::total_energy() const {
  EnergyCounters total;
  for (const auto& r : routers_) total += r->energy();
  for (const auto& ni : nis_) total += ni->energy();
  return total;
}

std::uint64_t Network::total_data_sent() const {
  std::uint64_t t = 0;
  for (const auto& ni : nis_) t += ni->data_packets_sent();
  return t;
}

std::uint64_t Network::total_data_delivered() const {
  std::uint64_t t = 0;
  for (const auto& ni : nis_) t += ni->data_packets_delivered();
  return t;
}

std::uint64_t Network::total_ps_flits() const {
  std::uint64_t t = 0;
  for (const auto& ni : nis_) t += ni->ps_data_flits_injected();
  return t;
}

std::uint64_t Network::total_cs_flits() const {
  std::uint64_t t = 0;
  for (const auto& ni : nis_) t += ni->cs_data_flits_injected();
  return t;
}

std::uint64_t Network::total_flits_of_class(TrafficClass c) const {
  std::uint64_t t = 0;
  for (const auto& ni : nis_) t += ni->flits_of_class(c);
  return t;
}

std::uint64_t Network::total_config_flits() const {
  std::uint64_t t = 0;
  for (const auto& ni : nis_) t += ni->config_flits_injected();
  return t;
}

}  // namespace hybridnoc
