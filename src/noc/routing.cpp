#include "noc/routing.hpp"

#include "noc/fault_model.hpp"

namespace hybridnoc {

Port route_xy(const Mesh& mesh, NodeId here, NodeId dst) {
  const Coord c = mesh.coord(here);
  const Coord d = mesh.coord(dst);
  if (c.x < d.x) return Port::East;
  if (c.x > d.x) return Port::West;
  if (c.y < d.y) return Port::South;
  if (c.y > d.y) return Port::North;
  return Port::Local;
}

std::vector<Port> west_first_candidates(const Mesh& mesh, NodeId here, NodeId dst) {
  const Coord c = mesh.coord(here);
  const Coord d = mesh.coord(dst);
  if (here == dst) return {Port::Local};
  // West-first: westward moves are not adaptive — they must all happen
  // before any other turn, which removes the turns that close deadlock
  // cycles (Glass & Ni).
  if (c.x > d.x) return {Port::West};
  std::vector<Port> out;
  if (c.x < d.x) out.push_back(Port::East);
  if (c.y > d.y) out.push_back(Port::North);
  if (c.y < d.y) out.push_back(Port::South);
  return out;
}

Port route_fault_aware(const Mesh& mesh, const FaultModel& faults, NodeId here,
                       NodeId dst, Cycle now) {
  (void)mesh;
  // Up*/down* over a BFS spanning forest of the surviving topology. A greedy
  // shortest-surviving-path detour looks tempting, but distance-descent
  // routes to different destinations take turns in every direction and can
  // close wormhole buffer cycles — observed as a hard fabric deadlock under
  // a sustained multi-flow fault storm. Tree routes cost extra hops yet keep
  // the channel dependency graph acyclic (all up moves strictly precede all
  // down moves), so every fault epoch stays deadlock-free by construction.
  return faults.updown_next(here, dst, now);
}

}  // namespace hybridnoc
