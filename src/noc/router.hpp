// Canonical virtual-channel wormhole router (the Packet-VC4 baseline), with
// the extension points the TDM hybrid router of Section II-D plugs into.
//
// Pipeline (4 stages + link), matching the paper's packet-switched path:
//   cycle T    BW+RC   flit readable on the input channel; buffered, head
//                      flits routed
//   cycle T+1  VA      head flit competes for a downstream virtual channel
//   cycle T+2  SA      flit competes for the crossbar (grant is for T+3)
//   cycle T+3  ST      crossbar traversal, flit written to the output link
//   T+5                readable at the next router (1 cycle in flight)
//
// Switch allocation in cycle C grants crossbar passage in cycle C+1, so the
// router knows one cycle ahead which (input, output) pairs the crossbar will
// use — exactly the look-ahead the hybrid router needs to honour slot-table
// reservations and to perform time-slot stealing.
//
// Flow control is credit-based with conservative atomic VC reallocation: an
// output VC is granted to a new packet only when it is unallocated and all
// its credits are home.
//
// Aggressive VC power gating (Section III-B) lives here because the paper
// applies it to both packet- and hybrid-switched routers: an epoch-based
// controller compares VC utilisation against Threshold_High/Threshold_Low,
// activates or drains one VC set at a time, and never gates a VC that still
// holds flits or is allocated by an upstream router.
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "common/config.hpp"
#include "common/ring.hpp"
#include "common/geometry.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "noc/channel.hpp"
#include "noc/routing.hpp"
#include "power/energy_model.hpp"

namespace hybridnoc {

class FaultModel;
class StateWriter;
class StateReader;

/// Anything that can hold an allocation of a downstream input VC — an
/// upstream Router or a NetworkInterface. The VC-gating controller polls the
/// upstream holder before powering a VC off ("the VC must be evacuated
/// before adjusting").
class VcHolder {
 public:
  virtual ~VcHolder() = default;
  /// True if this holder currently has `vc` allocated on the output that
  /// feeds the asking router's input port.
  virtual bool holds_vc_allocation(Port out_port, int vc) const = 0;
};

class Router : public VcHolder {
 public:
  Router(const NocConfig& cfg, NodeId id, const Mesh& mesh);
  ~Router() override = default;

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  // --- wiring (done once by the Network) ---
  void connect_input(Port p, FlitChannel* data_in, CreditChannel* credit_out,
                     VcHolder* upstream, Port upstream_out);
  void connect_output(Port p, FlitChannel* data_out, CreditChannel* credit_in);
  /// Downstream router (or NI) whose announced active-VC count bounds VA.
  void set_downstream_active_vcs(Port p, const int* active_vcs);
  /// Hardware fault model (owned by the Network; nullptr = perfect fabric).
  /// Every link traversal consults it, and data routing detours around links
  /// it reports permanently failed.
  void set_fault_model(FaultModel* fm) { faults_ = fm; }

  /// One simulated cycle. The Network calls every router once per cycle in a
  /// fixed order; all inter-router traffic crosses latency>=1 channels, so
  /// the order is not observable.
  void tick(Cycle now);

  NodeId id() const { return id_; }
  const NocConfig& cfg() const { return cfg_; }

  /// VC count this router currently lets upstream allocators use.
  int announced_active_vcs() const { return announced_active_vcs_; }
  const int* announced_active_vcs_ptr() const { return &announced_active_vcs_; }

  // VcHolder: does this router hold downstream VC `vc` on output `out`?
  bool holds_vc_allocation(Port out_port, int vc) const override;

  const EnergyCounters& energy() const { return energy_; }
  std::uint64_t flits_traversed() const { return flits_traversed_; }
  /// Arriving flits whose per-hop CRC check flagged corruption. Detection
  /// only — fail-dirty flits keep flowing and the destination NI squashes.
  std::uint64_t crc_flagged_flits() const { return crc_flagged_flits_; }

  /// No buffered flits and no pending crossbar grants.
  bool idle() const;

  /// Checkpoint this router's state. Requires idle() — every VC must be
  /// empty; arbiter pointers, credits, gating state and counters serialize.
  virtual void save_state(StateWriter& w) const;
  /// Restore into a freshly constructed router of the same configuration.
  virtual void restore_state(StateReader& r);

  /// Total free credits on `out` across VCs usable by upstream — the
  /// congestion metric for adaptive route selection.
  int free_credits(Port out) const;

  /// Append the packet of every flit still buffered in this router (VC
  /// FIFOs, ST registers; subclasses add their latches) to `out`. Teardown
  /// support: the Network's destructor releases the flight anchors of
  /// traffic abandoned mid-run so nothing leaks.
  virtual void collect_in_flight(std::vector<Packet*>& out) const;

  // --- active-set scheduling (see noc/scheduler.hpp for the contract) ---
  /// Must this router be ticked next cycle regardless of channel activity?
  virtual bool sched_busy() const;
  /// Next cycle > now at which this (currently idle) router can have
  /// observable work that no Channel::send wake would cover.
  virtual Cycle sched_next_event(Cycle now) const;
  /// energy() plus the per-cycle constants for cycles slept through but not
  /// yet folded in, as of network cycle `now` (i.e. cycles [0, now)).
  EnergyCounters settled_energy(Cycle now) const;
  /// Fold idle-cycle constants through cycle `through` inclusive into the
  /// live counters. Must be called before any per-cycle energy *rate*
  /// changes underneath a sleeping component (e.g. a slot-table resize).
  void settle_energy(Cycle through);

 protected:
  struct BufferedFlit {
    Flit flit;
    Cycle bw_cycle = 0;
  };

  /// One virtual channel of one input port.
  struct VcState {
    enum class S { Idle, WaitVc, Active };
    S state = S::Idle;
    RingDeque<BufferedFlit> fifo;
    Port out_port = Port::Local;
    int out_vc = -1;
    Cycle va_eligible = 0;
    Cycle sa_eligible = 0;
    Packet* pkt = nullptr;  ///< packet currently owning this VC (flight-anchored)
  };

  struct InputPort {
    FlitChannel* data = nullptr;
    CreditChannel* credit_out = nullptr;
    VcHolder* upstream = nullptr;
    Port upstream_out = Port::Local;
    std::vector<VcState> vcs;
    int sa_rr = 0;  ///< round-robin pointer over VCs
    /// Bitmask caches of the per-VC states (bit v set <=> vcs[v].state is
    /// WaitVc / Active). The allocation stages and the gating census scan
    /// set bits instead of walking every VcState each cycle, which is the
    /// dominant per-tick cost once flit movement itself is allocation-free.
    std::uint32_t wait_mask = 0;
    std::uint32_t active_mask = 0;
  };

  struct OutputPort {
    FlitChannel* data = nullptr;
    CreditChannel* credit_in = nullptr;
    const int* downstream_active_vcs = nullptr;
    std::vector<int> credits;
    std::vector<bool> vc_busy;    ///< allocated to an in-flight packet
    std::vector<bool> tail_sent;  ///< tail gone; waiting for credits to refill
    int sa_rr = 0;   ///< round-robin pointer over input ports
    int va_rr = 0;   ///< round-robin pointer over downstream VCs
    /// Incrementally maintained sum of credits[0..cached_active), the
    /// adaptive-routing congestion metric. cached_active == -1 until the
    /// first free_credits() call (and after the downstream active-VC count
    /// changes), which recomputes the prefix from scratch.
    mutable int cached_free_credits = 0;
    mutable int cached_active = -1;
    /// Bit v set <=> downstream VC v is grantable under conservative atomic
    /// reallocation (!vc_busy && !tail_sent && credits == depth). Updated at
    /// the grant and the credit-refill reallocation point, so a waiting VC's
    /// failed VA attempt — the steady state under saturation — is one AND
    /// instead of a scan over every downstream VC.
    std::uint32_t grantable_mask = 0;
  };

  /// A switch-allocation winner waiting for its crossbar cycle.
  struct StReg {
    Flit flit;
    Port out = Port::Local;
    Cycle st_cycle = 0;
  };

  // --- extension points for the hybrid router ---
  /// First chance at an arriving flit. Return true if consumed (the hybrid
  /// router diverts circuit-switched flits to the CS latch here). The base
  /// router never sees circuit-switched flits.
  virtual bool handle_arrival(Flit& flit, Port in, Cycle now);
  /// May the crossbar pass a packet-switched flit (in -> out) at st_cycle?
  /// The hybrid router consults the slot table (and the advance signal, for
  /// time-slot stealing). Base: always.
  virtual bool st_ok(Port in, Port out, Cycle st_cycle);
  /// Route a head flit; may mutate the packet (the hybrid router processes
  /// setup/teardown here). nullopt = consume the flit without forwarding
  /// (single-flit config packets only).
  virtual std::optional<Port> compute_route(Packet* pkt, Port in, Cycle now);
  /// A CRC-flagged config message was evaporated at this router's input:
  /// acting on damaged protocol fields (slot ids, owner tags) would corrupt
  /// reservation state, and the protocol's timeout/lease machinery already
  /// recovers from the loss. The hybrid router retires it with the
  /// controller's config-in-flight ledger.
  virtual void on_config_corrupt(Packet* pkt) { (void)pkt; }
  /// Called during the traversal phase so the hybrid router can push the
  /// circuit-switched flits it collected this cycle through the crossbar.
  virtual void traverse_circuit(Cycle now) { (void)now; }
  /// Extra per-cycle leakage integrals (slot tables, DLT, CS latches).
  virtual void leakage_tick(Cycle now) { (void)now; }
  /// Add `ncycles` worth of the per-idle-cycle energy constants (what
  /// accounting_tick + leakage_tick would have accrued had this router been
  /// ticked while idle) to `e` in closed form. Subclasses extend it with
  /// their own leakage integrals.
  virtual void accumulate_idle_energy(EnergyCounters& e, std::uint64_t ncycles) const;
  /// Re-anchor epoch state after a sleep so the boundary check in this tick
  /// sees the same phase the full sweep would. Skipped boundaries were
  /// no-ops by construction: sched_next_event keeps the router awake at
  /// every boundary where gating state could change.
  virtual void align_epochs(Cycle now);

  // --- services shared with subclasses ---
  void send_flit(Port out, Flit flit, Cycle now);  ///< crossbar + link + channel
  /// Mark a crossbar output as used this cycle; aborts on double use. The
  /// hybrid router claims outputs for circuit-switched traversals with this
  /// so CS/PS conflicts are caught.
  void claim_xbar_output(Port out);
  Port route_data(NodeId dst) const { return route_xy(mesh_, id_, dst); }
  Port route_adaptive(NodeId dst, Cycle now);
  int powered_vcs() const;  ///< active + draining (for leakage)
  int num_ports_in_use() const { return static_cast<int>(ports_present_); }

  const NocConfig cfg_;
  const NodeId id_;
  const Mesh& mesh_;
  FaultModel* faults_ = nullptr;
  std::array<InputPort, kNumPorts> in_;
  std::array<OutputPort, kNumPorts> out_;
  EnergyCounters energy_;
  /// Number of cycles whose per-cycle energy constants are already in
  /// energy_ (== the cycle after the last accounted one). Cycles in
  /// [accounted_until_, now) were slept through and are folded lazily.
  Cycle accounted_until_ = 0;

 private:
  void receive_credits(Cycle now);
  void receive_flits(Cycle now);
  void vc_allocate(Cycle now);
  void switch_allocate(Cycle now);
  void switch_traverse(Cycle now);
  void vc_gating_tick(Cycle now);
  void accounting_tick(Cycle now);

  /// Index of the VC (if any) from input `p` picked by the input arbiter.
  int pick_sa_candidate(InputPort& ip, Port p, Cycle now);

  std::vector<StReg> st_regs_;
  std::array<bool, kNumPorts> xbar_out_used_{};
  std::uint64_t flits_traversed_ = 0;
  std::uint64_t crc_flagged_flits_ = 0;

  // --- VC power gating state ---
  int announced_active_vcs_;  ///< what upstream allocators may use
  int draining_vc_ = -1;      ///< VC being evacuated, or -1
  std::uint64_t busy_vc_integral_ = 0;
  /// Buffered-flit residency accounting for the latency gating metric.
  std::uint64_t residency_sum_ = 0;
  std::uint64_t residency_count_ = 0;
  Cycle epoch_start_ = 0;

  size_t ports_present_ = 0;
};

}  // namespace hybridnoc
