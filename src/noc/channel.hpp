// Pipelined point-to-point channels. All cross-component communication in the
// simulator (flits, credits, sideband signals) flows through Channel<T>
// registers, which is what makes the fixed component tick order safe: nothing
// written in cycle T is visible before T + latency.
//
// Data links use latency 2 ("written at end of T, readable at T+2"): the
// intervening cycle is the link-transmission stage, so a circuit-switched flit
// crossing a crossbar at slot s crosses the next router's crossbar at s+2 —
// exactly the modulo-S slot increment the setup protocol applies per hop
// (Section II-B).
#pragma once

#include <deque>
#include <optional>
#include <utility>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace hybridnoc {

constexpr int kDataChannelLatency = 2;   ///< router ST -> next router arrival
constexpr int kCreditChannelLatency = 1; ///< credit wire

template <typename T>
class Channel {
 public:
  explicit Channel(int latency) : latency_(latency) { HN_CHECK(latency >= 1); }

  /// Enqueue `item` at the end of cycle `now`; readable at now + latency.
  void send(T item, Cycle now) {
    HN_CHECK_MSG(queue_.empty() || queue_.back().ready <= now + static_cast<Cycle>(latency_),
                 "channel writes must be issued in cycle order");
    queue_.push_back({now + static_cast<Cycle>(latency_), std::move(item)});
  }

  /// Pop the item readable at `now`, if any.
  std::optional<T> receive(Cycle now) {
    if (queue_.empty() || queue_.front().ready > now) return std::nullopt;
    HN_CHECK_MSG(queue_.front().ready == now, "unconsumed channel item");
    T item = std::move(queue_.front().item);
    queue_.pop_front();
    return item;
  }

  /// Non-destructive check: will an item become readable exactly at `cycle`?
  /// Models the one-bit circuit-switched advance signal of Section II-D.
  bool arrival_at(Cycle cycle) const {
    for (const auto& e : queue_) {
      if (e.ready == cycle) return true;
      if (e.ready > cycle) break;
    }
    return false;
  }

  const T* peek_arrival(Cycle cycle) const {
    for (const auto& e : queue_) {
      if (e.ready == cycle) return &e.item;
      if (e.ready > cycle) break;
    }
    return nullptr;
  }

  bool empty() const { return queue_.empty(); }
  size_t in_flight() const { return queue_.size(); }
  int latency() const { return latency_; }

 private:
  struct Entry {
    Cycle ready;
    T item;
  };
  std::deque<Entry> queue_;
  int latency_;
};

using FlitChannel = Channel<Flit>;

/// One returned buffer slot for VC `vc` at the downstream input port. The
/// upstream router reallocates a downstream VC to a new packet only after the
/// tail was sent and every credit is home (conservative atomic reallocation).
struct Credit {
  int vc = 0;
};

using CreditChannel = Channel<Credit>;

}  // namespace hybridnoc
