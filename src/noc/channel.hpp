// Pipelined point-to-point channels. All cross-component communication in the
// simulator (flits, credits, sideband signals) flows through Channel<T>
// registers, which is what makes the fixed component tick order safe: nothing
// written in cycle T is visible before T + latency.
//
// Data links use latency 2 ("written at end of T, readable at T+2"): the
// intervening cycle is the link-transmission stage, so a circuit-switched flit
// crossing a crossbar at slot s crosses the next router's crossbar at s+2 —
// exactly the modulo-S slot increment the setup protocol applies per hop
// (Section II-B).
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/ring.hpp"
#include "common/types.hpp"
#include "noc/scheduler.hpp"

namespace hybridnoc {

constexpr int kDataChannelLatency = 2;   ///< router ST -> next router arrival
constexpr int kCreditChannelLatency = 1; ///< credit wire

/// Type-erased staging control for the parallel tick engine. A channel
/// whose producer and consumer live in different shards is put in staged
/// mode: send() appends to a private outbox the producer thread owns, and
/// the consumer's shard applies the outbox with commit_staged() after the
/// compute barrier — so neither side ever touches the live queue (or the
/// consumer's wake scheduler) from a foreign thread. Same-shard channels
/// stay in eager mode and behave exactly as before.
class ChannelBase {
 public:
  virtual ~ChannelBase() = default;
  void set_staged(bool on) { staged_ = on; }
  bool staged() const { return staged_; }
  /// Move every staged entry into the live queue, in send order, waking the
  /// consumer per entry. Called from the consumer's shard only.
  virtual void commit_staged() = 0;

 protected:
  bool staged_ = false;
};

template <typename T>
class Channel : public ChannelBase {
 public:
  explicit Channel(int latency) : latency_(latency) { HN_CHECK(latency >= 1); }

  /// Register the component that drains this channel, so every send wakes it
  /// at the item's ready cycle (the active-set scheduler's wake source).
  void set_consumer(TickScheduler* sched, int consumer_id) {
    sched_ = sched;
    consumer_ = consumer_id;
  }

  /// Enqueue `item` at the end of cycle `now`; readable at now + latency.
  void send(T item, Cycle now) {
    const Cycle ready = now + static_cast<Cycle>(latency_);
    if (staged_) {
      // Producer-thread-private outbox; the live queue, the ordering check
      // and the consumer wake all happen at commit_staged().
      staging_.push_back({ready, std::move(item)});
      return;
    }
    HN_CHECK_MSG(queue_.empty() || queue_.back().ready <= ready,
                 "channel writes must be issued in cycle order");
    queue_.push_back({ready, std::move(item)});
    if (sched_) sched_->wake_at(consumer_, ready);
  }

  void commit_staged() override {
    if (staging_.empty()) return;
    // One ordering check against the live queue, then one wake per distinct
    // ready cycle: staged sends arrive in issue order, so equal ready cycles
    // (the common case — one compute phase stages one cycle's sends) are
    // contiguous and need a single wake_at.
    HN_CHECK_MSG(queue_.empty() || queue_.back().ready <= staging_.front().ready,
                 "channel writes must be issued in cycle order");
    Cycle prev = staging_.front().ready;
    Cycle last_waked = kCycleNever;
    for (Entry& e : staging_) {
      HN_CHECK_MSG(prev <= e.ready, "staged channel writes out of cycle order");
      prev = e.ready;
      const Cycle ready = e.ready;
      queue_.push_back(std::move(e));
      if (sched_ && ready != last_waked) {
        sched_->wake_at(consumer_, ready);
        last_waked = ready;
      }
    }
    staging_.clear();
  }

  /// Pop the item readable at `now`, if any.
  std::optional<T> receive(Cycle now) {
    if (queue_.empty() || queue_.front().ready > now) return std::nullopt;
    HN_CHECK_MSG(queue_.front().ready == now, "unconsumed channel item");
    T item = std::move(queue_.front().item);
    queue_.pop_front();
    return item;
  }

  /// Non-destructive check: will an item become readable exactly at `cycle`?
  /// Models the one-bit circuit-switched advance signal of Section II-D.
  /// O(1): the queue is ready-cycle ordered and consumers drain every item
  /// the cycle it matures, so once entries older than `cycle` are impossible
  /// only the front can match.
  bool arrival_at(Cycle cycle) const {
    HN_CHECK_MSG(queue_.empty() || queue_.front().ready >= cycle,
                 "arrival_at queried past an unconsumed item");
    return !queue_.empty() && queue_.front().ready == cycle;
  }

  const T* peek_arrival(Cycle cycle) const {
    HN_CHECK_MSG(queue_.empty() || queue_.front().ready >= cycle,
                 "peek_arrival queried past an unconsumed item");
    if (!queue_.empty() && queue_.front().ready == cycle) return &queue_.front().item;
    return nullptr;
  }

  /// Ready cycle of the oldest in-flight item, kCycleNever when empty.
  Cycle next_ready() const { return queue_.empty() ? kCycleNever : queue_.front().ready; }

  bool empty() const { return queue_.empty(); }
  size_t in_flight() const { return queue_.size(); }
  int latency() const { return latency_; }

  /// Invoke `fn(item)` on every queued and staged entry, in order. Used by
  /// the network teardown drain to release flight anchors of in-flight
  /// traffic when a simulation is destroyed mid-run.
  template <typename Fn>
  void visit_in_flight(Fn fn) {
    for (std::size_t i = 0; i < queue_.size(); ++i) fn(queue_[i].item);
    for (Entry& e : staging_) fn(e.item);
  }

 private:
  struct Entry {
    Cycle ready = 0;
    T item{};
  };
  RingDeque<Entry> queue_;
  std::vector<Entry> staging_;  ///< cross-shard outbox (staged mode only)
  int latency_;
  TickScheduler* sched_ = nullptr;  ///< null under the legacy full sweep
  int consumer_ = -1;
};

using FlitChannel = Channel<Flit>;

/// One returned buffer slot for VC `vc` at the downstream input port. The
/// upstream router reallocates a downstream VC to a new packet only after the
/// tail was sent and every credit is home (conservative atomic reallocation).
struct Credit {
  int vc = 0;
};

using CreditChannel = Channel<Credit>;

}  // namespace hybridnoc
