#include "traffic/trace.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"

namespace hybridnoc {

std::vector<TraceEntry> load_trace(std::istream& in) {
  std::vector<TraceEntry> out;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    TraceEntry e;
    if (!(ls >> e.cycle)) continue;  // blank / comment-only line
    HN_CHECK_MSG(static_cast<bool>(ls >> e.src >> e.dst >> e.flits),
                 "malformed trace line");
    HN_CHECK_MSG(e.flits >= 1 && e.src >= 0 && e.dst >= 0, "invalid trace entry");
    HN_CHECK_MSG(out.empty() || out.back().cycle <= e.cycle,
                 "trace entries out of cycle order");
    out.push_back(e);
  }
  return out;
}

void save_trace(std::ostream& out, const std::vector<TraceEntry>& entries) {
  out << "# hybridnoc trace: cycle src dst flits\n";
  for (const auto& e : entries) {
    out << e.cycle << ' ' << e.src << ' ' << e.dst << ' ' << e.flits << '\n';
  }
}

TraceTraffic::TraceTraffic(std::vector<TraceEntry> entries, bool loop)
    : entries_(std::move(entries)), loop_(loop) {
  for (size_t i = 1; i < entries_.size(); ++i) {
    HN_CHECK_MSG(entries_[i - 1].cycle <= entries_[i].cycle,
                 "trace entries must be sorted by cycle");
  }
  span_ = entries_.empty() ? 1 : entries_.back().cycle + 1;
}

}  // namespace hybridnoc
