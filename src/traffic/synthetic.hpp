// Synthetic traffic patterns (Section IV): uniform random, tornado and
// transpose as evaluated in the paper, plus the bit-complement, shuffle and
// hotspot patterns commonly used alongside them (Dally & Towles).
#pragma once

#include <array>
#include <optional>
#include <string>

#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace hybridnoc {

enum class TrafficPattern {
  UniformRandom,
  Tornado,
  Transpose,
  BitComplement,
  Shuffle,
  Hotspot,
};

const char* traffic_pattern_name(TrafficPattern p);

/// Destination for a packet from `src` under `pattern`. Returns nullopt when
/// the pattern maps the node to itself (such nodes do not inject).
std::optional<NodeId> pattern_destination(TrafficPattern pattern, const Mesh& mesh,
                                          NodeId src, Rng& rng);

/// Bernoulli packet injection process over all nodes of a mesh.
///
/// `rate` is offered load in flits/node/cycle in payload-equivalent 5-flit
/// packets (the paper's x-axis); each node independently generates a packet
/// with probability rate / flits_per_packet per cycle.
class SyntheticTraffic {
 public:
  SyntheticTraffic(const Mesh& mesh, TrafficPattern pattern, double rate,
                   int flits_per_packet, std::uint64_t seed);

  /// Produce this cycle's injections; calls `emit(src, dst)` for each.
  template <typename EmitFn>
  void generate(EmitFn emit) {
    for (NodeId n = 0; n < mesh_.num_nodes(); ++n) {
      if (!rng_.bernoulli(packet_prob_)) continue;
      if (const auto dst = pattern_destination(pattern_, mesh_, n, rng_)) {
        emit(n, *dst);
      }
    }
  }

  double packet_probability() const { return packet_prob_; }
  TrafficPattern pattern() const { return pattern_; }

  /// RNG stream position — the generator's only mutable state, exposed so a
  /// warmup checkpoint can resume the exact injection sequence.
  std::array<std::uint64_t, 4> rng_state() const { return rng_.state(); }
  void set_rng_state(const std::array<std::uint64_t, 4>& s) {
    rng_.set_state(s);
  }

 private:
  const Mesh& mesh_;
  TrafficPattern pattern_;
  double packet_prob_;
  Rng rng_;
};

}  // namespace hybridnoc
