// Trace-driven traffic: record and replay exact injection schedules.
//
// Format: plain text, one injection per line — `cycle src dst flits` —
// with `#` comments and blank lines ignored; entries must be sorted by
// cycle. Replaying a trace against different router architectures gives an
// apples-to-apples comparison on identical offered traffic, and traces
// captured from the heterogeneous system (or converted from external tools)
// can be fed to any configuration.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/geometry.hpp"
#include "common/types.hpp"

namespace hybridnoc {

struct TraceEntry {
  Cycle cycle = 0;
  NodeId src = 0;
  NodeId dst = 0;
  int flits = 5;
  friend bool operator==(const TraceEntry&, const TraceEntry&) = default;
};

/// Parse a trace stream. Aborts (HN_CHECK) on malformed lines or entries
/// out of cycle order.
std::vector<TraceEntry> load_trace(std::istream& in);
void save_trace(std::ostream& out, const std::vector<TraceEntry>& entries);

/// Replays a trace, optionally looping it forever (the trace's span is
/// re-applied shifted each pass, so a short capture models steady state).
class TraceTraffic {
 public:
  explicit TraceTraffic(std::vector<TraceEntry> entries, bool loop = false);

  /// Emit every injection scheduled for `now`: calls emit(src, dst, flits).
  template <typename EmitFn>
  void generate(Cycle now, EmitFn emit) {
    while (pos_ < entries_.size()) {
      const TraceEntry& e = entries_[pos_];
      const Cycle at = e.cycle + offset_;
      if (at > now) return;
      emit(e.src, e.dst, e.flits);
      ++pos_;
      if (pos_ == entries_.size() && loop_ && !entries_.empty()) {
        pos_ = 0;
        offset_ += span_;
      }
    }
  }

  bool exhausted() const { return pos_ >= entries_.size(); }
  size_t size() const { return entries_.size(); }

 private:
  std::vector<TraceEntry> entries_;
  bool loop_;
  size_t pos_ = 0;
  Cycle offset_ = 0;
  Cycle span_ = 0;  ///< loop period: last cycle + 1
};

}  // namespace hybridnoc
