#include "traffic/synthetic.hpp"

namespace hybridnoc {

const char* traffic_pattern_name(TrafficPattern p) {
  switch (p) {
    case TrafficPattern::UniformRandom: return "uniform-random";
    case TrafficPattern::Tornado: return "tornado";
    case TrafficPattern::Transpose: return "transpose";
    case TrafficPattern::BitComplement: return "bit-complement";
    case TrafficPattern::Shuffle: return "shuffle";
    case TrafficPattern::Hotspot: return "hotspot";
  }
  return "?";
}

std::optional<NodeId> pattern_destination(TrafficPattern pattern, const Mesh& mesh,
                                          NodeId src, Rng& rng) {
  const int k = mesh.k();
  const Coord c = mesh.coord(src);
  NodeId dst = src;
  switch (pattern) {
    case TrafficPattern::UniformRandom:
      dst = static_cast<NodeId>(
          rng.uniform_int(static_cast<std::uint64_t>(mesh.num_nodes())));
      break;
    case TrafficPattern::Tornado:
      // Section IV: messages from (x, y) go to (x + k/2 - 1, y).
      dst = mesh.node({(c.x + k / 2 - 1) % k, c.y});
      break;
    case TrafficPattern::Transpose:
      dst = mesh.node({c.y, c.x});
      break;
    case TrafficPattern::BitComplement:
      dst = mesh.node({k - 1 - c.x, k - 1 - c.y});
      break;
    case TrafficPattern::Shuffle: {
      // Rotate the node-id bits left by one (classic perfect shuffle).
      const auto n = static_cast<std::uint32_t>(mesh.num_nodes());
      std::uint32_t bits = 0;
      while ((1u << bits) < n) ++bits;
      const auto s = static_cast<std::uint32_t>(src);
      dst = static_cast<NodeId>(((s << 1) | (s >> (bits - 1))) & (n - 1));
      if (dst >= mesh.num_nodes()) dst = src;  // non-power-of-two meshes
      break;
    }
    case TrafficPattern::Hotspot: {
      // 25% of traffic targets one of four fixed hotspots near the centre.
      if (rng.bernoulli(0.25)) {
        const int h = static_cast<int>(rng.uniform_int(4));
        const Coord hot[4] = {{k / 2, k / 2},
                              {k / 2 - 1, k / 2},
                              {k / 2, k / 2 - 1},
                              {k / 2 - 1, k / 2 - 1}};
        dst = mesh.node(hot[h]);
      } else {
        dst = static_cast<NodeId>(
            rng.uniform_int(static_cast<std::uint64_t>(mesh.num_nodes())));
      }
      break;
    }
  }
  if (dst == src) return std::nullopt;
  return dst;
}

SyntheticTraffic::SyntheticTraffic(const Mesh& mesh, TrafficPattern pattern,
                                   double rate, int flits_per_packet,
                                   std::uint64_t seed)
    : mesh_(mesh),
      pattern_(pattern),
      packet_prob_(rate / static_cast<double>(flits_per_packet)),
      rng_(seed) {
  HN_CHECK(rate >= 0.0 && packet_prob_ <= 1.0);
  HN_CHECK(flits_per_packet >= 1);
}

}  // namespace hybridnoc
