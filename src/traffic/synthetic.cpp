#include "traffic/synthetic.hpp"

namespace hybridnoc {

const char* traffic_pattern_name(TrafficPattern p) {
  switch (p) {
    case TrafficPattern::UniformRandom: return "uniform-random";
    case TrafficPattern::Tornado: return "tornado";
    case TrafficPattern::Transpose: return "transpose";
    case TrafficPattern::BitComplement: return "bit-complement";
    case TrafficPattern::Shuffle: return "shuffle";
    case TrafficPattern::Hotspot: return "hotspot";
  }
  return "?";
}

std::optional<NodeId> pattern_destination(TrafficPattern pattern, const Mesh& mesh,
                                          NodeId src, Rng& rng) {
  const int k = mesh.k();
  const Coord c = mesh.coord(src);
  NodeId dst = src;
  switch (pattern) {
    case TrafficPattern::UniformRandom:
      dst = static_cast<NodeId>(
          rng.uniform_int(static_cast<std::uint64_t>(mesh.num_nodes())));
      break;
    case TrafficPattern::Tornado:
      // Section IV: messages from (x, y) go to (x + k/2 - 1, y). On k <= 3
      // the offset is zero — every node would map to itself and the
      // generator would silently inject nothing — so degenerate meshes fall
      // back to a uniform draw to keep the offered load well-defined.
      if (k / 2 - 1 <= 0) {
        dst = static_cast<NodeId>(
            rng.uniform_int(static_cast<std::uint64_t>(mesh.num_nodes())));
      } else {
        dst = mesh.node({(c.x + k / 2 - 1) % k, c.y});
      }
      break;
    case TrafficPattern::Transpose:
      dst = mesh.node({c.y, c.x});
      break;
    case TrafficPattern::BitComplement:
      dst = mesh.node({k - 1 - c.x, k - 1 - c.y});
      break;
    case TrafficPattern::Shuffle: {
      // Rotate the node-id bits left by one (classic perfect shuffle)
      // within the smallest power-of-two id space covering the mesh. On
      // power-of-two meshes this is the exact bit rotation; on other sizes
      // rotated ids past the last node wrap back into range (modulo), so
      // every source still offers load instead of silently dropping the
      // injection. `bits` starts at 1 so the right shift is defined even
      // for a 1-node mesh.
      const auto n = static_cast<std::uint32_t>(mesh.num_nodes());
      std::uint32_t bits = 1;
      while ((1u << bits) < n) ++bits;
      const auto s = static_cast<std::uint32_t>(src);
      const std::uint32_t rotated =
          ((s << 1) | (s >> (bits - 1))) & ((1u << bits) - 1);
      dst = static_cast<NodeId>(rotated % n);
      break;
    }
    case TrafficPattern::Hotspot: {
      // 25% of traffic targets one of four fixed hotspots near the centre.
      if (rng.bernoulli(0.25)) {
        const int h = static_cast<int>(rng.uniform_int(4));
        // Clamp the lower coordinate to 0 so tiny meshes (k <= 2, where
        // k/2 - 1 would index out of bounds at -1) keep a valid, possibly
        // degenerate hotspot set.
        const int lo = k / 2 - 1 > 0 ? k / 2 - 1 : 0;
        const Coord hot[4] = {{k / 2, k / 2},
                              {lo, k / 2},
                              {k / 2, lo},
                              {lo, lo}};
        dst = mesh.node(hot[h]);
      } else {
        dst = static_cast<NodeId>(
            rng.uniform_int(static_cast<std::uint64_t>(mesh.num_nodes())));
      }
      break;
    }
  }
  if (dst == src) return std::nullopt;
  return dst;
}

SyntheticTraffic::SyntheticTraffic(const Mesh& mesh, TrafficPattern pattern,
                                   double rate, int flits_per_packet,
                                   std::uint64_t seed)
    : mesh_(mesh),
      pattern_(pattern),
      packet_prob_(rate / static_cast<double>(flits_per_packet)),
      rng_(seed) {
  // Validate the operands separately so a failure names the bad one, and so
  // a NaN rate cannot slip through (NaN fails every ordered comparison, so
  // `rate >= 0.0` alone rejects it — but the old fused check reported the
  // derived packet probability instead of the offending input).
  HN_CHECK_MSG(flits_per_packet >= 1, "flits_per_packet must be >= 1");
  HN_CHECK_MSG(rate >= 0.0 && rate <= static_cast<double>(flits_per_packet),
               "injection rate must be a finite value in "
               "[0, flits_per_packet] flits/node/cycle");
}

}  // namespace hybridnoc
