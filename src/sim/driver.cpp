#include "sim/driver.hpp"

#include <algorithm>
#include <memory>

#include "fastmodel/fast_model.hpp"

namespace hybridnoc {

RunResult run_synthetic(const NocConfig& cfg, const RunParams& params) {
  if (params.fidelity == Fidelity::Fast) return run_synthetic_fast(cfg, params);
  auto net = make_network(cfg);
  SyntheticTraffic traffic(net->mesh(), params.pattern, params.injection_rate,
                           cfg.ps_data_flits, params.seed);

  StatAccumulator lat;
  Histogram hist(5.0, 400);
  bool measuring = false;
  Cycle measure_start_cycle = 0;
  std::uint64_t delivered_total = 0;
  std::uint64_t window_deliveries = 0;
  std::uint64_t window_generated = 0;
  std::uint64_t measured = 0;
  EnergyCounters energy_start;
  std::uint64_t ps_start = 0, cs_start = 0, cfgf_start = 0;

  net->set_deliver_handler([&](const PacketPtr& pkt, Cycle at) {
    ++delivered_total;
    if (!measuring) return;
    ++window_deliveries;
    if (pkt->created >= measure_start_cycle) {
      const double l = static_cast<double>(at - pkt->created);
      lat.add(l);
      hist.add(l);
      ++measured;
    }
  });

  PacketId next_id = 1;
  bool saturated = false;
  const int n_nodes = net->mesh().num_nodes();

  const auto inject = [&](NodeId src, NodeId dst) {
    if (net->inject_queue_depth(src) > 2000) {
      saturated = true;  // source queues diverging: deep saturation
      return;
    }
    if (measuring) ++window_generated;
    auto p = std::make_shared<Packet>();
    p->id = next_id++;
    p->src = src;
    p->dst = dst;
    p->num_flits = cfg.ps_data_flits;
    net->send(std::move(p));
  };

  while (net->now() < params.max_cycles) {
    if (!measuring && delivered_total >= params.warmup_packets &&
        net->now() >= params.warmup_min_cycles) {
      measuring = true;
      measure_start_cycle = net->now();
      energy_start = net->energy();
      ps_start = net->ps_flits();
      cs_start = net->cs_flits();
      cfgf_start = net->config_flits();
    }
    if (measuring && measured >= params.measure_packets) break;

    traffic.generate(inject);
    net->tick();

    // Early exit once mean latency shows the knee is far behind us.
    if (measuring && (net->now() & 0x7ff) == 0 && lat.count() > 500 &&
        lat.mean() > params.latency_cap) {
      saturated = true;
      break;
    }
  }

  RunResult r;
  r.offered_rate = params.injection_rate;
  r.measured_packets = measured;
  r.cycles = measuring ? net->now() - measure_start_cycle : 0;
  r.avg_latency = lat.mean();
  r.p99_latency = hist.quantile(0.99);
  r.saturated = saturated || measured < params.measure_packets;
  if (r.cycles > 0) {
    r.accepted_rate = static_cast<double>(window_deliveries) *
                      static_cast<double>(cfg.ps_data_flits) /
                      (static_cast<double>(n_nodes) * static_cast<double>(r.cycles));
    // Standard saturation criterion: the network no longer accepts what is
    // actually offered (patterns where some nodes never inject — e.g. the
    // transpose diagonal — make the nominal rate an overestimate).
    const double offered_actual =
        static_cast<double>(window_generated) *
        static_cast<double>(cfg.ps_data_flits) /
        (static_cast<double>(n_nodes) * static_cast<double>(r.cycles));
    if (r.accepted_rate < 0.85 * offered_actual) r.saturated = true;
    r.energy = net->energy() - energy_start;
    const double ps = static_cast<double>(net->ps_flits() - ps_start);
    const double cs = static_cast<double>(net->cs_flits() - cs_start);
    const double cf = static_cast<double>(net->config_flits() - cfgf_start);
    r.cs_flit_fraction = safe_ratio(cs, ps + cs);
    r.config_flit_fraction = safe_ratio(cf, ps + cs + cf);
  }
  return r;
}

std::vector<RunResult> sweep_load(const NocConfig& cfg, RunParams params,
                                  const std::vector<double>& rates) {
  std::vector<RunResult> out;
  int saturated_in_a_row = 0;
  for (const double rate : rates) {
    params.injection_rate = rate;
    out.push_back(run_synthetic(cfg, params));
    saturated_in_a_row = out.back().saturated ? saturated_in_a_row + 1 : 0;
    if (saturated_in_a_row >= 2) break;
  }
  return out;
}

double saturation_throughput(const NocConfig& cfg, RunParams params,
                             double start_rate, double step, double max_rate) {
  double best_accepted = 0.0;
  int saturated_in_a_row = 0;
  for (double rate = start_rate; rate <= max_rate; rate += step) {
    params.injection_rate = rate;
    const RunResult r = run_synthetic(cfg, params);
    best_accepted = std::max(best_accepted, r.accepted_rate);
    saturated_in_a_row = r.saturated ? saturated_in_a_row + 1 : 0;
    if (saturated_in_a_row >= 2) break;
  }
  return best_accepted;
}

}  // namespace hybridnoc
