#include "sim/driver.hpp"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "common/pool.hpp"
#include "fastmodel/fast_model.hpp"

namespace hybridnoc {

namespace {

/// Shared warmup/measure/saturation loop of the cycle core. `gen(now,
/// inject)` is called once per cycle and emits that cycle's injections via
/// inject(src, dst, flits, cs_eligible). Flit accounting is
/// payload-equivalent: accepted/offered rates count the flits the workload
/// injected, not the (possibly CS-compressed) wire flits, so fidelities and
/// switching modes compare on identical payload.
template <typename GenerateFn>
RunResult run_cycle_measured(const NocConfig& cfg, const RunParams& params,
                             double offered_rate, GenerateFn&& gen) {
  auto net = make_network(cfg);

  StatAccumulator lat;
  Histogram hist(5.0, 400);
  bool measuring = false;
  Cycle measure_start_cycle = 0;
  std::uint64_t delivered_total = 0;
  std::uint64_t window_delivered_flits = 0;
  std::uint64_t window_generated_flits = 0;
  std::uint64_t measured = 0;
  EnergyCounters energy_start;
  std::uint64_t ps_start = 0, cs_start = 0, cfgf_start = 0;

  // Payload flits as injected, keyed by packet id: circuit transfers rewrite
  // num_flits to the fixed CS transfer size, so the packet itself no longer
  // remembers what the workload offered.
  std::unordered_map<PacketId, int> payload_flits;

  net->set_deliver_handler([&](const PacketPtr& pkt, Cycle at) {
    ++delivered_total;
    const auto it = payload_flits.find(pkt->id);
    const int flits = it != payload_flits.end() ? it->second : 0;
    if (it != payload_flits.end()) payload_flits.erase(it);
    if (!measuring) return;
    window_delivered_flits += static_cast<std::uint64_t>(flits);
    if (pkt->created >= measure_start_cycle) {
      const double l = static_cast<double>(at - pkt->created);
      lat.add(l);
      hist.add(l);
      ++measured;
    }
  });

  PacketId next_id = 1;
  bool saturated = false;
  const int n_nodes = net->mesh().num_nodes();

  const auto inject = [&](NodeId src, NodeId dst, int flits,
                          bool cs_eligible) {
    if (net->inject_queue_depth(src) > 2000) {
      saturated = true;  // source queues diverging: deep saturation
      return;
    }
    if (measuring) window_generated_flits += static_cast<std::uint64_t>(flits);
    auto p = make_packet();
    p->id = next_id++;
    p->src = src;
    p->dst = dst;
    p->num_flits = flits;
    p->cs_eligible = cs_eligible;
    payload_flits.emplace(p->id, flits);
    net->send(std::move(p));
  };

  while (net->now() < params.max_cycles) {
    if (!measuring && delivered_total >= params.warmup_packets &&
        net->now() >= params.warmup_min_cycles) {
      measuring = true;
      measure_start_cycle = net->now();
      energy_start = net->energy();
      ps_start = net->ps_flits();
      cs_start = net->cs_flits();
      cfgf_start = net->config_flits();
    }
    if (measuring && measured >= params.measure_packets) break;

    gen(net->now(), inject);
    net->tick();

    // Early exit once mean latency shows the knee is far behind us.
    if (measuring && (net->now() & 0x7ff) == 0 && lat.count() > 500 &&
        lat.mean() > params.latency_cap) {
      saturated = true;
      break;
    }
  }

  RunResult r;
  r.offered_rate = offered_rate;
  r.measured_packets = measured;
  r.cycles = measuring ? net->now() - measure_start_cycle : 0;
  r.avg_latency = lat.mean();
  r.p99_latency = hist.quantile(0.99);
  r.saturated = saturated || measured < params.measure_packets;
  if (r.cycles > 0) {
    r.accepted_rate =
        static_cast<double>(window_delivered_flits) /
        (static_cast<double>(n_nodes) * static_cast<double>(r.cycles));
    // Standard saturation criterion: the network no longer accepts what is
    // actually offered (patterns where some nodes never inject — e.g. the
    // transpose diagonal — make the nominal rate an overestimate).
    const double offered_actual =
        static_cast<double>(window_generated_flits) /
        (static_cast<double>(n_nodes) * static_cast<double>(r.cycles));
    if (r.accepted_rate < 0.85 * offered_actual) r.saturated = true;
    r.energy = net->energy() - energy_start;
    const double ps = static_cast<double>(net->ps_flits() - ps_start);
    const double cs = static_cast<double>(net->cs_flits() - cs_start);
    const double cf = static_cast<double>(net->config_flits() - cfgf_start);
    r.cs_flit_fraction = safe_ratio(cs, ps + cs);
    r.config_flit_fraction = safe_ratio(cf, ps + cs + cf);
  }
  return r;
}

}  // namespace

RunResult run_synthetic(const NocConfig& cfg, const RunParams& params) {
  if (params.fidelity == Fidelity::Fast) return run_synthetic_fast(cfg, params);
  const Mesh mesh(cfg.k);
  SyntheticTraffic traffic(mesh, params.pattern, params.injection_rate,
                           cfg.ps_data_flits, params.seed);
  return run_cycle_measured(
      cfg, params, params.injection_rate, [&](Cycle, const auto& inject) {
        traffic.generate([&](NodeId src, NodeId dst) {
          inject(src, dst, cfg.ps_data_flits, /*cs_eligible=*/true);
        });
      });
}

RunResult run_trace(const NocConfig& cfg,
                    const std::vector<TraceEntry>& entries,
                    const RunParams& params) {
  HN_CHECK_MSG(!entries.empty(), "run_trace: empty trace");
  const int n_nodes = cfg.k * cfg.k;
  std::uint64_t total_flits = 0;
  for (const TraceEntry& e : entries) {
    HN_CHECK_MSG(e.src >= 0 && e.src < n_nodes && e.dst >= 0 &&
                     e.dst < n_nodes,
                 "run_trace: trace entry outside the mesh");
    HN_CHECK_MSG(e.src != e.dst, "run_trace: self-directed trace entry");
    total_flits += static_cast<std::uint64_t>(e.flits);
  }
  const Cycle span = entries.back().cycle + 1;
  const double offered_rate =
      static_cast<double>(total_flits) /
      (static_cast<double>(span) * static_cast<double>(n_nodes));

  if (params.fidelity == Fidelity::Fast) {
    RunResult r = run_trace_fast(cfg, entries, params);
    r.offered_rate = offered_rate;  // finalize() reports injection_rate
    return r;
  }

  TraceTraffic traffic(entries, /*loop=*/true);
  return run_cycle_measured(
      cfg, params, offered_rate, [&](Cycle now, const auto& inject) {
        traffic.generate(now, [&](NodeId src, NodeId dst, int flits) {
          inject(src, dst, flits, /*cs_eligible=*/flits >= cfg.cs_data_flits);
        });
      });
}

std::vector<RunResult> sweep_load(const NocConfig& cfg, RunParams params,
                                  const std::vector<double>& rates) {
  std::vector<RunResult> out;
  int saturated_in_a_row = 0;
  for (const double rate : rates) {
    params.injection_rate = rate;
    out.push_back(run_synthetic(cfg, params));
    saturated_in_a_row = out.back().saturated ? saturated_in_a_row + 1 : 0;
    if (saturated_in_a_row >= 2) break;
  }
  return out;
}

double saturation_throughput(const NocConfig& cfg, RunParams params,
                             double start_rate, double step, double max_rate) {
  double best_accepted = 0.0;
  int saturated_in_a_row = 0;
  for (double rate = start_rate; rate <= max_rate; rate += step) {
    params.injection_rate = rate;
    const RunResult r = run_synthetic(cfg, params);
    best_accepted = std::max(best_accepted, r.accepted_rate);
    saturated_in_a_row = r.saturated ? saturated_in_a_row + 1 : 0;
    if (saturated_in_a_row >= 2) break;
  }
  return best_accepted;
}

}  // namespace hybridnoc
