#include "sim/driver.hpp"

#include <algorithm>
#include <array>
#include <memory>
#include <unordered_map>

#include "common/assert.hpp"
#include "common/pool.hpp"
#include "common/state_io.hpp"
#include "fastmodel/fast_model.hpp"
#include "noc/network.hpp"

namespace hybridnoc {

namespace {

/// Shared warmup/measure/saturation loop of the cycle core. `gen(now,
/// inject)` is called once per cycle and emits that cycle's injections via
/// inject(src, dst, flits, cs_eligible). Flit accounting is
/// payload-equivalent: accepted/offered rates count the flits the workload
/// injected, not the (possibly CS-compressed) wire flits, so fidelities and
/// switching modes compare on identical payload.
template <typename GenerateFn>
RunResult run_cycle_measured(const NocConfig& cfg, const RunParams& params,
                             double offered_rate, GenerateFn&& gen) {
  auto net = make_network(cfg);

  StatAccumulator lat;
  Histogram hist(5.0, 400);
  bool measuring = false;
  Cycle measure_start_cycle = 0;
  std::uint64_t delivered_total = 0;
  std::uint64_t window_delivered_flits = 0;
  std::uint64_t window_generated_flits = 0;
  std::uint64_t measured = 0;
  EnergyCounters energy_start;
  std::uint64_t ps_start = 0, cs_start = 0, cfgf_start = 0;

  // Payload flits as injected, keyed by packet id: circuit transfers rewrite
  // num_flits to the fixed CS transfer size, so the packet itself no longer
  // remembers what the workload offered.
  std::unordered_map<PacketId, int> payload_flits;

  net->set_deliver_handler([&](const PacketPtr& pkt, Cycle at) {
    ++delivered_total;
    const auto it = payload_flits.find(pkt->id);
    const int flits = it != payload_flits.end() ? it->second : 0;
    if (it != payload_flits.end()) payload_flits.erase(it);
    if (!measuring) return;
    window_delivered_flits += static_cast<std::uint64_t>(flits);
    if (pkt->created >= measure_start_cycle) {
      const double l = static_cast<double>(at - pkt->created);
      lat.add(l);
      hist.add(l);
      ++measured;
    }
  });

  PacketId next_id = 1;
  bool saturated = false;
  const int n_nodes = net->mesh().num_nodes();

  const auto inject = [&](NodeId src, NodeId dst, int flits,
                          bool cs_eligible) {
    if (net->inject_queue_depth(src) > 2000) {
      saturated = true;  // source queues diverging: deep saturation
      return;
    }
    if (measuring) window_generated_flits += static_cast<std::uint64_t>(flits);
    auto p = make_packet();
    p->id = next_id++;
    p->src = src;
    p->dst = dst;
    p->num_flits = flits;
    p->cs_eligible = cs_eligible;
    payload_flits.emplace(p->id, flits);
    net->send(std::move(p));
  };

  while (net->now() < params.max_cycles) {
    if (!measuring && delivered_total >= params.warmup_packets &&
        net->now() >= params.warmup_min_cycles) {
      measuring = true;
      measure_start_cycle = net->now();
      energy_start = net->energy();
      ps_start = net->ps_flits();
      cs_start = net->cs_flits();
      cfgf_start = net->config_flits();
    }
    if (measuring && measured >= params.measure_packets) break;

    gen(net->now(), inject);
    net->tick();

    // Early exit once mean latency shows the knee is far behind us.
    if (measuring && (net->now() & 0x7ff) == 0 && lat.count() > 500 &&
        lat.mean() > params.latency_cap) {
      saturated = true;
      break;
    }
  }

  RunResult r;
  r.offered_rate = offered_rate;
  r.measured_packets = measured;
  r.cycles = measuring ? net->now() - measure_start_cycle : 0;
  r.avg_latency = lat.mean();
  r.p99_latency = hist.quantile(0.99);
  r.saturated = saturated || measured < params.measure_packets;
  if (r.cycles > 0) {
    r.accepted_rate =
        static_cast<double>(window_delivered_flits) /
        (static_cast<double>(n_nodes) * static_cast<double>(r.cycles));
    // Standard saturation criterion: the network no longer accepts what is
    // actually offered (patterns where some nodes never inject — e.g. the
    // transpose diagonal — make the nominal rate an overestimate).
    const double offered_actual =
        static_cast<double>(window_generated_flits) /
        (static_cast<double>(n_nodes) * static_cast<double>(r.cycles));
    if (r.accepted_rate < 0.85 * offered_actual) r.saturated = true;
    r.energy = net->energy() - energy_start;
    const double ps = static_cast<double>(net->ps_flits() - ps_start);
    const double cs = static_cast<double>(net->cs_flits() - cs_start);
    const double cf = static_cast<double>(net->config_flits() - cfgf_start);
    r.cs_flit_fraction = safe_ratio(cs, ps + cs);
    r.config_flit_fraction = safe_ratio(cf, ps + cs + cf);
  }
  return r;
}

// --- drained-run methodology (warmup checkpointing) ---

/// Archive section tag; bumped with any layout change so stale snapshot
/// files fail the section check instead of restoring garbage.
constexpr char kSnapshotSection[] = "warmup_snapshot_v1";

/// Outcome of the shared warmup phase: the warmed, drained (still frozen)
/// network plus the injection bookkeeping the measure phase continues from.
struct WarmState {
  std::unique_ptr<NetAdapter> net;
  PacketId next_id = 1;
  bool saturated = false;
  bool drained = false;
};

void check_snapshot_eligible(const NocConfig& cfg, const RunParams& params) {
  HN_CHECK_MSG(params.fidelity == Fidelity::Cycle,
               "warmup checkpoints are a cycle-core methodology");
  HN_CHECK_MSG(cfg.link_ber == 0.0 && cfg.tick_threads == 1,
               "warmup checkpoints require a fault-free serial network");
}

/// Warm under `traffic` until the standard warmup criterion, then freeze
/// policy and drain to quiescence. Mirrors run_cycle_measured's warmup
/// phase exactly: same injection guard, same generate-then-tick order.
WarmState warm_and_drain(const NocConfig& cfg, const RunParams& params,
                         SyntheticTraffic& traffic) {
  check_snapshot_eligible(cfg, params);
  WarmState st;
  st.net = make_network(cfg);
  Network* mesh_net = st.net->mesh_network_mut();
  HN_CHECK_MSG(mesh_net != nullptr,
               "warmup checkpoints require a mesh-backed architecture");

  std::uint64_t delivered_total = 0;
  st.net->set_deliver_handler(
      [&](const PacketPtr&, Cycle) { ++delivered_total; });

  while (st.net->now() < params.max_cycles) {
    if (delivered_total >= params.warmup_packets &&
        st.net->now() >= params.warmup_min_cycles) {
      break;
    }
    traffic.generate([&](NodeId src, NodeId dst) {
      if (st.net->inject_queue_depth(src) > 2000) {
        st.saturated = true;  // source queues diverging: deep saturation
        return;
      }
      auto p = make_packet();
      p->id = st.next_id++;
      p->src = src;
      p->dst = dst;
      p->num_flits = cfg.ps_data_flits;
      p->cs_eligible = true;
      st.net->send(std::move(p));
    });
    st.net->tick();
  }
  st.drained = mesh_net->drain(params.max_cycles);
  return st;
}

/// Measure from a warmed, drained network — the second half of the drained
/// methodology, shared by the in-place and the restored-snapshot paths so
/// the two are bit-identical by construction.
RunResult measure_drained(const NocConfig& cfg, const RunParams& params,
                          NetAdapter& net, SyntheticTraffic& traffic,
                          PacketId next_id, bool warmup_saturated) {
  net.set_policy_frozen(false);

  StatAccumulator lat;
  Histogram hist(5.0, 400);
  const Cycle measure_start_cycle = net.now();
  const EnergyCounters energy_start = net.energy();
  const std::uint64_t ps_start = net.ps_flits();
  const std::uint64_t cs_start = net.cs_flits();
  const std::uint64_t cfgf_start = net.config_flits();
  std::uint64_t window_delivered_flits = 0;
  std::uint64_t window_generated_flits = 0;
  std::uint64_t measured = 0;
  bool saturated = warmup_saturated;
  const int n_nodes = net.mesh().num_nodes();

  // The network starts empty, so every packet delivered in this window was
  // also created in it — no warmup stragglers to account separately.
  std::unordered_map<PacketId, int> payload_flits;
  net.set_deliver_handler([&](const PacketPtr& pkt, Cycle at) {
    const auto it = payload_flits.find(pkt->id);
    const int flits = it != payload_flits.end() ? it->second : 0;
    if (it != payload_flits.end()) payload_flits.erase(it);
    window_delivered_flits += static_cast<std::uint64_t>(flits);
    const double l = static_cast<double>(at - pkt->created);
    lat.add(l);
    hist.add(l);
    ++measured;
  });

  while (net.now() < params.max_cycles) {
    if (measured >= params.measure_packets) break;
    traffic.generate([&](NodeId src, NodeId dst) {
      if (net.inject_queue_depth(src) > 2000) {
        saturated = true;
        return;
      }
      const int flits = cfg.ps_data_flits;
      window_generated_flits += static_cast<std::uint64_t>(flits);
      auto p = make_packet();
      p->id = next_id++;
      p->src = src;
      p->dst = dst;
      p->num_flits = flits;
      p->cs_eligible = true;
      payload_flits.emplace(p->id, flits);
      net.send(std::move(p));
    });
    net.tick();
    if ((net.now() & 0x7ff) == 0 && lat.count() > 500 &&
        lat.mean() > params.latency_cap) {
      saturated = true;
      break;
    }
  }

  RunResult r;
  r.offered_rate = params.injection_rate;
  r.measured_packets = measured;
  r.cycles = net.now() - measure_start_cycle;
  r.avg_latency = lat.mean();
  r.p99_latency = hist.quantile(0.99);
  r.saturated = saturated || measured < params.measure_packets;
  if (r.cycles > 0) {
    r.accepted_rate =
        static_cast<double>(window_delivered_flits) /
        (static_cast<double>(n_nodes) * static_cast<double>(r.cycles));
    const double offered_actual =
        static_cast<double>(window_generated_flits) /
        (static_cast<double>(n_nodes) * static_cast<double>(r.cycles));
    if (r.accepted_rate < 0.85 * offered_actual) r.saturated = true;
    r.energy = net.energy() - energy_start;
    const double ps = static_cast<double>(net.ps_flits() - ps_start);
    const double cs = static_cast<double>(net.cs_flits() - cs_start);
    const double cf = static_cast<double>(net.config_flits() - cfgf_start);
    r.cs_flit_fraction = safe_ratio(cs, ps + cs);
    r.config_flit_fraction = safe_ratio(cf, ps + cs + cf);
  }
  return r;
}

/// RunResult for a run whose warmup never reached a drainable steady state:
/// by definition the network cannot keep up with the offered load.
RunResult undrained_result(const RunParams& params) {
  RunResult r;
  r.offered_rate = params.injection_rate;
  r.saturated = true;
  return r;
}

}  // namespace

WarmupSnapshot warmup_snapshot(const NocConfig& cfg, const RunParams& params) {
  const Mesh mesh(cfg.k);
  SyntheticTraffic traffic(mesh, params.pattern, params.injection_rate,
                           cfg.ps_data_flits, params.seed);
  WarmState st = warm_and_drain(cfg, params, traffic);
  WarmupSnapshot out;
  out.saturated = st.saturated;
  if (!st.drained) return out;

  StateWriter w;
  w.section(kSnapshotSection);
  // Warmup-identity guard: restoring under a different warmup would be
  // silently wrong, so the relevant knobs are embedded and re-checked.
  // Measure-phase params are deliberately absent. (The network archive
  // inside guards the topology fields itself.)
  w.u8(static_cast<std::uint8_t>(cfg.arch));
  w.u8(static_cast<std::uint8_t>(params.pattern));
  w.f64(params.injection_rate);
  w.u64(params.warmup_packets);
  w.u64(params.warmup_min_cycles);
  w.u64(params.seed);
  w.u64(cfg.seed);
  w.i32(cfg.ps_data_flits);
  w.b(st.saturated);
  w.u64(st.next_id);
  for (const std::uint64_t word : traffic.rng_state()) w.u64(word);
  w.bytes(st.net->mesh_network_mut()->save_state());
  out.sealed = w.seal();
  out.ok = true;
  return out;
}

RunResult run_synthetic_from_snapshot(const NocConfig& cfg,
                                      const RunParams& params,
                                      const std::string& sealed) {
  check_snapshot_eligible(cfg, params);

  StateReader r(sealed);
  r.section(kSnapshotSection);
  const bool guards_match =
      r.u8() == static_cast<std::uint8_t>(cfg.arch) &&
      r.u8() == static_cast<std::uint8_t>(params.pattern) &&
      r.f64() == params.injection_rate &&
      r.u64() == params.warmup_packets &&
      r.u64() == params.warmup_min_cycles &&
      r.u64() == params.seed && r.u64() == cfg.seed &&
      r.i32() == cfg.ps_data_flits;
  if (!guards_match) {
    throw StateError("warmup snapshot belongs to a different cfg/params");
  }
  const bool warmup_saturated = r.b();
  const PacketId next_id = r.u64();
  std::array<std::uint64_t, 4> rng_state;
  for (std::uint64_t& word : rng_state) word = r.u64();
  const std::string net_state = r.str();
  r.finish();

  auto net = make_network(cfg);
  Network* mesh_net = net->mesh_network_mut();
  HN_CHECK_MSG(mesh_net != nullptr,
               "warmup checkpoints require a mesh-backed architecture");
  mesh_net->restore_state(net_state);  // throws StateError on corruption

  const Mesh mesh(cfg.k);
  SyntheticTraffic traffic(mesh, params.pattern, params.injection_rate,
                           cfg.ps_data_flits, params.seed);
  traffic.set_rng_state(rng_state);
  return measure_drained(cfg, params, *net, traffic, next_id,
                         warmup_saturated);
}

RunResult run_synthetic_drained(const NocConfig& cfg,
                                const RunParams& params) {
  const Mesh mesh(cfg.k);
  SyntheticTraffic traffic(mesh, params.pattern, params.injection_rate,
                           cfg.ps_data_flits, params.seed);
  WarmState st = warm_and_drain(cfg, params, traffic);
  if (!st.drained) return undrained_result(params);
  return measure_drained(cfg, params, *st.net, traffic, st.next_id,
                         st.saturated);
}

RunResult run_synthetic(const NocConfig& cfg, const RunParams& params) {
  if (params.fidelity == Fidelity::Fast) return run_synthetic_fast(cfg, params);
  const Mesh mesh(cfg.k);
  SyntheticTraffic traffic(mesh, params.pattern, params.injection_rate,
                           cfg.ps_data_flits, params.seed);
  return run_cycle_measured(
      cfg, params, params.injection_rate, [&](Cycle, const auto& inject) {
        traffic.generate([&](NodeId src, NodeId dst) {
          inject(src, dst, cfg.ps_data_flits, /*cs_eligible=*/true);
        });
      });
}

RunResult run_trace(const NocConfig& cfg,
                    const std::vector<TraceEntry>& entries,
                    const RunParams& params) {
  HN_CHECK_MSG(!entries.empty(), "run_trace: empty trace");
  const int n_nodes = cfg.k * cfg.k;
  std::uint64_t total_flits = 0;
  for (const TraceEntry& e : entries) {
    HN_CHECK_MSG(e.src >= 0 && e.src < n_nodes && e.dst >= 0 &&
                     e.dst < n_nodes,
                 "run_trace: trace entry outside the mesh");
    HN_CHECK_MSG(e.src != e.dst, "run_trace: self-directed trace entry");
    total_flits += static_cast<std::uint64_t>(e.flits);
  }
  const Cycle span = entries.back().cycle + 1;
  const double offered_rate =
      static_cast<double>(total_flits) /
      (static_cast<double>(span) * static_cast<double>(n_nodes));

  if (params.fidelity == Fidelity::Fast) {
    RunResult r = run_trace_fast(cfg, entries, params);
    r.offered_rate = offered_rate;  // finalize() reports injection_rate
    return r;
  }

  TraceTraffic traffic(entries, /*loop=*/true);
  return run_cycle_measured(
      cfg, params, offered_rate, [&](Cycle now, const auto& inject) {
        traffic.generate(now, [&](NodeId src, NodeId dst, int flits) {
          inject(src, dst, flits, /*cs_eligible=*/flits >= cfg.cs_data_flits);
        });
      });
}

std::vector<RunResult> sweep_load(const NocConfig& cfg, RunParams params,
                                  const std::vector<double>& rates) {
  std::vector<RunResult> out;
  int saturated_in_a_row = 0;
  for (const double rate : rates) {
    params.injection_rate = rate;
    out.push_back(run_synthetic(cfg, params));
    saturated_in_a_row = out.back().saturated ? saturated_in_a_row + 1 : 0;
    if (saturated_in_a_row >= 2) break;
  }
  return out;
}

double saturation_throughput(const NocConfig& cfg, RunParams params,
                             double start_rate, double step, double max_rate) {
  double best_accepted = 0.0;
  int saturated_in_a_row = 0;
  for (double rate = start_rate; rate <= max_rate; rate += step) {
    params.injection_rate = rate;
    const RunResult r = run_synthetic(cfg, params);
    best_accepted = std::max(best_accepted, r.accepted_rate);
    saturated_in_a_row = r.saturated ? saturated_in_a_row + 1 : 0;
    if (saturated_in_a_row >= 2) break;
  }
  return best_accepted;
}

}  // namespace hybridnoc
