// Shared experiment-run parameter/result types, split out of driver.hpp so
// the transfer-level fast model (src/fastmodel) can produce the same stats
// surface without linking against the cycle core's driver. driver.hpp
// re-exports everything here; existing includes keep working.
#pragma once

#include <cstdint>

#include "power/energy_model.hpp"
#include "traffic/synthetic.hpp"

namespace hybridnoc {

/// num/den, or 0 when den is 0. Flit-mix fractions must stay finite even
/// when a measurement window carries none of the relevant flit classes
/// (e.g. only config traffic).
inline double safe_ratio(double num, double den) {
  return den > 0.0 ? num / den : 0.0;
}

/// Which simulation engine a run uses.
///  * Cycle: the cycle-accurate core (routers, channels, per-flit events) —
///    the ground truth every figure is calibrated against.
///  * Fast: the transfer-level model (src/fastmodel) — whole packet
///    transfers over link-by-link routes with analytic congestion and
///    serialization; ~75x the cycle throughput, accuracy-gated against the
///    cycle core by the `accuracy` test label (see EXPERIMENTS.md).
enum class Fidelity : std::uint8_t { Cycle, Fast };

inline const char* fidelity_name(Fidelity f) {
  return f == Fidelity::Cycle ? "cycle" : "fast";
}

struct RunParams {
  TrafficPattern pattern = TrafficPattern::UniformRandom;
  /// Offered load in flits/node/cycle (payload-equivalent 5-flit packets).
  double injection_rate = 0.1;
  std::uint64_t warmup_packets = 1000;
  /// Warmup also runs at least this many cycles so queues reach steady
  /// state before measurement even when packets complete quickly.
  std::uint64_t warmup_min_cycles = 3000;
  std::uint64_t measure_packets = 20000;
  /// Hard cycle budget; hitting it marks the run saturated.
  std::uint64_t max_cycles = 300000;
  /// Mean latency above which a run is declared saturated early.
  double latency_cap = 500.0;
  std::uint64_t seed = 1;
  /// Engine selection; run_synthetic dispatches on it.
  Fidelity fidelity = Fidelity::Cycle;
};

struct RunResult {
  double offered_rate = 0.0;    ///< flits/node/cycle offered
  double accepted_rate = 0.0;   ///< payload-equivalent flits/node/cycle delivered
  double avg_latency = 0.0;     ///< cycles, creation -> delivery
  double p99_latency = 0.0;
  bool saturated = false;
  std::uint64_t measured_packets = 0;
  std::uint64_t cycles = 0;     ///< measurement-window cycles
  EnergyCounters energy;        ///< measurement-window counters
  double cs_flit_fraction = 0.0;
  double config_flit_fraction = 0.0;

  /// Total network energy (pJ) over the measurement window.
  double total_energy_pj(const EnergyParams& p = EnergyParams::nangate45()) const {
    return compute_breakdown(energy, p).total();
  }
};

}  // namespace hybridnoc
