// Uniform driver-facing interface over the three network implementations
// (packet-switched baseline, TDM hybrid, SDM hybrid), so experiments are
// written once and run against any architecture.
#pragma once

#include <cstdint>
#include <memory>

#include "common/config.hpp"
#include "noc/network_interface.hpp"
#include "power/energy_model.hpp"

namespace hybridnoc {

class NetAdapter {
 public:
  virtual ~NetAdapter() = default;

  virtual void tick() = 0;
  virtual Cycle now() const = 0;
  virtual const Mesh& mesh() const = 0;

  /// Queue `pkt` for injection at pkt->src.
  virtual void send(PacketPtr pkt) = 0;
  virtual int inject_queue_depth(NodeId n) const = 0;

  virtual void set_deliver_handler(const DeliverFn& fn) = 0;
  virtual void set_policy_frozen(bool frozen) = 0;
  virtual bool quiescent() const = 0;

  /// Aggregate energy counters (zero for the SDM baseline, which the paper
  /// excludes from energy results).
  virtual EnergyCounters energy() const = 0;

  virtual std::uint64_t data_sent() const = 0;
  virtual std::uint64_t data_delivered() const = 0;
  virtual std::uint64_t ps_flits() const = 0;
  virtual std::uint64_t cs_flits() const = 0;
  virtual std::uint64_t config_flits() const = 0;
  virtual std::uint64_t flits_of_class(TrafficClass c) const = 0;

  /// The underlying mesh network, when this adapter wraps one (packet or
  /// TDM hybrid); nullptr for SDM. For introspection in tests and benches.
  virtual const class Network* mesh_network() const { return nullptr; }
  /// Mutable variant, for the checkpoint paths (drain / save_state /
  /// restore_state live on Network, not on this interface).
  virtual class Network* mesh_network_mut() { return nullptr; }
};

/// Instantiate the network matching cfg.arch.
std::unique_ptr<NetAdapter> make_network(const NocConfig& cfg);

}  // namespace hybridnoc
