// Tiny thread-pool helper for running independent simulations concurrently
// (each simulation owns its state, so runs are embarrassingly parallel and
// stay bit-deterministic per run).
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace hybridnoc {

/// Apply `fn(i)` for i in [0, n) across up to `threads` workers (default:
/// hardware concurrency). fn must only touch per-i state. If a worker
/// throws, the first exception is captured and rethrown on the calling
/// thread after all workers have joined; iterations not yet claimed are
/// abandoned (throwing from a worker thread would otherwise terminate the
/// whole process).
template <typename Fn>
void parallel_for(std::size_t n, Fn fn, unsigned threads = 0) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  if (threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> pool;
  const unsigned workers = static_cast<unsigned>(
      std::min<std::size_t>(threads, n));
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        // Acquire on the failure check pairs with the release store below:
        // a worker that observes `failed` also observes the captured
        // exception, and the acq_rel claim keeps the check-then-claim pair
        // from being reordered — with everything relaxed a worker could
        // claim (and start) an index after another worker had already
        // failed and published the stop request.
        if (failed.load(std::memory_order_acquire)) return;
        const std::size_t i = next.fetch_add(1, std::memory_order_acq_rel);
        if (i >= n) return;
        try {
          fn(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          failed.store(true, std::memory_order_release);
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

/// Map `fn(item)` over `items` in parallel, preserving order of results.
template <typename T, typename Fn>
auto parallel_map(const std::vector<T>& items, Fn fn, unsigned threads = 0)
    -> std::vector<decltype(fn(items[0]))> {
  std::vector<decltype(fn(items[0]))> out(items.size());
  parallel_for(items.size(), [&](std::size_t i) { out[i] = fn(items[i]); },
               threads);
  return out;
}

}  // namespace hybridnoc
