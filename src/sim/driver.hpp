// Synthetic-workload experiment driver: warm the network, measure a fixed
// number of packets, report latency / accepted throughput / energy — the
// methodology of Section IV (network warmed with 1000 packets, then
// measured; we default to shorter windows sized for CI-class machines and
// let the benches pick the paper-scale 100k-packet windows).
#pragma once

#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "power/energy_model.hpp"
#include "sim/net_adapter.hpp"
#include "traffic/synthetic.hpp"

namespace hybridnoc {

/// num/den, or 0 when den is 0. Flit-mix fractions must stay finite even
/// when a measurement window carries none of the relevant flit classes
/// (e.g. only config traffic).
inline double safe_ratio(double num, double den) {
  return den > 0.0 ? num / den : 0.0;
}

struct RunParams {
  TrafficPattern pattern = TrafficPattern::UniformRandom;
  /// Offered load in flits/node/cycle (payload-equivalent 5-flit packets).
  double injection_rate = 0.1;
  std::uint64_t warmup_packets = 1000;
  /// Warmup also runs at least this many cycles so queues reach steady
  /// state before measurement even when packets complete quickly.
  std::uint64_t warmup_min_cycles = 3000;
  std::uint64_t measure_packets = 20000;
  /// Hard cycle budget; hitting it marks the run saturated.
  std::uint64_t max_cycles = 300000;
  /// Mean latency above which a run is declared saturated early.
  double latency_cap = 500.0;
  std::uint64_t seed = 1;
};

struct RunResult {
  double offered_rate = 0.0;    ///< flits/node/cycle offered
  double accepted_rate = 0.0;   ///< payload-equivalent flits/node/cycle delivered
  double avg_latency = 0.0;     ///< cycles, creation -> delivery
  double p99_latency = 0.0;
  bool saturated = false;
  std::uint64_t measured_packets = 0;
  std::uint64_t cycles = 0;     ///< measurement-window cycles
  EnergyCounters energy;        ///< measurement-window counters
  double cs_flit_fraction = 0.0;
  double config_flit_fraction = 0.0;

  /// Total network energy (pJ) over the measurement window.
  double total_energy_pj(const EnergyParams& p = EnergyParams::nangate45()) const;
};

/// One run of `cfg` under a synthetic pattern.
RunResult run_synthetic(const NocConfig& cfg, const RunParams& params);

/// Load sweep: one run per rate (stops early once saturated twice).
std::vector<RunResult> sweep_load(const NocConfig& cfg, RunParams params,
                                  const std::vector<double>& rates);

/// Saturation throughput: largest accepted rate over a geometric rate scan.
double saturation_throughput(const NocConfig& cfg, RunParams params,
                             double start_rate = 0.05, double step = 0.025,
                             double max_rate = 1.0);

}  // namespace hybridnoc
