// Synthetic-workload experiment driver: warm the network, measure a fixed
// number of packets, report latency / accepted throughput / energy — the
// methodology of Section IV (network warmed with 1000 packets, then
// measured; we default to shorter windows sized for CI-class machines and
// let the benches pick the paper-scale 100k-packet windows).
//
// RunParams.fidelity selects the engine: Cycle runs the cycle-accurate core
// below; Fast dispatches to the transfer-level model in src/fastmodel, which
// produces the same RunResult surface at ~100x the cycle throughput.
#pragma once

#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "sim/net_adapter.hpp"
#include "sim/run_types.hpp"

#include "traffic/trace.hpp"

namespace hybridnoc {

/// One run of `cfg` under a synthetic pattern (dispatches on
/// params.fidelity).
RunResult run_synthetic(const NocConfig& cfg, const RunParams& params);

/// One run of `cfg` replaying `entries` (looped, so a short capture models
/// steady state), with the same warmup/measure/saturation methodology as
/// run_synthetic. Dispatches on params.fidelity; params.pattern and
/// params.injection_rate are ignored (the trace defines both — the reported
/// offered_rate is total trace flits / (span * nodes)). Messages shorter
/// than cfg.cs_data_flits are marked circuit-ineligible: a control message
/// would be padded out by the fixed CS transfer size, so short traffic
/// always packet-switches (the heterogeneous model's CPU-traffic rule).
/// Aborts (HN_CHECK) on an empty trace or entries that are out of mesh or
/// self-directed.
RunResult run_trace(const NocConfig& cfg,
                    const std::vector<TraceEntry>& entries,
                    const RunParams& params);

/// Load sweep: one run per rate (stops early once saturated twice).
std::vector<RunResult> sweep_load(const NocConfig& cfg, RunParams params,
                                  const std::vector<double>& rates);

/// Saturation throughput: largest accepted rate over a geometric rate scan.
double saturation_throughput(const NocConfig& cfg, RunParams params,
                             double start_rate = 0.05, double step = 0.025,
                             double max_rate = 1.0);

}  // namespace hybridnoc
