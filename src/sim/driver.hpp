// Synthetic-workload experiment driver: warm the network, measure a fixed
// number of packets, report latency / accepted throughput / energy — the
// methodology of Section IV (network warmed with 1000 packets, then
// measured; we default to shorter windows sized for CI-class machines and
// let the benches pick the paper-scale 100k-packet windows).
//
// RunParams.fidelity selects the engine: Cycle runs the cycle-accurate core
// below; Fast dispatches to the transfer-level model in src/fastmodel, which
// produces the same RunResult surface at ~75x the cycle throughput.
#pragma once

#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "sim/net_adapter.hpp"
#include "sim/run_types.hpp"

#include "traffic/trace.hpp"

namespace hybridnoc {

/// One run of `cfg` under a synthetic pattern (dispatches on
/// params.fidelity).
RunResult run_synthetic(const NocConfig& cfg, const RunParams& params);

/// One run of `cfg` replaying `entries` (looped, so a short capture models
/// steady state), with the same warmup/measure/saturation methodology as
/// run_synthetic. Dispatches on params.fidelity; params.pattern and
/// params.injection_rate are ignored (the trace defines both — the reported
/// offered_rate is total trace flits / (span * nodes)). Messages shorter
/// than cfg.cs_data_flits are marked circuit-ineligible: a control message
/// would be padded out by the fixed CS transfer size, so short traffic
/// always packet-switches (the heterogeneous model's CPU-traffic rule).
/// Aborts (HN_CHECK) on an empty trace or entries that are out of mesh or
/// self-directed.
RunResult run_trace(const NocConfig& cfg,
                    const std::vector<TraceEntry>& entries,
                    const RunParams& params);

// --- warmup checkpointing (the sweep methodology, EXPERIMENTS.md) ---
//
// The drained-run methodology splits a synthetic run into two phases with a
// quiescent seam between them: warm under the standard criterion
// (warmup_packets delivered and warmup_min_cycles elapsed), freeze policy
// and drain the network empty, then unfreeze and measure. Because the
// network is quiescent at the seam, the whole simulation state can be
// serialized there; measuring from a restored snapshot is bit-identical to
// measuring in place (asserted by the checkpoint equivalence suite), so a
// sweep snapshots one warmup and forks it across the points that share it.
//
// Cycle fidelity, mesh-backed architectures (packet / TDM hybrid) only;
// requires cfg.link_ber == 0 and cfg.tick_threads == 1 (HN_CHECK).

/// A sealed warmup checkpoint. `ok` is false when the drain did not reach
/// quiescence within params.max_cycles (heavily saturated configs) — such
/// runs fall back to the in-place path.
struct WarmupSnapshot {
  bool ok = false;
  bool saturated = false;  ///< source queues diverged during warmup
  std::string sealed;      ///< digest-protected archive (safe to persist)
};

/// Warm `cfg` under params' synthetic pattern, drain, and checkpoint. The
/// archive embeds the warmup-relevant cfg/params fields and refuses to
/// restore against a different warmup.
WarmupSnapshot warmup_snapshot(const NocConfig& cfg, const RunParams& params);

/// Measure starting from a warmup_snapshot() archive. Throws StateError on
/// a truncated, corrupted, or mismatched archive — callers treat that as a
/// cache miss and recompute. Measure-phase params (measure_packets,
/// max_cycles, latency_cap) may differ from the snapshotting run.
RunResult run_synthetic_from_snapshot(const NocConfig& cfg,
                                      const RunParams& params,
                                      const std::string& sealed);

/// The in-place twin: warm + drain + measure in one process without
/// serializing. Shares the warmup and measurement loops with the snapshot
/// path, so (run_synthetic_drained, warmup_snapshot +
/// run_synthetic_from_snapshot) form a provable restore ≡ cold-run pair.
RunResult run_synthetic_drained(const NocConfig& cfg, const RunParams& params);

/// Load sweep: one run per rate (stops early once saturated twice).
std::vector<RunResult> sweep_load(const NocConfig& cfg, RunParams params,
                                  const std::vector<double>& rates);

/// Saturation throughput: largest accepted rate over a geometric rate scan.
double saturation_throughput(const NocConfig& cfg, RunParams params,
                             double start_rate = 0.05, double step = 0.025,
                             double max_rate = 1.0);

}  // namespace hybridnoc
