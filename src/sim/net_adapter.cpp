#include "sim/net_adapter.hpp"

#include "noc/network.hpp"
#include "sdm/sdm_network.hpp"
#include "tdm/hybrid_network.hpp"

namespace hybridnoc {

namespace {

/// Adapter over the Router/NI fabric (packet-switched and TDM hybrid).
class MeshAdapter final : public NetAdapter {
 public:
  explicit MeshAdapter(std::unique_ptr<Network> net) : net_(std::move(net)) {}

  void tick() override { net_->tick(); }
  Cycle now() const override { return net_->now(); }
  const Mesh& mesh() const override { return net_->mesh(); }

  void send(PacketPtr pkt) override {
    net_->ni(pkt->src).send(std::move(pkt), net_->now());
  }
  int inject_queue_depth(NodeId n) const override {
    return net_->ni(n).inject_queue_depth();
  }

  void set_deliver_handler(const DeliverFn& fn) override {
    net_->set_deliver_handler(fn);
  }
  void set_policy_frozen(bool frozen) override { net_->set_policy_frozen(frozen); }
  bool quiescent() const override { return net_->quiescent(); }

  EnergyCounters energy() const override { return net_->total_energy(); }
  std::uint64_t data_sent() const override { return net_->total_data_sent(); }
  std::uint64_t data_delivered() const override {
    return net_->total_data_delivered();
  }
  std::uint64_t ps_flits() const override { return net_->total_ps_flits(); }
  std::uint64_t cs_flits() const override { return net_->total_cs_flits(); }
  std::uint64_t config_flits() const override { return net_->total_config_flits(); }
  std::uint64_t flits_of_class(TrafficClass c) const override {
    return net_->total_flits_of_class(c);
  }
  const Network* mesh_network() const override { return net_.get(); }
  Network* mesh_network_mut() override { return net_.get(); }

 private:
  std::unique_ptr<Network> net_;
};

class SdmAdapter final : public NetAdapter {
 public:
  explicit SdmAdapter(const NocConfig& cfg)
      : net_(std::make_unique<SdmNetwork>(cfg)) {}

  void tick() override { net_->tick(); }
  Cycle now() const override { return net_->now(); }
  const Mesh& mesh() const override { return net_->mesh(); }

  void send(PacketPtr pkt) override { net_->send(std::move(pkt)); }
  int inject_queue_depth(NodeId) const override { return 0; }

  void set_deliver_handler(const DeliverFn& fn) override {
    net_->set_deliver_handler(fn);
  }
  void set_policy_frozen(bool frozen) override { net_->set_policy_frozen(frozen); }
  bool quiescent() const override { return net_->quiescent(); }

  EnergyCounters energy() const override { return {}; }
  std::uint64_t data_sent() const override { return net_->total_data_sent(); }
  std::uint64_t data_delivered() const override {
    return net_->total_data_delivered();
  }
  std::uint64_t ps_flits() const override { return 0; }
  std::uint64_t cs_flits() const override { return 0; }
  std::uint64_t config_flits() const override { return 0; }
  std::uint64_t flits_of_class(TrafficClass) const override { return 0; }

 private:
  std::unique_ptr<SdmNetwork> net_;
};

}  // namespace

std::unique_ptr<NetAdapter> make_network(const NocConfig& cfg) {
  switch (cfg.arch) {
    case RouterArch::PacketSwitched:
      return std::make_unique<MeshAdapter>(std::make_unique<Network>(cfg));
    case RouterArch::HybridTdm:
      return std::make_unique<MeshAdapter>(std::make_unique<HybridNetwork>(cfg));
    case RouterArch::HybridSdm:
      return std::make_unique<SdmAdapter>(cfg);
  }
  HN_CHECK_MSG(false, "unknown router architecture");
  return nullptr;
}

}  // namespace hybridnoc
