// Crash-safe file primitives shared by every artifact writer in the repo
// (sweep result store, checkpoints, fault-scenario fixtures, golden traces,
// bench baselines).
//
// write_file_atomic follows the write-temp-then-rename discipline: content is
// written to `<path>.tmp.<pid>`, flushed to disk, and renamed over `path` in
// one atomic step — so a reader can never observe a half-written file, and a
// crash mid-write leaves at worst a stale temp file that later writes ignore.
#pragma once

#include <cstdint>
#include <string>

namespace hybridnoc {

/// Write `content` to `path` atomically (temp file + fsync + rename).
/// Returns false and fills `*error` (if non-null) on failure; a failed write
/// never leaves a partial file at `path`.
bool write_file_atomic(const std::string& path, const std::string& content,
                       std::string* error = nullptr);

/// Read the whole file into `*content`. Returns false (and fills `*error`)
/// when the file cannot be opened or read.
bool read_file(const std::string& path, std::string* content,
               std::string* error = nullptr);

/// FNV-1a 64-bit digest — the integrity fingerprint used by the result
/// store, checkpoint files and the sweep journal.
std::uint64_t fnv1a64(const void* data, std::size_t len,
                      std::uint64_t seed = 14695981039346656037ull);
std::uint64_t fnv1a64(const std::string& s);

/// Fixed-width lowercase hex of a 64-bit value (16 chars, no prefix).
std::string hex64(std::uint64_t v);
/// Parse hex64 output; returns false on malformed input.
bool parse_hex64(const std::string& s, std::uint64_t* out);

}  // namespace hybridnoc
