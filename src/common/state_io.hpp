// Binary state archive for network checkpoint/restore.
//
// A StateWriter accumulates tagged little-endian fields; seal() prepends a
// versioned header and appends an FNV-1a digest over the payload. A
// StateReader verifies the header and digest up front — a truncated,
// bit-flipped or wrong-version archive is rejected *before* any state is
// parsed — and then replays the fields in order. Section tags are written
// into the stream and re-checked on read, so a save/restore field-order
// mismatch fails loudly at the exact divergent section instead of silently
// restoring garbage.
//
// All read-side failures throw StateError (never HN_CHECK): callers treat a
// bad archive as "recompute from scratch", which must be a death-free path.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

namespace hybridnoc {

struct StateError : std::runtime_error {
  explicit StateError(const std::string& what) : std::runtime_error(what) {}
};

class StateWriter {
 public:
  /// Begin a named section; the tag is embedded and verified on read.
  void section(const char* name);

  void u8(std::uint8_t v) { raw(&v, 1); }
  void b(bool v) { u8(v ? 1 : 0); }
  void u32(std::uint32_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  /// Bit-exact double round-trip (no decimal formatting involved).
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(const std::string& s);
  void bytes(const std::string& s) { str(s); }

  /// Finish: returns magic + version + payload-size + payload + digest.
  std::string seal() const;

 private:
  void raw(const void* data, std::size_t len) {
    payload_.append(static_cast<const char*>(data), len);
  }
  std::string payload_;
};

class StateReader {
 public:
  /// Verifies magic, version and digest; throws StateError on any mismatch.
  explicit StateReader(const std::string& sealed);

  void section(const char* name);

  std::uint8_t u8();
  bool b() { return u8() != 0; }
  std::uint32_t u32();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str();

  /// Throws StateError unless every payload byte was consumed.
  void finish() const;

 private:
  const void* take(std::size_t len);

  std::string payload_;
  std::size_t pos_ = 0;
};

}  // namespace hybridnoc
