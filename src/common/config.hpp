// Network and policy configuration. Defaults reproduce Table I of the paper:
// 36-node 2D mesh, 16-byte channels, 4 VCs x 5-flit buffers, 128-entry slot
// tables, 1-flit config packets, 4-flit circuit-switched packets, 5-flit
// packet-switched packets.
#pragma once

#include <cstdint>
#include <string>

namespace hybridnoc {

/// Which router microarchitecture the network instantiates.
enum class RouterArch : std::uint8_t {
  PacketSwitched,  ///< canonical VC wormhole router (baseline Packet-VC4)
  HybridTdm,       ///< the paper's TDM hybrid-switched router
  HybridSdm,       ///< Jerger et al. SDM hybrid baseline
};

inline const char* router_arch_name(RouterArch a) {
  switch (a) {
    case RouterArch::PacketSwitched: return "Packet";
    case RouterArch::HybridTdm: return "Hybrid-TDM";
    case RouterArch::HybridSdm: return "Hybrid-SDM";
  }
  return "?";
}

struct NocConfig {
  // --- topology / canonical router (Table I) ---
  int k = 6;                ///< mesh is k x k
  int num_vcs = 4;          ///< virtual channels per input port
  int vc_buffer_depth = 5;  ///< flits per VC
  int channel_bytes = 16;

  RouterArch arch = RouterArch::PacketSwitched;

  // --- packet geometry (Table I) ---
  int ps_data_flits = 5;  ///< packet-switched data packet (header + 64B line)
  int cs_data_flits = 4;  ///< circuit-switched data packet (no header needed)
  int config_flits = 1;   ///< setup/teardown/ack messages
  int ctrl_packet_flits = 1;  ///< request/coherence control messages

  // --- TDM slot tables (Sections II-B/II-C) ---
  int slot_table_size = 128;
  bool time_slot_stealing = true;
  /// Reservations are refused when valid-entry occupancy exceeds this
  /// fraction, preventing packet-switched starvation (paper uses 0.9).
  double reservation_threshold = 0.9;

  // --- dynamic time-division granularity (Section II-C) ---
  bool dynamic_slot_sizing = false;
  int initial_active_slots = 16;
  /// Setup failures within one epoch that trigger a table-size doubling.
  int resize_failure_threshold = 32;

  // --- path establishment policy (Section II-B) ---
  /// Data packets to one destination within an epoch that make the pair
  /// "frequently communicating" and worth a circuit.
  int path_freq_threshold = 6;
  int policy_epoch_cycles = 1024;
  int max_setup_retries = 4;
  /// Maximum reservation windows one source-destination pair may hold.
  /// This is the "time-division granularity" of Section II-C: each window
  /// is reservation_duration() slots, so with S slots a pair may own up to
  /// max_windows_per_pair * duration / S of the path bandwidth. A source
  /// requests a supplementary window when its existing windows are too busy
  /// to carry the pair's circuit-eligible traffic.
  int max_windows_per_pair = 12;
  /// A connection unused for this many cycles becomes a teardown candidate
  /// when new setups need room.
  std::uint64_t path_idle_timeout = 8192;
  /// A setup whose ack has not returned after this many cycles is presumed
  /// lost: its destination is unblocked for new setups and a full-path
  /// teardown reclaims whatever prefix the lost setup reserved.
  std::uint64_t pending_setup_timeout_cycles = 4096;
  /// Router-side reservation lease: slot-table entries that carry no circuit
  /// traffic for this many cycles are reclaimed. This is the backstop that
  /// recovers reservations orphaned by lost teardowns; it is sized well
  /// beyond path_idle_timeout so the source always retires an idle
  /// connection long before its entries expire. 0 disables expiry.
  std::uint64_t reservation_lease_cycles = 32768;

  // --- switching decision (Sections II-A / V-A2) ---
  /// A message circuit-switches only if slot-wait + circuit flight time is
  /// below this multiple of the NI's estimate of packet-switched latency
  /// toward that destination.
  double cs_latency_advantage = 1.2;
  /// Weight of the NI's EWMA injection delay in the packet-switched latency
  /// estimate (injection backpressure correlates with network congestion).
  double congestion_gain = 3.0;

  // --- path sharing (Section III-A) ---
  bool hitchhiker_sharing = false;
  bool vicinity_sharing = false;
  int dlt_entries = 8;  ///< Destination Lookup Table capacity per node

  // --- aggressive VC power gating (Section III-B) ---
  bool vc_power_gating = false;
  /// Utilization: compare the busy-VC fraction against the thresholds (the
  /// paper's scheme). Latency: compare the mean buffered-flit residency in
  /// cycles instead — the "more accurate metric, for example, packet
  /// latency" the paper's Section V-B4 proposes as future work.
  enum class VcGateMetric : std::uint8_t { Utilization, Latency };
  VcGateMetric vc_gate_metric = VcGateMetric::Utilization;
  double vc_threshold_high = 0.35;
  double vc_threshold_low = 0.06;
  /// Thresholds for the latency metric, in cycles of mean buffer residency.
  double vc_latency_high = 6.0;
  double vc_latency_low = 3.2;
  int vc_gate_epoch_cycles = 512;
  /// Two VCs stay on so one long packet cannot head-of-line block a port.
  int min_active_vcs = 2;

  // --- SDM baseline ---
  int sdm_planes = 4;  ///< physical link planes (channel_bytes / planes each)

  // --- data-plane fault tolerance (everything off by default: a zero-fault
  // run is bit-identical to a build without the fault layer) ---
  /// Per-flit, per-link transient corruption probability (bit-error rate at
  /// flit granularity). > 0 auto-installs the FaultModel on the network.
  double link_ber = 0.0;
  /// Seed for the fault model's stateless per-traversal corruption hash
  /// (independent of `seed` so traffic and faults can be varied separately).
  std::uint64_t fault_seed = 1;
  /// End-to-end recovery at the NI: CRC squash of corrupted packets,
  /// per-packet acks from the destination, and capped-exponential-backoff
  /// retransmission at the source.
  bool e2e_recovery = false;
  /// First retransmission fires this long after injection; each further
  /// attempt doubles the wait (plus seeded jitter) up to the cap.
  std::uint64_t retx_timeout_cycles = 256;
  std::uint64_t retx_backoff_cap_cycles = 4096;
  /// Retransmission attempts before the source declares the packet failed.
  int max_retx_attempts = 6;
  /// Consecutive retransmissions on one circuit (the missed-slot streak)
  /// that make the source tear the circuit down and retry setup on a
  /// fault-aware route.
  int cs_fail_threshold = 3;
  /// Starvation watchdog: packets older than this (queued or unacked) are
  /// flagged into the degradation report. 0 disables the watchdog.
  std::uint64_t watchdog_stall_cycles = 0;
  /// Setup-retry backoff after a reservation conflict: retry n waits
  /// base << n cycles (plus seeded jitter), capped. 0 = legacy immediate
  /// retry with a different slot id.
  std::uint64_t setup_backoff_base_cycles = 0;
  std::uint64_t setup_backoff_cap_cycles = 1024;

  // --- simulation engine ---
  /// Active-set scheduling: skip idle routers/NIs each cycle and
  /// fast-forward over fully idle stretches, with lazily folded energy
  /// integrals. Bit-identical to the legacy full sweep (asserted by the
  /// scheduler-equivalence property tests); set false to force the legacy
  /// every-component-every-cycle sweep.
  bool active_set_scheduler = true;
  /// Worker threads for the sharded parallel tick engine: the mesh is split
  /// into contiguous node-range shards (one thread each) and every cycle
  /// runs compute -> barrier -> commit, with cross-shard channel writes
  /// staged so results are bit-identical to the serial engine for any
  /// thread count (asserted by the thread-equivalence property tests).
  /// 1 (the default) bypasses the engine entirely — the serial tick path
  /// is byte-for-byte the pre-engine code. Incompatible with
  /// vc_power_gating, whose cross-router VC announcements are read
  /// mid-cycle without a channel in between.
  int tick_threads = 1;

  std::uint64_t seed = 1;

  int num_nodes() const { return k * k; }

  /// Slots one reservation occupies: data flits, +1 header when
  /// vicinity-sharing is on (Section III-A2).
  int reservation_duration() const {
    return cs_data_flits + (vicinity_sharing ? 1 : 0);
  }

  /// Aborts (HN_CHECK) on inconsistent parameter combinations.
  void validate() const;

  /// Human-readable one-line summary for bench headers.
  std::string summary() const;

  // --- named configurations used throughout the evaluation ---
  static NocConfig packet_vc4(int k = 6);      ///< baseline Packet-VC4
  static NocConfig hybrid_tdm_vc4(int k = 6);  ///< Hybrid-TDM-VC4
  static NocConfig hybrid_tdm_vct(int k = 6);  ///< Hybrid-TDM-VCt (+VC gating)
  static NocConfig hybrid_sdm_vc4(int k = 6);  ///< Hybrid-SDM-VC4
  /// Hybrid-TDM-hop-VC4: + hitchhiker & vicinity sharing.
  static NocConfig hybrid_tdm_hop_vc4(int k = 6);
  /// Hybrid-TDM-hop-VCt: + sharing + aggressive VC power gating.
  static NocConfig hybrid_tdm_hop_vct(int k = 6);
};

}  // namespace hybridnoc
