#include "common/config.hpp"

#include <sstream>

#include "common/assert.hpp"

namespace hybridnoc {

void NocConfig::validate() const {
  HN_CHECK_MSG(k >= 2,
               "mesh radix k must be >= 2: a 1-node mesh has no links, and "
               "the tornado/hotspot patterns are degenerate on it");
  HN_CHECK(num_vcs >= 1);
  HN_CHECK(vc_buffer_depth >= 1);
  HN_CHECK(ps_data_flits >= 1 && cs_data_flits >= 1 && config_flits >= 1);
  HN_CHECK(slot_table_size >= 4);
  HN_CHECK_MSG((slot_table_size & (slot_table_size - 1)) == 0,
               "slot table size must be a power of two (modulo-S arithmetic)");
  HN_CHECK(initial_active_slots >= 4 && initial_active_slots <= slot_table_size);
  HN_CHECK((initial_active_slots & (initial_active_slots - 1)) == 0);
  HN_CHECK(reservation_threshold > 0.0 && reservation_threshold <= 1.0);
  HN_CHECK(path_freq_threshold >= 1);
  HN_CHECK(policy_epoch_cycles >= 1);
  HN_CHECK(max_setup_retries >= 0);
  HN_CHECK(cs_latency_advantage > 0.0);
  HN_CHECK(dlt_entries >= 1);
  HN_CHECK(vc_threshold_high > vc_threshold_low);
  HN_CHECK(vc_latency_high > vc_latency_low && vc_latency_low >= 0.0);
  HN_CHECK(vc_gate_epoch_cycles >= 1);
  HN_CHECK(min_active_vcs >= 1 && min_active_vcs <= num_vcs);
  HN_CHECK(sdm_planes >= 2 && channel_bytes % sdm_planes == 0);
  HN_CHECK(reservation_duration() < slot_table_size);
  HN_CHECK(pending_setup_timeout_cycles >= 1);
  HN_CHECK(link_ber >= 0.0 && link_ber < 1.0);
  HN_CHECK(retx_timeout_cycles >= 1 && max_retx_attempts >= 0);
  HN_CHECK(retx_backoff_cap_cycles >= retx_timeout_cycles);
  HN_CHECK(cs_fail_threshold >= 1);
  HN_CHECK(setup_backoff_base_cycles == 0 ||
           setup_backoff_cap_cycles >= setup_backoff_base_cycles);
  HN_CHECK(tick_threads >= 1);
  HN_CHECK_MSG(tick_threads == 1 || !vc_power_gating,
               "the parallel tick engine requires vc_power_gating off: VC "
               "gating announcements cross router boundaries without a "
               "pipelined channel in between");
}

std::string NocConfig::summary() const {
  std::ostringstream os;
  os << router_arch_name(arch) << " k=" << k << " vcs=" << num_vcs
     << " depth=" << vc_buffer_depth;
  if (arch == RouterArch::HybridTdm) {
    os << " slots=" << slot_table_size
       << (dynamic_slot_sizing ? " dyn-slots" : "")
       << (time_slot_stealing ? " stealing" : "")
       << (hitchhiker_sharing ? " hitchhiker" : "")
       << (vicinity_sharing ? " vicinity" : "");
  }
  if (arch == RouterArch::HybridSdm) os << " planes=" << sdm_planes;
  if (vc_power_gating) os << " vc-gating";
  if (tick_threads > 1) os << " threads=" << tick_threads;
  return os.str();
}

NocConfig NocConfig::packet_vc4(int k) {
  NocConfig c;
  c.k = k;
  c.arch = RouterArch::PacketSwitched;
  return c;
}

NocConfig NocConfig::hybrid_tdm_vc4(int k) {
  NocConfig c;
  c.k = k;
  c.arch = RouterArch::HybridTdm;
  // Paper: 128-entry tables at 36 nodes, 256 at >= 64 nodes (Section IV-D).
  c.slot_table_size = (k * k >= 64) ? 256 : 128;
  return c;
}

NocConfig NocConfig::hybrid_tdm_vct(int k) {
  NocConfig c = hybrid_tdm_vc4(k);
  c.vc_power_gating = true;
  return c;
}

NocConfig NocConfig::hybrid_sdm_vc4(int k) {
  NocConfig c;
  c.k = k;
  c.arch = RouterArch::HybridSdm;
  return c;
}

NocConfig NocConfig::hybrid_tdm_hop_vc4(int k) {
  NocConfig c = hybrid_tdm_vc4(k);
  c.hitchhiker_sharing = true;
  c.vicinity_sharing = true;
  // Section V-B3: "path sharing enables smaller slot tables being used" —
  // shared paths satisfy the frequent connections with half the table,
  // halving both the slot wait and the table's leakage.
  c.slot_table_size /= 2;
  return c;
}

NocConfig NocConfig::hybrid_tdm_hop_vct(int k) {
  NocConfig c = hybrid_tdm_hop_vc4(k);
  c.vc_power_gating = true;
  return c;
}

}  // namespace hybridnoc
