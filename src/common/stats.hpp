// Streaming statistics containers used by the simulator's measurement layer.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace hybridnoc {

/// Single-pass accumulator: count, mean, variance (Welford), min, max.
class StatAccumulator {
 public:
  void add(double v);
  void merge(const StatAccumulator& other);
  void reset();

  std::uint64_t count() const { return count_; }
  double sum() const { return mean_ * static_cast<double>(count_); }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width linear histogram with an overflow bucket; used for latency
/// distributions and slot-wait distributions.
class Histogram {
 public:
  Histogram(double bucket_width, int num_buckets);

  void add(double v);
  void reset();

  std::uint64_t total() const { return total_; }
  std::uint64_t bucket(int i) const { return buckets_[static_cast<size_t>(i)]; }
  int num_buckets() const { return static_cast<int>(buckets_.size()); }
  std::uint64_t overflow() const { return overflow_; }
  double bucket_width() const { return bucket_width_; }
  /// Largest sample recorded (0 when empty), including overflow samples.
  double max_seen() const { return max_seen_; }

  /// Value below which `q` (0..1) of the samples fall; linear interpolation
  /// within a bucket. When the target mass lies in the overflow bucket the
  /// result is the largest recorded sample, not the (arbitrary) top edge of
  /// the finite range.
  double quantile(double q) const;

 private:
  double bucket_width_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
  double max_seen_ = 0.0;
};

/// Windowed rate meter: events per cycle over the most recent epoch.
/// Backs the VC-utilisation and path-frequency policies.
class EpochRate {
 public:
  explicit EpochRate(std::uint64_t epoch_cycles) : epoch_(epoch_cycles) {
    HN_CHECK(epoch_cycles > 0);
  }

  void record(std::uint64_t n = 1) { current_ += n; }

  /// Advance to `cycle`; rolls the window when the epoch boundary passes.
  void tick(std::uint64_t cycle) {
    if (cycle >= epoch_start_ + epoch_) {
      last_rate_ = static_cast<double>(current_) / static_cast<double>(epoch_);
      current_ = 0;
      epoch_start_ = cycle;
    }
  }

  double rate() const { return last_rate_; }

 private:
  std::uint64_t epoch_;
  std::uint64_t epoch_start_ = 0;
  std::uint64_t current_ = 0;
  double last_rate_ = 0.0;
};

}  // namespace hybridnoc
