// Small text-table / CSV emitter shared by the benchmark harnesses so every
// bench prints its rows in a consistent, paper-comparable format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hybridnoc {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with fixed precision.
  static std::string num(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 1);

  /// Pretty-printed, column-aligned table.
  void print(std::ostream& os) const;

  /// Machine-readable CSV (same rows).
  void print_csv(std::ostream& os) const;

  int num_rows() const { return static_cast<int>(rows_.size()); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a "== title ==" banner used by every bench binary.
void print_banner(std::ostream& os, const std::string& title,
                  const std::string& subtitle = "");

}  // namespace hybridnoc
