// Block-recycling allocator for the simulator's hot heap objects.
//
// Packets are minted on every injection and freed on every delivery; under
// load at 64x64 that is tens of millions of identically-sized
// std::allocate_shared control blocks per run, and the general-purpose
// allocator's size-class lookup plus cross-thread free-list handling becomes a
// measurable slice of the cycle core. PoolAlloc routes those blocks through a
// process-wide bucketed free list instead: deallocation pushes the raw block
// onto the bucket for its size, allocation pops it back. Blocks never shrink
// or merge — every block in a bucket has exactly the bucket's size, so a pop
// is always a fit.
//
// Thread-safety: a plain std::mutex per pool. Packets are created on shard
// threads and released wherever the last FlitPtr/PacketPtr dies (often a
// different shard, or the drain on the main thread), so lock-free would buy
// little — the lock is uncontended in the serial engine and amortised by the
// allocator's own work in the parallel one.
//
// Sanitizer builds bypass recycling entirely: a recycled block would hide
// use-after-free bugs from asan (the memory stays live in the pool), so under
// asan/tsan/msan make_packet degrades to plain operator new/delete and keeps
// full poisoning coverage.
#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <new>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/alloc_stats.hpp"
#include "common/types.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define HN_POOL_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define HN_POOL_DISABLED 1
#endif
#endif
#ifndef HN_POOL_DISABLED
#define HN_POOL_DISABLED 0
#endif

namespace hybridnoc {

/// Process-wide bucketed block pool backing PoolAlloc. Buckets are spaced a
/// cache line apart and capped in length so a burst (a storm test minting a
/// million packets, then idling) cannot pin unbounded memory.
class BlockPool {
 public:
  static BlockPool& instance() {
    static BlockPool pool;
    return pool;
  }

  void* allocate(std::size_t bytes) {
    const int b = bucket_of(bytes);
    if (b >= 0 && enabled()) {
      std::lock_guard<std::mutex> lk(mu_);
      std::vector<void*>& list = free_[static_cast<std::size_t>(b)];
      if (!list.empty()) {
        void* p = list.back();
        list.pop_back();
        alloc_stats_bump(AllocStats::instance().pool_hits);
        return p;
      }
    }
    alloc_stats_bump(AllocStats::instance().pool_misses);
    return ::operator new(b >= 0 ? bucket_bytes(b) : bytes);
  }

  void deallocate(void* p, std::size_t bytes) {
    const int b = bucket_of(bytes);
    if (b >= 0 && enabled()) {
      std::lock_guard<std::mutex> lk(mu_);
      std::vector<void*>& list = free_[static_cast<std::size_t>(b)];
      if (list.size() < kMaxPerBucket) {
        list.push_back(p);
        return;
      }
    }
    ::operator delete(p);
  }

  /// Runtime recycling switch. Off = every PoolAlloc allocation degrades to
  /// plain operator new/delete, the same shared_ptr-compatible fallback the
  /// sanitizer builds use — which is how the pool-on/pool-off twin-run test
  /// and the asan leg exercise that path explicitly. Blocks allocated while
  /// the pool was on still free correctly after a toggle: bucket sizes are
  /// deterministic from the request size, and a disabled deallocate simply
  /// returns the block to the system allocator instead of a free list.
  /// Compile-time HN_POOL_DISABLED (sanitizers) overrides this to off.
  static bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }
  static void set_enabled(bool on) { enabled_flag().store(on, std::memory_order_relaxed); }

  /// Drops every cached free block (testing hook; makes pool-off runs start
  /// from the same cold allocator state as a fresh process).
  void trim() {
    std::lock_guard<std::mutex> lk(mu_);
    for (std::vector<void*>& list : free_) {
      for (void* p : list) ::operator delete(p);
      list.clear();
    }
  }

 private:
  static constexpr std::size_t kBucketStep = 64;   ///< one cache line
  static constexpr std::size_t kNumBuckets = 16;   ///< up to 1 KiB blocks
  static constexpr std::size_t kMaxPerBucket = 4096;

  static int bucket_of(std::size_t bytes) {
    const std::size_t b = (bytes + kBucketStep - 1) / kBucketStep;
    return b >= 1 && b <= kNumBuckets ? static_cast<int>(b - 1) : -1;
  }
  static std::size_t bucket_bytes(int b) {
    return (static_cast<std::size_t>(b) + 1) * kBucketStep;
  }

  static std::atomic<bool>& enabled_flag() {
    static std::atomic<bool> on{true};
    return on;
  }

  std::mutex mu_;
  std::vector<void*> free_[kNumBuckets];
};

/// Stateless allocator adapter over BlockPool, usable with
/// std::allocate_shared (the packet + shared_ptr control block land in one
/// pooled allocation).
template <typename T>
struct PoolAlloc {
  using value_type = T;

  PoolAlloc() = default;
  template <typename U>
  PoolAlloc(const PoolAlloc<U>&) {}  // NOLINT(google-explicit-constructor)

  T* allocate(std::size_t n) {
#if HN_POOL_DISABLED
    return static_cast<T*>(::operator new(n * sizeof(T)));
#else
    return static_cast<T*>(BlockPool::instance().allocate(n * sizeof(T)));
#endif
  }
  void deallocate(T* p, [[maybe_unused]] std::size_t n) {
#if HN_POOL_DISABLED
    ::operator delete(p);
#else
    BlockPool::instance().deallocate(p, n * sizeof(T));
#endif
  }

  template <typename U>
  bool operator==(const PoolAlloc<U>&) const {
    return true;
  }
  template <typename U>
  bool operator!=(const PoolAlloc<U>&) const {
    return false;
  }
};

/// Pool-backed drop-in aliases for the ordered/unordered containers that
/// insert on the steady-state path (NI assembly maps, e2e bookkeeping,
/// connection tables). Node allocations route through BlockPool, so after
/// warmup an insert/erase cycle touches only the free lists.
template <typename K, typename V, typename Cmp = std::less<K>>
using PooledMap = std::map<K, V, Cmp, PoolAlloc<std::pair<const K, V>>>;
template <typename K, typename Cmp = std::less<K>>
using PooledSet = std::set<K, Cmp, PoolAlloc<K>>;
template <typename K, typename V, typename Hash = std::hash<K>>
using PooledUMap =
    std::unordered_map<K, V, Hash, std::equal_to<K>, PoolAlloc<std::pair<const K, V>>>;
template <typename K, typename Hash = std::hash<K>>
using PooledUSet = std::unordered_set<K, Hash, std::equal_to<K>, PoolAlloc<K>>;

/// Mint a Packet whose storage (object + control block, fused by
/// allocate_shared) comes from the block pool. Drop-in replacement for
/// std::make_shared<Packet>() at every injection site.
inline PacketPtr make_packet() {
  alloc_stats_bump(AllocStats::instance().packets_minted);
  return std::allocate_shared<Packet>(PoolAlloc<Packet>{});
}

/// Pool-backed copy-construction (retransmission and hop-off clones). The
/// clone starts outside any flight: the copied self-anchor would otherwise
/// pin the *source* packet, and the clone's own flits are minted later.
inline PacketPtr make_packet(const Packet& src) {
  alloc_stats_bump(AllocStats::instance().packets_minted);
  PacketPtr p = std::allocate_shared<Packet>(PoolAlloc<Packet>{}, src);
  p->flight.reset();
  p->live_flits = 0;
  return p;
}

}  // namespace hybridnoc
