// Core value types shared by every module: node/packet identifiers, mesh
// ports, message classes and the flit/packet records that travel the network.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "common/alloc_stats.hpp"
#include "common/assert.hpp"

namespace hybridnoc {

using Cycle = std::uint64_t;
using NodeId = std::int32_t;
using PacketId = std::uint64_t;

constexpr NodeId kInvalidNode = -1;
/// "No event pending" sentinel for next-event-cycle computations.
constexpr Cycle kCycleNever = ~Cycle{0};

/// Router port directions on a 2D mesh. Local is the NI injection/ejection
/// port; the four cardinal ports connect to neighbouring routers.
enum class Port : std::uint8_t { Local = 0, North, East, South, West };
constexpr int kNumPorts = 5;
constexpr int kInvalidPort = -1;

inline const char* port_name(Port p) {
  switch (p) {
    case Port::Local: return "local";
    case Port::North: return "north";
    case Port::East: return "east";
    case Port::South: return "south";
    case Port::West: return "west";
  }
  return "?";
}

/// Returns the port on the neighbouring router that faces back at `p`.
inline Port opposite(Port p) {
  switch (p) {
    case Port::North: return Port::South;
    case Port::South: return Port::North;
    case Port::East: return Port::West;
    case Port::West: return Port::East;
    case Port::Local: return Port::Local;
  }
  return Port::Local;
}

/// Network-level message kinds. Data messages carry workload payloads;
/// the other three implement the circuit-switched path configuration
/// protocol of Section II-B of the paper.
enum class MsgType : std::uint8_t {
  Data,
  SetupRequest,  ///< reserves slots hop by hop toward the destination
  Teardown,      ///< releases slots along a (partially) reserved path
  AckSuccess,    ///< destination reached; circuit is usable
  AckFailure,    ///< reservation conflict; source must retry or give up
};

inline const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::Data: return "data";
    case MsgType::SetupRequest: return "setup";
    case MsgType::Teardown: return "teardown";
    case MsgType::AckSuccess: return "ack+";
    case MsgType::AckFailure: return "ack-";
  }
  return "?";
}

/// How a message traverses the fabric.
enum class Switching : std::uint8_t { Packet, Circuit };

/// Coarse producer classes used for statistics and per-class policies.
enum class TrafficClass : std::uint8_t { Synthetic, Cpu, Gpu, Config };

/// One network packet. Flits carry a raw pointer to their packet; the packet
/// keeps itself alive while any of its flits are in flight via the `flight`
/// self-anchor (see begin_flight/consume_flit below), so router stages reach
/// routing and accounting metadata without any per-flit refcount traffic.
struct Packet {
  PacketId id = 0;
  NodeId src = kInvalidNode;
  /// Network destination of this traversal. Under vicinity-sharing this is
  /// the hop-off node; `final_dst` then holds the true destination.
  NodeId dst = kInvalidNode;
  NodeId final_dst = kInvalidNode;
  MsgType type = MsgType::Data;
  Switching switching = Switching::Packet;
  TrafficClass traffic_class = TrafficClass::Synthetic;
  int num_flits = 1;

  Cycle created = 0;   ///< when the producer generated the message
  Cycle injected = 0;  ///< when the head flit left the source NI queue

  // --- configuration-message payload (Section II-B) ---
  /// First reserved slot at the *next* router the message will enter.
  int slot_id = -1;
  /// Number of consecutive slots each reservation needs.
  int duration = 0;
  /// Slot-table generation the message was created under. Every dynamic
  /// resize (Section II-C) wipes all slot tables and bumps the network-wide
  /// generation; routers and NIs discard config messages whose generation is
  /// stale, since the state they reference no longer exists.
  std::uint64_t table_gen = 0;
  /// Teardown only: the router at which the corresponding setup failed (the
  /// failure ack's source). The teardown evaporates there WITHOUT releasing —
  /// the entries at the fail node belong to the conflicting connection, not
  /// to the path being destroyed. kInvalidNode = walk to the destination.
  NodeId teardown_stop = kInvalidNode;

  /// Opaque token for request/reply matching in the heterogeneous model.
  std::uint64_t payload = 0;

  /// GPU message slack in cycles (Section V-A2): the transmission delay this
  /// message tolerates without hurting performance, estimated from the number
  /// of ready warps. Negative = no slack information (use the latency-based
  /// switching decision instead).
  std::int64_t slack = -1;
  /// May this message use the circuit-switched network at all? (The paper
  /// packet-switches all CPU traffic and hybrid-switches only GPU messages
  /// in the heterogeneous evaluation.)
  bool cs_eligible = true;
  /// Set on packets an NI re-injects (vicinity hop-off, hitchhiker bounce)
  /// so they are not double-counted as new workload packets.
  bool reinjected = false;

  // --- end-to-end recovery metadata (cfg.e2e_recovery) ---
  /// NI that first injected this message into the network. Survives the
  /// dst-rewrites of vicinity hop-offs and retransmission copies, so the
  /// destination knows where the end-to-end ack must go.
  NodeId origin = kInvalidNode;
  /// Id of the original transmission this packet retransmits (0 = this IS
  /// the original). The destination dedups and acks on the original id.
  PacketId retx_of = 0;
  /// End-to-end acknowledgement carrying the acked id in `payload`. Travels
  /// as an ordinary 1-flit packet-switched message.
  bool e2e_ack = false;
  /// Set once by the starvation watchdog so one stalled packet is not
  /// re-counted on every sweep.
  bool stall_flagged = false;

  // --- hitchhiker-sharing metadata (Section III-A1) ---
  /// Input port (at the hop-on router) of the shared slot-table entry the
  /// message rides, and that entry's output port. Set by the source NI from
  /// its Destination Lookup Table; -1 when not hitchhiking.
  int share_in_port = -1;
  int share_out_port = -1;

  bool is_hitchhiker() const { return share_in_port >= 0; }

  bool is_config() const { return type != MsgType::Data; }

  // --- flit-flight lifetime (transient; never serialized) ---
  /// Self-reference held from the moment the packet's flits are minted until
  /// the last one is consumed. This single acquire/release pair replaces the
  /// per-flit shared_ptr copies of the old Flit layout. A default copy would
  /// carry a stray reference to the source, so make_packet(const Packet&)
  /// clears both fields on every clone.
  std::shared_ptr<Packet> flight;
  /// Flits of this packet not yet terminally consumed (ejected at an NI,
  /// evaporated at a router, or cancelled from a CS plan). The flit count is
  /// committed up front at begin_flight, so it reaches zero exactly when the
  /// whole packet has been accounted for.
  int live_flits = 0;
};

using PacketPtr = std::shared_ptr<Packet>;

/// Anchors `p` for transmission: every one of its `num_flits` flits is now
/// either in flight or still to be minted, and the packet owns itself until
/// consume_flit returns the anchor.
inline void begin_flight(const PacketPtr& p) {
  HN_CHECK_MSG(p && !p->flight && p->live_flits == 0, "packet already in flight");
  HN_CHECK_MSG(p->num_flits > 0, "flightless packet");
  p->flight = p;
  p->live_flits = p->num_flits;
  alloc_stats_bump(AllocStats::instance().flight_acquires);
}

/// Terminal consumption of one in-flight flit of `p`. Returns the packet's
/// anchor — non-null exactly when this was the last live flit, at which point
/// the caller becomes the sole owner (destination delivery) or lets the
/// packet die by dropping the return value (router evaporation).
inline PacketPtr consume_flit(Packet* p) {
  HN_CHECK_MSG(p && p->live_flits > 0, "consume_flit on a packet with no live flits");
  if (--p->live_flits > 0) return nullptr;
  alloc_stats_bump(AllocStats::instance().flight_releases);
  return std::move(p->flight);
}

enum class FlitType : std::uint8_t { Head, Body, Tail, HeadTail };

/// Unit of flow control: 16 bytes on the wire (Table I). Trivially copyable:
/// the packet handle is a raw pointer kept alive by the packet's flight
/// anchor, so moving a flit through channels and FIFOs is a plain copy with
/// no refcount or allocator traffic.
struct Flit {
  Packet* pkt = nullptr;
  FlitType type = FlitType::HeadTail;
  int seq = 0;  ///< position within the packet, 0-based
  Switching switching = Switching::Packet;
  /// Virtual channel at the input port this flit is heading into; chosen by
  /// the upstream VC allocator. Unused for circuit-switched flits.
  int vc = 0;
  /// A link fault flipped payload bits in flight. Control fields (routing,
  /// VC, slot arithmetic) are assumed separately protected, so a corrupted
  /// flit still traverses normally; per-hop CRC checks flag it and the
  /// destination NI squashes the whole packet instead of delivering garbage.
  bool corrupted = false;

  bool is_head() const { return type == FlitType::Head || type == FlitType::HeadTail; }
  bool is_tail() const { return type == FlitType::Tail || type == FlitType::HeadTail; }
  bool valid() const { return pkt != nullptr; }
};

}  // namespace hybridnoc
