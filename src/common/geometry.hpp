// 2D-mesh coordinate helpers. Node ids are row-major: id = y * k + x with
// x growing eastward and y growing southward.
#pragma once

#include <cmath>
#include <cstdlib>

#include "common/types.hpp"

namespace hybridnoc {

struct Coord {
  int x = 0;
  int y = 0;
  friend bool operator==(const Coord&, const Coord&) = default;
};

class Mesh {
 public:
  explicit Mesh(int k) : k_(k) { HN_CHECK(k >= 2); }

  int k() const { return k_; }
  int num_nodes() const { return k_ * k_; }

  Coord coord(NodeId n) const {
    HN_CHECK(valid(n));
    return {static_cast<int>(n) % k_, static_cast<int>(n) / k_};
  }

  NodeId node(Coord c) const {
    HN_CHECK(c.x >= 0 && c.x < k_ && c.y >= 0 && c.y < k_);
    return static_cast<NodeId>(c.y * k_ + c.x);
  }

  bool valid(NodeId n) const { return n >= 0 && n < num_nodes(); }

  int hop_distance(NodeId a, NodeId b) const {
    const Coord ca = coord(a), cb = coord(b);
    return std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y);
  }

  /// True if `a` and `b` are mesh neighbours (Manhattan distance 1); this is
  /// the "vicinity" used by vicinity-sharing (Section III-A2).
  bool adjacent(NodeId a, NodeId b) const { return hop_distance(a, b) == 1; }

  bool has_neighbor(NodeId n, Port p) const {
    const Coord c = coord(n);
    switch (p) {
      case Port::North: return c.y > 0;
      case Port::South: return c.y < k_ - 1;
      case Port::West: return c.x > 0;
      case Port::East: return c.x < k_ - 1;
      case Port::Local: return false;
    }
    return false;
  }

  NodeId neighbor(NodeId n, Port p) const {
    HN_CHECK(has_neighbor(n, p));
    Coord c = coord(n);
    switch (p) {
      case Port::North: --c.y; break;
      case Port::South: ++c.y; break;
      case Port::West: --c.x; break;
      case Port::East: ++c.x; break;
      case Port::Local: break;
    }
    return node(c);
  }

 private:
  int k_;
};

}  // namespace hybridnoc
