#include "common/assert.hpp"

#include <cstdio>
#include <cstdlib>

namespace hybridnoc {

namespace {
thread_local bool g_checks_throw = false;
}  // namespace

ScopedCheckThrows::ScopedCheckThrows() : previous_(g_checks_throw) {
  g_checks_throw = true;
}

ScopedCheckThrows::~ScopedCheckThrows() { g_checks_throw = previous_; }

void check_failed(const char* expr, const char* file, int line,
                  const char* msg) {
  if (g_checks_throw) {
    std::string what(msg ? msg : expr);
    throw CheckFailure(what);
  }
  std::fprintf(stderr, "HN_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace hybridnoc
