#include "common/rng.hpp"

#include <cmath>

namespace hybridnoc {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // All-zero state is the one invalid state for xoshiro; splitmix64 cannot
  // produce four zeros from any seed, but keep the guard explicit.
  HN_CHECK(s_[0] | s_[1] | s_[2] | s_[3]);
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  HN_CHECK(lo <= hi);
  return lo + static_cast<std::int64_t>(
                  uniform_int(static_cast<std::uint64_t>(hi - lo) + 1));
}

std::uint64_t Rng::geometric(double p) {
  HN_CHECK(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  const double u = uniform();
  return static_cast<std::uint64_t>(std::log1p(-u) / std::log1p(-p));
}

Rng Rng::split() { return Rng(next_u64() ^ 0xd2b74407b1ce6e93ULL); }

}  // namespace hybridnoc
