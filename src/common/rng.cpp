#include "common/rng.hpp"

#include <cmath>

namespace hybridnoc {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // All-zero state is the one invalid state for xoshiro; splitmix64 cannot
  // produce four zeros from any seed, but keep the guard explicit.
  HN_CHECK(s_[0] | s_[1] | s_[2] | s_[3]);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  HN_CHECK(n > 0);
  const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  HN_CHECK(lo <= hi);
  return lo + static_cast<std::int64_t>(
                  uniform_int(static_cast<std::uint64_t>(hi - lo) + 1));
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::uint64_t Rng::geometric(double p) {
  HN_CHECK(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  const double u = uniform();
  return static_cast<std::uint64_t>(std::log1p(-u) / std::log1p(-p));
}

Rng Rng::split() { return Rng(next_u64() ^ 0xd2b74407b1ce6e93ULL); }

}  // namespace hybridnoc
