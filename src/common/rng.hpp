// Deterministic pseudo-random number generation for the simulator.
//
// All stochastic behaviour (traffic destinations, injection processes,
// benchmark models) draws from explicitly seeded Rng instances so that every
// experiment is bit-reproducible. xoshiro256** is used for its speed and
// statistical quality; seeding goes through splitmix64 as recommended by the
// generator's authors.
#pragma once

#include <cstdint>

#include "common/assert.hpp"

namespace hybridnoc {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) { reseed(seed); }

  void reseed(std::uint64_t seed);

  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling to
  /// avoid modulo bias.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  bool bernoulli(double p);

  /// Geometric number of failures before a success; mean = (1-p)/p.
  /// Used for inter-event gaps in the workload models.
  std::uint64_t geometric(double p);

  /// Derive an independent stream (e.g. one per network node).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace hybridnoc
