// Deterministic pseudo-random number generation for the simulator.
//
// All stochastic behaviour (traffic destinations, injection processes,
// benchmark models) draws from explicitly seeded Rng instances so that every
// experiment is bit-reproducible. xoshiro256** is used for its speed and
// statistical quality; seeding goes through splitmix64 as recommended by the
// generator's authors.
#pragma once

#include <array>
#include <cstdint>

#include "common/assert.hpp"

namespace hybridnoc {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) { reseed(seed); }

  void reseed(std::uint64_t seed);

  // The raw generator and the uniform draws are defined inline: they sit on
  // the per-injection hot path of every simulation loop, and a cross-TU call
  // per 64-bit draw is measurable there.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() {
    // 53 high-quality bits -> double in [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling to
  /// avoid modulo bias.
  std::uint64_t uniform_int(std::uint64_t n) {
    HN_CHECK(n > 0);
    const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Geometric number of failures before a success; mean = (1-p)/p.
  /// Used for inter-event gaps in the workload models.
  std::uint64_t geometric(double p);

  /// Derive an independent stream (e.g. one per network node).
  Rng split();

  /// Raw generator state, for checkpoint/restore: restoring a saved state
  /// continues the exact draw sequence bit-for-bit.
  std::array<std::uint64_t, 4> state() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    HN_CHECK_MSG(s[0] | s[1] | s[2] | s[3], "all-zero rng state");
    for (int i = 0; i < 4; ++i) s_[i] = s[static_cast<size_t>(i)];
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace hybridnoc
