#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"

namespace hybridnoc {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  HN_CHECK(!headers_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  HN_CHECK_MSG(cells.size() == headers_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return os.str();
}

void TextTable::print(std::ostream& os) const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto line = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << cells[c];
    }
    os << '\n';
  };
  line(headers_);
  std::string rule;
  for (size_t c = 0; c < headers_.size(); ++c)
    rule += std::string(width[c], '-') + "  ";
  os << rule << '\n';
  for (const auto& row : rows_) line(row);
}

void TextTable::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

void print_banner(std::ostream& os, const std::string& title,
                  const std::string& subtitle) {
  os << "\n== " << title << " ==\n";
  if (!subtitle.empty()) os << subtitle << '\n';
}

}  // namespace hybridnoc
