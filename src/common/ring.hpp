// Contiguous-storage replacements for the node-based containers on the
// loaded path: a growable ring deque (channel queues, router VC FIFOs, NI
// injection queues) and a sorted cycle-keyed event queue (NI CS plans and
// deferred-config timing wheels).
//
// Both grow by doubling and never shrink, so after a warmup high-water mark
// steady-state traffic moves flits without touching the heap at all — the
// property the zero-allocation perf test pins down. Neither container is
// thread-safe; each instance is owned by exactly one shard, like the deques
// and maps they replace.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace hybridnoc {

/// Fixed-capacity-at-steady-state ring buffer with deque semantics
/// (push/pop at both ends, indexed access, forward iteration from front).
/// Capacity is always a power of two; elements live in a plain vector and
/// are moved (not reconstructed) on push/pop, so a popped slot of a
/// refcounting type drops its reference immediately.
template <typename T>
class RingDeque {
 public:
  RingDeque() = default;

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  T& front() {
    HN_CHECK_MSG(count_ > 0, "RingDeque::front on empty ring");
    return buf_[head_];
  }
  const T& front() const {
    HN_CHECK_MSG(count_ > 0, "RingDeque::front on empty ring");
    return buf_[head_];
  }
  T& back() {
    HN_CHECK_MSG(count_ > 0, "RingDeque::back on empty ring");
    return buf_[(head_ + count_ - 1) & mask_];
  }
  const T& back() const {
    HN_CHECK_MSG(count_ > 0, "RingDeque::back on empty ring");
    return buf_[(head_ + count_ - 1) & mask_];
  }

  /// i-th element from the front.
  T& operator[](std::size_t i) {
    HN_CHECK_MSG(i < count_, "RingDeque index out of range");
    return buf_[(head_ + i) & mask_];
  }
  const T& operator[](std::size_t i) const {
    HN_CHECK_MSG(i < count_, "RingDeque index out of range");
    return buf_[(head_ + i) & mask_];
  }

  void push_back(T v) {
    if (count_ == buf_.size()) grow();
    buf_[(head_ + count_) & mask_] = std::move(v);
    ++count_;
  }

  void push_front(T v) {
    if (count_ == buf_.size()) grow();
    head_ = (head_ + buf_.size() - 1) & mask_;
    buf_[head_] = std::move(v);
    ++count_;
  }

  T pop_front() {
    HN_CHECK_MSG(count_ > 0, "RingDeque::pop_front on empty ring");
    T out = std::move(buf_[head_]);
    head_ = (head_ + 1) & mask_;
    --count_;
    return out;
  }

  T pop_back() {
    HN_CHECK_MSG(count_ > 0, "RingDeque::pop_back on empty ring");
    --count_;
    return std::move(buf_[(head_ + count_) & mask_]);
  }

  void clear() {
    // Drop held resources (refcounts) without releasing capacity.
    for (std::size_t i = 0; i < count_; ++i) buf_[(head_ + i) & mask_] = T{};
    head_ = 0;
    count_ = 0;
  }

  /// Storage currently reserved (steady-state high-water mark).
  std::size_t capacity() const { return buf_.size(); }

  /// Forward iterator over [front, back] in queue order. Enough of the
  /// iterator contract for range-for and the watchdog scans.
  class const_iterator {
   public:
    const_iterator(const RingDeque* r, std::size_t i) : r_(r), i_(i) {}
    const T& operator*() const { return (*r_)[i_]; }
    const T* operator->() const { return &(*r_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }

   private:
    const RingDeque* r_;
    std::size_t i_;
  };
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, count_); }

 private:
  void grow() {
    const std::size_t new_cap = buf_.empty() ? kInitialCapacity : buf_.size() * 2;
    std::vector<T> fresh(new_cap);
    for (std::size_t i = 0; i < count_; ++i) fresh[i] = std::move(buf_[(head_ + i) & mask_]);
    buf_ = std::move(fresh);
    head_ = 0;
    mask_ = buf_.size() - 1;
  }

  static constexpr std::size_t kInitialCapacity = 8;

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t mask_ = 0;
};

/// Sorted cycle-keyed event queue over contiguous storage: the flat
/// replacement for the NI's `std::map<Cycle, V>` / `std::multimap<Cycle, V>`
/// hot-path schedules. Iteration order is bit-compatible with the node-based
/// originals — ascending by cycle, insertion order among equal cycles
/// (inserts go at the upper bound, exactly where multimap::emplace lands) —
/// which the scheduler-/thread-equivalence suites depend on.
///
/// Entries are almost always consumed from the front (the next due cycle)
/// and inserted near the back (a future cycle), so the vector behaves like a
/// ring: pops advance a head index without moving elements, and the dead
/// prefix is recycled in O(size) only once it exceeds half the storage.
template <typename V>
class CycleMap {
 public:
  using Entry = std::pair<Cycle, V>;
  using iterator = typename std::vector<Entry>::iterator;
  using const_iterator = typename std::vector<Entry>::const_iterator;

  bool empty() const { return head_ == v_.size(); }
  std::size_t size() const { return v_.size() - head_; }

  iterator begin() { return v_.begin() + static_cast<std::ptrdiff_t>(head_); }
  iterator end() { return v_.end(); }
  const_iterator begin() const { return v_.begin() + static_cast<std::ptrdiff_t>(head_); }
  const_iterator end() const { return v_.end(); }

  Entry& front() {
    HN_CHECK_MSG(!empty(), "CycleMap::front on empty map");
    return v_[head_];
  }
  const Entry& front() const {
    HN_CHECK_MSG(!empty(), "CycleMap::front on empty map");
    return v_[head_];
  }

  /// Multimap-style insert: lands after any existing entries at `at`.
  void emplace(Cycle at, V value) {
    iterator it = std::upper_bound(begin(), end(), at, CmpCycleFirst{});
    v_.insert(it, Entry{at, std::move(value)});
  }

  /// Map-style insert: the caller guarantees `at` is not already present
  /// (the CS plan holds at most one flit per injection cycle).
  void emplace_unique(Cycle at, V value) {
    HN_CHECK_MSG(find(at) == end(), "CycleMap::emplace_unique on occupied cycle");
    emplace(at, std::move(value));
  }

  /// First entry at exactly `at`, or end().
  iterator find(Cycle at) {
    iterator it = std::lower_bound(begin(), end(), at, CmpFirstCycle{});
    return (it != end() && it->first == at) ? it : end();
  }
  const_iterator find(Cycle at) const {
    const_iterator it = std::lower_bound(begin(), end(), at, CmpFirstCycle{});
    return (it != end() && it->first == at) ? it : end();
  }

  bool contains(Cycle at) const { return find(at) != end(); }

  void pop_front() {
    HN_CHECK_MSG(!empty(), "CycleMap::pop_front on empty map");
    v_[head_] = Entry{};  // release held resources now, not at compaction
    ++head_;
    maybe_compact();
  }

  iterator erase(iterator it) {
    if (it == begin()) {
      pop_front();
      return begin();
    }
    return v_.erase(it);
  }

  /// Removes every entry matching `pred(cycle, value)`; returns the count.
  template <typename Pred>
  std::size_t erase_if(Pred pred) {
    iterator first = begin();
    iterator kept = std::remove_if(
        first, end(), [&](const Entry& e) { return pred(e.first, e.second); });
    const std::size_t n = static_cast<std::size_t>(end() - kept);
    v_.erase(kept, v_.end());
    return n;
  }

  void clear() {
    v_.clear();
    head_ = 0;
  }

 private:
  struct CmpCycleFirst {
    bool operator()(Cycle c, const Entry& e) const { return c < e.first; }
  };
  struct CmpFirstCycle {
    bool operator()(const Entry& e, Cycle c) const { return e.first < c; }
  };

  void maybe_compact() {
    if (head_ == v_.size()) {
      v_.clear();
      head_ = 0;
    } else if (head_ >= kCompactThreshold && head_ * 2 >= v_.size()) {
      v_.erase(v_.begin(), v_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  static constexpr std::size_t kCompactThreshold = 64;

  std::vector<Entry> v_;
  std::size_t head_ = 0;
};

}  // namespace hybridnoc
