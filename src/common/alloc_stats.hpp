// Process-wide allocation / packet-lifetime telemetry. The counters make the
// "allocation-free, refcount-free" property of the loaded path measurable:
// tools/profile_tick surfaces them per run and the steady-state
// zero-allocation test asserts the heap side directly.
//
// All counters are relaxed atomics — they are statistics, not
// synchronization, and every writer is already ordered by the structures it
// touches (the pool mutex, the shard barriers).
#pragma once

#include <atomic>
#include <cstdint>

namespace hybridnoc {

struct AllocStats {
  /// Packets minted through make_packet (injection, clones, acks).
  std::atomic<std::uint64_t> packets_minted{0};
  /// Pooled allocations served from a free list vs falling through to
  /// operator new (misses include first-touch warmup and >1 KiB blocks).
  std::atomic<std::uint64_t> pool_hits{0};
  std::atomic<std::uint64_t> pool_misses{0};
  /// Packet flight-anchor acquire/release pairs: the total shared_ptr
  /// refcount traffic of the flit path, now two ops per packet instead of
  /// two per flit copy.
  std::atomic<std::uint64_t> flight_acquires{0};
  std::atomic<std::uint64_t> flight_releases{0};

  static AllocStats& instance() {
    static AllocStats s;
    return s;
  }

  struct Snapshot {
    std::uint64_t packets_minted = 0;
    std::uint64_t pool_hits = 0;
    std::uint64_t pool_misses = 0;
    std::uint64_t flight_acquires = 0;
    std::uint64_t flight_releases = 0;
  };

  Snapshot snapshot() const {
    Snapshot s;
    s.packets_minted = packets_minted.load(std::memory_order_relaxed);
    s.pool_hits = pool_hits.load(std::memory_order_relaxed);
    s.pool_misses = pool_misses.load(std::memory_order_relaxed);
    s.flight_acquires = flight_acquires.load(std::memory_order_relaxed);
    s.flight_releases = flight_releases.load(std::memory_order_relaxed);
    return s;
  }

  void bump(std::atomic<std::uint64_t>& c) { c.fetch_add(1, std::memory_order_relaxed); }
};

inline void alloc_stats_bump(std::atomic<std::uint64_t>& c) {
  c.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace hybridnoc
