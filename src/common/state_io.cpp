#include "common/state_io.hpp"

#include "common/fileio.hpp"

namespace hybridnoc {

namespace {

constexpr char kMagic[8] = {'H', 'N', 'S', 'T', 'A', 'T', 'E', '\n'};
constexpr std::uint32_t kVersion = 1;

void append_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t read_u32_at(const std::string& s, std::size_t pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(s[pos + i])) << (8 * i);
  }
  return v;
}

std::uint64_t read_u64_at(const std::string& s, std::size_t pos) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(s[pos + i])) << (8 * i);
  }
  return v;
}

}  // namespace

void StateWriter::section(const char* name) {
  const std::string tag(name);
  u32(0x53454354u);  // 'SECT'
  str(tag);
}

void StateWriter::u32(std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  raw(buf, 4);
}

void StateWriter::u64(std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  raw(buf, 8);
}

void StateWriter::str(const std::string& s) {
  u64(s.size());
  raw(s.data(), s.size());
}

std::string StateWriter::seal() const {
  std::string out;
  out.reserve(payload_.size() + 32);
  out.append(kMagic, sizeof(kMagic));
  append_u32(out, kVersion);
  append_u64(out, payload_.size());
  out += payload_;
  append_u64(out, fnv1a64(payload_.data(), payload_.size()));
  return out;
}

StateReader::StateReader(const std::string& sealed) {
  constexpr std::size_t kHeader = sizeof(kMagic) + 4 + 8;
  if (sealed.size() < kHeader + 8) throw StateError("state archive truncated");
  if (std::memcmp(sealed.data(), kMagic, sizeof(kMagic)) != 0) {
    throw StateError("state archive bad magic");
  }
  const std::uint32_t version = read_u32_at(sealed, sizeof(kMagic));
  if (version != kVersion) {
    throw StateError("state archive version mismatch (have " +
                     std::to_string(version) + ", want " +
                     std::to_string(kVersion) + ")");
  }
  const std::uint64_t size = read_u64_at(sealed, sizeof(kMagic) + 4);
  if (sealed.size() != kHeader + size + 8) {
    throw StateError("state archive size mismatch");
  }
  const std::uint64_t want = read_u64_at(sealed, kHeader + size);
  const std::uint64_t have = fnv1a64(sealed.data() + kHeader, size);
  if (want != have) throw StateError("state archive digest mismatch");
  payload_.assign(sealed, kHeader, size);
}

const void* StateReader::take(std::size_t len) {
  if (pos_ + len > payload_.size()) throw StateError("state archive underrun");
  const void* p = payload_.data() + pos_;
  pos_ += len;
  return p;
}

void StateReader::section(const char* name) {
  const std::uint32_t tag = u32();
  if (tag != 0x53454354u) {
    throw StateError(std::string("expected section marker before '") + name + "'");
  }
  const std::string have = str();
  if (have != name) {
    throw StateError("section mismatch: expected '" + std::string(name) +
                     "', found '" + have + "'");
  }
}

std::uint8_t StateReader::u8() {
  return *static_cast<const std::uint8_t*>(take(1));
}

std::uint32_t StateReader::u32() {
  const auto* p = static_cast<const unsigned char*>(take(4));
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t StateReader::u64() {
  const auto* p = static_cast<const unsigned char*>(take(8));
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::string StateReader::str() {
  const std::uint64_t n = u64();
  if (n > payload_.size() - pos_) throw StateError("string length overruns archive");
  const char* p = static_cast<const char*>(take(static_cast<std::size_t>(n)));
  return std::string(p, static_cast<std::size_t>(n));
}

void StateReader::finish() const {
  if (pos_ != payload_.size()) throw StateError("trailing bytes in state archive");
}

}  // namespace hybridnoc
