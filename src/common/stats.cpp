#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace hybridnoc {

void StatAccumulator::add(double v) {
  ++count_;
  const double delta = v - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (v - mean_);
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

void StatAccumulator::merge(const StatAccumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void StatAccumulator::reset() { *this = StatAccumulator(); }

double StatAccumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StatAccumulator::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double bucket_width, int num_buckets)
    : bucket_width_(bucket_width), buckets_(static_cast<size_t>(num_buckets), 0) {
  HN_CHECK(bucket_width > 0.0 && num_buckets > 0);
}

void Histogram::add(double v) {
  ++total_;
  if (v < 0.0) v = 0.0;
  max_seen_ = std::max(max_seen_, v);
  const auto idx = static_cast<size_t>(v / bucket_width_);
  if (idx >= buckets_.size()) {
    ++overflow_;
  } else {
    ++buckets_[idx];
  }
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  overflow_ = 0;
  total_ = 0;
  max_seen_ = 0.0;
}

double Histogram::quantile(double q) const {
  HN_CHECK(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return 0.0;
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const double next = cum + static_cast<double>(buckets_[i]);
    if (next >= target && buckets_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(buckets_[i]);
      return (static_cast<double>(i) + frac) * bucket_width_;
    }
    cum = next;
  }
  // The target mass falls in the overflow bucket: report the largest sample
  // actually recorded instead of silently clamping to the finite range's top
  // edge (which would understate tail quantiles arbitrarily).
  return max_seen_;
}

}  // namespace hybridnoc
