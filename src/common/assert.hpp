// Lightweight always-on invariant checks for the simulator.
//
// Simulation bugs (mis-routed flits, credit underflow, slot-table corruption)
// silently skew results if allowed to proceed, so HN_CHECK stays active in
// release builds. The cost is a predictable branch per check and is invisible
// next to the per-cycle work of the simulator.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace hybridnoc {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "HN_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace hybridnoc

#define HN_CHECK(expr)                                                      \
  do {                                                                      \
    if (!(expr)) ::hybridnoc::check_failed(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define HN_CHECK_MSG(expr, msg)                                          \
  do {                                                                   \
    if (!(expr)) ::hybridnoc::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)
