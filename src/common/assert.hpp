// Lightweight always-on invariant checks for the simulator.
//
// Simulation bugs (mis-routed flits, credit underflow, slot-table corruption)
// silently skew results if allowed to proceed, so HN_CHECK stays active in
// release builds. The cost is a predictable branch per check and is invisible
// next to the per-cycle work of the simulator.
//
// By default a failed check aborts. Front ends that validate *external input*
// (trace files, workload descriptors, sweep specs) can instead arm the
// thread-local throw mode with ScopedCheckThrows: inside its scope a failed
// check raises CheckFailure, which the caller converts into a structured
// error message and a nonzero exit instead of a crash. Only parsing/
// validation code may run under the throw mode — simulation state is not
// exception-safe across a failed invariant.
#pragma once

#include <stdexcept>
#include <string>

namespace hybridnoc {

/// Raised by HN_CHECK under ScopedCheckThrows instead of aborting.
struct CheckFailure : std::runtime_error {
  explicit CheckFailure(const std::string& what) : std::runtime_error(what) {}
};

/// Arms throw-on-check-failure for the current thread for its lifetime.
/// Nests safely (the previous mode is restored on destruction).
class ScopedCheckThrows {
 public:
  ScopedCheckThrows();
  ~ScopedCheckThrows();
  ScopedCheckThrows(const ScopedCheckThrows&) = delete;
  ScopedCheckThrows& operator=(const ScopedCheckThrows&) = delete;

 private:
  bool previous_;
};

/// Aborts, or throws CheckFailure when the calling thread is inside a
/// ScopedCheckThrows scope. Never returns normally either way.
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const char* msg);

}  // namespace hybridnoc

#define HN_CHECK(expr)                                                      \
  do {                                                                      \
    if (!(expr)) ::hybridnoc::check_failed(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define HN_CHECK_MSG(expr, msg)                                          \
  do {                                                                   \
    if (!(expr)) ::hybridnoc::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)
