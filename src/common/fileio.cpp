#include "common/fileio.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace hybridnoc {

namespace {

int current_pid() {
#ifdef _WIN32
  return _getpid();
#else
  return static_cast<int>(::getpid());
#endif
}

void set_error(std::string* error, const std::string& what) {
  if (error) *error = what;
}

}  // namespace

bool write_file_atomic(const std::string& path, const std::string& content,
                       std::string* error) {
  const std::string tmp = path + ".tmp." + std::to_string(current_pid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      set_error(error, "cannot open temp file " + tmp + ": " +
                           std::strerror(errno));
      return false;
    }
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) {
      set_error(error, "write to temp file " + tmp + " failed");
      std::remove(tmp.c_str());
      return false;
    }
  }
#ifndef _WIN32
  // Flush file data to disk before the rename publishes it, so a crash after
  // rename cannot surface a published-but-empty file.
  if (FILE* f = std::fopen(tmp.c_str(), "rb")) {
    ::fsync(fileno(f));
    std::fclose(f);
  }
#endif
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    set_error(error, "rename " + tmp + " -> " + path + " failed: " +
                         std::strerror(errno));
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool read_file(const std::string& path, std::string* content,
               std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    set_error(error, "cannot open " + path);
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    set_error(error, "read error on " + path);
    return false;
  }
  *content = buf.str();
  return true;
}

std::uint64_t fnv1a64(const void* data, std::size_t len, std::uint64_t seed) {
  std::uint64_t h = seed;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t fnv1a64(const std::string& s) {
  return fnv1a64(s.data(), s.size());
}

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

bool parse_hex64(const std::string& s, std::uint64_t* out) {
  if (s.size() != 16) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    int d;
    if (c >= '0' && c <= '9') {
      d = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      d = c - 'a' + 10;
    } else {
      return false;
    }
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  *out = v;
  return true;
}

}  // namespace hybridnoc
