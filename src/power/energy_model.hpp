// Event-based NoC energy model in the spirit of Orion 2.0 (Kahng et al.,
// DATE'09), with constants calibrated for 45 nm / 1.0 V / 1.5 GHz so that the
// *component shares* match the breakdowns the paper reports (input buffers
// dominate router energy; circuit-switching hardware costs <1 % dynamic and
// ~2 % static). Absolute joules are representative, not signed off against
// RTL — every result in the paper (and in our benches) is a ratio against the
// Packet-VC4 baseline, which this model preserves.
//
// Usage: routers/links bump counters in an EnergyCounters instance as events
// occur; leakage is accumulated as time-integrals of "active component"
// counts (active VC buffers, active slot-table entries). At the end of a run
// compute_breakdown() turns counters into per-component dynamic/static energy.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace hybridnoc {

/// Component categories matching Figure 9's breakdown bars.
enum class EnergyComponent : int {
  Buffer = 0,    ///< input-buffer read/write + buffer leakage
  CsComponent,   ///< slot tables, DLT, CS latches/demux (all CS hardware)
  Crossbar,
  Arbiter,       ///< VC + switch allocators
  Clock,
  Link,
  Count,
};

constexpr int kNumEnergyComponents = static_cast<int>(EnergyComponent::Count);

const char* energy_component_name(EnergyComponent c);

/// Per-event dynamic energies (pJ) and per-cycle leakage (pJ/cycle).
struct EnergyParams {
  // --- dynamic, pJ per event ---
  double buffer_write = 5.0;      ///< one 16-byte flit into a VC FIFO
  double buffer_read = 4.6;
  double xbar_traversal = 6.1;    ///< 5x5 matrix crossbar, 128-bit
  double vc_arb = 0.35;           ///< one VC-allocation grant
  double sw_arb = 0.45;           ///< one switch-allocation grant
  double link_flit = 5.4;         ///< one flit across one 1 mm inter-tile link
  /// One slot-row lookup (20 bits across all ports — the row is latched a
  /// cycle ahead, so this is a narrow SRAM read, not a full-table access).
  double slot_table_read = 0.04;
  double slot_table_write = 0.45; ///< one reservation / invalidation
  double dlt_access = 0.18;
  double cs_latch = 0.22;         ///< CS latch + demux per circuit flit
  double clock_router_base = 1.2; ///< clock tree trunk, per router per cycle
  double clock_per_active_vc = 0.16;  ///< clocked FIFO overhead per active VC

  // --- leakage, pJ per cycle ---
  double leak_per_vc_buffer = 0.50;  ///< one 5x128b VC FIFO
  double leak_xbar = 1.05;
  double leak_arbiters = 0.24;
  double leak_slot_entry = 0.0040;   ///< per powered slot-table entry (row)
  double leak_dlt = 0.10;            ///< whole 8-entry DLT
  double leak_cs_misc = 0.12;        ///< CS latches + demux
  double leak_link = 0.85;           ///< per unidirectional link

  /// The calibrated 45 nm parameter set used throughout the evaluation.
  static EnergyParams nangate45() { return {}; }
};

/// Raw event counts and activity integrals for one router (or one network —
/// counters merge additively).
struct EnergyCounters {
  std::uint64_t buffer_writes = 0;
  std::uint64_t buffer_reads = 0;
  std::uint64_t xbar_flits = 0;
  std::uint64_t vc_arbs = 0;
  std::uint64_t sw_arbs = 0;
  std::uint64_t link_flits = 0;
  std::uint64_t slot_table_reads = 0;
  std::uint64_t slot_table_writes = 0;
  std::uint64_t dlt_accesses = 0;
  std::uint64_t cs_latch_flits = 0;

  std::uint64_t cycles = 0;  ///< simulated cycles for this counter scope
  /// Time-integral of powered VC buffers (sum over cycles of the number of
  /// non-gated VCs across all ports).
  std::uint64_t vc_active_cycles = 0;
  /// Time-integral of powered slot-table entries.
  std::uint64_t slot_entry_active_cycles = 0;
  std::uint64_t dlt_active_cycles = 0;      ///< cycles a DLT is powered
  std::uint64_t cs_misc_active_cycles = 0;  ///< cycles CS latches are powered
  std::uint64_t link_active_cycles = 0;     ///< links x cycles

  EnergyCounters& operator+=(const EnergyCounters& o);
  /// Field-wise difference (for measurement windows: end - start). Every
  /// counter is monotone, so the subtraction never underflows.
  EnergyCounters& operator-=(const EnergyCounters& o);
  friend EnergyCounters operator-(EnergyCounters a, const EnergyCounters& b) {
    a -= b;
    return a;
  }
};

class StateWriter;
class StateReader;

/// Checkpoint helpers: every EnergyCounters field, in declaration order.
void save_state(StateWriter& w, const EnergyCounters& c);
void restore_state(StateReader& r, EnergyCounters& c);

/// Per-component dynamic and static energy in pJ.
struct EnergyBreakdown {
  std::array<double, kNumEnergyComponents> dynamic_pj{};
  std::array<double, kNumEnergyComponents> static_pj{};

  double dynamic(EnergyComponent c) const { return dynamic_pj[static_cast<int>(c)]; }
  double leakage(EnergyComponent c) const { return static_pj[static_cast<int>(c)]; }
  double total_dynamic() const;
  double total_static() const;
  double total() const { return total_dynamic() + total_static(); }

  EnergyBreakdown& operator+=(const EnergyBreakdown& o);
};

EnergyBreakdown compute_breakdown(const EnergyCounters& c, const EnergyParams& p);

}  // namespace hybridnoc
