#include "power/area_model.hpp"

#include "common/types.hpp"

namespace hybridnoc {
namespace {

// Calibrated 45 nm unit areas. With the Table-I configuration (5 ports,
// 4 VCs x 5 flits x 128 bits, 128-entry slot tables) these produce
// 0.177 mm^2 for the packet-switched router and 0.188 mm^2 for the hybrid
// router — the paper's synthesis results.
constexpr double kMm2PerBufferBit = 4.70e-6;     // register-file buffer cell
constexpr double kMm2PerXbarBitPort2 = 2.50e-5;  // matrix crossbar, per bit x port^2
constexpr double kMm2PerArbReq = 2.4e-4;         // per requestor of an arbiter
constexpr double kMiscBase = 0.0248;             // clock spine, control, output regs
constexpr double kMm2PerSlotBit = 3.55e-6;       // slot-table SRAM (denser than FIFOs)
constexpr double kMm2PerLatchBit = 2.90e-6;      // CS pipeline latch + demux per bit

}  // namespace

RouterAreaBreakdown router_area(const NocConfig& cfg) {
  RouterAreaBreakdown a;
  const int flit_bits = cfg.channel_bytes * 8;
  const int ports = kNumPorts;

  const double buffer_bits =
      static_cast<double>(ports * cfg.num_vcs * cfg.vc_buffer_depth * flit_bits);
  a.buffers_mm2 = buffer_bits * kMm2PerBufferBit;

  a.crossbar_mm2 =
      static_cast<double>(flit_bits) * ports * ports * kMm2PerXbarBitPort2;

  // Separable VC allocator (ports*vcs requestors, input and output stages) +
  // switch allocator (ports in, ports out), modelled linearly in requestors.
  const double vc_alloc = static_cast<double>(ports * cfg.num_vcs * 2) * kMm2PerArbReq;
  const double sw_alloc = static_cast<double>(ports * 2) * kMm2PerArbReq;
  a.allocators_mm2 = vc_alloc + sw_alloc;

  a.misc_mm2 = kMiscBase;

  if (cfg.arch == RouterArch::HybridTdm) {
    // Each slot-table entry holds, per input port, a valid bit plus
    // ceil(log2 ports) = 3 output-port bits.
    const double entry_bits = static_cast<double>(ports) * (1.0 + 3.0);
    a.slot_table_mm2 = cfg.slot_table_size * entry_bits * kMm2PerSlotBit;
    a.cs_latch_mm2 = static_cast<double>(ports * flit_bits) * kMm2PerLatchBit;
    if (cfg.hitchhiker_sharing || cfg.vicinity_sharing) {
      // DLT entry: destination id (2*ceil(log2 k)) + slot id (log2 S) +
      // 2-bit saturating counter (Section III-A1; "<16 bytes" total).
      const double dlt_bits =
          cfg.dlt_entries * (2.0 * 3.0 + 7.0 + 2.0);
      a.dlt_mm2 = dlt_bits * kMm2PerBufferBit;
    }
  }
  return a;
}

}  // namespace hybridnoc
