// Analytic router area model (45 nm, Nangate-class standard cells), replacing
// the paper's RTL synthesis flow. Component areas scale with their natural
// size parameters (storage bits, crossbar ports x width) and the constants
// are calibrated so the Table-I configuration reproduces the paper's numbers:
// packet-switched router 0.177 mm^2, hybrid-switched router 0.188 mm^2
// (6.2 % overhead).
#pragma once

#include "common/config.hpp"

namespace hybridnoc {

struct RouterAreaBreakdown {
  double buffers_mm2 = 0.0;
  double crossbar_mm2 = 0.0;
  double allocators_mm2 = 0.0;
  double misc_mm2 = 0.0;        ///< clocking, control, output latches
  double slot_table_mm2 = 0.0;  ///< hybrid only
  double cs_latch_mm2 = 0.0;    ///< hybrid only: CS latches + demux
  double dlt_mm2 = 0.0;         ///< hybrid only, when path sharing enabled

  double total() const {
    return buffers_mm2 + crossbar_mm2 + allocators_mm2 + misc_mm2 +
           slot_table_mm2 + cs_latch_mm2 + dlt_mm2;
  }
  double cs_overhead() const { return slot_table_mm2 + cs_latch_mm2 + dlt_mm2; }
};

/// Area of one router under `cfg`. Hybrid components are included only when
/// cfg.arch == RouterArch::HybridTdm.
RouterAreaBreakdown router_area(const NocConfig& cfg);

}  // namespace hybridnoc
