#include "power/energy_model.hpp"

#include "common/assert.hpp"
#include "common/state_io.hpp"

namespace hybridnoc {

const char* energy_component_name(EnergyComponent c) {
  switch (c) {
    case EnergyComponent::Buffer: return "buffer";
    case EnergyComponent::CsComponent: return "cs-component";
    case EnergyComponent::Crossbar: return "crossbar";
    case EnergyComponent::Arbiter: return "arbiter";
    case EnergyComponent::Clock: return "clock";
    case EnergyComponent::Link: return "link";
    case EnergyComponent::Count: break;
  }
  return "?";
}

EnergyCounters& EnergyCounters::operator+=(const EnergyCounters& o) {
  buffer_writes += o.buffer_writes;
  buffer_reads += o.buffer_reads;
  xbar_flits += o.xbar_flits;
  vc_arbs += o.vc_arbs;
  sw_arbs += o.sw_arbs;
  link_flits += o.link_flits;
  slot_table_reads += o.slot_table_reads;
  slot_table_writes += o.slot_table_writes;
  dlt_accesses += o.dlt_accesses;
  cs_latch_flits += o.cs_latch_flits;
  cycles += o.cycles;
  vc_active_cycles += o.vc_active_cycles;
  slot_entry_active_cycles += o.slot_entry_active_cycles;
  dlt_active_cycles += o.dlt_active_cycles;
  cs_misc_active_cycles += o.cs_misc_active_cycles;
  link_active_cycles += o.link_active_cycles;
  return *this;
}

void save_state(StateWriter& w, const EnergyCounters& c) {
  w.section("energy");
  w.u64(c.buffer_writes);
  w.u64(c.buffer_reads);
  w.u64(c.xbar_flits);
  w.u64(c.vc_arbs);
  w.u64(c.sw_arbs);
  w.u64(c.link_flits);
  w.u64(c.slot_table_reads);
  w.u64(c.slot_table_writes);
  w.u64(c.dlt_accesses);
  w.u64(c.cs_latch_flits);
  w.u64(c.cycles);
  w.u64(c.vc_active_cycles);
  w.u64(c.slot_entry_active_cycles);
  w.u64(c.dlt_active_cycles);
  w.u64(c.cs_misc_active_cycles);
  w.u64(c.link_active_cycles);
}

void restore_state(StateReader& r, EnergyCounters& c) {
  r.section("energy");
  c.buffer_writes = r.u64();
  c.buffer_reads = r.u64();
  c.xbar_flits = r.u64();
  c.vc_arbs = r.u64();
  c.sw_arbs = r.u64();
  c.link_flits = r.u64();
  c.slot_table_reads = r.u64();
  c.slot_table_writes = r.u64();
  c.dlt_accesses = r.u64();
  c.cs_latch_flits = r.u64();
  c.cycles = r.u64();
  c.vc_active_cycles = r.u64();
  c.slot_entry_active_cycles = r.u64();
  c.dlt_active_cycles = r.u64();
  c.cs_misc_active_cycles = r.u64();
  c.link_active_cycles = r.u64();
}

EnergyCounters& EnergyCounters::operator-=(const EnergyCounters& o) {
  auto sub = [](std::uint64_t& a, std::uint64_t b) {
    HN_CHECK_MSG(a >= b, "counter window underflow");
    a -= b;
  };
  sub(buffer_writes, o.buffer_writes);
  sub(buffer_reads, o.buffer_reads);
  sub(xbar_flits, o.xbar_flits);
  sub(vc_arbs, o.vc_arbs);
  sub(sw_arbs, o.sw_arbs);
  sub(link_flits, o.link_flits);
  sub(slot_table_reads, o.slot_table_reads);
  sub(slot_table_writes, o.slot_table_writes);
  sub(dlt_accesses, o.dlt_accesses);
  sub(cs_latch_flits, o.cs_latch_flits);
  sub(cycles, o.cycles);
  sub(vc_active_cycles, o.vc_active_cycles);
  sub(slot_entry_active_cycles, o.slot_entry_active_cycles);
  sub(dlt_active_cycles, o.dlt_active_cycles);
  sub(cs_misc_active_cycles, o.cs_misc_active_cycles);
  sub(link_active_cycles, o.link_active_cycles);
  return *this;
}

double EnergyBreakdown::total_dynamic() const {
  double t = 0.0;
  for (double v : dynamic_pj) t += v;
  return t;
}

double EnergyBreakdown::total_static() const {
  double t = 0.0;
  for (double v : static_pj) t += v;
  return t;
}

EnergyBreakdown& EnergyBreakdown::operator+=(const EnergyBreakdown& o) {
  for (int i = 0; i < kNumEnergyComponents; ++i) {
    dynamic_pj[static_cast<size_t>(i)] += o.dynamic_pj[static_cast<size_t>(i)];
    static_pj[static_cast<size_t>(i)] += o.static_pj[static_cast<size_t>(i)];
  }
  return *this;
}

EnergyBreakdown compute_breakdown(const EnergyCounters& c, const EnergyParams& p) {
  EnergyBreakdown b;
  auto dyn = [&](EnergyComponent comp) -> double& {
    return b.dynamic_pj[static_cast<size_t>(static_cast<int>(comp))];
  };
  auto stat = [&](EnergyComponent comp) -> double& {
    return b.static_pj[static_cast<size_t>(static_cast<int>(comp))];
  };
  const auto f = [](std::uint64_t n) { return static_cast<double>(n); };

  dyn(EnergyComponent::Buffer) =
      f(c.buffer_writes) * p.buffer_write + f(c.buffer_reads) * p.buffer_read;
  dyn(EnergyComponent::CsComponent) = f(c.slot_table_reads) * p.slot_table_read +
                                      f(c.slot_table_writes) * p.slot_table_write +
                                      f(c.dlt_accesses) * p.dlt_access +
                                      f(c.cs_latch_flits) * p.cs_latch;
  dyn(EnergyComponent::Crossbar) = f(c.xbar_flits) * p.xbar_traversal;
  dyn(EnergyComponent::Arbiter) = f(c.vc_arbs) * p.vc_arb + f(c.sw_arbs) * p.sw_arb;
  dyn(EnergyComponent::Clock) = f(c.cycles) * p.clock_router_base +
                                f(c.vc_active_cycles) * p.clock_per_active_vc;
  dyn(EnergyComponent::Link) = f(c.link_flits) * p.link_flit;

  stat(EnergyComponent::Buffer) = f(c.vc_active_cycles) * p.leak_per_vc_buffer;
  stat(EnergyComponent::CsComponent) =
      f(c.slot_entry_active_cycles) * p.leak_slot_entry +
      f(c.dlt_active_cycles) * p.leak_dlt +
      f(c.cs_misc_active_cycles) * p.leak_cs_misc;
  stat(EnergyComponent::Crossbar) = f(c.cycles) * p.leak_xbar;
  stat(EnergyComponent::Arbiter) = f(c.cycles) * p.leak_arbiters;
  stat(EnergyComponent::Clock) = 0.0;  // clock energy is all switching
  stat(EnergyComponent::Link) = f(c.link_active_cycles) * p.leak_link;
  return b;
}

}  // namespace hybridnoc
