// Heterogeneous tile floorplan (Figure 7): CPU cores (C), shared L2 banks
// (L2), data-parallel accelerators (A) and memory controllers (M) on a 6x6
// mesh. The DESIGN.md layout keeps the paper's component mix — 8 CPUs,
// 12 L2 banks, 12 accelerators, 4 memory controllers — with memory
// controllers at the corners and L2 banks between producers and consumers.
#pragma once

#include <vector>

#include "common/geometry.hpp"
#include "common/types.hpp"

namespace hybridnoc {

enum class TileType : std::uint8_t { Cpu, L2, Accel, Mem };

const char* tile_type_name(TileType t);

class TileMap {
 public:
  /// The 36-tile layout used throughout Section V.
  static TileMap hetero36();

  TileMap(int k, std::vector<TileType> types);

  int k() const { return k_; }
  int num_tiles() const { return static_cast<int>(types_.size()); }
  TileType type(NodeId n) const { return types_[static_cast<size_t>(n)]; }

  const std::vector<NodeId>& cpus() const { return cpus_; }
  const std::vector<NodeId>& l2_banks() const { return l2s_; }
  const std::vector<NodeId>& accels() const { return accels_; }
  const std::vector<NodeId>& mems() const { return mems_; }

  /// L2 bank owning a cache-line address (static interleave).
  NodeId l2_home(std::uint64_t line_addr) const {
    return l2s_[static_cast<size_t>(line_addr % l2s_.size())];
  }
  /// Memory controller owning a cache-line address.
  NodeId mem_home(std::uint64_t line_addr) const {
    return mems_[static_cast<size_t>(line_addr % mems_.size())];
  }

 private:
  int k_;
  std::vector<TileType> types_;
  std::vector<NodeId> cpus_, l2s_, accels_, mems_;
};

}  // namespace hybridnoc
