// Benchmark parameter registry standing in for SPEC OMP2001 (CPU) and
// GPGPU-Sim/Rodinia (GPU) workloads. The parameters are behavioural
// summaries — miss intensities, memory-level parallelism, compute/memory
// ratio, destination locality — chosen so each benchmark reproduces the
// published network-level signature: GPU injection ratios and
// circuit-switched fractions of Table III, and the CPU's moderate,
// latency-sensitive coherence traffic. See DESIGN.md for the substitution
// rationale.
#pragma once

#include <string>
#include <vector>

namespace hybridnoc {

struct CpuBenchParams {
  std::string name;
  double mpki;           ///< L1 misses per 1000 instructions
  int mlp;               ///< maximum outstanding misses per core
  double ipc_peak;       ///< retire rate when not blocked on the miss window
  double l2_miss_rate;   ///< fraction of L2 accesses that go to memory
  double writeback_rate; ///< writebacks per miss
};

struct GpuBenchParams {
  std::string name;
  /// Mean compute cycles a warp runs between memory requests.
  double compute_cycles;
  /// Fraction of requests hitting the SM's few "home" L2 banks — the
  /// communication-pair concentration that makes circuits worthwhile.
  double locality;
  /// Number of home banks per SM (lower = more concentrated).
  int home_banks;
  /// Fraction of loads that block their warp until the reply returns; the
  /// rest are non-blocking (MSHR-covered streaming accesses) whose replies
  /// only consume bandwidth. Streaming kernels are mostly non-blocking —
  /// that is what lets them tolerate circuit-switching delay.
  double blocking_fraction;
  double l2_miss_rate;
  /// Paper-reported injection ratio (flits/node/cycle, Table III) — used by
  /// the benches to report paper-vs-measured.
  double paper_injection;
  /// Paper-reported circuit-switched flit percentage (Table III).
  double paper_cs_percent;
};

/// The 8 CPU benchmarks of Section V-A1 (SPEC OMP2001).
const std::vector<CpuBenchParams>& cpu_benchmarks();
/// The 7 GPU benchmarks of Section V-A1 (GPGPU-Sim + Rodinia).
const std::vector<GpuBenchParams>& gpu_benchmarks();

const CpuBenchParams& cpu_benchmark(const std::string& name);
const GpuBenchParams& gpu_benchmark(const std::string& name);

}  // namespace hybridnoc
