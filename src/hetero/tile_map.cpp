#include "hetero/tile_map.hpp"

#include "common/assert.hpp"

namespace hybridnoc {

const char* tile_type_name(TileType t) {
  switch (t) {
    case TileType::Cpu: return "C";
    case TileType::L2: return "L2";
    case TileType::Accel: return "A";
    case TileType::Mem: return "M";
  }
  return "?";
}

TileMap::TileMap(int k, std::vector<TileType> types)
    : k_(k), types_(std::move(types)) {
  HN_CHECK(static_cast<int>(types_.size()) == k * k);
  for (NodeId n = 0; n < num_tiles(); ++n) {
    switch (type(n)) {
      case TileType::Cpu: cpus_.push_back(n); break;
      case TileType::L2: l2s_.push_back(n); break;
      case TileType::Accel: accels_.push_back(n); break;
      case TileType::Mem: mems_.push_back(n); break;
    }
  }
  HN_CHECK(!l2s_.empty() && !mems_.empty());
}

TileMap TileMap::hetero36() {
  using T = TileType;
  const T M = T::Mem, C = T::Cpu, L = T::L2, A = T::Accel;
  // Row-major 6x6 floorplan (DESIGN.md):
  //   M C C C C M
  //   C L L L L C
  //   A L A A L A
  //   A L A A L A
  //   C L L L L C
  //   M A A A A M
  std::vector<T> t = {
      M, C, C, C, C, M,  //
      C, L, L, L, L, C,  //
      A, L, A, A, L, A,  //
      A, L, A, A, L, A,  //
      C, L, L, L, L, C,  //
      M, A, A, A, A, M,  //
  };
  return TileMap(6, std::move(t));
}

}  // namespace hybridnoc
