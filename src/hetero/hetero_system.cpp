#include "hetero/hetero_system.hpp"

#include "common/pool.hpp"

namespace hybridnoc {

HeteroSystem::HeteroSystem(const NocConfig& cfg, const WorkloadMix& mix,
                           std::uint64_t seed)
    : cfg_(cfg), mix_(mix), tiles_(TileMap::hetero36()), rng_(seed) {
  HN_CHECK_MSG(cfg.k == tiles_.k(), "hetero system requires a 6x6 mesh");
  net_ = make_network(cfg_);
  net_->set_deliver_handler(
      [this](const PacketPtr& p, Cycle at) { on_deliver(p, at); });

  for (size_t i = 0; i < tiles_.cpus().size(); ++i) {
    const NodeId n = tiles_.cpus()[i];
    core_at_[n] = static_cast<int>(i);
    const int idx = static_cast<int>(i);
    cores_.push_back(std::make_unique<CpuCore>(
        n, mix_.cpu, rng_.split(),
        [this, idx](std::uint64_t addr) { issue_cpu_miss(idx, addr); },
        [this, idx](std::uint64_t addr) { issue_cpu_writeback(idx, addr); }));
  }
  for (size_t i = 0; i < tiles_.accels().size(); ++i) {
    const NodeId n = tiles_.accels()[i];
    sm_at_[n] = static_cast<int>(i);
    const int idx = static_cast<int>(i);
    sms_.push_back(std::make_unique<GpuSm>(
        n, mix_.gpu, idx, rng_.split(),
        [this, idx](int warp, std::uint64_t addr, std::int64_t slack) {
          issue_gpu_request(idx, warp, addr, slack);
        }));
  }
  for (size_t i = 0; i < tiles_.l2_banks().size(); ++i) {
    const NodeId n = tiles_.l2_banks()[i];
    bank_at_[n] = static_cast<int>(i);
    banks_.push_back(std::make_unique<L2Bank>(n));
  }
  for (size_t i = 0; i < tiles_.mems().size(); ++i) {
    const NodeId n = tiles_.mems()[i];
    mem_at_[n] = static_cast<int>(i);
    mems_.push_back(std::make_unique<MemController>(n));
  }
}

void HeteroSystem::send_msg(NodeId src, NodeId dst, int flits, TrafficClass cls,
                            bool cs_eligible, std::int64_t slack,
                            std::uint64_t key) {
  auto p = make_packet();
  p->id = next_pkt_id_++;
  p->src = src;
  p->dst = dst;
  p->num_flits = flits;
  p->traffic_class = cls;
  p->cs_eligible = cs_eligible;
  p->slack = slack;
  p->payload = key;
  net_->send(std::move(p));
}

void HeteroSystem::issue_cpu_miss(int core_index, std::uint64_t addr) {
  const NodeId requester = cores_[static_cast<size_t>(core_index)]->node();
  const std::uint64_t key = next_key_++;
  Transaction t;
  t.requester = requester;
  t.l2 = tiles_.l2_home(addr);
  t.mem = tiles_.mem_home(addr);
  t.gpu = false;
  t.l2_miss = rng_.bernoulli(mix_.cpu.l2_miss_rate);
  txns_[key] = t;
  // All CPU traffic is packet-switched (Section V-A2).
  send_msg(requester, t.l2, cfg_.ctrl_packet_flits, TrafficClass::Cpu,
           /*cs_eligible=*/false, -1, key);
}

void HeteroSystem::issue_cpu_writeback(int core_index, std::uint64_t addr) {
  const NodeId requester = cores_[static_cast<size_t>(core_index)]->node();
  // Fire-and-forget eviction: 5-flit data packet, key 0 (no transaction).
  send_msg(requester, tiles_.l2_home(addr), cfg_.ps_data_flits, TrafficClass::Cpu,
           /*cs_eligible=*/false, -1, 0);
}

void HeteroSystem::issue_gpu_request(int sm_index, int warp, std::uint64_t addr,
                                     std::int64_t slack) {
  GpuSm& sm = *sms_[static_cast<size_t>(sm_index)];
  const std::uint64_t key = next_key_++;
  Transaction t;
  t.requester = sm.node();
  // Benchmark-dependent locality: most requests hit the SM's few home banks,
  // concentrating traffic on few source-destination pairs.
  if (rng_.bernoulli(mix_.gpu.locality)) {
    const auto& l2s = tiles_.l2_banks();
    const int home = (sm_index * mix_.gpu.home_banks +
                      static_cast<int>(addr % static_cast<std::uint64_t>(
                                                  mix_.gpu.home_banks))) %
                     static_cast<int>(l2s.size());
    t.l2 = l2s[static_cast<size_t>(home)];
  } else {
    t.l2 = tiles_.l2_home(addr);
  }
  t.mem = tiles_.mem_home(addr);
  t.gpu = true;
  t.warp = warp;
  t.slack = slack;
  t.l2_miss = rng_.bernoulli(mix_.gpu.l2_miss_rate);
  txns_[key] = t;
  send_msg(t.requester, t.l2, cfg_.ctrl_packet_flits, TrafficClass::Gpu,
           /*cs_eligible=*/false, slack, key);
}

void HeteroSystem::on_deliver(const PacketPtr& pkt, Cycle at) {
  if (pkt->payload == 0) return;  // writeback: absorbed at the L2
  const auto it = txns_.find(pkt->payload);
  HN_CHECK_MSG(it != txns_.end(), "delivery for unknown transaction");
  Transaction& t = it->second;
  const NodeId here = pkt->final_dst;
  using Phase = Transaction::Phase;

  switch (t.phase) {
    case Phase::ReqToL2:
      HN_CHECK(here == t.l2);
      t.phase = Phase::AtL2;
      banks_[static_cast<size_t>(bank_at_.at(here))]->access(pkt->payload, at);
      break;
    case Phase::ReqToMem:
      HN_CHECK(here == t.mem);
      t.phase = Phase::AtMem;
      mems_[static_cast<size_t>(mem_at_.at(here))]->access(pkt->payload, at);
      break;
    case Phase::DataToL2:
      HN_CHECK(here == t.l2);
      t.phase = Phase::AtL2Fill;
      banks_[static_cast<size_t>(bank_at_.at(here))]->access(pkt->payload, at);
      break;
    case Phase::ReplyToRequester: {
      HN_CHECK(here == t.requester);
      if (t.gpu) {
        sms_[static_cast<size_t>(sm_at_.at(here))]->on_reply(t.warp, at);
      } else {
        cores_[static_cast<size_t>(core_at_.at(here))]->on_reply(at);
      }
      txns_.erase(it);
      break;
    }
    case Phase::AtL2:
    case Phase::AtMem:
    case Phase::AtL2Fill:
      HN_CHECK_MSG(false, "delivery while transaction is inside a unit");
  }
}

void HeteroSystem::l2_complete(std::uint64_t key) {
  const auto it = txns_.find(key);
  HN_CHECK(it != txns_.end());
  Transaction& t = it->second;
  using Phase = Transaction::Phase;
  const TrafficClass cls = t.gpu ? TrafficClass::Gpu : TrafficClass::Cpu;
  if (t.phase == Phase::AtL2 && t.l2_miss) {
    t.phase = Phase::ReqToMem;
    send_msg(t.l2, t.mem, cfg_.ctrl_packet_flits, cls, /*cs_eligible=*/false,
             t.slack, key);
  } else {
    HN_CHECK(t.phase == Phase::AtL2 || t.phase == Phase::AtL2Fill);
    t.phase = Phase::ReplyToRequester;
    // Data replies: circuit-switch eligible for GPU messages only.
    send_msg(t.l2, t.requester, cfg_.ps_data_flits, cls, t.gpu, t.slack, key);
  }
}

void HeteroSystem::mem_complete(std::uint64_t key) {
  const auto it = txns_.find(key);
  HN_CHECK(it != txns_.end());
  Transaction& t = it->second;
  HN_CHECK(t.phase == Transaction::Phase::AtMem);
  t.phase = Transaction::Phase::DataToL2;
  const TrafficClass cls = t.gpu ? TrafficClass::Gpu : TrafficClass::Cpu;
  send_msg(t.mem, t.l2, cfg_.ps_data_flits, cls, t.gpu, t.slack, key);
}

void HeteroSystem::tick() {
  const Cycle now = net_->now();
  for (auto& c : cores_) c->tick(now);
  for (auto& s : sms_) s->tick(now);
  for (auto& b : banks_) {
    b->tick(now, [this](std::uint64_t key) { l2_complete(key); });
  }
  for (auto& m : mems_) {
    m->tick(now, [this](std::uint64_t key) { mem_complete(key); });
  }
  net_->tick();
}

std::uint64_t HeteroSystem::total_cpu_instructions() const {
  std::uint64_t t = 0;
  for (const auto& c : cores_) t += c->instructions_retired();
  return t;
}

std::uint64_t HeteroSystem::total_gpu_transactions() const {
  std::uint64_t t = 0;
  for (const auto& s : sms_) t += s->transactions_completed();
  return t;
}

HeteroMetrics HeteroSystem::run(std::uint64_t warmup_cycles,
                                std::uint64_t measure_cycles) {
  for (std::uint64_t i = 0; i < warmup_cycles; ++i) tick();

  const std::uint64_t instr0 = total_cpu_instructions();
  const std::uint64_t gpu0 = total_gpu_transactions();
  const EnergyCounters e0 = net_->energy();
  const std::uint64_t ps0 = net_->ps_flits();
  const std::uint64_t cs0 = net_->cs_flits();
  const std::uint64_t cf0 = net_->config_flits();
  const std::uint64_t gpu_flits0 = net_->flits_of_class(TrafficClass::Gpu);
  const std::uint64_t cpu_flits0 = net_->flits_of_class(TrafficClass::Cpu);

  for (std::uint64_t i = 0; i < measure_cycles; ++i) tick();

  HeteroMetrics m;
  m.cycles = measure_cycles;
  m.cpu_ipc = static_cast<double>(total_cpu_instructions() - instr0) /
              (static_cast<double>(measure_cycles) *
               static_cast<double>(cores_.size()));
  m.gpu_throughput = static_cast<double>(total_gpu_transactions() - gpu0) /
                     static_cast<double>(measure_cycles);
  m.energy = net_->energy() - e0;

  const double ps = static_cast<double>(net_->ps_flits() - ps0);
  const double cs = static_cast<double>(net_->cs_flits() - cs0);
  const double cf = static_cast<double>(net_->config_flits() - cf0);
  const double node_cycles = static_cast<double>(measure_cycles) *
                             static_cast<double>(tiles_.num_tiles());
  m.injection_rate = (ps + cs + cf) / node_cycles;
  m.gpu_injection_rate =
      static_cast<double>(net_->flits_of_class(TrafficClass::Gpu) - gpu_flits0) /
      node_cycles;
  m.cpu_injection_rate =
      static_cast<double>(net_->flits_of_class(TrafficClass::Cpu) - cpu_flits0) /
      node_cycles;
  if (ps + cs > 0) m.cs_flit_fraction = cs / (ps + cs);
  if (ps + cs + cf > 0) m.config_flit_fraction = cf / (ps + cs + cf);
  return m;
}

}  // namespace hybridnoc
