#include "hetero/gpu_sm.hpp"

namespace hybridnoc {

namespace {
/// Cycles of stall tolerance each available warp buys. "Available" follows
/// Section V-A2's reading: warps not blocked on memory can still be issued,
/// so each one hides roughly an issue round's worth of this reply's delay.
constexpr std::int64_t kSlackPerAvailableWarp = 40;
/// Slack attached to non-blocking (MSHR-covered) accesses.
constexpr std::int64_t kNonBlockingSlack = 4096;
}  // namespace

GpuSm::GpuSm(NodeId node, const GpuBenchParams& params, int sm_index, Rng rng,
             IssueFn issue)
    : node_(node),
      params_(params),
      sm_index_(sm_index),
      rng_(rng),
      issue_(std::move(issue)),
      warps_(kWarps),
      next_addr_(static_cast<std::uint64_t>(node) * 104729) {
  // Stagger initial compute phases so warps do not lock-step.
  for (auto& w : warps_) {
    w.compute_done = rng_.uniform_int(
        static_cast<std::uint64_t>(params_.compute_cycles) + 1);
  }
}

Cycle GpuSm::roll_compute(Cycle now) {
  // Geometric-ish compute phase with the benchmark's mean.
  const double p = 1.0 / params_.compute_cycles;
  return now + 1 + rng_.geometric(p);
}

int GpuSm::ready_warps(Cycle now) const {
  int n = 0;
  for (const auto& w : warps_) {
    if (!w.waiting_mem && w.compute_done > now) ++n;
  }
  return n;
}

int GpuSm::waiting_warps() const {
  int n = 0;
  for (const auto& w : warps_)
    if (w.waiting_mem) ++n;
  return n;
}

void GpuSm::tick(Cycle now) {
  // One memory request issues per cycle: the first warp (round-robin) whose
  // compute phase has finished.
  for (int i = 0; i < kWarps; ++i) {
    const int w = (issue_rr_ + i) % kWarps;
    Warp& warp = warps_[static_cast<size_t>(w)];
    if (warp.waiting_mem || warp.compute_done > now) continue;
    issue_rr_ = (w + 1) % kWarps;
    if (rng_.bernoulli(params_.blocking_fraction)) {
      // Dependent load: the warp stalls until the reply; its slack is what
      // the other available warps can hide (Section V-A2).
      warp.waiting_mem = true;
      const std::int64_t available = kWarps - waiting_warps();
      issue_(w, next_addr_ + rng_.next_u64(), available * kSlackPerAvailableWarp);
    } else {
      // Streaming access covered by an MSHR: the warp computes on; the
      // reply only consumes bandwidth, so its slack is effectively
      // unbounded.
      warp.compute_done = roll_compute(now);
      issue_(-1, next_addr_ + rng_.next_u64(), kNonBlockingSlack);
    }
    break;
  }
}

void GpuSm::on_reply(int warp, Cycle now) {
  ++transactions_;
  if (warp < 0) return;  // non-blocking access: nothing was stalled on it
  Warp& w = warps_[static_cast<size_t>(warp)];
  HN_CHECK(w.waiting_mem);
  w.waiting_mem = false;
  w.compute_done = roll_compute(now);
}

}  // namespace hybridnoc
