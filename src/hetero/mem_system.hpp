// Shared-L2 bank and memory-controller service models (Table II: 16 MB
// banked shared L2 at 8-cycle access; 4 GB DRAM behind 4 controllers at
// 200-cycle access). Each unit has a single service port (one new request
// per service interval) plus a fixed access latency, modelled as a due-time
// event queue the owner drains every cycle.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hpp"

namespace hybridnoc {

/// Single-ported service stage: requests are admitted one per
/// `service_interval` cycles and complete `latency` cycles after admission.
class ServiceQueue {
 public:
  ServiceQueue(int latency, int service_interval)
      : latency_(latency), service_interval_(service_interval) {}

  /// Admit a request identified by `key`; returns its completion time.
  Cycle push(std::uint64_t key, Cycle now) {
    const Cycle start = std::max(now, next_free_);
    next_free_ = start + static_cast<Cycle>(service_interval_);
    const Cycle done = start + static_cast<Cycle>(latency_);
    queue_.push({done, key});
    return done;
  }

  /// Pop every request completing at or before `now`.
  template <typename Fn>
  void drain(Cycle now, Fn fn) {
    while (!queue_.empty() && queue_.top().done <= now) {
      const std::uint64_t key = queue_.top().key;
      queue_.pop();
      fn(key);
    }
  }

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Item {
    Cycle done;
    std::uint64_t key;
    bool operator>(const Item& o) const { return done > o.done; }
  };
  int latency_;
  int service_interval_;
  Cycle next_free_ = 0;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue_;
};

/// One bank of the shared distributed L2 (8-cycle access, 1 request/cycle).
class L2Bank {
 public:
  using CompleteFn = std::function<void(std::uint64_t key)>;

  explicit L2Bank(NodeId node) : node_(node), queue_(8, 1) {}

  NodeId node() const { return node_; }
  Cycle access(std::uint64_t key, Cycle now) { return queue_.push(key, now); }
  void tick(Cycle now, const CompleteFn& fn) { queue_.drain(now, fn); }
  bool idle() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.pending(); }

 private:
  NodeId node_;
  ServiceQueue queue_;
};

/// One memory controller (200-cycle DRAM access; one request per 4 cycles of
/// channel bandwidth: a 64-byte line on a dedicated channel).
class MemController {
 public:
  using CompleteFn = std::function<void(std::uint64_t key)>;

  explicit MemController(NodeId node) : node_(node), queue_(200, 4) {}

  NodeId node() const { return node_; }
  Cycle access(std::uint64_t key, Cycle now) { return queue_.push(key, now); }
  void tick(Cycle now, const CompleteFn& fn) { queue_.drain(now, fn); }
  bool idle() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.pending(); }

 private:
  NodeId node_;
  ServiceQueue queue_;
};

}  // namespace hybridnoc
