#include "hetero/benchmarks.hpp"

#include "common/assert.hpp"

namespace hybridnoc {

const std::vector<CpuBenchParams>& cpu_benchmarks() {
  // Miss intensities and MLP reflect the published memory-boundedness of the
  // SPEC OMP2001 codes: SWIM/ART are memory-hungry, WUPWISE/GAFORT lean.
  static const std::vector<CpuBenchParams> kCpu = {
      {"AMMP", 8.0, 4, 1.2, 0.25, 0.3},
      {"APPLU", 12.0, 6, 1.4, 0.35, 0.4},
      {"ART", 25.0, 4, 0.9, 0.45, 0.2},
      {"EQUAKE", 15.0, 4, 1.1, 0.30, 0.3},
      {"GAFORT", 6.0, 4, 1.5, 0.20, 0.3},
      {"MGRID", 10.0, 8, 1.6, 0.40, 0.4},
      {"SWIM", 20.0, 8, 1.3, 0.50, 0.5},
      {"WUPWISE", 7.0, 6, 1.7, 0.30, 0.3},
  };
  return kCpu;
}

const std::vector<GpuBenchParams>& gpu_benchmarks() {
  // compute_cycles is tuned so the measured injection ratio approximates
  // Table III; locality/home_banks set the communication-pair concentration
  // that determines how much traffic circuits can capture (high for
  // BLACKSCHOLES/LPS, low for STO).
  static const std::vector<GpuBenchParams> kGpu = {
      {"BLACKSCHOLES", 509.0, 0.90, 1, 0.25, 0.60, 0.18, 55.7},
      {"HOTSPOT", 876.0, 0.55, 3, 0.75, 0.45, 0.09, 29.1},
      {"LIB", 394.0, 0.42, 2, 0.60, 0.70, 0.20, 34.4},
      {"LPS", 416.0, 0.88, 2, 0.30, 0.55, 0.20, 55.0},
      {"NN", 430.0, 0.48, 2, 0.55, 0.50, 0.18, 38.9},
      {"PATHFINDER", 684.0, 0.85, 2, 0.35, 0.55, 0.13, 49.1},
      {"STO", 1622.0, 0.45, 3, 0.75, 0.40, 0.05, 18.5},
  };
  return kGpu;
}

const CpuBenchParams& cpu_benchmark(const std::string& name) {
  for (const auto& b : cpu_benchmarks()) {
    if (b.name == name) return b;
  }
  HN_CHECK_MSG(false, "unknown CPU benchmark");
  return cpu_benchmarks().front();
}

const GpuBenchParams& gpu_benchmark(const std::string& name) {
  for (const auto& b : gpu_benchmarks()) {
    if (b.name == name) return b;
  }
  HN_CHECK_MSG(false, "unknown GPU benchmark");
  return gpu_benchmarks().front();
}

}  // namespace hybridnoc
