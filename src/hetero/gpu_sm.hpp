// SIMT streaming-multiprocessor model (the GPGPU-Sim substitute).
//
// 32 warps (Table II: 1024 threads / 32-wide SIMD) alternate between compute
// phases (geometric around the benchmark's compute_cycles) and one memory
// request each; one warp request issues per cycle. Throughput — completed
// memory transactions per cycle — is the performance proxy: with enough
// ready warps, memory latency is hidden and only bandwidth matters, which is
// why GPU messages tolerate circuit-switching delay.
//
// The "slack" of Section V-A2 is estimated from the number of ready warps at
// request time: every ready warp buys roughly one compute phase's worth of
// tolerance before the SM would actually stall on this reply.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "hetero/benchmarks.hpp"

namespace hybridnoc {

class GpuSm {
 public:
  /// issue(warp_index, line_addr, slack_cycles)
  using IssueFn =
      std::function<void(int warp, std::uint64_t line_addr, std::int64_t slack)>;

  static constexpr int kWarps = 32;

  GpuSm(NodeId node, const GpuBenchParams& params, int sm_index, Rng rng,
        IssueFn issue);

  void tick(Cycle now);
  /// The reply for `warp`'s request arrived; it resumes computing.
  void on_reply(int warp, Cycle now);

  NodeId node() const { return node_; }
  int sm_index() const { return sm_index_; }
  int ready_warps(Cycle now) const;
  int waiting_warps() const;
  std::uint64_t transactions_completed() const { return transactions_; }

 private:
  Cycle roll_compute(Cycle now);

  struct Warp {
    Cycle compute_done = 0;
    bool waiting_mem = false;
  };

  NodeId node_;
  GpuBenchParams params_;
  int sm_index_;
  Rng rng_;
  IssueFn issue_;
  std::vector<Warp> warps_;
  int issue_rr_ = 0;
  std::uint64_t transactions_ = 0;
  std::uint64_t next_addr_;
};

}  // namespace hybridnoc
