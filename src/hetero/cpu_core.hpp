// MLP-limited out-of-order CPU core model (the Simics/GEMS substitute).
//
// The core retires up to ipc_peak instructions per cycle while fewer than
// `mlp` misses are outstanding, and stalls completely when the miss window
// is full — the first-order behaviour that makes CPU performance a function
// of round-trip memory latency, which is exactly the sensitivity the paper's
// CPU-speedup results measure. L1-miss inter-arrival gaps are geometric with
// mean 1000/mpki instructions.
#pragma once

#include <cstdint>
#include <functional>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "hetero/benchmarks.hpp"

namespace hybridnoc {

class CpuCore {
 public:
  /// `issue_miss(line_addr)` sends the L1-miss request into the system;
  /// `writeback(line_addr)` emits an eviction writeback.
  using IssueFn = std::function<void(std::uint64_t line_addr)>;

  CpuCore(NodeId node, const CpuBenchParams& params, Rng rng, IssueFn issue_miss,
          IssueFn writeback);

  void tick(Cycle now);
  /// A miss reply arrived; the window frees one slot.
  void on_reply(Cycle now);

  NodeId node() const { return node_; }
  int outstanding() const { return outstanding_; }
  bool stalled() const { return outstanding_ >= params_.mlp; }
  std::uint64_t instructions_retired() const { return instructions_; }

 private:
  void roll_next_gap();

  NodeId node_;
  CpuBenchParams params_;
  Rng rng_;
  IssueFn issue_miss_;
  IssueFn writeback_;

  int outstanding_ = 0;
  double retire_credit_ = 0.0;
  std::uint64_t instructions_ = 0;
  double since_miss_ = 0.0;
  double next_gap_ = 0.0;
  std::uint64_t next_addr_ = 0;
};

}  // namespace hybridnoc
