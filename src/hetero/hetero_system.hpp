// The heterogeneous 36-tile system of Section V (Figure 7): 8 CPU cores,
// 12 accelerator SMs, 12 shared-L2 banks and 4 memory controllers, glued
// together by any of the three interconnects. One CPU benchmark runs across
// all CPU tiles and one GPU kernel across all accelerator tiles, exactly
// like the paper's workload mixes.
//
// Message flows (all over the NoC):
//   CPU:  C --1-flit req--> L2 [--1-flit--> M --5-flit--> L2] --5-flit--> C
//         plus 5-flit writebacks C -> L2. All CPU traffic is packet-switched
//         (Section V-A2).
//   GPU:  A --1-flit req--> L2 [... M ...] --5-flit data--> A, where the
//         data replies (L2->A and M->L2) are circuit-switch eligible and
//         carry the issuing warp's slack estimate.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/config.hpp"
#include "hetero/benchmarks.hpp"
#include "hetero/cpu_core.hpp"
#include "hetero/gpu_sm.hpp"
#include "hetero/mem_system.hpp"
#include "hetero/tile_map.hpp"
#include "sim/net_adapter.hpp"

namespace hybridnoc {

struct WorkloadMix {
  CpuBenchParams cpu;
  GpuBenchParams gpu;
  std::string name() const { return cpu.name + "+" + gpu.name; }
};

/// Everything measured over one window, for one configuration.
struct HeteroMetrics {
  std::uint64_t cycles = 0;
  double cpu_ipc = 0.0;         ///< per-core average
  double gpu_throughput = 0.0;  ///< memory transactions per cycle, all SMs
  double injection_rate = 0.0;      ///< flits/node/cycle injected (all classes)
  double gpu_injection_rate = 0.0;  ///< GPU-class flits/node/cycle (Table III)
  double cpu_injection_rate = 0.0;
  double cs_flit_fraction = 0.0;
  double config_flit_fraction = 0.0;
  EnergyCounters energy;
};

class HeteroSystem {
 public:
  HeteroSystem(const NocConfig& cfg, const WorkloadMix& mix, std::uint64_t seed);

  void tick();
  Cycle now() const { return net_->now(); }
  const TileMap& tiles() const { return tiles_; }

  /// Warm up, then measure for a fixed number of cycles.
  HeteroMetrics run(std::uint64_t warmup_cycles, std::uint64_t measure_cycles);

  // --- introspection for tests ---
  std::uint64_t outstanding_transactions() const { return txns_.size(); }
  std::uint64_t total_cpu_instructions() const;
  std::uint64_t total_gpu_transactions() const;
  NetAdapter& network() { return *net_; }

 private:
  struct Transaction {
    enum class Phase : std::uint8_t {
      ReqToL2,
      AtL2,
      ReqToMem,
      AtMem,
      DataToL2,
      AtL2Fill,
      ReplyToRequester,
    };
    NodeId requester = kInvalidNode;
    NodeId l2 = kInvalidNode;
    NodeId mem = kInvalidNode;
    bool gpu = false;
    bool l2_miss = false;
    int warp = -1;
    std::int64_t slack = -1;
    Phase phase = Phase::ReqToL2;
  };

  void issue_cpu_miss(int core_index, std::uint64_t addr);
  void issue_cpu_writeback(int core_index, std::uint64_t addr);
  void issue_gpu_request(int sm_index, int warp, std::uint64_t addr,
                         std::int64_t slack);
  void on_deliver(const PacketPtr& pkt, Cycle at);
  void l2_complete(std::uint64_t key);
  void mem_complete(std::uint64_t key);

  void send_msg(NodeId src, NodeId dst, int flits, TrafficClass cls,
                bool cs_eligible, std::int64_t slack, std::uint64_t key);

  NocConfig cfg_;
  WorkloadMix mix_;
  TileMap tiles_;
  std::unique_ptr<NetAdapter> net_;
  Rng rng_;

  std::vector<std::unique_ptr<CpuCore>> cores_;
  std::vector<std::unique_ptr<GpuSm>> sms_;
  std::vector<std::unique_ptr<L2Bank>> banks_;
  std::vector<std::unique_ptr<MemController>> mems_;

  std::unordered_map<NodeId, int> core_at_, sm_at_, bank_at_, mem_at_;
  std::unordered_map<std::uint64_t, Transaction> txns_;
  std::uint64_t next_key_ = 1;
  std::uint64_t next_pkt_id_ = 1;
};

}  // namespace hybridnoc
