#include "hetero/cpu_core.hpp"

namespace hybridnoc {

CpuCore::CpuCore(NodeId node, const CpuBenchParams& params, Rng rng,
                 IssueFn issue_miss, IssueFn writeback)
    : node_(node),
      params_(params),
      rng_(rng),
      issue_miss_(std::move(issue_miss)),
      writeback_(std::move(writeback)),
      next_addr_(static_cast<std::uint64_t>(node) * 7919) {
  roll_next_gap();
}

void CpuCore::roll_next_gap() {
  // Geometric miss gap with mean 1000/mpki instructions.
  const double p = params_.mpki / 1000.0;
  next_gap_ = 1.0 + static_cast<double>(rng_.geometric(p));
}

void CpuCore::tick(Cycle now) {
  (void)now;
  if (stalled()) return;
  retire_credit_ += params_.ipc_peak;
  while (retire_credit_ >= 1.0) {
    retire_credit_ -= 1.0;
    ++instructions_;
    since_miss_ += 1.0;
    if (since_miss_ >= next_gap_) {
      since_miss_ = 0.0;
      roll_next_gap();
      ++outstanding_;
      const std::uint64_t addr = next_addr_ + rng_.next_u64();
      issue_miss_(addr);
      if (rng_.bernoulli(params_.writeback_rate)) writeback_(addr + 1);
      if (stalled()) break;  // window full: stop retiring this cycle
    }
  }
}

void CpuCore::on_reply(Cycle now) {
  (void)now;
  HN_CHECK(outstanding_ > 0);
  --outstanding_;
}

}  // namespace hybridnoc
