#include "tdm/hybrid_router.hpp"

#include <algorithm>

#include "common/state_io.hpp"

namespace hybridnoc {

HybridRouter::HybridRouter(const NocConfig& cfg, NodeId id, const Mesh& mesh,
                           TdmController* ctrl)
    : Router(cfg, id, mesh),
      slots_(cfg.slot_table_size,
             ctrl ? ctrl->active_slots() : cfg.slot_table_size),
      ctrl_(ctrl) {
  HN_CHECK(ctrl_ != nullptr);
  // The expiry-bucket index only pays for itself when leases can expire.
  slots_.set_expiry_tracking(cfg.reservation_lease_cycles > 0);
}

const Flit* HybridRouter::peek_arrival(Port port, Cycle cycle) const {
  const auto& ip = in_[static_cast<size_t>(port)];
  if (!ip.data) return nullptr;
  return ip.data->peek_arrival(cycle);
}

bool HybridRouter::cs_arrival_expected(Port port, Cycle cycle) const {
  const Flit* f = peek_arrival(port, cycle);
  return f != nullptr && f->switching == Switching::Circuit;
}

std::optional<Port> HybridRouter::local_cs_target(Cycle cycle) const {
  const Flit* f = peek_arrival(Port::Local, cycle);
  if (!f || f->switching != Switching::Circuit) return std::nullopt;
  if (f->pkt->is_hitchhiker()) return static_cast<Port>(f->pkt->share_out_port);
  return slots_.lookup(cycle, Port::Local);
}

std::optional<Port> HybridRouter::take_hh_override(Cycle now) {
  for (auto it = hh_overrides_.begin(); it != hh_overrides_.end(); ++it) {
    if (it->first == now) {
      const Port out = it->second;
      hh_overrides_.erase(it);
      return out;
    }
  }
  return std::nullopt;
}

bool HybridRouter::handle_arrival(Flit& flit, Port in, Cycle now) {
  if (flit.switching != Switching::Circuit) return false;
  ++energy_.cs_latch_flits;

  if (in != Port::Local) {
    // Mid-path circuit flit: the slot table has pre-configured the crossbar.
    const auto out = slots_.lookup(now, in);
    HN_CHECK_MSG(out.has_value(),
                 "circuit-switched flit arrived in an unreserved slot");
    if (flit.is_head()) {
      // Heads arrive at the window-start slot; renew the whole window's
      // reservation lease.
      slots_.refresh(slots_.slot_of(now), cfg_.reservation_duration(), in, now);
      if (ni_hooks_ && cfg_.hitchhiker_sharing) {
        // Evidence the circuit completed: provisional DLT entries on this
        // reservation may now be shared.
        ni_hooks_->on_circuit_use(slots_.slot_of(now), in, now);
      }
    }
    cs_now_.push_back({flit, *out});
    return true;
  }

  // Injected by the local NI.
  if (!flit.pkt->is_hitchhiker()) {
    const auto out = slots_.lookup(now, Port::Local);
    HN_CHECK_MSG(out.has_value(), "local circuit flit without a reservation");
    if (flit.is_head()) {
      slots_.refresh(slots_.slot_of(now), cfg_.reservation_duration(),
                     Port::Local, now);
    }
    cs_now_.push_back({flit, *out});
    return true;
  }

  // Hitchhiker hop-on (Section III-A1). Body flits follow the latch set up
  // when their head was accepted; a body flit with no latch belongs to a
  // bounced head and evaporates here.
  if (const auto out = take_hh_override(now)) {
    cs_now_.push_back({flit, *out});
    return true;
  }
  if (!flit.is_head()) {
    ctrl_->cs_flit_retired();
    // Terminal consumption: a stray body evaporates here. It may be the
    // packet's last live flit (head already bounced), so the anchor can
    // drop right now.
    (void)consume_flit(flit.pkt);
    return true;
  }
  const Port sin = static_cast<Port>(flit.pkt->share_in_port);
  const Port sout = static_cast<Port>(flit.pkt->share_out_port);
  const auto entry = slots_.lookup(now, sin);
  const bool path_ok = entry.has_value() && *entry == sout;
  const bool contention = cs_arrival_expected(sin, now);
  if (!path_ok || contention) {
    ctrl_->cs_flit_retired();
    // Bounce first (the NI clones the packet for the packet-switched
    // retry while the head's flight reference keeps it alive), then
    // consume the head — possibly releasing the anchor.
    if (ni_hooks_) ni_hooks_->on_hitchhike_bounce(flit.pkt, now);
    (void)consume_flit(flit.pkt);
    return true;
  }
  slots_.refresh(slots_.slot_of(now), cfg_.reservation_duration(), sin, now);
  for (int d = 1; d < flit.pkt->num_flits; ++d) {
    hh_overrides_.emplace_back(now + static_cast<Cycle>(d), sout);
  }
  cs_now_.push_back({flit, sout});
  return true;
}

bool HybridRouter::st_ok(Port in, Port out, Cycle st_cycle) {
  // (1) An arriving circuit flit owns the input demux line for that cycle.
  if (cs_arrival_expected(in, st_cycle)) return false;
  const bool stealing = cfg_.time_slot_stealing;
  // (2) Reserved input slot: without stealing the line is simply off-limits.
  if (!stealing && slots_.lookup(st_cycle, in).has_value()) return false;
  // (3) Output reserved by some input's slot entry.
  if (const auto j = slots_.output_reserved_at(st_cycle, out)) {
    if (!stealing) return false;
    // Steal only when the advance signal says no circuit flit is coming.
    if (cs_arrival_expected(*j, st_cycle)) return false;
    ++ps_steals_;
  }
  // (4) A locally injected circuit flit (own circuit or hitchhiker) claims
  // its target output outside the (input-indexed) table check above.
  if (const auto t = local_cs_target(st_cycle)) {
    if (*t == out) return false;
  }
  return true;
}

std::optional<Port> HybridRouter::compute_route(Packet* pkt, Port in,
                                                Cycle now) {
  switch (pkt->type) {
    case MsgType::SetupRequest:
      return process_setup(pkt, in, now);
    case MsgType::Teardown:
      return process_teardown(pkt, in, now);
    case MsgType::Data:
    case MsgType::AckSuccess:
    case MsgType::AckFailure:
      return Router::compute_route(pkt, in, now);
  }
  return std::nullopt;
}

void HybridRouter::on_config_corrupt(Packet* pkt) {
  (void)pkt;
  ++corrupt_config_drops_;
  ctrl_->config_retired();
}

std::optional<Port> HybridRouter::process_setup(Packet* pkt, Port in,
                                                Cycle now) {
  if (pkt->table_gen != ctrl_->table_generation()) {
    // The tables this setup was walking were wiped by a dynamic resize while
    // it was in flight; its slot arithmetic no longer means anything, and any
    // prefix it reserved is gone too. Discard instead of reserving garbage.
    ++stale_config_drops_;
    ctrl_->config_retired();
    return std::nullopt;
  }
  const Port out = (pkt->dst == id_) ? Port::Local : route_adaptive(pkt->dst, now);
  const int slot = pkt->slot_id;
  const int dur = pkt->duration;
  HN_CHECK(slot >= 0 && dur >= 1);

  // Starvation guard (Section II-B): no new reservations above the
  // occupancy threshold.
  const bool below_threshold =
      slots_.occupancy() < cfg_.reservation_threshold;
  if (below_threshold &&
      slots_.reserve(slot, dur, in, out, static_cast<PacketId>(pkt->payload),
                     now)) {
    energy_.slot_table_writes += static_cast<std::uint64_t>(dur);
    if (ni_hooks_ && cfg_.hitchhiker_sharing && in != Port::Local &&
        out != Port::Local) {
      ni_hooks_->on_setup_pass(pkt->dst, slot, dur, in, out, now);
    }
    // Two-stage circuit pipeline: the downstream router's slot is two
    // cycles later (Section II-B).
    pkt->slot_id = (slot + 2) & (slots_.active_size() - 1);
    return out;
  }

  // Conflict: convert the setup in place into a failure ack headed back to
  // the source (Section II-B). slot_id keeps the failing router's slot so
  // diagnostics can see where the walk stopped; the source's teardown uses
  // its own recorded starting slot.
  pkt->type = MsgType::AckFailure;
  pkt->dst = pkt->src;
  pkt->src = id_;
  pkt->final_dst = pkt->dst;
  return (pkt->dst == id_) ? Port::Local : route_adaptive(pkt->dst, now);
}

std::optional<Port> HybridRouter::process_teardown(Packet* pkt, Port in,
                                                   Cycle now) {
  if (pkt->table_gen != ctrl_->table_generation()) {
    // Stale teardown: the reservations it would release were already wiped
    // by the resize that bumped the generation.
    ++stale_config_drops_;
    ctrl_->config_retired();
    return std::nullopt;
  }
  if (pkt->teardown_stop == id_) {
    // The setup failed here: the valid entries at this router belong to the
    // conflicting path and must not be touched.
    ctrl_->config_retired();
    return std::nullopt;
  }
  const auto out = slots_.release(pkt->slot_id, pkt->duration, in,
                                  static_cast<PacketId>(pkt->payload));
  if (!out) {
    // Either this is the node where the corresponding setup failed (every
    // slot already invalid, Section II-B), or the entries here belong to a
    // different setup (duplicate/late teardown, owner fence). Evaporate.
    ctrl_->config_retired();
    return std::nullopt;
  }
  energy_.slot_table_writes += static_cast<std::uint64_t>(pkt->duration);
  if (ni_hooks_) ni_hooks_->on_teardown_pass(pkt->slot_id, in, now);
  pkt->slot_id = (pkt->slot_id + 2) & (slots_.active_size() - 1);
  return *out;
}

void HybridRouter::collect_in_flight(std::vector<Packet*>& out) const {
  Router::collect_in_flight(out);
  for (const auto& t : cs_now_) {
    if (t.flit.pkt) out.push_back(t.flit.pkt);
  }
}

void HybridRouter::traverse_circuit(Cycle now) {
  for (auto& t : cs_now_) {
    claim_xbar_output(t.out);
    send_flit(t.out, t.flit, now);
    ++cs_flits_traversed_;
  }
  cs_now_.clear();
  HN_CHECK_MSG(hh_overrides_.empty() ||
                   hh_overrides_.front().first >= now,
               "stale hitchhiker latch");
}

void HybridRouter::leakage_tick(Cycle now) {
  // One slot-row lookup per cycle steers the input demultiplexers.
  ++energy_.slot_table_reads;
  energy_.slot_entry_active_cycles +=
      static_cast<std::uint64_t>(slots_.active_size());
  ++energy_.cs_misc_active_cycles;
  // Reservation-lease backstop: reclaim entries whose last traversal is
  // older than the lease — these were orphaned by a lost teardown (a live
  // connection is idle-retired by its source long before the lease runs
  // out). Swept at a coarse cadence; the exact phase is irrelevant.
  const Cycle lease = cfg_.reservation_lease_cycles;
  if (lease > 0 && now > lease && (now & 1023) == 0) {
    const int n =
        slots_.expire_older_than(now - lease, [&](int slot, Port in) {
          if (ni_hooks_) ni_hooks_->on_teardown_pass(slot, in, now);
        });
    if (n > 0) {
      expired_reservations_ += static_cast<std::uint64_t>(n);
      energy_.slot_table_writes += static_cast<std::uint64_t>(n);
    }
  }
}

void HybridRouter::accumulate_idle_energy(EnergyCounters& e,
                                          std::uint64_t ncycles) const {
  Router::accumulate_idle_energy(e, ncycles);
  // What leakage_tick accrues per cycle regardless of traffic. active_size
  // cannot change while asleep: resizes go through the reset hook, which
  // settles every component's energy first.
  e.slot_table_reads += ncycles;
  e.slot_entry_active_cycles +=
      ncycles * static_cast<std::uint64_t>(slots_.active_size());
  e.cs_misc_active_cycles += ncycles;
}

bool HybridRouter::sched_busy() const {
  // hh_overrides_ only ever covers cycles with circuit body flits already in
  // flight toward this router (channel wakes cover those), but keeping the
  // router hot for the whole override window is the cheap, safe choice.
  return Router::sched_busy() || !hh_overrides_.empty();
}

Cycle HybridRouter::sched_next_event(Cycle now) const {
  Cycle next = Router::sched_next_event(now);
  // Lease reclaim runs at every multiple-of-1024 cycle while any reservation
  // exists; whether an entry is actually old enough is the sweep's business.
  // ~32 wakes per default 32k lease — noise next to the sweeps they replace.
  if (cfg_.reservation_lease_cycles > 0 && slots_.valid_entries() > 0)
    next = std::min(next, (now | Cycle{1023}) + 1);
  return next;
}

void HybridRouter::save_state(StateWriter& w) const {
  Router::save_state(w);
  HN_CHECK_MSG(cs_now_.empty() && hh_overrides_.empty(),
               "hybrid-router checkpoint requires no in-flight CS traversal");
  w.section("hybrid_router");
  slots_.save_state(w);
  w.u64(cs_flits_traversed_);
  w.u64(ps_steals_);
  w.u64(stale_config_drops_);
  w.u64(expired_reservations_);
  w.u64(corrupt_config_drops_);
}

void HybridRouter::restore_state(StateReader& r) {
  Router::restore_state(r);
  r.section("hybrid_router");
  slots_.restore_state(r);
  cs_flits_traversed_ = r.u64();
  ps_steals_ = r.u64();
  stale_config_drops_ = r.u64();
  expired_reservations_ = r.u64();
  corrupt_config_drops_ = r.u64();
}

}  // namespace hybridnoc
